# Empty dependencies file for pipeline_ffthist.
# This may be replaced when dependencies are built.
