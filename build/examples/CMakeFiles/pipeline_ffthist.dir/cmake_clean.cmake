file(REMOVE_RECURSE
  "CMakeFiles/pipeline_ffthist.dir/pipeline_ffthist.cpp.o"
  "CMakeFiles/pipeline_ffthist.dir/pipeline_ffthist.cpp.o.d"
  "pipeline_ffthist"
  "pipeline_ffthist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_ffthist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
