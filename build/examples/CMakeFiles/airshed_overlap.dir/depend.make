# Empty dependencies file for airshed_overlap.
# This may be replaced when dependencies are built.
