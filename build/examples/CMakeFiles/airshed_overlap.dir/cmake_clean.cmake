file(REMOVE_RECURSE
  "CMakeFiles/airshed_overlap.dir/airshed_overlap.cpp.o"
  "CMakeFiles/airshed_overlap.dir/airshed_overlap.cpp.o.d"
  "airshed_overlap"
  "airshed_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airshed_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
