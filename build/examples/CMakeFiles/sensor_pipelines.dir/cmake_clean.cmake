file(REMOVE_RECURSE
  "CMakeFiles/sensor_pipelines.dir/sensor_pipelines.cpp.o"
  "CMakeFiles/sensor_pipelines.dir/sensor_pipelines.cpp.o.d"
  "sensor_pipelines"
  "sensor_pipelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
