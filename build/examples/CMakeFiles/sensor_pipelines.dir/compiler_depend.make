# Empty compiler generated dependencies file for sensor_pipelines.
# This may be replaced when dependencies are built.
