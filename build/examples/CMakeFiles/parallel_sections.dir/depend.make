# Empty dependencies file for parallel_sections.
# This may be replaced when dependencies are built.
