file(REMOVE_RECURSE
  "CMakeFiles/parallel_sections.dir/parallel_sections.cpp.o"
  "CMakeFiles/parallel_sections.dir/parallel_sections.cpp.o.d"
  "parallel_sections"
  "parallel_sections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_sections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
