file(REMOVE_RECURSE
  "CMakeFiles/fx_interpreter.dir/fx_interpreter.cpp.o"
  "CMakeFiles/fx_interpreter.dir/fx_interpreter.cpp.o.d"
  "fx_interpreter"
  "fx_interpreter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fx_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
