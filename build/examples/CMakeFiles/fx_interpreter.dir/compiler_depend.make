# Empty compiler generated dependencies file for fx_interpreter.
# This may be replaced when dependencies are built.
