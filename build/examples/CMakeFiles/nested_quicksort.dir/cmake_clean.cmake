file(REMOVE_RECURSE
  "CMakeFiles/nested_quicksort.dir/nested_quicksort.cpp.o"
  "CMakeFiles/nested_quicksort.dir/nested_quicksort.cpp.o.d"
  "nested_quicksort"
  "nested_quicksort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_quicksort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
