# Empty dependencies file for nested_quicksort.
# This may be replaced when dependencies are built.
