file(REMOVE_RECURSE
  "CMakeFiles/barneshut_nbody.dir/barneshut_nbody.cpp.o"
  "CMakeFiles/barneshut_nbody.dir/barneshut_nbody.cpp.o.d"
  "barneshut_nbody"
  "barneshut_nbody.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barneshut_nbody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
