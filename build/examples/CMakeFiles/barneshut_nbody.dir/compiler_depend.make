# Empty compiler generated dependencies file for barneshut_nbody.
# This may be replaced when dependencies are built.
