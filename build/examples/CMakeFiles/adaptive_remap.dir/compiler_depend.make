# Empty compiler generated dependencies file for adaptive_remap.
# This may be replaced when dependencies are built.
