# Empty dependencies file for bench_fxlang.
# This may be replaced when dependencies are built.
