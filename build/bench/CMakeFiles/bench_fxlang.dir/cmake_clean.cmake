file(REMOVE_RECURSE
  "CMakeFiles/bench_fxlang.dir/bench_fxlang.cpp.o"
  "CMakeFiles/bench_fxlang.dir/bench_fxlang.cpp.o.d"
  "bench_fxlang"
  "bench_fxlang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fxlang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
