
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1.cpp" "bench/CMakeFiles/bench_table1.dir/bench_table1.cpp.o" "gcc" "bench/CMakeFiles/bench_table1.dir/bench_table1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/fxpar_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/fxpar_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fxpar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/fxpar_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/fxpar_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/fxpar_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/fxpar_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fxpar_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/pgroup/CMakeFiles/fxpar_pgroup.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
