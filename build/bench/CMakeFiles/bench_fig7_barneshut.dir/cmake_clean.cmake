file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_barneshut.dir/bench_fig7_barneshut.cpp.o"
  "CMakeFiles/bench_fig7_barneshut.dir/bench_fig7_barneshut.cpp.o.d"
  "bench_fig7_barneshut"
  "bench_fig7_barneshut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_barneshut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
