# Empty dependencies file for test_ffthist.
# This may be replaced when dependencies are built.
