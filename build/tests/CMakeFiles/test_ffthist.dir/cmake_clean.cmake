file(REMOVE_RECURSE
  "CMakeFiles/test_ffthist.dir/test_ffthist.cpp.o"
  "CMakeFiles/test_ffthist.dir/test_ffthist.cpp.o.d"
  "test_ffthist"
  "test_ffthist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ffthist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
