# Empty dependencies file for test_hpf_on.
# This may be replaced when dependencies are built.
