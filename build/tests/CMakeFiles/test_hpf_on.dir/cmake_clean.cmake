file(REMOVE_RECURSE
  "CMakeFiles/test_hpf_on.dir/test_hpf_on.cpp.o"
  "CMakeFiles/test_hpf_on.dir/test_hpf_on.cpp.o.d"
  "test_hpf_on"
  "test_hpf_on.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpf_on.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
