file(REMOVE_RECURSE
  "CMakeFiles/test_radar_stereo.dir/test_radar_stereo.cpp.o"
  "CMakeFiles/test_radar_stereo.dir/test_radar_stereo.cpp.o.d"
  "test_radar_stereo"
  "test_radar_stereo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radar_stereo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
