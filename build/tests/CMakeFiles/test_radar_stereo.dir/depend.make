# Empty dependencies file for test_radar_stereo.
# This may be replaced when dependencies are built.
