file(REMOVE_RECURSE
  "CMakeFiles/test_quicksort.dir/test_quicksort.cpp.o"
  "CMakeFiles/test_quicksort.dir/test_quicksort.cpp.o.d"
  "test_quicksort"
  "test_quicksort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quicksort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
