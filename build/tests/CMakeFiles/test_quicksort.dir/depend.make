# Empty dependencies file for test_quicksort.
# This may be replaced when dependencies are built.
