file(REMOVE_RECURSE
  "CMakeFiles/test_fxlang_interp.dir/test_fxlang_interp.cpp.o"
  "CMakeFiles/test_fxlang_interp.dir/test_fxlang_interp.cpp.o.d"
  "test_fxlang_interp"
  "test_fxlang_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fxlang_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
