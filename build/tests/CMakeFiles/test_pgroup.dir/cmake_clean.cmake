file(REMOVE_RECURSE
  "CMakeFiles/test_pgroup.dir/test_pgroup.cpp.o"
  "CMakeFiles/test_pgroup.dir/test_pgroup.cpp.o.d"
  "test_pgroup"
  "test_pgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
