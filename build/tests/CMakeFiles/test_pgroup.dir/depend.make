# Empty dependencies file for test_pgroup.
# This may be replaced when dependencies are built.
