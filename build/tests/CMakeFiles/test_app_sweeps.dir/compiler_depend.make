# Empty compiler generated dependencies file for test_app_sweeps.
# This may be replaced when dependencies are built.
