file(REMOVE_RECURSE
  "CMakeFiles/test_app_sweeps.dir/test_app_sweeps.cpp.o"
  "CMakeFiles/test_app_sweeps.dir/test_app_sweeps.cpp.o.d"
  "test_app_sweeps"
  "test_app_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
