# Empty compiler generated dependencies file for test_airshed.
# This may be replaced when dependencies are built.
