file(REMOVE_RECURSE
  "CMakeFiles/test_airshed.dir/test_airshed.cpp.o"
  "CMakeFiles/test_airshed.dir/test_airshed.cpp.o.d"
  "test_airshed"
  "test_airshed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_airshed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
