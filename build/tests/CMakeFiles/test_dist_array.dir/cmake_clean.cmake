file(REMOVE_RECURSE
  "CMakeFiles/test_dist_array.dir/test_dist_array.cpp.o"
  "CMakeFiles/test_dist_array.dir/test_dist_array.cpp.o.d"
  "test_dist_array"
  "test_dist_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
