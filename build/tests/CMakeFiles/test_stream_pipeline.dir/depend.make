# Empty dependencies file for test_stream_pipeline.
# This may be replaced when dependencies are built.
