file(REMOVE_RECURSE
  "CMakeFiles/test_stream_pipeline.dir/test_stream_pipeline.cpp.o"
  "CMakeFiles/test_stream_pipeline.dir/test_stream_pipeline.cpp.o.d"
  "test_stream_pipeline"
  "test_stream_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
