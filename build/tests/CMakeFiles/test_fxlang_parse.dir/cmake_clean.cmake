file(REMOVE_RECURSE
  "CMakeFiles/test_fxlang_parse.dir/test_fxlang_parse.cpp.o"
  "CMakeFiles/test_fxlang_parse.dir/test_fxlang_parse.cpp.o.d"
  "test_fxlang_parse"
  "test_fxlang_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fxlang_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
