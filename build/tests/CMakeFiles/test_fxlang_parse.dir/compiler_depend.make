# Empty compiler generated dependencies file for test_fxlang_parse.
# This may be replaced when dependencies are built.
