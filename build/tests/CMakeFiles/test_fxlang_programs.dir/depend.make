# Empty dependencies file for test_fxlang_programs.
# This may be replaced when dependencies are built.
