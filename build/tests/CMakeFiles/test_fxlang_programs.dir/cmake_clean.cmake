file(REMOVE_RECURSE
  "CMakeFiles/test_fxlang_programs.dir/test_fxlang_programs.cpp.o"
  "CMakeFiles/test_fxlang_programs.dir/test_fxlang_programs.cpp.o.d"
  "test_fxlang_programs"
  "test_fxlang_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fxlang_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
