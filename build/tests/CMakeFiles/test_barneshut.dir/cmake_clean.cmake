file(REMOVE_RECURSE
  "CMakeFiles/test_barneshut.dir/test_barneshut.cpp.o"
  "CMakeFiles/test_barneshut.dir/test_barneshut.cpp.o.d"
  "test_barneshut"
  "test_barneshut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_barneshut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
