# Empty dependencies file for test_barneshut.
# This may be replaced when dependencies are built.
