file(REMOVE_RECURSE
  "CMakeFiles/test_multiblock.dir/test_multiblock.cpp.o"
  "CMakeFiles/test_multiblock.dir/test_multiblock.cpp.o.d"
  "test_multiblock"
  "test_multiblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
