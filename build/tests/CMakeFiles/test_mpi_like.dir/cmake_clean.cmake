file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_like.dir/test_mpi_like.cpp.o"
  "CMakeFiles/test_mpi_like.dir/test_mpi_like.cpp.o.d"
  "test_mpi_like"
  "test_mpi_like.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_like.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
