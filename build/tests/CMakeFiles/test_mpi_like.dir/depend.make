# Empty dependencies file for test_mpi_like.
# This may be replaced when dependencies are built.
