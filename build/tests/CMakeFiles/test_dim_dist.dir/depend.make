# Empty dependencies file for test_dim_dist.
# This may be replaced when dependencies are built.
