file(REMOVE_RECURSE
  "CMakeFiles/test_dim_dist.dir/test_dim_dist.cpp.o"
  "CMakeFiles/test_dim_dist.dir/test_dim_dist.cpp.o.d"
  "test_dim_dist"
  "test_dim_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dim_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
