file(REMOVE_RECURSE
  "CMakeFiles/fxpar_comm.dir/collectives.cpp.o"
  "CMakeFiles/fxpar_comm.dir/collectives.cpp.o.d"
  "libfxpar_comm.a"
  "libfxpar_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxpar_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
