file(REMOVE_RECURSE
  "libfxpar_comm.a"
)
