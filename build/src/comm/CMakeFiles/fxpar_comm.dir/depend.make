# Empty dependencies file for fxpar_comm.
# This may be replaced when dependencies are built.
