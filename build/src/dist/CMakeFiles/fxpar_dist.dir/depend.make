# Empty dependencies file for fxpar_dist.
# This may be replaced when dependencies are built.
