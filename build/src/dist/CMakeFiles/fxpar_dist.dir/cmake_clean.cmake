file(REMOVE_RECURSE
  "CMakeFiles/fxpar_dist.dir/dim_dist.cpp.o"
  "CMakeFiles/fxpar_dist.dir/dim_dist.cpp.o.d"
  "CMakeFiles/fxpar_dist.dir/layout.cpp.o"
  "CMakeFiles/fxpar_dist.dir/layout.cpp.o.d"
  "libfxpar_dist.a"
  "libfxpar_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxpar_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
