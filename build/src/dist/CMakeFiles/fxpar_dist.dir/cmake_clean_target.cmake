file(REMOVE_RECURSE
  "libfxpar_dist.a"
)
