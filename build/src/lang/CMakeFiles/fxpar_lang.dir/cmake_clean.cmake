file(REMOVE_RECURSE
  "CMakeFiles/fxpar_lang.dir/interp.cpp.o"
  "CMakeFiles/fxpar_lang.dir/interp.cpp.o.d"
  "CMakeFiles/fxpar_lang.dir/lexer.cpp.o"
  "CMakeFiles/fxpar_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/fxpar_lang.dir/parser.cpp.o"
  "CMakeFiles/fxpar_lang.dir/parser.cpp.o.d"
  "libfxpar_lang.a"
  "libfxpar_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxpar_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
