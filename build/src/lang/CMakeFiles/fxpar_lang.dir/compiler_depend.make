# Empty compiler generated dependencies file for fxpar_lang.
# This may be replaced when dependencies are built.
