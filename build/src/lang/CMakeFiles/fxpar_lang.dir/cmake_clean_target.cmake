file(REMOVE_RECURSE
  "libfxpar_lang.a"
)
