file(REMOVE_RECURSE
  "CMakeFiles/fxpar_runtime.dir/fiber.cpp.o"
  "CMakeFiles/fxpar_runtime.dir/fiber.cpp.o.d"
  "CMakeFiles/fxpar_runtime.dir/simulator.cpp.o"
  "CMakeFiles/fxpar_runtime.dir/simulator.cpp.o.d"
  "CMakeFiles/fxpar_runtime.dir/stack.cpp.o"
  "CMakeFiles/fxpar_runtime.dir/stack.cpp.o.d"
  "libfxpar_runtime.a"
  "libfxpar_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxpar_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
