# Empty compiler generated dependencies file for fxpar_runtime.
# This may be replaced when dependencies are built.
