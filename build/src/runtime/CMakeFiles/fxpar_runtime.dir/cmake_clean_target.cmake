file(REMOVE_RECURSE
  "libfxpar_runtime.a"
)
