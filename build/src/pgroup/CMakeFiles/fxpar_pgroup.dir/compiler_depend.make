# Empty compiler generated dependencies file for fxpar_pgroup.
# This may be replaced when dependencies are built.
