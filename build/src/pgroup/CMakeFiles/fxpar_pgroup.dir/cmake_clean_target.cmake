file(REMOVE_RECURSE
  "libfxpar_pgroup.a"
)
