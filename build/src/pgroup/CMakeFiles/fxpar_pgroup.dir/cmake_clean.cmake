file(REMOVE_RECURSE
  "CMakeFiles/fxpar_pgroup.dir/grid.cpp.o"
  "CMakeFiles/fxpar_pgroup.dir/grid.cpp.o.d"
  "CMakeFiles/fxpar_pgroup.dir/group.cpp.o"
  "CMakeFiles/fxpar_pgroup.dir/group.cpp.o.d"
  "CMakeFiles/fxpar_pgroup.dir/partition.cpp.o"
  "CMakeFiles/fxpar_pgroup.dir/partition.cpp.o.d"
  "libfxpar_pgroup.a"
  "libfxpar_pgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxpar_pgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
