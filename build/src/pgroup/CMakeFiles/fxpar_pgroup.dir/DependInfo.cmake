
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pgroup/grid.cpp" "src/pgroup/CMakeFiles/fxpar_pgroup.dir/grid.cpp.o" "gcc" "src/pgroup/CMakeFiles/fxpar_pgroup.dir/grid.cpp.o.d"
  "/root/repo/src/pgroup/group.cpp" "src/pgroup/CMakeFiles/fxpar_pgroup.dir/group.cpp.o" "gcc" "src/pgroup/CMakeFiles/fxpar_pgroup.dir/group.cpp.o.d"
  "/root/repo/src/pgroup/partition.cpp" "src/pgroup/CMakeFiles/fxpar_pgroup.dir/partition.cpp.o" "gcc" "src/pgroup/CMakeFiles/fxpar_pgroup.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
