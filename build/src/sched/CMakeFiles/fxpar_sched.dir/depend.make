# Empty dependencies file for fxpar_sched.
# This may be replaced when dependencies are built.
