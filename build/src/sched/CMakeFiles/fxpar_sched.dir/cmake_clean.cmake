file(REMOVE_RECURSE
  "CMakeFiles/fxpar_sched.dir/pipeline.cpp.o"
  "CMakeFiles/fxpar_sched.dir/pipeline.cpp.o.d"
  "CMakeFiles/fxpar_sched.dir/tradeoff.cpp.o"
  "CMakeFiles/fxpar_sched.dir/tradeoff.cpp.o.d"
  "libfxpar_sched.a"
  "libfxpar_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxpar_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
