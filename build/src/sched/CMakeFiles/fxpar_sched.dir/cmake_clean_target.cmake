file(REMOVE_RECURSE
  "libfxpar_sched.a"
)
