# Empty compiler generated dependencies file for fxpar_machine.
# This may be replaced when dependencies are built.
