file(REMOVE_RECURSE
  "libfxpar_machine.a"
)
