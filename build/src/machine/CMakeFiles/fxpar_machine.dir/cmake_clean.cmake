file(REMOVE_RECURSE
  "CMakeFiles/fxpar_machine.dir/context.cpp.o"
  "CMakeFiles/fxpar_machine.dir/context.cpp.o.d"
  "CMakeFiles/fxpar_machine.dir/machine.cpp.o"
  "CMakeFiles/fxpar_machine.dir/machine.cpp.o.d"
  "CMakeFiles/fxpar_machine.dir/report.cpp.o"
  "CMakeFiles/fxpar_machine.dir/report.cpp.o.d"
  "libfxpar_machine.a"
  "libfxpar_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxpar_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
