
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/adaptive.cpp" "src/apps/CMakeFiles/fxpar_apps.dir/adaptive.cpp.o" "gcc" "src/apps/CMakeFiles/fxpar_apps.dir/adaptive.cpp.o.d"
  "/root/repo/src/apps/airshed.cpp" "src/apps/CMakeFiles/fxpar_apps.dir/airshed.cpp.o" "gcc" "src/apps/CMakeFiles/fxpar_apps.dir/airshed.cpp.o.d"
  "/root/repo/src/apps/barneshut.cpp" "src/apps/CMakeFiles/fxpar_apps.dir/barneshut.cpp.o" "gcc" "src/apps/CMakeFiles/fxpar_apps.dir/barneshut.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/apps/CMakeFiles/fxpar_apps.dir/fft.cpp.o" "gcc" "src/apps/CMakeFiles/fxpar_apps.dir/fft.cpp.o.d"
  "/root/repo/src/apps/ffthist.cpp" "src/apps/CMakeFiles/fxpar_apps.dir/ffthist.cpp.o" "gcc" "src/apps/CMakeFiles/fxpar_apps.dir/ffthist.cpp.o.d"
  "/root/repo/src/apps/multiblock.cpp" "src/apps/CMakeFiles/fxpar_apps.dir/multiblock.cpp.o" "gcc" "src/apps/CMakeFiles/fxpar_apps.dir/multiblock.cpp.o.d"
  "/root/repo/src/apps/quicksort.cpp" "src/apps/CMakeFiles/fxpar_apps.dir/quicksort.cpp.o" "gcc" "src/apps/CMakeFiles/fxpar_apps.dir/quicksort.cpp.o.d"
  "/root/repo/src/apps/radar.cpp" "src/apps/CMakeFiles/fxpar_apps.dir/radar.cpp.o" "gcc" "src/apps/CMakeFiles/fxpar_apps.dir/radar.cpp.o.d"
  "/root/repo/src/apps/stereo.cpp" "src/apps/CMakeFiles/fxpar_apps.dir/stereo.cpp.o" "gcc" "src/apps/CMakeFiles/fxpar_apps.dir/stereo.cpp.o.d"
  "/root/repo/src/apps/stream_pipeline.cpp" "src/apps/CMakeFiles/fxpar_apps.dir/stream_pipeline.cpp.o" "gcc" "src/apps/CMakeFiles/fxpar_apps.dir/stream_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fxpar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/fxpar_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/fxpar_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/fxpar_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/fxpar_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fxpar_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/pgroup/CMakeFiles/fxpar_pgroup.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
