file(REMOVE_RECURSE
  "CMakeFiles/fxpar_apps.dir/adaptive.cpp.o"
  "CMakeFiles/fxpar_apps.dir/adaptive.cpp.o.d"
  "CMakeFiles/fxpar_apps.dir/airshed.cpp.o"
  "CMakeFiles/fxpar_apps.dir/airshed.cpp.o.d"
  "CMakeFiles/fxpar_apps.dir/barneshut.cpp.o"
  "CMakeFiles/fxpar_apps.dir/barneshut.cpp.o.d"
  "CMakeFiles/fxpar_apps.dir/fft.cpp.o"
  "CMakeFiles/fxpar_apps.dir/fft.cpp.o.d"
  "CMakeFiles/fxpar_apps.dir/ffthist.cpp.o"
  "CMakeFiles/fxpar_apps.dir/ffthist.cpp.o.d"
  "CMakeFiles/fxpar_apps.dir/multiblock.cpp.o"
  "CMakeFiles/fxpar_apps.dir/multiblock.cpp.o.d"
  "CMakeFiles/fxpar_apps.dir/quicksort.cpp.o"
  "CMakeFiles/fxpar_apps.dir/quicksort.cpp.o.d"
  "CMakeFiles/fxpar_apps.dir/radar.cpp.o"
  "CMakeFiles/fxpar_apps.dir/radar.cpp.o.d"
  "CMakeFiles/fxpar_apps.dir/stereo.cpp.o"
  "CMakeFiles/fxpar_apps.dir/stereo.cpp.o.d"
  "CMakeFiles/fxpar_apps.dir/stream_pipeline.cpp.o"
  "CMakeFiles/fxpar_apps.dir/stream_pipeline.cpp.o.d"
  "libfxpar_apps.a"
  "libfxpar_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxpar_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
