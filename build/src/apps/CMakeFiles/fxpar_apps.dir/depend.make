# Empty dependencies file for fxpar_apps.
# This may be replaced when dependencies are built.
