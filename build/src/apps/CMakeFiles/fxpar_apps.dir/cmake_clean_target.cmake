file(REMOVE_RECURSE
  "libfxpar_apps.a"
)
