file(REMOVE_RECURSE
  "CMakeFiles/fxpar_core.dir/task_partition.cpp.o"
  "CMakeFiles/fxpar_core.dir/task_partition.cpp.o.d"
  "CMakeFiles/fxpar_core.dir/task_region.cpp.o"
  "CMakeFiles/fxpar_core.dir/task_region.cpp.o.d"
  "libfxpar_core.a"
  "libfxpar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fxpar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
