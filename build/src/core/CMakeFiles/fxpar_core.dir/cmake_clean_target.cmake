file(REMOVE_RECURSE
  "libfxpar_core.a"
)
