
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/task_partition.cpp" "src/core/CMakeFiles/fxpar_core.dir/task_partition.cpp.o" "gcc" "src/core/CMakeFiles/fxpar_core.dir/task_partition.cpp.o.d"
  "/root/repo/src/core/task_region.cpp" "src/core/CMakeFiles/fxpar_core.dir/task_region.cpp.o" "gcc" "src/core/CMakeFiles/fxpar_core.dir/task_region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/fxpar_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/fxpar_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/fxpar_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/pgroup/CMakeFiles/fxpar_pgroup.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fxpar_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
