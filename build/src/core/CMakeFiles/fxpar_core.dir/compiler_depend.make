# Empty compiler generated dependencies file for fxpar_core.
# This may be replaced when dependencies are built.
