// pipeline_ffthist: the FFT-Hist kernel under the paper's three mappings —
// pure data parallel, the 3-stage pipeline of Figure 2, and the replicated
// form of Figure 3 — printing throughput and latency for each (the shape of
// Table 1 on a small configuration).
//
// Usage: ./examples/pipeline_ffthist [n] [procs] [data_sets]
#include <cstdio>
#include <cstdlib>

#include "apps/ffthist.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;

namespace {

void report(const char* name, const ap::StreamStats& s) {
  std::printf("  %-28s throughput %7.3f sets/s   latency %7.4f s\n", name,
              s.steady_throughput(), s.avg_latency());
}

}  // namespace

int main(int argc, char** argv) {
  ap::FftHistConfig cfg;
  cfg.n = (argc > 1) ? std::atoll(argv[1]) : 64;
  const int procs = (argc > 2) ? std::atoi(argv[2]) : 12;
  cfg.num_sets = (argc > 3) ? std::atoi(argv[3]) : 12;
  if (procs < 6 || procs % 3 != 0) {
    std::fprintf(stderr, "need a processor count >= 6 divisible by 3\n");
    return 1;
  }

  std::printf("FFT-Hist: %lldx%lld complex, %d data sets, %d simulated processors\n",
              static_cast<long long>(cfg.n), static_cast<long long>(cfg.n), cfg.num_sets,
              procs);

  std::vector<std::vector<std::int64_t>> sink;
  const auto stages = ap::ffthist_stages(cfg, &sink);
  const auto mcfg = MachineConfig::paragon(procs);

  // Pure data parallel (one module, all processors).
  report("data parallel",
         ap::run_stream_pipeline<ap::Complex>(mcfg, stages, {{0, 2, procs, 1}}, cfg.num_sets));

  // Figure 2: 3-stage pipeline, equal subgroups G1/G2/G3.
  const int third = procs / 3;
  report("pipeline (Fig 2)",
         ap::run_stream_pipeline<ap::Complex>(
             mcfg, stages, {{0, 0, third, 1}, {1, 1, third, 1}, {2, 2, third, 1}},
             cfg.num_sets));

  // Figure 3: replicated — two instances of the whole computation.
  if (procs % 2 == 0) {
    report("replicated x2 (Fig 3)",
           ap::run_stream_pipeline<ap::Complex>(mcfg, stages, {{0, 2, procs / 2, 2}},
                                                cfg.num_sets));
  }

  // Verify the last run against the sequential reference.
  for (int k = 0; k < cfg.num_sets; ++k) {
    if (sink[static_cast<std::size_t>(k)] != ap::ffthist_reference(cfg, k)) {
      std::fprintf(stderr, "VERIFICATION FAILED for data set %d\n", k);
      return 1;
    }
  }
  std::printf("  all %d histograms match the sequential reference\n", cfg.num_sets);
  return 0;
}
