// sensor_pipelines: the two sensor-based applications of Section 5.1 —
// narrowband tracking radar and multibaseline stereo — each run data
// parallel and with a replicated task parallel mapping, demonstrating the
// throughput/latency trade the paper builds Table 1 around.
//
// Usage: ./examples/sensor_pipelines [procs] [--obs-port N]
//
// --obs-port N serves the live observability plane on 127.0.0.1:N during
// every run (0 picks an ephemeral port) and turns on the flight recorder:
//   curl localhost:N/metrics   curl localhost:N/healthz   curl localhost:N/trace
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/radar.hpp"
#include "apps/stereo.hpp"
#include "serve/server.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;

namespace {

void report(const char* name, const ap::StreamStats& s) {
  std::printf("  %-26s throughput %8.2f sets/s   latency %8.5f s\n", name,
              s.steady_throughput(), s.avg_latency());
}

}  // namespace

int main(int argc, char** argv) {
  int procs = 16;
  int obs_port = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--obs-port") == 0 && i + 1 < argc) {
      obs_port = std::atoi(argv[++i]);
    } else {
      procs = std::atoi(argv[i]);
    }
  }
  auto mcfg = MachineConfig::paragon(procs);
  if (obs_port >= 0) {
    mcfg.obs_port = obs_port;
    mcfg.flight_recorder = true;
    std::printf("live observability on 127.0.0.1:%d — try\n"
                "  curl localhost:%d/metrics ; curl localhost:%d/healthz ; "
                "curl localhost:%d/trace\n\n",
                obs_port, obs_port, obs_port, obs_port);
  }

  {
    ap::RadarConfig cfg;
    cfg.samples = 256;
    cfg.channels = 8;  // fewer channels than processors: the DP ceiling
    cfg.num_sets = 16;
    std::printf("radar: %lld samples x %lld channels, %d dwells, %d processors\n",
                static_cast<long long>(cfg.samples), static_cast<long long>(cfg.channels),
                cfg.num_sets, procs);
    std::vector<std::int64_t> sink;
    const auto stages = ap::radar_stages(cfg, &sink);
    report("data parallel",
           ap::run_stream_pipeline<ap::Complex>(mcfg, stages, {{0, 3, procs, 1}},
                                                cfg.num_sets));
    // The replicated run doubles as the always-on metrics demo: a short
    // sampling period turns on the in-run time series, and the final
    // snapshot summarizes the whole dwell stream.
    const auto repl = ap::run_stream_pipeline<ap::Complex>(
        mcfg, stages, {{0, 3, procs / 2, 2}}, cfg.num_sets,
        /*metrics_sample_period_s=*/1e-4);
    report("replicated x2", repl);
    if (!repl.metrics_series.empty()) {
      const auto& last = repl.metrics_series.back();
      std::printf(
          "  metrics: %zu time-series samples; last snapshot: %llu sets, "
          "%llu messages (%llu bytes), %llu redistributions, %llu barriers\n",
          repl.metrics_series.size(),
          static_cast<unsigned long long>(last.counter("fxpar_apps_pipeline_sets_total")),
          static_cast<unsigned long long>(last.counter("fxpar_comm_messages_total")),
          static_cast<unsigned long long>(last.counter("fxpar_comm_message_bytes_total")),
          static_cast<unsigned long long>(last.counter("fxpar_dist_redistributions_total")),
          static_cast<unsigned long long>(last.counter("fxpar_sync_barriers_total")));
    }
    for (int k = 0; k < cfg.num_sets; ++k) {
      if (sink[static_cast<std::size_t>(k)] != ap::radar_reference(cfg, k)) {
        std::fprintf(stderr, "RADAR VERIFICATION FAILED (dwell %d)\n", k);
        return 1;
      }
    }
    std::printf("  detection counts match the sequential reference\n\n");
  }

  {
    ap::StereoConfig cfg;
    cfg.height = 60;
    cfg.width = 64;
    cfg.disparities = 6;
    cfg.num_sets = 12;
    std::printf("stereo: 3 x %lldx%lld images, %lld disparities, %d frames, %d processors\n",
                static_cast<long long>(cfg.height), static_cast<long long>(cfg.width),
                static_cast<long long>(cfg.disparities), cfg.num_sets, procs);
    std::vector<std::int64_t> sink;
    const auto stages = ap::stereo_stages(cfg, &sink);
    report("data parallel",
           ap::run_stream_pipeline<float>(mcfg, stages, {{0, 3, procs, 1}}, cfg.num_sets));
    report("replicated x2",
           ap::run_stream_pipeline<float>(mcfg, stages, {{0, 3, procs / 2, 2}},
                                          cfg.num_sets));
    for (int k = 0; k < cfg.num_sets; ++k) {
      if (sink[static_cast<std::size_t>(k)] != ap::stereo_reference(cfg, k)) {
        std::fprintf(stderr, "STEREO VERIFICATION FAILED (frame %d)\n", k);
        return 1;
      }
    }
    std::printf("  depth maps match the sequential reference\n");
  }

  // Serving demo: three radar tenants offer dwells whose aggregate rate
  // shifts low -> high -> low; the serving driver (src/serve/) re-plans the
  // mapping online at batch drain points, so the installed mapping follows
  // the load — the dynamic form of the paper's Figure 5. With --obs-port,
  // watch /healthz's "serve" fragment and the remap Marks in /trace live.
  {
    namespace sv = fxpar::serve;
    ap::RadarConfig cfg;  // full-size radar: its mapping frontier has distinct points
    const auto model = ap::radar_model(mcfg, cfg);
    const double max_thr = sched::max_throughput_mapping(model, procs).throughput;
    const double latmin_thr = sched::min_latency_mapping(model, procs, 0.0).throughput;
    const double low = 0.3 * latmin_thr;
    const double high = 0.5 * (latmin_thr + max_thr);
    std::printf("\nserving: 3 radar streams, load %0.1f -> %0.1f -> %0.1f dwells/s "
                "(latency-optimal mapping sustains %0.1f, machine max %0.1f)\n",
                low, high, low, latmin_thr, max_thr);

    std::vector<sv::ServeRequest> arrivals;
    double t0 = 0.0;
    int id = 0;
    for (double rate : {low, high, low}) {
      for (int i = 0; i < 18; ++i) {
        sv::ServeRequest r;
        r.stream = i % 3;
        r.seq = i / 3;
        r.arrival_t = t0 + static_cast<double>(i) / rate;
        r.data_id = id++;
        arrivals.push_back(r);
      }
      t0 += 18.0 / rate;
    }
    cfg.num_sets = id;  // sink capacity = total dwells served

    std::vector<std::int64_t> sink;
    const auto stages = ap::radar_stages(cfg, &sink);
    machine::Machine machine(mcfg);
    sv::ServeConfig scfg;
    scfg.policy.safety = 1.0;
    scfg.policy.latency_improvement = 0.05;
    const auto report =
        sv::serve_streams<ap::Complex>(machine, stages, model, arrivals, scfg);
    for (const auto& e : report.epochs) {
      if (e.remapped) {
        std::printf("  t=%0.3fs epoch %d: remapped (offered %0.1f/s) -> %s\n",
                    e.t_start, e.epoch, e.offered_rate, e.mapping.c_str());
      }
    }
    std::printf("  served %zu dwells over %zu epochs: %d remaps, throughput %0.1f/s, "
                "p50 %0.4fs p95 %0.4fs\n",
                report.requests.size(), report.epochs.size(), report.remaps,
                report.throughput(), report.latency_quantile(0.50),
                report.latency_quantile(0.95));
    for (int k = 0; k < cfg.num_sets; ++k) {
      if (sink[static_cast<std::size_t>(k)] != ap::radar_reference(cfg, k)) {
        std::fprintf(stderr, "SERVING VERIFICATION FAILED (dwell %d)\n", k);
        return 1;
      }
    }
    std::printf("  every served dwell matches the sequential reference\n");
  }
  return 0;
}
