// nested_quicksort: Figure 4 of the paper — quicksort through dynamically
// nested task regions, with the recursion subdividing both the keys and the
// processor group.
//
// Usage: ./examples/nested_quicksort [n] [procs]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "apps/quicksort.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;

int main(int argc, char** argv) {
  const std::int64_t n = (argc > 1) ? std::atoll(argv[1]) : 100000;
  const int procs = (argc > 2) ? std::atoi(argv[2]) : 16;

  const auto input = ap::qsort_input(n, 42);
  auto mcfg = MachineConfig::paragon(procs);
  mcfg.stack_bytes = 1 << 20;  // recursive task regions

  std::printf("quicksort: %lld keys on %d simulated processors\n",
              static_cast<long long>(n), procs);
  const auto res = ap::run_parallel_qsort(mcfg, input);

  auto expect = input;
  std::sort(expect.begin(), expect.end());
  if (res.sorted != expect) {
    std::fprintf(stderr, "VERIFICATION FAILED\n");
    return 1;
  }
  const auto seq = ap::run_parallel_qsort(MachineConfig::paragon(1), input);
  std::printf("  modeled time %-2d procs : %.4f s\n", procs,
              res.machine_result.finish_time);
  std::printf("  modeled time 1  proc  : %.4f s   (speedup %.2fx)\n",
              seq.machine_result.finish_time,
              seq.machine_result.finish_time / res.machine_result.finish_time);
  std::printf("  messages: %llu, sorted output verified\n",
              static_cast<unsigned long long>(res.machine_result.messages));
  return 0;
}
