// fx_interpreter: run Fx directive-language programs on the simulated
// machine — the missing-frontend substitute for the paper's Fortran/Fx
// compiler. With no arguments it runs a built-in demo modelled on the
// paper's Figure 2 (a data parallel pipeline written *in the language*,
// directives and all); pass a path to run your own program.
//
// Usage: ./examples/fx_interpreter [source.fx] [procs]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/fx.hpp"
#include "lang/interp.hpp"
#include "machine/report.hpp"

using namespace fxpar;

namespace {

const char* kDemo = R"(PROGRAM pipeline_demo
  ! A two-stage data parallel pipeline in the style of the paper's
  ! Figure 2: stage 1 produces data sets, stage 2 consumes them; the
  ! assignment between the subgroup arrays is the pipeline handoff.
  INTEGER i, nsets
  TASK_PARTITION part :: producer(NPROCS()/2), consumer(NPROCS() - NPROCS()/2)
  ARRAY a(256), b(256)
  SUBGROUP(producer) :: a
  SUBGROUP(consumer) :: b
  DISTRIBUTE a(BLOCK), b(CYCLIC)

  nsets = 6
  BEGIN TASK_REGION part
  DO i = 1, nsets
    ON SUBGROUP producer
      a = INDEX(1) * i        ! "acquire" data set i and preprocess
    END ON
    b = a                     ! redistribution handoff (minimal subsets)
    ON SUBGROUP consumer
      b = b * 2 + 1           ! postprocess
      PRINT SUM(b)
    END ON
  END DO
  END TASK_REGION
END
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source;
  const char* name;
  if (argc > 1 && std::string(argv[1]) != "-") {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
    name = argv[1];
  } else {
    source = kDemo;
    name = "<built-in pipeline demo>";
  }
  const int procs = (argc > 2) ? std::atoi(argv[2]) : 8;

  std::printf("fxlang: running %s on %d simulated processors\n\n", name, procs);
  try {
    const auto res = lang::run_source(MachineConfig::paragon(procs), source);
    for (const auto& line : res.output) std::printf("  PRINT> %s\n", line.c_str());
    std::printf("\n%s", machine::utilization_report(res.machine_result).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
