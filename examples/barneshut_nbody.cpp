// barneshut_nbody: Section 5.3 / Figure 7 of the paper — Barnes-Hut force
// calculation with recursive processor subdivision, top-k tree replication
// and worklists passed up the recursion.
//
// Usage: ./examples/barneshut_nbody [n] [procs] [theta]
#include <cstdio>
#include <cstdlib>

#include "apps/barneshut.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;

int main(int argc, char** argv) {
  ap::BhConfig cfg;
  cfg.n = (argc > 1) ? std::atoll(argv[1]) : 8192;
  const int procs = (argc > 2) ? std::atoi(argv[2]) : 16;
  cfg.theta = (argc > 3) ? std::atof(argv[3]) : 1.0;
  cfg.k_repl = 12;

  std::printf("barnes-hut: %lld particles, theta=%.2f, %d processors, k=%d\n",
              static_cast<long long>(cfg.n), cfg.theta, procs, cfg.k_repl);

  auto mcfg = MachineConfig::paragon(procs);
  mcfg.stack_bytes = 1 << 20;
  const auto res = ap::run_barneshut(mcfg, cfg);
  const auto seq = ap::run_barneshut(MachineConfig::paragon(1), cfg);

  const auto ref = ap::barneshut_reference(cfg);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (res.forces[i] != ref[i]) {
      std::fprintf(stderr, "VERIFICATION FAILED at particle %zu\n", i);
      return 1;
    }
  }

  std::printf("  modeled time %-2d procs : %.4f s\n", procs, res.makespan);
  std::printf("  modeled time 1  proc  : %.4f s   (speedup %.2fx)\n", seq.makespan,
              seq.makespan / res.makespan);
  std::printf("  worklist per level (root first):");
  for (auto v : res.worklist_per_level) std::printf(" %lld", static_cast<long long>(v));
  std::printf("\n  forces bit-match the sequential Barnes-Hut traversal\n");
  return 0;
}
