// quickstart: the paper's Section 2.1 example, end to end.
//
//   TASK_PARTITION :: some(5), many(NUMBER_OF_PROCESSORS()-5)
//   SUBGROUP(some) :: some_low   ;  SUBGROUP(many) :: many_low, many_high
//   BEGIN TASK_REGION
//     ON SUBGROUP some:  some_low = ...
//     many_low = some_low              (parent scope: both groups take part)
//     ON SUBGROUP many:  many_high = f(many_low)
//   END TASK_REGION
//
// Build & run:  ./examples/quickstart [num_procs]
#include <cstdio>
#include <cstdlib>

#include "core/fx.hpp"

using namespace fxpar;
namespace ds = fxpar::dist;

int main(int argc, char** argv) {
  const int procs = (argc > 1) ? std::atoi(argv[1]) : 8;
  if (procs < 6) {
    std::fprintf(stderr, "need at least 6 processors (5 + 1)\n");
    return 1;
  }
  Machine machine(MachineConfig::paragon(procs));

  auto result = machine.run([&](Context& ctx) {
    // Declaration directives.
    core::TaskPartition part(ctx, {{"some", 5}, {"many", ctx.nprocs() - 5}}, "myPart");
    auto some_low = core::subgroup_array<double>(ctx, part, "some", {100},
                                                 {ds::DimDist::block()}, "some_low");
    auto many_low = core::subgroup_array<double>(ctx, part, "many", {100},
                                                 {ds::DimDist::block()}, "many_low");
    auto many_high = core::subgroup_array<double>(ctx, part, "many", {100},
                                                  {ds::DimDist::block()}, "many_high");

    // BEGIN TASK_REGION
    core::TaskRegion region(ctx, part);

    region.on("some", [&] {
      // Executed by the 5 processors of `some` only.
      some_low.fill([](std::span<const std::int64_t> g) {
        return 0.5 * static_cast<double>(g[0]);
      });
      ctx.charge_flops(100);
    });

    // Parent scope: array assignment between subgroup variables. Only the
    // owners of either side participate; everyone else skips ahead.
    ds::assign(ctx, many_low, some_low);

    region.on("many", [&] {
      // many_high = f(many_low), on the `many` processors only.
      many_high.fill([&](std::span<const std::int64_t> g) {
        return many_low.at_global(g) * many_low.at_global(g) + 1.0;
      });
      ctx.charge_flops(200);
    });
    // END TASK_REGION (no implicit barrier)

    // Check the result on the `many` group.
    many_high.for_each_owned([&](std::span<const std::int64_t> g, double& v) {
      const double x = 0.5 * static_cast<double>(g[0]);
      if (v != x * x + 1.0) {
        std::fprintf(stderr, "proc %d: wrong value at %lld\n", ctx.phys_rank(),
                     static_cast<long long>(g[0]));
        std::abort();
      }
    });
  });

  std::printf("quickstart: %d simulated processors\n", procs);
  std::printf("  modeled completion time : %.6f s\n", result.finish_time);
  std::printf("  messages                : %llu (%llu bytes)\n",
              static_cast<unsigned long long>(result.messages),
              static_cast<unsigned long long>(result.bytes));
  std::printf("  result verified on the 'many' subgroup\n");
  return 0;
}
