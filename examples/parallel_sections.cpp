// parallel_sections: Figure 1 of the paper — two coupled multiblock meshes
// relaxed concurrently on disjoint subgroups, exchanging boundary values
// through parent-scope assignments every iteration.
//
// Usage: ./examples/parallel_sections [rows] [cols] [iters] [procs]
#include <cstdio>
#include <cstdlib>

#include "apps/multiblock.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;

int main(int argc, char** argv) {
  ap::MultiblockConfig cfg;
  cfg.rows = (argc > 1) ? std::atoll(argv[1]) : 128;
  cfg.cols = (argc > 2) ? std::atoll(argv[2]) : 64;
  cfg.iterations = (argc > 3) ? std::atoi(argv[3]) : 20;
  const int procs = (argc > 4) ? std::atoi(argv[4]) : 16;

  std::printf("multiblock: two %lldx%lld meshes, %d iterations, %d processors\n",
              static_cast<long long>(cfg.rows), static_cast<long long>(cfg.cols),
              cfg.iterations, procs);

  const double ref = ap::multiblock_reference(cfg);
  const auto mcfg = MachineConfig::paragon(procs);
  const auto dp = ap::run_multiblock(mcfg, cfg, /*task_parallel=*/false);
  const auto tp = ap::run_multiblock(mcfg, cfg, /*task_parallel=*/true);

  std::printf("  data parallel (back to back) : %.5f s\n", dp.makespan);
  std::printf("  parallel sections (Fig 1)    : %.5f s   (%.2fx)\n", tp.makespan,
              dp.makespan / tp.makespan);
  if (dp.checksum != ref || tp.checksum != ref) {
    std::fprintf(stderr, "VERIFICATION FAILED (checksums differ from reference)\n");
    return 1;
  }
  std::printf("  both versions bit-match the sequential reference\n");
  return 0;
}
