// airshed_overlap: Section 5.2 of the paper — the Airshed air quality model
// with sequential hourly I/O phases, run data parallel (I/O on processor 0
// blocks everyone) and task parallel (dedicated input and output subgroups
// overlap I/O with the main computation).
//
// Usage: ./examples/airshed_overlap [grid_points] [hours] [procs]
#include <cstdio>
#include <cstdlib>

#include "apps/airshed.hpp"
#include "machine/report.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;

int main(int argc, char** argv) {
  ap::AirshedConfig cfg;
  cfg.grid_points = (argc > 1) ? std::atoll(argv[1]) : 500;
  cfg.hours = (argc > 2) ? std::atoi(argv[2]) : 4;
  const int procs = (argc > 3) ? std::atoi(argv[3]) : 32;

  std::printf("airshed: %lld layers x %lld grid points x %lld species, %d hours, %d procs\n",
              static_cast<long long>(cfg.layers), static_cast<long long>(cfg.grid_points),
              static_cast<long long>(cfg.species), cfg.hours, procs);

  const double ref = ap::airshed_reference_checksum(cfg);
  const auto dp = ap::run_airshed_dp(MachineConfig::paragon(procs), cfg);
  const auto tp = ap::run_airshed_taskpar(MachineConfig::paragon(procs), cfg);
  const auto seq = ap::run_airshed_dp(MachineConfig::paragon(1), cfg);

  std::printf("  sequential            : %9.4f s\n", seq.makespan);
  std::printf("  data parallel         : %9.4f s   (speedup %5.2fx)\n", dp.makespan,
              seq.makespan / dp.makespan);
  std::printf("  task + data parallel  : %9.4f s   (speedup %5.2fx, %+.0f%% vs DP)\n",
              tp.makespan, seq.makespan / tp.makespan,
              100.0 * (dp.makespan - tp.makespan) / dp.makespan);

  if (dp.checksum != ref || tp.checksum != ref) {
    std::fprintf(stderr, "VERIFICATION FAILED\n");
    return 1;
  }
  std::printf("  all versions bit-match the sequential reference\n\n");

  std::printf("task+data parallel %s", machine::utilization_report(tp.machine_result).c_str());
  return 0;
}
