// mapping_advisor: the workflow the paper's Section 5.1 describes —
// "allows us to automatically determine the best mapping for a program for
// different performance goals". For a chosen application it prints the
// latency-throughput frontier computed by the mapping algorithms of refs
// [21][22], validates the interesting points in the simulator, and shows
// the utilization and communication structure of the chosen mapping.
//
// Usage: ./examples/mapping_advisor [ffthist|radar] [procs] [n]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/ffthist.hpp"
#include "apps/radar.hpp"
#include "machine/report.hpp"
#include "sched/tradeoff.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;
namespace sc = fxpar::sched;

namespace {

template <typename T>
void advise(const char* app_name, const MachineConfig& mcfg,
            const std::vector<ap::PipelineStage<T>>& stages, const sc::PipelineModel& model,
            int num_sets) {
  std::printf("%s on %d simulated Paragon nodes\n\n", app_name, mcfg.num_procs);
  const auto curve = sc::latency_throughput_curve(model, mcfg.num_procs, 24);
  std::printf("latency-throughput frontier (validated in the simulator):\n");
  std::printf("  %10s %10s | %10s %10s | mapping\n", "model thr", "model lat", "sim thr",
              "sim lat");
  for (const auto& pt : curve) {
    const auto stats = ap::run_stream_pipeline<T>(mcfg, stages, pt.mapping.modules, num_sets);
    std::printf("  %10.2f %10.4f | %10.2f %10.4f | %s\n", pt.mapping.throughput,
                pt.mapping.latency, stats.steady_throughput(), stats.avg_latency(),
                pt.mapping.to_string(model).c_str());
  }
  if (curve.empty()) return;

  // Examine the throughput end of the frontier in detail.
  auto chosen = curve.back().mapping;
  std::printf("\nhighest-throughput mapping in detail: %s\n",
              chosen.to_string(model).c_str());
  auto traced = mcfg;
  traced.record_traffic = true;
  const auto stats = ap::run_stream_pipeline<T>(traced, stages, chosen.modules, num_sets);
  std::printf("%s", machine::utilization_report(stats.machine_result).c_str());
  std::printf("%s", machine::traffic_report(stats.machine_result).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const char* app = (argc > 1) ? argv[1] : "ffthist";
  const int procs = (argc > 2) ? std::atoi(argv[2]) : 32;
  const auto mcfg = MachineConfig::paragon(procs);

  if (std::strcmp(app, "radar") == 0) {
    ap::RadarConfig cfg;
    cfg.samples = (argc > 3) ? std::atoll(argv[3]) : 256;
    cfg.channels = 16;
    cfg.num_sets = 10;
    advise("narrowband tracking radar", mcfg, ap::radar_stages(cfg),
           ap::radar_model(mcfg, cfg), cfg.num_sets);
  } else {
    ap::FftHistConfig cfg;
    cfg.n = (argc > 3) ? std::atoll(argv[3]) : 128;
    cfg.num_sets = 10;
    advise("FFT-Hist", mcfg, ap::ffthist_stages(cfg), ap::ffthist_model(mcfg, cfg),
           cfg.num_sets);
  }
  return 0;
}
