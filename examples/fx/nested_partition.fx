PROGRAM nested_partition
  ! Section 3.4 of the paper: dynamic nesting — a subgroup subdivides its
  ! own processors with a new TASK_PARTITION inside an ON block.
  TASK_PARTITION outer :: left(NPROCS()/2), right(NPROCS() - NPROCS()/2)
  BEGIN TASK_REGION outer
  ON SUBGROUP left
    TASK_PARTITION inner :: lo(NPROCS()/2), hi(NPROCS() - NPROCS()/2)
    ARRAY x(32)
    SUBGROUP(lo) :: x
    DISTRIBUTE x(BLOCK)
    BEGIN TASK_REGION inner
    ON SUBGROUP lo
      x = INDEX(1) * INDEX(1)
      PRINT SUM(x)             ! sum of squares 0..31 = 10416
    END ON
    END TASK_REGION
  END ON
  ON SUBGROUP right
    PRINT NPROCS()
  END ON
  END TASK_REGION
END
