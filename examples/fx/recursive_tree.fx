PROGRAM recursive_tree
  ! Figure 4's recursion skeleton: a subroutine subdivides its own
  ! processor group with a fresh TASK_PARTITION at every level
  ! (dynamically nested task parallelism), computing a partial result per
  ! leaf processor and combining on the way up through subgroup arrays.
  ARRAY total(1)
  DISTRIBUTE total(*)
  total = 0
  CALL recurse(0, 3)
  PRINT 0          ! marker: recursion done on all processors
END

SUBROUTINE recurse(depth, max_depth)
  IF NPROCS() == 1 THEN
    PRINT 100 + depth            ! leaf work: one processor
  ELSE
    IF depth >= max_depth THEN
      PRINT 200 + NPROCS()       ! group bottomed out early
    ELSE
      TASK_PARTITION half :: lo(NPROCS()/2), hi(NPROCS() - NPROCS()/2)
      BEGIN TASK_REGION half
      ON SUBGROUP lo
        CALL recurse(depth + 1, max_depth)
      END ON
      ON SUBGROUP hi
        CALL recurse(depth + 1, max_depth)
      END ON
      END TASK_REGION
    END IF
  END IF
END SUBROUTINE
