PROGRAM replicated_stream
  ! Figure 3 of the paper: replicated data parallel computation — two
  ! subgroups each process alternate data sets of a stream.
  INTEGER k
  TASK_PARTITION part :: g1(NPROCS()/2), g2(NPROCS() - NPROCS()/2)
  ARRAY a1(64), a2(64)
  SUBGROUP(g1) :: a1
  SUBGROUP(g2) :: a2
  DISTRIBUTE a1(BLOCK), a2(BLOCK)

  BEGIN TASK_REGION part
  DO k = 1, 8
    IF MOD(k, 2) == 1 THEN
      ON SUBGROUP g1
        a1 = INDEX(1) + k        ! process odd data sets on g1
        PRINT SUM(a1)
      END ON
    ELSE
      ON SUBGROUP g2
        a2 = INDEX(1) + k        ! even data sets on g2
        PRINT SUM(a2)
      END ON
    END IF
  END DO
  END TASK_REGION
END
