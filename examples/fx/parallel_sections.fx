PROGRAM parallel_sections
  ! Figure 1 of the paper: two independent computations on disjoint
  ! subgroups, exchanging results through parent-scope assignments.
  INTEGER step
  TASK_PARTITION part :: agroup(NPROCS()/2), bgroup(NPROCS() - NPROCS()/2)
  ARRAY a(128), b(128), a_edge(128), b_edge(128)
  SUBGROUP(agroup) :: a, b_edge
  SUBGROUP(bgroup) :: b, a_edge
  DISTRIBUTE a(BLOCK), b(BLOCK), a_edge(BLOCK), b_edge(BLOCK)

  BEGIN TASK_REGION part
  ON SUBGROUP agroup
    a = INDEX(1)
  END ON
  ON SUBGROUP bgroup
    b = 2 * INDEX(1)
  END ON
  DO step = 1, 4
    ON SUBGROUP agroup
      a = a * 0.5 + step          ! proca
    END ON
    ON SUBGROUP bgroup
      b = b * 0.25 + step         ! procb
    END ON
    a_edge = a                    ! transfer(A, B): parent scope
    b_edge = b
    ON SUBGROUP agroup
      a = a + b_edge * 0.125
    END ON
    ON SUBGROUP bgroup
      b = b + a_edge * 0.125
    END ON
  END DO
  ON SUBGROUP agroup
    PRINT SUM(a)
  END ON
  ON SUBGROUP bgroup
    PRINT SUM(b)
  END ON
  END TASK_REGION
END
