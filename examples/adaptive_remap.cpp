// adaptive_remap: Section 6 of the paper — "dynamic load management by
// reassigning processors to different tasks within a program", something a
// coordination-language integration cannot do. A two-stage pipeline starts
// with a naive 50/50 processor split, measures its stages after every
// batch, and re-divides the processors; the run is compared with the same
// program pinned to the initial split.
//
// Usage: ./examples/adaptive_remap [procs] [batches]
#include <cstdio>
#include <cstdlib>

#include "apps/adaptive.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;

int main(int argc, char** argv) {
  ap::AdaptiveConfig cfg;
  cfg.total_procs = (argc > 1) ? std::atoi(argv[1]) : 16;
  cfg.batches = (argc > 2) ? std::atoi(argv[2]) : 6;
  cfg.n = 1 << 16;
  cfg.stage0_flops_per_elem = 16.0;
  cfg.stage1_flops_per_elem = 64.0;  // 4x imbalance the adapter must discover

  auto mcfg = MachineConfig::paragon(cfg.total_procs);
  mcfg.stack_bytes = 1 << 20;

  std::printf("adaptive remapping: 2-stage pipeline, %d procs, stage work 16 : 64\n\n",
              cfg.total_procs);
  const auto adaptive = ap::run_adaptive_pipeline(mcfg, cfg);
  cfg.adapt = false;
  const auto fixed = ap::run_adaptive_pipeline(mcfg, cfg);

  std::printf("  %-8s | %-22s | %-12s\n", "batch", "stage-0 procs (adaptive)", "sets/s");
  for (std::size_t b = 0; b < adaptive.batch_throughput.size(); ++b) {
    std::printf("  %-8zu | %-22d | %8.2f\n", b, adaptive.stage0_procs_per_batch[b],
                adaptive.batch_throughput[b]);
  }
  std::printf("\n  adaptive makespan : %.4f s\n", adaptive.makespan);
  std::printf("  static 50/50      : %.4f s   (adaptive is %.2fx faster)\n", fixed.makespan,
              fixed.makespan / adaptive.makespan);
  std::printf("\nNo task was restarted and no data left the machine: each re-mapping is\n"
              "just a new TASK_PARTITION of the same processors.\n");
  return 0;
}
