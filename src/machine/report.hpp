// fxpar machine: utilization reporting for simulated runs.
//
// RunResult carries raw per-processor clocks; this header turns them into
// the summaries a performance engineer actually reads when deciding how to
// map a task/data parallel program: per-processor busy/idle bars, aggregate
// efficiency, and communication volume.
#pragma once

#include <string>

#include "machine/machine.hpp"

namespace fxpar::machine {

struct UtilizationSummary {
  double makespan = 0.0;
  double mean_busy_fraction = 0.0;
  double min_busy_fraction = 0.0;
  double max_busy_fraction = 0.0;
  int least_busy_proc = -1;
  int most_busy_proc = -1;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t barriers = 0;
  std::uint64_t steals = 0;        ///< stolen loop chunks (threads backend)
  std::uint64_t stolen_iters = 0;  ///< iterations those chunks covered
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  std::uint64_t collective_plan_hits = 0;
  std::uint64_t collective_plan_misses = 0;
  std::uint64_t pool_spills = 0;  ///< payload releases that left their shard
  std::string backend = "sim";  ///< which engine executed the run
  double host_ms = 0.0;         ///< real wall-clock of Machine::run
  double wait_ms = 0.0;         ///< total real blocked time (threads backend)
};

/// Computes the aggregate utilization of a run.
UtilizationSummary summarize(const RunResult& result);

/// Renders a fixed-width utilization report: one bar per processor
/// (grouped into at most `max_rows` rows for large machines) plus the
/// aggregate counters. Suitable for printing from examples and benches.
std::string utilization_report(const RunResult& result, int max_rows = 16);

/// Renders the communication matrix (who sends how much to whom) as a
/// logarithmic heat map, grouping processors into at most `max_cells`
/// blocks per axis. Requires MachineConfig::record_traffic; returns a note
/// when traffic was not recorded.
std::string traffic_report(const RunResult& result, int max_cells = 16);

}  // namespace fxpar::machine
