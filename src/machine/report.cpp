#include "machine/report.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace fxpar::machine {

UtilizationSummary summarize(const RunResult& result) {
  UtilizationSummary s;
  s.makespan = result.finish_time;
  s.messages = result.messages;
  s.bytes = result.bytes;
  s.barriers = result.barriers;
  s.steals = result.steals;
  s.stolen_iters = result.stolen_iters;
  s.plan_cache_hits = result.plan_cache_hits;
  s.plan_cache_misses = result.plan_cache_misses;
  s.collective_plan_hits = result.collective_plan_hits;
  s.collective_plan_misses = result.collective_plan_misses;
  s.pool_spills = result.pool_spills;
  s.backend = result.backend;
  s.host_ms = result.host_ms;
  s.wait_ms = result.wait_ms;
  if (result.clocks.empty() || result.finish_time <= 0.0) {
    s.mean_busy_fraction = s.min_busy_fraction = s.max_busy_fraction = 0.0;
    return s;
  }
  double total = 0.0;
  s.min_busy_fraction = 2.0;
  s.max_busy_fraction = -1.0;
  for (std::size_t r = 0; r < result.clocks.size(); ++r) {
    const double f = result.clocks[r].busy / result.finish_time;
    total += f;
    if (f < s.min_busy_fraction) {
      s.min_busy_fraction = f;
      s.least_busy_proc = static_cast<int>(r);
    }
    if (f > s.max_busy_fraction) {
      s.max_busy_fraction = f;
      s.most_busy_proc = static_cast<int>(r);
    }
  }
  s.mean_busy_fraction = total / static_cast<double>(result.clocks.size());
  return s;
}

std::string utilization_report(const RunResult& result, int max_rows) {
  const UtilizationSummary s = summarize(result);
  max_rows = std::max(1, max_rows);  // a non-positive row budget means "one row"
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(4);
  oss << "machine utilization: makespan " << s.makespan << " s, mean busy "
      << static_cast<int>(100.0 * s.mean_busy_fraction + 0.5) << "%\n";
  const int P = static_cast<int>(result.clocks.size());
  if (P > 0 && s.makespan > 0.0) {
    const int group = std::max(1, (P + max_rows - 1) / max_rows);
    constexpr int kWidth = 40;
    for (int first = 0; first < P; first += group) {
      const int last = std::min(P, first + group);
      double busy = 0.0;
      for (int r = first; r < last; ++r) busy += result.clocks[static_cast<std::size_t>(r)].busy;
      const double frac = busy / (s.makespan * static_cast<double>(last - first));
      const int bar = static_cast<int>(std::lround(frac * kWidth));
      oss << "  proc";
      if (group == 1) {
        oss << " " << first << "      ";
      } else {
        oss << "s " << first << "-" << (last - 1) << "  ";
      }
      oss << "[";
      for (int i = 0; i < kWidth; ++i) oss << (i < bar ? '#' : '.');
      oss << "] " << static_cast<int>(100.0 * frac + 0.5) << "%\n";
    }
  }
  oss << "  messages " << s.messages << " (" << s.bytes << " bytes), barriers " << s.barriers
      << "\n";
  if (s.plan_cache_hits + s.plan_cache_misses > 0) {
    oss << "  redistribution plan cache: " << s.plan_cache_hits << " hits, "
        << s.plan_cache_misses << " misses\n";
  }
  if (s.collective_plan_hits + s.collective_plan_misses > 0) {
    oss << "  collective plan cache: " << s.collective_plan_hits << " hits, "
        << s.collective_plan_misses << " misses\n";
  }
  if (s.pool_spills > 0) {
    oss << "  payload pool: " << s.pool_spills << " cross-shard spills\n";
  }
  if (s.steals > 0) {
    oss << "  work stealing: " << s.steals << " chunks (" << s.stolen_iters
        << " iterations) ran on idle subgroup siblings\n";
  }
  // Only the threaded backend's times are real; keep the simulator's
  // report unchanged (its makespan *is* the authoritative number).
  if (s.backend != "sim") {
    oss.precision(2);
    oss << "  backend " << s.backend << ": host " << s.host_ms << " ms, blocked "
        << s.wait_ms << " ms\n";
  }
  return oss.str();
}

std::string traffic_report(const RunResult& result, int max_cells) {
  std::ostringstream oss;
  const int P = static_cast<int>(result.clocks.size());
  if (result.traffic.empty() || P == 0) {
    return "communication matrix: not recorded "
           "(set MachineConfig::record_traffic = true before Machine::run)\n";
  }
  max_cells = std::max(1, max_cells);  // a non-positive budget means "one block"
  const int group = std::max(1, (P + max_cells - 1) / max_cells);
  const int cells = (P + group - 1) / group;
  // Aggregate into blocks.
  std::vector<std::uint64_t> blocks(static_cast<std::size_t>(cells) * cells, 0);
  std::uint64_t peak = 0;
  for (int s = 0; s < P; ++s) {
    for (int d = 0; d < P; ++d) {
      auto& cell = blocks[static_cast<std::size_t>(s / group) * cells +
                          static_cast<std::size_t>(d / group)];
      cell += result.traffic[static_cast<std::size_t>(s) * P + static_cast<std::size_t>(d)];
      peak = std::max(peak, cell);
    }
  }
  oss << "communication matrix (rows: sender blocks of " << group
      << ", cols: receivers; log scale, '9' = " << peak << " bytes)\n";
  for (int r = 0; r < cells; ++r) {
    oss << "  ";
    for (int c = 0; c < cells; ++c) {
      const std::uint64_t v = blocks[static_cast<std::size_t>(r) * cells + c];
      char ch = '.';
      if (v > 0 && peak > 0) {
        const double frac = std::log2(static_cast<double>(v) + 1.0) /
                            std::log2(static_cast<double>(peak) + 1.0);
        ch = static_cast<char>('0' + std::min(9, static_cast<int>(frac * 9.0 + 0.5)));
      }
      oss << ch;
    }
    oss << "\n";
  }
  return oss.str();
}

}  // namespace fxpar::machine
