// fxpar machine: cost-model configuration for the simulated multicomputer.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "exec/backend.hpp"
#include "exec/topology.hpp"

namespace fxpar::machine {

/// Parameters of the simulated distributed-memory machine. All times are in
/// seconds of modeled machine time. The default values — and the paragon()
/// preset — describe a mid-1990s Intel Paragon-class machine: i860 XP nodes
/// with a few MFLOPS sustained on compiled code and a mesh network with
/// tens-of-microseconds message latency, which is the regime the paper's
/// evaluation (Section 5) lives in. The *shape* of every experiment depends
/// only on these compute/communication ratios, not on absolute values.
struct MachineConfig {
  int num_procs = 4;

  // Computation. 3 MFLOPS sustained per node matches the effective rate the
  // paper's own Table 1 implies for compiled Fortran on the i860 (the chip's
  // peak was far higher; real codes hit a few percent of it).
  double flop_time = 1.0 / 3.0e6;   ///< seconds per floating-point op
  double int_op_time = 1.0 / 15e6;  ///< seconds per integer/compare op
  double mem_byte_time = 1.0 / 80e6;///< per byte of local memory traffic charged explicitly

  // Communication (LogGP-like, direct deposit). The per-message overheads
  // are *effective* costs calibrated against Table 1's 64-node data
  // parallel efficiency: they fold Fx's barrier-synchronized deposit phases
  // and the OSF-era messaging software stack into one per-message charge
  // (raw NX hardware latency was lower; effective small-message cost on the
  // evaluated system was not). See EXPERIMENTS.md, "Calibration".
  double send_overhead = 400e-6;  ///< sender software overhead per message
  double recv_overhead = 400e-6;  ///< receiver software overhead per matched message
  double latency = 150e-6;        ///< wire latency per message
  double byte_time = 1.0 / 15e6;  ///< per-byte serialization (~15 MB/s sustained)

  // Barrier: released at max(arrivals) + barrier_base + barrier_stage*ceil(log2 n).
  double barrier_base = 50e-6;
  double barrier_stage = 100e-6;

  // Sequential I/O device (single designated I/O processor; see the paper's
  // "Implication for I/O" and the Airshed experiment).
  double io_latency = 5e-3;        ///< per I/O operation
  double io_byte_time = 1.0 / 8e6; ///< ~8 MB/s sustained

  /// Which execution engine runs the program (see src/exec/backend.hpp and
  /// docs/execution.md): the deterministic discrete-event simulator — the
  /// authority on modeled machine time, where all the cost parameters
  /// above apply — or the shared-memory threaded backend, where each
  /// logical processor is a real OS thread and the run reports real host
  /// time instead. Deterministic programs produce bit-identical array
  /// contents on both.
  exec::BackendKind backend = exec::BackendKind::Sim;

  /// Transport of the process backend (backend == Proc only; the
  /// in-address-space backends ignore it): shared-memory mailbox rings
  /// (the default) or pre-connected loopback TCP sockets behind the same
  /// net::Channel seam. Deterministic programs produce bit-identical
  /// array contents on both (docs/execution.md, "Process backend").
  exec::TransportKind transport = exec::TransportKind::Shm;

  // Host-side simulation knobs.
  std::size_t stack_bytes = 1u << 20;  ///< fiber stack size (host memory; sim only)
  bool record_traffic = false;         ///< keep a per-(src,dst) byte matrix

  /// Record a structured event trace (spans, waits, messages, barriers) of
  /// the run; see src/trace/ and docs/observability.md. Off by default:
  /// when false no recorder exists and every tracing hook is a single null
  /// pointer test. Tracing never changes modeled time.
  bool trace = false;

  /// Always-on runtime metrics (src/metrics/): counters, gauges and
  /// log-bucketed latency histograms, sharded per worker so the threaded
  /// backend's hot paths stay lock-free. Cheap enough to leave enabled in
  /// long-running drivers (the default); when false no registry exists and
  /// every instrumentation site is a single null pointer test. Metrics
  /// never change modeled time — results are bit-identical either way.
  bool metrics = true;

  /// Intra-subgroup work stealing for data parallel loops (threaded backend
  /// only; the simulator always runs the static block schedule). When on,
  /// run_chunks() lets idle members of the *current* processor group steal
  /// iteration chunks from siblings of the same group — never across
  /// TASK_PARTITION siblings — which recovers load-imbalance slack in
  /// irregular loops. Array contents and reduction results are bit-identical
  /// with stealing on or off (docs/execution.md, "Work stealing"); the
  /// switch exists for A/B host-time benchmarking.
  bool work_stealing = true;

  /// Worker-thread placement policy (threaded backend only; the simulator
  /// runs every fiber on one host thread and ignores it). See
  /// exec/topology.hpp for the policies and docs/performance.md ("NUMA &
  /// pinning"). Default none: test runners routinely oversubscribe the
  /// host with many concurrent Machines, where pinning would serialize
  /// unrelated workers onto the same CPUs. Pinning is host placement only
  /// — results are bit-identical under every policy.
  exec::PinPolicy pinning = exec::PinPolicy::None;

  /// Inspector–executor plan caching for redistribution (see
  /// dist/plan_cache.hpp and docs/performance.md). When on, assign() and
  /// the halo exchange precompute a flattened transfer schedule once per
  /// (layout pair, perm, offsets) and replay it on every subsequent call,
  /// removing the host-side plan-building cost from repeated handoffs.
  /// Simulated results (finish times, bytes, efficiencies) are bit-identical
  /// with the cache on or off; the switch exists for ablation and host-time
  /// benchmarking.
  bool plan_cache = true;

  // ---- live observability plane (src/obs/, docs/observability.md) ----

  /// When >= 0, the Machine starts an embedded HTTP endpoint on
  /// 127.0.0.1:obs_port serving /metrics (Prometheus text), /healthz (run
  /// state + per-worker liveness), /trace (flight-recorder dump as Chrome
  /// trace JSON) and /diagnostics (an on-demand diagnostic bundle). 0 asks
  /// the kernel for an ephemeral port — Machine::obs_port() reports it.
  /// -1 (the default) starts nothing. A failed bind disables the endpoint
  /// with a warning; it never fails the run.
  int obs_port = -1;

  /// Always-on flight recorder: a bounded per-worker ring of recent
  /// runtime events (sends, receives, barriers, io, loop steals, span
  /// marks) kept even when full tracing is off. Dumped at /trace, included
  /// in every diagnostic bundle (deadlock, abort, stall), and ~free when
  /// off: each hook site pays one null-pointer test. Implied on when
  /// obs_port >= 0.
  bool flight_recorder = false;
  std::size_t flight_events = 2048;  ///< ring capacity per worker (events)
  double flight_window_s = 30.0;     ///< dumps keep events this close to the newest

  /// Stall watchdog (threaded backend only; > 0 enables): a monitor thread
  /// emits a structured diagnostic bundle to stderr whenever the backend
  /// reports no runtime-service progress — no message, barrier, loop chunk
  /// or io completion on any worker — for this many seconds, then re-arms.
  /// Pure user compute between service calls counts as no progress, so set
  /// it above the longest expected service-free interval.
  double stall_watchdog_s = 0.0;

  /// Paragon-class preset with `p` compute nodes.
  static MachineConfig paragon(int p) {
    MachineConfig c;
    c.num_procs = p;
    return c;
  }

  /// A modern commodity-cluster balance (multi-GFLOPS nodes, microsecond
  /// messaging, multi-GB/s links). The absolute numbers matter less than
  /// the *ratio* shift relative to paragon(): per-message overheads are a
  /// thousandfold smaller fraction of per-node compute, which moves the
  /// task-vs-data parallelism crossovers the paper's evaluation exposes
  /// (see bench_tradeoff).
  static MachineConfig cluster(int p) {
    MachineConfig c;
    c.num_procs = p;
    c.flop_time = 1.0 / 5.0e9;
    c.int_op_time = 1.0 / 2.0e10;
    c.mem_byte_time = 1.0 / 2.0e10;
    c.send_overhead = 2e-6;
    c.recv_overhead = 2e-6;
    c.latency = 1.5e-6;
    c.byte_time = 1.0 / 1.0e10;
    c.barrier_base = 2e-6;
    c.barrier_stage = 1e-6;
    c.io_latency = 50e-6;
    c.io_byte_time = 1.0 / 2.0e9;
    return c;
  }

  /// An idealized machine with (almost) free communication; used by tests
  /// and ablations to isolate algorithmic behaviour from network costs.
  static MachineConfig ideal(int p) {
    MachineConfig c;
    c.num_procs = p;
    c.send_overhead = c.recv_overhead = c.latency = 1e-9;
    c.byte_time = 1e-12;
    c.barrier_base = c.barrier_stage = 1e-9;
    c.io_latency = 1e-9;
    c.io_byte_time = 1e-12;
    return c;
  }

  void validate() const {
    if (num_procs <= 0) throw std::invalid_argument("MachineConfig: num_procs must be positive");
    if (flop_time < 0 || int_op_time < 0 || mem_byte_time < 0 || send_overhead < 0 ||
        recv_overhead < 0 || latency < 0 || byte_time < 0 || barrier_base < 0 ||
        barrier_stage < 0 || io_latency < 0 || io_byte_time < 0) {
      throw std::invalid_argument("MachineConfig: negative cost parameter");
    }
    if (stack_bytes < (1u << 14)) {
      throw std::invalid_argument("MachineConfig: stack_bytes too small");
    }
    if (obs_port > 65535) {
      throw std::invalid_argument("MachineConfig: obs_port out of range");
    }
    if (flight_events < 16) {
      throw std::invalid_argument("MachineConfig: flight_events must be >= 16");
    }
    if (flight_window_s <= 0) {
      throw std::invalid_argument("MachineConfig: flight_window_s must be positive");
    }
    if (stall_watchdog_s < 0) {
      throw std::invalid_argument("MachineConfig: stall_watchdog_s must be >= 0");
    }
    if (backend == exec::BackendKind::Proc && num_procs > 64) {
      // The proc backend keys barrier membership on a 64-bit rank mask.
      throw std::invalid_argument(
          "MachineConfig: the process backend supports at most 64 processors");
    }
  }
};

}  // namespace fxpar::machine
