// fxpar machine: per-processor execution context of the SPMD program.
//
// A Context is the handle through which the running program sees the
// machine: its current processor group (a stack, pushed/popped by nested
// task regions), its virtual rank inside that group, the virtual clock, the
// direct-deposit messaging primitives and the subset barrier. It is the
// runtime embodiment of the paper's "current processors" notion.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include <string>

#include "machine/machine.hpp"
#include "pgroup/group.hpp"
#include "trace/trace.hpp"

namespace fxpar::machine {

class Context {
 public:
  Context(Machine& m, int phys_rank);

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  Machine& machine() noexcept { return machine_; }
  const MachineConfig& config() const noexcept { return machine_.config(); }

  /// Physical rank on the machine, fixed for the program's lifetime.
  int phys_rank() const noexcept { return phys_; }

  // ---- current processor group (the paper's "current processors") ----

  /// The group executing the innermost active scope.
  const pgroup::ProcessorGroup& group() const;

  /// Enters a nested group (ON SUBGROUP). The calling processor must be a
  /// member of `g`. Taken by value, and the stack is a deque, so references
  /// previously returned by group() remain valid across nesting — a caller
  /// may legally pass its own current group into a collective that nests.
  void push_group(pgroup::ProcessorGroup g);
  void pop_group();
  int group_depth() const noexcept { return static_cast<int>(groups_.size()); }

  /// NUMBER_OF_PROCESSORS() of the paper: size of the current group.
  int nprocs() const { return group().size(); }

  /// Virtual rank of this processor in the current group.
  int vrank() const;

  // ---- virtual time ----

  double now() const;
  void charge(double seconds);
  void charge_flops(double n);
  void charge_int_ops(double n);
  void charge_mem_bytes(double bytes);

  // ---- messaging (virtual ranks are relative to the current group) ----

  void send(int dst_vrank, std::uint64_t tag, Payload data);
  Payload recv(int src_vrank, std::uint64_t tag);
  void send_phys(int dst_phys, std::uint64_t tag, Payload data);
  Payload recv_phys(int src_phys, std::uint64_t tag);

  /// Subset barrier over the current group.
  void barrier();
  /// Subset barrier over an explicit group (caller must be a member).
  void barrier(const pgroup::ProcessorGroup& g);

  /// Allocates a tag agreed upon by all members of `g` for one collective
  /// operation: every member keeps a per-group counter, and SPMD execution
  /// guarantees the counters advance identically.
  std::uint64_t collective_tag(const pgroup::ProcessorGroup& g);

  /// Blocking operation on the machine's sequential I/O device.
  void io(std::size_t bytes);

  // ---- tracing ----

  /// The machine's event recorder, or nullptr when tracing is disabled.
  /// Call sites that build dynamic span names should test this first to
  /// keep the disabled path allocation-free.
  trace::TraceRecorder* tracer() noexcept { return machine_.tracer(); }

  /// Opens a named span on this processor's timeline; the returned guard
  /// closes it. Inert (and cheap) when tracing is disabled.
  trace::ScopedSpan span(std::string name, const char* category);
  trace::ScopedSpan span(const char* name, const char* category);

 private:
  Machine& machine_;
  int phys_;
  std::deque<pgroup::ProcessorGroup> groups_;
  std::map<std::uint64_t, std::uint64_t> collective_counters_;
};

}  // namespace fxpar::machine
