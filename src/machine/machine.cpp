#include "machine/machine.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "exec/sim_backend.hpp"
#include "exec/threaded_backend.hpp"
#include "machine/context.hpp"

namespace fxpar::machine {

double RunResult::efficiency() const {
  if (clocks.empty() || finish_time <= 0.0) return 0.0;
  double busy = 0.0;
  for (const auto& c : clocks) busy += c.busy;
  return busy / (finish_time * static_cast<double>(clocks.size()));
}

std::uint64_t RunResult::traffic_between(int src, int dst) const {
  const int P = static_cast<int>(clocks.size());
  if (traffic.empty() || src < 0 || dst < 0 || src >= P || dst >= P) return 0;
  return traffic[static_cast<std::size_t>(src) * static_cast<std::size_t>(P) +
                 static_cast<std::size_t>(dst)];
}

Machine::Machine(MachineConfig config) : config_(config) {
  config_.validate();
  switch (config_.backend) {
    case exec::BackendKind::Sim:
      backend_ = std::make_unique<exec::SimBackend>(config_);
      break;
    case exec::BackendKind::Threads:
      backend_ = std::make_unique<exec::ThreadedBackend>(config_);
      break;
  }
  if (config_.trace) {
    tracer_ = std::make_shared<trace::TraceRecorder>(config_.num_procs);
    tracer_->set_clock([this](int rank) { return backend_->now(rank); });
    backend_->set_tracer(tracer_.get());
  }
}

Machine::~Machine() = default;

runtime::Simulator& Machine::sim() {
  auto* sb = dynamic_cast<exec::SimBackend*>(backend_.get());
  if (!sb) {
    throw std::logic_error("Machine::sim: the '" + std::string(backend_->name()) +
                           "' backend has no event simulator");
  }
  return sb->sim();
}

RunResult Machine::run(const std::function<void(Context&)>& program) {
  if (!program) throw std::invalid_argument("Machine::run: empty program");
  std::vector<std::unique_ptr<Context>> contexts;
  contexts.reserve(static_cast<std::size_t>(num_procs()));
  for (int r = 0; r < num_procs(); ++r) {
    contexts.push_back(std::make_unique<Context>(*this, r));
  }
  if (tracer_) tracer_->reset();
  const auto host_t0 = std::chrono::steady_clock::now();
  // Each processor's whole body runs inside a root "program" span so every
  // recorded event has an enclosing scope.
  backend_->run([this, &program, &contexts](int r) {
    Context& ctx = *contexts[static_cast<std::size_t>(r)];
    if (tracer_) tracer_->begin_span(r, "program", "root");
    program(ctx);
    if (tracer_) tracer_->end_span(r);
  });
  const auto host_t1 = std::chrono::steady_clock::now();

  const exec::BackendStats bs = backend_->stats();
  RunResult res;
  res.finish_time = bs.finish_time;
  res.clocks = bs.clocks;
  res.messages = bs.messages;
  res.bytes = bs.bytes;
  res.barriers = bs.barriers;
  res.steals = bs.steals;
  res.stolen_iters = bs.stolen_iters;
  res.backend = backend_->name();
  res.host_ms = std::chrono::duration<double, std::milli>(host_t1 - host_t0).count();
  res.wait_ms = bs.wait_ms;
  res.plan_cache_hits = stat_plan_hits_.load(std::memory_order_relaxed);
  res.plan_cache_misses = stat_plan_misses_.load(std::memory_order_relaxed);
  res.traffic = bs.traffic;
  if (tracer_) {
    tracer_->finalize(res.finish_time);
    res.trace = tracer_;
  }
  return res;
}

void Machine::deposit(int src, int dst, std::uint64_t tag, Payload data) {
  (void)src;  // always the calling processor; the backend derives it
  backend_->deposit(dst, tag, std::move(data));
}

Payload Machine::receive(int dst, int src, std::uint64_t tag) {
  (void)dst;  // always the calling processor; the backend derives it
  return backend_->receive(src, tag);
}

void Machine::barrier(const pgroup::ProcessorGroup& group) { backend_->barrier(group); }

void Machine::io_operation(std::size_t bytes) { backend_->io_operation(bytes); }

Payload Machine::pool_acquire(std::size_t bytes) {
  Payload p;
  {
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (!payload_pool_.empty()) {
      p = std::move(payload_pool_.back());
      payload_pool_.pop_back();
    }
  }
  p.resize(bytes);
  return p;
}

void Machine::pool_release(Payload&& p) {
  if (p.capacity() == 0) return;
  p.clear();
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (payload_pool_.size() < kMaxPooledPayloads) {
    payload_pool_.push_back(std::move(p));
  }
}

}  // namespace fxpar::machine
