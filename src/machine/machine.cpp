#include "machine/machine.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "exec/sim_backend.hpp"
#include "exec/threaded_backend.hpp"
#include "machine/context.hpp"

namespace fxpar::machine {

double RunResult::efficiency() const {
  if (clocks.empty() || finish_time <= 0.0) return 0.0;
  double busy = 0.0;
  for (const auto& c : clocks) busy += c.busy;
  return busy / (finish_time * static_cast<double>(clocks.size()));
}

std::uint64_t RunResult::traffic_between(int src, int dst) const {
  const int P = static_cast<int>(clocks.size());
  if (traffic.empty() || src < 0 || dst < 0 || src >= P || dst >= P) return 0;
  return traffic[static_cast<std::size_t>(src) * static_cast<std::size_t>(P) +
                 static_cast<std::size_t>(dst)];
}

Machine::Machine(MachineConfig config) : config_(config) {
  config_.validate();
  pool_shards_ = std::vector<PoolShard>(static_cast<std::size_t>(config_.num_procs));
  switch (config_.backend) {
    case exec::BackendKind::Sim:
      backend_ = std::make_unique<exec::SimBackend>(config_);
      break;
    case exec::BackendKind::Threads:
      backend_ = std::make_unique<exec::ThreadedBackend>(config_);
      break;
  }
  if (config_.trace) {
    tracer_ = std::make_shared<trace::TraceRecorder>(config_.num_procs);
    tracer_->set_clock([this](int rank) { return backend_->now(rank); });
    backend_->set_tracer(tracer_.get());
  }
  if (config_.metrics) {
    metrics_ = std::make_unique<metrics::RuntimeMetrics>(config_.num_procs);
    backend_->set_metrics(metrics_.get());
  }
}

namespace {

/// Shard index for metric updates: the calling processor's rank, or 0 when
/// invoked outside a processor body (the driver thread).
int metric_shard(const exec::Backend& backend) noexcept {
  try {
    return backend.current_rank();
  } catch (...) {
    return 0;
  }
}

}  // namespace

void Machine::count_plan_cache(bool hit) noexcept {
  (hit ? stat_plan_hits_ : stat_plan_misses_).fetch_add(1, std::memory_order_relaxed);
  if (!metrics_ && !tracer_) return;
  const int rank = metric_shard(*backend_);
  if (metrics_) (hit ? metrics_->plan_hits : metrics_->plan_misses)->add(rank);
  if (tracer_) tracer_->plan_cache_event(rank, hit);
}

void Machine::count_collective_plan(bool hit) noexcept {
  (hit ? stat_coll_hits_ : stat_coll_misses_).fetch_add(1, std::memory_order_relaxed);
  if (!metrics_ && !tracer_) return;
  const int rank = metric_shard(*backend_);
  if (metrics_) {
    (hit ? metrics_->collective_plan_hits : metrics_->collective_plan_misses)->add(rank);
  }
  if (tracer_) tracer_->plan_cache_event(rank, hit);
}

Machine::~Machine() = default;

runtime::Simulator& Machine::sim() {
  auto* sb = dynamic_cast<exec::SimBackend*>(backend_.get());
  if (!sb) {
    throw std::logic_error("Machine::sim: the '" + std::string(backend_->name()) +
                           "' backend has no event simulator");
  }
  return sb->sim();
}

RunResult Machine::run(const std::function<void(Context&)>& program) {
  if (!program) throw std::invalid_argument("Machine::run: empty program");
  std::vector<std::unique_ptr<Context>> contexts;
  contexts.reserve(static_cast<std::size_t>(num_procs()));
  for (int r = 0; r < num_procs(); ++r) {
    contexts.push_back(std::make_unique<Context>(*this, r));
  }
  if (tracer_) tracer_->reset();
  const auto host_t0 = std::chrono::steady_clock::now();
  // Each processor's whole body runs inside a root "program" span so every
  // recorded event has an enclosing scope.
  backend_->run([this, &program, &contexts](int r) {
    Context& ctx = *contexts[static_cast<std::size_t>(r)];
    if (tracer_) tracer_->begin_span(r, "program", "root");
    program(ctx);
    if (tracer_) tracer_->end_span(r);
  });
  const auto host_t1 = std::chrono::steady_clock::now();
  if (metrics_) {
    metrics_->runs->add(0);
    metrics_->last_run_host_s->set(
        std::chrono::duration<double>(host_t1 - host_t0).count());
  }

  const exec::BackendStats bs = backend_->stats();
  RunResult res;
  res.finish_time = bs.finish_time;
  res.clocks = bs.clocks;
  res.messages = bs.messages;
  res.bytes = bs.bytes;
  res.barriers = bs.barriers;
  res.steals = bs.steals;
  res.stolen_iters = bs.stolen_iters;
  res.backend = backend_->name();
  res.host_ms = std::chrono::duration<double, std::milli>(host_t1 - host_t0).count();
  res.wait_ms = bs.wait_ms;
  res.plan_cache_hits = stat_plan_hits_.load(std::memory_order_relaxed);
  res.plan_cache_misses = stat_plan_misses_.load(std::memory_order_relaxed);
  res.collective_plan_hits = stat_coll_hits_.load(std::memory_order_relaxed);
  res.collective_plan_misses = stat_coll_misses_.load(std::memory_order_relaxed);
  res.pool_spills = stat_pool_spills_.load(std::memory_order_relaxed);
  res.pinning = exec::pin_policy_name(config_.pinning);
  res.numa_nodes = bs.numa_nodes;
  res.traffic = bs.traffic;
  if (tracer_) {
    tracer_->finalize(res.finish_time);
    res.trace = tracer_;
  }
  if (metrics_) {
    res.metrics =
        std::make_shared<const metrics::Snapshot>(metrics_->registry.snapshot());
  }
  return res;
}

void Machine::deposit(int src, int dst, std::uint64_t tag, Payload data) {
  // `src` is always the calling processor (the backend derives it too), so
  // it doubles as the metric shard index.
  if (metrics_) {
    metrics_->messages->add(src);
    metrics_->message_bytes->add(src, data.size());
  }
  backend_->deposit(dst, tag, std::move(data));
}

Payload Machine::receive(int dst, int src, std::uint64_t tag) {
  // `dst` is always the calling processor; the backend derives it.
  if (!metrics_) return backend_->receive(src, tag);
  const double t0 = backend_->now(dst);
  Payload p = backend_->receive(src, tag);
  // Modeled wait on the simulator, real blocked seconds on threads.
  metrics_->recv_wait_s->observe(dst, backend_->now(dst) - t0);
  return p;
}

void Machine::barrier(const pgroup::ProcessorGroup& group) {
  if (!metrics_) {
    backend_->barrier(group);
    return;
  }
  const int rank = metric_shard(*backend_);
  const double t0 = backend_->now(rank);
  backend_->barrier(group);
  metrics_->barriers->add(rank);
  metrics_->barrier_wait_s->observe(rank, backend_->now(rank) - t0);
}

void Machine::io_operation(std::size_t bytes) {
  if (metrics_) metrics_->io_ops->add(metric_shard(*backend_));
  backend_->io_operation(bytes);
}

namespace {

/// Pool shard of the calling processor, or -1 from the driver thread
/// (which has no shard and goes straight to the shared spill list).
int pool_shard_rank(const exec::Backend& backend) noexcept {
  try {
    return backend.current_rank();
  } catch (...) {
    return -1;
  }
}

}  // namespace

Payload Machine::pool_acquire(std::size_t bytes) {
  Payload p;
  const int rank = pool_shard_rank(*backend_);
  if (rank >= 0) {
    auto& shard = pool_shards_[static_cast<std::size_t>(rank)].bufs;
    if (!shard.empty()) {
      p = std::move(shard.back());
      shard.pop_back();
    }
  }
  if (p.capacity() == 0) {
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (!payload_pool_.empty()) {
      p = std::move(payload_pool_.back());
      payload_pool_.pop_back();
    }
  }
  // Same-size reuse makes this resize a no-op: unlike a freshly
  // constructed Payload there is no value-initializing memset. Contents
  // are unspecified by contract; every caller overwrites the buffer.
  p.resize(bytes);
  return p;
}

void Machine::pool_release(Payload&& p) {
  if (p.capacity() == 0) return;
  const int rank = pool_shard_rank(*backend_);
  if (rank >= 0) {
    auto& shard = pool_shards_[static_cast<std::size_t>(rank)].bufs;
    if (shard.size() < kMaxShardPayloads) {
      shard.push_back(std::move(p));
      return;
    }
    // Shard full: spill to the shared list so senders elsewhere can
    // reacquire the allocation (buffers migrate sender -> receiver).
    stat_pool_spills_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_) metrics_->pool_spills->add(rank);
  }
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (payload_pool_.size() < kMaxPooledPayloads) {
    payload_pool_.push_back(std::move(p));
  }
}

}  // namespace fxpar::machine
