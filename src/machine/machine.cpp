#include "machine/machine.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "exec/proc_backend.hpp"
#include "exec/sim_backend.hpp"
#include "exec/threaded_backend.hpp"
#include "machine/context.hpp"
#include "obs/diagnostics.hpp"

namespace fxpar::machine {

double RunResult::efficiency() const {
  if (clocks.empty() || finish_time <= 0.0) return 0.0;
  double busy = 0.0;
  for (const auto& c : clocks) busy += c.busy;
  return busy / (finish_time * static_cast<double>(clocks.size()));
}

std::uint64_t RunResult::traffic_between(int src, int dst) const {
  const int P = static_cast<int>(clocks.size());
  if (traffic.empty() || src < 0 || dst < 0 || src >= P || dst >= P) return 0;
  return traffic[static_cast<std::size_t>(src) * static_cast<std::size_t>(P) +
                 static_cast<std::size_t>(dst)];
}

Machine::Machine(MachineConfig config) : config_(config) {
  config_.validate();
  pool_shards_ = std::vector<PoolShard>(static_cast<std::size_t>(config_.num_procs));
  switch (config_.backend) {
    case exec::BackendKind::Sim:
      backend_ = std::make_unique<exec::SimBackend>(config_);
      break;
    case exec::BackendKind::Threads:
      backend_ = std::make_unique<exec::ThreadedBackend>(config_);
      break;
    case exec::BackendKind::Proc:
      backend_ = std::make_unique<exec::ProcBackend>(config_);
      break;
  }
  if (config_.trace) {
    tracer_ = std::make_shared<trace::TraceRecorder>(config_.num_procs);
    tracer_->set_clock([this](int rank) { return backend_->now(rank); });
    backend_->set_tracer(tracer_.get());
  }
  if (config_.metrics) {
    metrics_ = std::make_unique<metrics::RuntimeMetrics>(config_.num_procs);
    backend_->set_metrics(metrics_.get());
  }
  if (config_.flight_recorder || config_.obs_port >= 0) {
    flight_ = std::make_unique<obs::FlightRecorder>(
        config_.num_procs, config_.flight_events, config_.flight_window_s);
    backend_->set_flight(flight_.get());
  }
  if (config_.obs_port >= 0) {
    endpoint_ = std::make_unique<obs::Endpoint>();
    endpoint_->handle("/metrics", "text/plain; version=0.0.4", [this] {
      return metrics_ ? metrics_->registry.snapshot().to_prometheus()
                      : std::string("# metrics disabled\n");
    });
    endpoint_->handle("/healthz", "application/json",
                      [this] { return healthz_json(); });
    endpoint_->handle("/trace", "application/json", [this] {
      return flight_ ? flight_->chrome_json()
                     : std::string("{\"traceEvents\":[]}");
    });
    endpoint_->handle("/diagnostics", "application/json",
                      [this] { return capture_diagnostic("on-demand", ""); });
    if (!endpoint_->start(config_.obs_port)) {
      std::fprintf(stderr,
                   "fxpar obs: cannot bind 127.0.0.1:%d; live endpoint "
                   "disabled\n",
                   config_.obs_port);
      endpoint_.reset();
    }
  }
}

namespace {

/// Shard index for metric updates: the calling processor's rank, or 0 when
/// invoked outside a processor body (the driver thread).
int metric_shard(const exec::Backend& backend) noexcept {
  try {
    return backend.current_rank();
  } catch (...) {
    return 0;
  }
}

}  // namespace

void Machine::count_plan_cache(bool hit) noexcept {
  (hit ? stat_plan_hits_ : stat_plan_misses_).fetch_add(1, std::memory_order_relaxed);
  if (!metrics_ && !tracer_) return;
  const int rank = metric_shard(*backend_);
  if (metrics_) (hit ? metrics_->plan_hits : metrics_->plan_misses)->add(rank);
  if (tracer_) tracer_->plan_cache_event(rank, hit);
}

void Machine::count_collective_plan(bool hit) noexcept {
  (hit ? stat_coll_hits_ : stat_coll_misses_).fetch_add(1, std::memory_order_relaxed);
  if (!metrics_ && !tracer_) return;
  const int rank = metric_shard(*backend_);
  if (metrics_) {
    (hit ? metrics_->collective_plan_hits : metrics_->collective_plan_misses)->add(rank);
  }
  if (tracer_) tracer_->plan_cache_event(rank, hit);
}

Machine::~Machine() {
  // Stop the server thread before any member it reads is torn down.
  if (endpoint_) endpoint_->stop();
  stop_watchdog();
}

runtime::Simulator& Machine::sim() {
  auto* sb = dynamic_cast<exec::SimBackend*>(backend_.get());
  if (!sb) {
    throw std::logic_error("Machine::sim: the '" + std::string(backend_->name()) +
                           "' backend has no event simulator");
  }
  return sb->sim();
}

RunResult Machine::run(const std::function<void(Context&)>& program) {
  if (!program) throw std::invalid_argument("Machine::run: empty program");
  std::vector<std::unique_ptr<Context>> contexts;
  contexts.reserve(static_cast<std::size_t>(num_procs()));
  for (int r = 0; r < num_procs(); ++r) {
    contexts.push_back(std::make_unique<Context>(*this, r));
  }
  if (tracer_) tracer_->reset();
  const auto host_t0 = std::chrono::steady_clock::now();
  run_state_.store(1, std::memory_order_release);
  start_watchdog();
  // Each processor's whole body runs inside a root "program" span so every
  // recorded event has an enclosing scope.
  try {
    backend_->run([this, &program, &contexts](int r) {
      Context& ctx = *contexts[static_cast<std::size_t>(r)];
      if (tracer_) tracer_->begin_span(r, "program", "root");
      program(ctx);
      if (tracer_) tracer_->end_span(r);
    });
  } catch (const std::exception& e) {
    stop_watchdog();
    // State first: capture_diagnostic only takes live sim introspection
    // when no run is executing (run_state_ != 1).
    run_state_.store(3, std::memory_order_release);
    const bool deadlock = dynamic_cast<const runtime::DeadlockError*>(&e) != nullptr;
    const std::string bundle =
        capture_diagnostic(deadlock ? "deadlock" : "abort", e.what());
    if (obs_enabled()) std::fprintf(stderr, "%s\n", bundle.c_str());
    throw;
  } catch (...) {
    stop_watchdog();
    run_state_.store(3, std::memory_order_release);
    capture_diagnostic("abort", "(non-standard exception)");
    throw;
  }
  stop_watchdog();
  run_state_.store(2, std::memory_order_release);
  const auto host_t1 = std::chrono::steady_clock::now();
  if (metrics_) {
    metrics_->runs->add(0);
    metrics_->last_run_host_s->set(
        std::chrono::duration<double>(host_t1 - host_t0).count());
  }

  const exec::BackendStats bs = backend_->stats();
  RunResult res;
  res.finish_time = bs.finish_time;
  res.clocks = bs.clocks;
  res.messages = bs.messages;
  res.bytes = bs.bytes;
  res.barriers = bs.barriers;
  res.steals = bs.steals;
  res.stolen_iters = bs.stolen_iters;
  res.backend = backend_->name();
  res.host_ms = std::chrono::duration<double, std::milli>(host_t1 - host_t0).count();
  res.wait_ms = bs.wait_ms;
  res.plan_cache_hits = stat_plan_hits_.load(std::memory_order_relaxed);
  res.plan_cache_misses = stat_plan_misses_.load(std::memory_order_relaxed);
  res.collective_plan_hits = stat_coll_hits_.load(std::memory_order_relaxed);
  res.collective_plan_misses = stat_coll_misses_.load(std::memory_order_relaxed);
  res.pool_spills = stat_pool_spills_.load(std::memory_order_relaxed);
  res.pinning = exec::pin_policy_name(config_.pinning);
  res.numa_nodes = bs.numa_nodes;
  res.traffic = bs.traffic;
  if (tracer_) {
    tracer_->finalize(res.finish_time);
    res.trace = tracer_;
  }
  if (metrics_) {
    res.metrics =
        std::make_shared<const metrics::Snapshot>(metrics_->registry.snapshot());
  }
  return res;
}

void Machine::deposit(int src, int dst, std::uint64_t tag, Payload data) {
  // `src` is always the calling processor (the backend derives it too), so
  // it doubles as the metric shard index.
  if (metrics_) {
    metrics_->messages->add(src);
    metrics_->message_bytes->add(src, data.size());
  }
  if (flight_) {
    flight_->record(src, obs::FlightKind::Message, backend_->now(src), "send",
                    static_cast<std::uint64_t>(dst), tag);
  }
  backend_->deposit(dst, tag, std::move(data));
}

Payload Machine::receive(int dst, int src, std::uint64_t tag) {
  // `dst` is always the calling processor; the backend derives it.
  if (!metrics_ && !flight_) return backend_->receive(src, tag);
  const double t0 = backend_->now(dst);
  Payload p = backend_->receive(src, tag);
  // Modeled wait on the simulator, real blocked seconds on threads.
  if (metrics_) metrics_->recv_wait_s->observe(dst, backend_->now(dst) - t0);
  if (flight_) {
    flight_->record(dst, obs::FlightKind::Recv, backend_->now(dst), "recv",
                    static_cast<std::uint64_t>(src), tag);
  }
  return p;
}

void Machine::barrier(const pgroup::ProcessorGroup& group) {
  if (!metrics_ && !flight_) {
    backend_->barrier(group);
    return;
  }
  const int rank = metric_shard(*backend_);
  const double t0 = backend_->now(rank);
  backend_->barrier(group);
  if (metrics_) {
    metrics_->barriers->add(rank);
    metrics_->barrier_wait_s->observe(rank, backend_->now(rank) - t0);
  }
  if (flight_) {
    flight_->record(rank, obs::FlightKind::Barrier, backend_->now(rank),
                    "barrier", group.key(), 0);
  }
}

void Machine::io_operation(std::size_t bytes) {
  if (!metrics_ && !flight_) {
    backend_->io_operation(bytes);
    return;
  }
  const int rank = metric_shard(*backend_);
  if (metrics_) metrics_->io_ops->add(rank);
  backend_->io_operation(bytes);
  if (flight_) {
    flight_->record(rank, obs::FlightKind::Io, backend_->now(rank), "io",
                    static_cast<std::uint64_t>(bytes), 0);
  }
}

// ---------------------------------------------------------------------------
// Live observability plane

std::string Machine::healthz_json() const {
  static const char* kStates[] = {"idle", "running", "done", "failed"};
  const int st = run_state_.load(std::memory_order_acquire);
  std::ostringstream os;
  os << "{\"status\":\"" << (st == 3 ? "failed" : "ok") << "\",\"run_state\":\""
     << kStates[st < 0 || st > 3 ? 0 : st] << "\",\"backend\":\""
     << backend_->name() << "\",\"procs\":" << num_procs();
  // Per-worker liveness. The simulator's introspection is fiber-mutated
  // state, unsafe to touch while its run thread executes; the threaded
  // backend answers from atomics at any time.
  const bool live_sim_run =
      backend_->kind() == exec::BackendKind::Sim && st == 1;
  if (!live_sim_run) {
    const obs::Introspection intro = backend_->introspect();
    os << ",\"now\":" << intro.now
       << ",\"workers\":" << obs::workers_json(intro.workers, intro.now)
       << ",\"barriers\":" << obs::barriers_json(intro.barriers);
  } else {
    os << ",\"workers\":null,\"barriers\":null";
  }
  if (flight_) {
    os << ",\"flight_recorded\":" << flight_->total_recorded()
       << ",\"flight_dropped\":" << flight_->dropped();
  }
  {
    std::lock_guard<std::mutex> lk(healthz_extra_mu_);
    if (healthz_extra_) os << ",\"serve\":" << healthz_extra_();
  }
  os << "}";
  return os.str();
}

std::string Machine::last_diagnostic() const {
  std::lock_guard<std::mutex> lk(diag_mu_);
  return last_diagnostic_;
}

std::string Machine::capture_diagnostic(const std::string& reason,
                                        const std::string& error) {
  obs::DiagnosticInfo d;
  d.reason = reason;
  d.error = error;
  d.backend = backend_->name();
  d.procs = num_procs();
  // Prefer the introspection frozen at the moment of failure (the threaded
  // backend captures one before waking workers to unwind); fall back to a
  // live one when it is safe to take.
  d.intro = backend_->failure_introspection();
  if (d.intro.workers.empty()) {
    const bool live_sim_run = backend_->kind() == exec::BackendKind::Sim &&
                              run_state_.load(std::memory_order_acquire) == 1;
    if (!live_sim_run) d.intro = backend_->introspect();
  }
  if (metrics_) d.metrics_json = metrics_->registry.snapshot().to_json();
  if (flight_) d.recent = flight_->snapshot();
  std::string bundle = obs::diagnostic_json(d);
  {
    std::lock_guard<std::mutex> lk(diag_mu_);
    last_diagnostic_ = bundle;
  }
  return bundle;
}

void Machine::start_watchdog() {
  // Concurrent backends only: the watchdog polls Backend::progress() from
  // its own thread, which the single-threaded simulator cannot tolerate
  // (and a sim run monopolizes the run thread anyway). The threaded
  // backend answers from worker atomics, the process backend from its
  // shared-memory control block — both safe at any time.
  if (config_.stall_watchdog_s <= 0 ||
      backend_->kind() == exec::BackendKind::Sim) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(watchdog_mu_);
    watchdog_stop_ = false;
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

void Machine::stop_watchdog() {
  {
    std::lock_guard<std::mutex> lk(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void Machine::watchdog_loop() {
  const double limit = config_.stall_watchdog_s;
  // Poll at a quarter of the stall limit, clamped to [10, 250] ms: fine
  // enough to fire near the deadline, coarse enough to cost nothing.
  const auto poll = std::chrono::milliseconds(
      std::min<long>(250, std::max<long>(10, static_cast<long>(limit * 250))));
  std::uint64_t last_progress = backend_->progress();
  auto last_change = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lk(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lk, poll);
    if (watchdog_stop_) break;
    const std::uint64_t p = backend_->progress();
    const auto now = std::chrono::steady_clock::now();
    if (p != last_progress) {
      last_progress = p;
      last_change = now;
      continue;
    }
    if (std::chrono::duration<double>(now - last_change).count() < limit) continue;
    lk.unlock();
    std::ostringstream why;
    why << "no runtime-service progress for " << limit << " s";
    const std::string bundle = capture_diagnostic("stall", why.str());
    std::fprintf(stderr, "fxpar stall watchdog: %s\n", bundle.c_str());
    lk.lock();
    last_change = now;  // re-arm: report again after another full window
  }
}

namespace {

/// Pool shard of the calling processor, or -1 from the driver thread
/// (which has no shard and goes straight to the shared spill list).
int pool_shard_rank(const exec::Backend& backend) noexcept {
  try {
    return backend.current_rank();
  } catch (...) {
    return -1;
  }
}

}  // namespace

Payload Machine::pool_acquire(std::size_t bytes) {
  Payload p;
  const int rank = pool_shard_rank(*backend_);
  if (rank >= 0) {
    auto& shard = pool_shards_[static_cast<std::size_t>(rank)].bufs;
    if (!shard.empty()) {
      p = std::move(shard.back());
      shard.pop_back();
    }
  }
  if (p.capacity() == 0) {
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (!payload_pool_.empty()) {
      p = std::move(payload_pool_.back());
      payload_pool_.pop_back();
    }
  }
  // Same-size reuse makes this resize a no-op: unlike a freshly
  // constructed Payload there is no value-initializing memset. Contents
  // are unspecified by contract; every caller overwrites the buffer.
  p.resize(bytes);
  return p;
}

std::vector<double> Machine::double_acquire(std::size_t n) {
  std::vector<double> v;
  const int rank = pool_shard_rank(*backend_);
  if (rank >= 0) {
    auto& shard = pool_shards_[static_cast<std::size_t>(rank)].dbufs;
    if (!shard.empty()) {
      v = std::move(shard.back());
      shard.pop_back();
    }
  }
  if (v.capacity() == 0) {
    std::lock_guard<std::mutex> lk(pool_mu_);
    if (!double_pool_.empty()) {
      v = std::move(double_pool_.back());
      double_pool_.pop_back();
    }
  }
  // Same-capacity reuse makes this resize a no-op (no value-initializing
  // memset of a fresh vector). Contents are unspecified by contract.
  v.resize(n);
  return v;
}

void Machine::double_release(std::vector<double>&& v) {
  if (v.capacity() == 0) return;
  const int rank = pool_shard_rank(*backend_);
  if (rank >= 0) {
    auto& shard = pool_shards_[static_cast<std::size_t>(rank)].dbufs;
    if (shard.size() < kMaxShardPayloads) {
      shard.push_back(std::move(v));
      return;
    }
    stat_pool_spills_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_) metrics_->pool_spills->add(rank);
  }
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (double_pool_.size() < kMaxPooledPayloads) {
    double_pool_.push_back(std::move(v));
  }
}

void Machine::pool_release(Payload&& p) {
  if (p.capacity() == 0) return;
  const int rank = pool_shard_rank(*backend_);
  if (rank >= 0) {
    auto& shard = pool_shards_[static_cast<std::size_t>(rank)].bufs;
    if (shard.size() < kMaxShardPayloads) {
      shard.push_back(std::move(p));
      return;
    }
    // Shard full: spill to the shared list so senders elsewhere can
    // reacquire the allocation (buffers migrate sender -> receiver).
    stat_pool_spills_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_) metrics_->pool_spills->add(rank);
  }
  std::lock_guard<std::mutex> lk(pool_mu_);
  if (payload_pool_.size() < kMaxPooledPayloads) {
    payload_pool_.push_back(std::move(p));
  }
}

}  // namespace fxpar::machine
