// fxpar machine: the SPMD multicomputer.
//
// Machine owns one execution backend (exec/backend.hpp) — the
// deterministic discrete-event simulator or the shared-memory threaded
// engine, selected by MachineConfig::backend — plus everything that is
// backend-independent: the trace recorder, the redistribution plan-cache
// slot, the payload buffer pool and the per-run statistics. It launches an
// SPMD program body on every logical processor. User code never touches
// Machine directly while running; it receives a Context (see context.hpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/backend.hpp"
#include "machine/config.hpp"
#include "metrics/runtime_metrics.hpp"
#include "obs/endpoint.hpp"
#include "obs/flight_recorder.hpp"
#include "pgroup/group.hpp"
#include "runtime/simulator.hpp"
#include "trace/trace.hpp"

namespace fxpar::machine {

class Context;

/// Raw bytes exchanged by the direct-deposit layer.
using Payload = exec::Payload;

/// Base class for caches that higher layers attach to the machine (the dist
/// layer's redistribution plan cache, see dist/plan_cache.hpp). The machine
/// owns the storage so cached schedules are shared by all processors and
/// survive across run() calls; the attaching layer owns the concrete type.
class MachineCacheBase {
 public:
  virtual ~MachineCacheBase() = default;
};

/// Aggregate results of one run. The time fields are backend-defined:
/// modeled machine seconds on the simulator, real host seconds on the
/// threaded backend (docs/execution.md).
struct RunResult {
  runtime::SimTime finish_time = 0.0;  ///< completion time of the slowest processor
  std::vector<runtime::ProcClock> clocks;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t barriers = 0;

  /// Work-stealing counters (threaded backend with
  /// MachineConfig::work_stealing on; always 0 on the simulator): chunks of
  /// data parallel loops executed by an idle sibling of the owner's group,
  /// and the iterations those chunks covered.
  std::uint64_t steals = 0;
  std::uint64_t stolen_iters = 0;

  /// Which engine executed the run: "sim" or "threads".
  std::string backend = "sim";

  /// Real wall-clock milliseconds spent inside Machine::run (both
  /// backends): simulation overhead on `sim`, actual parallel execution
  /// on `threads`.
  double host_ms = 0.0;

  /// Total real milliseconds processors spent blocked (threaded backend
  /// only; 0 on the simulator, whose idle time is modeled, not real).
  double wait_ms = 0.0;

  /// Redistribution plan cache counters (see dist/plan_cache.hpp): a miss
  /// builds a schedule, a hit replays one. Both zero when
  /// MachineConfig::plan_cache is off or no redistribution ran.
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;

  /// Collective plan cache counters (see comm/collective_plan.hpp): cached
  /// broadcast/reduce trees and rooted gather/scatter schedules. Both zero
  /// when MachineConfig::plan_cache is off or no collective ran.
  std::uint64_t collective_plan_hits = 0;
  std::uint64_t collective_plan_misses = 0;

  /// Payload-pool releases that could not stay in the releasing worker's
  /// shard and spilled to the shared list (see Machine::pool_release).
  std::uint64_t pool_spills = 0;

  /// The worker placement policy of the run ("none", "compact", "scatter",
  /// "numa"; see MachineConfig::pinning). Placement only affects host
  /// time, never results.
  std::string pinning = "none";

  /// Per-worker NUMA node ids when the threaded backend pinned its workers
  /// (empty otherwise); index is the logical rank, -1 an unpinned worker.
  std::vector<int> numa_nodes;

  /// Per-pair traffic: traffic[src * P + dst] bytes sent from src to dst.
  /// Populated only when MachineConfig::record_traffic is set.
  std::vector<std::uint64_t> traffic;

  /// The structured event trace of the run; null unless
  /// MachineConfig::trace was set. Shared with the Machine: a later run()
  /// on the same Machine resets and reuses the recorder.
  std::shared_ptr<const trace::TraceRecorder> trace;

  /// Merged metrics snapshot taken right after the run; null when
  /// MachineConfig::metrics is off. Counters are cumulative over the
  /// Machine's lifetime (a second run() keeps counting), matching the
  /// Prometheus counter convention.
  std::shared_ptr<const metrics::Snapshot> metrics;

  /// Machine efficiency: mean busy fraction over processors.
  double efficiency() const;

  /// Bytes sent from src to dst (0 if traffic recording was off).
  std::uint64_t traffic_between(int src, int dst) const;
};

class Machine {
 public:
  explicit Machine(MachineConfig config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const noexcept { return config_; }
  int num_procs() const noexcept { return config_.num_procs; }

  /// Runs `program` SPMD on all processors and returns run statistics.
  /// The Context passed to each instance is private to that processor.
  RunResult run(const std::function<void(Context&)>& program);

  // ---- internal services used by Context (public for the comm layer) ----

  /// Deposits a message from physical `src` (which must be the calling
  /// processor) into the mailbox of physical `dst`.
  void deposit(int src, int dst, std::uint64_t tag, Payload data);

  /// Receives the next message from (`src`, `tag`); blocks until available.
  /// `dst` must be the calling processor.
  Payload receive(int dst, int src, std::uint64_t tag);

  /// Subset barrier over `group`; the calling processor must be a member.
  /// Matched across members by content (group key) and per-group epoch.
  void barrier(const pgroup::ProcessorGroup& group);

  /// Sequential I/O device: performs an operation of `bytes` bytes for the
  /// current processor; operations from all processors serialize.
  void io_operation(std::size_t bytes);

  /// The execution engine behind this machine.
  exec::Backend& backend() noexcept { return *backend_; }
  const exec::Backend& backend() const noexcept { return *backend_; }

  /// The underlying event simulator. Throws std::logic_error on the
  /// threaded backend — code that needs modeled time must run on `sim`.
  runtime::Simulator& sim();

  /// The event recorder, or nullptr when MachineConfig::trace is off.
  trace::TraceRecorder* tracer() noexcept { return tracer_.get(); }

  /// The always-on metric set, or nullptr when MachineConfig::metrics is
  /// off. Instrumentation sites hold this pointer and test for null.
  metrics::RuntimeMetrics* metrics() noexcept { return metrics_.get(); }
  const metrics::RuntimeMetrics* metrics() const noexcept { return metrics_.get(); }

  /// Convenience: merged snapshot of every metric (empty-ish snapshot when
  /// metrics are disabled, so callers need no null test).
  metrics::Snapshot metrics_snapshot() const {
    return metrics_ ? metrics_->registry.snapshot() : metrics::Snapshot{};
  }

  // ---- live observability plane (src/obs/, docs/observability.md) ----

  /// The flight recorder, or nullptr unless MachineConfig::flight_recorder
  /// (or obs_port >= 0) enabled it.
  obs::FlightRecorder* flight() noexcept { return flight_.get(); }

  /// Port the live endpoint is listening on (resolves obs_port = 0 to the
  /// kernel-chosen port), or -1 when no endpoint is running.
  int obs_port() const noexcept { return endpoint_ ? endpoint_->port() : -1; }

  /// The /healthz body: run state, backend, and per-worker liveness.
  std::string healthz_json() const;

  /// Installs a provider whose JSON fragment is appended to /healthz under
  /// a "serve" key (the serving driver reports offered load, active mapping
  /// and remap counts here). The callback must return a complete JSON value
  /// and be callable from the endpoint thread at any time; pass an empty
  /// function to uninstall.
  void set_healthz_extra(std::function<std::string()> extra) {
    std::lock_guard<std::mutex> lk(healthz_extra_mu_);
    healthz_extra_ = std::move(extra);
  }

  /// The most recent diagnostic bundle, "" if none was ever captured.
  /// Set on DeadlockError, on an aborting exception, when the stall
  /// watchdog fires, and by each /diagnostics request.
  std::string last_diagnostic() const;

  /// Builds a bundle from current state (and stores it as
  /// last_diagnostic()). `reason` is "deadlock" / "abort" / "stall" /
  /// "on-demand"; `error` the exception text if any.
  std::string capture_diagnostic(const std::string& reason,
                                 const std::string& error);

  // ---- redistribution plan cache slot (see dist/plan_cache.hpp) ----

  /// The attached plan cache, or nullptr before first use.
  MachineCacheBase* plan_cache_slot() noexcept { return plan_cache_.get(); }
  void set_plan_cache_slot(std::unique_ptr<MachineCacheBase> cache) {
    plan_cache_ = std::move(cache);
  }
  /// Serializes plan-cache attachment and lookup across worker threads
  /// (the simulator's fibers never contend on it).
  std::mutex& cache_mutex() noexcept { return cache_mu_; }
  /// Bumps the hit/miss counters reported through RunResult, the metrics
  /// registry, and the calling processor's open trace spans. Atomic: on
  /// the threaded backend every worker counts concurrently.
  void count_plan_cache(bool hit) noexcept;

  // ---- collective plan cache slot (see comm/collective_plan.hpp) ----
  //
  // A second, independent slot: the comm layer cannot see the dist layer's
  // PlanCache type (comm links below dist), and keeping the counters apart
  // lets A/B gates assert on redistribution and collective caching
  // separately. Attachment is serialized by the same cache_mutex().

  /// The attached collective-schedule cache, or nullptr before first use.
  MachineCacheBase* collective_cache_slot() noexcept { return collective_cache_.get(); }
  void set_collective_cache_slot(std::unique_ptr<MachineCacheBase> cache) {
    collective_cache_ = std::move(cache);
  }
  /// Collective-plan counterpart of count_plan_cache().
  void count_collective_plan(bool hit) noexcept;

  // ---- payload buffer pool ----
  //
  // Repeated handoffs move payload buffers sender -> mailbox -> receiver;
  // returning them here after unpacking lets the next pack reuse the
  // allocation instead of growing a fresh vector per message. The pool is
  // sharded per logical processor: the owning worker pushes and pops its
  // shard without any lock (the backend guarantees one worker per rank),
  // and only shard overflow — or an empty shard on acquire — touches the
  // shared spill list under pool_mu_. Buffers migrate sender -> receiver,
  // so the spill list is what lets allocations circulate back to the
  // senders in rooted patterns (gathers, reductions). The pool is
  // host-side only and never changes modeled time.

  /// A buffer of exactly `bytes` bytes, reusing a pooled allocation if
  /// any. The *contents are unspecified* — every caller overwrites the
  /// buffer in full before the bytes become visible to anyone.
  Payload pool_acquire(std::size_t bytes);

  /// Returns a spent buffer to the releasing worker's shard (spilling to
  /// the shared list when the shard is full; dropped once both are full).
  void pool_release(Payload&& p);

  /// Releases that overflowed a worker shard onto the shared spill list
  /// (cumulative; also exported as fxpar_machine_pool_spills_total).
  std::uint64_t pool_spill_count() const noexcept {
    return stat_pool_spills_.load(std::memory_order_relaxed);
  }

  // ---- typed double-vector scratch pool ----
  //
  // The cached collective executors also churn std::vector<double> results
  // (the dominant element type of the numeric apps): every unpack, gather
  // concatenation and allreduce intermediate is a fresh vector that dies
  // one call later. These mirror pool_acquire/pool_release for that one
  // type, with the same shard-then-spill discipline, so a steady-state
  // collective stream is allocation-quiet (bench_micro --collective-compare
  // watches minor faults across iterations).

  /// A vector of exactly `n` doubles, reusing a pooled allocation if any.
  /// Contents are unspecified; every caller overwrites them in full.
  std::vector<double> double_acquire(std::size_t n);

  /// Returns a spent double vector to the calling worker's shard.
  void double_release(std::vector<double>&& v);

 private:
  /// One worker's private stash of spent payload buffers. Cache-line
  /// aligned so neighbouring ranks' pushes never false-share.
  struct alignas(64) PoolShard {
    std::vector<Payload> bufs;
    std::vector<std::vector<double>> dbufs;
  };

  /// True when any observability feature that wants failure bundles on
  /// stderr is on (endpoint, flight recorder or watchdog).
  bool obs_enabled() const noexcept {
    return config_.obs_port >= 0 || config_.flight_recorder ||
           config_.stall_watchdog_s > 0;
  }
  void start_watchdog();
  void stop_watchdog();
  void watchdog_loop();

  MachineConfig config_;
  std::unique_ptr<exec::Backend> backend_;
  std::shared_ptr<trace::TraceRecorder> tracer_;
  std::unique_ptr<metrics::RuntimeMetrics> metrics_;
  std::unique_ptr<obs::FlightRecorder> flight_;

  /// Run lifecycle for /healthz and for gating live sim introspection:
  /// 0 idle (never ran), 1 running, 2 done, 3 failed.
  std::atomic<int> run_state_{0};
  mutable std::mutex diag_mu_;
  std::string last_diagnostic_;  ///< guarded by diag_mu_

  mutable std::mutex healthz_extra_mu_;
  std::function<std::string()> healthz_extra_;  ///< guarded by healthz_extra_mu_

  // Stall watchdog (threaded backend only): one monitor thread per run.
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  ///< guarded by watchdog_mu_

  std::atomic<std::uint64_t> stat_plan_hits_{0};
  std::atomic<std::uint64_t> stat_plan_misses_{0};
  std::atomic<std::uint64_t> stat_coll_hits_{0};
  std::atomic<std::uint64_t> stat_coll_misses_{0};
  std::atomic<std::uint64_t> stat_pool_spills_{0};

  std::mutex cache_mu_;
  std::unique_ptr<MachineCacheBase> plan_cache_;
  std::unique_ptr<MachineCacheBase> collective_cache_;

  std::vector<PoolShard> pool_shards_;  ///< one per rank; owner access only
  std::mutex pool_mu_;
  std::vector<Payload> payload_pool_;  ///< shared spill list (pool_mu_)
  std::vector<std::vector<double>> double_pool_;  ///< shared spill list (pool_mu_)
  static constexpr std::size_t kMaxShardPayloads = 16;
  static constexpr std::size_t kMaxPooledPayloads = 64;

  /// Declared last: its handlers capture `this` and read every member
  /// above, so the server thread must be the first thing destroyed.
  std::unique_ptr<obs::Endpoint> endpoint_;
};

}  // namespace fxpar::machine
