// fxpar machine: the simulated SPMD multicomputer.
//
// Machine owns the discrete-event Simulator, one mailbox per physical
// processor, the subset-barrier manager and the sequential I/O device, and
// launches an SPMD program body on every processor. User code never touches
// Machine directly while running; it receives a Context (see context.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "machine/config.hpp"
#include "pgroup/group.hpp"
#include "runtime/simulator.hpp"
#include "trace/trace.hpp"

namespace fxpar::machine {

class Context;

/// Raw bytes exchanged by the direct-deposit layer.
using Payload = std::vector<std::byte>;

/// Base class for caches that higher layers attach to the machine (the dist
/// layer's redistribution plan cache, see dist/plan_cache.hpp). The machine
/// owns the storage so cached schedules are shared by all processors and
/// survive across run() calls; the attaching layer owns the concrete type.
class MachineCacheBase {
 public:
  virtual ~MachineCacheBase() = default;
};

/// Aggregate results of one simulated run.
struct RunResult {
  runtime::SimTime finish_time = 0.0;  ///< completion time of the slowest processor
  std::vector<runtime::ProcClock> clocks;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t barriers = 0;

  /// Redistribution plan cache counters (see dist/plan_cache.hpp): a miss
  /// builds a schedule, a hit replays one. Both zero when
  /// MachineConfig::plan_cache is off or no redistribution ran.
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;

  /// Per-pair traffic: traffic[src * P + dst] bytes sent from src to dst.
  /// Populated only when MachineConfig::record_traffic is set.
  std::vector<std::uint64_t> traffic;

  /// The structured event trace of the run; null unless
  /// MachineConfig::trace was set. Shared with the Machine: a later run()
  /// on the same Machine resets and reuses the recorder.
  std::shared_ptr<const trace::TraceRecorder> trace;

  /// Machine efficiency: mean busy fraction over processors.
  double efficiency() const;

  /// Bytes sent from src to dst (0 if traffic recording was off).
  std::uint64_t traffic_between(int src, int dst) const;
};

class Machine {
 public:
  explicit Machine(MachineConfig config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const noexcept { return config_; }
  int num_procs() const noexcept { return config_.num_procs; }

  /// Runs `program` SPMD on all processors and returns timing statistics.
  /// The Context passed to each instance is private to that processor.
  RunResult run(const std::function<void(Context&)>& program);

  // ---- internal services used by Context (public for the comm layer) ----

  /// Deposits a message from physical `src` (the current processor) into the
  /// mailbox of physical `dst`. Charges sender costs and computes arrival.
  void deposit(int src, int dst, std::uint64_t tag, Payload data);

  /// Receives the next message from (`src`, `tag`); blocks until available.
  Payload receive(int dst, int src, std::uint64_t tag);

  /// Subset barrier over `group`; the calling processor must be a member.
  /// Matched across members by content (group key) and per-group epoch.
  void barrier(const pgroup::ProcessorGroup& group);

  /// Sequential I/O device: performs an operation of `bytes` bytes for the
  /// current processor; operations from all processors serialize.
  void io_operation(std::size_t bytes);

  runtime::Simulator& sim() { return *sim_; }

  /// The event recorder, or nullptr when MachineConfig::trace is off.
  trace::TraceRecorder* tracer() noexcept { return tracer_.get(); }

  // ---- redistribution plan cache slot (see dist/plan_cache.hpp) ----

  /// The attached plan cache, or nullptr before first use.
  MachineCacheBase* plan_cache_slot() noexcept { return plan_cache_.get(); }
  void set_plan_cache_slot(std::unique_ptr<MachineCacheBase> cache) {
    plan_cache_ = std::move(cache);
  }
  /// Bumps the hit/miss counters reported through RunResult.
  void count_plan_cache(bool hit) noexcept {
    (hit ? stat_plan_hits_ : stat_plan_misses_) += 1;
  }

  // ---- payload buffer pool ----
  //
  // Repeated handoffs move payload buffers sender -> mailbox -> receiver;
  // returning them here after unpacking lets the next pack reuse the
  // allocation instead of growing a fresh vector per message. The pool is
  // host-side only and never changes modeled time.

  /// A buffer of exactly `bytes` bytes, reusing a pooled allocation if any.
  Payload pool_acquire(std::size_t bytes);

  /// Returns a spent buffer to the pool (drops it once the pool is full).
  void pool_release(Payload&& p);

 private:
  struct MailKey {
    int src;
    std::uint64_t tag;
    friend auto operator<=>(const MailKey&, const MailKey&) = default;
  };
  struct Message {
    Payload data;
    runtime::SimTime arrival = 0.0;
    std::uint64_t trace_id = 0;  ///< TraceRecorder message id (0 = untraced)
  };
  struct WaitState {
    bool waiting = false;
    MailKey key{};
  };
  struct BarrierState {
    int arrived = 0;
    runtime::SimTime max_arrival = 0.0;
    int last_arriver = -1;       ///< proc whose modeled arrival is max_arrival
    std::vector<int> waiting;  ///< physical ranks blocked in this barrier
    std::uint64_t trace_id = 0;  ///< TraceRecorder barrier id (0 = untraced)
  };

  MachineConfig config_;
  std::unique_ptr<runtime::Simulator> sim_;
  std::vector<std::map<MailKey, std::deque<Message>>> mailboxes_;
  std::vector<WaitState> waits_;
  std::map<std::uint64_t, BarrierState> barriers_;  ///< keyed by group key
  runtime::SimTime io_available_ = 0.0;
  int io_prev_proc_ = -1;  ///< owner of the last I/O operation (for tracing)
  std::shared_ptr<trace::TraceRecorder> tracer_;

  std::uint64_t stat_messages_ = 0;
  std::uint64_t stat_bytes_ = 0;
  std::uint64_t stat_barriers_ = 0;
  std::uint64_t stat_plan_hits_ = 0;
  std::uint64_t stat_plan_misses_ = 0;
  std::vector<std::uint64_t> stat_traffic_;  ///< src * P + dst, if recording

  std::unique_ptr<MachineCacheBase> plan_cache_;
  std::vector<Payload> payload_pool_;
  static constexpr std::size_t kMaxPooledPayloads = 64;
};

}  // namespace fxpar::machine
