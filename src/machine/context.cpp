#include "machine/context.hpp"

#include <stdexcept>
#include <string>

namespace fxpar::machine {

Context::Context(Machine& m, int phys_rank) : machine_(m), phys_(phys_rank) {
  groups_.push_back(pgroup::ProcessorGroup::identity(m.num_procs()));
}

const pgroup::ProcessorGroup& Context::group() const {
  return groups_.back();
}

void Context::push_group(pgroup::ProcessorGroup g) {
  if (!g.contains(phys_)) {
    throw std::logic_error("Context::push_group: proc " + std::to_string(phys_) +
                           " is not a member of " + g.to_string());
  }
  groups_.push_back(std::move(g));
}

void Context::pop_group() {
  if (groups_.size() <= 1) {
    throw std::logic_error("Context::pop_group: cannot pop the machine group");
  }
  groups_.pop_back();
}

int Context::vrank() const {
  const int v = group().virtual_of(phys_);
  if (v < 0) throw std::logic_error("Context::vrank: not a member of current group");
  return v;
}

double Context::now() const { return machine_.backend().now(phys_); }

void Context::charge(double seconds) { machine_.backend().charge(seconds); }

void Context::charge_flops(double n) {
  machine_.backend().charge(n * config().flop_time);
}

void Context::charge_int_ops(double n) {
  machine_.backend().charge(n * config().int_op_time);
}

void Context::charge_mem_bytes(double bytes) {
  machine_.backend().charge(bytes * config().mem_byte_time);
}

void Context::send(int dst_vrank, std::uint64_t tag, Payload data) {
  machine_.deposit(phys_, group().physical(dst_vrank), tag, std::move(data));
}

Payload Context::recv(int src_vrank, std::uint64_t tag) {
  return machine_.receive(phys_, group().physical(src_vrank), tag);
}

void Context::send_phys(int dst_phys, std::uint64_t tag, Payload data) {
  machine_.deposit(phys_, dst_phys, tag, std::move(data));
}

Payload Context::recv_phys(int src_phys, std::uint64_t tag) {
  return machine_.receive(phys_, src_phys, tag);
}

void Context::barrier() { machine_.barrier(group()); }

void Context::barrier(const pgroup::ProcessorGroup& g) { machine_.barrier(g); }

std::uint64_t Context::collective_tag(const pgroup::ProcessorGroup& g) {
  std::uint64_t& counter = collective_counters_[g.key()];
  const std::uint64_t c = counter++;
  // Mix the group key and the per-group sequence number; the high bit
  // separates collective tags from user point-to-point tags.
  std::uint64_t h = g.key() ^ (c + 0x9e3779b97f4a7c15ull + (g.key() << 6) + (g.key() >> 2));
  return h | (1ull << 63);
}

void Context::io(std::size_t bytes) { machine_.io_operation(bytes); }

trace::ScopedSpan Context::span(std::string name, const char* category) {
  if (auto* f = machine_.flight()) {
    f->record(phys_, obs::FlightKind::Span, machine_.backend().now(phys_),
              name.c_str());
  }
  trace::TraceRecorder* t = machine_.tracer();
  if (!t) return {};
  t->begin_span(phys_, std::move(name), category);
  return {t, phys_};
}

trace::ScopedSpan Context::span(const char* name, const char* category) {
  if (auto* f = machine_.flight()) {
    f->record(phys_, obs::FlightKind::Span, machine_.backend().now(phys_), name);
  }
  trace::TraceRecorder* t = machine_.tracer();
  if (!t) return {};
  t->begin_span(phys_, name, category);
  return {t, phys_};
}

}  // namespace fxpar::machine
