// fxpar comm: inspector–executor plan caching for collectives.
//
// Every collective over a processor group walks a fixed communication
// structure — a binomial tree for broadcast/reduce/allreduce, a rooted
// star for gather/scatter — that depends only on the group and the
// (virtual) root. Repeated collectives over the same group (iterative
// solvers, per-timestep reductions) rebuild that structure on every call.
// CollectiveCache applies the same inspector–executor split as the dist
// layer's redistribution PlanCache (dist/plan_cache.hpp): the first call
// *inspects* (builds the schedule), later calls *execute* a cached one.
// The cached executor also reuses payload buffers through the machine's
// pool and combines reductions directly from payload bytes, which is
// where the measured host-time win comes from.
//
// The cache changes host time only: the cached paths issue exactly the
// same messages with the same tags and the same modeled charges as the
// uncached loops, so simulated results — and received payload bytes on
// every backend — are bit-identical with the cache on or off
// (MachineConfig::plan_cache gates it; tests/test_plan_cache.cpp holds
// the parity).
//
// Layering: comm sits below dist and cannot see its PlanCache, so the
// Machine carries a second, independent cache slot
// (Machine::collective_cache_slot) with separate hit/miss counters
// (RunResult::collective_plan_hits / _misses).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "machine/machine.hpp"
#include "pgroup/group.hpp"

namespace fxpar::comm::plan {

/// The binomial tree of one (group, root) pair, serving reduce (leaves to
/// root), broadcast (root to leaves) and allreduce (both, root 0). All
/// ranks are *virtual* ranks of the group — exactly what Context::send /
/// recv take with the group pushed — and every list is stored in the
/// order the uncached loop visits it, so replay is order-identical.
struct TreeSchedule {
  std::vector<int> members;  ///< physical members (collision guard)
  int root = 0;              ///< virtual root rank

  struct Node {
    int reduce_parent = -1;  ///< vrank the partial result is sent to (-1: root)
    std::vector<int> reduce_children;  ///< vranks received, in combine order
    int bcast_parent = -1;   ///< vrank the payload arrives from (-1: root)
    std::vector<int> bcast_children;   ///< vranks forwarded to, in send order
  };
  std::vector<Node> nodes;  ///< indexed by the member's virtual rank
};

/// The rooted star of one (group, root) pair, serving gather,
/// gather_vectors and scatter_vectors: the non-root members the root
/// exchanges with, in virtual-rank order (the uncached loop order).
struct RootedSchedule {
  std::vector<int> members;  ///< physical members (collision guard)
  int root = 0;              ///< virtual root rank
  std::vector<int> peers;    ///< vranks 0..n-1 excluding the root, ascending
};

/// Builds the binomial tree for a group of `n` members rooted at virtual
/// rank `root` (exposed for tests; members is the physical member list).
TreeSchedule build_tree_schedule(const std::vector<int>& members, int root);

/// Builds the rooted star (exposed for tests).
RootedSchedule build_rooted_schedule(const std::vector<int>& members, int root);

/// The machine-wide collective-schedule cache. One instance lives on each
/// Machine's collective cache slot and is shared by all processors, so
/// under SPMD the first member to reach a collective builds the schedule
/// (one miss) and the rest hit — totals are backend-independent.
class CollectiveCache final : public machine::MachineCacheBase {
 public:
  /// Entry bound per table; inserting past this drops the whole table
  /// (same policy as the redistribution PlanCache: real programs repeat a
  /// handful of groups, so eviction is a safety valve, not a hot path).
  static constexpr std::size_t kMaxEntries = 128;

  /// The cache attached to `m`, creating it on first use (serialized by
  /// m.cache_mutex()).
  static CollectiveCache& of(machine::Machine& m);

  /// The tree schedule of (g, root), building it on a miss. Counts the
  /// hit/miss on `m` (RunResult::collective_plan_hits / _misses).
  std::shared_ptr<const TreeSchedule> tree(machine::Machine& m,
                                           const pgroup::ProcessorGroup& g, int root);

  /// The rooted star of (g, root), building it on a miss.
  std::shared_ptr<const RootedSchedule> rooted(machine::Machine& m,
                                               const pgroup::ProcessorGroup& g, int root);

  std::size_t tree_entries() const;
  std::size_t rooted_entries() const;

  /// Throws std::logic_error when `g`'s member list differs from the list
  /// a cached schedule was built for. Mirrors the threaded backend's
  /// barrier-registry guard: two distinct groups whose 64-bit keys collide
  /// would otherwise replay a schedule of the wrong shape. Public and
  /// static so tests can exercise the collision path directly.
  static void check_members(const std::vector<int>& registered,
                            const pgroup::ProcessorGroup& g, const char* what);

 private:
  struct Key {
    std::uint64_t group_key = 0;
    int root = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // Same splitmix-style scramble the loop arenas use for epochs.
      std::uint64_t h = k.group_key + 0x9e3779b97f4a7c15ull *
                                          (static_cast<std::uint64_t>(k.root) + 1);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ull;
      h ^= h >> 27;
      return static_cast<std::size_t>(h);
    }
  };

  /// Held across lookup *and* build: concurrent members of one SPMD
  /// collective serialize here briefly on the first call, then hit.
  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const TreeSchedule>, KeyHash> trees_;
  std::unordered_map<Key, std::shared_ptr<const RootedSchedule>, KeyHash> rooted_;
};

}  // namespace fxpar::comm::plan
