// fxpar comm: collective operations over processor groups.
//
// All collectives are SPMD: every member of `g` must call the same
// operation in the same order. Tags are allocated with
// Context::collective_tag, whose per-group counters advance identically on
// every member. Broadcast and reduce use binomial trees (latency-optimal
// for small payloads on a Paragon-class machine); gather/scatter are rooted
// linear exchanges; alltoall is a full pairwise exchange.
#pragma once

#include <algorithm>
#include <cstring>
#include <functional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "comm/collective_plan.hpp"
#include "comm/serialize.hpp"
#include "machine/context.hpp"
#include "pgroup/group.hpp"
#include "trace/trace.hpp"

namespace fxpar::comm {

using machine::Context;
using pgroup::ProcessorGroup;

namespace detail {

inline int relative_rank(int v, int root, int n) { return (v - root + n) % n; }
inline int absolute_rank(int rel, int root, int n) { return (rel + root) % n; }

inline void check_member_root(const Context& ctx, const ProcessorGroup& g, int root) {
  if (!g.contains(ctx.phys_rank())) {
    throw std::logic_error("collective: calling processor is not a group member");
  }
  if (root < 0 || root >= g.size()) {
    throw std::out_of_range("collective: root virtual rank out of range");
  }
}

/// Metrics hook shared by every collective: one count per member per
/// invocation (so the counter scales with participation, like barriers).
inline void count_collective(Context& ctx) {
  if (metrics::RuntimeMetrics* mm = ctx.machine().metrics()) {
    mm->collectives->add(ctx.phys_rank());
  }
}

/// Unpacks `bytes` into a vector of T. For double — the dominant element
/// type of the numeric apps — the cached executors pull the result vector
/// from the machine's typed scratch pool instead of allocating, keeping a
/// steady-state collective stream allocation-quiet. The produced values are
/// identical either way.
template <TriviallyPackable T>
std::vector<T> unpack_vector_pooled(Context& ctx, const Payload& bytes) {
  if constexpr (std::is_same_v<T, double>) {
    if (bytes.size() % sizeof(double) != 0) {
      throw std::invalid_argument(
          "unpack_vector: payload size not a multiple of element size");
    }
    std::vector<double> out = ctx.machine().double_acquire(bytes.size() / sizeof(double));
    if (!bytes.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  } else {
    return unpack_vector<T>(bytes);
  }
}

/// Returns a spent vector to the typed scratch pool (no-op for types the
/// pool does not cover, and for vectors with no allocation).
template <TriviallyPackable T>
void release_vector_pooled(Context& ctx, std::vector<T>&& v) {
  if constexpr (std::is_same_v<T, double>) {
    ctx.machine().double_release(std::move(v));
  } else {
    (void)v;
  }
}

}  // namespace detail

/// Broadcasts `bytes` from virtual rank `root` of `g` to every member;
/// returns the received (or original, on the root) payload.
Payload broadcast_bytes(Context& ctx, const ProcessorGroup& g, int root, Payload bytes);

/// Broadcast of a single trivially copyable value.
template <TriviallyPackable T>
T broadcast(Context& ctx, const ProcessorGroup& g, int root, const T& value) {
  Payload p = (g.virtual_of(ctx.phys_rank()) == root) ? pack_value(value) : Payload{};
  return unpack_value<T>(broadcast_bytes(ctx, g, root, std::move(p)));
}

/// Broadcast of a vector (the non-root input value is ignored).
template <TriviallyPackable T>
std::vector<T> broadcast_vector(Context& ctx, const ProcessorGroup& g, int root,
                                const std::vector<T>& value) {
  const bool at_root = g.virtual_of(ctx.phys_rank()) == root;
  if (ctx.config().plan_cache) {
    // Same bytes over the same tree (broadcast_bytes replays the cached
    // schedule); the pooled pack and the release below only recycle the
    // buffer allocations.
    Payload p = at_root ? pack_span_pooled(ctx.machine(), std::span<const T>(value))
                        : Payload{};
    Payload b = broadcast_bytes(ctx, g, root, std::move(p));
    std::vector<T> out = detail::unpack_vector_pooled<T>(ctx, b);
    ctx.machine().pool_release(std::move(b));
    return out;
  }
  Payload p = at_root ? pack_span(std::span<const T>(value)) : Payload{};
  return unpack_vector<T>(broadcast_bytes(ctx, g, root, std::move(p)));
}

/// Binomial-tree reduction to `root`. `op` must be associative and is
/// applied in a fixed deterministic order. Non-root members return T{}.
template <TriviallyPackable T, typename Op>
T reduce(Context& ctx, const ProcessorGroup& g, int root, T value, Op op) {
  detail::check_member_root(ctx, g, root);
  trace::ScopedSpan sp_ = ctx.span("reduce", "collective");
  detail::count_collective(ctx);
  const int n = g.size();
  const int me = g.virtual_of(ctx.phys_rank());
  const int rel = detail::relative_rank(me, root, n);
  const std::uint64_t tag = ctx.collective_tag(g);

  ctx.push_group(g);
  if (ctx.config().plan_cache) {
    // Replay the cached tree: children in the recorded (combine) order,
    // then the parent send — the exact step sequence of the loop below.
    const auto sched = plan::CollectiveCache::of(ctx.machine()).tree(ctx.machine(), g, root);
    const auto& nd = sched->nodes[static_cast<std::size_t>(me)];
    for (int child : nd.reduce_children) {
      T incoming = unpack_value<T>(ctx.recv(child, tag));
      value = op(value, incoming);
      ctx.charge_flops(1);
    }
    if (nd.reduce_parent >= 0) ctx.send(nd.reduce_parent, tag, pack_value(value));
    ctx.pop_group();
    return (rel == 0) ? value : T{};
  }
  // Children have relative ranks rel + 2^k below the next power of two.
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((rel & mask) != 0) {
      // Send partial result to parent and stop.
      ctx.send(detail::absolute_rank(rel - mask, root, n), tag, pack_value(value));
      break;
    }
    const int child = rel + mask;
    if (child < n) {
      T incoming = unpack_value<T>(ctx.recv(detail::absolute_rank(child, root, n), tag));
      value = op(value, incoming);
      ctx.charge_flops(1);
    }
  }
  ctx.pop_group();
  return (rel == 0) ? value : T{};
}

/// Reduction followed by broadcast; every member returns the result.
template <TriviallyPackable T, typename Op>
T allreduce(Context& ctx, const ProcessorGroup& g, T value, Op op) {
  T total = reduce(ctx, g, 0, value, op);
  return broadcast(ctx, g, 0, total);
}

/// Element-wise binomial-tree reduction of equal-length vectors to `root`.
/// Non-root members return an empty vector.
template <TriviallyPackable T, typename Op>
std::vector<T> reduce_vector(Context& ctx, const ProcessorGroup& g, int root,
                             std::vector<T> value, Op op) {
  detail::check_member_root(ctx, g, root);
  trace::ScopedSpan sp_ = ctx.span("reduce_vector", "collective");
  detail::count_collective(ctx);
  const int n = g.size();
  const int me = g.virtual_of(ctx.phys_rank());
  const int rel = detail::relative_rank(me, root, n);
  const std::uint64_t tag = ctx.collective_tag(g);

  ctx.push_group(g);
  if (ctx.config().plan_cache) {
    // Replay the cached tree. The executor combines straight from payload
    // bytes (no per-child unpack allocation) and recycles every buffer
    // through the machine pool; combine order, charges and the produced
    // bytes are identical to the loop below.
    const auto sched = plan::CollectiveCache::of(ctx.machine()).tree(ctx.machine(), g, root);
    const auto& nd = sched->nodes[static_cast<std::size_t>(me)];
    for (int child : nd.reduce_children) {
      Payload in = ctx.recv(child, tag);
      if (in.size() % sizeof(T) != 0) {
        // Matches what unpack_vector would throw on this payload.
        throw std::invalid_argument(
            "unpack_vector: payload size not a multiple of element size");
      }
      if (in.size() / sizeof(T) != value.size()) {
        ctx.pop_group();
        throw std::invalid_argument("reduce_vector: length mismatch between members");
      }
      combine_packed(std::span<T>(value), in, op);
      ctx.charge_flops(static_cast<double>(value.size()));
      ctx.machine().pool_release(std::move(in));
    }
    if (nd.reduce_parent >= 0) {
      ctx.send(nd.reduce_parent, tag,
               pack_span_pooled(ctx.machine(), std::span<const T>(value)));
    }
    ctx.pop_group();
    if (rel != 0) {
      // The moved-in operand is dead on non-roots; recycle its allocation
      // for the next collective's result vector.
      detail::release_vector_pooled<T>(ctx, std::move(value));
      return {};
    }
    return value;
  }
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((rel & mask) != 0) {
      ctx.send(detail::absolute_rank(rel - mask, root, n), tag,
               pack_span(std::span<const T>(value)));
      break;
    }
    const int child = rel + mask;
    if (child < n) {
      std::vector<T> incoming =
          unpack_vector<T>(ctx.recv(detail::absolute_rank(child, root, n), tag));
      if (incoming.size() != value.size()) {
        ctx.pop_group();
        throw std::invalid_argument("reduce_vector: length mismatch between members");
      }
      for (std::size_t i = 0; i < value.size(); ++i) value[i] = op(value[i], incoming[i]);
      ctx.charge_flops(static_cast<double>(value.size()));
    }
  }
  ctx.pop_group();
  if (rel != 0) return {};
  return value;
}

/// Element-wise vector reduction; every member returns the result.
template <TriviallyPackable T, typename Op>
std::vector<T> allreduce_vector(Context& ctx, const ProcessorGroup& g, std::vector<T> value,
                                Op op) {
  std::vector<T> total = reduce_vector(ctx, g, 0, std::move(value), op);
  std::vector<T> out = broadcast_vector(ctx, g, 0, total);
  // The root's reduction total has been packed into the broadcast; its
  // allocation feeds the next round (non-roots hold an empty vector here).
  if (ctx.config().plan_cache) detail::release_vector_pooled<T>(ctx, std::move(total));
  return out;
}

/// Inclusive scan: member v returns op(x_0, ..., x_v) in virtual-rank
/// order (deterministic linear chain; groups are small on this machine
/// class and the chain matches the deposit model's cost structure).
template <TriviallyPackable T, typename Op>
T scan(Context& ctx, const ProcessorGroup& g, T value, Op op) {
  if (!g.contains(ctx.phys_rank())) {
    throw std::logic_error("scan: calling processor is not a group member");
  }
  trace::ScopedSpan sp_ = ctx.span("scan", "collective");
  detail::count_collective(ctx);
  const int n = g.size();
  const int me = g.virtual_of(ctx.phys_rank());
  const std::uint64_t tag = ctx.collective_tag(g);
  ctx.push_group(g);
  T acc = value;
  if (me > 0) {
    acc = op(unpack_value<T>(ctx.recv(me - 1, tag)), value);
    ctx.charge_flops(1);
  }
  if (me + 1 < n) ctx.send(me + 1, tag, pack_value(acc));
  ctx.pop_group();
  return acc;
}

/// Exclusive scan: member v returns op over x_0..x_{v-1}; member 0 returns
/// `identity`.
template <TriviallyPackable T, typename Op>
T exscan(Context& ctx, const ProcessorGroup& g, T value, Op op, T identity) {
  if (!g.contains(ctx.phys_rank())) {
    throw std::logic_error("exscan: calling processor is not a group member");
  }
  trace::ScopedSpan sp_ = ctx.span("exscan", "collective");
  detail::count_collective(ctx);
  const int n = g.size();
  const int me = g.virtual_of(ctx.phys_rank());
  const std::uint64_t tag = ctx.collective_tag(g);
  ctx.push_group(g);
  T before = identity;
  if (me > 0) before = unpack_value<T>(ctx.recv(me - 1, tag));
  if (me + 1 < n) {
    ctx.send(me + 1, tag, pack_value(op(before, value)));
    ctx.charge_flops(1);
  }
  ctx.pop_group();
  return before;
}

/// Gathers one value from every member to `root`, ordered by virtual rank.
/// Non-root members return an empty vector.
template <TriviallyPackable T>
std::vector<T> gather(Context& ctx, const ProcessorGroup& g, int root, const T& value) {
  detail::check_member_root(ctx, g, root);
  trace::ScopedSpan sp_ = ctx.span("gather", "collective");
  detail::count_collective(ctx);
  const int n = g.size();
  const int me = g.virtual_of(ctx.phys_rank());
  const std::uint64_t tag = ctx.collective_tag(g);
  ctx.push_group(g);
  std::vector<T> out;
  if (ctx.config().plan_cache) {
    const auto sched = plan::CollectiveCache::of(ctx.machine()).rooted(ctx.machine(), g, root);
    if (me == root) {
      out.resize(static_cast<std::size_t>(n));
      out[static_cast<std::size_t>(root)] = value;
      for (int v : sched->peers) {
        out[static_cast<std::size_t>(v)] = unpack_value<T>(ctx.recv(v, tag));
      }
    } else {
      ctx.send(root, tag, pack_value(value));
    }
    ctx.pop_group();
    return out;
  }
  if (me == root) {
    out.resize(static_cast<std::size_t>(n));
    out[static_cast<std::size_t>(root)] = value;
    for (int v = 0; v < n; ++v) {
      if (v == root) continue;
      out[static_cast<std::size_t>(v)] = unpack_value<T>(ctx.recv(v, tag));
    }
  } else {
    ctx.send(root, tag, pack_value(value));
  }
  ctx.pop_group();
  return out;
}

/// Gathers variable-length vectors to `root`, concatenated by virtual rank.
template <TriviallyPackable T>
std::vector<T> gather_vectors(Context& ctx, const ProcessorGroup& g, int root,
                              const std::vector<T>& value) {
  detail::check_member_root(ctx, g, root);
  trace::ScopedSpan sp_ = ctx.span("gather_vectors", "collective");
  detail::count_collective(ctx);
  const int n = g.size();
  const int me = g.virtual_of(ctx.phys_rank());
  const std::uint64_t tag = ctx.collective_tag(g);
  ctx.push_group(g);
  std::vector<T> out;
  if (ctx.config().plan_cache) {
    // Cached executor: receive every part (same virtual-rank order as the
    // loop below), then concatenate with a single allocation instead of n
    // growing inserts; spent payloads go back to the machine pool. The
    // concatenated bytes are identical.
    const auto sched = plan::CollectiveCache::of(ctx.machine()).rooted(ctx.machine(), g, root);
    if (me == root) {
      std::vector<Payload> parts;
      parts.reserve(sched->peers.size());
      std::size_t total_bytes = value.size() * sizeof(T);
      for (int v : sched->peers) {
        Payload p = ctx.recv(v, tag);
        if (p.size() % sizeof(T) != 0) {
          // Matches what unpack_vector would throw on this payload.
          throw std::invalid_argument(
              "unpack_vector: payload size not a multiple of element size");
        }
        total_bytes += p.size();
        parts.push_back(std::move(p));
      }
      if constexpr (std::is_same_v<T, double>) {
        out = ctx.machine().double_acquire(total_bytes / sizeof(T));
      } else {
        out.resize(total_bytes / sizeof(T));
      }
      std::size_t off = 0;
      std::size_t pi = 0;
      auto* dst = reinterpret_cast<std::byte*>(out.data());
      for (int v = 0; v < n; ++v) {
        if (v == root) {
          if (!value.empty()) {
            std::memcpy(dst + off, value.data(), value.size() * sizeof(T));
          }
          off += value.size() * sizeof(T);
        } else {
          Payload& p = parts[pi++];
          if (!p.empty()) std::memcpy(dst + off, p.data(), p.size());
          off += p.size();
          ctx.machine().pool_release(std::move(p));
        }
      }
    } else {
      ctx.send(root, tag, pack_span_pooled(ctx.machine(), std::span<const T>(value)));
    }
    ctx.pop_group();
    return out;
  }
  if (me == root) {
    for (int v = 0; v < n; ++v) {
      std::vector<T> part =
          (v == root) ? value : unpack_vector<T>(ctx.recv(v, tag));
      out.insert(out.end(), part.begin(), part.end());
    }
  } else {
    ctx.send(root, tag, pack_span(std::span<const T>(value)));
  }
  ctx.pop_group();
  return out;
}

/// Scatters `parts[v]` from `root` to member `v`; returns the local part.
template <TriviallyPackable T>
std::vector<T> scatter_vectors(Context& ctx, const ProcessorGroup& g, int root,
                               const std::vector<std::vector<T>>& parts) {
  detail::check_member_root(ctx, g, root);
  trace::ScopedSpan sp_ = ctx.span("scatter_vectors", "collective");
  detail::count_collective(ctx);
  const int n = g.size();
  const int me = g.virtual_of(ctx.phys_rank());
  const std::uint64_t tag = ctx.collective_tag(g);
  ctx.push_group(g);
  std::vector<T> mine;
  if (ctx.config().plan_cache) {
    const auto sched = plan::CollectiveCache::of(ctx.machine()).rooted(ctx.machine(), g, root);
    if (me == root) {
      if (static_cast<int>(parts.size()) != n) {
        ctx.pop_group();
        throw std::invalid_argument("scatter_vectors: need one part per member");
      }
      for (int v : sched->peers) {
        ctx.send(v, tag,
                 pack_span_pooled(ctx.machine(),
                                  std::span<const T>(parts[static_cast<std::size_t>(v)])));
      }
      mine = parts[static_cast<std::size_t>(root)];
    } else {
      Payload p = ctx.recv(root, tag);
      mine = unpack_vector<T>(p);
      ctx.machine().pool_release(std::move(p));
    }
    ctx.pop_group();
    return mine;
  }
  if (me == root) {
    if (static_cast<int>(parts.size()) != n) {
      ctx.pop_group();
      throw std::invalid_argument("scatter_vectors: need one part per member");
    }
    for (int v = 0; v < n; ++v) {
      if (v == root) continue;
      ctx.send(v, tag, pack_span(std::span<const T>(parts[static_cast<std::size_t>(v)])));
    }
    mine = parts[static_cast<std::size_t>(root)];
  } else {
    mine = unpack_vector<T>(ctx.recv(root, tag));
  }
  ctx.pop_group();
  return mine;
}

/// Full pairwise exchange: member `v` receives `send_parts[me]` from every
/// member (including its own local part). `send_parts` has one vector per
/// destination virtual rank; the result has one vector per source.
template <TriviallyPackable T>
std::vector<std::vector<T>> alltoall_vectors(Context& ctx, const ProcessorGroup& g,
                                             const std::vector<std::vector<T>>& send_parts) {
  if (!g.contains(ctx.phys_rank())) {
    throw std::logic_error("alltoall_vectors: calling processor is not a group member");
  }
  const int n = g.size();
  if (static_cast<int>(send_parts.size()) != n) {
    throw std::invalid_argument("alltoall_vectors: need one part per member");
  }
  trace::ScopedSpan sp_ = ctx.span("alltoall_vectors", "collective");
  detail::count_collective(ctx);
  const int me = g.virtual_of(ctx.phys_rank());
  const std::uint64_t tag = ctx.collective_tag(g);
  ctx.push_group(g);
  std::vector<std::vector<T>> out(static_cast<std::size_t>(n));
  // Deposit-based: send everything, then drain. Deposits never block.
  for (int d = 1; d < n; ++d) {
    const int dst = (me + d) % n;
    ctx.send(dst, tag, pack_span(std::span<const T>(send_parts[static_cast<std::size_t>(dst)])));
  }
  out[static_cast<std::size_t>(me)] = send_parts[static_cast<std::size_t>(me)];
  for (int d = 1; d < n; ++d) {
    const int src = (me - d + n) % n;
    out[static_cast<std::size_t>(src)] = unpack_vector<T>(ctx.recv(src, tag));
  }
  ctx.pop_group();
  return out;
}

}  // namespace fxpar::comm
