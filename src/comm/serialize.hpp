// fxpar comm: byte-level packing of trivially copyable values and arrays.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "machine/machine.hpp"

namespace fxpar::comm {

using machine::Payload;

template <typename T>
concept TriviallyPackable = std::is_trivially_copyable_v<T>;

/// Packs one value.
template <TriviallyPackable T>
Payload pack_value(const T& v) {
  Payload p(sizeof(T));
  std::memcpy(p.data(), &v, sizeof(T));
  return p;
}

/// Unpacks one value; the payload size must match exactly.
template <TriviallyPackable T>
T unpack_value(const Payload& p) {
  if (p.size() != sizeof(T)) {
    throw std::invalid_argument("unpack_value: payload size " + std::to_string(p.size()) +
                                " != sizeof(T) " + std::to_string(sizeof(T)));
  }
  T v;
  std::memcpy(&v, p.data(), sizeof(T));
  return v;
}

/// Packs a contiguous range of values (no length header; the element count
/// is recovered from the payload size).
template <TriviallyPackable T>
Payload pack_span(std::span<const T> s) {
  Payload p(s.size_bytes());
  if (!s.empty()) std::memcpy(p.data(), s.data(), s.size_bytes());
  return p;
}

template <TriviallyPackable T>
std::vector<T> unpack_vector(const Payload& p) {
  if (p.size() % sizeof(T) != 0) {
    throw std::invalid_argument("unpack_vector: payload size not a multiple of element size");
  }
  std::vector<T> v(p.size() / sizeof(T));
  if (!v.empty()) std::memcpy(v.data(), p.data(), p.size());
  return v;
}

/// Appends the raw bytes of `v` to `p` (for building mixed payloads).
template <TriviallyPackable T>
void append_value(Payload& p, const T& v) {
  const std::size_t off = p.size();
  p.resize(off + sizeof(T));
  std::memcpy(p.data() + off, &v, sizeof(T));
}

/// Reads a value at byte offset `off`, advancing `off`.
template <TriviallyPackable T>
T read_value(const Payload& p, std::size_t& off) {
  if (off + sizeof(T) > p.size()) throw std::out_of_range("read_value: payload underrun");
  T v;
  std::memcpy(&v, p.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

}  // namespace fxpar::comm
