// fxpar comm: byte-level packing of trivially copyable values and arrays.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "machine/machine.hpp"

namespace fxpar::comm {

using machine::Payload;

template <typename T>
concept TriviallyPackable = std::is_trivially_copyable_v<T>;

/// Packs one value.
template <TriviallyPackable T>
Payload pack_value(const T& v) {
  Payload p(sizeof(T));
  std::memcpy(p.data(), &v, sizeof(T));
  return p;
}

/// Unpacks one value; the payload size must match exactly.
template <TriviallyPackable T>
T unpack_value(const Payload& p) {
  if (p.size() != sizeof(T)) {
    throw std::invalid_argument("unpack_value: payload size " + std::to_string(p.size()) +
                                " != sizeof(T) " + std::to_string(sizeof(T)));
  }
  T v;
  std::memcpy(&v, p.data(), sizeof(T));
  return v;
}

/// Packs a contiguous range of values (no length header; the element count
/// is recovered from the payload size).
template <TriviallyPackable T>
Payload pack_span(std::span<const T> s) {
  Payload p(s.size_bytes());
  if (!s.empty()) std::memcpy(p.data(), s.data(), s.size_bytes());
  return p;
}

/// pack_span through the machine's payload pool: same bytes, but reuses a
/// pooled allocation — and, for a same-size buffer, skips the value-init
/// memset a fresh Payload pays. Cached collective paths use this so
/// repeated calls stop allocating; the produced payload is byte-identical
/// to pack_span's.
template <TriviallyPackable T>
Payload pack_span_pooled(machine::Machine& m, std::span<const T> s) {
  Payload p = m.pool_acquire(s.size_bytes());
  if (!s.empty()) std::memcpy(p.data(), s.data(), s.size_bytes());
  return p;
}

/// Element-wise combine of `acc` with the packed values in `p`, without
/// unpacking into a temporary vector: blocks are memcpy'd into a small
/// stack buffer (the conformant way to read T objects out of raw bytes)
/// and folded in index order — the exact order unpack-then-combine uses,
/// so results are bit-identical.
template <TriviallyPackable T, typename Op>
void combine_packed(std::span<T> acc, const Payload& p, Op op) {
  constexpr std::size_t kBlock = 64;
  T chunk[kBlock];
  const std::byte* src = p.data();
  for (std::size_t i = 0; i < acc.size();) {
    const std::size_t m = std::min(kBlock, acc.size() - i);
    std::memcpy(chunk, src + i * sizeof(T), m * sizeof(T));
    for (std::size_t k = 0; k < m; ++k) acc[i + k] = op(acc[i + k], chunk[k]);
    i += m;
  }
}

template <TriviallyPackable T>
std::vector<T> unpack_vector(const Payload& p) {
  if (p.size() % sizeof(T) != 0) {
    throw std::invalid_argument("unpack_vector: payload size not a multiple of element size");
  }
  std::vector<T> v(p.size() / sizeof(T));
  if (!v.empty()) std::memcpy(v.data(), p.data(), p.size());
  return v;
}

/// Appends the raw bytes of `v` to `p` (for building mixed payloads).
template <TriviallyPackable T>
void append_value(Payload& p, const T& v) {
  const std::size_t off = p.size();
  p.resize(off + sizeof(T));
  std::memcpy(p.data() + off, &v, sizeof(T));
}

/// Reads a value at byte offset `off`, advancing `off`.
template <TriviallyPackable T>
T read_value(const Payload& p, std::size_t& off) {
  if (off + sizeof(T) > p.size()) throw std::out_of_range("read_value: payload underrun");
  T v;
  std::memcpy(&v, p.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

}  // namespace fxpar::comm
