#include "comm/collective_plan.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace fxpar::comm::plan {

namespace {

inline int absolute_rank(int rel, int root, int n) { return (rel + root) % n; }

}  // namespace

TreeSchedule build_tree_schedule(const std::vector<int>& members, int root) {
  TreeSchedule s;
  s.members = members;
  s.root = root;
  const int n = static_cast<int>(members.size());
  s.nodes.resize(static_cast<std::size_t>(n));
  for (int me = 0; me < n; ++me) {
    TreeSchedule::Node& nd = s.nodes[static_cast<std::size_t>(me)];
    const int rel = (me - root + n) % n;

    // Reduce: the uncached loop receives children rel + 2^k in ascending
    // mask order until it hits its own low set bit, then sends the partial
    // to rel - mask and stops. Replaying the recorded lists in order is
    // step-identical.
    for (int mask = 1; mask < n; mask <<= 1) {
      if ((rel & mask) != 0) {
        nd.reduce_parent = absolute_rank(rel - mask, root, n);
        break;
      }
      const int child = rel + mask;
      if (child < n) nd.reduce_children.push_back(absolute_rank(child, root, n));
    }

    // Broadcast: parent is rel with its highest set bit cleared; children
    // are rel | mask for masks above rel's highest bit, ascending.
    int high = 1;
    while (high <= rel) high <<= 1;
    if (rel != 0) nd.bcast_parent = absolute_rank(rel & ~(high >> 1), root, n);
    for (int mask = high; mask < n; mask <<= 1) {
      const int child = rel | mask;
      if (child != rel && child < n) nd.bcast_children.push_back(absolute_rank(child, root, n));
    }
  }
  return s;
}

RootedSchedule build_rooted_schedule(const std::vector<int>& members, int root) {
  RootedSchedule s;
  s.members = members;
  s.root = root;
  const int n = static_cast<int>(members.size());
  s.peers.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  for (int v = 0; v < n; ++v) {
    if (v != root) s.peers.push_back(v);
  }
  return s;
}

CollectiveCache& CollectiveCache::of(machine::Machine& m) {
  std::lock_guard<std::mutex> lk(m.cache_mutex());
  auto* cache = dynamic_cast<CollectiveCache*>(m.collective_cache_slot());
  if (cache == nullptr) {
    auto owned = std::make_unique<CollectiveCache>();
    cache = owned.get();
    m.set_collective_cache_slot(std::move(owned));
  }
  return *cache;
}

void CollectiveCache::check_members(const std::vector<int>& registered,
                                    const pgroup::ProcessorGroup& g, const char* what) {
  if (registered != g.members()) {
    throw std::logic_error(std::string(what) +
                           ": group key collision — a different member list is "
                           "registered under this group's key");
  }
}

std::shared_ptr<const TreeSchedule> CollectiveCache::tree(machine::Machine& m,
                                                          const pgroup::ProcessorGroup& g,
                                                          int root) {
  const Key key{g.key(), root};
  std::lock_guard<std::mutex> lk(mu_);
  if (auto it = trees_.find(key); it != trees_.end()) {
    check_members(it->second->members, g, "CollectiveCache::tree");
    m.count_collective_plan(true);
    return it->second;
  }
  if (trees_.size() >= kMaxEntries) trees_.clear();
  auto sched = std::make_shared<const TreeSchedule>(build_tree_schedule(g.members(), root));
  trees_.emplace(key, sched);
  m.count_collective_plan(false);
  return sched;
}

std::shared_ptr<const RootedSchedule> CollectiveCache::rooted(
    machine::Machine& m, const pgroup::ProcessorGroup& g, int root) {
  const Key key{g.key(), root};
  std::lock_guard<std::mutex> lk(mu_);
  if (auto it = rooted_.find(key); it != rooted_.end()) {
    check_members(it->second->members, g, "CollectiveCache::rooted");
    m.count_collective_plan(true);
    return it->second;
  }
  if (rooted_.size() >= kMaxEntries) rooted_.clear();
  auto sched =
      std::make_shared<const RootedSchedule>(build_rooted_schedule(g.members(), root));
  rooted_.emplace(key, sched);
  m.count_collective_plan(false);
  return sched;
}

std::size_t CollectiveCache::tree_entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  return trees_.size();
}

std::size_t CollectiveCache::rooted_entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rooted_.size();
}

}  // namespace fxpar::comm::plan
