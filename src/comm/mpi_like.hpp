// fxpar comm: an MPI-communicator-flavoured veneer over the runtime.
//
// The paper's Section 6 discusses the alternative of coordinating HPF tasks
// with MPI [7] and the related-work systems all assume message passing.
// This header shows the correspondence directly: a processor group plus a
// Context behaves like an MPI communicator, TASK_PARTITION is comm_split,
// and the paper's subset barriers / collectives are the familiar MPI
// operations. It is also a convenient porting surface for users who think
// in MPI terms (see the LLNL MPI tutorial's vocabulary).
//
//   fxmpi::Comm world(ctx);                    // MPI_COMM_WORLD
//   auto sub = world.split(color, key);        // MPI_Comm_split
//   sub.send(dest, tag, data); sub.recv(...);  // MPI_Send / MPI_Recv
//   auto v = sub.bcast(root, value);           // MPI_Bcast
//   auto s = sub.allreduce(x, std::plus<>());  // MPI_Allreduce
//
// All operations are SPMD over the communicator's members, and ranks are
// the communicator-relative (virtual) ranks, exactly as in MPI.
#pragma once

#include <map>
#include <vector>

#include "comm/collectives.hpp"
#include "machine/context.hpp"
#include "pgroup/group.hpp"

namespace fxpar::fxmpi {

class Comm {
 public:
  /// The world communicator: all processors of the machine.
  explicit Comm(machine::Context& ctx)
      : ctx_(&ctx), group_(pgroup::ProcessorGroup::identity(
                        ctx.machine().num_procs())) {}

  Comm(machine::Context& ctx, pgroup::ProcessorGroup group)
      : ctx_(&ctx), group_(std::move(group)) {
    if (!group_.contains(ctx.phys_rank())) {
      throw std::logic_error("fxmpi::Comm: calling processor is not a member");
    }
  }

  int rank() const { return group_.virtual_of(ctx_->phys_rank()); }
  int size() const noexcept { return group_.size(); }
  const pgroup::ProcessorGroup& group() const noexcept { return group_; }

  /// MPI_Comm_split: members with the same `color` form a new communicator,
  /// ordered by (key, old rank). Every member must call with its own color
  /// and key; colors and keys are exchanged internally. A negative color
  /// (MPI_UNDEFINED) yields no communicator (throws on use).
  Comm split(int color, int key) const {
    // Allgather (color, key) pairs.
    std::vector<int> mine{color, key};
    const auto gathered = comm::gather_vectors(*ctx_, group_, 0, mine);
    const auto all = comm::broadcast_vector(*ctx_, group_, 0, gathered);
    // Collect members of my color, ordered by (key, old rank).
    struct Entry {
      int key, old_rank;
    };
    std::vector<Entry> members;
    for (int v = 0; v < size(); ++v) {
      if (all[static_cast<std::size_t>(2 * v)] == color) {
        members.push_back({all[static_cast<std::size_t>(2 * v + 1)], v});
      }
    }
    if (color < 0) {
      throw std::logic_error("fxmpi::Comm::split: negative color (MPI_UNDEFINED)");
    }
    std::stable_sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
      return a.key < b.key || (a.key == b.key && a.old_rank < b.old_rank);
    });
    std::vector<int> phys;
    phys.reserve(members.size());
    for (const Entry& e : members) phys.push_back(group_.physical(e.old_rank));
    return Comm(*ctx_, pgroup::ProcessorGroup(std::move(phys)));
  }

  // ---- point to point (ranks are communicator-relative) ----

  template <comm::TriviallyPackable T>
  void send(int dest, int tag, const T& value) {
    ctx_->send_phys(group_.physical(dest), user_tag(tag), comm::pack_value(value));
  }
  template <comm::TriviallyPackable T>
  T recv(int source, int tag) {
    return comm::unpack_value<T>(ctx_->recv_phys(group_.physical(source), user_tag(tag)));
  }
  template <comm::TriviallyPackable T>
  void send_vector(int dest, int tag, const std::vector<T>& v) {
    ctx_->send_phys(group_.physical(dest), user_tag(tag),
                    comm::pack_span(std::span<const T>(v)));
  }
  template <comm::TriviallyPackable T>
  std::vector<T> recv_vector(int source, int tag) {
    return comm::unpack_vector<T>(ctx_->recv_phys(group_.physical(source), user_tag(tag)));
  }

  // ---- collectives ----

  void barrier() { ctx_->barrier(group_); }

  template <comm::TriviallyPackable T>
  T bcast(int root, const T& value) {
    return comm::broadcast(*ctx_, group_, root, value);
  }
  template <comm::TriviallyPackable T, typename Op>
  T reduce(int root, const T& value, Op op) {
    return comm::reduce(*ctx_, group_, root, value, op);
  }
  template <comm::TriviallyPackable T, typename Op>
  T allreduce(const T& value, Op op) {
    return comm::allreduce(*ctx_, group_, value, op);
  }
  template <comm::TriviallyPackable T>
  std::vector<T> gather(int root, const T& value) {
    return comm::gather(*ctx_, group_, root, value);
  }
  template <comm::TriviallyPackable T>
  std::vector<T> allgather(const T& value) {
    auto v = comm::gather(*ctx_, group_, 0, value);
    return comm::broadcast_vector(*ctx_, group_, 0, v);
  }
  template <comm::TriviallyPackable T>
  std::vector<std::vector<T>> alltoall(const std::vector<std::vector<T>>& parts) {
    return comm::alltoall_vectors(*ctx_, group_, parts);
  }

 private:
  /// User tags share the point-to-point tag space; fold in the group key so
  /// two communicators with the same members but different creation paths
  /// still match (as MPI requires for identical groups).
  std::uint64_t user_tag(int tag) const {
    if (tag < 0) throw std::invalid_argument("fxmpi: negative tag");
    return (static_cast<std::uint64_t>(tag) << 1) ^ (group_.key() << 20 >> 1);
  }

  machine::Context* ctx_;
  pgroup::ProcessorGroup group_;
};

}  // namespace fxpar::fxmpi
