#include "comm/collectives.hpp"

namespace fxpar::comm {

Payload broadcast_bytes(Context& ctx, const ProcessorGroup& g, int root, Payload bytes) {
  detail::check_member_root(ctx, g, root);
  trace::ScopedSpan sp_ = ctx.span("broadcast", "collective");
  detail::count_collective(ctx);
  const int n = g.size();
  const int me = g.virtual_of(ctx.phys_rank());
  if (n == 1) return bytes;
  const int rel = detail::relative_rank(me, root, n);
  const std::uint64_t tag = ctx.collective_tag(g);

  ctx.push_group(g);
  if (ctx.config().plan_cache) {
    // Replay the cached tree: same parent, same children in the same send
    // order as the loop below, so the payload bytes every member sees are
    // identical with the cache on or off.
    const auto sched = plan::CollectiveCache::of(ctx.machine()).tree(ctx.machine(), g, root);
    const plan::TreeSchedule::Node& nd = sched->nodes[static_cast<std::size_t>(me)];
    if (nd.bcast_parent >= 0) bytes = ctx.recv(nd.bcast_parent, tag);
    for (int child : nd.bcast_children) {
      // Forward pooled copies: the bytes on the wire are identical to the
      // lvalue send below, but the buffers come from (and return to) the
      // machine pool. With fresh per-edge allocations, a broadcast-heavy
      // loop frees parked-pool-sized blocks at the top of the heap every
      // iteration and glibc hands them back to the kernel, so the cached
      // leg pays thousands of minor faults per run re-touching them.
      Payload fwd = ctx.machine().pool_acquire(bytes.size());
      if (!bytes.empty()) std::memcpy(fwd.data(), bytes.data(), bytes.size());
      ctx.send(child, tag, std::move(fwd));
    }
    ctx.pop_group();
    return bytes;
  }
  // Binomial tree: find this node's parent (highest set bit of rel), receive
  // from it, then forward to children in decreasing mask order.
  int high = 1;
  while (high <= rel) high <<= 1;  // first mask beyond rel's highest bit
  if (rel != 0) {
    const int parent = rel & ~(high >> 1);
    bytes = ctx.recv(detail::absolute_rank(parent, root, n), tag);
  }
  for (int mask = high; mask < n; mask <<= 1) {
    // Only rel==0 reaches masks above its own high bit boundary correctly;
    // generic form: children are rel | mask for mask > rel's highest bit.
    const int child = rel | mask;
    if (child != rel && child < n) {
      ctx.send(detail::absolute_rank(child, root, n), tag, bytes);
    }
  }
  ctx.pop_group();
  return bytes;
}

}  // namespace fxpar::comm
