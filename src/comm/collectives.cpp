#include "comm/collectives.hpp"

namespace fxpar::comm {

Payload broadcast_bytes(Context& ctx, const ProcessorGroup& g, int root, Payload bytes) {
  detail::check_member_root(ctx, g, root);
  trace::ScopedSpan sp_ = ctx.span("broadcast", "collective");
  detail::count_collective(ctx);
  const int n = g.size();
  const int me = g.virtual_of(ctx.phys_rank());
  if (n == 1) return bytes;
  const int rel = detail::relative_rank(me, root, n);
  const std::uint64_t tag = ctx.collective_tag(g);

  ctx.push_group(g);
  // Binomial tree: find this node's parent (highest set bit of rel), receive
  // from it, then forward to children in decreasing mask order.
  int high = 1;
  while (high <= rel) high <<= 1;  // first mask beyond rel's highest bit
  if (rel != 0) {
    const int parent = rel & ~(high >> 1);
    bytes = ctx.recv(detail::absolute_rank(parent, root, n), tag);
  }
  for (int mask = high; mask < n; mask <<= 1) {
    // Only rel==0 reaches masks above its own high bit boundary correctly;
    // generic form: children are rel | mask for mask > rel's highest bit.
    const int child = rel | mask;
    if (child != rel && child < n) {
      ctx.send(detail::absolute_rank(child, root, n), tag, bytes);
    }
  }
  ctx.pop_group();
  return bytes;
}

}  // namespace fxpar::comm
