// fxpar serve: multi-tenant stream serving with online remapping.
//
// This is the dynamic form of the paper's Figure 5 experiment. A serving
// driver owns one Machine and admits many independent request streams
// (each a sequence of data sets for the same pipeline — FFT-Hist dwells,
// radar dwells, stereo frames). Requests queue in arrival order, are
// grouped into batches, and each batch runs through the stream-pipeline
// executor under the *currently installed* mapping. Between batches —
// the pipeline's natural drain points — the driver measures the offered
// rate over the recent arrival window and asks RemapPolicy whether the
// mapping should change (drain -> remap -> resume). Remaps are visible
// everywhere the runtime already looks: a flight-recorder Mark, serve
// counters/gauges in the metrics registry (and therefore /metrics and any
// Sampler series), a "serve" fragment on /healthz, and per-epoch records
// in the returned report.
//
// Time model. The control loop runs in *virtual* time derived from the
// pipeline cost model: a batch of n data sets under mapping M occupies
// the pipe for M.latency + (n - 1) / M.throughput virtual seconds, and
// request latencies are charged against that clock. This makes the whole
// serving trajectory — batch boundaries, measured rates, remap points,
// latency percentiles — bit-identical across the sim, threaded and
// process backends, which is what lets tests assert per-stream result
// parity across a remap boundary on all three. The real runs underneath
// still produce (and verify) the actual data products; the virtual clock
// only drives admission and the policy.
//
// Determinism across remaps. Stages receive each request's *global* data
// id (StreamRunOptions::set_ids), never the batch-local index, so a
// request's result depends only on its id — not on which mapping, batch
// or replica instance processed it. Per-stream outputs are therefore
// bit-identical to an uninterrupted single-mapping run of the same ids.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/stream_pipeline.hpp"
#include "comm/serialize.hpp"
#include "serve/policy.hpp"

namespace fxpar::serve {

/// One request of one tenant stream.
struct ServeRequest {
  int stream = 0;        ///< tenant stream id
  long seq = 0;          ///< per-stream sequence number
  double arrival_t = 0;  ///< virtual arrival time (seconds)
  int data_id = 0;       ///< global data-set id handed to the stages
};

/// Completion record of one served request (virtual-clock seconds).
struct RequestRecord {
  int stream = 0;
  long seq = 0;
  int data_id = 0;
  int epoch = -1;  ///< batch that served it (-1: shed, never served)
  double arrival_t = 0;
  double start_t = 0;   ///< entry into the pipeline
  double finish_t = 0;  ///< completion of the last stage
  double latency() const noexcept { return finish_t - arrival_t; }
};

/// One batch (epoch) of the serving loop.
struct EpochRecord {
  int epoch = 0;
  double t_start = 0;
  double t_end = 0;
  int sets = 0;                    ///< requests served this epoch
  double offered_rate = 0;         ///< measured arrivals/second at t_start
  double required_throughput = 0;  ///< policy requirement (safety * offered)
  bool remapped = false;           ///< mapping changed entering this epoch
  bool slo_feasible = true;        ///< false while on the best-effort fallback
  double map_throughput = 0;       ///< modeled capacity of the installed mapping
  double map_latency = 0;
  int map_procs = 0;
  std::string mapping;  ///< human-readable module list
};

/// Everything one serve_streams() call did.
struct ServeReport {
  std::vector<RequestRecord> requests;  ///< completion order
  std::vector<RequestRecord> shed;      ///< admission-rejected (queue full)
  std::vector<EpochRecord> epochs;
  int remaps = 0;         ///< mapping changes after the initial install
  int infeasible_epochs = 0;  ///< epochs served under an unmet SLO
  double makespan = 0;    ///< final virtual time
  int num_streams = 0;

  double throughput() const noexcept {
    return makespan > 0 ? static_cast<double>(requests.size()) / makespan : 0.0;
  }
  /// q-quantile of served request latency (q in [0,1]; 0 when empty).
  double latency_quantile(double q) const;
  double mean_latency() const;

  /// Summary as one JSON object (requests/shed counts, remaps, percentiles,
  /// per-epoch array) — the payload bench_serve emits and CI validates.
  std::string to_json() const;
};

/// Serving-loop knobs.
struct ServeConfig {
  /// Max data sets per batch. The batch is the remap quantum: smaller
  /// batches react faster and pay more drain overhead.
  int max_batch = 8;
  /// Queue capacity; arrivals beyond it are shed (0 = unbounded).
  int max_queue = 0;
  /// Arrivals used for the offered-rate estimate (rate over the span of
  /// the most recent `rate_window` admitted arrivals).
  int rate_window = 16;
  PolicyConfig policy;
  /// External sampler polled during every batch (shared across epochs and
  /// remaps; caller owns it and its series).
  metrics::Sampler* sampler = nullptr;
  /// Builds the per-batch epilogue from the installed modules and the
  /// batch's global data ids — the proc backend needs one to funnel sink
  /// rows written by a non-zero rank to rank 0 (see batch_funnel).
  std::function<std::function<void(machine::Context&)>(
      const std::vector<apps::StreamModule>&, const std::vector<int>&)>
      epilogue_factory;
};

/// Physical rank that records data set `local_set` of a batch: virtual
/// rank 0 of the last module's serving instance, under the contiguous
/// subgroup layout of the stream executor ("m<m>.i<j>" in spec order).
inline int last_stage_writer_phys(const std::vector<apps::StreamModule>& modules,
                                  int local_set) {
  int base = 0;
  for (std::size_t m = 0; m + 1 < modules.size(); ++m) {
    base += modules[m].procs * modules[m].instances;
  }
  const apps::StreamModule& last = modules.back();
  return base + (local_set % last.instances) * last.procs;
}

/// Epilogue that ships each batch row of a per-data-set sink from the rank
/// that recorded it to physical rank 0 — the serving analogue of the
/// parity tests' funnel, but per batch: only this batch's rows move, so a
/// long-lived sink accumulates correctly across epochs on the process
/// backend (children fork from the parent, which already holds every
/// previously funneled row). Returns an empty function when every writer
/// already is rank 0. Usable as ServeConfig::epilogue_factory via
/// make_batch_funnel_factory.
template <typename T>
std::function<void(machine::Context&)> batch_funnel(
    std::vector<std::vector<T>>& sink, const std::vector<apps::StreamModule>& modules,
    std::vector<int> ids) {
  bool any = false;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (last_stage_writer_phys(modules, static_cast<int>(i)) != 0) any = true;
  }
  if (!any) return {};
  return [&sink, modules, ids = std::move(ids)](machine::Context& ctx) {
    constexpr int kTag0 = 7300;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const int writer = last_stage_writer_phys(modules, static_cast<int>(i));
      if (writer == 0) continue;
      const auto row = static_cast<std::size_t>(ids[i]);
      if (ctx.phys_rank() == writer) {
        ctx.send_phys(0, kTag0 + static_cast<int>(i),
                      comm::pack_span(std::span<const T>(sink[row])));
      } else if (ctx.phys_rank() == 0) {
        sink[row] = comm::unpack_vector<T>(
            ctx.recv_phys(writer, kTag0 + static_cast<int>(i)));
      }
    }
  };
}

/// ServeConfig::epilogue_factory adapter around batch_funnel for the
/// common vector-of-rows sink shape.
template <typename T>
std::function<std::function<void(machine::Context&)>(
    const std::vector<apps::StreamModule>&, const std::vector<int>&)>
make_batch_funnel_factory(std::vector<std::vector<T>>& sink) {
  return [&sink](const std::vector<apps::StreamModule>& modules,
                 const std::vector<int>& ids) {
    return batch_funnel(sink, modules, ids);
  };
}

namespace detail {

/// Live state behind the /healthz "serve" fragment. Shared with the
/// endpoint thread, hence the mutex; the driver updates it per epoch.
struct ServeHealth {
  std::mutex mu;
  int epoch = 0;
  int queue_depth = 0;
  double offered_rate = 0;
  double required_throughput = 0;
  int remaps = 0;
  bool slo_feasible = true;
  std::string mapping;
  long served = 0;
  long shed = 0;

  std::string json() {
    std::lock_guard<std::mutex> lk(mu);
    std::ostringstream os;
    os << "{\"epoch\":" << epoch << ",\"queue_depth\":" << queue_depth
       << ",\"offered_rate\":" << offered_rate
       << ",\"required_throughput\":" << required_throughput
       << ",\"remaps\":" << remaps
       << ",\"slo_feasible\":" << (slo_feasible ? "true" : "false")
       << ",\"served\":" << served << ",\"shed\":" << shed << ",\"mapping\":\""
       << mapping << "\"}";
    return os.str();
  }
};

}  // namespace detail

/// Serves every request in `arrivals` (any order; sorted internally by
/// arrival time) through `stages` on `machine`, planning and re-planning
/// the mapping against `model` as the offered load shifts. Returns when
/// the last request completes. The machine must outlive the call; its
/// metrics registry (if enabled) gains fxpar_serve_* metrics and its
/// /healthz a "serve" fragment that stays readable after return.
template <typename T>
ServeReport serve_streams(machine::Machine& machine,
                          const std::vector<apps::PipelineStage<T>>& stages,
                          const sched::PipelineModel& model,
                          std::vector<ServeRequest> arrivals,
                          const ServeConfig& cfg = {}) {
  if (cfg.max_batch < 1) {
    throw std::invalid_argument("serve_streams: max_batch must be >= 1");
  }
  if (cfg.rate_window < 2) {
    throw std::invalid_argument("serve_streams: rate_window must be >= 2");
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const ServeRequest& a, const ServeRequest& b) {
                     if (a.arrival_t != b.arrival_t) return a.arrival_t < b.arrival_t;
                     if (a.stream != b.stream) return a.stream < b.stream;
                     return a.seq < b.seq;
                   });

  metrics::RuntimeMetrics* const mm = machine.metrics();
  metrics::Counter* c_requests = nullptr;
  metrics::Counter* c_epochs = nullptr;
  metrics::Counter* c_remaps = nullptr;
  metrics::Counter* c_shed = nullptr;
  metrics::Counter* c_infeasible = nullptr;
  metrics::Gauge* g_offered = nullptr;
  metrics::Gauge* g_required = nullptr;
  metrics::Gauge* g_capacity = nullptr;
  metrics::Gauge* g_queue = nullptr;
  metrics::Histogram* h_latency = nullptr;
  if (mm) {
    c_requests = mm->registry.counter("fxpar_serve_requests_total");
    c_epochs = mm->registry.counter("fxpar_serve_epochs_total");
    c_remaps = mm->registry.counter("fxpar_serve_remaps_total");
    c_shed = mm->registry.counter("fxpar_serve_shed_total");
    c_infeasible = mm->registry.counter("fxpar_serve_infeasible_epochs_total");
    g_offered = mm->registry.gauge("fxpar_serve_offered_rate");
    g_required = mm->registry.gauge("fxpar_serve_required_throughput");
    g_capacity = mm->registry.gauge("fxpar_serve_mapping_throughput");
    g_queue = mm->registry.gauge("fxpar_serve_queue_depth");
    h_latency = mm->registry.histogram("fxpar_serve_latency_seconds");
  }

  auto health = std::make_shared<detail::ServeHealth>();
  machine.set_healthz_extra([health] { return health->json(); });

  RemapPolicy policy(model, machine.num_procs(), cfg.policy);
  ServeReport report;
  {
    int max_stream = -1;
    for (const ServeRequest& r : arrivals) max_stream = std::max(max_stream, r.stream);
    report.num_streams = max_stream + 1;
  }

  double t = 0.0;
  std::size_t next = 0;
  std::deque<ServeRequest> queue;
  std::deque<double> recent_arrivals;  // admission times for the rate estimate
  int epoch = 0;

  const auto admit_due = [&] {
    while (next < arrivals.size() && arrivals[next].arrival_t <= t) {
      if (cfg.max_queue > 0 && static_cast<int>(queue.size()) >= cfg.max_queue) {
        RequestRecord rr;
        rr.stream = arrivals[next].stream;
        rr.seq = arrivals[next].seq;
        rr.data_id = arrivals[next].data_id;
        rr.arrival_t = arrivals[next].arrival_t;
        report.shed.push_back(rr);
        if (c_shed) c_shed->add(0);
      } else {
        queue.push_back(arrivals[next]);
      }
      recent_arrivals.push_back(arrivals[next].arrival_t);
      while (static_cast<int>(recent_arrivals.size()) > cfg.rate_window) {
        recent_arrivals.pop_front();
      }
      ++next;
    }
  };

  while (true) {
    admit_due();
    if (queue.empty()) {
      if (next >= arrivals.size()) break;  // drained everything
      t = arrivals[next].arrival_t;        // idle until the next arrival
      continue;
    }

    // Offered rate over the recent arrival window. A degenerate window
    // (all simultaneous) reads as an effectively unbounded rate; the
    // mapper then reports the SLO infeasible and the policy serves
    // best-effort, which is the right answer for a burst.
    double offered = 0.0;
    if (recent_arrivals.size() >= 2) {
      const double span = recent_arrivals.back() - recent_arrivals.front();
      const double n = static_cast<double>(recent_arrivals.size() - 1);
      offered = span > 0.0 ? n / span : std::numeric_limits<double>::max();
    }

    const RemapDecision d = policy.decide(offered);
    const std::vector<apps::StreamModule> modules =
        apps::to_stream_modules(d.mapping);
    const bool remapped = !d.initial && d.action != RemapAction::Keep &&
                          policy.remaps() > report.remaps;
    if (remapped) {
      report.remaps = policy.remaps();
      if (c_remaps) c_remaps->add(0);
      if (machine.flight()) {
        machine.flight()->record(0, obs::FlightKind::Mark, t, "serve.remap",
                                 static_cast<std::uint64_t>(epoch),
                                 static_cast<std::uint64_t>(report.remaps));
      }
    }

    // Take the batch.
    std::vector<ServeRequest> batch;
    std::vector<int> ids;
    while (!queue.empty() && static_cast<int>(batch.size()) < cfg.max_batch) {
      batch.push_back(queue.front());
      ids.push_back(queue.front().data_id);
      queue.pop_front();
    }
    const int n = static_cast<int>(batch.size());

    // Execute it for real under the installed mapping.
    apps::StreamRunOptions opts;
    opts.set_ids = &ids;
    opts.sampler = cfg.sampler;
    std::function<void(machine::Context&)> epi;
    if (cfg.epilogue_factory) {
      epi = cfg.epilogue_factory(modules, ids);
      opts.epilogue = epi;
    }
    apps::run_stream_pipeline_on(machine, stages, modules, n, opts);

    // Advance the virtual clock by the model-predicted batch occupancy
    // (fill latency + steady spacing), and charge per-request latencies
    // against it.
    const double spacing =
        d.mapping.throughput > 0.0 ? 1.0 / d.mapping.throughput : 0.0;
    const double epoch_start = t;
    for (int i = 0; i < n; ++i) {
      RequestRecord rr;
      rr.stream = batch[static_cast<std::size_t>(i)].stream;
      rr.seq = batch[static_cast<std::size_t>(i)].seq;
      rr.data_id = batch[static_cast<std::size_t>(i)].data_id;
      rr.epoch = epoch;
      rr.arrival_t = batch[static_cast<std::size_t>(i)].arrival_t;
      rr.start_t = epoch_start;
      rr.finish_t = epoch_start + d.mapping.latency + spacing * static_cast<double>(i);
      report.requests.push_back(rr);
      if (h_latency) h_latency->observe(0, rr.latency());
      if (c_requests) c_requests->add(0);
    }
    t = epoch_start + d.mapping.latency +
        spacing * static_cast<double>(n > 0 ? n - 1 : 0);

    EpochRecord er;
    er.epoch = epoch;
    er.t_start = epoch_start;
    er.t_end = t;
    er.sets = n;
    er.offered_rate = offered;
    er.required_throughput = d.required_throughput;
    er.remapped = remapped;
    er.slo_feasible = d.slo_feasible;
    er.map_throughput = d.mapping.throughput;
    er.map_latency = d.mapping.latency;
    er.map_procs = d.mapping.total_procs();
    er.mapping = d.mapping.to_string(model);
    report.epochs.push_back(er);
    if (!d.slo_feasible) {
      ++report.infeasible_epochs;
      if (c_infeasible) c_infeasible->add(0);
    }
    if (c_epochs) c_epochs->add(0);
    if (g_offered) g_offered->set(offered);
    if (g_required) g_required->set(d.required_throughput);
    if (g_capacity) g_capacity->set(d.mapping.throughput);
    if (g_queue) g_queue->set(static_cast<double>(queue.size()));

    {
      std::lock_guard<std::mutex> lk(health->mu);
      health->epoch = epoch;
      health->queue_depth = static_cast<int>(queue.size());
      health->offered_rate = offered;
      health->required_throughput = d.required_throughput;
      health->remaps = report.remaps;
      health->slo_feasible = d.slo_feasible;
      health->mapping = er.mapping;
      health->served = static_cast<long>(report.requests.size());
      health->shed = static_cast<long>(report.shed.size());
    }
    ++epoch;
  }

  report.makespan = t;
  if (cfg.sampler) cfg.sampler->finish();  // series covers the final epoch
  return report;
}

}  // namespace fxpar::serve
