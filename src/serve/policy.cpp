#include "serve/policy.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace fxpar::serve {

namespace {

/// Relative slack when comparing a requirement against installed capacity,
/// mirroring the mapper's own feasibility slack so a mapping planned for
/// exactly this requirement is not immediately judged short of it.
constexpr double kSlack = 1e-9;

}  // namespace

RemapPolicy::RemapPolicy(sched::PipelineModel model, int num_procs, PolicyConfig cfg)
    : model_(std::move(model)), num_procs_(num_procs), cfg_(cfg) {
  if (num_procs_ < 1) {
    throw std::invalid_argument("RemapPolicy: num_procs must be >= 1");
  }
  if (!(cfg_.safety >= 1.0)) {
    throw std::invalid_argument("RemapPolicy: safety must be >= 1");
  }
  if (cfg_.dwell_up < 1 || cfg_.dwell_down < 1) {
    throw std::invalid_argument("RemapPolicy: dwell windows must be >= 1 epoch");
  }
}

sched::PipelineMapping RemapPolicy::plan(double required, bool& slo_ok) const {
  // An unbounded requirement (a burst of simultaneous arrivals reads as an
  // infinite offered rate, and safety * DBL_MAX overflows) is trivially
  // infeasible — don't even ask the mapper, which rejects non-finite
  // constraints.
  if (std::isfinite(required)) {
    sched::PipelineMapping m = sched::min_latency_mapping(model_, num_procs_, required);
    if (m.feasible) {
      slo_ok = true;
      return m;
    }
  }
  // The SLO is unreachable on this machine: serve best-effort at the
  // machine's maximum sustainable rate rather than stalling admission.
  slo_ok = false;
  sched::PipelineMapping best = sched::max_throughput_mapping(model_, num_procs_);
  best.required_throughput = required;  // keep the unmet ask visible
  return best;
}

void RemapPolicy::install(const sched::PipelineMapping& next, bool slo_ok,
                          bool count_remap) {
  if (count_remap) ++remaps_;
  current_ = next;
  slo_feasible_ = slo_ok;
  up_streak_ = 0;
  down_streak_ = 0;
}

RemapDecision RemapPolicy::decide(double offered_rate) {
  if (!(offered_rate >= 0.0)) offered_rate = 0.0;  // also catches NaN
  RemapDecision d;
  d.offered_rate = offered_rate;
  d.required_throughput = cfg_.safety * offered_rate;

  if (!primed_) {
    bool slo_ok = true;
    const sched::PipelineMapping next = plan(d.required_throughput, slo_ok);
    install(next, slo_ok, /*count_remap=*/false);
    primed_ = true;
    d.action = slo_ok ? RemapAction::Remap : RemapAction::Infeasible;
    d.initial = true;
    d.reason = slo_ok ? "initial plan" : "initial plan: SLO infeasible, best-effort";
    d.mapping = current_;
    d.slo_feasible = slo_feasible_;
    return d;
  }

  const bool short_of_capacity =
      d.required_throughput > current_.throughput * (1.0 + kSlack);

  if (short_of_capacity) {
    down_streak_ = 0;
    if (++up_streak_ < cfg_.dwell_up) {
      d.reason = "capacity short; dwelling";
    } else {
      bool slo_ok = true;
      const sched::PipelineMapping next = plan(d.required_throughput, slo_ok);
      if (next.same_modules(current_)) {
        // Nothing better exists (typically: already on the best-effort
        // fallback). Keep, but report the unmet SLO.
        up_streak_ = 0;
        slo_feasible_ = slo_ok;
        d.action = slo_ok ? RemapAction::Keep : RemapAction::Infeasible;
        d.reason = slo_ok ? "replan chose the installed mapping"
                          : "SLO infeasible; already on best-effort mapping";
      } else {
        install(next, slo_ok, /*count_remap=*/true);
        d.action = slo_ok ? RemapAction::Remap : RemapAction::Infeasible;
        d.reason = slo_ok ? "capacity short; remapped up"
                          : "SLO infeasible; remapped to best-effort";
      }
    }
  } else {
    up_streak_ = 0;
    // Capacity suffices. A down remap must buy real latency (or recover
    // from a best-effort fallback once the requirement dropped back into
    // feasible territory) and persist for the dwell window.
    bool slo_ok = true;
    const sched::PipelineMapping cand = plan(d.required_throughput, slo_ok);
    const bool recovers = !slo_feasible_ && slo_ok;
    const bool improves =
        slo_ok && cand.latency < current_.latency * (1.0 - cfg_.latency_improvement);
    if ((recovers || improves) && !cand.same_modules(current_)) {
      if (++down_streak_ < cfg_.dwell_down) {
        d.reason = "down remap justified; dwelling";
      } else {
        install(cand, slo_ok, /*count_remap=*/true);
        d.action = RemapAction::Remap;
        d.reason = recovers ? "SLO feasible again; remapped off best-effort"
                            : "remapped down for latency";
      }
    } else {
      down_streak_ = 0;
      if (cand.same_modules(current_)) slo_feasible_ = slo_ok;
      d.reason = "capacity sufficient";
    }
  }

  d.mapping = current_;
  d.slo_feasible = slo_feasible_;
  return d;
}

}  // namespace fxpar::serve
