#include "serve/server.hpp"

#include <algorithm>
#include <cstdio>

namespace fxpar::serve {

namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

double ServeReport::latency_quantile(double q) const {
  if (requests.empty()) return 0.0;
  std::vector<double> lat;
  lat.reserve(requests.size());
  for (const RequestRecord& r : requests) lat.push_back(r.latency());
  q = std::clamp(q, 0.0, 1.0);
  const std::size_t rank = std::min(
      lat.size() - 1, static_cast<std::size_t>(q * static_cast<double>(lat.size() - 1) + 0.5));
  std::nth_element(lat.begin(), lat.begin() + static_cast<std::ptrdiff_t>(rank), lat.end());
  return lat[rank];
}

double ServeReport::mean_latency() const {
  if (requests.empty()) return 0.0;
  double s = 0.0;
  for (const RequestRecord& r : requests) s += r.latency();
  return s / static_cast<double>(requests.size());
}

std::string ServeReport::to_json() const {
  std::ostringstream os;
  os << "{\"requests\":" << requests.size() << ",\"shed\":" << shed.size()
     << ",\"streams\":" << num_streams << ",\"epochs\":" << epochs.size()
     << ",\"remaps\":" << remaps << ",\"infeasible_epochs\":" << infeasible_epochs
     << ",\"makespan\":" << num(makespan) << ",\"throughput\":" << num(throughput())
     << ",\"latency_mean\":" << num(mean_latency())
     << ",\"latency_p50\":" << num(latency_quantile(0.50))
     << ",\"latency_p95\":" << num(latency_quantile(0.95))
     << ",\"latency_p99\":" << num(latency_quantile(0.99)) << ",\"epoch_log\":[";
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    const EpochRecord& e = epochs[i];
    if (i) os << ",";
    os << "{\"epoch\":" << e.epoch << ",\"t_start\":" << num(e.t_start)
       << ",\"t_end\":" << num(e.t_end) << ",\"sets\":" << e.sets
       << ",\"offered\":" << num(e.offered_rate)
       << ",\"required\":" << num(e.required_throughput)
       << ",\"remapped\":" << (e.remapped ? "true" : "false")
       << ",\"slo_feasible\":" << (e.slo_feasible ? "true" : "false")
       << ",\"map_throughput\":" << num(e.map_throughput)
       << ",\"map_latency\":" << num(e.map_latency)
       << ",\"map_procs\":" << e.map_procs << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace fxpar::serve
