// fxpar serve: online remap policy for pipeline-as-a-service drivers.
//
// The paper's Figure 5 is a *static* study: for each required throughput,
// run the mapping algorithm of ref [22] once and report the latency of the
// resulting mapping. A serving driver faces the dynamic version of the same
// problem — the offered load changes while the pipeline runs, and the
// mapping that was latency-optimal for the old rate is either too slow
// (missed SLO) or wastefully replicated (worse latency than necessary) for
// the new one. RemapPolicy watches the measured offered rate and decides,
// at each epoch boundary (the only points where the driver can drain and
// re-partition), whether to keep the current mapping, switch to a newly
// planned one, or fall back to the best-effort maximum-throughput mapping
// when the SLO is infeasible on this machine.
//
// Hysteresis keeps the policy from thrashing at a mapping-change boundary:
// an *up* remap (capacity short of requirement) needs the shortfall to
// persist for `dwell_up` consecutive epochs; a *down* remap (capacity
// comfortably above requirement) additionally requires the candidate
// mapping to improve modeled latency by at least `latency_improvement`
// relative, persisting for `dwell_down` epochs. A load oscillating around
// a boundary faster than the dwell windows therefore produces zero remaps.
#pragma once

#include <string>

#include "sched/pipeline.hpp"

namespace fxpar::serve {

/// Knobs of the remap policy (all in epoch / relative units).
struct PolicyConfig {
  /// Planning headroom: the mapping is planned for `safety * offered_rate`
  /// so ordinary jitter does not immediately violate the constraint.
  double safety = 1.05;
  /// Consecutive epochs the requirement must exceed capacity before an up
  /// remap fires (1 = react on the first shortfall epoch).
  int dwell_up = 1;
  /// Consecutive epochs a latency-improving down remap must stay justified
  /// before it fires. Larger than dwell_up on purpose: shedding capacity is
  /// never urgent, acquiring it is.
  int dwell_down = 3;
  /// Minimum relative modeled-latency improvement a down remap must offer
  /// (0.10 = the candidate must be at least 10% faster per data set).
  double latency_improvement = 0.10;
};

enum class RemapAction {
  Keep,        ///< current mapping stays installed
  Remap,       ///< `mapping` (feasible for the requirement) was installed
  Infeasible,  ///< SLO unreachable on P procs; best-effort fallback installed
};

/// Outcome of one policy step.
struct RemapDecision {
  RemapAction action = RemapAction::Keep;
  /// The mapping installed after this step (current() echo).
  sched::PipelineMapping mapping;
  double offered_rate = 0.0;
  double required_throughput = 0.0;  ///< safety * offered_rate
  /// False while serving best-effort under an infeasible SLO.
  bool slo_feasible = true;
  /// True only for the very first step (initial install, not a remap).
  bool initial = false;
  std::string reason;
};

/// Decides, once per epoch, whether the measured offered rate justifies
/// replacing the installed mapping. Single-threaded: the serving driver
/// calls decide() between batches.
class RemapPolicy {
 public:
  RemapPolicy(sched::PipelineModel model, int num_procs, PolicyConfig cfg = {});

  /// The installed mapping (initially planned by the first decide()).
  const sched::PipelineMapping& current() const noexcept { return current_; }
  bool primed() const noexcept { return primed_; }
  bool slo_feasible() const noexcept { return slo_feasible_; }
  /// Mapping changes after the initial install.
  int remaps() const noexcept { return remaps_; }

  /// One policy step for the epoch about to run. The first call always
  /// plans and installs (decision.initial = true, not counted as a remap).
  RemapDecision decide(double offered_rate);

 private:
  /// min_latency_mapping for the requirement; falls back to the
  /// max-throughput mapping (feasible by construction) when the SLO is
  /// unreachable, reporting slo_ok = false.
  sched::PipelineMapping plan(double required, bool& slo_ok) const;
  void install(const sched::PipelineMapping& next, bool slo_ok, bool count_remap);

  sched::PipelineModel model_;
  int num_procs_;
  PolicyConfig cfg_;
  sched::PipelineMapping current_;
  bool primed_ = false;
  bool slo_feasible_ = true;
  int up_streak_ = 0;
  int down_streak_ = 0;
  int remaps_ = 0;
};

}  // namespace fxpar::serve
