// fxpar trace: Chrome/Perfetto trace_event JSON export.
//
// Serializes a TraceRecorder into the Trace Event Format (the JSON dialect
// consumed by chrome://tracing and https://ui.perfetto.dev): one thread
// ("proc N") per simulated processor, complete ("X") events for every
// named span and wait interval, and flow ("s"/"f") events tying each
// message's deposit to its receive. Timestamps are microseconds of modeled
// machine time. See docs/observability.md for how to read the result.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace fxpar::trace {

/// Streams the whole trace as one JSON object {"traceEvents": [...]}.
void export_chrome_trace(const TraceRecorder& rec, std::ostream& os);

/// Convenience: the same JSON as a string.
std::string chrome_trace_json(const TraceRecorder& rec);

/// Writes the JSON to `path`; throws std::runtime_error on I/O failure.
void write_chrome_trace(const TraceRecorder& rec, const std::string& path);

}  // namespace fxpar::trace
