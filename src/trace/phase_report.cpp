#include "trace/phase_report.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace fxpar::trace {

PhaseReport phase_report(const TraceRecorder& rec) {
  PhaseReport r;
  r.makespan = rec.finish_time();
  r.num_procs = rec.num_procs();
  for (const ProcTotals& t : rec.proc_totals()) {
    r.total_busy += t.busy;
    r.total_recv_wait += t.recv_wait;
    r.total_barrier_wait += t.barrier_wait;
    r.total_io_wait += t.io_wait;
  }

  std::map<std::string, PhaseStats> by_name;
  double depth1_active = 0.0;
  for (const Span& s : rec.spans()) {
    if (s.depth == 0) continue;  // the per-proc "program" root is the denominator
    PhaseStats& p = by_name[s.name];
    if (p.instances == 0) {
      p.name = s.name;
      p.category = s.category;
    }
    p.instances += 1;
    p.wall += s.duration();
    p.busy += s.busy;
    p.recv_wait += s.recv_wait;
    p.barrier_wait += s.barrier_wait;
    p.io_wait += s.io_wait;
    p.messages += s.messages;
    p.bytes += s.bytes;
    p.steals += s.steals;
    p.stolen_iters += s.stolen_iters;
    p.plan_hits += s.plan_hits;
    p.plan_misses += s.plan_misses;
    // Depth-1 spans inclusively contain everything deeper, so summing them
    // counts each unit of attributed activity exactly once.
    if (s.depth == 1) {
      depth1_active += s.busy + s.recv_wait + s.barrier_wait + s.io_wait;
    }
  }

  const double total_active =
      r.total_busy + r.total_recv_wait + r.total_barrier_wait + r.total_io_wait;
  r.attributed_fraction = total_active > 0.0 ? depth1_active / total_active : 1.0;

  r.phases.reserve(by_name.size());
  for (auto& [name, p] : by_name) r.phases.push_back(std::move(p));
  std::stable_sort(r.phases.begin(), r.phases.end(),
                   [](const PhaseStats& a, const PhaseStats& b) {
                     return a.active() > b.active();
                   });
  return r;
}

std::string PhaseReport::to_string(std::size_t max_phases) const {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(4);
  oss << "phase report: makespan " << makespan << " s on " << num_procs
      << " procs; attributed to named spans: "
      << static_cast<int>(100.0 * attributed_fraction + 0.5) << "%\n";
  oss << "  machine activity: busy " << total_busy << " s, recv wait " << total_recv_wait
      << " s, barrier wait " << total_barrier_wait << " s, io wait " << total_io_wait
      << " s (proc-seconds)\n";
  oss << "  phase                          inst     time(s)   busy%  recvw%  barrw%    iow%"
         "      bytes\n";
  std::size_t shown = 0;
  for (const PhaseStats& p : phases) {
    if (shown++ >= max_phases) {
      oss << "  ... (" << (phases.size() - max_phases) << " more)\n";
      break;
    }
    const double a = p.active();
    auto pct = [&](double x) { return a > 0.0 ? 100.0 * x / a : 0.0; };
    char line[200];
    std::snprintf(line, sizeof(line),
                  "  %-30s %4d %11.4f  %5.1f%%  %5.1f%%  %5.1f%%  %5.1f%% %10llu\n",
                  p.name.substr(0, 30).c_str(), p.instances, a, pct(p.busy),
                  pct(p.recv_wait), pct(p.barrier_wait), pct(p.io_wait),
                  static_cast<unsigned long long>(p.bytes));
    oss << line;
  }
  oss << "  (inclusive: nested spans also count toward their parents)\n";

  // Second table: stealing and plan-cache activity, only for phases that
  // saw any — these used to exist only at run level in utilization_report.
  bool header = false;
  shown = 0;
  for (const PhaseStats& p : phases) {
    if (p.steals == 0 && p.stolen_iters == 0 && p.plan_hits == 0 && p.plan_misses == 0) {
      continue;
    }
    if (shown++ >= max_phases) break;
    if (!header) {
      oss << "  phase                         steals stolen_iters  plan_hit plan_miss\n";
      header = true;
    }
    char line[200];
    std::snprintf(line, sizeof(line), "  %-30s %5llu %12llu %9llu %9llu\n",
                  p.name.substr(0, 30).c_str(),
                  static_cast<unsigned long long>(p.steals),
                  static_cast<unsigned long long>(p.stolen_iters),
                  static_cast<unsigned long long>(p.plan_hits),
                  static_cast<unsigned long long>(p.plan_misses));
    oss << line;
  }
  return oss.str();
}

}  // namespace fxpar::trace
