// fxpar trace: structured, sim-timestamped event recording for simulated
// runs.
//
// The TraceRecorder is the substrate of the observability stack: every
// layer of the runtime reports what it is doing in modeled time — the
// Simulator charges busy intervals, the Machine records message, barrier
// and I/O waits (each with the happens-before edge that ended it), and the
// directive layer (TASK_REGION / ON / parallel loops / redistribution /
// collectives) opens named scoped spans so all of it is attributed to the
// directive nest that caused it. Consumers are chrome_export.hpp (Perfetto
// timelines), phase_report.hpp (per-span busy/wait/comm aggregates) and
// critical_path.hpp (longest happens-before chain).
//
// Recording never changes modeled time: the recorder only observes the
// virtual clocks through a clock callback. When tracing is disabled
// (MachineConfig::trace == false) no recorder exists and every hook is a
// single null-pointer test.
//
// This library is dependency-free by design: the runtime links it, not the
// other way round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fxpar::trace {

/// Why a processor was off the (modeled) CPU.
enum class WaitKind : std::uint8_t { Recv, Barrier, Io };

const char* wait_kind_name(WaitKind k);

/// One completed named interval on one processor's timeline. Spans nest
/// per processor; `depth` 0 is the per-processor root ("program") span.
/// The accounting fields are *inclusive*: time charged while any deeper
/// span was also open is counted here too.
struct Span {
  int proc = -1;
  int depth = 0;
  double t0 = 0.0;
  double t1 = 0.0;
  std::string name;
  std::string category;
  double busy = 0.0;          ///< modeled compute while open
  double recv_wait = 0.0;     ///< waiting for message arrivals
  double barrier_wait = 0.0;  ///< waiting in subset barriers
  double io_wait = 0.0;       ///< waiting on the sequential I/O device
  std::uint64_t messages = 0; ///< messages deposited while open
  std::uint64_t bytes = 0;    ///< bytes deposited while open
  std::uint64_t steals = 0;       ///< stolen chunks completed while open
  std::uint64_t stolen_iters = 0; ///< iterations those chunks covered
  std::uint64_t plan_hits = 0;    ///< redistribution plan-cache hits while open
  std::uint64_t plan_misses = 0;  ///< redistribution plan-cache misses while open

  double duration() const { return t1 - t0; }
  double wait() const { return recv_wait + barrier_wait + io_wait; }
};

/// One wait interval on one processor, with the happens-before edge that
/// ended it: the wait could not have ended before `cause_proc` reached
/// `cause_time` (sender finished depositing; last barrier arriver arrived;
/// previous I/O operation drained).
struct Wait {
  int proc = -1;
  WaitKind kind = WaitKind::Recv;
  double t0 = 0.0;
  double t1 = 0.0;
  int cause_proc = -1;
  double cause_time = 0.0;
  std::uint64_t ref = 0;  ///< message id / barrier id (1-based; 0 = none)
};

/// One point-to-point message (direct deposit).
struct MessageRecord {
  std::uint64_t id = 0;  ///< 1-based
  int src = -1;
  int dst = -1;
  std::uint64_t tag = 0;
  std::uint64_t bytes = 0;
  double send_t0 = 0.0;  ///< sender started the deposit
  double send_t1 = 0.0;  ///< deposit complete on the sender
  double recv_t = -1.0;  ///< receiver consumed it (< 0: never received)
};

/// One subset barrier instance.
struct BarrierRecord {
  std::uint64_t id = 0;  ///< 1-based
  std::uint64_t group_key = 0;
  std::vector<int> procs;        ///< arrival order
  std::vector<double> arrivals;  ///< parallel to `procs`
  double release = 0.0;
  int last_arriver = -1;
};

/// One stolen loop chunk (threaded backend, work stealing on): `thief` ran
/// `iters` iterations of `victim`'s static block, finishing at `t` (real
/// seconds). Steals are pure load balancing — they move work, not data
/// ownership — so unlike Wait they carry no happens-before edge.
struct StealRecord {
  int thief = -1;
  int victim = -1;
  std::uint64_t iters = 0;
  double t = 0.0;
};

/// Where a worker thread landed under MachineConfig::pinning (threaded
/// backend only): host CPU and NUMA node, or -1/-1 when unpinned.
struct PlacementRecord {
  int cpu = -1;
  int node = -1;
};

/// Per-processor accounting totals (denominators for coverage metrics).
struct ProcTotals {
  double busy = 0.0;
  double recv_wait = 0.0;
  double barrier_wait = 0.0;
  double io_wait = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  double active() const { return busy + recv_wait + barrier_wait + io_wait; }
};

class TraceRecorder {
 public:
  /// `clock(rank)` must return the current modeled time of `rank`; the
  /// recorder never advances any clock.
  using Clock = std::function<double(int)>;

  explicit TraceRecorder(int num_procs);

  int num_procs() const noexcept { return static_cast<int>(open_.size()); }
  void set_clock(Clock clock) { clock_ = std::move(clock); }

  /// Drops all recorded state (spans, waits, messages, barriers, totals);
  /// keeps the clock. Called at the start of every Machine::run.
  void reset();

  // ---- spans ----

  void begin_span(int proc, std::string name, std::string category);
  void end_span(int proc);
  int open_depth(int proc) const;

  // ---- accounting hooks (the Simulator / Machine call these) ----

  /// Modeled compute charged to `proc` (Simulator::advance).
  void add_busy(int proc, double dt);

  /// Deposit of `bytes` from `src` to `dst`; [t0, t1] is the sender-side
  /// send interval. Returns the message id to stash with the message.
  std::uint64_t message_sent(int src, int dst, std::uint64_t tag, std::uint64_t bytes,
                             double t0, double t1);

  /// Message `id` consumed by its receiver: the receiver entered the
  /// receive at `wait_t0` and the payload was available at `ready_t`.
  void message_received(std::uint64_t id, double wait_t0, double ready_t);

  /// New barrier instance over the group hashed by `group_key`.
  std::uint64_t barrier_open(std::uint64_t group_key);
  void barrier_arrive(std::uint64_t id, int proc, double t);

  /// All members arrived; everyone is released at `release`. Emits one
  /// BarrierWait interval per member.
  void barrier_release(std::uint64_t id, int last_arriver, double max_arrival,
                       double release);

  /// `proc` was stalled on the sequential I/O device over [t0, t1]; if it
  /// queued behind another operation, `cause_proc`/`cause_time` name the
  /// previous operation's owner and completion time (else pass proc / t0).
  void io_wait(int proc, double t0, double t1, int cause_proc, double cause_time);

  /// `thief` completed a stolen chunk of `iters` iterations owned by
  /// `victim` at time `t`. In concurrent mode the record lands in the
  /// thief's shard (call only from the thief's worker) and is merged by
  /// time like the other streams. Also bumps the steal counters of the
  /// thief's open spans, so phase reports can localize stealing.
  void steal_event(int thief, int victim, std::uint64_t iters, double t);

  /// Redistribution plan-cache hit (or miss) observed by `proc`: bumps the
  /// counters of `proc`'s open spans. Safe in concurrent mode — each
  /// worker only touches its own rank's span stack. Call only from the
  /// observing rank's worker.
  void plan_cache_event(int proc, bool hit);

  /// Worker `proc` was pinned to host CPU `cpu` on NUMA node `node` for
  /// this run (threaded backend, pinning active). Each rank writes only
  /// its own slot, so this is safe from worker threads without locks.
  void set_worker_placement(int proc, int cpu, int node) {
    auto& pl = placements_[static_cast<std::size_t>(proc)];
    pl.cpu = cpu;
    pl.node = node;
  }

  // ---- concurrent recording (threaded backend) ----
  //
  // The hooks above assume one OS thread: they append to shared vectors.
  // The threaded backend instead calls set_concurrent() at the start of a
  // run, which re-routes every append into a per-worker shard — each hook
  // then touches only the calling rank's buffers, so worker threads record
  // without locks — and merge_concurrent() after the join, which folds the
  // shards back into the shared vectors in a deterministic order. The two
  // concurrent-only hooks below carry the cause data (sender, send time,
  // barrier episode) that the single-threaded hooks look up in shared
  // records instead. Nothing calls add_busy in concurrent mode (there is no
  // modeled charge()); end_span instead stamps each span's busy as its real
  // elapsed time minus the waits recorded while it was open.

  /// Enters concurrent mode and clears the per-worker shards.
  /// `num_procs` must match the recorder's processor count.
  void set_concurrent(int num_procs);

  /// Message `id` consumed by rank `dst`: it was sent by `src` at `send_t`,
  /// the receiver entered the receive at `wait_t0` and the payload was
  /// available at `ready_t`. Concurrent-mode counterpart of
  /// message_received(); call only from rank `dst`'s worker.
  void message_received_at(std::uint64_t id, int dst, int src, double send_t,
                           double wait_t0, double ready_t);

  /// One member's view of one barrier episode, reported after its release.
  /// Records of the same (group_key, episode) merge into one
  /// BarrierRecord; `last_arriver`/`max_arrival` are the values the
  /// episode's root published. Call only from rank `proc`'s worker.
  void barrier_record(std::uint64_t group_key, std::uint64_t episode, int proc,
                      double arrive_t, double release_t, int last_arriver,
                      double max_arrival);

  /// Folds the per-worker shards into the shared vectors and leaves
  /// concurrent mode. Call after every worker has joined.
  void merge_concurrent();

  // ---- cross-process shard shipping (proc backend) ----
  //
  // A forked child records into its copy-on-write shards exactly as a
  // worker thread would; at body end it serializes its rank's shard state
  // (the six shard vectors plus its per-proc totals, placement and
  // last-activity stamp) and ships the bytes to the parent, which absorbs
  // them before merge_concurrent(). Absorbing *assigns* the rank's shards
  // — correct because in a proc run only the owning process records for
  // that rank — so both calls are legal only in concurrent mode.

  /// Serializes rank `proc`'s concurrent-mode shard state.
  std::vector<std::byte> serialize_shard(int proc) const;
  /// Installs a shard blob produced by serialize_shard() in a (forked)
  /// copy of this recorder; the rank is read from the blob.
  void absorb_shard(const std::byte* data, std::size_t len);

  /// Closes any still-open spans at `finish` and freezes the run's
  /// completion time.
  void finalize(double finish);

  // ---- recorded data (for exporters and analyzers) ----

  const std::vector<Span>& spans() const noexcept { return done_; }
  const std::vector<Wait>& waits() const noexcept { return waits_; }
  const std::vector<MessageRecord>& messages() const noexcept { return messages_; }
  const std::vector<BarrierRecord>& barriers() const noexcept { return barriers_; }
  const std::vector<StealRecord>& steals() const noexcept { return steals_; }
  const std::vector<PlacementRecord>& placements() const noexcept { return placements_; }
  const std::vector<ProcTotals>& proc_totals() const noexcept { return totals_; }
  double finish_time() const noexcept { return finish_; }

  /// Time of the last recorded event on `proc` (span end, busy interval,
  /// send, or wait end) — unlike span ends, unaffected by finalize()
  /// closing root spans at the run's finish time.
  double last_activity(int proc) const noexcept {
    return last_activity_[static_cast<std::size_t>(proc)];
  }

 private:
  struct RecvNote {  ///< receiver-side consumption of a sender-shard message
    std::uint64_t id = 0;
    double recv_t = 0.0;
  };
  struct BarrierNote {  ///< one member's view of one barrier episode
    std::uint64_t group_key = 0;
    std::uint64_t episode = 0;
    int proc = -1;
    double arrive_t = 0.0;
    double release_t = 0.0;
    int last_arriver = -1;
  };

  double now(int proc) const;
  void add_wait(int proc, WaitKind kind, double t0, double t1, int cause_proc,
                double cause_time, std::uint64_t ref);
  void touch(int proc, double t);

  Clock clock_;
  std::vector<std::vector<Span>> open_;  ///< per-proc stack of open spans
  std::vector<Span> done_;
  std::vector<Wait> waits_;
  std::vector<MessageRecord> messages_;
  std::vector<BarrierRecord> barriers_;
  std::vector<StealRecord> steals_;
  std::vector<PlacementRecord> placements_;  ///< per-proc; each rank writes its own slot
  std::vector<ProcTotals> totals_;
  std::vector<double> last_activity_;  ///< per-proc time of the last event
  double finish_ = 0.0;

  // Concurrent-mode shards, indexed by the recording rank. Message ids in
  // concurrent mode are composite — ((src+1) << 40) | local index — so a
  // sender can mint them without coordination.
  bool concurrent_ = false;
  std::vector<std::vector<Span>> done_pp_;
  std::vector<std::vector<Wait>> waits_pp_;
  std::vector<std::vector<MessageRecord>> msgs_pp_;
  std::vector<std::vector<RecvNote>> recv_pp_;
  std::vector<std::vector<BarrierNote>> bnotes_pp_;
  std::vector<std::vector<StealRecord>> steals_pp_;
};

/// RAII closer for a span opened through Context::span(). Inert when
/// default-constructed (tracing disabled).
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceRecorder* rec, int proc) : rec_(rec), proc_(proc) {}
  ScopedSpan(ScopedSpan&& o) noexcept : rec_(o.rec_), proc_(o.proc_) { o.rec_ = nullptr; }
  ScopedSpan& operator=(ScopedSpan&& o) noexcept {
    if (this != &o) {
      close();
      rec_ = o.rec_;
      proc_ = o.proc_;
      o.rec_ = nullptr;
    }
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { close(); }

  /// Ends the span now (idempotent; destruction does the same).
  void close() {
    if (rec_) {
      rec_->end_span(proc_);
      rec_ = nullptr;
    }
  }

 private:
  TraceRecorder* rec_ = nullptr;
  int proc_ = -1;
};

}  // namespace fxpar::trace
