#include "trace/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace fxpar::trace {

const char* wait_kind_name(WaitKind k) {
  switch (k) {
    case WaitKind::Recv: return "recv";
    case WaitKind::Barrier: return "barrier";
    case WaitKind::Io: return "io";
  }
  return "?";
}

TraceRecorder::TraceRecorder(int num_procs) {
  if (num_procs <= 0) throw std::invalid_argument("TraceRecorder: num_procs must be positive");
  open_.resize(static_cast<std::size_t>(num_procs));
  totals_.resize(static_cast<std::size_t>(num_procs));
  last_activity_.resize(static_cast<std::size_t>(num_procs), 0.0);
}

void TraceRecorder::reset() {
  for (auto& stack : open_) stack.clear();
  last_activity_.assign(open_.size(), 0.0);
  done_.clear();
  waits_.clear();
  messages_.clear();
  barriers_.clear();
  totals_.assign(open_.size(), ProcTotals{});
  finish_ = 0.0;
}

double TraceRecorder::now(int proc) const {
  if (!clock_) throw std::logic_error("TraceRecorder: no clock installed");
  return clock_(proc);
}

void TraceRecorder::begin_span(int proc, std::string name, std::string category) {
  if (proc < 0 || proc >= num_procs()) {
    throw std::out_of_range("TraceRecorder::begin_span: bad proc");
  }
  auto& stack = open_[static_cast<std::size_t>(proc)];
  Span s;
  s.proc = proc;
  s.depth = static_cast<int>(stack.size());
  s.t0 = now(proc);
  s.name = std::move(name);
  s.category = std::move(category);
  stack.push_back(std::move(s));
}

void TraceRecorder::end_span(int proc) {
  if (proc < 0 || proc >= num_procs()) {
    throw std::out_of_range("TraceRecorder::end_span: bad proc");
  }
  auto& stack = open_[static_cast<std::size_t>(proc)];
  if (stack.empty()) {
    throw std::logic_error("TraceRecorder::end_span: no open span on proc " +
                           std::to_string(proc));
  }
  Span s = std::move(stack.back());
  stack.pop_back();
  s.t1 = std::max(s.t0, now(proc));
  touch(proc, s.t1);
  done_.push_back(std::move(s));
}

int TraceRecorder::open_depth(int proc) const {
  if (proc < 0 || proc >= num_procs()) {
    throw std::out_of_range("TraceRecorder::open_depth: bad proc");
  }
  return static_cast<int>(open_[static_cast<std::size_t>(proc)].size());
}

void TraceRecorder::add_busy(int proc, double dt) {
  if (dt <= 0.0) return;
  if (clock_) touch(proc, clock_(proc));
  totals_[static_cast<std::size_t>(proc)].busy += dt;
  for (Span& s : open_[static_cast<std::size_t>(proc)]) s.busy += dt;
}

std::uint64_t TraceRecorder::message_sent(int src, int dst, std::uint64_t tag,
                                          std::uint64_t bytes, double t0, double t1) {
  MessageRecord m;
  m.id = static_cast<std::uint64_t>(messages_.size()) + 1;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.bytes = bytes;
  m.send_t0 = t0;
  m.send_t1 = t1;
  touch(src, t1);
  messages_.push_back(m);
  ProcTotals& t = totals_[static_cast<std::size_t>(src)];
  t.messages += 1;
  t.bytes += bytes;
  for (Span& s : open_[static_cast<std::size_t>(src)]) {
    s.messages += 1;
    s.bytes += bytes;
  }
  return m.id;
}

void TraceRecorder::message_received(std::uint64_t id, double wait_t0, double ready_t) {
  if (id == 0 || id > messages_.size()) {
    throw std::out_of_range("TraceRecorder::message_received: unknown message id");
  }
  MessageRecord& m = messages_[static_cast<std::size_t>(id - 1)];
  m.recv_t = ready_t;
  if (ready_t > wait_t0) {
    add_wait(m.dst, WaitKind::Recv, wait_t0, ready_t, m.src, m.send_t1, id);
  }
}

std::uint64_t TraceRecorder::barrier_open(std::uint64_t group_key) {
  BarrierRecord b;
  b.id = static_cast<std::uint64_t>(barriers_.size()) + 1;
  b.group_key = group_key;
  barriers_.push_back(std::move(b));
  return barriers_.back().id;
}

void TraceRecorder::barrier_arrive(std::uint64_t id, int proc, double t) {
  if (id == 0 || id > barriers_.size()) {
    throw std::out_of_range("TraceRecorder::barrier_arrive: unknown barrier id");
  }
  BarrierRecord& b = barriers_[static_cast<std::size_t>(id - 1)];
  b.procs.push_back(proc);
  b.arrivals.push_back(t);
}

void TraceRecorder::barrier_release(std::uint64_t id, int last_arriver, double max_arrival,
                                    double release) {
  if (id == 0 || id > barriers_.size()) {
    throw std::out_of_range("TraceRecorder::barrier_release: unknown barrier id");
  }
  BarrierRecord& b = barriers_[static_cast<std::size_t>(id - 1)];
  b.release = release;
  b.last_arriver = last_arriver;
  for (std::size_t i = 0; i < b.procs.size(); ++i) {
    if (release > b.arrivals[i]) {
      add_wait(b.procs[i], WaitKind::Barrier, b.arrivals[i], release, last_arriver,
               max_arrival, id);
    }
  }
}

void TraceRecorder::io_wait(int proc, double t0, double t1, int cause_proc,
                            double cause_time) {
  if (t1 > t0) add_wait(proc, WaitKind::Io, t0, t1, cause_proc, cause_time, 0);
}

void TraceRecorder::add_wait(int proc, WaitKind kind, double t0, double t1, int cause_proc,
                             double cause_time, std::uint64_t ref) {
  Wait w;
  w.proc = proc;
  w.kind = kind;
  w.t0 = t0;
  w.t1 = t1;
  w.cause_proc = cause_proc;
  w.cause_time = cause_time;
  w.ref = ref;
  touch(proc, t1);
  waits_.push_back(w);
  const double dt = t1 - t0;
  ProcTotals& t = totals_[static_cast<std::size_t>(proc)];
  auto bump = [&](Span* s) {
    switch (kind) {
      case WaitKind::Recv:
        if (s) s->recv_wait += dt; else t.recv_wait += dt;
        break;
      case WaitKind::Barrier:
        if (s) s->barrier_wait += dt; else t.barrier_wait += dt;
        break;
      case WaitKind::Io:
        if (s) s->io_wait += dt; else t.io_wait += dt;
        break;
    }
  };
  bump(nullptr);
  // Blocked processors cannot touch their span stack, so the stack now is
  // the stack that was open for the whole wait.
  for (Span& s : open_[static_cast<std::size_t>(proc)]) bump(&s);
}

void TraceRecorder::touch(int proc, double t) {
  auto& last = last_activity_[static_cast<std::size_t>(proc)];
  last = std::max(last, t);
}

void TraceRecorder::finalize(double finish) {
  finish_ = finish;
  for (int p = 0; p < num_procs(); ++p) {
    auto& stack = open_[static_cast<std::size_t>(p)];
    while (!stack.empty()) {
      Span s = std::move(stack.back());
      stack.pop_back();
      s.t1 = std::max(s.t0, finish);
      done_.push_back(std::move(s));
    }
  }
  // Deterministic order for exporters: by processor, then open time, then
  // deeper-first so parents precede children only via (t0, depth).
  std::stable_sort(done_.begin(), done_.end(), [](const Span& a, const Span& b) {
    if (a.proc != b.proc) return a.proc < b.proc;
    if (a.t0 != b.t0) return a.t0 < b.t0;
    return a.depth < b.depth;
  });
}

}  // namespace fxpar::trace
