#include "trace/trace.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <utility>

namespace fxpar::trace {

const char* wait_kind_name(WaitKind k) {
  switch (k) {
    case WaitKind::Recv: return "recv";
    case WaitKind::Barrier: return "barrier";
    case WaitKind::Io: return "io";
  }
  return "?";
}

TraceRecorder::TraceRecorder(int num_procs) {
  if (num_procs <= 0) throw std::invalid_argument("TraceRecorder: num_procs must be positive");
  open_.resize(static_cast<std::size_t>(num_procs));
  totals_.resize(static_cast<std::size_t>(num_procs));
  placements_.resize(static_cast<std::size_t>(num_procs));
  last_activity_.resize(static_cast<std::size_t>(num_procs), 0.0);
}

void TraceRecorder::reset() {
  for (auto& stack : open_) stack.clear();
  last_activity_.assign(open_.size(), 0.0);
  done_.clear();
  waits_.clear();
  messages_.clear();
  barriers_.clear();
  steals_.clear();
  placements_.assign(open_.size(), PlacementRecord{});
  totals_.assign(open_.size(), ProcTotals{});
  finish_ = 0.0;
  concurrent_ = false;
  done_pp_.clear();
  waits_pp_.clear();
  msgs_pp_.clear();
  recv_pp_.clear();
  bnotes_pp_.clear();
  steals_pp_.clear();
}

void TraceRecorder::set_concurrent(int num_procs_of_run) {
  if (num_procs_of_run != num_procs()) {
    throw std::invalid_argument("TraceRecorder::set_concurrent: processor count mismatch");
  }
  concurrent_ = true;
  done_pp_.assign(open_.size(), {});
  waits_pp_.assign(open_.size(), {});
  msgs_pp_.assign(open_.size(), {});
  recv_pp_.assign(open_.size(), {});
  bnotes_pp_.assign(open_.size(), {});
  steals_pp_.assign(open_.size(), {});
}

double TraceRecorder::now(int proc) const {
  if (!clock_) throw std::logic_error("TraceRecorder: no clock installed");
  return clock_(proc);
}

void TraceRecorder::begin_span(int proc, std::string name, std::string category) {
  if (proc < 0 || proc >= num_procs()) {
    throw std::out_of_range("TraceRecorder::begin_span: bad proc");
  }
  auto& stack = open_[static_cast<std::size_t>(proc)];
  Span s;
  s.proc = proc;
  s.depth = static_cast<int>(stack.size());
  s.t0 = now(proc);
  s.name = std::move(name);
  s.category = std::move(category);
  stack.push_back(std::move(s));
}

void TraceRecorder::end_span(int proc) {
  if (proc < 0 || proc >= num_procs()) {
    throw std::out_of_range("TraceRecorder::end_span: bad proc");
  }
  auto& stack = open_[static_cast<std::size_t>(proc)];
  if (stack.empty()) {
    throw std::logic_error("TraceRecorder::end_span: no open span on proc " +
                           std::to_string(proc));
  }
  Span s = std::move(stack.back());
  stack.pop_back();
  s.t1 = std::max(s.t0, now(proc));
  touch(proc, s.t1);
  if (concurrent_) {
    // No modeled charge() feeds add_busy on the threaded backend; real time
    // passes continuously on a worker thread, so a span's compute is its
    // elapsed time minus the waits recorded while it was open. Root spans
    // also carry the per-processor busy total.
    s.busy = std::max(0.0, s.duration() - s.wait());
    if (s.depth == 0) totals_[static_cast<std::size_t>(proc)].busy += s.busy;
    done_pp_[static_cast<std::size_t>(proc)].push_back(std::move(s));
  } else {
    done_.push_back(std::move(s));
  }
}

int TraceRecorder::open_depth(int proc) const {
  if (proc < 0 || proc >= num_procs()) {
    throw std::out_of_range("TraceRecorder::open_depth: bad proc");
  }
  return static_cast<int>(open_[static_cast<std::size_t>(proc)].size());
}

void TraceRecorder::add_busy(int proc, double dt) {
  if (dt <= 0.0) return;
  if (clock_) touch(proc, clock_(proc));
  totals_[static_cast<std::size_t>(proc)].busy += dt;
  for (Span& s : open_[static_cast<std::size_t>(proc)]) s.busy += dt;
}

std::uint64_t TraceRecorder::message_sent(int src, int dst, std::uint64_t tag,
                                          std::uint64_t bytes, double t0, double t1) {
  MessageRecord m;
  m.id = concurrent_
             ? ((static_cast<std::uint64_t>(src) + 1) << 40) |
                   (static_cast<std::uint64_t>(
                        msgs_pp_[static_cast<std::size_t>(src)].size()) +
                    1)
             : static_cast<std::uint64_t>(messages_.size()) + 1;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.bytes = bytes;
  m.send_t0 = t0;
  m.send_t1 = t1;
  touch(src, t1);
  const std::uint64_t id = m.id;
  if (concurrent_) {
    msgs_pp_[static_cast<std::size_t>(src)].push_back(m);
  } else {
    messages_.push_back(m);
  }
  ProcTotals& t = totals_[static_cast<std::size_t>(src)];
  t.messages += 1;
  t.bytes += bytes;
  for (Span& s : open_[static_cast<std::size_t>(src)]) {
    s.messages += 1;
    s.bytes += bytes;
  }
  return id;
}

void TraceRecorder::message_received(std::uint64_t id, double wait_t0, double ready_t) {
  if (id == 0 || id > messages_.size()) {
    throw std::out_of_range("TraceRecorder::message_received: unknown message id");
  }
  MessageRecord& m = messages_[static_cast<std::size_t>(id - 1)];
  m.recv_t = ready_t;
  if (ready_t > wait_t0) {
    add_wait(m.dst, WaitKind::Recv, wait_t0, ready_t, m.src, m.send_t1, id);
  }
}

void TraceRecorder::message_received_at(std::uint64_t id, int dst, int src, double send_t,
                                        double wait_t0, double ready_t) {
  if (!concurrent_) {
    throw std::logic_error("TraceRecorder::message_received_at: not in concurrent mode");
  }
  // The MessageRecord lives in the *sender's* shard; note the consumption
  // here and let merge_concurrent() stamp recv_t.
  recv_pp_[static_cast<std::size_t>(dst)].push_back(RecvNote{id, ready_t});
  touch(dst, ready_t);
  if (ready_t > wait_t0) {
    add_wait(dst, WaitKind::Recv, wait_t0, ready_t, src, send_t, id);
  }
}

std::uint64_t TraceRecorder::barrier_open(std::uint64_t group_key) {
  BarrierRecord b;
  b.id = static_cast<std::uint64_t>(barriers_.size()) + 1;
  b.group_key = group_key;
  barriers_.push_back(std::move(b));
  return barriers_.back().id;
}

void TraceRecorder::barrier_arrive(std::uint64_t id, int proc, double t) {
  if (id == 0 || id > barriers_.size()) {
    throw std::out_of_range("TraceRecorder::barrier_arrive: unknown barrier id");
  }
  BarrierRecord& b = barriers_[static_cast<std::size_t>(id - 1)];
  b.procs.push_back(proc);
  b.arrivals.push_back(t);
}

void TraceRecorder::barrier_release(std::uint64_t id, int last_arriver, double max_arrival,
                                    double release) {
  if (id == 0 || id > barriers_.size()) {
    throw std::out_of_range("TraceRecorder::barrier_release: unknown barrier id");
  }
  BarrierRecord& b = barriers_[static_cast<std::size_t>(id - 1)];
  b.release = release;
  b.last_arriver = last_arriver;
  for (std::size_t i = 0; i < b.procs.size(); ++i) {
    if (release > b.arrivals[i]) {
      add_wait(b.procs[i], WaitKind::Barrier, b.arrivals[i], release, last_arriver,
               max_arrival, id);
    }
  }
}

void TraceRecorder::io_wait(int proc, double t0, double t1, int cause_proc,
                            double cause_time) {
  if (t1 > t0) add_wait(proc, WaitKind::Io, t0, t1, cause_proc, cause_time, 0);
}

void TraceRecorder::steal_event(int thief, int victim, std::uint64_t iters, double t) {
  if (thief < 0 || thief >= num_procs()) {
    throw std::out_of_range("TraceRecorder::steal_event: bad thief rank");
  }
  touch(thief, t);
  StealRecord r{thief, victim, iters, t};
  if (concurrent_) {
    steals_pp_[static_cast<std::size_t>(thief)].push_back(r);
  } else {
    steals_.push_back(r);
  }
  // Attribute the steal to the thief's open directive nest. Safe in
  // concurrent mode: only the thief's own worker touches its stack.
  for (Span& s : open_[static_cast<std::size_t>(thief)]) {
    s.steals += 1;
    s.stolen_iters += iters;
  }
}

void TraceRecorder::plan_cache_event(int proc, bool hit) {
  if (proc < 0 || proc >= num_procs()) {
    throw std::out_of_range("TraceRecorder::plan_cache_event: bad proc");
  }
  for (Span& s : open_[static_cast<std::size_t>(proc)]) {
    (hit ? s.plan_hits : s.plan_misses) += 1;
  }
}

void TraceRecorder::barrier_record(std::uint64_t group_key, std::uint64_t episode, int proc,
                                   double arrive_t, double release_t, int last_arriver,
                                   double max_arrival) {
  if (!concurrent_) {
    throw std::logic_error("TraceRecorder::barrier_record: not in concurrent mode");
  }
  bnotes_pp_[static_cast<std::size_t>(proc)].push_back(
      BarrierNote{group_key, episode, proc, arrive_t, release_t, last_arriver});
  touch(proc, release_t);
  if (release_t > arrive_t) {
    add_wait(proc, WaitKind::Barrier, arrive_t, release_t, last_arriver, max_arrival, 0);
  }
}

void TraceRecorder::merge_concurrent() {
  if (!concurrent_) return;
  concurrent_ = false;  // back to single-threaded appends for finalize()

  for (auto& shard : done_pp_) {
    for (Span& s : shard) done_.push_back(std::move(s));
  }
  // Per-proc wait streams are each in time order; interleave by start time
  // so the merged stream reads like the simulator's.
  for (auto& shard : waits_pp_) {
    waits_.insert(waits_.end(), shard.begin(), shard.end());
  }
  std::stable_sort(waits_.begin(), waits_.end(),
                   [](const Wait& a, const Wait& b) { return a.t0 < b.t0; });

  for (auto& shard : msgs_pp_) {
    messages_.insert(messages_.end(), shard.begin(), shard.end());
  }
  std::stable_sort(messages_.begin(), messages_.end(),
                   [](const MessageRecord& a, const MessageRecord& b) {
                     if (a.send_t0 != b.send_t0) return a.send_t0 < b.send_t0;
                     return a.id < b.id;
                   });
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  by_id.reserve(messages_.size());
  for (std::size_t i = 0; i < messages_.size(); ++i) by_id.emplace(messages_[i].id, i);
  for (const auto& shard : recv_pp_) {
    for (const RecvNote& n : shard) {
      auto it = by_id.find(n.id);
      if (it != by_id.end()) messages_[it->second].recv_t = n.recv_t;
    }
  }

  // Rebuild BarrierRecords from the members' episode notes.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<const BarrierNote*>> episodes;
  for (const auto& shard : bnotes_pp_) {
    for (const BarrierNote& n : shard) episodes[{n.group_key, n.episode}].push_back(&n);
  }
  std::vector<BarrierRecord> rebuilt;
  rebuilt.reserve(episodes.size());
  for (auto& [key, notes] : episodes) {
    std::sort(notes.begin(), notes.end(), [](const BarrierNote* a, const BarrierNote* b) {
      if (a->arrive_t != b->arrive_t) return a->arrive_t < b->arrive_t;
      return a->proc < b->proc;
    });
    BarrierRecord b;
    b.group_key = key.first;
    for (const BarrierNote* n : notes) {
      b.procs.push_back(n->proc);
      b.arrivals.push_back(n->arrive_t);
      b.release = std::max(b.release, n->release_t);
      b.last_arriver = n->last_arriver;
    }
    rebuilt.push_back(std::move(b));
  }
  std::stable_sort(rebuilt.begin(), rebuilt.end(),
                   [](const BarrierRecord& a, const BarrierRecord& b) {
                     return a.release < b.release;
                   });
  for (BarrierRecord& b : rebuilt) {
    b.id = static_cast<std::uint64_t>(barriers_.size()) + 1;
    barriers_.push_back(std::move(b));
  }

  // Steal events merge like the wait streams: shards are each in time
  // order, interleave by completion time.
  for (auto& shard : steals_pp_) {
    steals_.insert(steals_.end(), shard.begin(), shard.end());
  }
  std::stable_sort(steals_.begin(), steals_.end(), [](const StealRecord& a, const StealRecord& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.thief < b.thief;
  });

  done_pp_.clear();
  waits_pp_.clear();
  msgs_pp_.clear();
  recv_pp_.clear();
  bnotes_pp_.clear();
  steals_pp_.clear();
}

namespace {

// Shard blobs travel between a forked child and its parent — the same
// binary image — so trivially-copyable records ship as raw bytes; only
// Span needs per-field treatment for its strings.

void put_raw(std::vector<std::byte>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  out.insert(out.end(), b, b + n);
}

template <class T>
void put(std::vector<std::byte>& out, const T& v) {
  put_raw(out, &v, sizeof v);
}

void put_str(std::vector<std::byte>& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  put_raw(out, s.data(), s.size());
}

template <class T>
T get(const std::byte* p, std::size_t len, std::size_t& off) {
  if (sizeof(T) > len - off) {
    throw std::runtime_error("TraceRecorder::absorb_shard: truncated blob");
  }
  T v;
  std::memcpy(&v, p + off, sizeof v);
  off += sizeof v;
  return v;
}

std::string get_str(const std::byte* p, std::size_t len, std::size_t& off) {
  const auto n = get<std::uint32_t>(p, len, off);
  if (n > len - off) {
    throw std::runtime_error("TraceRecorder::absorb_shard: truncated blob");
  }
  std::string s(reinterpret_cast<const char*>(p) + off, n);
  off += n;
  return s;
}

template <class T>
void put_pod_vec(std::vector<std::byte>& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put<std::uint64_t>(out, static_cast<std::uint64_t>(v.size()));
  if (!v.empty()) put_raw(out, v.data(), v.size() * sizeof(T));
}

template <class T>
std::vector<T> get_pod_vec(const std::byte* p, std::size_t len, std::size_t& off) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = get<std::uint64_t>(p, len, off);
  if (n > (len - off) / sizeof(T)) {
    throw std::runtime_error("TraceRecorder::absorb_shard: truncated blob");
  }
  std::vector<T> v(static_cast<std::size_t>(n));
  if (n != 0) {
    std::memcpy(v.data(), p + off, static_cast<std::size_t>(n) * sizeof(T));
    off += static_cast<std::size_t>(n) * sizeof(T);
  }
  return v;
}

}  // namespace

std::vector<std::byte> TraceRecorder::serialize_shard(int proc) const {
  if (!concurrent_) {
    throw std::logic_error("TraceRecorder::serialize_shard: not in concurrent mode");
  }
  if (proc < 0 || proc >= num_procs()) {
    throw std::out_of_range("TraceRecorder::serialize_shard: bad proc");
  }
  const auto i = static_cast<std::size_t>(proc);
  std::vector<std::byte> out;
  put<std::int32_t>(out, proc);
  put<std::uint64_t>(out, static_cast<std::uint64_t>(done_pp_[i].size()));
  for (const Span& s : done_pp_[i]) {
    put<std::int32_t>(out, s.proc);
    put<std::int32_t>(out, s.depth);
    put(out, s.t0);
    put(out, s.t1);
    put_str(out, s.name);
    put_str(out, s.category);
    put(out, s.busy);
    put(out, s.recv_wait);
    put(out, s.barrier_wait);
    put(out, s.io_wait);
    put(out, s.messages);
    put(out, s.bytes);
    put(out, s.steals);
    put(out, s.stolen_iters);
    put(out, s.plan_hits);
    put(out, s.plan_misses);
  }
  put_pod_vec(out, waits_pp_[i]);
  put_pod_vec(out, msgs_pp_[i]);
  put_pod_vec(out, recv_pp_[i]);
  put_pod_vec(out, bnotes_pp_[i]);
  put_pod_vec(out, steals_pp_[i]);
  put(out, totals_[i]);
  put(out, placements_[i]);
  put(out, last_activity_[i]);
  return out;
}

void TraceRecorder::absorb_shard(const std::byte* data, std::size_t len) {
  if (!concurrent_) {
    throw std::logic_error("TraceRecorder::absorb_shard: not in concurrent mode");
  }
  std::size_t off = 0;
  const auto proc = get<std::int32_t>(data, len, off);
  if (proc < 0 || proc >= num_procs()) {
    throw std::out_of_range("TraceRecorder::absorb_shard: bad proc in blob");
  }
  const auto i = static_cast<std::size_t>(proc);
  const auto n_spans = get<std::uint64_t>(data, len, off);
  std::vector<Span> spans;
  spans.reserve(static_cast<std::size_t>(n_spans));
  for (std::uint64_t k = 0; k < n_spans; ++k) {
    Span s;
    s.proc = get<std::int32_t>(data, len, off);
    s.depth = get<std::int32_t>(data, len, off);
    s.t0 = get<double>(data, len, off);
    s.t1 = get<double>(data, len, off);
    s.name = get_str(data, len, off);
    s.category = get_str(data, len, off);
    s.busy = get<double>(data, len, off);
    s.recv_wait = get<double>(data, len, off);
    s.barrier_wait = get<double>(data, len, off);
    s.io_wait = get<double>(data, len, off);
    s.messages = get<std::uint64_t>(data, len, off);
    s.bytes = get<std::uint64_t>(data, len, off);
    s.steals = get<std::uint64_t>(data, len, off);
    s.stolen_iters = get<std::uint64_t>(data, len, off);
    s.plan_hits = get<std::uint64_t>(data, len, off);
    s.plan_misses = get<std::uint64_t>(data, len, off);
    spans.push_back(std::move(s));
  }
  done_pp_[i] = std::move(spans);
  waits_pp_[i] = get_pod_vec<Wait>(data, len, off);
  msgs_pp_[i] = get_pod_vec<MessageRecord>(data, len, off);
  recv_pp_[i] = get_pod_vec<RecvNote>(data, len, off);
  bnotes_pp_[i] = get_pod_vec<BarrierNote>(data, len, off);
  steals_pp_[i] = get_pod_vec<StealRecord>(data, len, off);
  totals_[i] = get<ProcTotals>(data, len, off);
  placements_[i] = get<PlacementRecord>(data, len, off);
  last_activity_[i] = std::max(last_activity_[i], get<double>(data, len, off));
}

void TraceRecorder::add_wait(int proc, WaitKind kind, double t0, double t1, int cause_proc,
                             double cause_time, std::uint64_t ref) {
  Wait w;
  w.proc = proc;
  w.kind = kind;
  w.t0 = t0;
  w.t1 = t1;
  w.cause_proc = cause_proc;
  w.cause_time = cause_time;
  w.ref = ref;
  touch(proc, t1);
  if (concurrent_) {
    waits_pp_[static_cast<std::size_t>(proc)].push_back(w);
  } else {
    waits_.push_back(w);
  }
  const double dt = t1 - t0;
  ProcTotals& t = totals_[static_cast<std::size_t>(proc)];
  auto bump = [&](Span* s) {
    switch (kind) {
      case WaitKind::Recv:
        if (s) s->recv_wait += dt; else t.recv_wait += dt;
        break;
      case WaitKind::Barrier:
        if (s) s->barrier_wait += dt; else t.barrier_wait += dt;
        break;
      case WaitKind::Io:
        if (s) s->io_wait += dt; else t.io_wait += dt;
        break;
    }
  };
  bump(nullptr);
  // Blocked processors cannot touch their span stack, so the stack now is
  // the stack that was open for the whole wait.
  for (Span& s : open_[static_cast<std::size_t>(proc)]) bump(&s);
}

void TraceRecorder::touch(int proc, double t) {
  auto& last = last_activity_[static_cast<std::size_t>(proc)];
  last = std::max(last, t);
}

void TraceRecorder::finalize(double finish) {
  finish_ = finish;
  for (int p = 0; p < num_procs(); ++p) {
    auto& stack = open_[static_cast<std::size_t>(p)];
    while (!stack.empty()) {
      Span s = std::move(stack.back());
      stack.pop_back();
      s.t1 = std::max(s.t0, finish);
      done_.push_back(std::move(s));
    }
  }
  // Deterministic order for exporters: by processor, then open time, then
  // deeper-first so parents precede children only via (t0, depth).
  std::stable_sort(done_.begin(), done_.end(), [](const Span& a, const Span& b) {
    if (a.proc != b.proc) return a.proc < b.proc;
    if (a.t0 != b.t0) return a.t0 < b.t0;
    return a.depth < b.depth;
  });
}

}  // namespace fxpar::trace
