#include "trace/chrome_export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace fxpar::trace {

namespace {

/// JSON string escaping (quotes, backslashes, control characters).
void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// JSON number token for a double. std::to_string / %f print non-finite
/// values as bare `inf`/`nan`, which are not JSON — a single poisoned
/// accounting field used to invalidate the whole trace file. Emit `null`
/// instead (valid JSON; viewers skip the field).
std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Modeled seconds -> trace_event microseconds, with sub-ns precision kept.
std::string us(double seconds) {
  if (!std::isfinite(seconds)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.4f", seconds * 1e6);
  return buf;
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) { os_ << "{\"traceEvents\":[\n"; }

  void emit(const std::string& line) {
    if (!first_) os_ << ",\n";
    first_ = false;
    os_ << line;
  }

  void finish() { os_ << "\n]}\n"; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

}  // namespace

void export_chrome_trace(const TraceRecorder& rec, std::ostream& os) {
  EventWriter w(os);

  // Metadata: name the process and one thread per simulated processor.
  w.emit(R"({"ph":"M","pid":0,"name":"process_name","args":{"name":"fxpar simulated machine"}})");
  for (int p = 0; p < rec.num_procs(); ++p) {
    std::string line = R"({"ph":"M","pid":0,"tid":)" + std::to_string(p) +
                       R"(,"name":"thread_name","args":{"name":"proc )" + std::to_string(p) +
                       R"("}})";
    w.emit(line);
    line = R"({"ph":"M","pid":0,"tid":)" + std::to_string(p) +
           R"(,"name":"thread_sort_index","args":{"sort_index":)" + std::to_string(p) + "}}";
    w.emit(line);
  }

  // Named spans as complete events, with their inclusive accounting as args.
  for (const Span& s : rec.spans()) {
    std::string line = R"({"ph":"X","pid":0,"tid":)" + std::to_string(s.proc) +
                       R"(,"ts":)" + us(s.t0) + R"(,"dur":)" + us(s.duration()) +
                       R"(,"name":")";
    append_escaped(line, s.name);
    line += R"(","cat":")";
    append_escaped(line, s.category);
    line += R"(","args":{"busy_s":)" + num(s.busy) +
            R"(,"recv_wait_s":)" + num(s.recv_wait) +
            R"(,"barrier_wait_s":)" + num(s.barrier_wait) +
            R"(,"io_wait_s":)" + num(s.io_wait) +
            R"(,"messages":)" + std::to_string(s.messages) +
            R"(,"bytes":)" + std::to_string(s.bytes) + "}}";
    w.emit(line);
  }

  // Wait intervals as complete events; they nest inside the innermost span
  // because a blocked processor cannot open or close spans.
  for (const Wait& wt : rec.waits()) {
    std::string line = R"({"ph":"X","pid":0,"tid":)" + std::to_string(wt.proc) +
                       R"(,"ts":)" + us(wt.t0) + R"(,"dur":)" + us(wt.t1 - wt.t0) +
                       R"(,"name":"wait:)" + wait_kind_name(wt.kind) +
                       R"(","cat":"wait","args":{"cause_proc":)" +
                       std::to_string(wt.cause_proc) + R"(,"cause_time_s":)" +
                       num(wt.cause_time) + "}}";
    w.emit(line);
  }

  // Message flows: deposit completion on the sender -> receive on the
  // destination. Only messages that were actually consumed get an arrow.
  for (const MessageRecord& m : rec.messages()) {
    if (m.recv_t < 0.0) continue;
    std::string line = R"({"ph":"s","id":)" + std::to_string(m.id) +
                       R"(,"pid":0,"tid":)" + std::to_string(m.src) + R"(,"ts":)" +
                       us(m.send_t1) + R"(,"name":"msg","cat":"comm"})";
    w.emit(line);
    line = R"({"ph":"f","bp":"e","id":)" + std::to_string(m.id) + R"(,"pid":0,"tid":)" +
           std::to_string(m.dst) + R"(,"ts":)" + us(m.recv_t) +
           R"(,"name":"msg","cat":"comm"})";
    w.emit(line);
  }

  w.finish();
}

std::string chrome_trace_json(const TraceRecorder& rec) {
  std::ostringstream oss;
  export_chrome_trace(rec, oss);
  return oss.str();
}

void write_chrome_trace(const TraceRecorder& rec, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_chrome_trace: cannot open " + path);
  export_chrome_trace(rec, out);
  if (!out) throw std::runtime_error("write_chrome_trace: write failed for " + path);
}

}  // namespace fxpar::trace
