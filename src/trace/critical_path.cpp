#include "trace/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace fxpar::trace {

namespace {

/// Innermost named (depth >= 1) span of `proc` containing time `t`, or -1.
int innermost_span_at(const std::vector<const Span*>& proc_spans, double t) {
  int best = -1;
  int best_depth = 0;
  for (std::size_t i = 0; i < proc_spans.size(); ++i) {
    const Span& s = *proc_spans[i];
    if (s.depth >= 1 && s.t0 <= t && t < s.t1 && s.depth >= best_depth) {
      best = static_cast<int>(i);
      best_depth = s.depth;
    }
  }
  return best;
}

}  // namespace

CriticalPathReport critical_path(const TraceRecorder& rec) {
  CriticalPathReport r;
  r.makespan = rec.finish_time();

  const int P = rec.num_procs();
  std::vector<std::vector<const Span*>> spans_of(static_cast<std::size_t>(P));
  for (const Span& s : rec.spans()) {
    spans_of[static_cast<std::size_t>(s.proc)].push_back(&s);
  }
  std::vector<std::vector<const Wait*>> waits_of(static_cast<std::size_t>(P));
  for (const Wait& w : rec.waits()) {
    waits_of[static_cast<std::size_t>(w.proc)].push_back(&w);
  }
  for (auto& v : waits_of) {
    std::sort(v.begin(), v.end(),
              [](const Wait* a, const Wait* b) { return a->t1 < b->t1; });
  }

  // Start at the processor whose recorded activity ends last. Span end
  // times are unusable here: finalize() closes every root span at the run's
  // finish, so the recorder's per-event activity times decide instead.
  int cur_proc = -1;
  double last = -1.0;
  for (int p = 0; p < P; ++p) {
    const double end = rec.last_activity(p);
    if (end > last) {
      last = end;
      cur_proc = p;
    }
  }
  if (cur_proc < 0 || last <= 0.0) return r;  // empty trace
  double cur_t = last;

  // Attributes [t0, t1] on `proc` to innermost named spans, splitting at
  // span boundaries, and appends the resulting steps (backwards).
  auto attribute_execute = [&](int proc, double t0, double t1) {
    if (t1 <= t0) return;
    const auto& ps = spans_of[static_cast<std::size_t>(proc)];
    std::vector<double> cuts{t0, t1};
    for (const Span* s : ps) {
      if (s->t0 > t0 && s->t0 < t1) cuts.push_back(s->t0);
      if (s->t1 > t0 && s->t1 < t1) cuts.push_back(s->t1);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      PathStep step;
      step.kind = PathStep::Kind::Execute;
      step.proc = proc;
      step.t0 = cuts[i];
      step.t1 = cuts[i + 1];
      const int idx = innermost_span_at(ps, 0.5 * (cuts[i] + cuts[i + 1]));
      if (idx >= 0) step.span = ps[static_cast<std::size_t>(idx)]->name;
      r.steps.push_back(std::move(step));
    }
  };

  // Backward walk: cur_t strictly decreases, so each wait is used at most
  // once and the loop terminates.
  const std::size_t cap = rec.waits().size() + static_cast<std::size_t>(P) + 8;
  for (std::size_t iter = 0; iter <= cap; ++iter) {
    const auto& wv = waits_of[static_cast<std::size_t>(cur_proc)];
    const Wait* w = nullptr;
    for (auto it = wv.rbegin(); it != wv.rend(); ++it) {
      if ((*it)->t1 <= cur_t) {
        w = *it;
        break;
      }
    }
    if (!w) {
      attribute_execute(cur_proc, 0.0, cur_t);
      break;
    }
    attribute_execute(cur_proc, w->t1, cur_t);
    const double cause_t = std::clamp(w->cause_time, 0.0, w->t1);
    if (w->t1 > cause_t) {
      PathStep step;
      step.kind = PathStep::Kind::Delay;
      step.wait_kind = w->kind;
      step.proc = w->proc;
      step.t0 = cause_t;
      step.t1 = w->t1;
      const int idx =
          innermost_span_at(spans_of[static_cast<std::size_t>(w->proc)], w->t0);
      if (idx >= 0) {
        step.span = spans_of[static_cast<std::size_t>(w->proc)]
                        [static_cast<std::size_t>(idx)]->name;
      }
      r.steps.push_back(std::move(step));
    }
    cur_proc = (w->cause_proc >= 0 && w->cause_proc < P) ? w->cause_proc : w->proc;
    cur_t = cause_t;
    if (cur_t <= 0.0) break;
  }
  std::reverse(r.steps.begin(), r.steps.end());

  // Totals and per-span shares.
  std::map<std::string, SpanCritical> by_name;
  for (const Span& s : rec.spans()) {
    if (s.depth == 0) continue;
    SpanCritical& sc = by_name[s.name];
    sc.name = s.name;
    sc.span_time += s.duration();
  }
  for (const PathStep& st : r.steps) {
    const double d = st.duration();
    if (st.kind == PathStep::Kind::Execute) {
      r.execute_time += d;
    } else {
      switch (st.wait_kind) {
        case WaitKind::Recv: r.recv_delay += d; break;
        case WaitKind::Barrier: r.barrier_delay += d; break;
        case WaitKind::Io: r.io_delay += d; break;
      }
    }
    if (!st.span.empty()) {
      SpanCritical& sc = by_name[st.span];
      sc.name = st.span;
      if (st.kind == PathStep::Kind::Execute) {
        sc.execute += d;
      } else {
        sc.delay += d;
      }
    }
  }
  double named = 0.0;
  for (const PathStep& st : r.steps) {
    if (!st.span.empty()) named += st.duration();
  }
  const double total = r.execute_time + r.recv_delay + r.barrier_delay + r.io_delay;
  r.attributed_fraction = total > 0.0 ? named / total : 0.0;

  r.by_span.reserve(by_name.size());
  for (auto& [name, sc] : by_name) r.by_span.push_back(std::move(sc));
  std::stable_sort(r.by_span.begin(), r.by_span.end(),
                   [](const SpanCritical& a, const SpanCritical& b) {
                     return a.critical() > b.critical();
                   });
  return r;
}

std::string CriticalPathReport::to_string(std::size_t max_spans) const {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(4);
  const double total = execute_time + recv_delay + barrier_delay + io_delay;
  auto pct = [&](double x) { return total > 0.0 ? 100.0 * x / total : 0.0; };
  oss << "critical path: makespan " << makespan << " s = execute " << execute_time << " s ("
      << static_cast<int>(pct(execute_time) + 0.5) << "%) + msg delay " << recv_delay
      << " s (" << static_cast<int>(pct(recv_delay) + 0.5) << "%) + barrier delay "
      << barrier_delay << " s (" << static_cast<int>(pct(barrier_delay) + 0.5)
      << "%) + io delay " << io_delay << " s ("
      << static_cast<int>(pct(io_delay) + 0.5) << "%)\n";
  oss << "  attributed to named spans: "
      << static_cast<int>(100.0 * attributed_fraction + 0.5) << "% of the path ("
      << steps.size() << " steps)\n";
  oss << "  span                            on-path(s)  execute(s)   delay(s)   slack(s)\n";
  std::size_t shown = 0;
  for (const SpanCritical& sc : by_span) {
    if (sc.critical() <= 0.0) continue;
    if (shown++ >= max_spans) {
      oss << "  ...\n";
      break;
    }
    char line[200];
    std::snprintf(line, sizeof(line), "  %-30s %11.4f %11.4f %10.4f %10.4f\n",
                  sc.name.substr(0, 30).c_str(), sc.critical(), sc.execute, sc.delay,
                  sc.slack());
    oss << line;
  }
  oss << "  (slack: span time overlapped off the critical path)\n";
  return oss.str();
}

}  // namespace fxpar::trace
