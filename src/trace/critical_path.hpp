// fxpar trace: critical-path analysis of a recorded run.
//
// Walks the happens-before edges of the event log backwards from the
// completion of the slowest processor: every wait interval names the event
// that released it (a message deposit, the last barrier arrival, the
// previous I/O operation), so the walk alternates between local execution
// segments and jumps to the releasing processor. The result is the longest
// dependence chain through the run — the quantitative version of the
// paper's pipelining analysis: a pipeline overlaps well exactly when the
// critical path threads through compute, and poorly when it accumulates
// barrier or message delay.
//
// Every step is attributed to the innermost named span covering it, and
// each span's `slack` — span time that was NOT on the critical path — says
// how much of that phase was successfully overlapped with the path.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace fxpar::trace {

/// One step of the critical path, in increasing time order.
struct PathStep {
  enum class Kind {
    Execute,  ///< local execution on `proc` over [t0, t1]
    Delay,    ///< dependence delay (wire latency, barrier algorithm, I/O
              ///< device time) of `wait_kind` flavour on `proc`
  };
  Kind kind = Kind::Execute;
  WaitKind wait_kind = WaitKind::Recv;  ///< valid when kind == Delay
  int proc = -1;
  double t0 = 0.0;
  double t1 = 0.0;
  std::string span;  ///< innermost named span, or "" when outside all spans

  double duration() const { return t1 - t0; }
};

/// Per-span share of the critical path.
struct SpanCritical {
  std::string name;
  double execute = 0.0;    ///< path execution time inside this span
  double delay = 0.0;      ///< path dependence delay inside this span
  double span_time = 0.0;  ///< total span duration across instances
  /// Span time off the critical path: what this phase overlapped.
  double slack() const { return span_time - execute - delay; }
  double critical() const { return execute + delay; }
};

struct CriticalPathReport {
  double makespan = 0.0;
  double execute_time = 0.0;  ///< path time spent executing
  double recv_delay = 0.0;    ///< path time waiting on message dependences
  double barrier_delay = 0.0; ///< path time in barrier release delays
  double io_delay = 0.0;      ///< path time serialized on the I/O device
  /// Fraction of the makespan attributed to named (non-root) spans.
  double attributed_fraction = 0.0;
  std::vector<PathStep> steps;        ///< increasing time order
  std::vector<SpanCritical> by_span;  ///< sorted by critical() descending

  std::string to_string(std::size_t max_spans = 16) const;
};

/// Computes the critical path of a finalized trace. The step durations sum
/// to the makespan (up to floating-point rounding).
CriticalPathReport critical_path(const TraceRecorder& rec);

}  // namespace fxpar::trace
