// fxpar trace: per-phase (named span) aggregation of a recorded run.
//
// Turns the raw event log into the table a performance engineer reads
// first: for every distinct span name, how much modeled time its instances
// covered, how that time divides into compute / message waits / barrier
// waits / I/O waits, and how much communication it issued. This replaces
// "subgroup `many` is probably barrier-bound" guesswork with "subgroup
// `many` spent 38% of its time in subset barriers".
//
// Accounting is inclusive: time charged while a nested span was open is
// counted in every enclosing span too, so phases do not sum to the
// machine-seconds total — compare each phase against the makespan instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace fxpar::trace {

/// Aggregate over every span instance sharing one name.
struct PhaseStats {
  std::string name;
  std::string category;
  int instances = 0;          ///< number of span instances (across procs)
  double wall = 0.0;          ///< summed span durations (proc-seconds)
  double busy = 0.0;
  double recv_wait = 0.0;
  double barrier_wait = 0.0;
  double io_wait = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t steals = 0;        ///< stolen chunks completed inside this phase
  std::uint64_t stolen_iters = 0;  ///< iterations those chunks covered
  std::uint64_t plan_hits = 0;     ///< redistribution plan-cache hits inside
  std::uint64_t plan_misses = 0;   ///< redistribution plan-cache misses inside

  double active() const { return busy + recv_wait + barrier_wait + io_wait; }
  double wait_fraction() const {
    const double a = active();
    return a > 0.0 ? (recv_wait + barrier_wait + io_wait) / a : 0.0;
  }
};

struct PhaseReport {
  double makespan = 0.0;
  int num_procs = 0;
  double total_busy = 0.0;
  double total_recv_wait = 0.0;
  double total_barrier_wait = 0.0;
  double total_io_wait = 0.0;
  /// Fraction of all accounted processor activity (busy + waits) that fell
  /// inside some named span below the per-processor "program" root.
  double attributed_fraction = 0.0;
  /// Sorted by active() descending.
  std::vector<PhaseStats> phases;

  /// Fixed-width table suitable for printing from benches and examples.
  std::string to_string(std::size_t max_phases = 24) const;
};

PhaseReport phase_report(const TraceRecorder& rec);

}  // namespace fxpar::trace
