// fxexec: process-per-rank execution backend.
//
// The third engine behind the exec::Backend seam, and the repo's first
// step off a single address space: run() forks one OS process per logical
// processor (the parent doubles as rank 0), so processor state is
// genuinely distributed — a rank's arrays live in its own address space,
// and every deposit/receive crosses a real transport (src/net/): shared
// memory mailbox rings by default, or pre-connected loopback TCP behind
// the same net::Channel interface (MachineConfig::transport).
//
// Coordination that must stay cheap and abort-safe lives in one small
// shared-memory control block mapped before fork, whatever the transport:
// per-rank liveness (parked flag, block reason, heartbeats), subset
// barriers keyed on group content (arrival counters + a futex the last
// arriver bumps), the global progress counter, the abort word, and the
// per-rank final stats. A parent monitor thread diagnoses deadlock by the
// same quiescence rule as the threaded engine (all unfinished ranks
// parked, nothing in transit, progress unchanged across two samples) and
// detects child death via waitpid; either failure — or a child exception
// — freezes a per-rank introspection snapshot into the control block
// *before* raising the abort word, so diagnostic bundles show every
// rank's block reason exactly as the threaded backend's do.
//
// Determinism: messages are matched by (source, tag) in per-source FIFO
// order (a property the transports guarantee per stream), barriers
// synchronize identical groups, and run_chunks executes the static block
// schedule (stealing_loops() == false — stealing would require shipping
// closures across address spaces). Deterministic programs therefore
// produce bit-identical array contents against sim and threads; the
// cross-backend parity sweep (tests/test_exec_parity.cpp) holds this.
//
// Observability across the fork: a finishing child writes its counters
// into the control block, then ships its variable-size residue — metrics
// deltas, its trace shard, its flight-recorder events — to rank 0 as
// control frames, Done last; the parent absorbs them post-join so
// RunResult snapshots, traces and /trace dumps look the same as on the
// threaded path.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "exec/backend.hpp"
#include "machine/config.hpp"
#include "net/channel.hpp"

namespace fxpar::metrics {
struct Snapshot;
}

namespace fxpar::exec {

namespace procdetail {
struct Ctrl;  // the shared-memory control block; see proc_backend.cpp
}

class ProcBackend final : public Backend {
 public:
  explicit ProcBackend(const machine::MachineConfig& config);
  ~ProcBackend() override;

  ProcBackend(const ProcBackend&) = delete;
  ProcBackend& operator=(const ProcBackend&) = delete;

  BackendKind kind() const noexcept override { return BackendKind::Proc; }
  int num_procs() const noexcept override { return config_.num_procs; }

  void run(const std::function<void(int)>& body) override;
  void set_tracer(trace::TraceRecorder* tracer) noexcept override { tracer_ = tracer; }

  obs::Introspection introspect() const override;
  obs::Introspection failure_introspection() const override;
  std::uint64_t progress() const noexcept override;

  double now(int rank) const override;
  BackendStats stats() const override;

  int current_rank() const override;
  void charge(double seconds) override;
  void deposit(int dst, std::uint64_t tag, Payload data) override;
  Payload receive(int src, std::uint64_t tag) override;
  void barrier(const pgroup::ProcessorGroup& group) override;
  void io_operation(std::size_t bytes) override;
  void run_chunks(const pgroup::ProcessorGroup& group, std::int64_t lo, std::int64_t hi,
                  const ChunkBody& body) override;
  bool stealing_loops() const noexcept override { return false; }

 private:
  struct MailKey {
    int src;
    std::uint64_t tag;
    bool operator<(const MailKey& o) const {
      return src != o.src ? src < o.src : tag < o.tag;
    }
  };
  /// One matched (or self-deposited) message awaiting its receive.
  struct PendingMsg {
    Payload data;
    std::uint64_t trace_id = 0;
    double sent_at = 0.0;
  };

  double now_s() const;
  void beat();
  void check_abort() const;  ///< throws AbortError when the abort word is up
  void reset_run_state();
  void drain_channel();      ///< moves transport frames into matched_/ctrl_frames_
  /// First-failure protocol: claim the error slot, record `text`, freeze
  /// the per-rank introspection snapshot into the control block, then
  /// raise the abort word (`kind` 1 = abort, 2 = deadlock). Returns true
  /// when this caller was the first failer.
  bool fail_shm(std::uint32_t kind, const char* text);
  void wake_all_barriers();
  void finish_rank(int rank);             ///< final per-rank counters into shm
  void child_main(const std::function<void(int)>& body, int rank);  // never returns
  /// Ships a finishing child's variable-size residue to rank 0: the metric
  /// delta against the fork-time snapshot, its trace shard, and its flight
  /// events past the fork-time ring total.
  void ship_residue(int rank, const metrics::Snapshot& fork_snap,
                    std::uint64_t fork_flight_total);
  void absorb_residue();                  ///< rank 0: apply shipped control frames
  void wait_for_children();
  void reap_children();
  void monitor_loop();

  machine::MachineConfig config_;
  trace::TraceRecorder* tracer_ = nullptr;

  procdetail::Ctrl* ctrl_ = nullptr;
  std::size_t ctrl_bytes_ = 0;
  std::chrono::steady_clock::time_point t0_;

  // Per-run transport state. Every process holds its own endpoint: the
  // parent attaches as rank 0 before forking, a child re-attaches as its
  // own rank right after.
  std::unique_ptr<net::Transport> transport_;
  std::unique_ptr<net::Channel> chan_;
  std::map<MailKey, std::deque<PendingMsg>> matched_;
  std::vector<net::Frame> ctrl_frames_;              ///< rank 0: stashed control frames
  std::map<std::uint64_t, std::uint64_t> barrier_epoch_;  ///< per-group episode counter

  // Per-rank tallies of the *calling* process (each process accounts only
  // its own rank; written into the control block by finish_rank).
  double wait_s_ = 0.0;
  std::uint64_t blocks_ = 0, messages_ = 0, bytes_sent_ = 0, barriers_ = 0;

  // Parent-side bookkeeping.
  std::vector<pid_t> pids_;  ///< rank -> child pid (0 for rank 0 / reaped)
  std::thread monitor_;
  std::atomic<bool> monitor_stop_{false};
  bool is_child_ = false;
};

}  // namespace fxpar::exec
