#include "exec/threaded_backend.hpp"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

#include "metrics/runtime_metrics.hpp"
#include "obs/flight_recorder.hpp"
#include "runtime/simulator.hpp"  // runtime::DeadlockError
#include "trace/trace.hpp"

namespace fxpar::exec {
namespace {

// Identity of the calling worker. A worker thread of at most one
// ThreadedBackend runs on any OS thread at a time, so a (backend, rank)
// pair is enough; the backend pointer guards against ops issued from
// threads the backend does not own (e.g. the test driver).
thread_local const ThreadedBackend* t_owner = nullptr;
thread_local int t_rank = -1;

constexpr int kSpinRounds = 256;  ///< brief spin before parking on the cv

// How many chunks a member's static block is split into for stealing. Small
// enough that claim overhead is negligible next to any nontrivial body,
// large enough that a fully idle sibling can take a useful share.
constexpr int kLoopChunksPerWorker = 16;

// Scrambles the loop episode into the arena key (odd, so distinct episodes
// of one group can never alias each other).
constexpr std::uint64_t kEpochScramble = 0x9e3779b97f4a7c15ull;

}  // namespace

// ---------------------------------------------------------------------------
// TreeBarrier

ThreadedBackend::TreeBarrier::TreeBarrier(std::vector<int> member_list)
    : members(std::move(member_list)), nodes(members.size()) {
  const int n = static_cast<int>(members.size());
  arrive_t.assign(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    int fanin = 1;  // the member itself
    if (2 * i + 1 < n) ++fanin;
    if (2 * i + 2 < n) ++fanin;
    nodes[static_cast<std::size_t>(i)].fanin = fanin;
    nodes[static_cast<std::size_t>(i)].pending.store(fanin, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Construction / run lifecycle

ThreadedBackend::ThreadedBackend(const machine::MachineConfig& config) : config_(config) {
  workers_.reserve(static_cast<std::size_t>(config_.num_procs));
  for (int r = 0; r < config_.num_procs; ++r) {
    workers_.push_back(std::make_unique<Worker>());
  }
  if (config_.record_traffic) {
    traffic_.assign(static_cast<std::size_t>(config_.num_procs) *
                        static_cast<std::size_t>(config_.num_procs),
                    0);
  }
  t0_ = std::chrono::steady_clock::now();
}

ThreadedBackend::~ThreadedBackend() {
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // An aborted run leaves undelivered messages queued (receivers unwound
  // via AbortError); reclaim them here, not only at the next run's reset.
  free_pending_messages();
}

double ThreadedBackend::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
}

double ThreadedBackend::now(int rank) const {
  if (rank < 0 || rank >= num_procs()) {
    throw std::out_of_range("ThreadedBackend::now: bad rank " + std::to_string(rank));
  }
  return now_s();  // one real clock; every processor reads the same time
}

int ThreadedBackend::current_rank() const {
  if (t_owner != this || t_rank < 0) {
    throw std::logic_error(
        "ThreadedBackend: processor operation outside a processor body");
  }
  return t_rank;
}

ThreadedBackend::Worker& ThreadedBackend::self() {
  return *workers_[static_cast<std::size_t>(current_rank())];
}

void ThreadedBackend::charge(double /*seconds*/) {
  // Real time passes by itself; modeled cost parameters do not apply here.
}

void ThreadedBackend::free_pending_messages() {
  for (auto& wp : workers_) {
    Worker& w = *wp;
    for (MsgNode* n = w.inbox.exchange(nullptr, std::memory_order_acquire); n;) {
      MsgNode* next = n->next;
      delete n;
      n = next;
    }
    for (auto& [key, q] : w.sorted) {
      for (MsgNode* n : q) delete n;
    }
    w.sorted.clear();
  }
}

void ThreadedBackend::reset_run_state() {
  free_pending_messages();
  for (auto& wp : workers_) {
    Worker& w = *wp;
    w.parked.store(false, std::memory_order_relaxed);
    w.awaiting_tb.store(nullptr, std::memory_order_relaxed);
    w.awaiting_ep.store(0, std::memory_order_relaxed);
    w.barrier_epoch.clear();
    w.barrier_cache.clear();
    w.loop_epoch.clear();
    w.elapsed_s = 0.0;
    w.wait_s = 0.0;
    w.blocks = w.messages = w.bytes = w.barriers = 0;
    w.steals = w.stolen_iters = 0;
    w.cpu.store(-1, std::memory_order_relaxed);
    w.node.store(-1, std::memory_order_relaxed);
    w.block_reason.store(nullptr, std::memory_order_relaxed);
    w.mail_depth.store(0, std::memory_order_relaxed);
    w.beats.store(0, std::memory_order_relaxed);
    w.last_beat.store(-1.0, std::memory_order_relaxed);
    w.done.store(false, std::memory_order_relaxed);
  }
  if (!traffic_.empty()) std::fill(traffic_.begin(), traffic_.end(), 0);
  {
    std::lock_guard<std::mutex> lk(breg_mu_);
    barrier_registry_.clear();
  }
  {
    // An aborted run can leave arenas behind (members unwound before the
    // last-leaver cleanup); a normal run leaves the map empty.
    std::lock_guard<std::mutex> lk(loop_mu_);
    loop_registry_.clear();
  }
  aborted_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;
  parked_n_.store(0, std::memory_order_relaxed);
  finished_n_.store(0, std::memory_order_relaxed);
  progress_.store(0, std::memory_order_relaxed);
  io_prev_proc_ = -1;
  {
    std::lock_guard<std::mutex> lk(fail_intro_mu_);
    failure_intro_ = {};
  }
}

void ThreadedBackend::fail(std::exception_ptr e) {
  bool first = false;
  {
    std::lock_guard<std::mutex> lk(err_mu_);
    if (!first_error_) {
      first_error_ = std::move(e);
      first = true;
    }
  }
  if (first) {
    // Freeze the state that explains the failure before wake_all() lets
    // every other worker unwind into "finished".
    auto intro = introspect();
    std::lock_guard<std::mutex> lk(fail_intro_mu_);
    failure_intro_ = std::move(intro);
  }
  aborted_.store(true, std::memory_order_seq_cst);
  wake_all();
}

void ThreadedBackend::wake_all() {
  for (auto& wp : workers_) {
    std::lock_guard<std::mutex> lk(wp->mu);
    wp->cv.notify_all();
  }
  std::lock_guard<std::mutex> lk(breg_mu_);
  for (auto& [key, tb] : barrier_registry_) {
    std::lock_guard<std::mutex> blk(tb->mu);
    tb->cv.notify_all();
  }
}

void ThreadedBackend::run(const std::function<void(int)>& body) {
  reset_run_state();
  const int p = num_procs();
  t0_ = std::chrono::steady_clock::now();
  if (tracer_) tracer_->set_concurrent(p);

  // Worker placement under MachineConfig::pinning: probe the host topology
  // once per run and hand each worker its (cpu, node) slot. The plan is
  // host placement only — results are bit-identical under every policy —
  // so a failed affinity call just leaves that worker unpinned.
  std::vector<WorkerPlacement> pin_plan;
  if (config_.pinning != PinPolicy::None) {
    pin_plan = make_pin_plan(HostTopology::detect(), config_.pinning, p);
  }

  for (int r = 0; r < p; ++r) {
    Worker& w = *workers_[static_cast<std::size_t>(r)];
    const WorkerPlacement place =
        pin_plan.empty() ? WorkerPlacement{} : pin_plan[static_cast<std::size_t>(r)];
    w.thread = std::thread([this, &body, &w, r, place] {
      t_owner = this;
      t_rank = r;
      if (place.cpu >= 0 && pin_current_thread(place)) {
        w.cpu.store(place.cpu, std::memory_order_relaxed);
        w.node.store(place.node, std::memory_order_relaxed);
        if (tracer_) tracer_->set_worker_placement(r, place.cpu, place.node);
      }
      beat(w);
      try {
        body(r);
      } catch (const AbortError&) {
        // Unwound by someone else's failure; nothing more to record.
      } catch (...) {
        fail(std::current_exception());
      }
      w.elapsed_s = now_s();
      beat(w);
      // `done` first: introspect() must never read "running" for a worker
      // already counted in finished_n_.
      w.done.store(true, std::memory_order_seq_cst);
      finished_n_.fetch_add(1, std::memory_order_seq_cst);
      // A worker that finishes may be the last thing a deadlock check is
      // waiting on; poke every parked peer so they re-evaluate.
      progress_.fetch_add(1, std::memory_order_seq_cst);
      wake_all();
      t_owner = nullptr;
      t_rank = -1;
    });
  }
  for (auto& wp : workers_) wp->thread.join();

  if (metrics_ && !pin_plan.empty()) {
    int pinned = 0;
    for (const auto& wp : workers_) {
      pinned += wp->cpu.load(std::memory_order_relaxed) >= 0 ? 1 : 0;
    }
    metrics_->pinned_workers->set(pinned);
  }
  if (tracer_) tracer_->merge_concurrent();
  if (first_error_) std::rethrow_exception(first_error_);
}

// ---------------------------------------------------------------------------
// Deadlock diagnosis

bool ThreadedBackend::quiescent(std::uint64_t progress_snapshot) const {
  const auto counters_quiet = [&] {
    if (progress_.load(std::memory_order_seq_cst) != progress_snapshot) return false;
    const int done = finished_n_.load(std::memory_order_seq_cst);
    const int parked = parked_n_.load(std::memory_order_seq_cst);
    if (done >= num_procs()) return false;  // run is completing normally
    if (parked + done < num_procs()) return false;  // somebody is still running
    return true;
  };
  if (!counters_quiet()) return false;
  // Counter deltas alone are not enough: a wakeup delivered *before* the
  // caller's snapshot (an inbox push, a barrier release) bumped progress_
  // already, yet the woken worker may still be counted in parked_n_ until
  // the scheduler runs it. Verify per-worker state: any pending wakeup
  // means the system will move on its own.
  for (const auto& wp : workers_) {
    // An undrained inbox wakes its owner no matter when it was pushed.
    if (wp->inbox.load(std::memory_order_seq_cst) != nullptr) return false;
    // A released barrier episode this parked waiter has not consumed yet.
    const TreeBarrier* tb = wp->awaiting_tb.load(std::memory_order_seq_cst);
    if (tb != nullptr && tb->released.load(std::memory_order_seq_cst) >=
                             wp->awaiting_ep.load(std::memory_order_seq_cst)) {
      return false;
    }
  }
  // Re-check the counters after the scan: a worker that consumed its wakeup
  // while we scanned (drained its inbox, exited its barrier) decremented
  // parked_n_ before clearing the state the scan looked at, so one of the
  // two checks sees it.
  return counters_quiet();
}

void ThreadedBackend::report_deadlock() {
  std::string detail = "deadlock: all processors blocked.";
  for (int r = 0; r < num_procs(); ++r) {
    const Worker& w = *workers_[static_cast<std::size_t>(r)];
    const char* reason = w.block_reason.load(std::memory_order_acquire);
    detail += "\n  proc " + std::to_string(r) + ": " + (reason ? reason : "finished");
  }
  fail(std::make_exception_ptr(runtime::DeadlockError(detail)));
}

// ---------------------------------------------------------------------------
// Messaging

void ThreadedBackend::deposit(int dst, std::uint64_t tag, Payload data) {
  if (dst < 0 || dst >= num_procs()) {
    throw std::out_of_range("Machine::deposit: bad destination " + std::to_string(dst));
  }
  if (aborted_.load(std::memory_order_acquire)) throw AbortError{};
  Worker& me = self();
  beat(me);
  const int src = t_rank;
  const std::size_t bytes = data.size();

  auto* node = new MsgNode{};
  node->src = src;
  node->tag = tag;
  node->data = std::move(data);
  node->sent_at = now_s();
  if (tracer_) {
    node->trace_id = tracer_->message_sent(src, dst, tag, bytes, node->sent_at, node->sent_at);
  }

  me.messages += 1;
  me.bytes += bytes;
  if (!traffic_.empty()) {
    traffic_[static_cast<std::size_t>(src) * static_cast<std::size_t>(num_procs()) +
             static_cast<std::size_t>(dst)] += bytes;
  }

  Worker& to = *workers_[static_cast<std::size_t>(dst)];
  MsgNode* head = to.inbox.load(std::memory_order_relaxed);
  do {
    node->next = head;
  } while (!to.inbox.compare_exchange_weak(head, node, std::memory_order_release,
                                           std::memory_order_relaxed));
  to.mail_depth.fetch_add(1, std::memory_order_relaxed);
  progress_.fetch_add(1, std::memory_order_seq_cst);

  // Dekker-style handshake with the receiver's park sequence: the push
  // above is seq_cst-ordered before this load, and the receiver sets
  // `parked` before its final inbox check. Either we see parked and
  // notify, or the receiver's check sees our node.
  if (to.parked.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lk(to.mu);
    to.cv.notify_all();
  }
}

void ThreadedBackend::drain_inbox(Worker& w) {
  // seq_cst, not acquire: quiescent() infers from a null inbox that the
  // owner's earlier parked_n_ decrement is visible to its counter re-check,
  // which needs the exchange in the single total order with the counters.
  MsgNode* n = w.inbox.exchange(nullptr, std::memory_order_seq_cst);
  // The Treiber stack yields newest-first; reverse to restore push order so
  // matching stays per-source FIFO like the simulator's deques.
  MsgNode* in_order = nullptr;
  while (n) {
    MsgNode* next = n->next;
    n->next = in_order;
    in_order = n;
    n = next;
  }
  while (in_order) {
    MsgNode* next = in_order->next;
    in_order->next = nullptr;
    w.sorted[MailKey{in_order->src, in_order->tag}].push_back(in_order);
    in_order = next;
  }
}

Payload ThreadedBackend::receive(int src, std::uint64_t tag) {
  if (src < 0 || src >= num_procs()) {
    throw std::out_of_range("Machine::receive: bad source " + std::to_string(src));
  }
  Worker& me = self();
  beat(me);
  const MailKey key{src, tag};
  const double entry = now_s();
  bool blocked = false;

  for (int spin = 0;; ++spin) {
    if (aborted_.load(std::memory_order_acquire)) throw AbortError{};
    drain_inbox(me);
    auto it = me.sorted.find(key);
    if (it != me.sorted.end() && !it->second.empty()) {
      MsgNode* node = it->second.front();
      it->second.pop_front();
      if (it->second.empty()) me.sorted.erase(it);
      me.mail_depth.fetch_sub(1, std::memory_order_relaxed);
      beat(me);
      if (blocked) {
        me.wait_s += now_s() - entry;
        me.blocks += 1;
      }
      if (tracer_ && node->trace_id != 0) {
        tracer_->message_received_at(node->trace_id, t_rank, node->src, node->sent_at,
                                     entry, now_s());
      }
      Payload data = std::move(node->data);
      delete node;
      return data;
    }
    if (spin < kSpinRounds) {
      std::this_thread::yield();
      continue;
    }
    blocked = true;
    me.block_reason.store("recv", std::memory_order_release);
    std::unique_lock<std::mutex> lk(me.mu);
    me.parked.store(true, std::memory_order_seq_cst);
    parked_n_.fetch_add(1, std::memory_order_seq_cst);
    // Final check under the parked flag: a sender that pushed before seeing
    // parked==true is visible here; one that pushes after will notify.
    if (me.inbox.load(std::memory_order_seq_cst) == nullptr &&
        !aborted_.load(std::memory_order_acquire)) {
      const std::uint64_t snap = progress_.load(std::memory_order_seq_cst);
      if (quiescent(snap)) {
        lk.unlock();
        report_deadlock();
        lk.lock();
      } else {
        me.cv.wait_for(lk, std::chrono::milliseconds(100));
        if (me.inbox.load(std::memory_order_seq_cst) == nullptr &&
            !aborted_.load(std::memory_order_acquire) && quiescent(snap)) {
          lk.unlock();
          report_deadlock();
          lk.lock();
        }
      }
    }
    me.parked.store(false, std::memory_order_seq_cst);
    parked_n_.fetch_sub(1, std::memory_order_seq_cst);
    me.block_reason.store(nullptr, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// Subset barriers

void ThreadedBackend::check_group_key_match(const std::vector<int>& registered,
                                            const pgroup::ProcessorGroup& g,
                                            const char* what) {
  if (registered == g.members()) return;
  std::string msg = "ThreadedBackend: group key collision in ";
  msg += what;
  msg += ": key " + std::to_string(g.key()) + " of group " + g.to_string() +
         " is already registered for members [";
  for (std::size_t i = 0; i < registered.size(); ++i) {
    if (i) msg += ",";
    msg += std::to_string(registered[i]);
  }
  msg += "]";
  throw std::logic_error(msg);
}

std::shared_ptr<ThreadedBackend::TreeBarrier> ThreadedBackend::barrier_for(
    Worker& me, const pgroup::ProcessorGroup& g) {
  const std::uint64_t key = g.key();
  auto it = me.barrier_cache.find(key);
  if (it != me.barrier_cache.end()) {
    check_group_key_match(it->second->members, g, "barrier_for");
    return it->second;
  }
  std::shared_ptr<TreeBarrier> tb;
  {
    std::lock_guard<std::mutex> lk(breg_mu_);
    auto& slot = barrier_registry_[key];
    if (!slot) slot = std::make_shared<TreeBarrier>(g.members());
    tb = slot;
  }
  // Validate outside the registry lock: a collision is a fatal program
  // error, and every later episode would hit the cached entry anyway.
  check_group_key_match(tb->members, g, "barrier_for");
  me.barrier_cache.emplace(key, tb);
  return tb;
}

void ThreadedBackend::barrier(const pgroup::ProcessorGroup& group) {
  Worker& me = self();
  const int rank = t_rank;
  if (!group.contains(rank)) {
    throw std::logic_error("Machine::barrier: proc " + std::to_string(rank) +
                           " is not a member of group " + group.to_string());
  }
  if (aborted_.load(std::memory_order_acquire)) throw AbortError{};
  beat(me);
  me.barriers += 1;
  const int n = group.size();
  if (n == 1) return;

  std::shared_ptr<TreeBarrier> tb = barrier_for(me, group);
  const std::uint64_t episode = ++me.barrier_epoch[group.key()];
  const int vrank = group.virtual_of(rank);
  const double arrived_at = now_s();
  if (tracer_) tb->arrive_t[static_cast<std::size_t>(vrank)] = arrived_at;

  // Signal completed subtrees up the combining tree. Each node resets
  // itself for the next episode when it fires, which is safe because no
  // member can re-enter this episode's subtree before `released` advances.
  int node = vrank;
  while (tb->nodes[static_cast<std::size_t>(node)].pending.fetch_sub(
             1, std::memory_order_acq_rel) == 1) {
    tb->nodes[static_cast<std::size_t>(node)].pending.store(
        tb->nodes[static_cast<std::size_t>(node)].fanin, std::memory_order_relaxed);
    if (node == 0) {
      // Root: the whole group has arrived. Publish trace data, then release.
      if (tracer_) {
        int last = 0;
        double max_t = tb->arrive_t[0];
        for (int i = 1; i < n; ++i) {
          if (tb->arrive_t[static_cast<std::size_t>(i)] >= max_t) {
            max_t = tb->arrive_t[static_cast<std::size_t>(i)];
            last = i;
          }
        }
        tb->last_arriver = group.members()[static_cast<std::size_t>(last)];
        tb->max_arrival = max_t;
      }
      tb->released.store(episode, std::memory_order_seq_cst);
      progress_.fetch_add(1, std::memory_order_seq_cst);
      {
        std::lock_guard<std::mutex> lk(tb->mu);
        tb->cv.notify_all();
      }
      break;
    }
    node = (node - 1) / 2;
  }

  // Wait for this episode's release: spin briefly, then park.
  if (tb->released.load(std::memory_order_seq_cst) < episode) {
    for (int spin = 0; spin < kSpinRounds; ++spin) {
      if (tb->released.load(std::memory_order_seq_cst) >= episode) break;
      if (aborted_.load(std::memory_order_acquire)) throw AbortError{};
      std::this_thread::yield();
    }
    if (tb->released.load(std::memory_order_seq_cst) < episode) {
      me.block_reason.store("barrier", std::memory_order_release);
      std::unique_lock<std::mutex> lk(tb->mu);
      // Register what this park waits for (episode first, then the barrier)
      // before counting it in parked_n_, so quiescent() can tell a genuine
      // wait from a release the scheduler has not delivered yet.
      me.awaiting_ep.store(episode, std::memory_order_seq_cst);
      me.awaiting_tb.store(tb.get(), std::memory_order_seq_cst);
      parked_n_.fetch_add(1, std::memory_order_seq_cst);
      while (tb->released.load(std::memory_order_seq_cst) < episode &&
             !aborted_.load(std::memory_order_acquire)) {
        const std::uint64_t snap = progress_.load(std::memory_order_seq_cst);
        tb->cv.wait_for(lk, std::chrono::milliseconds(100));
        if (tb->released.load(std::memory_order_seq_cst) < episode &&
            !aborted_.load(std::memory_order_acquire) && quiescent(snap)) {
          lk.unlock();
          report_deadlock();
          lk.lock();
        }
      }
      parked_n_.fetch_sub(1, std::memory_order_seq_cst);
      me.awaiting_tb.store(nullptr, std::memory_order_seq_cst);
      me.block_reason.store(nullptr, std::memory_order_release);
    }
  }
  if (aborted_.load(std::memory_order_acquire)) throw AbortError{};
  beat(me);

  const double released_at = now_s();
  if (released_at > arrived_at) {
    me.wait_s += released_at - arrived_at;
    me.blocks += 1;
  }
  if (tracer_) {
    tracer_->barrier_record(group.key(), episode, rank, arrived_at, released_at,
                            tb->last_arriver, tb->max_arrival);
  }
}

// ---------------------------------------------------------------------------
// Work-stealing loops

void ThreadedBackend::run_chunks(const pgroup::ProcessorGroup& group, std::int64_t lo,
                                 std::int64_t hi, const ChunkBody& body) {
  Worker& me = self();
  const int rank = t_rank;
  const int v = group.virtual_of(rank);
  if (v < 0) {
    throw std::logic_error("Machine::run_chunks: proc " + std::to_string(rank) +
                           " is not a member of group " + group.to_string());
  }
  if (aborted_.load(std::memory_order_acquire)) throw AbortError{};
  if (hi <= lo) return;
  beat(me);

  const int n = group.size();
  const auto [first, last] = loop_block(lo, hi, n, v);
  if (n == 1 || !config_.work_stealing) {
    // Static schedule: exactly the simulator's behaviour, no coordination.
    if (first < last) body(first, last);
    return;
  }

  // Acquire (or create) the arena for this loop episode. The key mixes the
  // group's content key with this group's per-worker loop counter — SPMD
  // order guarantees all members agree on the counter — so two consecutive
  // loops of one group, or simultaneous loops of two sibling subgroups,
  // always name different arenas. Stealing can therefore never cross
  // TASK_PARTITION siblings: a thief only ever scans slots of its own
  // arena, and membership of the arena is membership of the group.
  const std::uint64_t gkey = group.key();
  const std::uint64_t episode = ++me.loop_epoch[gkey];
  const std::uint64_t akey = gkey ^ (episode * kEpochScramble);
  std::shared_ptr<LoopArena> arena;
  {
    std::lock_guard<std::mutex> lk(loop_mu_);
    auto& slot = loop_registry_[akey];
    if (!slot) slot = std::make_shared<LoopArena>(group.members(), episode);
    arena = slot;
  }
  check_group_key_match(arena->members, group, "run_chunks");
  if (arena->epoch != episode) {
    throw std::logic_error("ThreadedBackend::run_chunks: arena key collision (episode " +
                           std::to_string(arena->epoch) + " vs " + std::to_string(episode) +
                           ") on group " + group.to_string());
  }

  // Publish my static block as a bottom-to-top array of chunks. Everything
  // is written before the single release store of `chunks`; thieves acquire
  // that pointer, so they see count/result_slot/remaining without locks.
  LoopArena::Slot& mine = arena->slots[static_cast<std::size_t>(v)];
  const std::int64_t len = last - first;
  int count = 0;
  if (len > 0) {
    count = static_cast<int>(std::min<std::int64_t>(len, kLoopChunksPerWorker));
    const std::int64_t step = (len + count - 1) / count;
    // The rounded-up step can overshoot the block when len is not a
    // multiple of the chunk count (len=25 over 16 chunks steps by 2 and
    // covers 32): recompute the count so every chunk is non-empty, and
    // clamp both bounds — an unclamped lo yields lo > hi chunks whose
    // negative lengths would wedge the `remaining` join below forever.
    count = static_cast<int>((len + step - 1) / step);
    mine.storage = std::make_unique<LoopArena::Chunk[]>(static_cast<std::size_t>(count));
    for (int c = 0; c < count; ++c) {
      auto& ch = mine.storage[static_cast<std::size_t>(c)];
      ch.lo = std::min(last, first + static_cast<std::int64_t>(c) * step);
      ch.hi = std::min(last, ch.lo + step);
      assert(ch.lo < ch.hi);
    }
    mine.count = count;
    mine.body = &body;
    mine.remaining.store(len, std::memory_order_relaxed);
    mine.chunks.store(mine.storage.get(), std::memory_order_release);
  }

  // Always run a chunk through its *owner's* body object: the closure
  // captures the owner's per-processor state (local array views, result
  // buffers), so a stolen chunk computes exactly what the owner would have.
  const auto run_one = [](LoopArena::Slot& s, LoopArena::Chunk& ch) {
    // Account the chunk done even when the body throws (an abort unwinding
    // a machine service called inside the loop): the owner's join and the
    // abort drain below both wait on `remaining`, and a skipped decrement
    // would turn the abort into a permanent spin.
    struct Done {
      LoopArena::Slot& slot;
      std::int64_t n;
      ~Done() { slot.remaining.fetch_sub(n, std::memory_order_acq_rel); }
    } done{s, ch.hi - ch.lo};
    (*s.body)(ch.lo, ch.hi);
  };

  // The member leaves as soon as its own block is done — downstream reads
  // of *other* members' results are synchronized by messages/barriers as
  // always. The last member out unregisters the arena; the shared_ptr each
  // member took at entry keeps the slots alive for any straggling scan.
  const auto leave = [&] {
    if (arena->left.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      std::lock_guard<std::mutex> lk(loop_mu_);
      auto it = loop_registry_.find(akey);
      if (it != loop_registry_.end() && it->second == arena) loop_registry_.erase(it);
    }
  };

  try {
    // Phase 1 — drain my own deque from the bottom. A flag already seen
    // true means a sibling stole that chunk and is (or was) running it.
    for (int c = 0; c < count; ++c) {
      if (aborted_.load(std::memory_order_acquire)) throw AbortError{};
      auto& ch = mine.storage[static_cast<std::size_t>(c)];
      if (!ch.taken.exchange(true, std::memory_order_acq_rel)) {
        run_one(mine, ch);
        beat(me);
      }
    }

    // Phase 2 — steal from siblings (top of their deques, round-robin from
    // my right neighbour, sticking with a victim while it yields work),
    // until my own block is complete *and* no stealable chunk is visible.
    // The join is a bespoke spin on `remaining`, not a barrier: it must not
    // perturb the barrier/message counters, which tests hold equal across
    // backends.
    int next_victim = (v + 1) % n;
    for (;;) {
      if (aborted_.load(std::memory_order_acquire)) throw AbortError{};
      bool stole = false;
      for (int off = 0; off < n && !stole; ++off) {
        const int u = (next_victim + off) % n;
        if (u == v) continue;
        LoopArena::Slot& s = arena->slots[static_cast<std::size_t>(u)];
        LoopArena::Chunk* arr = s.chunks.load(std::memory_order_acquire);
        if (arr == nullptr) continue;                                    // not published yet
        if (s.remaining.load(std::memory_order_acquire) == 0) continue;  // fully done
        for (int c = s.count - 1; c >= 0; --c) {
          auto& ch = arr[static_cast<std::size_t>(c)];
          if (ch.taken.load(std::memory_order_relaxed)) continue;
          if (ch.taken.exchange(true, std::memory_order_acq_rel)) continue;
          run_one(s, ch);
          beat(me);
          me.steals += 1;
          me.stolen_iters += static_cast<std::uint64_t>(ch.hi - ch.lo);
          if (metrics_) {
            metrics_->steals->add(rank);
            metrics_->stolen_iters->add(rank, static_cast<std::uint64_t>(ch.hi - ch.lo));
          }
          if (tracer_) {
            tracer_->steal_event(rank, arena->members[static_cast<std::size_t>(u)],
                                 static_cast<std::uint64_t>(ch.hi - ch.lo), now_s());
          }
          if (flight_) {
            flight_->record(rank, obs::FlightKind::Steal, now_s(), "steal",
                            static_cast<std::uint64_t>(
                                arena->members[static_cast<std::size_t>(u)]),
                            static_cast<std::uint64_t>(ch.hi - ch.lo));
          }
          next_victim = u;
          stole = true;
          break;
        }
      }
      if (stole) continue;
      if (mine.remaining.load(std::memory_order_acquire) == 0) break;
      // My remaining chunks are all claimed and in flight on siblings; this
      // spin is the per-member join. It busy-waits (with yields) rather
      // than parking: the worker is neither finished nor blocked on a
      // machine service, so the deadlock detector must keep seeing it as
      // running.
      std::this_thread::yield();
    }
  } catch (...) {
    // Unwinding this frame destroys the caller's body object (and any
    // result buffers it closes over) that slot `v` still points to. Make
    // the failure global first so in-flight thieves unwind instead of
    // parking, poison every chunk no thief has claimed yet, then wait for
    // the claimed ones to drain: after that no sibling can start (or still
    // be inside) a chunk that touches freed state. fail() keeps the first
    // real error, so re-reporting an AbortError here is a no-op.
    fail(std::current_exception());
    for (int c = 0; c < count; ++c) {
      auto& ch = mine.storage[static_cast<std::size_t>(c)];
      if (!ch.taken.exchange(true, std::memory_order_acq_rel)) {
        mine.remaining.fetch_sub(ch.hi - ch.lo, std::memory_order_acq_rel);
      }
    }
    while (mine.remaining.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
    leave();
    throw;
  }
  leave();
}

// ---------------------------------------------------------------------------
// I/O device

void ThreadedBackend::io_operation(std::size_t bytes) {
  Worker& me = self();
  const int rank = t_rank;
  if (aborted_.load(std::memory_order_acquire)) throw AbortError{};
  beat(me);
  const double entry = now_s();
  // The machine has one sequential I/O device; serialize real access to it
  // just as the simulator serializes modeled access. Only time spent
  // *acquiring* the lock — genuinely queued behind another processor's
  // operation — is blocked time; the device section itself is the caller's
  // own work and stays in busy time.
  std::unique_lock<std::mutex> lk(io_mu_, std::try_to_lock);
  if (!lk.owns_lock()) {
    me.block_reason.store("io", std::memory_order_release);
    lk.lock();
    me.block_reason.store(nullptr, std::memory_order_release);
    const double acquired = now_s();
    me.wait_s += acquired - entry;
    me.blocks += 1;
    if (tracer_) {
      const int prev = io_prev_proc_;  // guarded by io_mu_, held since lk.lock()
      tracer_->io_wait(rank, entry, acquired, prev >= 0 ? prev : rank, entry);
    }
  }
  io_prev_proc_ = rank;
  // Device occupancy: the modeled latency/byte costs are simulator-side
  // parameters, but holding the lock for the transfer keeps operations
  // serialized. The payload copy itself happens in the caller.
  (void)bytes;
}

// ---------------------------------------------------------------------------
// Stats

BackendStats ThreadedBackend::stats() const {
  BackendStats s;
  s.clocks.reserve(static_cast<std::size_t>(num_procs()));
  for (const auto& wp : workers_) {
    const Worker& w = *wp;
    runtime::ProcClock c;
    c.now = w.elapsed_s;
    c.busy = std::max(0.0, w.elapsed_s - w.wait_s);
    c.idle = w.wait_s;
    c.blocks = w.blocks;
    s.clocks.push_back(c);
    s.finish_time = std::max(s.finish_time, w.elapsed_s);
    s.messages += w.messages;
    s.bytes += w.bytes;
    s.barriers += w.barriers;
    s.steals += w.steals;
    s.stolen_iters += w.stolen_iters;
    s.wait_ms += w.wait_s * 1e3;
  }
  // Surface placement only when some worker actually got pinned; the
  // common unpinned case keeps the vector empty (and the JSON field out).
  bool any_pinned = false;
  for (const auto& wp : workers_) {
    any_pinned = any_pinned || wp->cpu.load(std::memory_order_relaxed) >= 0;
  }
  if (any_pinned) {
    s.numa_nodes.reserve(workers_.size());
    for (const auto& wp : workers_) {
      s.numa_nodes.push_back(wp->node.load(std::memory_order_relaxed));
    }
  }
  s.traffic = traffic_;
  return s;
}

// ---------------------------------------------------------------------------
// Live introspection

obs::Introspection ThreadedBackend::introspect() const {
  obs::Introspection out;
  out.now = now_s();
  const int p = num_procs();
  out.workers.resize(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const Worker& w = *workers_[static_cast<std::size_t>(r)];
    obs::WorkerState& ws = out.workers[static_cast<std::size_t>(r)];
    ws.rank = r;
    const char* reason = w.block_reason.load(std::memory_order_acquire);
    if (w.done.load(std::memory_order_acquire)) {
      ws.state = "finished";
    } else if (reason != nullptr) {
      ws.state = "parked";
      ws.block_reason = reason;
    } else {
      ws.state = "running";
    }
    ws.mailbox_depth =
        std::max<std::int64_t>(0, w.mail_depth.load(std::memory_order_relaxed));
    ws.cpu = w.cpu.load(std::memory_order_relaxed);
    ws.node = w.node.load(std::memory_order_relaxed);
    ws.last_beat = w.last_beat.load(std::memory_order_relaxed);
  }
  {
    // Unclaimed chunks still published in live loop arenas, attributed to
    // the owning member. The arrays are safe to scan under loop_mu_: an
    // arena in the registry is kept alive by its shared_ptr, and the claim
    // flags are atomics.
    std::lock_guard<std::mutex> lk(loop_mu_);
    for (const auto& [key, arena] : loop_registry_) {
      for (std::size_t u = 0; u < arena->slots.size(); ++u) {
        const LoopArena::Slot& s = arena->slots[u];
        const LoopArena::Chunk* arr = s.chunks.load(std::memory_order_acquire);
        if (arr == nullptr) continue;
        std::int64_t pending = 0;
        for (int c = 0; c < s.count; ++c) {
          if (!arr[static_cast<std::size_t>(c)].taken.load(std::memory_order_relaxed)) {
            ++pending;
          }
        }
        const int owner = arena->members[u];
        if (owner >= 0 && owner < p) {
          out.workers[static_cast<std::size_t>(owner)].loop_chunks_pending += pending;
        }
      }
    }
  }
  {
    // Partially-occupied barriers: every registered tree with at least one
    // member currently parked in an unreleased episode.
    std::lock_guard<std::mutex> lk(breg_mu_);
    for (const auto& [key, tb] : barrier_registry_) {
      int waiting = 0;
      for (const auto& wp : workers_) {
        if (wp->awaiting_tb.load(std::memory_order_acquire) == tb.get()) ++waiting;
      }
      if (waiting > 0) {
        out.barriers.push_back(obs::BarrierOccupancy{
            key, static_cast<int>(tb->members.size()), waiting});
      }
    }
  }
  return out;
}

obs::Introspection ThreadedBackend::failure_introspection() const {
  std::lock_guard<std::mutex> lk(fail_intro_mu_);
  return failure_intro_;
}

std::uint64_t ThreadedBackend::progress() const noexcept {
  // progress_ covers deposits, barrier releases and worker completions;
  // the beat counters cover receives, loop chunks and io, so a run that is
  // computing chunks (or spinning in a loop join) still reads as moving.
  std::uint64_t p = progress_.load(std::memory_order_relaxed);
  p += static_cast<std::uint64_t>(finished_n_.load(std::memory_order_relaxed));
  for (const auto& wp : workers_) p += wp->beats.load(std::memory_order_relaxed);
  return p;
}

}  // namespace fxpar::exec
