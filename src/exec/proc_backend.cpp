#include "exec/proc_backend.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <linux/futex.h>
#include <sys/syscall.h>
#endif

#include <algorithm>
#include <bit>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>
#include <stdexcept>
#include <string>

#include "exec/threaded_backend.hpp"  // AbortError
#include "metrics/runtime_metrics.hpp"
#include "net/shm_channel.hpp"
#include "net/socket_channel.hpp"
#include "obs/flight_recorder.hpp"
#include "trace/trace.hpp"

namespace fxpar::exec {

// ---------------------------------------------------------------------------
// The shared-memory control block
//
// One fixed-size block, mapped MAP_SHARED | MAP_ANONYMOUS before the first
// fork, so every rank — parent and children — addresses the *same* physical
// words. Everything the ranks must agree on *cheaply* lives here: the abort
// word (doubling as the transports' stop flag), per-rank liveness for the
// monitor and for introspection, subset-barrier state, the progress
// counter, and the per-rank final stats. Variable-size state (payloads,
// trace shards, metric deltas) travels over the net::Channel instead.

namespace procdetail {

inline constexpr int kMaxProcs = 64;       ///< barrier membership is a u64 rank mask
inline constexpr int kBarrierSlots = 256;  ///< open-addressed group-key table
inline constexpr int kErrBytes = 4096;
inline constexpr std::uint64_t kClaimKey = ~std::uint64_t{0};  ///< slot mid-claim

// Abort word: 0 = running, 1 = abort (exception / child death), 2 = deadlock.
inline constexpr std::uint32_t kAbortNone = 0;
inline constexpr std::uint32_t kAbortError = 1;
inline constexpr std::uint32_t kAbortDeadlock = 2;

// Block reasons, mirrored into obs::WorkerState::block_reason strings.
inline constexpr std::uint32_t kReasonNone = 0;
inline constexpr std::uint32_t kReasonRecv = 1;
inline constexpr std::uint32_t kReasonBarrier = 2;
inline constexpr std::uint32_t kReasonIo = 3;

struct alignas(64) RankCtrl {
  std::atomic<std::uint32_t> parked{0};  ///< rank is (about to be) futex-parked
  std::atomic<std::uint32_t> reason{0};  ///< kReason* while blocked
  std::atomic<std::uint32_t> done{0};    ///< body returned and stats are final
  std::atomic<std::uint64_t> beats{0};   ///< runtime-service heartbeats
  std::atomic<std::uint64_t> last_beat_bits{0};  ///< bit pattern of the last beat time
  std::atomic<std::int64_t> mail_depth{0};       ///< matched-but-unreceived messages
  // Final per-rank counters, owner-written by finish_rank() before `done`
  // goes up; the parent reads them only after observing done (or the reap).
  double elapsed_s = 0.0;
  double wait_s = 0.0;
  std::uint64_t blocks = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t barriers = 0;
};

/// One subset barrier, keyed on the group's content key, claimed on first
/// use by linear probing. The epoch word is the futex all waiters sleep on;
/// the last arriver bumps it and wakes everyone — the localized-barrier
/// property (only members of this group ever touch this slot) comes from
/// keying on group content exactly like the other two backends.
struct BarrierSlot {
  std::atomic<std::uint64_t> key{0};      ///< 0 free, kClaimKey mid-claim
  std::atomic<std::uint64_t> members{0};  ///< rank bitmask (collision guard)
  std::atomic<std::uint32_t> size{0};
  std::atomic<std::uint32_t> arrived{0};
  std::atomic<std::uint32_t> epoch{0};    ///< released episodes; the futex word
  std::atomic<std::uint32_t> waiting{0};  ///< members parked in an unreleased episode
  std::atomic<std::int32_t> last_arriver{-1};   ///< published by the root pre-release
  std::atomic<std::uint32_t> pad_{0};
  std::atomic<std::uint64_t> max_arrival_bits{0};
  /// Per-vrank arrival stamps; plain doubles synchronized by the `arrived`
  /// RMW chain (each member stores before its fetch_add, the root's
  /// fetch_add acquires the whole chain).
  double arrive_t[kMaxProcs] = {};
};

struct FrozenRank {
  std::uint32_t state = 0;  ///< 0 running, 1 parked, 2 finished
  std::uint32_t reason = 0;
  std::int64_t mail_depth = 0;
  double last_beat = -1.0;
};

struct FrozenBarrier {
  std::uint64_t key = 0;
  std::int32_t size = 0;
  std::int32_t waiting = 0;
};

struct Ctrl {
  std::atomic<std::uint32_t> abort{0};      ///< also the channels' stop flag
  std::atomic<std::uint32_t> err_claim{0};  ///< first-failer CAS gate
  std::atomic<std::uint32_t> frozen{0};     ///< failure snapshot below is valid
  char err[kErrBytes] = {};

  std::atomic<std::uint64_t> progress{0};
  std::atomic<std::int32_t> parked_n{0};
  std::atomic<std::int32_t> finished_n{0};
  /// Data frames sent and not yet drained by their destination; nonzero
  /// means the system will move on its own, so no deadlock verdict.
  std::atomic<std::int64_t> in_transit{0};

  std::atomic<std::uint32_t> io_lock{0};  ///< 0 free, else owning rank + 1
  std::atomic<std::int32_t> io_prev{-1};

  // Failure-time snapshot, written by the first failer *before* it raises
  // the abort word (every other rank then unwinds into "finished", so the
  // states that explain the failure only exist at diagnosis time).
  FrozenRank frozen_ranks[kMaxProcs];
  FrozenBarrier frozen_barriers[kBarrierSlots];
  std::uint32_t frozen_barrier_n = 0;

  BarrierSlot barriers[kBarrierSlots];
  RankCtrl ranks[kMaxProcs];
  std::atomic<std::uint64_t> traffic[kMaxProcs * kMaxProcs];
};

}  // namespace procdetail

namespace {

using procdetail::Ctrl;
using procdetail::RankCtrl;

thread_local ProcBackend* t_powner = nullptr;
thread_local int t_prank = -1;

void sleep_s(double seconds) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(seconds);
  ts.tv_nsec = static_cast<long>((seconds - static_cast<double>(ts.tv_sec)) * 1e9);
  ::nanosleep(&ts, nullptr);
}

// Process-shared futexes on the control block (no FUTEX_PRIVATE_FLAG: the
// waiters live in different processes). Non-Linux fallback: bounded sleeps —
// every wait site re-checks its condition on a short period anyway.
void futex_wait_u32(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                    double timeout_s) {
#ifdef __linux__
  timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_s);
  ts.tv_nsec = static_cast<long>((timeout_s - static_cast<double>(ts.tv_sec)) * 1e9);
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), FUTEX_WAIT, expected, &ts,
            nullptr, 0);
#else
  if (addr->load(std::memory_order_acquire) == expected) {
    sleep_s(std::min(timeout_s, 1e-3));
  }
#endif
}

void futex_wake_all_u32(std::atomic<std::uint32_t>* addr) {
#ifdef __linux__
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), FUTEX_WAKE, INT_MAX, nullptr,
            nullptr, 0);
#else
  (void)addr;
#endif
}

const char* reason_name(std::uint32_t reason) {
  switch (reason) {
    case procdetail::kReasonRecv: return "recv";
    case procdetail::kReasonBarrier: return "barrier";
    case procdetail::kReasonIo: return "io";
  }
  return "";
}

// ---- tiny blob helpers (parent and children are the same binary image,
// so raw little-endian native encoding is exact) ----

void put_raw(std::vector<std::byte>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  out.insert(out.end(), b, b + n);
}

template <class T>
void put(std::vector<std::byte>& out, const T& v) {
  put_raw(out, &v, sizeof v);
}

void put_str(std::vector<std::byte>& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  put_raw(out, s.data(), s.size());
}

template <class T>
T get(const std::byte* p, std::size_t len, std::size_t& off) {
  if (sizeof(T) > len - off) throw std::runtime_error("ProcBackend: truncated control frame");
  T v;
  std::memcpy(&v, p + off, sizeof v);
  off += sizeof v;
  return v;
}

std::string get_str(const std::byte* p, std::size_t len, std::size_t& off) {
  const auto n = get<std::uint32_t>(p, len, off);
  if (n > len - off) throw std::runtime_error("ProcBackend: truncated control frame");
  std::string s(reinterpret_cast<const char*>(p) + off, n);
  off += n;
  return s;
}

/// Serializes `end - base` for every counter and histogram: what this child
/// observed between fork and finish. Gauges are skipped by design — they
/// are single-writer driver-side values, not per-rank accumulations.
std::vector<std::byte> serialize_metrics_delta(const metrics::Snapshot& base,
                                               const metrics::Snapshot& end) {
  std::vector<std::byte> out;
  std::uint32_t nc = 0;
  std::vector<std::byte> body;
  for (const auto& [name, v] : end.counters) {
    const std::uint64_t d = v - base.counter(name);
    if (d == 0) continue;
    put_str(body, name);
    put<std::uint64_t>(body, d);
    ++nc;
  }
  std::uint32_t nh = 0;
  for (const auto& [name, h] : end.histograms) {
    auto it = base.histograms.find(name);
    const metrics::Snapshot::Hist* b = it == base.histograms.end() ? nullptr : &it->second;
    const std::uint64_t count_d = h.count - (b ? b->count : 0);
    const double sum_d = h.sum - (b ? b->sum : 0.0);
    if (count_d == 0 && sum_d == 0.0) continue;
    put_str(body, name);
    put<std::uint32_t>(body, static_cast<std::uint32_t>(h.buckets.size()));
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      const std::uint64_t was = b && i < b->buckets.size() ? b->buckets[i] : 0;
      put<std::uint64_t>(body, h.buckets[i] - was);
    }
    put<std::uint64_t>(body, count_d);
    put<double>(body, sum_d);
    ++nh;
  }
  if (nc == 0 && nh == 0) return out;
  put<std::uint32_t>(out, nc);
  put<std::uint32_t>(out, nh);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

void absorb_metrics_delta(metrics::Registry& reg, const std::byte* p, std::size_t len) {
  std::size_t off = 0;
  const auto nc = get<std::uint32_t>(p, len, off);
  const auto nh = get<std::uint32_t>(p, len, off);
  for (std::uint32_t i = 0; i < nc; ++i) {
    const std::string name = get_str(p, len, off);
    const auto d = get<std::uint64_t>(p, len, off);
    reg.counter(name)->add(0, d);
  }
  for (std::uint32_t i = 0; i < nh; ++i) {
    const std::string name = get_str(p, len, off);
    const auto nb = get<std::uint32_t>(p, len, off);
    std::vector<std::uint64_t> buckets(nb);
    for (std::uint32_t k = 0; k < nb; ++k) buckets[k] = get<std::uint64_t>(p, len, off);
    const auto count_d = get<std::uint64_t>(p, len, off);
    const auto sum_d = get<double>(p, len, off);
    reg.histogram(name)->absorb(buckets, count_d, sum_d);
  }
}

/// Finds (or claims) the barrier slot of `g` in the shared table. A slot is
/// claimed with a CAS to the sentinel key, its shape published, then the
/// real key release-stored; probers seeing the sentinel spin briefly.
procdetail::BarrierSlot* barrier_slot_for(Ctrl* c, const pgroup::ProcessorGroup& g) {
  std::uint64_t mask = 0;
  for (int m : g.members()) mask |= std::uint64_t{1} << m;
  std::uint64_t key = g.key();
  if (key == 0 || key == procdetail::kClaimKey) key ^= 0x9e3779b97f4a7c15ull;
  const auto n = static_cast<std::uint32_t>(g.size());
  const std::size_t start = key % procdetail::kBarrierSlots;
  for (int probe = 0; probe < procdetail::kBarrierSlots; ++probe) {
    procdetail::BarrierSlot& s =
        c->barriers[(start + static_cast<std::size_t>(probe)) % procdetail::kBarrierSlots];
    for (;;) {
      const std::uint64_t k = s.key.load(std::memory_order_acquire);
      if (k == procdetail::kClaimKey) {
        sleep_s(1e-6);  // another rank is mid-claim; its key lands in microseconds
        continue;
      }
      if (k == key) {
        if (s.members.load(std::memory_order_acquire) != mask ||
            s.size.load(std::memory_order_acquire) != n) {
          throw std::logic_error("ProcBackend: group key collision in barrier table for group " +
                                 g.to_string());
        }
        return &s;
      }
      if (k == 0) {
        std::uint64_t expect = 0;
        if (s.key.compare_exchange_strong(expect, procdetail::kClaimKey,
                                          std::memory_order_acq_rel)) {
          s.members.store(mask, std::memory_order_relaxed);
          s.size.store(n, std::memory_order_relaxed);
          s.key.store(key, std::memory_order_release);
          return &s;
        }
        continue;  // lost the claim race; re-examine this slot
      }
      break;  // different group; next probe
    }
  }
  throw std::runtime_error("ProcBackend: barrier slot table full (too many distinct groups)");
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / teardown

ProcBackend::ProcBackend(const machine::MachineConfig& config) : config_(config) {
  if (config_.num_procs <= 0 || config_.num_procs > procdetail::kMaxProcs) {
    throw std::invalid_argument("ProcBackend: num_procs must be in [1, " +
                                std::to_string(procdetail::kMaxProcs) + "]");
  }
  ctrl_bytes_ = sizeof(Ctrl);
  void* mem = ::mmap(nullptr, ctrl_bytes_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    throw std::runtime_error("ProcBackend: mmap of the shared control block failed");
  }
  ctrl_ = new (mem) Ctrl();
  pids_.assign(static_cast<std::size_t>(config_.num_procs), 0);
  t0_ = std::chrono::steady_clock::now();
}

ProcBackend::~ProcBackend() {
  if (monitor_.joinable()) {
    monitor_stop_.store(true, std::memory_order_release);
    monitor_.join();
  }
  // Children are reaped by run(); a child process never destroys the
  // backend (it leaves through _Exit). Atomics are trivially destructible.
  if (ctrl_ != nullptr && !is_child_) ::munmap(ctrl_, ctrl_bytes_);
}

void ProcBackend::reset_run_state() {
  Ctrl& c = *ctrl_;
  c.abort.store(0, std::memory_order_relaxed);
  c.err_claim.store(0, std::memory_order_relaxed);
  c.frozen.store(0, std::memory_order_relaxed);
  c.err[0] = '\0';
  c.progress.store(0, std::memory_order_relaxed);
  c.parked_n.store(0, std::memory_order_relaxed);
  c.finished_n.store(0, std::memory_order_relaxed);
  c.in_transit.store(0, std::memory_order_relaxed);
  c.io_lock.store(0, std::memory_order_relaxed);
  c.io_prev.store(-1, std::memory_order_relaxed);
  c.frozen_barrier_n = 0;
  for (int r = 0; r < num_procs(); ++r) {
    RankCtrl& rc = c.ranks[r];
    rc.parked.store(0, std::memory_order_relaxed);
    rc.reason.store(0, std::memory_order_relaxed);
    rc.done.store(0, std::memory_order_relaxed);
    rc.beats.store(0, std::memory_order_relaxed);
    rc.last_beat_bits.store(std::bit_cast<std::uint64_t>(-1.0), std::memory_order_relaxed);
    rc.mail_depth.store(0, std::memory_order_relaxed);
    rc.elapsed_s = rc.wait_s = 0.0;
    rc.blocks = rc.messages = rc.bytes = rc.barriers = 0;
  }
  for (auto& s : c.barriers) {
    s.key.store(0, std::memory_order_relaxed);
    s.members.store(0, std::memory_order_relaxed);
    s.size.store(0, std::memory_order_relaxed);
    s.arrived.store(0, std::memory_order_relaxed);
    s.epoch.store(0, std::memory_order_relaxed);
    s.waiting.store(0, std::memory_order_relaxed);
    s.last_arriver.store(-1, std::memory_order_relaxed);
    s.max_arrival_bits.store(0, std::memory_order_relaxed);
  }
  if (config_.record_traffic) {
    const std::size_t n = static_cast<std::size_t>(num_procs()) *
                          static_cast<std::size_t>(num_procs());
    for (std::size_t i = 0; i < n; ++i) c.traffic[i].store(0, std::memory_order_relaxed);
  }
  matched_.clear();
  ctrl_frames_.clear();
  barrier_epoch_.clear();
  wait_s_ = 0.0;
  blocks_ = messages_ = bytes_sent_ = barriers_ = 0;
  pids_.assign(static_cast<std::size_t>(num_procs()), 0);
}

// ---------------------------------------------------------------------------
// Clocks, heartbeats, abort

double ProcBackend::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
}

double ProcBackend::now(int rank) const {
  if (rank < 0 || rank >= num_procs()) {
    throw std::out_of_range("ProcBackend::now: bad rank " + std::to_string(rank));
  }
  // t0_ is set before the fork, and CLOCK_MONOTONIC is machine-global, so
  // every process reads (nearly) the same time base.
  return now_s();
}

int ProcBackend::current_rank() const {
  if (t_powner != this || t_prank < 0) {
    throw std::logic_error("ProcBackend: processor operation outside a processor body");
  }
  return t_prank;
}

void ProcBackend::charge(double /*seconds*/) {
  // Real time passes by itself; modeled cost parameters do not apply here.
}

void ProcBackend::beat() {
  RankCtrl& rc = ctrl_->ranks[t_prank];
  rc.last_beat_bits.store(std::bit_cast<std::uint64_t>(now_s()), std::memory_order_relaxed);
  rc.beats.fetch_add(1, std::memory_order_relaxed);
}

void ProcBackend::check_abort() const {
  if (ctrl_->abort.load(std::memory_order_acquire) != procdetail::kAbortNone) {
    throw AbortError{};
  }
}

// ---------------------------------------------------------------------------
// First-failure protocol

bool ProcBackend::fail_shm(std::uint32_t kind, const char* text) {
  Ctrl& c = *ctrl_;
  std::uint32_t expect = 0;
  if (!c.err_claim.compare_exchange_strong(expect, 1, std::memory_order_acq_rel)) {
    return false;  // someone failed first; their diagnosis stands
  }
  std::snprintf(c.err, procdetail::kErrBytes, "%s", text != nullptr ? text : "unknown error");
  // Freeze what explains the failure before the abort word lets every other
  // rank unwind into "finished".
  for (int r = 0; r < num_procs(); ++r) {
    const RankCtrl& rc = c.ranks[r];
    procdetail::FrozenRank& fr = c.frozen_ranks[r];
    const std::uint32_t reason = rc.reason.load(std::memory_order_acquire);
    fr.state = rc.done.load(std::memory_order_acquire) != 0 ? 2u : (reason != 0 ? 1u : 0u);
    fr.reason = reason;
    fr.mail_depth = rc.mail_depth.load(std::memory_order_relaxed);
    fr.last_beat = std::bit_cast<double>(rc.last_beat_bits.load(std::memory_order_relaxed));
  }
  std::uint32_t nb = 0;
  for (auto& s : c.barriers) {
    const std::uint64_t k = s.key.load(std::memory_order_acquire);
    if (k == 0 || k == procdetail::kClaimKey) continue;
    const auto arrived = s.arrived.load(std::memory_order_acquire);
    if (arrived == 0) continue;
    c.frozen_barriers[nb++] = procdetail::FrozenBarrier{
        k, static_cast<std::int32_t>(s.size.load(std::memory_order_relaxed)),
        static_cast<std::int32_t>(arrived)};
  }
  c.frozen_barrier_n = nb;
  c.frozen.store(1, std::memory_order_release);
  c.abort.store(kind, std::memory_order_seq_cst);
  wake_all_barriers();
  return true;
}

void ProcBackend::wake_all_barriers() {
  for (auto& s : ctrl_->barriers) futex_wake_all_u32(&s.epoch);
}

// ---------------------------------------------------------------------------
// Messaging

void ProcBackend::drain_channel() {
  if (!chan_) return;
  std::vector<net::Frame> frames;
  if (!chan_->drain(frames)) return;
  RankCtrl& rc = ctrl_->ranks[chan_->rank()];
  for (auto& f : frames) {
    if (f.kind == net::FrameKind::Data) {
      // Wire layout of a Data frame: [u64 trace id][f64 send time][payload].
      if (f.payload.size() < 16) continue;
      PendingMsg m;
      std::memcpy(&m.trace_id, f.payload.data(), 8);
      std::memcpy(&m.sent_at, f.payload.data() + 8, 8);
      f.payload.erase(f.payload.begin(), f.payload.begin() + 16);
      m.data = std::move(f.payload);
      matched_[MailKey{f.src, f.tag}].push_back(std::move(m));
      rc.mail_depth.fetch_add(1, std::memory_order_relaxed);
      ctrl_->in_transit.fetch_sub(1, std::memory_order_seq_cst);
    } else {
      ctrl_frames_.push_back(std::move(f));  // child residue; absorbed post-join
    }
  }
}

void ProcBackend::deposit(int dst, std::uint64_t tag, Payload data) {
  if (dst < 0 || dst >= num_procs()) {
    throw std::out_of_range("Machine::deposit: bad destination " + std::to_string(dst));
  }
  const int src = current_rank();
  check_abort();
  beat();
  const std::size_t nbytes = data.size();
  const double sent_at = now_s();
  std::uint64_t trace_id = 0;
  if (tracer_) trace_id = tracer_->message_sent(src, dst, tag, nbytes, sent_at, sent_at);
  messages_ += 1;
  bytes_sent_ += nbytes;
  if (config_.record_traffic) {
    ctrl_->traffic[static_cast<std::size_t>(src) * static_cast<std::size_t>(num_procs()) +
                   static_cast<std::size_t>(dst)]
        .fetch_add(nbytes, std::memory_order_relaxed);
  }

  if (dst == src) {
    // Self-sends never touch a transport: match locally, exactly like the
    // other backends' self-mailbox path.
    matched_[MailKey{src, tag}].push_back(PendingMsg{std::move(data), trace_id, sent_at});
    ctrl_->ranks[src].mail_depth.fetch_add(1, std::memory_order_relaxed);
  } else {
    std::vector<std::byte> buf;
    buf.reserve(16 + nbytes);
    put<std::uint64_t>(buf, trace_id);
    put<double>(buf, sent_at);
    put_raw(buf, data.data(), nbytes);
    // Count the frame in flight *before* it becomes drainable, so the
    // deadlock monitor can never see "all parked" with a message en route.
    ctrl_->in_transit.fetch_add(1, std::memory_order_seq_cst);
    try {
      chan_->send(dst, net::FrameKind::Data, tag, buf.data(), buf.size());
    } catch (const net::ChannelStopped&) {
      ctrl_->in_transit.fetch_sub(1, std::memory_order_seq_cst);
      throw AbortError{};
    }
  }
  ctrl_->progress.fetch_add(1, std::memory_order_seq_cst);
}

Payload ProcBackend::receive(int src, std::uint64_t tag) {
  if (src < 0 || src >= num_procs()) {
    throw std::out_of_range("Machine::receive: bad source " + std::to_string(src));
  }
  const int rank = current_rank();
  beat();
  const MailKey key{src, tag};
  const double entry = now_s();
  bool blocked = false;
  RankCtrl& rc = ctrl_->ranks[rank];

  for (;;) {
    check_abort();
    drain_channel();
    auto it = matched_.find(key);
    if (it != matched_.end() && !it->second.empty()) {
      PendingMsg m = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) matched_.erase(it);
      rc.mail_depth.fetch_sub(1, std::memory_order_relaxed);
      beat();
      if (blocked) {
        wait_s_ += now_s() - entry;
        blocks_ += 1;
      }
      if (tracer_ && m.trace_id != 0) {
        tracer_->message_received_at(m.trace_id, rank, src, m.sent_at, entry, now_s());
      }
      return std::move(m.data);
    }
    // Park on the channel doorbell. The bounded timeout keeps the loop
    // responsive to the abort word even without a wake.
    blocked = true;
    rc.reason.store(procdetail::kReasonRecv, std::memory_order_release);
    rc.parked.store(1, std::memory_order_seq_cst);
    ctrl_->parked_n.fetch_add(1, std::memory_order_seq_cst);
    chan_->wait(0.005);
    ctrl_->parked_n.fetch_sub(1, std::memory_order_seq_cst);
    rc.parked.store(0, std::memory_order_seq_cst);
    rc.reason.store(0, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// Subset barriers

void ProcBackend::barrier(const pgroup::ProcessorGroup& group) {
  const int rank = current_rank();
  if (!group.contains(rank)) {
    throw std::logic_error("Machine::barrier: proc " + std::to_string(rank) +
                           " is not a member of group " + group.to_string());
  }
  check_abort();
  beat();
  barriers_ += 1;
  const int n = group.size();
  if (n == 1) return;

  procdetail::BarrierSlot* slot = barrier_slot_for(ctrl_, group);
  const std::uint64_t episode = ++barrier_epoch_[group.key()];
  const auto want = static_cast<std::uint32_t>(episode);
  const int vrank = group.virtual_of(rank);
  const double arrived_at = now_s();
  slot->arrive_t[vrank] = arrived_at;
  RankCtrl& rc = ctrl_->ranks[rank];

  if (slot->arrived.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      static_cast<std::uint32_t>(n)) {
    // Root (the last arriver): publish the release cause, reset the slot
    // for the next episode, then bump the epoch and wake the waiters.
    int last = 0;
    double max_t = slot->arrive_t[0];
    for (int i = 1; i < n; ++i) {
      if (slot->arrive_t[i] >= max_t) {
        max_t = slot->arrive_t[i];
        last = i;
      }
    }
    slot->last_arriver.store(group.members()[static_cast<std::size_t>(last)],
                             std::memory_order_relaxed);
    slot->max_arrival_bits.store(std::bit_cast<std::uint64_t>(max_t),
                                 std::memory_order_relaxed);
    slot->arrived.store(0, std::memory_order_relaxed);
    slot->epoch.fetch_add(1, std::memory_order_seq_cst);
    ctrl_->progress.fetch_add(1, std::memory_order_seq_cst);
    futex_wake_all_u32(&slot->epoch);
  } else {
    rc.reason.store(procdetail::kReasonBarrier, std::memory_order_release);
    rc.parked.store(1, std::memory_order_seq_cst);
    ctrl_->parked_n.fetch_add(1, std::memory_order_seq_cst);
    slot->waiting.fetch_add(1, std::memory_order_seq_cst);
    for (;;) {
      const std::uint32_t seen = slot->epoch.load(std::memory_order_seq_cst);
      if (static_cast<std::int32_t>(seen - want) >= 0) break;
      if (ctrl_->abort.load(std::memory_order_acquire) != 0) break;
      futex_wait_u32(&slot->epoch, seen, 0.005);
      // Keep draining while parked so producers' rings never fill behind a
      // barrier (and control frames from finishing children keep moving).
      drain_channel();
    }
    slot->waiting.fetch_sub(1, std::memory_order_seq_cst);
    ctrl_->parked_n.fetch_sub(1, std::memory_order_seq_cst);
    rc.parked.store(0, std::memory_order_seq_cst);
    rc.reason.store(0, std::memory_order_release);
  }
  check_abort();
  beat();

  const double released_at = now_s();
  if (released_at > arrived_at) {
    wait_s_ += released_at - arrived_at;
    blocks_ += 1;
  }
  if (tracer_) {
    tracer_->barrier_record(
        group.key(), episode, rank, arrived_at, released_at,
        slot->last_arriver.load(std::memory_order_relaxed),
        std::bit_cast<double>(slot->max_arrival_bits.load(std::memory_order_relaxed)));
  }
}

// ---------------------------------------------------------------------------
// Loops and I/O

void ProcBackend::run_chunks(const pgroup::ProcessorGroup& group, std::int64_t lo,
                             std::int64_t hi, const ChunkBody& body) {
  const int rank = current_rank();
  const int v = group.virtual_of(rank);
  if (v < 0) {
    throw std::logic_error("Machine::run_chunks: proc " + std::to_string(rank) +
                           " is not a member of group " + group.to_string());
  }
  check_abort();
  if (hi <= lo) return;
  beat();
  // Static block schedule only: stealing would mean shipping the body
  // closure (and the owner's captured state) across address spaces.
  const auto [first, last] = loop_block(lo, hi, group.size(), v);
  if (first < last) body(first, last);
  beat();
}

void ProcBackend::io_operation(std::size_t bytes) {
  const int rank = current_rank();
  check_abort();
  beat();
  const double entry = now_s();
  RankCtrl& rc = ctrl_->ranks[rank];
  const auto token = static_cast<std::uint32_t>(rank) + 1;
  std::uint32_t expect = 0;
  if (!ctrl_->io_lock.compare_exchange_strong(expect, token, std::memory_order_acq_rel)) {
    rc.reason.store(procdetail::kReasonIo, std::memory_order_release);
    for (;;) {
      expect = 0;
      if (ctrl_->io_lock.compare_exchange_weak(expect, token, std::memory_order_acq_rel)) {
        break;
      }
      if (ctrl_->abort.load(std::memory_order_acquire) != 0) {
        rc.reason.store(0, std::memory_order_release);
        throw AbortError{};
      }
      sleep_s(20e-6);
    }
    rc.reason.store(0, std::memory_order_release);
    const double acquired = now_s();
    wait_s_ += acquired - entry;
    blocks_ += 1;
    if (tracer_) {
      const int prev = ctrl_->io_prev.load(std::memory_order_acquire);
      tracer_->io_wait(rank, entry, acquired, prev >= 0 ? prev : rank, entry);
    }
  }
  ctrl_->io_prev.store(rank, std::memory_order_relaxed);
  // One sequential device: the lock section is the serialization point;
  // the payload work itself happens in the caller, like the threaded engine.
  (void)bytes;
  ctrl_->io_lock.store(0, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// The run: fork, execute, monitor, merge

void ProcBackend::run(const std::function<void(int)>& body) {
  if (is_child_) {
    throw std::logic_error("ProcBackend::run: nested run inside a forked child");
  }
  reset_run_state();
  const int p = num_procs();
  t0_ = std::chrono::steady_clock::now();
  if (tracer_) tracer_->set_concurrent(p);

  transport_ = config_.transport == TransportKind::Tcp
                   ? std::unique_ptr<net::Transport>(std::make_unique<net::TcpTransport>(p))
                   : std::unique_ptr<net::Transport>(std::make_unique<net::ShmTransport>(p));
  chan_ = transport_->attach(0);
  chan_->set_stop(&ctrl_->abort);

  // Flush stdio so forked children never replay buffered parent output.
  std::fflush(stdout);
  std::fflush(stderr);
  for (int r = 1; r < p; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      fail_shm(procdetail::kAbortError, "ProcBackend: fork failed");
      break;  // already-forked children observe the abort word and exit
    }
    if (pid == 0) child_main(body, r);  // never returns
    pids_[static_cast<std::size_t>(r)] = pid;
  }
  monitor_stop_.store(false, std::memory_order_release);
  monitor_ = std::thread([this] { monitor_loop(); });

  // The parent doubles as rank 0 on the calling thread.
  t_powner = this;
  t_prank = 0;
  beat();
  std::exception_ptr my_err;
  bool i_failed_first = false;
  if (ctrl_->abort.load(std::memory_order_acquire) == 0) {
    try {
      body(0);
    } catch (const AbortError&) {
      // Unwound by someone else's failure; the shm error text stands.
    } catch (const std::exception& e) {
      my_err = std::current_exception();
      i_failed_first = fail_shm(procdetail::kAbortError, e.what());
    } catch (...) {
      my_err = std::current_exception();
      i_failed_first = fail_shm(procdetail::kAbortError, "unknown exception in processor body");
    }
  }
  finish_rank(0);
  ctrl_->ranks[0].done.store(1, std::memory_order_seq_cst);
  ctrl_->finished_n.fetch_add(1, std::memory_order_seq_cst);
  ctrl_->progress.fetch_add(1, std::memory_order_seq_cst);
  t_powner = nullptr;
  t_prank = -1;

  wait_for_children();
  monitor_stop_.store(true, std::memory_order_release);
  monitor_.join();
  reap_children();

  if (ctrl_->abort.load(std::memory_order_acquire) == 0) absorb_residue();
  if (tracer_) tracer_->merge_concurrent();
  chan_.reset();
  transport_.reset();

  const std::uint32_t aborted = ctrl_->abort.load(std::memory_order_acquire);
  if (aborted != 0) {
    const std::string text(ctrl_->err);
    if (aborted == procdetail::kAbortDeadlock) throw runtime::DeadlockError(text);
    if (i_failed_first && my_err) std::rethrow_exception(my_err);
    throw std::runtime_error(text);
  }
}

void ProcBackend::child_main(const std::function<void(int)>& body, int rank) {
  is_child_ = true;
  t_powner = this;
  t_prank = rank;
  // Parent-only bookkeeping inherited through fork must not act here.
  pids_.assign(pids_.size(), 0);
  matched_.clear();
  ctrl_frames_.clear();
  barrier_epoch_.clear();

  transport_->isolate(rank);
  chan_ = transport_->attach(rank);
  chan_->set_stop(&ctrl_->abort);

  // Fork-time baselines: copy-on-write hands this child the registry and
  // flight rings exactly as they stood at fork, so "what this rank did" is
  // precisely the end-state minus these.
  metrics::Snapshot fork_snap;
  if (metrics_) fork_snap = metrics_->registry.snapshot();
  const std::uint64_t fork_flight = flight_ ? flight_->ring_total(rank) : 0;

  beat();
  int code = 0;
  try {
    body(rank);
  } catch (const AbortError&) {
    code = 3;
  } catch (const net::ChannelStopped&) {
    code = 3;
  } catch (const std::exception& e) {
    fail_shm(procdetail::kAbortError, e.what());
    code = 2;
  } catch (...) {
    fail_shm(procdetail::kAbortError, "unknown exception in processor body");
    code = 2;
  }

  if (code == 0 && ctrl_->abort.load(std::memory_order_acquire) == 0) {
    finish_rank(rank);
    try {
      ship_residue(rank, fork_snap, fork_flight);
      ctrl_->ranks[rank].done.store(1, std::memory_order_seq_cst);
      ctrl_->finished_n.fetch_add(1, std::memory_order_seq_cst);
      ctrl_->progress.fetch_add(1, std::memory_order_seq_cst);
      // Done last: per-source FIFO guarantees rank 0 holds every residue
      // frame of this child once it sees the Done.
      chan_->send(0, net::FrameKind::Done, 0, nullptr, 0);
    } catch (...) {
      code = 3;  // aborted mid-residue; the parent reaps us either way
    }
  } else if (code == 0) {
    code = 3;
  }
  // _Exit, not exit: a forked child must not run the parent's atexit
  // handlers or static destructors.
  std::_Exit(code);
}

void ProcBackend::finish_rank(int rank) {
  RankCtrl& rc = ctrl_->ranks[rank];
  rc.elapsed_s = now_s();
  rc.wait_s = wait_s_;
  rc.blocks = blocks_;
  rc.messages = messages_;
  rc.bytes = bytes_sent_;
  rc.barriers = barriers_;
}

void ProcBackend::ship_residue(int rank, const metrics::Snapshot& fork_snap,
                               std::uint64_t fork_flight_total) {
  if (metrics_) {
    const auto blob = serialize_metrics_delta(fork_snap, metrics_->registry.snapshot());
    if (!blob.empty()) {
      chan_->send(0, net::FrameKind::Metrics, 0, blob.data(), blob.size());
    }
  }
  if (tracer_) {
    const auto blob = tracer_->serialize_shard(rank);
    chan_->send(0, net::FrameKind::Trace, 0, blob.data(), blob.size());
  }
  if (flight_) {
    const auto events = flight_->ring_events(rank);
    const std::uint64_t fresh = flight_->ring_total(rank) - fork_flight_total;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(fresh, events.size()));
    if (n > 0) {
      std::vector<std::byte> blob(n * sizeof(obs::FlightEvent));
      std::memcpy(blob.data(), events.data() + (events.size() - n),
                  n * sizeof(obs::FlightEvent));
      chan_->send(0, net::FrameKind::Flight, n, blob.data(), blob.size());
    }
  }
}

void ProcBackend::absorb_residue() {
  for (auto& f : ctrl_frames_) {
    switch (f.kind) {
      case net::FrameKind::Metrics:
        if (metrics_) {
          absorb_metrics_delta(metrics_->registry, f.payload.data(), f.payload.size());
        }
        break;
      case net::FrameKind::Trace:
        if (tracer_) tracer_->absorb_shard(f.payload.data(), f.payload.size());
        break;
      case net::FrameKind::Flight:
        if (flight_) {
          const std::size_t n = f.payload.size() / sizeof(obs::FlightEvent);
          for (std::size_t i = 0; i < n; ++i) {
            obs::FlightEvent e;
            std::memcpy(&e, f.payload.data() + i * sizeof(obs::FlightEvent),
                        sizeof(obs::FlightEvent));
            flight_->record(e.proc, e.kind, e.t, e.name, e.a, e.b);
          }
        }
        break;
      default:
        break;
    }
  }
  ctrl_frames_.clear();
}

void ProcBackend::wait_for_children() {
  const int p = num_procs();
  std::vector<char> got_done(static_cast<std::size_t>(p), 0);
  got_done[0] = 1;
  int ndone = 1;
  const auto scan = [&] {
    for (const auto& f : ctrl_frames_) {
      if (f.kind == net::FrameKind::Done && f.src >= 1 && f.src < p &&
          got_done[static_cast<std::size_t>(f.src)] == 0) {
        got_done[static_cast<std::size_t>(f.src)] = 1;
        ++ndone;
      }
    }
  };
  scan();  // Done frames can already sit here, drained during rank 0's body
  while (ndone < p) {
    if (ctrl_->abort.load(std::memory_order_acquire) != 0) return;  // reap takes over
    drain_channel();
    scan();
    if (ndone >= p) break;
    chan_->wait(0.01);
  }
}

void ProcBackend::reap_children() {
  for (std::size_t r = 1; r < pids_.size(); ++r) {
    const pid_t pid = pids_[r];
    if (pid <= 0) continue;
    int st = 0;
    bool reaped = false;
    // Children observing the abort word exit within milliseconds; give a
    // generous grace period, then SIGKILL whatever is stuck in user code.
    for (int i = 0; i < 2500; ++i) {
      const pid_t w = ::waitpid(pid, &st, WNOHANG);
      if (w == pid || (w < 0 && errno == ECHILD)) {
        reaped = true;
        break;
      }
      sleep_s(2e-3);
    }
    if (!reaped) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &st, 0);
    }
    pids_[r] = 0;
  }
}

void ProcBackend::monitor_loop() {
  const int p = num_procs();
  std::vector<char> dead(static_cast<std::size_t>(p), 0);

  const auto quiescent_now = [&]() -> bool {
    int done = 0, parked = 0;
    for (int r = 0; r < p; ++r) {
      const RankCtrl& rc = ctrl_->ranks[r];
      if (rc.done.load(std::memory_order_seq_cst) != 0) {
        ++done;
      } else if (rc.parked.load(std::memory_order_seq_cst) != 0) {
        ++parked;
      }
    }
    if (done >= p) return false;           // completing normally
    if (done + parked < p) return false;   // somebody is still running
    if (ctrl_->in_transit.load(std::memory_order_seq_cst) != 0) return false;
    return true;
  };

  while (!monitor_stop_.load(std::memory_order_acquire)) {
    sleep_s(2e-3);

    // Child death: a rank that exits before reporting done took its part of
    // the program with it — everyone else would block forever. WNOWAIT
    // keeps the zombie reapable by reap_children().
    for (int r = 1; r < p; ++r) {
      if (dead[static_cast<std::size_t>(r)] != 0) continue;
      const pid_t pid = pids_[static_cast<std::size_t>(r)];
      if (pid <= 0) continue;
      siginfo_t si;
      std::memset(&si, 0, sizeof si);
      if (::waitid(P_PID, static_cast<id_t>(pid), &si, WEXITED | WNOHANG | WNOWAIT) == 0 &&
          si.si_pid == pid) {
        dead[static_cast<std::size_t>(r)] = 1;
        if (ctrl_->ranks[r].done.load(std::memory_order_acquire) == 0 &&
            ctrl_->abort.load(std::memory_order_acquire) == 0) {
          char msg[192];
          if (si.si_code == CLD_EXITED) {
            std::snprintf(msg, sizeof msg,
                          "ProcBackend: child process for rank %d exited with status %d "
                          "before finishing",
                          r, si.si_status);
          } else {
            std::snprintf(msg, sizeof msg,
                          "ProcBackend: child process for rank %d killed by signal %d", r,
                          si.si_status);
          }
          fail_shm(procdetail::kAbortError, msg);
        }
      }
    }

    if (ctrl_->abort.load(std::memory_order_acquire) != 0) continue;

    // Deadlock: the same quiescence rule as the threaded engine — every
    // unfinished rank parked, nothing in transit, and no progress across
    // two samples far enough apart that any delivered wakeup would have
    // been consumed (the park loops re-check on a 5 ms period).
    const std::uint64_t snap = progress();
    if (!quiescent_now()) continue;
    sleep_s(10e-3);
    if (monitor_stop_.load(std::memory_order_acquire)) break;
    if (ctrl_->abort.load(std::memory_order_acquire) != 0) continue;
    if (!quiescent_now() || progress() != snap) continue;

    std::string detail = "deadlock: all processors blocked.";
    for (int r = 0; r < p; ++r) {
      const RankCtrl& rc = ctrl_->ranks[r];
      const char* reason =
          rc.done.load(std::memory_order_acquire) != 0
              ? "finished"
              : reason_name(rc.reason.load(std::memory_order_acquire));
      detail += "\n  proc " + std::to_string(r) + ": " + (reason[0] != '\0' ? reason : "running");
    }
    fail_shm(procdetail::kAbortDeadlock, detail.c_str());
  }
}

// ---------------------------------------------------------------------------
// Introspection and stats

obs::Introspection ProcBackend::introspect() const {
  obs::Introspection out;
  out.now = now_s();
  const int p = num_procs();
  out.workers.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const RankCtrl& rc = ctrl_->ranks[r];
    obs::WorkerState ws;
    ws.rank = r;
    const std::uint32_t reason = rc.reason.load(std::memory_order_acquire);
    if (rc.done.load(std::memory_order_acquire) != 0) {
      ws.state = "finished";
    } else if (reason != 0) {
      ws.state = "parked";
      ws.block_reason = reason_name(reason);
    } else {
      ws.state = "running";
    }
    ws.mailbox_depth = rc.mail_depth.load(std::memory_order_relaxed);
    ws.last_beat = std::bit_cast<double>(rc.last_beat_bits.load(std::memory_order_relaxed));
    out.workers.push_back(std::move(ws));
  }
  for (const auto& s : ctrl_->barriers) {
    const std::uint64_t k = s.key.load(std::memory_order_acquire);
    if (k == 0 || k == procdetail::kClaimKey) continue;
    const auto arrived = s.arrived.load(std::memory_order_acquire);
    if (arrived == 0) continue;
    out.barriers.push_back(obs::BarrierOccupancy{
        k, static_cast<int>(s.size.load(std::memory_order_relaxed)),
        static_cast<int>(arrived)});
  }
  return out;
}

obs::Introspection ProcBackend::failure_introspection() const {
  obs::Introspection out;
  if (ctrl_->frozen.load(std::memory_order_acquire) == 0) return out;
  out.now = now_s();
  const int p = num_procs();
  out.workers.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const procdetail::FrozenRank& fr = ctrl_->frozen_ranks[r];
    obs::WorkerState ws;
    ws.rank = r;
    ws.state = fr.state == 2 ? "finished" : fr.state == 1 ? "parked" : "running";
    if (fr.state == 1) ws.block_reason = reason_name(fr.reason);
    ws.mailbox_depth = fr.mail_depth;
    ws.last_beat = fr.last_beat;
    out.workers.push_back(std::move(ws));
  }
  const std::uint32_t nb =
      std::min<std::uint32_t>(ctrl_->frozen_barrier_n, procdetail::kBarrierSlots);
  for (std::uint32_t i = 0; i < nb; ++i) {
    const procdetail::FrozenBarrier& fb = ctrl_->frozen_barriers[i];
    out.barriers.push_back(obs::BarrierOccupancy{fb.key, fb.size, fb.waiting});
  }
  return out;
}

std::uint64_t ProcBackend::progress() const noexcept {
  std::uint64_t total = ctrl_->progress.load(std::memory_order_seq_cst) +
                        static_cast<std::uint64_t>(
                            ctrl_->finished_n.load(std::memory_order_seq_cst));
  for (int r = 0; r < num_procs(); ++r) {
    total += ctrl_->ranks[r].beats.load(std::memory_order_relaxed);
  }
  return total;
}

BackendStats ProcBackend::stats() const {
  BackendStats s;
  const int p = num_procs();
  s.clocks.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const RankCtrl& rc = ctrl_->ranks[r];
    runtime::ProcClock c;
    c.now = rc.elapsed_s;
    c.busy = std::max(0.0, rc.elapsed_s - rc.wait_s);
    c.idle = rc.wait_s;
    c.blocks = rc.blocks;
    s.clocks.push_back(c);
    s.finish_time = std::max(s.finish_time, rc.elapsed_s);
    s.messages += rc.messages;
    s.bytes += rc.bytes;
    s.barriers += rc.barriers;
    s.wait_ms += rc.wait_s * 1e3;
  }
  if (config_.record_traffic) {
    s.traffic.resize(static_cast<std::size_t>(p) * static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < s.traffic.size(); ++i) {
      s.traffic[i] = ctrl_->traffic[i].load(std::memory_order_relaxed);
    }
  }
  return s;
}

}  // namespace fxpar::exec
