#include "exec/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <thread>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#include <sys/mman.h>

#include <filesystem>
#endif

namespace fxpar::exec {

const char* pin_policy_name(PinPolicy p) noexcept {
  switch (p) {
    case PinPolicy::None: return "none";
    case PinPolicy::Compact: return "compact";
    case PinPolicy::Scatter: return "scatter";
    case PinPolicy::Numa: return "numa";
  }
  return "?";
}

bool parse_pin_policy(const std::string& name, PinPolicy& out) noexcept {
  if (name == "none") {
    out = PinPolicy::None;
  } else if (name == "compact") {
    out = PinPolicy::Compact;
  } else if (name == "scatter") {
    out = PinPolicy::Scatter;
  } else if (name == "numa") {
    out = PinPolicy::Numa;
  } else {
    return false;
  }
  return true;
}

std::vector<int> parse_cpulist(const std::string& s) {
  std::vector<int> cpus;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    // Trim whitespace (sysfs lines end in '\n').
    const auto b = item.find_first_not_of(" \t\n\r");
    if (b == std::string::npos) continue;
    const auto e = item.find_last_not_of(" \t\n\r");
    item = item.substr(b, e - b + 1);
    const auto dash = item.find('-');
    if (dash == std::string::npos) {
      cpus.push_back(std::stoi(item));
    } else {
      const int lo = std::stoi(item.substr(0, dash));
      const int hi = std::stoi(item.substr(dash + 1));
      for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

namespace {

HostTopology flat_fallback() {
  HostTopology t;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  HostTopology::Node n;
  n.id = 0;
  n.cpus.resize(hw);
  for (unsigned c = 0; c < hw; ++c) n.cpus[c] = static_cast<int>(c);
  t.nodes.push_back(std::move(n));
  return t;
}

}  // namespace

HostTopology HostTopology::detect() {
  if (std::getenv("FX_NO_NUMA") != nullptr) return flat_fallback();
#ifdef __linux__
  HostTopology t;
  try {
    namespace fs = std::filesystem;
    const fs::path root("/sys/devices/system/node");
    if (!fs::exists(root)) return flat_fallback();
    for (const auto& entry : fs::directory_iterator(root)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("node", 0) != 0 || name.size() <= 4) continue;
      bool digits = true;
      for (std::size_t i = 4; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9') digits = false;
      }
      if (!digits) continue;
      std::ifstream cl(entry.path() / "cpulist");
      if (!cl) continue;
      std::string line;
      std::getline(cl, line);
      Node n;
      n.id = std::stoi(name.substr(4));
      n.cpus = parse_cpulist(line);
      if (!n.cpus.empty()) t.nodes.push_back(std::move(n));
    }
  } catch (...) {
    return flat_fallback();
  }
  if (t.nodes.empty()) return flat_fallback();
  std::sort(t.nodes.begin(), t.nodes.end(),
            [](const Node& a, const Node& b) { return a.id < b.id; });
  return t;
#else
  return flat_fallback();
#endif
}

HostTopology HostTopology::synthetic(int nnodes, int cpus_per_node) {
  HostTopology t;
  int cpu = 0;
  for (int nd = 0; nd < nnodes; ++nd) {
    Node n;
    n.id = nd;
    for (int c = 0; c < cpus_per_node; ++c) n.cpus.push_back(cpu++);
    t.nodes.push_back(std::move(n));
  }
  return t;
}

std::vector<WorkerPlacement> make_pin_plan(const HostTopology& topo, PinPolicy policy,
                                           int workers) {
  std::vector<WorkerPlacement> plan(static_cast<std::size_t>(std::max(workers, 0)));
  if (policy == PinPolicy::None || workers <= 0 || topo.num_cpus() == 0) return plan;

  // Flatten (cpu, node) pairs in the order the policy consumes them; a
  // worker w gets pair w % pairs.size() (wrap on oversubscription).
  std::vector<WorkerPlacement> order;
  order.reserve(static_cast<std::size_t>(topo.num_cpus()));
  switch (policy) {
    case PinPolicy::Compact:
      // Node 0's CPUs, then node 1's, ...
      for (const auto& nd : topo.nodes) {
        for (int c : nd.cpus) order.push_back({c, nd.id});
      }
      break;
    case PinPolicy::Scatter: {
      // Round-robin across nodes: one CPU from each node in turn.
      std::size_t level = 0;
      for (bool any = true; any; ++level) {
        any = false;
        for (const auto& nd : topo.nodes) {
          if (level < nd.cpus.size()) {
            order.push_back({nd.cpus[level], nd.id});
            any = true;
          }
        }
      }
      break;
    }
    case PinPolicy::Numa: {
      // Contiguous worker blocks per node: workers [0, k) on node 0,
      // [k, 2k) on node 1, ... sized proportionally to each node's CPUs.
      // This matches block-distributed first-touch data: neighboring
      // ranks (who exchange halos) share a node. Implemented by emitting
      // the compact order but consumed blockwise below.
      for (const auto& nd : topo.nodes) {
        for (int c : nd.cpus) order.push_back({c, nd.id});
      }
      break;
    }
    case PinPolicy::None: break;  // unreachable
  }
  if (order.empty()) return plan;

  if (policy == PinPolicy::Numa && topo.num_nodes() > 1) {
    // Deal workers into per-node contiguous blocks proportional to node
    // CPU counts, then round-robin inside each node's CPU list.
    const int total_cpus = topo.num_cpus();
    int assigned = 0;
    for (int nd_i = 0; nd_i < topo.num_nodes(); ++nd_i) {
      const auto& nd = topo.nodes[static_cast<std::size_t>(nd_i)];
      const bool last = nd_i == topo.num_nodes() - 1;
      // Proportional share, rounding so the blocks tile [0, workers).
      const int share =
          last ? workers - assigned
               : static_cast<int>((static_cast<long long>(workers) *
                                   static_cast<long long>(nd.cpus.size()) + total_cpus / 2) /
                                  total_cpus);
      for (int k = 0; k < share && assigned < workers; ++k, ++assigned) {
        const int cpu = nd.cpus[static_cast<std::size_t>(k) % nd.cpus.size()];
        plan[static_cast<std::size_t>(assigned)] = {cpu, nd.id};
      }
    }
    // Rounding can leave a tail unassigned only if every share was 0;
    // fall back to compact wrap for any remainder.
    for (int w = assigned; w < workers; ++w) {
      plan[static_cast<std::size_t>(w)] =
          order[static_cast<std::size_t>(w) % order.size()];
    }
    return plan;
  }

  for (int w = 0; w < workers; ++w) {
    plan[static_cast<std::size_t>(w)] = order[static_cast<std::size_t>(w) % order.size()];
  }
  return plan;
}

bool pin_current_thread(const WorkerPlacement& p) noexcept {
  if (p.cpu < 0) return false;
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(p.cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

namespace detail {

void* first_touch_alloc(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
#ifdef __linux__
  if (bytes >= kFirstTouchMmapBytes) {
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) throw std::bad_alloc();
    return p;
  }
#endif
  return ::operator new(bytes);
}

void first_touch_free(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
#ifdef __linux__
  if (bytes >= kFirstTouchMmapBytes) {
    ::munmap(p, bytes);
    return;
  }
#endif
  ::operator delete(p);
}

}  // namespace detail

}  // namespace fxpar::exec
