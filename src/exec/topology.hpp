// fxexec: host NUMA/CPU topology probe and worker-pinning policies.
//
// The threaded backend runs one OS thread per logical processor; where the
// kernel schedules those threads decides which memory controller serves
// their first-touch pages. This header provides
//
//   - HostTopology: the machine's NUMA nodes and their CPUs, parsed from
//     /sys/devices/system/node on Linux. When the sysfs tree is absent,
//     the machine has a single node, or the FX_NO_NUMA environment
//     variable is set, the probe degrades to one flat node holding every
//     CPU — every policy below keeps working, it just loses the
//     node-awareness.
//
//   - PinPolicy: how MachineConfig::pinning places workers on CPUs.
//       none    — no affinity calls at all (the default; test runners
//                 oversubscribe the host with many concurrent Machines).
//       compact — fill node 0's CPUs first, then node 1, ... Minimizes
//                 the number of nodes touched; best for communication-
//                 heavy runs that fit on one node.
//       scatter — round-robin across nodes. Maximizes aggregate memory
//                 bandwidth for bandwidth-bound data parallel loops.
//       numa    — contiguous blocks of workers per node (workers 0..k-1
//                 on node 0, ...), matching the first-touch placement of
//                 block-distributed DistArrays: neighboring ranks share a
//                 node, so halo traffic stays node-local.
//     Workers wrap around when there are more of them than CPUs.
//
//   - FirstTouchAllocator: a std::vector-compatible allocator that mmaps
//     large blocks, so pages are faulted in by the first *writing* thread
//     and land on that thread's NUMA node — which, combined with pinning,
//     gives each worker node-local array storage with no libnuma
//     dependency.
//
// Pinning is a host-side placement concern only: it never changes modeled
// time, message order, or any computed result on either backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <vector>

namespace fxpar::exec {

/// Worker-thread placement policy of the threaded backend.
enum class PinPolicy : std::uint8_t { None, Compact, Scatter, Numa };

/// "none" / "compact" / "scatter" / "numa" (stable spelling used by bench
/// records and CLIs).
const char* pin_policy_name(PinPolicy p) noexcept;

/// Parses a policy name; returns false (leaving `out` untouched) on an
/// unknown spelling.
bool parse_pin_policy(const std::string& name, PinPolicy& out) noexcept;

/// The host's NUMA shape: every node with its CPUs, ascending node id.
struct HostTopology {
  struct Node {
    int id = 0;
    std::vector<int> cpus;  ///< ascending CPU ids
  };
  std::vector<Node> nodes;

  int num_cpus() const noexcept {
    std::size_t n = 0;
    for (const Node& nd : nodes) n += nd.cpus.size();
    return static_cast<int>(n);
  }
  int num_nodes() const noexcept { return static_cast<int>(nodes.size()); }
  /// True when the probe saw no NUMA structure (one node or fallback).
  bool flat() const noexcept { return nodes.size() <= 1; }

  /// Probes /sys/devices/system/node. Falls back to one flat node with
  /// hardware_concurrency() CPUs when the tree is unreadable, on non-Linux
  /// hosts, or when the FX_NO_NUMA environment variable is set (the
  /// escape hatch for broken sysfs or containerized runners).
  static HostTopology detect();

  /// A synthetic topology for tests: `cpus_per_node` CPUs on each of
  /// `nnodes` nodes, CPU ids dealt out contiguously per node.
  static HostTopology synthetic(int nnodes, int cpus_per_node);
};

/// Where one worker thread was placed: the CPU it is pinned to (-1 when
/// unpinned) and the NUMA node of that CPU (-1 when unknown).
struct WorkerPlacement {
  int cpu = -1;
  int node = -1;
};

/// The placement of `workers` worker threads under `policy`. PinPolicy::None
/// returns all-unpinned placements; the other policies wrap around when
/// there are more workers than CPUs. Deterministic: same topology + policy
/// + count always yields the same plan.
std::vector<WorkerPlacement> make_pin_plan(const HostTopology& topo, PinPolicy policy,
                                           int workers);

/// Applies `p` to the calling thread via pthread_setaffinity_np. Returns
/// false when `p` is unpinned, the platform has no affinity call, or the
/// kernel rejected the mask (e.g. the CPU is outside the process's cgroup
/// cpuset) — callers treat failure as "run unpinned", never as an error.
bool pin_current_thread(const WorkerPlacement& p) noexcept;

/// Parses a sysfs cpulist string ("0-3,8,10-11") into ascending CPU ids.
/// Exposed for tests; tolerant of trailing whitespace/newline.
std::vector<int> parse_cpulist(const std::string& s);

namespace detail {
/// Allocation backend of FirstTouchAllocator: mmap for blocks of at least
/// kFirstTouchMmapBytes (fresh anonymous pages fault on the first writer's
/// node), operator new below that (small blocks don't justify a syscall
/// and page-granular rounding).
inline constexpr std::size_t kFirstTouchMmapBytes = 64 * 1024;
void* first_touch_alloc(std::size_t bytes);
void first_touch_free(void* p, std::size_t bytes) noexcept;
}  // namespace detail

/// std::allocator drop-in whose large blocks come from fresh anonymous
/// mmap pages, so physical placement follows the first writing thread
/// (the NUMA "first touch" rule). DistArray routes its local storage
/// through this: each worker constructs and fills its own block, so with
/// a pinning policy active the block lands on the worker's own node.
template <typename T>
struct FirstTouchAllocator {
  using value_type = T;

  FirstTouchAllocator() noexcept = default;
  template <typename U>
  FirstTouchAllocator(const FirstTouchAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(detail::first_touch_alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    detail::first_touch_free(p, n * sizeof(T));
  }

  friend bool operator==(const FirstTouchAllocator&, const FirstTouchAllocator&) noexcept {
    return true;
  }
};

}  // namespace fxpar::exec
