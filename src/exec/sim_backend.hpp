// fxexec: the discrete-event simulator as an execution backend.
//
// SimBackend packages the original fxpar execution engine — one fiber per
// logical processor scheduled by the deterministic Simulator, mailboxes
// with modeled arrival times, content-keyed subset barriers and the
// serialized I/O device — behind the Backend seam. It is the authority on
// *modeled* machine time: all cost-model parameters of MachineConfig are
// charged here, and a given program produces bit-identical schedules and
// timings on every run.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "exec/backend.hpp"
#include "machine/config.hpp"

namespace fxpar::exec {

class SimBackend final : public Backend {
 public:
  explicit SimBackend(const machine::MachineConfig& config);
  ~SimBackend() override;

  BackendKind kind() const noexcept override { return BackendKind::Sim; }
  int num_procs() const noexcept override { return config_.num_procs; }

  void run(const std::function<void(int)>& body) override;
  void set_tracer(trace::TraceRecorder* tracer) noexcept override;
  double now(int rank) const override;
  BackendStats stats() const override;
  /// Like the rest of the simulator, NOT thread-safe against a running
  /// run(): call from the run thread only — after a deadlock/abort
  /// propagated (the other fibers stay suspended with their block reasons
  /// intact), or between runs. The Machine's diagnostic paths honor this.
  obs::Introspection introspect() const override;
  std::uint64_t progress() const noexcept override { return progress_; }

  int current_rank() const override;
  void charge(double seconds) override;
  void deposit(int dst, std::uint64_t tag, Payload data) override;
  Payload receive(int src, std::uint64_t tag) override;
  void barrier(const pgroup::ProcessorGroup& group) override;
  void io_operation(std::size_t bytes) override;
  void run_chunks(const pgroup::ProcessorGroup& group, std::int64_t lo, std::int64_t hi,
                  const ChunkBody& body) override;

  /// The underlying event simulator (modeled clocks, block/wake).
  runtime::Simulator& sim() noexcept { return *sim_; }

 private:
  struct MailKey {
    int src;
    std::uint64_t tag;
    friend auto operator<=>(const MailKey&, const MailKey&) = default;
  };
  struct Message {
    Payload data;
    runtime::SimTime arrival = 0.0;
    std::uint64_t trace_id = 0;  ///< TraceRecorder message id (0 = untraced)
  };
  struct WaitState {
    bool waiting = false;
    MailKey key{};
  };
  struct BarrierState {
    int size = 0;  ///< group size (for occupancy introspection)
    int arrived = 0;
    runtime::SimTime max_arrival = 0.0;
    int last_arriver = -1;       ///< proc whose modeled arrival is max_arrival
    std::vector<int> waiting;    ///< physical ranks blocked in this barrier
    std::uint64_t trace_id = 0;  ///< TraceRecorder barrier id (0 = untraced)
  };

  machine::MachineConfig config_;
  std::unique_ptr<runtime::Simulator> sim_;
  trace::TraceRecorder* tracer_ = nullptr;
  std::vector<std::map<MailKey, std::deque<Message>>> mailboxes_;
  std::vector<WaitState> waits_;
  std::map<std::uint64_t, BarrierState> barriers_;  ///< keyed by group key
  runtime::SimTime io_available_ = 0.0;
  int io_prev_proc_ = -1;  ///< owner of the last I/O operation (for tracing)
  bool ran_ = false;       ///< a completed run means reruns need a fresh simulator

  std::uint64_t stat_messages_ = 0;
  std::uint64_t stat_bytes_ = 0;
  std::uint64_t stat_barriers_ = 0;
  std::vector<std::uint64_t> stat_traffic_;  ///< src * P + dst, if recording
  /// Service-activity stamp for Backend::progress(). Plain (not atomic):
  /// the simulator runs on one thread and the Machine never polls a sim
  /// run from a watchdog.
  std::uint64_t progress_ = 0;
};

}  // namespace fxpar::exec
