#include "exec/sim_backend.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "metrics/runtime_metrics.hpp"
#include "trace/trace.hpp"

namespace fxpar::exec {

const char* backend_kind_name(BackendKind k) noexcept {
  switch (k) {
    case BackendKind::Sim: return "sim";
    case BackendKind::Threads: return "threads";
    case BackendKind::Proc: return "proc";
  }
  return "?";
}

const char* transport_kind_name(TransportKind t) noexcept {
  switch (t) {
    case TransportKind::Shm: return "shm";
    case TransportKind::Tcp: return "tcp";
  }
  return "?";
}

SimBackend::SimBackend(const machine::MachineConfig& config) : config_(config) {
  sim_ = std::make_unique<runtime::Simulator>(config_.num_procs, config_.stack_bytes);
  mailboxes_.resize(static_cast<std::size_t>(config_.num_procs));
  waits_.resize(static_cast<std::size_t>(config_.num_procs));
  if (config_.record_traffic) {
    stat_traffic_.assign(static_cast<std::size_t>(config_.num_procs) *
                             static_cast<std::size_t>(config_.num_procs),
                         0);
  }
}

SimBackend::~SimBackend() = default;

void SimBackend::set_tracer(trace::TraceRecorder* tracer) noexcept {
  tracer_ = tracer;
  sim_->set_tracer(tracer);
}

double SimBackend::now(int rank) const { return sim_->clock(rank).now; }

int SimBackend::current_rank() const { return sim_->current_rank(); }

void SimBackend::charge(double seconds) {
  sim_->advance(seconds);
  // Accumulated modeled compute. All fibers run on the simulator's one OS
  // thread, so the gauge's single-writer contract holds.
  if (metrics_ && seconds > 0.0) metrics_->modeled_busy_s->add(seconds);
}

void SimBackend::run(const std::function<void(int)>& body) {
  if (ran_) {
    // A finished simulator cannot respawn its ranks; reruns (e.g. a Machine
    // accumulating metrics across programs) get a fresh one, like the
    // threaded backend's reset_run_state(). Modeled clocks restart at zero.
    sim_ = std::make_unique<runtime::Simulator>(config_.num_procs, config_.stack_bytes);
    sim_->set_tracer(tracer_);
    mailboxes_.assign(static_cast<std::size_t>(config_.num_procs), {});
    waits_.assign(static_cast<std::size_t>(config_.num_procs), {});
    barriers_.clear();
    io_available_ = 0.0;
    io_prev_proc_ = -1;
    stat_messages_ = 0;
    stat_bytes_ = 0;
    stat_barriers_ = 0;
    progress_ = 0;
    if (config_.record_traffic) {
      stat_traffic_.assign(static_cast<std::size_t>(config_.num_procs) *
                               static_cast<std::size_t>(config_.num_procs),
                           0);
    }
  }
  ran_ = true;
  for (int r = 0; r < num_procs(); ++r) {
    sim_->spawn(r, [&body, r] { body(r); });
  }
  sim_->run();
}

obs::Introspection SimBackend::introspect() const {
  obs::Introspection out;
  const int p = num_procs();
  out.workers.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    obs::WorkerState ws;
    ws.rank = r;
    if (sim_->is_finished(r)) {
      ws.state = "finished";
    } else if (sim_->is_blocked(r)) {
      ws.state = "parked";
      ws.block_reason = sim_->block_reason(r);
    } else {
      ws.state = "running";
    }
    for (const auto& [key, q] : mailboxes_[static_cast<std::size_t>(r)]) {
      ws.mailbox_depth += static_cast<std::int64_t>(q.size());
    }
    // The modeled clock doubles as the heartbeat: it stamps the last
    // moment this processor executed or was charged time.
    ws.last_beat = sim_->clock(r).now;
    out.now = std::max(out.now, sim_->clock(r).now);
    out.workers.push_back(std::move(ws));
  }
  for (const auto& [key, st] : barriers_) {
    if (st.arrived > 0) {
      out.barriers.push_back(obs::BarrierOccupancy{key, st.size, st.arrived});
    }
  }
  return out;
}

BackendStats SimBackend::stats() const {
  BackendStats s;
  s.finish_time = sim_->finish_time();
  s.clocks.reserve(static_cast<std::size_t>(num_procs()));
  for (int r = 0; r < num_procs(); ++r) s.clocks.push_back(sim_->clock(r));
  s.messages = stat_messages_;
  s.bytes = stat_bytes_;
  s.barriers = stat_barriers_;
  s.traffic = stat_traffic_;
  return s;
}

void SimBackend::deposit(int dst, std::uint64_t tag, Payload data) {
  if (dst < 0 || dst >= num_procs()) {
    throw std::out_of_range("Machine::deposit: bad destination " + std::to_string(dst));
  }
  const int src = sim_->current_rank();
  const std::size_t bytes = data.size();
  // Sender-side costs: software overhead plus wire serialization.
  const runtime::SimTime send_start = sim_->now();
  sim_->advance(config_.send_overhead + static_cast<double>(bytes) * config_.byte_time);
  const runtime::SimTime arrival = sim_->now() + config_.latency;

  Message msg{std::move(data), arrival, 0};
  if (tracer_) {
    msg.trace_id = tracer_->message_sent(src, dst, tag, bytes, send_start, sim_->now());
  }
  const MailKey key{src, tag};
  mailboxes_[static_cast<std::size_t>(dst)][key].push_back(std::move(msg));
  stat_messages_ += 1;
  stat_bytes_ += bytes;
  progress_ += 1;
  if (!stat_traffic_.empty()) {
    stat_traffic_[static_cast<std::size_t>(src) * static_cast<std::size_t>(num_procs()) +
                  static_cast<std::size_t>(dst)] += bytes;
  }

  WaitState& w = waits_[static_cast<std::size_t>(dst)];
  if (w.waiting && w.key == key && sim_->is_blocked(dst)) {
    w.waiting = false;
    sim_->wake(dst, arrival);
  }
}

Payload SimBackend::receive(int src, std::uint64_t tag) {
  if (src < 0 || src >= num_procs()) {
    throw std::out_of_range("Machine::receive: bad source " + std::to_string(src));
  }
  const int dst = sim_->current_rank();
  const MailKey key{src, tag};
  auto& box = mailboxes_[static_cast<std::size_t>(dst)];
  const runtime::SimTime recv_entry = sim_->now();
  for (;;) {
    auto it = box.find(key);
    if (it != box.end() && !it->second.empty()) {
      Message msg = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) box.erase(it);
      sim_->advance_to(msg.arrival);
      if (tracer_ && msg.trace_id != 0) {
        tracer_->message_received(msg.trace_id, recv_entry, sim_->now());
      }
      sim_->advance(config_.recv_overhead);
      progress_ += 1;
      return std::move(msg.data);
    }
    WaitState& w = waits_[static_cast<std::size_t>(dst)];
    w.waiting = true;
    w.key = key;
    sim_->block("recv from proc " + std::to_string(src) + " tag " + std::to_string(tag));
    // Re-check: wakeups are edge-triggered on the matching deposit, but the
    // loop guards against future conservative wake policies.
  }
}

void SimBackend::barrier(const pgroup::ProcessorGroup& group) {
  const int me = sim_->current_rank();
  if (!group.contains(me)) {
    throw std::logic_error("Machine::barrier: proc " + std::to_string(me) +
                           " is not a member of group " + group.to_string());
  }
  stat_barriers_ += 1;
  progress_ += 1;
  const int n = group.size();
  const double cost =
      config_.barrier_base +
      config_.barrier_stage * std::ceil(std::log2(static_cast<double>(std::max(n, 2))));
  if (n == 1) {
    sim_->advance(config_.barrier_base);
    return;
  }
  BarrierState& st = barriers_[group.key()];
  st.size = n;
  if (tracer_) {
    if (st.arrived == 0) st.trace_id = tracer_->barrier_open(group.key());
    tracer_->barrier_arrive(st.trace_id, me, sim_->now());
  }
  st.arrived += 1;
  // The happens-before cause of the release is the proc with the latest
  // *modeled* arrival, which need not be the fiber that executes last.
  if (st.last_arriver < 0 || sim_->now() >= st.max_arrival) st.last_arriver = me;
  st.max_arrival = std::max(st.max_arrival, sim_->now());
  if (st.arrived < n) {
    st.waiting.push_back(me);
    sim_->block("barrier on group " + group.to_string());
    return;  // woken by the last arriver with the clock already advanced
  }
  // Last arriver: release everyone.
  const runtime::SimTime release = st.max_arrival + cost;
  if (tracer_) tracer_->barrier_release(st.trace_id, st.last_arriver, st.max_arrival, release);
  std::vector<int> waiting = std::move(st.waiting);
  barriers_.erase(group.key());
  for (int r : waiting) sim_->wake(r, release);
  sim_->advance_to(release);
}

void SimBackend::run_chunks(const pgroup::ProcessorGroup& group, std::int64_t lo,
                            std::int64_t hi, const ChunkBody& body) {
  const int me = sim_->current_rank();
  const int v = group.virtual_of(me);
  if (v < 0) {
    throw std::logic_error("Machine::run_chunks: proc " + std::to_string(me) +
                           " is not a member of group " + group.to_string());
  }
  if (hi <= lo) return;
  // The static schedule: the caller's whole block as one chunk. No
  // synchronization, no stealing — deterministic programs behave exactly as
  // if they had looped over loop_block() inline (which is what the seed
  // parallel_for did).
  const auto [first, last] = loop_block(lo, hi, group.size(), v);
  if (first < last) body(first, last);
}

void SimBackend::io_operation(std::size_t bytes) {
  progress_ += 1;
  const double entry = sim_->now();
  const double start = std::max(entry, io_available_);
  const double done = start + config_.io_latency +
                      static_cast<double>(bytes) * config_.io_byte_time;
  if (tracer_) {
    const int me = sim_->current_rank();
    // When queued behind an earlier operation, the happens-before edge
    // points at its owner; otherwise the stall is the device itself.
    const bool queued = start > entry && io_prev_proc_ >= 0;
    tracer_->io_wait(me, entry, done, queued ? io_prev_proc_ : me,
                     queued ? io_available_ : entry);
    io_prev_proc_ = me;
  }
  io_available_ = done;
  sim_->advance_to(done);
}

}  // namespace fxpar::exec
