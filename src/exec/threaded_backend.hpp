// fxexec: real shared-memory threaded execution backend.
//
// ThreadedBackend runs the same Fx programs as the simulator, but each
// logical processor is a real OS thread and every machine service is built
// on shared memory:
//
//  - Messaging: one MPSC mailbox per processor. Producers push message
//    nodes onto a lock-free Treiber stack (the inbox); the owning worker
//    drains it, restores arrival order, and files messages under
//    (source, tag) — the same FIFO matching discipline as the simulator,
//    which is what makes deterministic programs produce bit-identical
//    payloads on both engines. A worker with no matching message parks on
//    its mailbox condition variable; senders wake it only when the parked
//    flag is up.
//
//  - Subset barriers: one combining *tree* per processor group, keyed on
//    the group's content key (the paper's localization technique: only
//    members of the current group synchronize, so sibling subgroups of a
//    TASK_PARTITION proceed independently). Members signal completed
//    subtrees up the tree with atomic counters; the root publishes a new
//    release epoch and broadcasts. Episodes are matched by a per-worker
//    per-group epoch counter, exactly like the simulator's per-group
//    barrier state.
//
//  - Time: there is no modeled clock. charge() is a no-op, now() is real
//    seconds since run() started, and the stats report real host time,
//    real blocked time and barrier counts. The simulator remains the
//    authority on modeled machine time (docs/execution.md).
//
//  - Loops: run_chunks() implements intra-subgroup work stealing (on by
//    default, MachineConfig::work_stealing). Each member of the calling
//    group splits its static loop_block() into a deque of chunks published
//    in a per-loop arena; the owner claims chunks from the bottom, idle
//    *siblings of the same group* steal from the top (a simplified
//    Chase-Lev layout: a fixed chunk array with per-slot claim flags
//    instead of ABA-prone top/bottom counters, safe because all pushes
//    happen before publication). Arenas are keyed on (group key, per-group
//    loop epoch), so sibling subgroups of a TASK_PARTITION can never
//    exchange work — the paper's subgroup isolation invariant. A stolen
//    chunk still writes the owning member's result slot, which keeps array
//    contents and reduction combine order bit-identical to the static
//    schedule (docs/execution.md, "Work stealing").
//
// A processor body that throws aborts the run: every parked worker is
// woken and unwinds with AbortError, and run() rethrows the original
// exception. A run in which every unfinished worker is parked with no
// message in flight is reported as runtime::DeadlockError, mirroring the
// simulator's diagnosis.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/backend.hpp"
#include "machine/config.hpp"

namespace fxpar::exec {

/// Unwinds a processor body that was parked (or about to park) when some
/// other processor failed; run() swallows it and rethrows the first real
/// exception instead.
class AbortError : public std::runtime_error {
 public:
  AbortError() : std::runtime_error("fxexec: run aborted by a failing processor") {}
};

class ThreadedBackend final : public Backend {
 public:
  explicit ThreadedBackend(const machine::MachineConfig& config);
  ~ThreadedBackend() override;

  BackendKind kind() const noexcept override { return BackendKind::Threads; }
  int num_procs() const noexcept override { return config_.num_procs; }

  void run(const std::function<void(int)>& body) override;
  void set_tracer(trace::TraceRecorder* tracer) noexcept override { tracer_ = tracer; }
  double now(int rank) const override;
  BackendStats stats() const override;
  /// Thread-safe at any time: worker fields it reads are atomics, and the
  /// barrier / loop-arena registries are read under their own mutexes.
  obs::Introspection introspect() const override;
  obs::Introspection failure_introspection() const override;
  std::uint64_t progress() const noexcept override;

  int current_rank() const override;
  void charge(double seconds) override;
  void deposit(int dst, std::uint64_t tag, Payload data) override;
  Payload receive(int src, std::uint64_t tag) override;
  void barrier(const pgroup::ProcessorGroup& group) override;
  void io_operation(std::size_t bytes) override;
  void run_chunks(const pgroup::ProcessorGroup& group, std::int64_t lo, std::int64_t hi,
                  const ChunkBody& body) override;
  bool stealing_loops() const noexcept override {
    return config_.work_stealing && config_.num_procs > 1;
  }

  /// Throws std::logic_error when `g`'s member list differs from the list
  /// registered under the same 64-bit content key. Both the barrier
  /// registry and the loop-arena registry apply this guard: two distinct
  /// groups whose keys collide would otherwise share one TreeBarrier (or
  /// arena) of the wrong shape and hang or mis-release. Public and static
  /// so tests can exercise the collision path directly — forging a real
  /// FNV-1a collision between two small member lists is not practical.
  static void check_group_key_match(const std::vector<int>& registered,
                                    const pgroup::ProcessorGroup& g, const char* what);

 private:
  struct MailKey {
    int src;
    std::uint64_t tag;
    friend auto operator<=>(const MailKey&, const MailKey&) = default;
  };

  /// One message in flight. Allocated by the sender, freed by the receiver.
  struct MsgNode {
    MsgNode* next = nullptr;
    int src = -1;
    std::uint64_t tag = 0;
    Payload data;
    double sent_at = 0.0;        ///< real send time (trace cause edge)
    std::uint64_t trace_id = 0;  ///< TraceRecorder message id (0 = untraced)
  };

  /// Combining-tree barrier for one processor group. Node i's counter
  /// covers its own arrival plus its children's completed subtrees; the
  /// last decrement resets the node for the next episode and signals the
  /// parent, and the root's completion releases the episode.
  struct TreeBarrier {
    explicit TreeBarrier(std::vector<int> member_list);

    struct alignas(64) Node {
      std::atomic<int> pending{0};
      int fanin = 0;
    };
    std::vector<int> members;      ///< collision guard: the registering group
    std::vector<Node> nodes;       ///< indexed by vrank; parent(i) = (i-1)/2
    std::vector<double> arrive_t;  ///< real arrival stamps (traced runs only)
    std::atomic<std::uint64_t> released{0};  ///< highest released episode
    std::mutex mu;
    std::condition_variable cv;

    // Published by the root before advancing `released` (traced runs). A
    // member reads these only after acquiring `released >= episode`, and
    // the next episode cannot overwrite them until that member re-arrives.
    int last_arriver = -1;  ///< physical rank with the latest arrival
    double max_arrival = 0.0;
  };

  /// One work-stealing episode of one group's data-parallel loop (one
  /// run_chunks() call of every member). Each member owns one Slot indexed
  /// by its vrank: it splits its static block into a fixed chunk array and
  /// release-publishes it; idle siblings steal unclaimed chunks from the
  /// top while the owner claims from the bottom. The layout is a
  /// simplified Chase-Lev deque — all pushes happen before publication, so
  /// per-chunk claim flags replace the ABA-prone top/bottom counters.
  struct LoopArena {
    struct Chunk {
      std::int64_t lo = 0;
      std::int64_t hi = 0;
      std::atomic<bool> taken{false};
    };
    struct alignas(64) Slot {
      std::atomic<Chunk*> chunks{nullptr};  ///< release-published; null = no block
      int count = 0;  ///< chunk count; valid once `chunks` is seen
      /// The owner's body object. Thieves run stolen chunks through this,
      /// so captured per-processor state is the owner's no matter which
      /// worker executes. Points into the owner's run_chunks frame — valid
      /// until the owner leaves, and no chunk can be claimed after that.
      const ChunkBody* body = nullptr;
      std::unique_ptr<Chunk[]> storage;
      /// Iterations of this slot's block not yet completed. Workers
      /// fetch_sub with acq_rel after a chunk's body returns, so the
      /// owner's acquire read of 0 sees every write the chunk made.
      std::atomic<std::int64_t> remaining{0};
    };
    LoopArena(std::vector<int> member_list, std::uint64_t episode)
        : members(std::move(member_list)), epoch(episode), slots(members.size()) {}

    std::vector<int> members;  ///< collision guard, and vrank -> physical rank
    std::uint64_t epoch = 0;   ///< per-group loop episode this arena serves
    std::vector<Slot> slots;   ///< indexed by vrank
    std::atomic<int> left{0};  ///< members done; the last one unregisters
  };

  struct alignas(64) Worker {
    // ---- mailbox: lock-free MPSC inbox, owner-side sorted store ----
    std::atomic<MsgNode*> inbox{nullptr};
    std::atomic<bool> parked{false};  ///< owner is (about to be) asleep
    std::mutex mu;
    std::condition_variable cv;
    std::map<MailKey, std::deque<MsgNode*>> sorted;  ///< owner thread only

    // ---- barrier park registration, read by quiescent() ----
    // Set (episode first) before this worker counts itself in parked_n_ at
    // a barrier, cleared after it uncounts itself; quiescent() uses them to
    // see a released episode the parked waiter has not consumed yet.
    std::atomic<TreeBarrier*> awaiting_tb{nullptr};
    std::atomic<std::uint64_t> awaiting_ep{0};

    // ---- owner-thread-local state ----
    std::unordered_map<std::uint64_t, std::uint64_t> barrier_epoch;
    std::unordered_map<std::uint64_t, std::shared_ptr<TreeBarrier>> barrier_cache;
    /// Loop episodes completed per group key. SPMD guarantees every member
    /// of a group reaches its run_chunks() calls in the same order, so the
    /// per-worker counters agree and name the same arena.
    std::unordered_map<std::uint64_t, std::uint64_t> loop_epoch;

    // ---- per-worker counters, merged by stats() after the join ----
    double elapsed_s = 0.0;  ///< real seconds from run start to body end
    double wait_s = 0.0;     ///< real seconds parked (recv/barrier/io)
    std::uint64_t blocks = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t barriers = 0;
    std::uint64_t steals = 0;        ///< chunks this worker stole from siblings
    std::uint64_t stolen_iters = 0;  ///< iterations run on behalf of siblings
    // Where this worker landed under MachineConfig::pinning: the pinned
    // CPU and its NUMA node, or -1/-1 when unpinned (policy none, or the
    // affinity call failed). Written by the worker thread before the body
    // starts; atomics because introspect() reads them mid-run.
    std::atomic<int> cpu{-1};
    std::atomic<int> node{-1};
    std::atomic<const char*> block_reason{nullptr};  ///< static string or null

    // ---- live-introspection state (all reads/writes atomic) ----
    std::atomic<std::int64_t> mail_depth{0};  ///< deposited - received
    std::atomic<std::uint64_t> beats{0};      ///< runtime-service heartbeats
    std::atomic<double> last_beat{-1.0};      ///< now_s() of the last beat
    std::atomic<bool> done{false};            ///< body returned / unwound

    std::thread thread;
  };

  double now_s() const;
  Worker& self();
  /// Stamps `w`'s heartbeat: introspection's liveness signal and one unit
  /// of watchdog progress. Relaxed — an approximate timeline is enough.
  void beat(Worker& w) {
    w.last_beat.store(now_s(), std::memory_order_relaxed);
    w.beats.fetch_add(1, std::memory_order_relaxed);
  }
  void drain_inbox(Worker& w);
  std::shared_ptr<TreeBarrier> barrier_for(Worker& me, const pgroup::ProcessorGroup& g);
  void fail(std::exception_ptr e);
  void wake_all();
  void reset_run_state();
  /// Frees every queued MsgNode (undrained inboxes and sorted stores).
  /// Call only when no worker thread is running.
  void free_pending_messages();
  /// True when every unfinished worker is parked, nothing moved since
  /// `progress_snapshot`, and no worker has a pending wakeup — an undrained
  /// inbox or a released barrier episode it has not consumed; the caller
  /// then reports a deadlock.
  bool quiescent(std::uint64_t progress_snapshot) const;
  void report_deadlock();

  machine::MachineConfig config_;
  trace::TraceRecorder* tracer_ = nullptr;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::uint64_t> traffic_;  ///< src * P + dst; row src owned by its worker
  std::chrono::steady_clock::time_point t0_;

  std::atomic<bool> aborted_{false};
  std::mutex err_mu_;
  std::exception_ptr first_error_;

  std::atomic<int> parked_n_{0};
  std::atomic<int> finished_n_{0};
  std::atomic<std::uint64_t> progress_{0};  ///< bumped by deposits and releases

  mutable std::mutex breg_mu_;  ///< mutable: introspect() is const
  std::unordered_map<std::uint64_t, std::shared_ptr<TreeBarrier>> barrier_registry_;

  mutable std::mutex loop_mu_;  ///< mutable: introspect() is const
  /// Keyed on group key XOR scrambled loop episode; entries are erased by
  /// the last member to leave, so the map stays small between loops.
  std::unordered_map<std::uint64_t, std::shared_ptr<LoopArena>> loop_registry_;

  std::mutex io_mu_;
  int io_prev_proc_ = -1;  ///< guarded by io_mu_

  /// Snapshot taken by the first failure (deadlock diagnosis or processor
  /// exception) *before* wake_all() lets the other workers unwind — by the
  /// time run() rethrows, every worker reads "finished", so the states
  /// that explain the failure only exist at diagnosis time.
  mutable std::mutex fail_intro_mu_;
  obs::Introspection failure_intro_;  ///< guarded by fail_intro_mu_
};

}  // namespace fxpar::exec
