// fxexec: the execution-backend seam of the fxpar machine.
//
// The paper's execution model — per-processor mapping stacks, minimal
// processor subsets, localized subset barriers — does not care *how* the
// logical processors execute: the original Fx compiler targeted real
// Paragon nodes, while this reproduction started from a deterministic
// single-threaded fiber simulator. Backend is the seam between the two.
// The Machine owns exactly one Backend and forwards every
// processor-visible service to it:
//
//   - launching the SPMD program body on every logical processor,
//   - direct-deposit messaging (deposit / receive),
//   - subset barriers over the current processor group,
//   - the sequential I/O device,
//   - the per-processor clock (modeled time on the simulator, real
//     elapsed time on the threaded engine).
//
// Implementations:
//   sim_backend.hpp      SimBackend       — the discrete-event fiber
//                        simulator; authoritative *modeled* machine time.
//   threaded_backend.hpp ThreadedBackend  — one OS thread per logical
//                        processor over real shared memory; reports real
//                        host time, wait time and barrier counts.
//
// The determinism contract (docs/execution.md): a program whose outputs
// depend only on computed values and received payloads — not on clocks —
// produces bit-identical array contents on every backend, because
// messages are matched by (source, tag) in per-source FIFO order and
// barriers synchronize exactly the same groups on both engines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "pgroup/group.hpp"
#include "runtime/simulator.hpp"

namespace fxpar::trace {
class TraceRecorder;
}

namespace fxpar::exec {

/// Raw bytes exchanged by the direct-deposit layer (same representation on
/// every backend; machine::Payload aliases this).
using Payload = std::vector<std::byte>;

/// Which execution engine a MachineConfig selects.
enum class BackendKind : std::uint8_t {
  Sim,      ///< deterministic discrete-event fiber simulator
  Threads,  ///< one OS thread per logical processor, shared memory
};

/// "sim" / "threads" (stable spelling used by bench records and CLIs).
const char* backend_kind_name(BackendKind k) noexcept;

/// Aggregate per-run numbers a backend hands back after run(). The
/// interpretation of the clock fields is backend-defined: modeled seconds
/// on the simulator, real host seconds on the threaded engine.
struct BackendStats {
  double finish_time = 0.0;  ///< completion time of the slowest processor
  std::vector<runtime::ProcClock> clocks;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t barriers = 0;
  double wait_ms = 0.0;  ///< total *real* blocked time (threaded backend only)
  std::vector<std::uint64_t> traffic;  ///< src * P + dst, when recorded
};

/// One execution engine. A Backend instance is owned by one Machine; the
/// operations in the "processor operations" block are legal only from
/// inside a processor body started by run() and always act on the calling
/// logical processor.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual BackendKind kind() const noexcept = 0;
  const char* name() const noexcept { return backend_kind_name(kind()); }
  virtual int num_procs() const noexcept = 0;

  /// Runs `body(rank)` to completion on every logical processor. Rethrows
  /// the first exception escaping any processor body.
  virtual void run(const std::function<void(int)>& body) = 0;

  /// Installs (or clears) the trace recorder observing this backend.
  virtual void set_tracer(trace::TraceRecorder* tracer) noexcept = 0;

  /// Clock of `rank`: modeled seconds (sim) or real seconds since the
  /// current run() started (threads). Valid for the tracer's clock
  /// callback as well as for Context::now().
  virtual double now(int rank) const = 0;

  /// Counters of the finished (or in-flight) run.
  virtual BackendStats stats() const = 0;

  // ---- processor operations (inside a processor body only) ----

  /// Logical rank of the calling processor.
  virtual int current_rank() const = 0;

  /// Charges modeled compute time to the calling processor. The simulator
  /// advances the virtual clock; the threaded engine ignores it (real time
  /// passes by itself).
  virtual void charge(double seconds) = 0;

  /// Deposits a message into the mailbox of `dst`.
  virtual void deposit(int dst, std::uint64_t tag, Payload data) = 0;

  /// Next message from (`src`, `tag`); blocks until available.
  virtual Payload receive(int src, std::uint64_t tag) = 0;

  /// Subset barrier over `group`; the caller must be a member. Only
  /// members of the same group synchronize — sibling subgroups of a
  /// TASK_PARTITION never affect each other.
  virtual void barrier(const pgroup::ProcessorGroup& group) = 0;

  /// Blocking operation on the machine's sequential I/O device.
  virtual void io_operation(std::size_t bytes) = 0;
};

}  // namespace fxpar::exec
