// fxexec: the execution-backend seam of the fxpar machine.
//
// The paper's execution model — per-processor mapping stacks, minimal
// processor subsets, localized subset barriers — does not care *how* the
// logical processors execute: the original Fx compiler targeted real
// Paragon nodes, while this reproduction started from a deterministic
// single-threaded fiber simulator. Backend is the seam between the two.
// The Machine owns exactly one Backend and forwards every
// processor-visible service to it:
//
//   - launching the SPMD program body on every logical processor,
//   - direct-deposit messaging (deposit / receive),
//   - subset barriers over the current processor group,
//   - the sequential I/O device,
//   - the per-processor clock (modeled time on the simulator, real
//     elapsed time on the threaded engine).
//
// Implementations:
//   sim_backend.hpp      SimBackend       — the discrete-event fiber
//                        simulator; authoritative *modeled* machine time.
//   threaded_backend.hpp ThreadedBackend  — one OS thread per logical
//                        processor over real shared memory; reports real
//                        host time, wait time and barrier counts.
//
// The determinism contract (docs/execution.md): a program whose outputs
// depend only on computed values and received payloads — not on clocks —
// produces bit-identical array contents on every backend, because
// messages are matched by (source, tag) in per-source FIFO order and
// barriers synchronize exactly the same groups on both engines.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "obs/introspect.hpp"
#include "pgroup/group.hpp"
#include "runtime/simulator.hpp"

namespace fxpar::trace {
class TraceRecorder;
}

namespace fxpar::metrics {
struct RuntimeMetrics;
}

namespace fxpar::obs {
class FlightRecorder;
}

namespace fxpar::exec {

/// Raw bytes exchanged by the direct-deposit layer (same representation on
/// every backend; machine::Payload aliases this).
using Payload = std::vector<std::byte>;

/// Which execution engine a MachineConfig selects.
enum class BackendKind : std::uint8_t {
  Sim,      ///< deterministic discrete-event fiber simulator
  Threads,  ///< one OS thread per logical processor, shared memory
  Proc,     ///< one OS *process* per logical processor (fork + src/net/ transport)
};

/// "sim" / "threads" / "proc" (stable spelling used by bench records and CLIs).
const char* backend_kind_name(BackendKind k) noexcept;

/// Which transport moves the process backend's frames (ignored by the
/// in-address-space backends): shared-memory mailbox rings, or loopback
/// TCP — the multi-node-shaped path behind the same net::Channel seam.
enum class TransportKind : std::uint8_t {
  Shm,  ///< mmap'd per-rank MPSC rings with futex park/wake
  Tcp,  ///< pre-connected pairwise loopback TCP sockets
};

/// "shm" / "tcp" (stable spelling used by bench records and CLIs).
const char* transport_kind_name(TransportKind t) noexcept;

/// Static block partition of [lo, hi) over `parts`: piece `which` as
/// [first, last). This is THE ownership map of every data parallel loop:
/// the simulator executes exactly this schedule, and the threaded engine's
/// work-stealing path derives each member's chunk deque from the same
/// blocks, so iteration ownership (who holds the result slot for iteration
/// i) is identical on every backend and with stealing on or off.
constexpr std::pair<std::int64_t, std::int64_t> loop_block(std::int64_t lo, std::int64_t hi,
                                                           int parts, int which) noexcept {
  const std::int64_t n = hi - lo;
  const std::int64_t b = (n + parts - 1) / parts;
  const std::int64_t first = lo + static_cast<std::int64_t>(which) * b;
  const std::int64_t last = std::min(hi, first + b);
  return {first, std::max(first, last)};
}

/// One contiguous chunk of a bulk loop, executed by run_chunks(): run
/// iterations [lo, hi). A stolen chunk is always executed through the
/// *owning* member's body object (the member whose static block contains
/// [lo, hi)), so captured per-processor state — local array views, result
/// buffers — is the owner's regardless of which worker ran the chunk.
using ChunkBody = std::function<void(std::int64_t lo, std::int64_t hi)>;

/// Aggregate per-run numbers a backend hands back after run(). The
/// interpretation of the clock fields is backend-defined: modeled seconds
/// on the simulator, real host seconds on the threaded engine.
struct BackendStats {
  double finish_time = 0.0;  ///< completion time of the slowest processor
  std::vector<runtime::ProcClock> clocks;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t barriers = 0;
  double wait_ms = 0.0;  ///< total *real* blocked time (threaded backend only)
  std::uint64_t steals = 0;        ///< loop chunks stolen by idle subgroup siblings
  std::uint64_t stolen_iters = 0;  ///< iterations executed by a non-owning worker
  std::vector<std::uint64_t> traffic;  ///< src * P + dst, when recorded

  /// Per-worker NUMA node ids under an active pinning policy (threaded
  /// backend; empty on the simulator or with pinning none/failed). Index
  /// is the logical rank; -1 marks a worker that could not be pinned.
  std::vector<int> numa_nodes;
};

/// One execution engine. A Backend instance is owned by one Machine; the
/// operations in the "processor operations" block are legal only from
/// inside a processor body started by run() and always act on the calling
/// logical processor.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual BackendKind kind() const noexcept = 0;
  const char* name() const noexcept { return backend_kind_name(kind()); }
  virtual int num_procs() const noexcept = 0;

  /// Runs `body(rank)` to completion on every logical processor. Rethrows
  /// the first exception escaping any processor body.
  virtual void run(const std::function<void(int)>& body) = 0;

  /// Installs (or clears) the trace recorder observing this backend.
  virtual void set_tracer(trace::TraceRecorder* tracer) noexcept = 0;

  /// Installs (or clears) the always-on metrics set. Backends update only
  /// their own hot-path metrics (e.g. steals on the threaded engine,
  /// modeled busy time on the simulator); the Machine layer covers the
  /// backend-agnostic ones (messages, barriers, waits). Null — the
  /// default — means metrics are disabled and hot paths pay one pointer
  /// compare.
  void set_metrics(metrics::RuntimeMetrics* m) noexcept { metrics_ = m; }
  metrics::RuntimeMetrics* runtime_metrics() const noexcept { return metrics_; }

  /// Installs (or clears) the always-on flight recorder. Like metrics,
  /// null — the default — means the recorder is off and every hook site
  /// pays one pointer compare.
  void set_flight(obs::FlightRecorder* f) noexcept { flight_ = f; }
  obs::FlightRecorder* flight() const noexcept { return flight_; }

  /// Live structured introspection: per-worker state (running / parked +
  /// block reason / finished), mailbox and loop-deque depths, placement,
  /// heartbeats, and barrier occupancy. The threaded backend answers this
  /// from any thread at any time (all reads are atomics or registry reads
  /// under their own locks); the simulator's answer is safe only from the
  /// run thread while no run is executing (its state is fiber-mutated).
  /// The default is an empty introspection for backends without the hook.
  virtual obs::Introspection introspect() const { return {}; }

  /// Introspection captured at the moment a failure was diagnosed — the
  /// deadlock report or the first processor exception — before the other
  /// workers were woken to unwind. Empty if the last run did not fail (or
  /// the backend does not capture one); the Machine prefers this over a
  /// live introspect() when building a failure diagnostic bundle.
  virtual obs::Introspection failure_introspection() const { return {}; }

  /// Monotone progress stamp for the stall watchdog: changes whenever the
  /// backend performs runtime-service work (messages, barriers, loop
  /// chunks, io, worker completion). A constant value across T seconds
  /// means no global progress. Default 0 = no progress signal.
  virtual std::uint64_t progress() const noexcept { return 0; }

  /// Clock of `rank`: modeled seconds (sim) or real seconds since the
  /// current run() started (threads). Valid for the tracer's clock
  /// callback as well as for Context::now().
  virtual double now(int rank) const = 0;

  /// Counters of the finished (or in-flight) run.
  virtual BackendStats stats() const = 0;

  // ---- processor operations (inside a processor body only) ----

  /// Logical rank of the calling processor.
  virtual int current_rank() const = 0;

  /// Charges modeled compute time to the calling processor. The simulator
  /// advances the virtual clock; the threaded engine ignores it (real time
  /// passes by itself).
  virtual void charge(double seconds) = 0;

  /// Deposits a message into the mailbox of `dst`.
  virtual void deposit(int dst, std::uint64_t tag, Payload data) = 0;

  /// Next message from (`src`, `tag`); blocks until available.
  virtual Payload receive(int src, std::uint64_t tag) = 0;

  /// Subset barrier over `group`; the caller must be a member. Only
  /// members of the same group synchronize — sibling subgroups of a
  /// TASK_PARTITION never affect each other.
  virtual void barrier(const pgroup::ProcessorGroup& group) = 0;

  /// Blocking operation on the machine's sequential I/O device.
  virtual void io_operation(std::size_t bytes) = 0;

  /// Bulk loop-execution hook (core::parallel_for / parallel_reduce and the
  /// hpf_on element loops route through this). Every member of `group` —
  /// and only members; the caller must be one — invokes it SPMD with the
  /// same [lo, hi) and an equivalent body. The backend decides the schedule:
  ///
  ///   * static (the simulator, or work_stealing off): the caller runs its
  ///     own loop_block() as one chunk and returns — no synchronization,
  ///     exactly the seed behaviour;
  ///   * stealing (threaded backend, work_stealing on): the caller's block
  ///     is split into a deque of chunks; idle members of the *same* group
  ///     steal from siblings' deques — always invoking the chunk owner's
  ///     body object — and the call returns once every iteration of the
  ///     caller's own block has completed (possibly on another worker),
  ///     with the completed chunks' writes visible to the caller.
  ///
  /// Iterations must be independent (the parallel-loop contract): under
  /// stealing, chunks of one member's block may run concurrently, so a body
  /// may write per-iteration locations but must not accumulate into shared
  /// captured state — parallel_reduce buffers per-iteration values instead.
  virtual void run_chunks(const pgroup::ProcessorGroup& group, std::int64_t lo,
                          std::int64_t hi, const ChunkBody& body) = 0;

  /// True when run_chunks() may execute chunks on workers other than their
  /// owner (so callers that fold per-iteration values must buffer them
  /// instead of accumulating inline).
  virtual bool stealing_loops() const noexcept { return false; }

 protected:
  metrics::RuntimeMetrics* metrics_ = nullptr;  ///< null = metrics disabled
  obs::FlightRecorder* flight_ = nullptr;       ///< null = recorder disabled
};

}  // namespace fxpar::exec
