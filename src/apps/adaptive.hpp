// fxpar apps: adaptive processor reassignment between pipeline stages.
//
// Section 6 of the paper argues that, unlike coordination-language
// approaches, the integrated model permits "dynamic load management by
// reassigning processors to different tasks within a program": partitions
// are ordinary runtime values, so a program can measure its stages and
// re-divide the current processors between batches. This module implements
// that loop for a two-stage stream pipeline: run a batch, compare the
// stages' busy times, recompute the split proportionally, rebuild the
// partition, continue. No process is restarted and no data leaves the
// machine — the re-mapping is just a new TASK_PARTITION of the same
// processors, exactly what the paper's model makes cheap.
#pragma once

#include <vector>

#include "core/fx.hpp"

namespace fxpar::apps {

struct AdaptiveConfig {
  int total_procs = 16;
  int batches = 6;            ///< re-mapping opportunities
  int sets_per_batch = 8;     ///< data sets between re-mappings
  std::int64_t n = 1 << 14;   ///< elements per data set
  double stage0_flops_per_elem = 4.0;
  double stage1_flops_per_elem = 16.0;  ///< imbalance the adapter must discover
  bool adapt = true;          ///< false: keep the initial 50/50 split
};

struct AdaptiveResult {
  double makespan = 0.0;
  std::vector<int> stage0_procs_per_batch;  ///< chosen split after each measurement
  std::vector<double> batch_throughput;     ///< sets/s within each batch
  machine::RunResult machine_result;
};

/// Runs the adaptive (or static, with cfg.adapt=false) two-stage pipeline.
AdaptiveResult run_adaptive_pipeline(const machine::MachineConfig& mcfg,
                                     const AdaptiveConfig& cfg);

}  // namespace fxpar::apps
