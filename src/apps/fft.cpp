#include "apps/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace fxpar::apps {

bool is_pow2(std::int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

void fft_inplace(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_pow2(static_cast<std::int64_t>(n))) {
    throw std::invalid_argument("fft_inplace: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (Complex& z : data) z *= scale;
  }
}

std::vector<Complex> naive_dft(std::span<const Complex> data, bool inverse) {
  const std::size_t n = data.size();
  std::vector<Complex> out(n);
  const double sign = inverse ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang =
          sign * std::numbers::pi * static_cast<double>(k * j) / static_cast<double>(n);
      acc += data[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

void fft_strided(std::span<Complex> data, std::size_t offset, std::size_t stride,
                 std::size_t n, bool inverse) {
  if (stride == 0) throw std::invalid_argument("fft_strided: zero stride");
  if (offset + (n - 1) * stride >= data.size()) {
    throw std::out_of_range("fft_strided: span too small");
  }
  if (stride == 1) {
    fft_inplace(data.subspan(offset, n), inverse);
    return;
  }
  std::vector<Complex> tmp(n);
  for (std::size_t k = 0; k < n; ++k) tmp[k] = data[offset + k * stride];
  fft_inplace(tmp, inverse);
  for (std::size_t k = 0; k < n; ++k) data[offset + k * stride] = tmp[k];
}

double fft_flops(std::int64_t n) {
  if (n <= 1) return 0.0;
  return 5.0 * static_cast<double>(n) * std::log2(static_cast<double>(n));
}

std::vector<std::int64_t> magnitude_histogram(std::span<const Complex> data, int bins,
                                              double max_mag) {
  if (bins <= 0) throw std::invalid_argument("magnitude_histogram: bins must be positive");
  if (max_mag <= 0.0) throw std::invalid_argument("magnitude_histogram: max_mag must be positive");
  std::vector<std::int64_t> hist(static_cast<std::size_t>(bins), 0);
  for (const Complex& z : data) {
    const double m = std::abs(z);
    int b = static_cast<int>(m / max_mag * static_cast<double>(bins));
    if (b >= bins) b = bins - 1;
    if (b < 0) b = 0;
    hist[static_cast<std::size_t>(b)] += 1;
  }
  return hist;
}

double histogram_flops(std::int64_t n) {
  // magnitude (sqrt + 2 mul + add) + scale + clamp ~ 8 ops per element.
  return 8.0 * static_cast<double>(n);
}

}  // namespace fxpar::apps
