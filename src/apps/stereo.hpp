// fxpar apps: multibaseline stereo benchmark (Okutomi & Kanade [15], Webb
// [23]; paper Section 5.1, Table 1).
//
// Input: three camera images per frame. Steps: sum-of-squared-difference
// images for each candidate disparity (the second and third cameras are
// offset by d and 2d), error images by summing a 5x5 window around every
// pixel (implemented separably with a row-halo exchange — the stencil is
// the one stage whose data parallel implementation needs neighbour data),
// and a depth image taking the disparity with minimum error per pixel.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/stream_pipeline.hpp"
#include "sched/pipeline.hpp"

namespace fxpar::apps {

struct StereoConfig {
  std::int64_t height = 240;
  std::int64_t width = 256;
  std::int64_t disparities = 8;
  int num_sets = 12;
  int window = 2;  ///< half-width of the (2w+1)^2 error window
};

/// Deterministic synthetic pixel: camera cam in frame k at (row, col).
float stereo_pixel(int k, int cam, std::int64_t row, std::int64_t col);

/// Host-side sequential reference: sum of the depth (disparity) image of
/// frame `k` (an exact integer invariant of the whole computation).
std::int64_t stereo_reference(const StereoConfig& cfg, int k);

/// Pipeline stages: acquire, ssd, err (windowed sum), depth.
std::vector<PipelineStage<float>> stereo_stages(const StereoConfig& cfg,
                                                std::vector<std::int64_t>* depth_sink = nullptr);

/// Analytic stage model for the mapping algorithms.
sched::PipelineModel stereo_model(const machine::MachineConfig& mcfg, const StereoConfig& cfg);

}  // namespace fxpar::apps
