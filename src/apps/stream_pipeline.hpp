// fxpar apps: generic executor for pipelined data parallel stream programs.
//
// This is the programmable analogue of the paper's Section 3.2/3.3 usage
// patterns. A stream program is a chain of data parallel stages; a mapping
// groups contiguous stages into modules, gives each module p processors per
// instance and r replicated instances (instance j of a module processes
// data sets k with k % r == j). The executor builds one TASK_PARTITION with
// one subgroup per (module, instance), allocates each stage's input/output
// DistArrays on its instance's subgroup, and drives the stream:
//
//   for every data set k:            // replicated induction variable
//     for every module m, its instance j = k % r_m:
//       hand off the previous module's output with assign()   (parent scope)
//       region.on("m<m>.i<j>", run stages of m)               (subgroup scope)
//
// Because assign() only involves the owner groups and ON blocks only their
// subgroup, non-participating processors race ahead — this is exactly the
// pipelining mechanism of the paper, not bespoke executor machinery.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/fx.hpp"
#include "sched/pipeline.hpp"

namespace fxpar::apps {

using dist::DistArray;
using dist::Layout;

/// One data parallel stage of a stream program. The first stage of the
/// chain is the source: its `run` ignores `in` and generates data set `k`.
template <typename T>
struct PipelineStage {
  std::string name;
  /// Layout of the stage's input array on an instance subgroup.
  std::function<Layout(const pgroup::ProcessorGroup&)> in_layout;
  /// Layout of the stage's output array on an instance subgroup.
  std::function<Layout(const pgroup::ProcessorGroup&)> out_layout;
  /// Executes the stage on the current subgroup (members only). `in` holds
  /// the stage input; the stage must fill `out` and charge modeled time.
  std::function<void(machine::Context&, DistArray<T>& in, DistArray<T>& out, int k)> run;
};

/// Module of a stream mapping (a sched::ModuleAssignment applied to real
/// stages).
using StreamModule = sched::ModuleAssignment;

/// Per-run statistics of a stream execution.
struct StreamStats {
  int num_sets = 0;
  double makespan = 0.0;              ///< completion time of the whole stream
  std::vector<double> start;          ///< per data set: entry into the source stage
  std::vector<double> end;            ///< per data set: completion of the last stage
  machine::RunResult machine_result;  ///< raw machine counters

  /// Periodic metrics snapshots taken while the stream ran (rank 0 polls
  /// once per data set). Empty unless a sample period was requested and
  /// MachineConfig::metrics is on; always ends with a final snapshot.
  std::vector<metrics::Snapshot> metrics_series;

  /// The sampled time series as one JSON array (empty array when none).
  std::string metrics_series_json() const;

  /// End-to-end rate including pipeline fill.
  double throughput() const {
    return makespan > 0.0 ? static_cast<double>(num_sets) / makespan : 0.0;
  }
  /// Steady-state rate: completions per second over the second half of the
  /// stream (the paper reports steady-state throughput).
  double steady_throughput() const;
  double avg_latency() const;
  double max_latency() const;
};

/// Converts a sched mapping into stream modules (drops scheduling metadata).
std::vector<StreamModule> to_stream_modules(const sched::PipelineMapping& mapping);

/// Optional knobs of one stream run (see run_stream_pipeline_on).
struct StreamRunOptions {
  /// `epilogue`, when set, runs on every processor after the last data set
  /// (still inside the machine run, parent scope). Stream programs whose
  /// results are recorded by a rank other than physical 0 use it to funnel
  /// those results to rank 0 with send_phys/recv_phys — on the process
  /// backend only rank 0's address space survives the run, so a sink
  /// captured by reference is visible to the driver only if rank 0 wrote
  /// (or received) it.
  std::function<void(machine::Context&)> epilogue;

  /// Data-set ids handed to the stages. When set (size must equal
  /// num_sets), stage `run` callbacks receive (*set_ids)[set] instead of
  /// the local set index — a serving driver uses this to pump a batch of
  /// globally-numbered requests through one run while the stages keep
  /// generating per-request inputs from the global id. Instance
  /// round-robin and timing stay keyed on the local index.
  const std::vector<int>* set_ids = nullptr;

  /// External metrics sampler polled by physical rank 0 once per data set.
  /// The caller owns it — no terminal flush, no take — so one sampler can
  /// span many runs of one machine (the serving driver's epochs share a
  /// series across remaps). Single-threaded discipline applies: only poll
  /// it elsewhere between runs, never during one.
  metrics::Sampler* sampler = nullptr;
};

/// Re-entrant core of run_stream_pipeline: runs `num_sets` data sets
/// through `stages` mapped by `modules` on an *existing* machine, so a
/// long-running driver can pump many batches — possibly under different
/// mappings — through one Machine, keeping its metrics registry, plan
/// caches, flight recorder and live endpoint across runs (drain → remap →
/// resume). The sum of module processor counts must not exceed the
/// machine's processor count (leftover processors idle, as on a real
/// machine).
template <typename T>
StreamStats run_stream_pipeline_on(machine::Machine& machine,
                                   const std::vector<PipelineStage<T>>& stages,
                                   const std::vector<StreamModule>& modules, int num_sets,
                                   const StreamRunOptions& opts = {}) {
  if (stages.empty() || modules.empty() || num_sets <= 0) {
    throw std::invalid_argument("run_stream_pipeline: empty problem");
  }
  int used = 0;
  for (const StreamModule& m : modules) {
    if (m.first_stage < 0 || m.last_stage < m.first_stage ||
        m.last_stage >= static_cast<int>(stages.size())) {
      throw std::invalid_argument("run_stream_pipeline: bad module stage range");
    }
    used += m.procs * m.instances;
  }
  if (modules.front().first_stage != 0 ||
      modules.back().last_stage != static_cast<int>(stages.size()) - 1) {
    throw std::invalid_argument("run_stream_pipeline: modules must cover all stages");
  }
  const int num_procs = machine.num_procs();
  if (used > num_procs) {
    throw std::invalid_argument("run_stream_pipeline: mapping uses " + std::to_string(used) +
                                " processors but the machine has " +
                                std::to_string(num_procs));
  }
  if (opts.set_ids && static_cast<int>(opts.set_ids->size()) != num_sets) {
    throw std::invalid_argument("run_stream_pipeline: set_ids size must equal num_sets");
  }

  StreamStats stats;
  stats.num_sets = num_sets;
  stats.start.assign(static_cast<std::size_t>(num_sets),
                     std::numeric_limits<double>::infinity());
  stats.end.assign(static_cast<std::size_t>(num_sets),
                   -std::numeric_limits<double>::infinity());

  // Per-processor timestamp scratch, merged below: each rank writes only
  // its own row, so recording is race-free on the threaded backend too.
  std::vector<std::vector<double>> start_pp(
      static_cast<std::size_t>(num_procs),
      std::vector<double>(static_cast<std::size_t>(num_sets),
                          std::numeric_limits<double>::infinity()));
  std::vector<std::vector<double>> end_pp(
      static_cast<std::size_t>(num_procs),
      std::vector<double>(static_cast<std::size_t>(num_sets),
                          -std::numeric_limits<double>::infinity()));

  metrics::RuntimeMetrics* const mm = machine.metrics();
  metrics::Sampler* const sampler = opts.sampler;
  const auto& epilogue = opts.epilogue;
  stats.machine_result = machine.run([&](machine::Context& ctx) {
    // One subgroup per (module, instance); leftovers become "idle".
    std::vector<SubgroupSpec> specs;
    for (std::size_t m = 0; m < modules.size(); ++m) {
      for (int j = 0; j < modules[m].instances; ++j) {
        specs.push_back({"m" + std::to_string(m) + ".i" + std::to_string(j),
                         modules[m].procs});
      }
    }
    if (used < ctx.nprocs()) specs.push_back({"idle", ctx.nprocs() - used});
    core::TaskPartition part(ctx, std::move(specs), "stream");

    // Materialize per-(module, instance, stage) arrays. Indexing:
    // arrays[m][j] = {in/out per stage of module m}.
    struct StageBufs {
      std::unique_ptr<DistArray<T>> in, out;
    };
    trace::ScopedSpan setup_span = ctx.span("setup", "stream");
    std::vector<std::vector<std::vector<StageBufs>>> bufs(modules.size());
    for (std::size_t m = 0; m < modules.size(); ++m) {
      bufs[m].resize(static_cast<std::size_t>(modules[m].instances));
      for (int j = 0; j < modules[m].instances; ++j) {
        const auto& g = part.subgroup("m" + std::to_string(m) + ".i" + std::to_string(j));
        auto& per_stage = bufs[m][static_cast<std::size_t>(j)];
        for (int s = modules[m].first_stage; s <= modules[m].last_stage; ++s) {
          const auto& stage = stages[static_cast<std::size_t>(s)];
          StageBufs b;
          b.in = std::make_unique<DistArray<T>>(ctx, stage.in_layout(g),
                                                stage.name + ".in");
          b.out = std::make_unique<DistArray<T>>(ctx, stage.out_layout(g),
                                                 stage.name + ".out");
          per_stage.push_back(std::move(b));
        }
      }
    }

    setup_span.close();

    core::TaskRegion region(ctx, part);
    core::Replicated<int> k(ctx, 0);
    for (int set = 0; set < num_sets; ++set) {
      for (std::size_t m = 0; m < modules.size(); ++m) {
        const int j = set % modules[m].instances;
        auto& per_stage = bufs[m][static_cast<std::size_t>(j)];
        // Hand off from the previous module (parent scope: everyone calls,
        // only the two instance groups take part).
        if (m > 0) {
          const int pj = set % modules[m - 1].instances;
          auto& prev = bufs[m - 1][static_cast<std::size_t>(pj)];
          dist::assign(ctx, *per_stage.front().in, *prev.back().out);
        }
        // Run the module's stages on its subgroup.
        region.on("m" + std::to_string(m) + ".i" + std::to_string(j), [&] {
          if (m == 0) {
            auto& mine = start_pp[static_cast<std::size_t>(ctx.phys_rank())];
            mine[static_cast<std::size_t>(set)] =
                std::min(mine[static_cast<std::size_t>(set)], ctx.now());
          }
          for (std::size_t s = 0; s < per_stage.size(); ++s) {
            if (s > 0) {
              dist::assign(ctx, *per_stage[s].in, *per_stage[s - 1].out);
            }
            const int abs_stage = modules[m].first_stage + static_cast<int>(s);
            trace::ScopedSpan stage_span;
            if (ctx.tracer()) {
              stage_span =
                  ctx.span(stages[static_cast<std::size_t>(abs_stage)].name, "stage");
            }
            const int data_id = opts.set_ids ? (*opts.set_ids)[static_cast<std::size_t>(set)]
                                             : set;
            stages[static_cast<std::size_t>(abs_stage)].run(ctx, *per_stage[s].in,
                                                            *per_stage[s].out, data_id);
          }
          if (m + 1 == modules.size()) {
            auto& mine = end_pp[static_cast<std::size_t>(ctx.phys_rank())];
            mine[static_cast<std::size_t>(set)] =
                std::max(mine[static_cast<std::size_t>(set)], ctx.now());
            // One count per completed data set (the instance's lead member
            // counts, so replication does not inflate the rate).
            if (mm && ctx.vrank() == 0) mm->pipeline_sets->add(ctx.phys_rank());
          }
        });
      }
      k.increment();
      // Time-series sampling: only rank 0 polls (the Sampler is
      // single-threaded); snapshot merging reads the other workers'
      // shards with relaxed atomics, so no one stalls.
      if (sampler && ctx.phys_rank() == 0) sampler->poll();
    }
    if (epilogue) epilogue(ctx);
  });
  for (int set = 0; set < num_sets; ++set) {
    for (int p = 0; p < num_procs; ++p) {
      stats.start[static_cast<std::size_t>(set)] =
          std::min(stats.start[static_cast<std::size_t>(set)],
                   start_pp[static_cast<std::size_t>(p)][static_cast<std::size_t>(set)]);
      stats.end[static_cast<std::size_t>(set)] =
          std::max(stats.end[static_cast<std::size_t>(set)],
                   end_pp[static_cast<std::size_t>(p)][static_cast<std::size_t>(set)]);
    }
  }
  stats.makespan = stats.machine_result.finish_time;
  return stats;
}

/// One-shot convenience: builds a machine from `config`, runs the stream on
/// it, and — when `metrics_sample_period_s` > 0 and MachineConfig::metrics
/// is on — samples the machine's registry into StreamStats::metrics_series
/// (rank 0 polls once per data set; the series always ends with a terminal
/// finish() snapshot, so streams shorter than the period still cover their
/// activity).
template <typename T>
StreamStats run_stream_pipeline(const machine::MachineConfig& config,
                                const std::vector<PipelineStage<T>>& stages,
                                const std::vector<StreamModule>& modules, int num_sets,
                                double metrics_sample_period_s = 0.0,
                                std::function<void(machine::Context&)> epilogue = {}) {
  machine::Machine machine(config);
  metrics::RuntimeMetrics* const mm = machine.metrics();
  std::unique_ptr<metrics::Sampler> sampler;
  if (metrics_sample_period_s > 0.0 && mm) {
    sampler = std::make_unique<metrics::Sampler>(mm->registry, metrics_sample_period_s);
  }
  StreamRunOptions opts;
  opts.epilogue = std::move(epilogue);
  opts.sampler = sampler.get();
  StreamStats stats = run_stream_pipeline_on(machine, stages, modules, num_sets, opts);
  if (sampler) {
    sampler->finish();
    stats.metrics_series = sampler->take_series();
  }
  return stats;
}

}  // namespace fxpar::apps
