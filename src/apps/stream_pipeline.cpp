#include "apps/stream_pipeline.hpp"

#include <algorithm>
#include <cmath>

namespace fxpar::apps {

double StreamStats::steady_throughput() const {
  const int n = num_sets;
  if (n < 4) return throughput();
  const int lo = n / 2;
  const double window = end[static_cast<std::size_t>(n - 1)] - end[static_cast<std::size_t>(lo - 1)];
  if (window <= 0.0) return throughput();
  return static_cast<double>(n - lo) / window;
}

double StreamStats::avg_latency() const {
  if (num_sets == 0) return 0.0;
  double s = 0.0;
  for (int k = 0; k < num_sets; ++k) {
    s += end[static_cast<std::size_t>(k)] - start[static_cast<std::size_t>(k)];
  }
  return s / static_cast<double>(num_sets);
}

double StreamStats::max_latency() const {
  double m = 0.0;
  for (int k = 0; k < num_sets; ++k) {
    m = std::max(m, end[static_cast<std::size_t>(k)] - start[static_cast<std::size_t>(k)]);
  }
  return m;
}

std::string StreamStats::metrics_series_json() const {
  return metrics::Sampler::series_json(metrics_series);
}

std::vector<StreamModule> to_stream_modules(const sched::PipelineMapping& mapping) {
  return mapping.modules;
}

}  // namespace fxpar::apps
