// fxpar apps: shared analytic cost helpers used by the sched stage models.
//
// The same formulas that the stage implementations charge to the virtual
// clock are mirrored here as closed-form estimates t(p) for the mapping
// algorithms. They need not be exact (the simulator is the ground truth);
// they must only rank mappings the way the machine does.
#pragma once

#include <algorithm>
#include <cmath>

#include "machine/config.hpp"

namespace fxpar::apps {

/// Estimated time of redistributing `bytes` bytes from a p_up-processor
/// group to a p_down-processor group (the A2 = A1 pattern), including the
/// subset-barrier handshake.
inline double redistribution_time(const machine::MachineConfig& cfg, double bytes, int p_up,
                                  int p_down) {
  const int pu = std::max(p_up, 1), pd = std::max(p_down, 1);
  const double per_sender = bytes / static_cast<double>(pu);
  const double msgs_per_sender = static_cast<double>(pd);
  const double msgs_per_receiver = static_cast<double>(pu);
  const double sender = msgs_per_sender * cfg.send_overhead + per_sender * cfg.byte_time +
                        per_sender * cfg.mem_byte_time;
  const double receiver = msgs_per_receiver * cfg.recv_overhead +
                          (bytes / static_cast<double>(pd)) * cfg.mem_byte_time;
  const int n = pu + pd;
  const double barrier = cfg.barrier_base +
                         cfg.barrier_stage * std::ceil(std::log2(static_cast<double>(std::max(n, 2))));
  return barrier + cfg.latency + std::max(sender, receiver);
}

/// Estimated cost of an allreduce of `bytes` over p processors.
inline double allreduce_time(const machine::MachineConfig& cfg, double bytes, int p) {
  if (p <= 1) return 0.0;
  const double stages = 2.0 * std::ceil(std::log2(static_cast<double>(p)));
  return stages * (cfg.send_overhead + cfg.recv_overhead + cfg.latency + bytes * cfg.byte_time);
}

}  // namespace fxpar::apps
