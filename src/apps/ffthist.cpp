#include "apps/ffthist.hpp"

#include <cmath>

#include "apps/cost_util.hpp"

namespace fxpar::apps {

namespace {

constexpr double kGenFlopsPerElem = 4.0;  ///< synthetic sensor acquisition

using dist::DimDist;
using dist::Layout;
using pgroup::ProcessorGroup;

Layout col_layout(const ProcessorGroup& g, std::int64_t n) {
  return Layout(g, {n, n}, {DimDist::collapsed(), DimDist::block()});
}

Layout row_layout(const ProcessorGroup& g, std::int64_t n) {
  return Layout(g, {n, n}, {DimDist::block(), DimDist::collapsed()});
}

Layout hist_layout(const ProcessorGroup& g, std::int64_t bins) {
  return Layout(g, {bins}, {DimDist::collapsed()});
}

}  // namespace

Complex ffthist_input(int k, std::int64_t i, std::int64_t j) {
  // A mix of per-set tones plus a deterministic pseudo-noise term: cheap,
  // reproducible, and spectrally non-trivial.
  const double phase =
      0.37 * static_cast<double>(k + 1) * static_cast<double>(i) +
      0.61 * static_cast<double>(k + 2) * static_cast<double>(j);
  std::uint64_t h = static_cast<std::uint64_t>(k) * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(i) * 0xbf58476d1ce4e5b9ull +
                    static_cast<std::uint64_t>(j) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  const double noise = static_cast<double>(h % 1000) / 1000.0 - 0.5;
  return Complex(std::cos(phase) + 0.25 * noise, std::sin(phase) - 0.25 * noise);
}

std::vector<std::int64_t> ffthist_reference(const FftHistConfig& cfg, int k) {
  const std::int64_t n = cfg.n;
  std::vector<Complex> a(static_cast<std::size_t>(n * n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(i * n + j)] = ffthist_input(k, i, j);
    }
  }
  // Column FFTs then row FFTs.
  for (std::int64_t j = 0; j < n; ++j) {
    fft_strided(a, static_cast<std::size_t>(j), static_cast<std::size_t>(n),
                static_cast<std::size_t>(n));
  }
  for (std::int64_t i = 0; i < n; ++i) {
    fft_inplace(std::span<Complex>(a).subspan(static_cast<std::size_t>(i * n),
                                              static_cast<std::size_t>(n)));
  }
  return magnitude_histogram(a, cfg.bins, cfg.max_mag());
}

std::vector<PipelineStage<Complex>> ffthist_stages(
    const FftHistConfig& cfg, std::vector<std::vector<std::int64_t>>* hist_sink) {
  const std::int64_t n = cfg.n;
  const int bins = cfg.bins;
  const double max_mag = cfg.max_mag();
  if (!is_pow2(n)) throw std::invalid_argument("ffthist: n must be a power of two");
  if (hist_sink) hist_sink->assign(static_cast<std::size_t>(cfg.num_sets), {});

  std::vector<PipelineStage<Complex>> stages(3);

  // Stage 0: generate the data set and FFT the columns. Input layout
  // (*, BLOCK): every processor owns all rows of a block of columns.
  stages[0].name = "cffts";
  stages[0].in_layout = [n](const ProcessorGroup& g) { return col_layout(g, n); };
  stages[0].out_layout = [n](const ProcessorGroup& g) { return col_layout(g, n); };
  stages[0].run = [n](machine::Context& ctx, DistArray<Complex>&, DistArray<Complex>& out,
                      int k) {
    const auto& ext = out.local_extents();
    const std::int64_t cols = ext[1];
    out.fill([&](std::span<const std::int64_t> g) { return ffthist_input(k, g[0], g[1]); });
    ctx.charge_flops(kGenFlopsPerElem * static_cast<double>(n) * static_cast<double>(cols));
    auto local = out.local();
    for (std::int64_t c = 0; c < cols; ++c) {
      fft_strided(local, static_cast<std::size_t>(c), static_cast<std::size_t>(cols),
                  static_cast<std::size_t>(n));
    }
    ctx.charge_flops(static_cast<double>(cols) * fft_flops(n));
  };

  // Stage 1: FFT the rows. Input layout (BLOCK, *): the handoff assign is
  // the distributed "corner" exchange.
  stages[1].name = "rffts";
  stages[1].in_layout = [n](const ProcessorGroup& g) { return row_layout(g, n); };
  stages[1].out_layout = [n](const ProcessorGroup& g) { return row_layout(g, n); };
  stages[1].run = [n](machine::Context& ctx, DistArray<Complex>& in, DistArray<Complex>& out,
                      int) {
    const auto& ext = in.local_extents();
    const std::int64_t rows = ext[0];
    auto src = in.local();
    auto dst = out.local();
    std::copy(src.begin(), src.end(), dst.begin());
    ctx.charge_mem_bytes(static_cast<double>(src.size_bytes()));
    for (std::int64_t r = 0; r < rows; ++r) {
      fft_inplace(dst.subspan(static_cast<std::size_t>(r * n), static_cast<std::size_t>(n)));
    }
    ctx.charge_flops(static_cast<double>(rows) * fft_flops(n));
  };

  // Stage 2: histogram + group-wide reduction; the result is replicated
  // over the stage's subgroup.
  stages[2].name = "hist";
  stages[2].in_layout = [n](const ProcessorGroup& g) { return row_layout(g, n); };
  stages[2].out_layout = [bins](const ProcessorGroup& g) {
    return hist_layout(g, bins);
  };
  stages[2].run = [bins, max_mag, hist_sink](machine::Context& ctx, DistArray<Complex>& in,
                                             DistArray<Complex>& out, int k) {
    auto local_hist = magnitude_histogram(in.local(), bins, max_mag);
    ctx.charge_flops(histogram_flops(static_cast<std::int64_t>(in.local().size())));
    auto total = comm::allreduce_vector(ctx, in.group(), std::move(local_hist),
                                        std::plus<std::int64_t>{});
    auto sink = out.local();
    for (int b = 0; b < bins; ++b) {
      sink[static_cast<std::size_t>(b)] =
          Complex(static_cast<double>(total[static_cast<std::size_t>(b)]), 0.0);
    }
    if (hist_sink && in.group().virtual_of(ctx.phys_rank()) == 0) {
      (*hist_sink)[static_cast<std::size_t>(k)] = std::move(total);
    }
  };

  return stages;
}

sched::PipelineModel ffthist_model(const machine::MachineConfig& mcfg,
                                   const FftHistConfig& cfg) {
  const double n = static_cast<double>(cfg.n);
  const double elems = n * n;
  const double bytes = elems * static_cast<double>(sizeof(Complex));
  const double fft_work = n * fft_flops(cfg.n);  // n 1-D FFTs per direction

  sched::PipelineModel model;
  model.stages.resize(3);
  model.stages[0] = {"cffts", [=](int p) {
                       const double q = static_cast<double>(std::min<std::int64_t>(p, cfg.n));
                       return (kGenFlopsPerElem * elems + fft_work) * mcfg.flop_time / q;
                     }};
  model.stages[1] = {"rffts", [=](int p) {
                       const double q = static_cast<double>(std::min<std::int64_t>(p, cfg.n));
                       return fft_work * mcfg.flop_time / q +
                              bytes / q * mcfg.mem_byte_time;
                     }};
  model.stages[2] = {"hist", [=](int p) {
                       const double q = static_cast<double>(std::min<std::int64_t>(p, cfg.n));
                       return histogram_flops(static_cast<std::int64_t>(elems / q)) *
                                  mcfg.flop_time +
                              allreduce_time(mcfg, static_cast<double>(cfg.bins) * 8.0, p);
                     }};
  model.transfer = [=](int, int pu, int pd) {
    return redistribution_time(mcfg, bytes, pu, pd);
  };
  return model;
}

}  // namespace fxpar::apps
