// fxpar apps: the Airshed air quality simulation skeleton (McRae & Russell
// [13]; paper Section 5.2, Figure 6).
//
// The concentration matrix is (layers, grid points, species). Every hour:
// a new set of initial conditions is input and preprocessed (sequential
// phases tied to the I/O device), then nsteps iterations of
// transport/chemistry/transport (data parallel), then hourly output
// (sequential again). The data parallel version leaves the sequential I/O
// phases on one processor — the scalability bottleneck of Figure 6; the
// task parallel version moves input and output onto dedicated one-processor
// subgroups so they overlap with the main computation.
#pragma once

#include <cstdint>

#include "core/fx.hpp"

namespace fxpar::apps {

struct AirshedConfig {
  std::int64_t layers = 5;
  std::int64_t grid_points = 500;
  std::int64_t species = 35;
  int hours = 4;
  int base_steps = 3;  ///< nsteps for hour h is base_steps + h % 3 (runtime-determined)

  // Phase cost knobs (flops per cell unless stated).
  double transport_flops = 40.0;
  double chemistry_flops = 200.0;
  double pretrans_flops = 10.0;
  double preprocess_flops = 6.0;   ///< sequential, on the input processor
  double postprocess_flops = 6.0;  ///< sequential, on the output processor

  std::int64_t cells() const { return layers * grid_points * species; }
  std::size_t hour_bytes() const { return static_cast<std::size_t>(cells()) * sizeof(double); }
  int steps(int hour) const { return base_steps + hour % 3; }
};

struct AirshedResult {
  double checksum = 0.0;   ///< deterministic sum of the final concentrations
  double makespan = 0.0;   ///< simulated completion time
  machine::RunResult machine_result;
};

/// Sequential reference checksum of the final concentration matrix.
double airshed_reference_checksum(const AirshedConfig& cfg);

/// Pure data parallel version: all processors run every phase; hourly input
/// and output are performed by processor 0 (sequential) and scattered.
AirshedResult run_airshed_dp(const machine::MachineConfig& mcfg, const AirshedConfig& cfg);

/// Task + data parallel version (the paper's improvement): partition
/// {in(1), main(P-2), out(1)}; the input subgroup preprocesses hour h+1
/// while the main subgroup computes hour h and the output subgroup writes
/// hour h-1. Requires at least 3 processors.
AirshedResult run_airshed_taskpar(const machine::MachineConfig& mcfg, const AirshedConfig& cfg);

}  // namespace fxpar::apps
