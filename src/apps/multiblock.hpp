// fxpar apps: multiblock parallel sections (paper Section 3.1, Figure 1).
//
// Two regular meshes A and B are relaxed independently (proca, procb) but
// exchange boundary values between invocations (transfer) — the structure
// of multiblock CFD codes. The task parallel version maps each mesh onto
// its own processor subgroup so proca and procb run concurrently; the data
// parallel version runs them back to back on all processors. Both produce
// bit-identical results.
#pragma once

#include <cstdint>

#include "core/fx.hpp"

namespace fxpar::apps {

struct MultiblockConfig {
  std::int64_t rows = 64;
  std::int64_t cols = 32;
  int iterations = 8;
};

struct MultiblockResult {
  double checksum = 0.0;  ///< combined checksum of both meshes (proc 0)
  double makespan = 0.0;
  machine::RunResult machine_result;
};

/// Sequential reference checksum.
double multiblock_reference(const MultiblockConfig& cfg);

/// Runs the two-mesh computation. With `task_parallel` the current
/// processors are divided into Agroup/Bgroup (Figure 1(c)); otherwise both
/// meshes live on all processors and the procedures run back to back.
MultiblockResult run_multiblock(const machine::MachineConfig& mcfg,
                                const MultiblockConfig& cfg, bool task_parallel);

}  // namespace fxpar::apps
