#include "apps/quicksort.hpp"

#include <algorithm>
#include <cmath>

namespace fxpar::apps {

namespace {

using dist::DimDist;
using dist::DistArray;
using dist::Layout;
using machine::Context;
using pgroup::ProcessorGroup;

constexpr double kClassifyOpsPerElem = 3.0;

Layout block1d(const ProcessorGroup& g, std::int64_t n) {
  return Layout(g, {n}, {DimDist::block()});
}

/// Scatters the selected elements of every parent processor into `target`
/// (block-distributed over a subgroup of `parent`). `mine` holds this
/// processor's selected elements in local order; `counts[v]` the selection
/// count of parent virtual rank v (identical knowledge on every member, so
/// sender/receiver pairs are computed symmetrically and no empty messages
/// are exchanged — the paper's localization rule).
void scatter_selected(Context& ctx, const ProcessorGroup& parent,
                      const std::vector<std::int64_t>& mine,
                      const std::vector<std::int64_t>& counts, DistArray<std::int64_t>& target) {
  const int P = parent.size();
  const int me = parent.virtual_of(ctx.phys_rank());
  if (me < 0) throw std::logic_error("scatter_selected: caller outside parent group");
  std::vector<std::int64_t> off(static_cast<std::size_t>(P + 1), 0);
  for (int v = 0; v < P; ++v) off[static_cast<std::size_t>(v + 1)] = off[static_cast<std::size_t>(v)] + counts[static_cast<std::size_t>(v)];
  const std::uint64_t tag = ctx.collective_tag(parent);
  const Layout& tl = target.layout();
  const ProcessorGroup& tg = tl.group();

  // Send phase.
  std::vector<std::int64_t> self_buf;
  const std::int64_t my_lo = off[static_cast<std::size_t>(me)];
  const std::int64_t my_hi = my_lo + static_cast<std::int64_t>(mine.size());
  for (int r = 0; r < tg.size(); ++r) {
    const auto runs = tl.owned_runs(r, 0);
    if (runs.empty()) continue;
    const std::int64_t lo = std::max(my_lo, runs.front().start);
    const std::int64_t hi = std::min(my_hi, runs.front().start + runs.front().len);
    if (lo >= hi) continue;
    std::vector<std::int64_t> buf(mine.begin() + (lo - my_lo), mine.begin() + (hi - my_lo));
    ctx.charge_mem_bytes(static_cast<double>(buf.size() * sizeof(std::int64_t)));
    if (tg.physical(r) == ctx.phys_rank()) {
      self_buf = std::move(buf);
    } else {
      ctx.send_phys(tg.physical(r), tag, comm::pack_span(std::span<const std::int64_t>(buf)));
    }
  }

  // Receive phase.
  const int tme = tg.virtual_of(ctx.phys_rank());
  if (tme < 0) return;
  const auto my_runs = tl.owned_runs(tme, 0);
  if (my_runs.empty()) return;
  const std::int64_t lo = my_runs.front().start;
  const std::int64_t hi = lo + my_runs.front().len;
  auto local = target.local();
  for (int s = 0; s < P; ++s) {
    const std::int64_t s_lo = std::max(off[static_cast<std::size_t>(s)], lo);
    const std::int64_t s_hi = std::min(off[static_cast<std::size_t>(s + 1)], hi);
    if (s_lo >= s_hi) continue;
    std::vector<std::int64_t> data;
    if (s == me) {
      data = std::move(self_buf);
    } else {
      data = comm::unpack_vector<std::int64_t>(ctx.recv_phys(parent.physical(s), tag));
    }
    if (static_cast<std::int64_t>(data.size()) != s_hi - s_lo) {
      throw std::logic_error("scatter_selected: payload size mismatch");
    }
    ctx.charge_mem_bytes(static_cast<double>(data.size() * sizeof(std::int64_t)));
    std::copy(data.begin(), data.end(), local.begin() + (s_lo - lo));
  }
}

/// Writes `pivot` into the global index range [first, first+count) of `a`
/// (purely local stores on the owners).
void write_pivot_range(DistArray<std::int64_t>& a, std::int64_t first, std::int64_t count,
                       std::int64_t pivot) {
  if (!a.is_member() || count == 0) return;
  const auto runs = a.layout().owned_runs(a.my_vrank(), 0);
  for (const auto& run : runs) {
    const std::int64_t lo = std::max(first, run.start);
    const std::int64_t hi = std::min(first + count, run.start + run.len);
    for (std::int64_t i = lo; i < hi; ++i) a.at(i) = pivot;
  }
}

}  // namespace

void parallel_qsort(Context& ctx, DistArray<std::int64_t>& a) {
  const std::int64_t n = a.layout().extent(0);
  if (n <= 1) return;
  const ProcessorGroup g = ctx.group();
  if (!(a.group() == g)) {
    throw std::logic_error("parallel_qsort: array must be mapped to the current group");
  }

  if (ctx.nprocs() == 1) {
    auto local = a.local();
    std::sort(local.begin(), local.end());
    ctx.charge_int_ops(2.0 * static_cast<double>(n) *
                       std::max(1.0, std::log2(static_cast<double>(n))));
    return;
  }

  // Pick the pivot at the global midpoint and broadcast it.
  const std::int64_t mid = n / 2;
  const std::array<std::int64_t, 1> mid_idx{mid};
  const int pivot_owner = a.layout().owner_of(mid_idx);
  const std::int64_t pivot = comm::broadcast(
      ctx, g, pivot_owner, a.owns(mid_idx) ? a.at(mid) : std::int64_t{0});

  // Classify local elements (order-preserving).
  std::vector<std::int64_t> less, greater;
  std::int64_t eq = 0;
  for (std::int64_t v : a.local()) {
    if (v < pivot) {
      less.push_back(v);
    } else if (v > pivot) {
      greater.push_back(v);
    } else {
      eq += 1;
    }
  }
  ctx.charge_int_ops(kClassifyOpsPerElem * static_cast<double>(a.local().size()));

  // Exchange per-processor counts (an allgather of triples).
  std::vector<std::int64_t> triple{static_cast<std::int64_t>(less.size()), eq,
                                   static_cast<std::int64_t>(greater.size())};
  const auto gathered = comm::gather_vectors(ctx, g, 0, triple);
  const auto all_counts = comm::broadcast_vector(ctx, g, 0, gathered);
  const int P = g.size();
  std::vector<std::int64_t> less_cnt(static_cast<std::size_t>(P)),
      eq_cnt(static_cast<std::size_t>(P)), greater_cnt(static_cast<std::size_t>(P));
  std::int64_t n_less = 0, n_eq = 0, n_greater = 0;
  for (int v = 0; v < P; ++v) {
    less_cnt[static_cast<std::size_t>(v)] = all_counts[static_cast<std::size_t>(3 * v)];
    eq_cnt[static_cast<std::size_t>(v)] = all_counts[static_cast<std::size_t>(3 * v + 1)];
    greater_cnt[static_cast<std::size_t>(v)] = all_counts[static_cast<std::size_t>(3 * v + 2)];
    n_less += less_cnt[static_cast<std::size_t>(v)];
    n_eq += eq_cnt[static_cast<std::size_t>(v)];
    n_greater += greater_cnt[static_cast<std::size_t>(v)];
  }

  if (n_less == 0 && n_greater == 0) return;  // all keys equal: sorted

  if (n_less == 0 || n_greater == 0) {
    // One-sided: recurse on the non-empty side with the whole group (the
    // equal keys peel off, so the problem strictly shrinks).
    const bool less_side = n_less > 0;
    auto& src_counts = less_side ? less_cnt : greater_cnt;
    auto& src_vals = less_side ? less : greater;
    const std::int64_t m = less_side ? n_less : n_greater;
    DistArray<std::int64_t> rest(ctx, block1d(g, m), "qsort.rest");
    scatter_selected(ctx, g, src_vals, src_counts, rest);
    parallel_qsort(ctx, rest);
    if (less_side) {
      dist::assign_shifted(ctx, a, {0}, rest);
      write_pivot_range(a, m, n_eq, pivot);
    } else {
      write_pivot_range(a, 0, n_eq, pivot);
      dist::assign_shifted(ctx, a, {n_eq}, rest);
    }
    return;
  }

  // compute_subgroup_sizes: processors proportional to the two halves.
  const auto sizes = pgroup::proportional_split(
      P, {static_cast<double>(n_less), static_cast<double>(n_greater)});
  core::TaskPartition part(ctx, {{"less", sizes[0]}, {"greater", sizes[1]}}, "qsortPart");
  auto a_less =
      core::subgroup_array<std::int64_t>(ctx, part, "less", {n_less},
                                         {DimDist::block()}, "aLess");
  auto a_greater =
      core::subgroup_array<std::int64_t>(ctx, part, "greater", {n_greater},
                                         {DimDist::block()}, "aGreaterEq");

  // pick_less_than_pivot / pick_greater_...: value-dependent redistribution.
  scatter_selected(ctx, g, less, less_cnt, a_less);
  scatter_selected(ctx, g, greater, greater_cnt, a_greater);

  {
    core::TaskRegion region(ctx, part);
    region.on("less", [&] { parallel_qsort(ctx, a_less); });
    region.on("greater", [&] { parallel_qsort(ctx, a_greater); });

    // merge_result (parent scope): sorted less block, pivot run, sorted
    // greater block.
    dist::assign_shifted(ctx, a, {0}, a_less);
    write_pivot_range(a, n_less, n_eq, pivot);
    dist::assign_shifted(ctx, a, {n_less + n_eq}, a_greater);
  }
}

std::vector<std::int64_t> qsort_input(std::int64_t n, unsigned seed) {
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  std::uint64_t h = seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
  for (auto& x : v) {
    h ^= h << 13;
    h ^= h >> 7;
    h ^= h << 17;
    x = static_cast<std::int64_t>(h % static_cast<std::uint64_t>(std::max<std::int64_t>(n, 2)));
  }
  return v;
}

QsortResult run_parallel_qsort(const machine::MachineConfig& mcfg,
                               const std::vector<std::int64_t>& input) {
  QsortResult res;
  machine::Machine machine(mcfg);
  const std::int64_t n = static_cast<std::int64_t>(input.size());
  res.machine_result = machine.run([&](Context& ctx) {
    DistArray<std::int64_t> a(ctx, block1d(ctx.group(), n), "a");
    a.fill([&](std::span<const std::int64_t> g) {
      return input[static_cast<std::size_t>(g[0])];
    });
    parallel_qsort(ctx, a);
    auto sorted = dist::gather_full(ctx, a, 0);
    if (ctx.phys_rank() == 0) res.sorted = std::move(sorted);
  });
  return res;
}

}  // namespace fxpar::apps
