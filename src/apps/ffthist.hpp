// fxpar apps: the FFT-Hist kernel (paper Section 3.2/3.3, Figure 2/3,
// Table 1, Figure 5).
//
// A stream of n x n complex arrays; for each: 1-D FFTs on the columns
// (cffts), 1-D FFTs on the rows (rffts), then a magnitude histogram (hist).
// The three stages form a data parallel pipeline; replication processes
// alternate data sets on disjoint subgroups; hybrids combine both.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "apps/fft.hpp"
#include "apps/stream_pipeline.hpp"
#include "sched/pipeline.hpp"

namespace fxpar::apps {

struct FftHistConfig {
  std::int64_t n = 256;  ///< array edge (power of two)
  int bins = 64;         ///< histogram buckets
  int num_sets = 12;     ///< stream length

  double max_mag() const { return static_cast<double>(n); }
};

/// Deterministic synthetic sensor sample for data set `k` at (i, j).
Complex ffthist_input(int k, std::int64_t i, std::int64_t j);

/// Host-side sequential reference: full FFT-Hist of data set `k`.
std::vector<std::int64_t> ffthist_reference(const FftHistConfig& cfg, int k);

/// The three pipeline stages. If `hist_sink` is non-null, the virtual
/// rank 0 processor of the hist stage's subgroup appends each data set's
/// histogram to (*hist_sink)[k] for verification.
std::vector<PipelineStage<Complex>> ffthist_stages(
    const FftHistConfig& cfg, std::vector<std::vector<std::int64_t>>* hist_sink = nullptr);

/// Analytic stage cost model for the mapping algorithms (ref [21][22]).
sched::PipelineModel ffthist_model(const machine::MachineConfig& mcfg,
                                   const FftHistConfig& cfg);

}  // namespace fxpar::apps
