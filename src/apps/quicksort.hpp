// fxpar apps: parallel quicksort via dynamically nested task regions
// (paper Section 3.4, Figure 4).
//
// The array is block-distributed over the current processors. Each level
// picks a pivot, counts elements below/equal/above it, sizes two subgroups
// proportionally (compute_subgroup_sizes), redistributes the elements into
// subgroup-mapped arrays (pick_less_than_pivot / pick_greater_...), recurses
// inside ON SUBGROUP blocks — each recursion declaring a new TASK_PARTITION
// of its own subgroup — and merges the sorted pieces back (merge_result).
// Elements equal to the pivot are written in place, which guarantees
// termination with duplicate keys.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fx.hpp"

namespace fxpar::apps {

/// Sorts `a` (1-D, block-distributed over the *current* group of ctx) in
/// ascending order. Every member of the current group must call.
void parallel_qsort(machine::Context& ctx, dist::DistArray<std::int64_t>& a);

/// Deterministic input generator (duplicates included).
std::vector<std::int64_t> qsort_input(std::int64_t n, unsigned seed);

/// Convenience driver: sorts `input` on a machine of mcfg.num_procs
/// processors and returns the sorted data (validated layout round trip)
/// plus machine statistics.
struct QsortResult {
  std::vector<std::int64_t> sorted;
  machine::RunResult machine_result;
};
QsortResult run_parallel_qsort(const machine::MachineConfig& mcfg,
                               const std::vector<std::int64_t>& input);

}  // namespace fxpar::apps
