// fxpar apps: narrowband tracking radar benchmark (MIT Lincoln Labs [17],
// paper Section 5.1, Table 1).
//
// Each data set is a dwell of `channels` pulse returns of `samples` complex
// samples (the paper's 512x10x4: 512 samples, 10 range gates x 4 beams =
// 40 channels). Processing: corner turn (transpose into channel-major
// order), independent row FFTs, scaling by a window, and thresholding
// against a dwell-adaptive level.
//
// The key structural property (paper): the FFT/scale/threshold stages have
// only `channels` (=40) units of parallelism, so a pure data parallel
// mapping cannot use a 64-node machine; replication can — which is why the
// paper reports a large throughput gain at *unchanged* latency.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "apps/fft.hpp"
#include "apps/stream_pipeline.hpp"
#include "sched/pipeline.hpp"

namespace fxpar::apps {

struct RadarConfig {
  std::int64_t samples = 512;  ///< samples per channel (power of two)
  std::int64_t channels = 40;  ///< 10 range gates x 4 beams
  int num_sets = 12;           ///< dwells in the stream
  double threshold_factor = 2.0;
};

/// Deterministic synthetic pulse sample: channel c, sample s of dwell k.
Complex radar_input(int k, std::int64_t s, std::int64_t c);

/// Host-side sequential reference: detection count of dwell `k`.
std::int64_t radar_reference(const RadarConfig& cfg, int k);

/// Pipeline stages: cturn (acquire + corner turn), rffts, scale, thresh.
/// If `detections_sink` is non-null, virtual rank 0 of the last stage's
/// subgroup records each dwell's detection count.
std::vector<PipelineStage<Complex>> radar_stages(
    const RadarConfig& cfg, std::vector<std::int64_t>* detections_sink = nullptr);

/// Analytic stage model for the mapping algorithms.
sched::PipelineModel radar_model(const machine::MachineConfig& mcfg, const RadarConfig& cfg);

}  // namespace fxpar::apps
