#include "apps/adaptive.hpp"

#include <algorithm>
#include <cmath>

namespace fxpar::apps {

namespace {

using dist::DimDist;
using dist::DistArray;
using dist::Layout;
using machine::Context;
using pgroup::ProcessorGroup;

}  // namespace

AdaptiveResult run_adaptive_pipeline(const machine::MachineConfig& mcfg,
                                     const AdaptiveConfig& cfg) {
  if (cfg.total_procs < 2 || mcfg.num_procs != cfg.total_procs) {
    throw std::invalid_argument(
        "run_adaptive_pipeline: total_procs must equal the machine size (>= 2)");
  }
  AdaptiveResult res;
  machine::Machine machine(mcfg);
  res.machine_result = machine.run([&](Context& ctx) {
    const int P = cfg.total_procs;
    int split = P / 2;  // initial guess: half the processors per stage
    double batch_started = 0.0;

    for (int batch = 0; batch < cfg.batches; ++batch) {
      // (Re)build the partition for this batch: an ordinary runtime value,
      // exactly as the paper's model allows.
      core::TaskPartition part(
          ctx, {{"s0", split}, {"s1", ctx.nprocs() - split}}, "adaptive");
      auto a = core::subgroup_array<double>(ctx, part, "s0", {cfg.n},
                                            {DimDist::block()}, "a");
      auto b = core::subgroup_array<double>(ctx, part, "s1", {cfg.n},
                                            {DimDist::block()}, "b");
      double my_stage_busy = 0.0;

      {
        core::TaskRegion region(ctx, part);
        for (int k = 0; k < cfg.sets_per_batch; ++k) {
          region.on("s0", [&] {
            const double t0 = ctx.now();
            a.fill_value(static_cast<double>(batch * 100 + k));
            ctx.charge_flops(cfg.stage0_flops_per_elem * static_cast<double>(a.local().size()));
            my_stage_busy += ctx.now() - t0;
          });
          dist::assign(ctx, b, a);
          region.on("s1", [&] {
            const double t0 = ctx.now();
            for (double& v : b.local()) v = v * 1.5 + 1.0;
            ctx.charge_flops(cfg.stage1_flops_per_elem * static_cast<double>(b.local().size()));
            my_stage_busy += ctx.now() - t0;
          });
        }
      }

      // Measure: the slowest processor of each stage bounds its service
      // rate. Exchange the two maxima machine-wide and re-divide.
      const bool in_s0 = part.subgroup("s0").contains(ctx.phys_rank());
      const double t0 = comm::allreduce(ctx, ctx.group(), in_s0 ? my_stage_busy : 0.0,
                                        [](double x, double y) { return std::max(x, y); });
      const double t1 = comm::allreduce(ctx, ctx.group(), in_s0 ? 0.0 : my_stage_busy,
                                        [](double x, double y) { return std::max(x, y); });
      ctx.barrier();
      const double now = ctx.now();
      if (ctx.phys_rank() == 0) {
        res.batch_throughput.push_back(static_cast<double>(cfg.sets_per_batch) /
                                       (now - batch_started));
        res.stage0_procs_per_batch.push_back(split);
      }
      batch_started = now;

      if (cfg.adapt && t0 + t1 > 0.0) {
        // Work per stage is (busy x procs); divide processors in proportion.
        const double w0 = t0 * static_cast<double>(split);
        const double w1 = t1 * static_cast<double>(P - split);
        int next = static_cast<int>(std::lround(static_cast<double>(P) * w0 / (w0 + w1)));
        split = std::clamp(next, 1, P - 1);
      }
    }
  });
  res.makespan = res.machine_result.finish_time;
  return res;
}

}  // namespace fxpar::apps
