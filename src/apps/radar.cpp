#include "apps/radar.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "apps/cost_util.hpp"
#include "apps/fft.hpp"

namespace fxpar::apps {

namespace {

using dist::DimDist;
using dist::Layout;
using pgroup::ProcessorGroup;

constexpr double kGenFlopsPerElem = 3.0;
constexpr double kScaleFlopsPerElem = 2.0;
constexpr double kThreshFlopsPerElem = 6.0;

Layout sample_major(const ProcessorGroup& g, const RadarConfig& cfg) {
  return Layout(g, {cfg.samples, cfg.channels}, {DimDist::block(), DimDist::collapsed()});
}

Layout channel_major(const ProcessorGroup& g, const RadarConfig& cfg) {
  return Layout(g, {cfg.channels, cfg.samples}, {DimDist::block(), DimDist::collapsed()});
}

double hann(std::int64_t s, std::int64_t n) {
  return 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * static_cast<double>(s) /
                              static_cast<double>(n));
}

std::int64_t tone_of(int k, std::int64_t c, std::int64_t samples) {
  return (7 + 13 * c + 5 * k) % samples;
}

}  // namespace

Complex radar_input(int k, std::int64_t s, std::int64_t c) {
  // One strong tone per channel plus deterministic low-level clutter. The
  // post-FFT margin between tone bins and clutter is orders of magnitude,
  // so detection counts are robust to reduction order.
  constexpr std::int64_t kSamples = 1 << 20;  // tone index computed by caller patterns
  (void)kSamples;
  std::uint64_t h = static_cast<std::uint64_t>(k) * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(s) * 0xbf58476d1ce4e5b9ull +
                    static_cast<std::uint64_t>(c) * 0x94d049bb133111ebull;
  h ^= h >> 33;
  const double noise = 1e-3 * (static_cast<double>(h % 1000) / 1000.0 - 0.5);
  return Complex(noise, -noise);  // clutter only; the tone is added by the stage
}

namespace {

Complex radar_sample(const RadarConfig& cfg, int k, std::int64_t s, std::int64_t c) {
  const std::int64_t f = tone_of(k, c, cfg.samples);
  const double ang = 2.0 * std::numbers::pi * static_cast<double>(f) *
                     static_cast<double>(s) / static_cast<double>(cfg.samples);
  return Complex(std::cos(ang), std::sin(ang)) + radar_input(k, s, c);
}

}  // namespace

std::int64_t radar_reference(const RadarConfig& cfg, int k) {
  const std::int64_t S = cfg.samples, C = cfg.channels;
  // Channel-major matrix after the corner turn.
  std::vector<Complex> m(static_cast<std::size_t>(C * S));
  for (std::int64_t c = 0; c < C; ++c) {
    for (std::int64_t s = 0; s < S; ++s) {
      m[static_cast<std::size_t>(c * S + s)] = radar_sample(cfg, k, s, c);
    }
  }
  for (std::int64_t c = 0; c < C; ++c) {
    fft_inplace(std::span<Complex>(m).subspan(static_cast<std::size_t>(c * S),
                                              static_cast<std::size_t>(S)));
  }
  double sum_mag = 0.0;
  for (std::int64_t c = 0; c < C; ++c) {
    for (std::int64_t s = 0; s < S; ++s) {
      auto& z = m[static_cast<std::size_t>(c * S + s)];
      z *= hann(s, S);
      sum_mag += std::abs(z);
    }
  }
  const double threshold =
      cfg.threshold_factor * sum_mag / static_cast<double>(C * S);
  std::int64_t detections = 0;
  for (const auto& z : m) {
    if (std::abs(z) > threshold) detections += 1;
  }
  return detections;
}

std::vector<PipelineStage<Complex>> radar_stages(const RadarConfig& cfg,
                                                 std::vector<std::int64_t>* detections_sink) {
  if (!is_pow2(cfg.samples)) throw std::invalid_argument("radar: samples must be a power of two");
  if (detections_sink) detections_sink->assign(static_cast<std::size_t>(cfg.num_sets), -1);

  std::vector<PipelineStage<Complex>> stages(4);

  // Stage 0: acquire the dwell in arrival (sample-major) order, then corner
  // turn into channel-major order — one distributed transpose.
  stages[0].name = "cturn";
  stages[0].in_layout = [cfg](const ProcessorGroup& g) { return sample_major(g, cfg); };
  stages[0].out_layout = [cfg](const ProcessorGroup& g) { return channel_major(g, cfg); };
  stages[0].run = [cfg](machine::Context& ctx, DistArray<Complex>& in, DistArray<Complex>& out,
                        int k) {
    in.fill([&](std::span<const std::int64_t> g) { return radar_sample(cfg, k, g[0], g[1]); });
    ctx.charge_flops(kGenFlopsPerElem * static_cast<double>(in.local().size()));
    dist::transpose(ctx, out, in);
  };

  // Stage 1: independent FFTs over the channels (only `channels` units of
  // parallelism: processors beyond that own no rows and stay idle).
  stages[1].name = "rffts";
  stages[1].in_layout = [cfg](const ProcessorGroup& g) { return channel_major(g, cfg); };
  stages[1].out_layout = [cfg](const ProcessorGroup& g) { return channel_major(g, cfg); };
  stages[1].run = [cfg](machine::Context& ctx, DistArray<Complex>& in, DistArray<Complex>& out,
                        int) {
    auto src = in.local();
    auto dst = out.local();
    std::copy(src.begin(), src.end(), dst.begin());
    ctx.charge_mem_bytes(static_cast<double>(src.size_bytes()));
    const std::int64_t rows = in.local_extents()[0];
    for (std::int64_t r = 0; r < rows; ++r) {
      fft_inplace(dst.subspan(static_cast<std::size_t>(r * cfg.samples),
                              static_cast<std::size_t>(cfg.samples)));
    }
    ctx.charge_flops(static_cast<double>(rows) * fft_flops(cfg.samples));
  };

  // Stage 2: scaling by the Hann window.
  stages[2].name = "scale";
  stages[2].in_layout = [cfg](const ProcessorGroup& g) { return channel_major(g, cfg); };
  stages[2].out_layout = [cfg](const ProcessorGroup& g) { return channel_major(g, cfg); };
  stages[2].run = [cfg](machine::Context& ctx, DistArray<Complex>& in, DistArray<Complex>& out,
                        int) {
    out.fill([&](std::span<const std::int64_t> g) {
      return in.at_global(g) * hann(g[1], cfg.samples);
    });
    ctx.charge_flops(kScaleFlopsPerElem * static_cast<double>(in.local().size()));
  };

  // Stage 3: dwell-adaptive threshold; detections are marked in the output
  // and the count is reduced over the subgroup.
  stages[3].name = "thresh";
  stages[3].in_layout = [cfg](const ProcessorGroup& g) { return channel_major(g, cfg); };
  stages[3].out_layout = [cfg](const ProcessorGroup& g) { return channel_major(g, cfg); };
  stages[3].run = [cfg, detections_sink](machine::Context& ctx, DistArray<Complex>& in,
                                         DistArray<Complex>& out, int k) {
    double local_sum = 0.0;
    for (const auto& z : in.local()) local_sum += std::abs(z);
    const double total =
        comm::allreduce(ctx, in.group(), local_sum, std::plus<double>{});
    const double threshold = cfg.threshold_factor * total /
                             static_cast<double>(cfg.samples * cfg.channels);
    std::int64_t local_det = 0;
    auto src = in.local();
    auto dst = out.local();
    for (std::size_t i = 0; i < src.size(); ++i) {
      const bool hit = std::abs(src[i]) > threshold;
      dst[i] = hit ? Complex(1.0, 0.0) : Complex(0.0, 0.0);
      local_det += hit ? 1 : 0;
    }
    ctx.charge_flops(kThreshFlopsPerElem * static_cast<double>(src.size()));
    const std::int64_t det =
        comm::allreduce(ctx, in.group(), local_det, std::plus<std::int64_t>{});
    if (detections_sink && in.group().virtual_of(ctx.phys_rank()) == 0) {
      (*detections_sink)[static_cast<std::size_t>(k)] = det;
    }
  };

  return stages;
}

sched::PipelineModel radar_model(const machine::MachineConfig& mcfg, const RadarConfig& cfg) {
  const double S = static_cast<double>(cfg.samples);
  const double C = static_cast<double>(cfg.channels);
  const double elems = S * C;
  const double bytes = elems * static_cast<double>(sizeof(Complex));

  sched::PipelineModel model;
  model.stages.resize(4);
  model.stages[0] = {"cturn", [=](int p) {
                       const double q = std::min<double>(p, S);
                       return kGenFlopsPerElem * elems / q * mcfg.flop_time +
                              redistribution_time(mcfg, bytes, p, p);
                     }};
  model.stages[1] = {"rffts", [=](int p) {
                       // ceil(C/q) rows on the busiest processor.
                       const double q = std::min<double>(p, C);
                       const double rows = std::ceil(C / q);
                       return rows * fft_flops(cfg.samples) * mcfg.flop_time +
                              bytes / q * mcfg.mem_byte_time;
                     }};
  model.stages[2] = {"scale", [=](int p) {
                       const double q = std::min<double>(p, C);
                       return kScaleFlopsPerElem * elems / q * mcfg.flop_time;
                     }};
  model.stages[3] = {"thresh", [=](int p) {
                       const double q = std::min<double>(p, C);
                       return kThreshFlopsPerElem * elems / q * mcfg.flop_time +
                              2.0 * allreduce_time(mcfg, 8.0, p);
                     }};
  model.transfer = [=](int, int pu, int pd) {
    return redistribution_time(mcfg, bytes, pu, pd);
  };
  return model;
}

}  // namespace fxpar::apps
