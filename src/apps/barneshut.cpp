#include "apps/barneshut.hpp"

#include <algorithm>
#include <cmath>

namespace fxpar::apps {

namespace {

using machine::Context;
using pgroup::ProcessorGroup;

constexpr double kFlopsPerVisit = 15.0;
constexpr double kBuildOpsPerElem = 2.0;  // per element per level, modeled

void accumulate(std::array<double, 3>& f, const double* pi, double mi, const double* pj,
                double mj, double eps) {
  const double dx = pj[0] - pi[0], dy = pj[1] - pi[1], dz = pj[2] - pi[2];
  const double r2 = dx * dx + dy * dy + dz * dz + eps * eps;
  const double inv = 1.0 / (r2 * std::sqrt(r2));
  const double s = mi * mj * inv;
  f[0] += s * dx;
  f[1] += s * dy;
  f[2] += s * dz;
}

}  // namespace

BhTree::BhTree(std::vector<BhParticle> particles, std::int64_t leaf_size)
    : parts_(std::move(particles)), leaf_size_(std::max<std::int64_t>(leaf_size, 1)) {
  if (parts_.empty()) throw std::invalid_argument("BhTree: no particles");
  nodes_.reserve(parts_.size() * 2);
  build(0, static_cast<std::int64_t>(parts_.size()), 0, 0);
}

int BhTree::build(std::int64_t lo, std::int64_t hi, int axis, int depth) {
  const int idx = static_cast<int>(nodes_.size());
  nodes_.push_back(BhNode{});
  max_depth_ = std::max(max_depth_, depth);
  // Median split (balanced binary tree; sorts particles by leaf order).
  if (hi - lo > leaf_size_) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    std::nth_element(parts_.begin() + lo, parts_.begin() + mid, parts_.begin() + hi,
                     [axis](const BhParticle& a, const BhParticle& b) {
                       return a.pos[axis] < b.pos[axis];
                     });
    const int l = build(lo, mid, (axis + 1) % 3, depth + 1);
    const int r = build(mid, hi, (axis + 1) % 3, depth + 1);
    BhNode& n = nodes_[static_cast<std::size_t>(idx)];
    n.left = l;
    n.right = r;
  }
  BhNode& n = nodes_[static_cast<std::size_t>(idx)];
  n.lo = lo;
  n.hi = hi;
  n.depth = depth;
  for (int d = 0; d < 3; ++d) {
    n.bb_min[d] = std::numeric_limits<double>::infinity();
    n.bb_max[d] = -std::numeric_limits<double>::infinity();
  }
  for (std::int64_t i = lo; i < hi; ++i) {
    const BhParticle& p = parts_[static_cast<std::size_t>(i)];
    n.mass += p.mass;
    for (int d = 0; d < 3; ++d) {
      n.com[d] += p.mass * p.pos[d];
      n.bb_min[d] = std::min(n.bb_min[d], p.pos[d]);
      n.bb_max[d] = std::max(n.bb_max[d], p.pos[d]);
    }
  }
  if (n.mass > 0) {
    for (int d = 0; d < 3; ++d) n.com[d] /= n.mass;
  }
  return idx;
}

std::optional<std::array<double, 3>> BhTree::force_on(std::int64_t i, std::int64_t vis_lo,
                                                      std::int64_t vis_hi, int k, double theta,
                                                      double eps, std::int64_t& visited) const {
  const BhParticle& pi = parts_[static_cast<std::size_t>(i)];
  std::array<double, 3> f{0, 0, 0};
  // Explicit stack; deterministic order: right child pushed first so the
  // left subtree is processed first (matches a recursive traversal).
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const int idx = stack.back();
    stack.pop_back();
    const BhNode& n = nodes_[static_cast<std::size_t>(idx)];
    visited += 1;
    if (n.lo <= i && i < n.hi && n.hi - n.lo == 1) continue;  // the particle itself
    // Opening criterion against the cell's center of mass.
    double s = 0.0;
    for (int d = 0; d < 3; ++d) s = std::max(s, n.bb_max[d] - n.bb_min[d]);
    const double dx = n.com[0] - pi.pos[0], dy = n.com[1] - pi.pos[1],
                 dz = n.com[2] - pi.pos[2];
    const double dist = std::sqrt(dx * dx + dy * dy + dz * dz) + 1e-300;
    const bool contains_self = (n.lo <= i && i < n.hi);
    if (!contains_self && s / dist < theta) {
      accumulate(f, pi.pos, pi.mass, n.com, n.mass, eps);
      continue;
    }
    if (n.leaf()) {
      // Direct sum needs the leaf's particle data: present only when the
      // leaf lies inside the visible subtree.
      if (n.lo >= vis_lo && n.hi <= vis_hi) {
        for (std::int64_t j = n.lo; j < n.hi; ++j) {
          if (j == i) continue;
          const BhParticle& pj = parts_[static_cast<std::size_t>(j)];
          accumulate(f, pi.pos, pi.mass, pj.pos, pj.mass, eps);
          visited += 1;
        }
        continue;
      }
      return std::nullopt;  // remote branch: worklist
    }
    // Children are present if within the replicated top k levels or if they
    // overlap the visible range.
    for (int child : {n.right, n.left}) {
      const BhNode& c = nodes_[static_cast<std::size_t>(child)];
      const bool present = (c.depth <= k) || (c.lo < vis_hi && c.hi > vis_lo);
      if (!present) return std::nullopt;  // remote branch: worklist
      stack.push_back(child);
    }
  }
  return f;
}

std::array<double, 3> BhTree::direct_force(std::int64_t i, double eps) const {
  const BhParticle& pi = parts_[static_cast<std::size_t>(i)];
  std::array<double, 3> f{0, 0, 0};
  for (std::int64_t j = 0; j < static_cast<std::int64_t>(parts_.size()); ++j) {
    if (j == i) continue;
    const BhParticle& pj = parts_[static_cast<std::size_t>(j)];
    accumulate(f, pi.pos, pi.mass, pj.pos, pj.mass, eps);
  }
  return f;
}

std::vector<BhParticle> bh_particles(const BhConfig& cfg) {
  std::vector<BhParticle> ps(static_cast<std::size_t>(cfg.n));
  std::uint64_t h = cfg.seed * 0x9e3779b97f4a7c15ull + 0x853c49e6748fea9bull;
  auto next = [&h] {
    h ^= h << 13;
    h ^= h >> 7;
    h ^= h << 17;
    return static_cast<double>(h % 1000000) / 1000000.0;
  };
  for (auto& p : ps) {
    p.pos[0] = next();
    p.pos[1] = next();
    p.pos[2] = next();
    p.mass = 0.5 + next();
  }
  return ps;
}

namespace {

/// Recursive nested task parallel force phase. Returns the worklist of
/// particles this level could not compute, identical on every member of the
/// current group. `level` indexes worklist_per_level (0 = leaf recursion).
std::vector<std::int64_t> compute_force_rec(Context& ctx, const BhTree& tree, std::int64_t lo,
                                            std::int64_t hi, int k, const BhConfig& cfg,
                                            std::vector<std::array<double, 3>>& sink,
                                            int level, std::vector<std::int64_t>* wl_stats) {
  const ProcessorGroup g = ctx.group();
  if (ctx.nprocs() == 1) {
    std::vector<std::int64_t> wl;
    std::int64_t visited = 0;
    for (std::int64_t i = lo; i < hi; ++i) {
      auto f = tree.force_on(i, lo, hi, k, cfg.theta, cfg.eps, visited);
      if (f) {
        sink[static_cast<std::size_t>(i)] = *f;
      } else {
        wl.push_back(i);
      }
    }
    ctx.charge_flops(kFlopsPerVisit * static_cast<double>(visited));
    return wl;
  }

  const std::int64_t mid = lo + (hi - lo) / 2;
  const auto sizes = pgroup::proportional_split(
      g.size(), {static_cast<double>(mid - lo), static_cast<double>(hi - mid)});
  core::TaskPartition part(ctx, {{"subTreeG1", sizes[0]}, {"subTreeG2", sizes[1]}}, "bhPart");

  std::vector<std::int64_t> wl_local;
  {
    core::TaskRegion region(ctx, part);
    region.on("subTreeG1", [&] {
      wl_local = compute_force_rec(ctx, tree, lo, mid, k, cfg, sink, level + 1, wl_stats);
    });
    region.on("subTreeG2", [&] {
      wl_local = compute_force_rec(ctx, tree, mid, hi, k, cfg, sink, level + 1, wl_stats);
    });
  }
  // Parent scope: merge the children's worklists (replicated on all current
  // processors) and retry them against this level's larger visible subtree.
  const auto wl1 = comm::broadcast_vector(ctx, g, 0, wl_local);
  const auto wl2 = comm::broadcast_vector(ctx, g, sizes[0], wl_local);
  std::vector<std::int64_t> combined = wl1;
  combined.insert(combined.end(), wl2.begin(), wl2.end());
  if (wl_stats && g.virtual_of(ctx.phys_rank()) == 0 &&
      level < static_cast<int>(wl_stats->size())) {
    (*wl_stats)[static_cast<std::size_t>(level)] += static_cast<std::int64_t>(combined.size());
  }

  const int me = g.virtual_of(ctx.phys_rank());
  std::vector<std::int64_t> failed_mine;
  std::int64_t visited = 0;
  for (std::size_t j = 0; j < combined.size(); ++j) {
    if (static_cast<int>(j % static_cast<std::size_t>(g.size())) != me) continue;
    const std::int64_t i = combined[j];
    auto f = tree.force_on(i, lo, hi, k, cfg.theta, cfg.eps, visited);
    if (f) {
      sink[static_cast<std::size_t>(i)] = *f;
    } else {
      failed_mine.push_back(i);
    }
  }
  ctx.charge_flops(kFlopsPerVisit * static_cast<double>(visited));
  // Replicate the still-failing set on all members.
  const auto gathered = comm::gather_vectors(ctx, g, 0, failed_mine);
  auto all_failed = comm::broadcast_vector(ctx, g, 0, gathered);
  std::sort(all_failed.begin(), all_failed.end());
  return all_failed;
}

}  // namespace

BhResult run_barneshut(const machine::MachineConfig& mcfg, const BhConfig& cfg) {
  BhResult res;
  const BhTree tree(bh_particles(cfg), cfg.leaf_size);
  const std::int64_t n = cfg.n;
  const int k = cfg.k_repl >= 0
                    ? cfg.k_repl
                    : static_cast<int>(std::ceil(std::log2(std::max(mcfg.num_procs, 2)))) + 1;

  res.forces.assign(static_cast<std::size_t>(n), {0, 0, 0});
  machine::Machine machine(mcfg);
  // Worklist bookkeeping: collected per recursion by the group leader.
  std::vector<std::int64_t> level_counts(32, 0);
  res.machine_result = machine.run([&](Context& ctx) {
    // Modeled parallel tree build: each processor charges its share of the
    // median-split work plus the replication of the top k levels.
    const double levels = std::log2(static_cast<double>(std::max<std::int64_t>(n, 2)));
    ctx.charge_int_ops(kBuildOpsPerElem * static_cast<double>(n) * levels /
                       static_cast<double>(ctx.nprocs()));
    auto wl = compute_force_rec(ctx, tree, 0, n, k, cfg, res.forces, 0, &level_counts);
    if (!wl.empty()) {
      throw std::logic_error("barneshut: root worklist not empty");
    }
    ctx.barrier();
  });
  res.makespan = res.machine_result.finish_time;
  while (!level_counts.empty() && level_counts.back() == 0) level_counts.pop_back();
  res.worklist_per_level = level_counts;
  return res;
}

std::vector<std::array<double, 3>> barneshut_reference(const BhConfig& cfg) {
  const BhTree tree(bh_particles(cfg), cfg.leaf_size);
  const std::int64_t n = cfg.n;
  std::vector<std::array<double, 3>> forces(static_cast<std::size_t>(n));
  std::int64_t visited = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    auto f = tree.force_on(i, 0, n, tree.max_depth() + 1, cfg.theta, cfg.eps, visited);
    forces[static_cast<std::size_t>(i)] = *f;
  }
  return forces;
}

namespace {

void apply_forces(std::vector<BhParticle>& parts,
                  const std::vector<std::array<double, 3>>& forces, double dt) {
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      parts[i].pos[d] += dt * dt / parts[i].mass * forces[i][d];
    }
  }
}

}  // namespace

BhSimResult run_barneshut_steps(const machine::MachineConfig& mcfg, const BhConfig& cfg,
                                int steps, double dt) {
  if (steps <= 0) throw std::invalid_argument("run_barneshut_steps: steps must be positive");
  BhSimResult res;
  res.worklist_total_per_step.assign(static_cast<std::size_t>(steps), 0);
  const std::int64_t n = cfg.n;
  const int k = cfg.k_repl >= 0
                    ? cfg.k_repl
                    : static_cast<int>(std::ceil(std::log2(std::max(mcfg.num_procs, 2)))) + 1;

  // Host-side state shared by every simulated processor. The simulation is
  // single-threaded and the per-step barrier orders all accesses: the first
  // processor past the barrier advances the dynamics and rebuilds the tree;
  // everyone charges its share of the modeled (parallel) build cost.
  std::vector<BhParticle> parts = bh_particles(cfg);
  std::unique_ptr<BhTree> tree;
  int built_step = -1;
  std::vector<std::array<double, 3>> forces(static_cast<std::size_t>(n), {0, 0, 0});
  std::vector<std::int64_t> wl_stats(32, 0);

  machine::Machine machine(mcfg);
  res.machine_result = machine.run([&](machine::Context& ctx) {
    const double levels = std::log2(static_cast<double>(std::max<std::int64_t>(n, 2)));
    for (int s = 0; s < steps; ++s) {
      if (built_step < s) {
        // First processor past the step barrier: bank the previous step's
        // worklist counts, advance the dynamics, rebuild the tree.
        if (s > 0) {
          for (auto v : wl_stats) {
            res.worklist_total_per_step[static_cast<std::size_t>(s - 1)] += v;
          }
          apply_forces(parts, forces, dt);
        }
        wl_stats.assign(wl_stats.size(), 0);
        tree = std::make_unique<BhTree>(parts, cfg.leaf_size);
        parts = tree->particles();  // tree-sorted order for the next update
        built_step = s;
      }
      ctx.charge_int_ops((kBuildOpsPerElem * static_cast<double>(n) * levels + 6.0 * n) /
                         static_cast<double>(ctx.nprocs()));
      auto wl = compute_force_rec(ctx, *tree, 0, n, k, cfg, forces, 0, &wl_stats);
      if (!wl.empty()) throw std::logic_error("barneshut: root worklist not empty");
      // All forces must be final before the dynamics advance.
      ctx.barrier();
    }
  });
  for (auto v : wl_stats) {
    res.worklist_total_per_step[static_cast<std::size_t>(steps - 1)] += v;
  }
  apply_forces(parts, forces, dt);
  res.particles = parts;
  res.makespan = res.machine_result.finish_time;
  return res;
}

std::vector<BhParticle> barneshut_steps_reference(const BhConfig& cfg, int steps, double dt) {
  std::vector<BhParticle> parts = bh_particles(cfg);
  const std::int64_t n = cfg.n;
  std::vector<std::array<double, 3>> forces(static_cast<std::size_t>(n));
  for (int s = 0; s < steps; ++s) {
    BhTree tree(parts, cfg.leaf_size);
    parts = tree.particles();
    std::int64_t visited = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      forces[static_cast<std::size_t>(i)] =
          *tree.force_on(i, 0, n, tree.max_depth() + 1, cfg.theta, cfg.eps, visited);
    }
    apply_forces(parts, forces, dt);
  }
  return parts;
}

}  // namespace fxpar::apps
