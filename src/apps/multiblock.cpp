#include "apps/multiblock.hpp"

#include <cmath>
#include <optional>

#include "dist/halo.hpp"

namespace fxpar::apps {

namespace {

using dist::DimDist;
using dist::DistArray;
using dist::Layout;
using machine::Context;
using pgroup::ProcessorGroup;

double initial_mesh(int which, std::int64_t i, std::int64_t j) {
  std::uint64_t h = static_cast<std::uint64_t>(which + 1) * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(i) * 0xbf58476d1ce4e5b9ull +
                    static_cast<std::uint64_t>(j) * 0x94d049bb133111ebull;
  h ^= h >> 32;
  return static_cast<double>(h % 1000) / 1000.0;
}

Layout mesh_layout(const ProcessorGroup& g, const MultiblockConfig& cfg) {
  return Layout(g, {1, cfg.rows, cfg.cols},
                {DimDist::collapsed(), DimDist::block(), DimDist::collapsed()});
}

Layout edge_layout(const ProcessorGroup& g, const MultiblockConfig& cfg) {
  return Layout(g, {1, cfg.rows, 1},
                {DimDist::collapsed(), DimDist::block(), DimDist::collapsed()});
}

/// One Jacobi relaxation sweep (interior points only), using old values.
/// Ends with the usual convergence check: a residual allreduce over the
/// mesh's owner group — the group-size-dependent cost that makes running
/// the two meshes on *subgroups* cheaper than running them back to back on
/// all processors.
void relax(Context& ctx, DistArray<double>& m, const MultiblockConfig& cfg) {
  if (!m.is_member()) return;
  const std::int64_t C = cfg.cols;
  const auto runs = m.layout().owned_runs(m.my_vrank(), 1);
  const std::int64_t lo = runs.empty() ? 0 : runs.front().start;
  const std::int64_t rows = runs.empty() ? 0 : runs.front().len;
  auto halo = dist::exchange_row_halo(ctx, m, 1);
  auto local = m.local();

  auto old_row = [&](std::int64_t gi) -> const double* {
    if (gi >= lo && gi < lo + rows) return local.data() + (gi - lo) * C;
    if (gi == lo - 1 && halo.n_above == 1) return halo.above.data();
    if (gi == lo + rows && halo.n_below == 1) return halo.below.data();
    return nullptr;
  };

  std::vector<double> result(static_cast<std::size_t>(rows * C));
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t gi = lo + r;
    const double* mid = local.data() + r * C;
    const double* up = (gi > 0) ? old_row(gi - 1) : nullptr;
    const double* down = (gi + 1 < cfg.rows) ? old_row(gi + 1) : nullptr;
    for (std::int64_t j = 0; j < C; ++j) {
      if (gi == 0 || gi + 1 == cfg.rows || j == 0 || j + 1 == C) {
        result[static_cast<std::size_t>(r * C + j)] = mid[j];  // boundary fixed
      } else {
        result[static_cast<std::size_t>(r * C + j)] =
            0.25 * (up[j] + down[j] + mid[j - 1] + mid[j + 1]);
      }
    }
  }
  double residual = 0.0;
  for (std::int64_t i = 0; i < rows * C; ++i) {
    residual += std::abs(result[static_cast<std::size_t>(i)] - local[static_cast<std::size_t>(i)]);
  }
  std::copy(result.begin(), result.end(), local.begin());
  ctx.charge_flops(6.0 * static_cast<double>(rows * C));
  comm::allreduce(ctx, m.group(), residual, std::plus<double>{});
}

/// Extracts column `col` of the mesh into `edge` (purely local stores).
void extract_edge(DistArray<double>& edge, const DistArray<double>& m, std::int64_t col) {
  if (!m.is_member()) return;
  const std::int64_t C = m.layout().extent(2);
  const auto runs = m.layout().owned_runs(m.my_vrank(), 1);
  if (runs.empty()) return;
  auto src = m.local();
  auto dst = edge.local();
  for (std::int64_t r = 0; r < runs.front().len; ++r) {
    dst[static_cast<std::size_t>(r)] = src[static_cast<std::size_t>(r * C + col)];
  }
}

/// Averages column `col` of the mesh with the (remote) edge values.
void blend_edge(Context& ctx, DistArray<double>& m, const DistArray<double>& edge,
                std::int64_t col) {
  if (!m.is_member()) return;
  const std::int64_t C = m.layout().extent(2);
  const auto runs = m.layout().owned_runs(m.my_vrank(), 1);
  if (runs.empty()) return;
  auto dst = m.local();
  auto src = edge.local();
  for (std::int64_t r = 0; r < runs.front().len; ++r) {
    auto& v = dst[static_cast<std::size_t>(r * C + col)];
    v = 0.5 * (v + src[static_cast<std::size_t>(r)]);
  }
  ctx.charge_flops(2.0 * static_cast<double>(runs.front().len));
}

}  // namespace

double multiblock_reference(const MultiblockConfig& cfg) {
  const std::int64_t R = cfg.rows, C = cfg.cols;
  std::vector<double> a(static_cast<std::size_t>(R * C)), b(a.size());
  for (std::int64_t i = 0; i < R; ++i) {
    for (std::int64_t j = 0; j < C; ++j) {
      a[static_cast<std::size_t>(i * C + j)] = initial_mesh(0, i, j);
      b[static_cast<std::size_t>(i * C + j)] = initial_mesh(1, i, j);
    }
  }
  auto relax_seq = [&](std::vector<double>& m) {
    std::vector<double> next = m;
    for (std::int64_t i = 1; i + 1 < R; ++i) {
      for (std::int64_t j = 1; j + 1 < C; ++j) {
        next[static_cast<std::size_t>(i * C + j)] =
            0.25 * (m[static_cast<std::size_t>((i - 1) * C + j)] +
                    m[static_cast<std::size_t>((i + 1) * C + j)] +
                    m[static_cast<std::size_t>(i * C + j - 1)] +
                    m[static_cast<std::size_t>(i * C + j + 1)]);
      }
    }
    m = std::move(next);
  };
  for (int it = 0; it < cfg.iterations; ++it) {
    relax_seq(a);
    relax_seq(b);
    for (std::int64_t i = 0; i < R; ++i) {
      auto& ea = a[static_cast<std::size_t>(i * C + (C - 1))];
      auto& eb = b[static_cast<std::size_t>(i * C + 0)];
      const double mix = 0.5 * (ea + eb);
      ea = mix;
      eb = mix;
    }
  }
  double sum = 0.0;
  for (double v : a) sum += v;
  for (double v : b) sum += v;
  return sum;
}

MultiblockResult run_multiblock(const machine::MachineConfig& mcfg,
                                const MultiblockConfig& cfg, bool task_parallel) {
  MultiblockResult res;
  machine::Machine machine(mcfg);
  res.machine_result = machine.run([&](Context& ctx) {
    const int P = ctx.nprocs();
    const bool split = task_parallel && P >= 2;
    const int nA = split ? P / 2 : P;

    // With a partition, A and B live on disjoint subgroups (Figure 1(c));
    // otherwise both live on the whole group and run back to back.
    std::optional<core::TaskPartition> part;
    if (split) {
      part.emplace(ctx, std::vector<SubgroupSpec>{{"Agroup", nA}, {"Bgroup", P - nA}});
    }
    const ProcessorGroup ga = split ? part->subgroup("Agroup") : ctx.group();
    const ProcessorGroup gb = split ? part->subgroup("Bgroup") : ctx.group();

    DistArray<double> A(ctx, mesh_layout(ga, cfg), "A");
    DistArray<double> B(ctx, mesh_layout(gb, cfg), "B");
    DistArray<double> edgeA(ctx, edge_layout(ga, cfg), "edgeA");
    DistArray<double> edgeB(ctx, edge_layout(gb, cfg), "edgeB");
    DistArray<double> edgeB_onA(ctx, edge_layout(ga, cfg), "edgeB.onA");
    DistArray<double> edgeA_onB(ctx, edge_layout(gb, cfg), "edgeA.onB");

    A.fill([](std::span<const std::int64_t> g) { return initial_mesh(0, g[1], g[2]); });
    B.fill([](std::span<const std::int64_t> g) { return initial_mesh(1, g[1], g[2]); });

    auto proca = [&] { relax(ctx, A, cfg); };
    auto procb = [&] { relax(ctx, B, cfg); };
    auto transfer = [&] {
      extract_edge(edgeA, A, cfg.cols - 1);
      extract_edge(edgeB, B, 0);
      dist::assign(ctx, edgeA_onB, edgeA);
      dist::assign(ctx, edgeB_onA, edgeB);
      blend_edge(ctx, A, edgeB_onA, cfg.cols - 1);
      blend_edge(ctx, B, edgeA_onB, 0);
    };

    if (split) {
      core::TaskRegion region(ctx, *part);
      for (int it = 0; it < cfg.iterations; ++it) {
        region.on("Agroup", proca);
        region.on("Bgroup", procb);
        transfer();  // parent scope: both subgroups participate
      }
    } else {
      for (int it = 0; it < cfg.iterations; ++it) {
        proca();
        procb();
        transfer();
      }
    }

    const auto fa = dist::gather_full(ctx, A, 0);
    const auto fb = dist::gather_full(ctx, B, 0);
    if (ctx.phys_rank() == 0) {
      double sum = 0.0;
      for (double v : fa) sum += v;
      for (double v : fb) sum += v;
      res.checksum = sum;
    }
  });
  res.makespan = res.machine_result.finish_time;
  return res;
}

}  // namespace fxpar::apps
