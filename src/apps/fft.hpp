// fxpar apps: sequential FFT and histogram kernels.
//
// These run on each simulated processor's local data. Each helper both
// computes real values (so tests can verify numerics end to end) and
// returns the floating-point operation count its caller should charge to
// the virtual clock (the standard 5 n log2 n accounting for a radix-2
// complex FFT).
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace fxpar::apps {

using Complex = std::complex<double>;

/// In-place iterative radix-2 complex FFT. `data.size()` must be a power of
/// two. `inverse` applies the conjugate transform including the 1/n scale.
void fft_inplace(std::span<Complex> data, bool inverse = false);

/// Reference O(n^2) DFT for testing.
std::vector<Complex> naive_dft(std::span<const Complex> data, bool inverse = false);

/// Strided in-place FFT over data[offset + k*stride], k in [0, n).
void fft_strided(std::span<Complex> data, std::size_t offset, std::size_t stride,
                 std::size_t n, bool inverse = false);

/// Modeled flop cost of one n-point complex FFT.
double fft_flops(std::int64_t n);

/// Histogram of |z| over [0, max_mag) into `bins` buckets; values at or
/// beyond max_mag land in the last bucket.
std::vector<std::int64_t> magnitude_histogram(std::span<const Complex> data, int bins,
                                              double max_mag);

/// Modeled flop cost of histogramming n elements.
double histogram_flops(std::int64_t n);

/// True if `n` is a power of two (and positive).
bool is_pow2(std::int64_t n);

}  // namespace fxpar::apps
