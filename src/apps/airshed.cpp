#include "apps/airshed.hpp"

#include <cmath>

#include "dist/halo.hpp"

namespace fxpar::apps {

namespace {

using dist::DimDist;
using dist::DistArray;
using dist::Layout;
using machine::Context;
using pgroup::ProcessorGroup;

/// Hourly initial conditions (deterministic).
double initial(int hour, std::int64_t l, std::int64_t g, std::int64_t s) {
  std::uint64_t h = static_cast<std::uint64_t>(hour) * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(l) * 0xbf58476d1ce4e5b9ull +
                    static_cast<std::uint64_t>(g) * 0x94d049bb133111ebull +
                    static_cast<std::uint64_t>(s) * 0xd6e8feb86659fd93ull;
  h ^= h >> 32;
  return static_cast<double>(h % 10000) / 10000.0;
}

double combine(double a, double in, bool first_hour) {
  return first_hour ? in : 0.5 * a + 0.5 * in;
}

double pretrans_update(double v) { return v * 1.0001 + 0.001; }

double chemistry_update(double v) { return v + 0.05 * v * (1.0 - v); }

/// transport: 1-D upwind advection along the grid dimension, using OLD
/// values (rows are updated in descending grid order so in-place update
/// sees only old neighbours; the lowest row uses the ghost row).
void transport_local(std::span<double> local, std::int64_t layers, std::int64_t rows,
                     std::int64_t species, const double* ghost_above /* layers x species */) {
  for (std::int64_t l = 0; l < layers; ++l) {
    for (std::int64_t r = rows - 1; r >= 0; --r) {
      double* row = local.data() + (l * rows + r) * species;
      const double* prev =
          (r > 0) ? row - species
                  : (ghost_above != nullptr ? ghost_above + l * species : nullptr);
      for (std::int64_t s = 0; s < species; ++s) {
        const double up = (prev != nullptr) ? prev[s] : row[s];
        row[s] = row[s] - 0.2 * (row[s] - up);
      }
    }
  }
}

Layout main_layout(const ProcessorGroup& g, const AirshedConfig& cfg) {
  return Layout(g, {cfg.layers, cfg.grid_points, cfg.species},
                {DimDist::collapsed(), DimDist::block(), DimDist::collapsed()});
}

Layout serial_layout(const ProcessorGroup& g, const AirshedConfig& cfg) {
  return Layout(g, {cfg.layers, cfg.grid_points, cfg.species},
                {DimDist::collapsed(), DimDist::collapsed(), DimDist::collapsed()});
}

/// The main computation phase: pretrans + nsteps x (transport, chemistry,
/// transport), executed by the members of A's owner group.
void main_phase(Context& ctx, DistArray<double>& A, const AirshedConfig& cfg, int hour) {
  if (!A.is_member()) return;
  auto local = A.local();
  const std::int64_t rows = A.local_extents()[1];
  const std::int64_t cells = static_cast<std::int64_t>(local.size());

  for (double& v : local) v = pretrans_update(v);
  ctx.charge_flops(cfg.pretrans_flops * static_cast<double>(cells));

  const int nsteps = cfg.steps(hour);
  for (int step = 0; step < nsteps; ++step) {
    for (int half = 0; half < 2; ++half) {
      auto halo = dist::exchange_row_halo(ctx, A, 1);
      const double* ghost = (halo.n_above == 1) ? halo.above.data() : nullptr;
      transport_local(local, cfg.layers, rows, cfg.species, ghost);
      ctx.charge_flops(cfg.transport_flops * static_cast<double>(cells));
      if (half == 0) {
        for (double& v : local) v = chemistry_update(v);
        ctx.charge_flops(cfg.chemistry_flops * static_cast<double>(cells));
      }
    }
  }
}

/// Deterministic checksum: gather to physical proc 0 and sum sequentially.
double final_checksum(Context& ctx, DistArray<double>& A) {
  const auto full = dist::gather_full(ctx, A, 0);
  double sum = 0.0;
  for (double v : full) sum += v;
  return sum;  // nonzero only on proc 0
}

}  // namespace

double airshed_reference_checksum(const AirshedConfig& cfg) {
  const std::int64_t L = cfg.layers, G = cfg.grid_points, S = cfg.species;
  std::vector<double> a(static_cast<std::size_t>(L * G * S), 0.0);
  for (int hour = 0; hour < cfg.hours; ++hour) {
    for (std::int64_t l = 0; l < L; ++l) {
      for (std::int64_t g = 0; g < G; ++g) {
        for (std::int64_t s = 0; s < S; ++s) {
          auto& v = a[static_cast<std::size_t>((l * G + g) * S + s)];
          v = combine(v, initial(hour, l, g, s), hour == 0);
        }
      }
    }
    for (double& v : a) v = pretrans_update(v);
    const int nsteps = cfg.steps(hour);
    for (int step = 0; step < nsteps; ++step) {
      for (int half = 0; half < 2; ++half) {
        transport_local(a, L, G, S, nullptr);
        if (half == 0) {
          for (double& v : a) v = chemistry_update(v);
        }
      }
    }
  }
  double sum = 0.0;
  for (double v : a) sum += v;
  return sum;
}

AirshedResult run_airshed_dp(const machine::MachineConfig& mcfg, const AirshedConfig& cfg) {
  AirshedResult res;
  machine::Machine machine(mcfg);
  res.machine_result = machine.run([&](Context& ctx) {
    const ProcessorGroup all = ctx.group();
    const ProcessorGroup io_group({0});
    DistArray<double> A(ctx, main_layout(all, cfg), "A");
    DistArray<double> input_serial(ctx, serial_layout(io_group, cfg), "input.serial");
    DistArray<double> input_dist(ctx, main_layout(all, cfg), "input.dist");
    DistArray<double> output_serial(ctx, serial_layout(io_group, cfg), "output.serial");

    for (int hour = 0; hour < cfg.hours; ++hour) {
      // Sequential input phase on processor 0.
      if (ctx.phys_rank() == 0) {
        ctx.io(cfg.hour_bytes());
        input_serial.fill(
            [&](std::span<const std::int64_t> g) { return initial(hour, g[0], g[1], g[2]); });
        ctx.charge_flops(cfg.preprocess_flops * static_cast<double>(cfg.cells()));
      }
      dist::assign(ctx, input_dist, input_serial);  // scatter
      if (A.is_member()) {
        auto a = A.local();
        auto in = input_dist.local();
        for (std::size_t i = 0; i < a.size(); ++i) a[i] = combine(a[i], in[i], hour == 0);
        ctx.charge_flops(2.0 * static_cast<double>(a.size()));
      }
      main_phase(ctx, A, cfg, hour);
      // Sequential output phase on processor 0.
      dist::assign(ctx, output_serial, A);  // gather raw output
      if (ctx.phys_rank() == 0) {
        ctx.charge_flops(cfg.postprocess_flops * static_cast<double>(cfg.cells()));
        ctx.io(cfg.hour_bytes());
      }
    }
    const double sum = final_checksum(ctx, A);
    if (ctx.phys_rank() == 0) res.checksum = sum;
  });
  res.makespan = res.machine_result.finish_time;
  return res;
}

AirshedResult run_airshed_taskpar(const machine::MachineConfig& mcfg, const AirshedConfig& cfg) {
  if (mcfg.num_procs < 3) {
    throw std::invalid_argument("run_airshed_taskpar: needs at least 3 processors");
  }
  AirshedResult res;
  machine::Machine machine(mcfg);
  res.machine_result = machine.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"in", 1}, {"main", ctx.nprocs() - 2}, {"out", 1}},
                             "airshed");
    const ProcessorGroup& in_g = part.subgroup("in");
    const ProcessorGroup& main_g = part.subgroup("main");
    const ProcessorGroup& out_g = part.subgroup("out");

    DistArray<double> A(ctx, main_layout(main_g, cfg), "A");
    DistArray<double> input_serial(ctx, serial_layout(in_g, cfg), "input.serial");
    DistArray<double> input_dist(ctx, main_layout(main_g, cfg), "input.dist");
    DistArray<double> output_serial(ctx, serial_layout(out_g, cfg), "output.serial");

    core::TaskRegion region(ctx, part);
    core::Replicated<int> hour(ctx, 0);
    for (int h = 0; h < cfg.hours; ++h) {
      // Input subgroup reads and preprocesses hour h (it runs one hour
      // ahead of the main computation thanks to the handoff handshake).
      region.on("in", [&] {
        ctx.io(cfg.hour_bytes());
        input_serial.fill(
            [&](std::span<const std::int64_t> g) { return initial(h, g[0], g[1], g[2]); });
        ctx.charge_flops(cfg.preprocess_flops * static_cast<double>(cfg.cells()));
      });
      dist::assign(ctx, input_dist, input_serial);  // in + main participate
      region.on("main", [&] {
        auto a = A.local();
        auto in = input_dist.local();
        for (std::size_t i = 0; i < a.size(); ++i) a[i] = combine(a[i], in[i], h == 0);
        ctx.charge_flops(2.0 * static_cast<double>(a.size()));
        main_phase(ctx, A, cfg, h);
      });
      dist::assign(ctx, output_serial, A);  // main + out participate
      region.on("out", [&] {
        ctx.charge_flops(cfg.postprocess_flops * static_cast<double>(cfg.cells()));
        ctx.io(cfg.hour_bytes());
      });
      hour.increment();
    }
    const double sum = final_checksum(ctx, A);
    if (ctx.phys_rank() == 0) res.checksum = sum;
  });
  res.makespan = res.machine_result.finish_time;
  return res;
}

}  // namespace fxpar::apps
