#include "apps/stereo.hpp"

#include <algorithm>
#include <cmath>

#include "apps/cost_util.hpp"
#include "dist/halo.hpp"

namespace fxpar::apps {

namespace {

using dist::DimDist;
using dist::Layout;
using pgroup::ProcessorGroup;

constexpr double kGenFlopsPerElem = 2.0;
constexpr double kSsdFlopsPerElem = 6.0;   // per (d, i, j) output element
constexpr double kErrFlopsPerElem = 10.0;  // separable 5x5: two 5-tap passes
constexpr double kDepthFlopsPerElem = 2.0; // per (d, i, j) compare

Layout image_layout(const ProcessorGroup& g, std::int64_t planes, const StereoConfig& cfg) {
  return Layout(g, {planes, cfg.height, cfg.width},
                {DimDist::collapsed(), DimDist::block(), DimDist::collapsed()});
}

}  // namespace

float stereo_pixel(int k, int cam, std::int64_t row, std::int64_t col) {
  // A smooth ramp plus camera-shifted texture: camera `cam` sees the scene
  // shifted by cam * true_disparity, giving the SSD stage a real minimum.
  const std::int64_t true_d = 1 + ((row / 16) + k) % 4;
  const std::int64_t shifted = col + cam * true_d;
  std::uint64_t h = static_cast<std::uint64_t>(k) * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(row) * 0xbf58476d1ce4e5b9ull +
                    static_cast<std::uint64_t>(shifted) * 0x94d049bb133111ebull;
  h ^= h >> 33;
  return static_cast<float>(h % 256) / 256.0f;
}

namespace {

// Shared sequential kernels so the reference and the stages agree exactly.

float ssd_value(const StereoConfig& cfg, int k, std::int64_t d, std::int64_t i,
                std::int64_t j, const std::function<float(int, std::int64_t, std::int64_t)>& img) {
  const std::int64_t j2 = std::min(cfg.width - 1, j + d);
  const std::int64_t j3 = std::min(cfg.width - 1, j + 2 * d);
  const float a = img(0, i, j) - img(1, i, j2);
  const float b = img(0, i, j) - img(2, i, j3);
  (void)k;
  return a * a + b * b;
}

}  // namespace

std::int64_t stereo_reference(const StereoConfig& cfg, int k) {
  const std::int64_t H = cfg.height, W = cfg.width, D = cfg.disparities;
  const int w = cfg.window;
  auto img = [&](int cam, std::int64_t i, std::int64_t j) { return stereo_pixel(k, cam, i, j); };
  std::vector<float> ssd(static_cast<std::size_t>(D * H * W));
  for (std::int64_t d = 0; d < D; ++d) {
    for (std::int64_t i = 0; i < H; ++i) {
      for (std::int64_t j = 0; j < W; ++j) {
        ssd[static_cast<std::size_t>((d * H + i) * W + j)] = ssd_value(cfg, k, d, i, j, img);
      }
    }
  }
  // Separable window sum: rows then columns (clamped at edges).
  std::vector<float> tmp(ssd.size()), err(ssd.size());
  for (std::int64_t d = 0; d < D; ++d) {
    for (std::int64_t i = 0; i < H; ++i) {
      for (std::int64_t j = 0; j < W; ++j) {
        float s = 0.0f;
        for (std::int64_t dj = -w; dj <= w; ++dj) {
          const std::int64_t jj = std::clamp<std::int64_t>(j + dj, 0, W - 1);
          s += ssd[static_cast<std::size_t>((d * H + i) * W + jj)];
        }
        tmp[static_cast<std::size_t>((d * H + i) * W + j)] = s;
      }
    }
    for (std::int64_t i = 0; i < H; ++i) {
      for (std::int64_t j = 0; j < W; ++j) {
        float s = 0.0f;
        for (std::int64_t di = -w; di <= w; ++di) {
          const std::int64_t ii = std::clamp<std::int64_t>(i + di, 0, H - 1);
          s += tmp[static_cast<std::size_t>((d * H + ii) * W + j)];
        }
        err[static_cast<std::size_t>((d * H + i) * W + j)] = s;
      }
    }
  }
  std::int64_t depth_sum = 0;
  for (std::int64_t i = 0; i < H; ++i) {
    for (std::int64_t j = 0; j < W; ++j) {
      std::int64_t best = 0;
      float best_err = err[static_cast<std::size_t>((0 * H + i) * W + j)];
      for (std::int64_t d = 1; d < D; ++d) {
        const float e = err[static_cast<std::size_t>((d * H + i) * W + j)];
        if (e < best_err) {
          best_err = e;
          best = d;
        }
      }
      depth_sum += best;
    }
  }
  return depth_sum;
}

std::vector<PipelineStage<float>> stereo_stages(const StereoConfig& cfg,
                                                std::vector<std::int64_t>* depth_sink) {
  if (depth_sink) depth_sink->assign(static_cast<std::size_t>(cfg.num_sets), -1);
  const std::int64_t H = cfg.height, W = cfg.width, D = cfg.disparities;
  const int w = cfg.window;

  std::vector<PipelineStage<float>> stages(4);

  stages[0].name = "acquire";
  stages[0].in_layout = [cfg](const ProcessorGroup& g) { return image_layout(g, 3, cfg); };
  stages[0].out_layout = [cfg](const ProcessorGroup& g) { return image_layout(g, 3, cfg); };
  stages[0].run = [cfg](machine::Context& ctx, DistArray<float>&, DistArray<float>& out,
                        int k) {
    out.fill([&](std::span<const std::int64_t> g) {
      return stereo_pixel(k, static_cast<int>(g[0]), g[1], g[2]);
    });
    ctx.charge_flops(kGenFlopsPerElem * static_cast<double>(out.local().size()));
  };

  // The paper's Fx implementation parallelizes the matching stages over the
  // candidate *disparities* (each processor owns whole difference planes),
  // which caps their parallelism at `disparities` — the structural reason a
  // 64-node data parallel mapping cannot scale and replication wins
  // (Table 1). The window sums are then plane-local; only the handoffs
  // redistribute data.

  // Stage 1: SSD difference planes. Input: the images replicated over the
  // subgroup (the handoff broadcast); output: plane-distributed.
  stages[1].name = "ssd";
  stages[1].in_layout = [cfg](const ProcessorGroup& g) {
    return Layout(g, {3, cfg.height, cfg.width},
                  {DimDist::collapsed(), DimDist::collapsed(), DimDist::collapsed()});
  };
  stages[1].out_layout = [cfg](const ProcessorGroup& g) {
    return Layout(g, {cfg.disparities, cfg.height, cfg.width},
                  {DimDist::block(), DimDist::collapsed(), DimDist::collapsed()});
  };
  stages[1].run = [cfg](machine::Context& ctx, DistArray<float>& in, DistArray<float>& out,
                        int k) {
    if (!out.is_member()) return;
    auto img = [&](int cam, std::int64_t i, std::int64_t j) { return in.at(cam, i, j); };
    out.fill([&](std::span<const std::int64_t> g) {
      return ssd_value(cfg, k, g[0], g[1], g[2], img);
    });
    ctx.charge_flops(kSsdFlopsPerElem * static_cast<double>(out.local().size()));
  };

  // Stage 2: 5x5 window sums, separable and fully local per plane.
  stages[2].name = "err";
  stages[2].in_layout = [cfg](const ProcessorGroup& g) {
    return Layout(g, {cfg.disparities, cfg.height, cfg.width},
                  {DimDist::block(), DimDist::collapsed(), DimDist::collapsed()});
  };
  stages[2].out_layout = stages[2].in_layout;
  stages[2].run = [cfg, H, W, w](machine::Context& ctx, DistArray<float>& in,
                                 DistArray<float>& out, int) {
    if (!in.is_member()) return;
    const std::int64_t planes = in.local_extents()[0];
    auto src = in.local();
    auto dst = out.local();
    std::vector<float> tmp(static_cast<std::size_t>(H * W));
    for (std::int64_t d = 0; d < planes; ++d) {
      const float* plane = src.data() + d * H * W;
      float* oplane = dst.data() + d * H * W;
      for (std::int64_t i = 0; i < H; ++i) {
        for (std::int64_t j = 0; j < W; ++j) {
          float s = 0.0f;
          for (std::int64_t dj = -w; dj <= w; ++dj) {
            const std::int64_t jj = std::clamp<std::int64_t>(j + dj, 0, W - 1);
            s += plane[i * W + jj];
          }
          tmp[static_cast<std::size_t>(i * W + j)] = s;
        }
      }
      for (std::int64_t i = 0; i < H; ++i) {
        for (std::int64_t j = 0; j < W; ++j) {
          float s = 0.0f;
          for (std::int64_t di = -w; di <= w; ++di) {
            const std::int64_t ii = std::clamp<std::int64_t>(i + di, 0, H - 1);
            s += tmp[static_cast<std::size_t>(ii * W + j)];
          }
          oplane[i * W + j] = s;
        }
      }
    }
    ctx.charge_flops(kErrFlopsPerElem * static_cast<double>(planes * H * W));
  };

  // Stage 3: depth by per-pixel argmin across disparities. The handoff
  // redistributes from plane-major to row-major so the reduction is local.
  stages[3].name = "depth";
  stages[3].in_layout = [cfg](const ProcessorGroup& g) {
    return image_layout(g, cfg.disparities, cfg);
  };
  stages[3].out_layout = [cfg](const ProcessorGroup& g) { return image_layout(g, 1, cfg); };
  stages[3].run = [cfg, D, depth_sink](machine::Context& ctx, DistArray<float>& in,
                                       DistArray<float>& out, int k) {
    if (!in.is_member()) return;
    std::int64_t local_sum = 0;
    out.fill([&](std::span<const std::int64_t> g) {
      std::int64_t best = 0;
      float best_err = in.at(0, g[1], g[2]);
      for (std::int64_t d = 1; d < D; ++d) {
        const float e = in.at(d, g[1], g[2]);
        if (e < best_err) {
          best_err = e;
          best = d;
        }
      }
      local_sum += best;
      return static_cast<float>(best);
    });
    ctx.charge_flops(kDepthFlopsPerElem * static_cast<double>(in.local().size()));
    const std::int64_t total =
        comm::allreduce(ctx, in.group(), local_sum, std::plus<std::int64_t>{});
    if (depth_sink && in.group().virtual_of(ctx.phys_rank()) == 0) {
      (*depth_sink)[static_cast<std::size_t>(k)] = total;
    }
  };

  return stages;
}

sched::PipelineModel stereo_model(const machine::MachineConfig& mcfg, const StereoConfig& cfg) {
  const double H = static_cast<double>(cfg.height);
  const double W = static_cast<double>(cfg.width);
  const double D = static_cast<double>(cfg.disparities);
  const double img_bytes = 3.0 * H * W * sizeof(float);
  const double ssd_bytes = D * H * W * sizeof(float);

  sched::PipelineModel model;
  model.stages.resize(4);
  model.stages[0] = {"acquire", [=](int p) {
                       const double q = std::min<double>(p, H);
                       return kGenFlopsPerElem * 3.0 * H * W / q * mcfg.flop_time;
                     }};
  // The matching stages parallelize over disparity planes: cap D.
  model.stages[1] = {"ssd", [=](int p) {
                       const double q = std::min<double>(p, D);
                       const double planes = std::ceil(D / q);
                       return kSsdFlopsPerElem * planes * H * W * mcfg.flop_time;
                     }};
  model.stages[2] = {"err", [=](int p) {
                       const double q = std::min<double>(p, D);
                       const double planes = std::ceil(D / q);
                       return kErrFlopsPerElem * planes * H * W * mcfg.flop_time;
                     }};
  model.stages[3] = {"depth", [=](int p) {
                       const double q = std::min<double>(p, H);
                       return kDepthFlopsPerElem * D * H * W / q * mcfg.flop_time +
                              allreduce_time(mcfg, 8.0, p);
                     }};
  model.transfer = [=](int b, int pu, int pd) {
    if (b == 0) {
      // Images are replicated over the consumer: every consumer receives a
      // full copy.
      return redistribution_time(mcfg, img_bytes * pd, pu, pd);
    }
    return redistribution_time(mcfg, ssd_bytes, pu, pd);
  };
  return model;
}

}  // namespace fxpar::apps
