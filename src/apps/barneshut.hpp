// fxpar apps: Barnes-Hut N-body force computation with dynamically nested
// task parallelism (paper Section 5.3, Figure 7).
//
// build_bh_tree builds a balanced binary tree by recursively partitioning
// the particles along the x, y, z axes in rotation (median splits), which
// sorts the particles by tree-leaf order. compute_force recursively halves
// the particle range and the processor group; each subgroup works against a
// *partial* tree — the top k levels of the full tree plus the subtree
// covering its own particles. When the force calculation of a particle
// needs a branch that is missing from the partial tree, the particle is
// placed on a worklist and retried one level up, where the visible subtree
// is twice as large; at the root the tree is complete and the worklist
// drains. For n uniform particles the total worklist size is O(n^(2/3)),
// and k >= log2(p) keeps it small (both properties are benchmarked).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/fx.hpp"

namespace fxpar::apps {

struct BhParticle {
  double pos[3];
  double mass;
};

struct BhConfig {
  std::int64_t n = 1024;
  double theta = 0.5;       ///< opening criterion: use COM when size/dist < theta
  int k_repl = -1;          ///< replicated top levels; -1 = ceil(log2 p) + 1
  std::int64_t leaf_size = 8;
  unsigned seed = 1;
  double eps = 1e-3;        ///< gravitational softening
};

/// One node of the balanced Barnes-Hut tree.
struct BhNode {
  double bb_min[3], bb_max[3];
  double com[3] = {0, 0, 0};
  double mass = 0.0;
  std::int64_t lo = 0, hi = 0;  ///< particle range (tree-sorted order)
  int left = -1, right = -1;
  int depth = 0;

  bool leaf() const noexcept { return left < 0; }
};

/// The full tree over tree-sorted particles.
class BhTree {
 public:
  BhTree(std::vector<BhParticle> particles, std::int64_t leaf_size);

  const std::vector<BhParticle>& particles() const noexcept { return parts_; }
  const std::vector<BhNode>& nodes() const noexcept { return nodes_; }
  const BhNode& root() const { return nodes_.front(); }
  int max_depth() const noexcept { return max_depth_; }

  /// Attempts the force on tree-sorted particle `i` against the partial
  /// tree that contains the top `k` levels plus the subtree over
  /// [vis_lo, vis_hi). Returns the force if every needed branch is present
  /// (nullopt means: put the particle on the worklist). `visited` counts
  /// tree nodes touched (for time charging).
  std::optional<std::array<double, 3>> force_on(std::int64_t i, std::int64_t vis_lo,
                                                std::int64_t vis_hi, int k, double theta,
                                                double eps, std::int64_t& visited) const;

  /// Exact O(n^2) reference force on particle `i`.
  std::array<double, 3> direct_force(std::int64_t i, double eps) const;

 private:
  int build(std::int64_t lo, std::int64_t hi, int axis, int depth);

  std::vector<BhParticle> parts_;
  std::vector<BhNode> nodes_;
  std::int64_t leaf_size_;
  int max_depth_ = 0;
};

/// Deterministic particle cloud (uniform in the unit cube).
std::vector<BhParticle> bh_particles(const BhConfig& cfg);

struct BhResult {
  std::vector<std::array<double, 3>> forces;     ///< per tree-sorted particle
  std::vector<std::int64_t> worklist_per_level;  ///< worklist sizes, leaf level first
  machine::RunResult machine_result;
  double makespan = 0.0;
};

/// Runs the nested task parallel force computation on a machine of
/// mcfg.num_procs processors.
BhResult run_barneshut(const machine::MachineConfig& mcfg, const BhConfig& cfg);

/// Sequential Barnes-Hut (full tree visibility) for verification.
std::vector<std::array<double, 3>> barneshut_reference(const BhConfig& cfg);

/// Figure 7's full `bh` subroutine across time steps: build the tree,
/// compute forces with nested task parallelism, update every particle's
/// position from its force vector, repeat. Leapfrog-free toy dynamics
/// (x += dt^2/m * F), deterministic.
struct BhSimResult {
  std::vector<BhParticle> particles;  ///< final state (tree-sorted order of the last step)
  double makespan = 0.0;
  std::vector<std::int64_t> worklist_total_per_step;
  machine::RunResult machine_result;
};

BhSimResult run_barneshut_steps(const machine::MachineConfig& mcfg, const BhConfig& cfg,
                                int steps, double dt);

/// Sequential reference of the same dynamics.
std::vector<BhParticle> barneshut_steps_reference(const BhConfig& cfg, int steps, double dt);

}  // namespace fxpar::apps
