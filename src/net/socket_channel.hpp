// fxnet: loopback TCP transport — a pre-connected pairwise socket mesh.
//
// The parent connects every rank pair over 127.0.0.1 *before* forking
// (ephemeral listener per pair, connect, accept, listener closed), so no
// post-fork handshake exists: children simply inherit their row of
// connected fds and close the rest. Frames use the same wire header as the
// shm rings; TCP's byte-stream delivery makes partial reads/writes routine,
// and the channel reassembles them — which is exactly what a future
// multi-node transport will need. Sockets run non-blocking with
// poll()-based waits so blocked senders and parked receivers keep
// observing the stop flag.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "net/channel.hpp"

namespace fxpar::net {

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(int num_ranks);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  const char* name() const noexcept override { return "tcp"; }
  int num_ranks() const noexcept override { return num_ranks_; }
  std::unique_ptr<Channel> attach(int rank) override;

  /// Closes every fd not belonging to `rank` (called by a forked child; a
  /// process hosting several in-process endpoints must not call this).
  void isolate(int rank) override;

 private:
  friend class TcpChannel;
  int fd(int owner, int peer) const noexcept {
    return fds_[static_cast<std::size_t>(owner) * static_cast<std::size_t>(num_ranks_) +
                static_cast<std::size_t>(peer)];
  }
  int num_ranks_;
  std::vector<int> fds_;  ///< owner * P + peer; -1 on the diagonal / after isolate
};

class TcpChannel final : public Channel {
 public:
  TcpChannel(TcpTransport* t, int rank);

  const char* transport() const noexcept override { return "tcp"; }
  int rank() const noexcept override { return rank_; }

  void send(int dst, FrameKind kind, std::uint64_t tag, const std::byte* data,
            std::size_t len) override;
  bool drain(std::vector<Frame>& out) override;
  bool wait(double timeout_s) override;

 private:
  TcpTransport* t_;
  int rank_;
  /// Per-peer receive stream buffer (bytes read but not yet framed).
  std::vector<std::vector<std::byte>> streams_;
};

}  // namespace fxpar::net
