#include "net/socket_channel.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <system_error>
#include <thread>
#include <utility>

#include "net/wire.hpp"

namespace fxpar::net {
namespace {

void set_nonblock(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

[[noreturn]] void fail_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// One connected loopback pair: an ephemeral listener, a connect, an
/// accept, listener closed. Returns {server_end, client_end}.
std::pair<int, int> loopback_pair() {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) fail_errno("TcpTransport: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(lfd, 1) != 0) {
    ::close(lfd);
    fail_errno("TcpTransport: bind/listen");
  }
  socklen_t alen = sizeof(addr);
  if (::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen) != 0) {
    ::close(lfd);
    fail_errno("TcpTransport: getsockname");
  }
  const int cfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (cfd < 0) {
    ::close(lfd);
    fail_errno("TcpTransport: socket");
  }
  if (::connect(cfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(lfd);
    ::close(cfd);
    fail_errno("TcpTransport: connect");
  }
  const int sfd = ::accept(lfd, nullptr, nullptr);
  ::close(lfd);
  if (sfd < 0) {
    ::close(cfd);
    fail_errno("TcpTransport: accept");
  }
  return {sfd, cfd};
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpTransport

TcpTransport::TcpTransport(int num_ranks) : num_ranks_(num_ranks) {
  if (num_ranks_ <= 0) {
    throw std::invalid_argument("TcpTransport: num_ranks must be positive");
  }
  fds_.assign(static_cast<std::size_t>(num_ranks_) * static_cast<std::size_t>(num_ranks_),
              -1);
  for (int i = 0; i < num_ranks_; ++i) {
    for (int j = i + 1; j < num_ranks_; ++j) {
      const auto [a, b] = loopback_pair();
      for (const int fd : {a, b}) {
        set_nonblock(fd);
        set_nodelay(fd);
      }
      fds_[static_cast<std::size_t>(i) * static_cast<std::size_t>(num_ranks_) +
           static_cast<std::size_t>(j)] = a;
      fds_[static_cast<std::size_t>(j) * static_cast<std::size_t>(num_ranks_) +
           static_cast<std::size_t>(i)] = b;
    }
  }
}

TcpTransport::~TcpTransport() {
  for (const int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

std::unique_ptr<Channel> TcpTransport::attach(int rank) {
  if (rank < 0 || rank >= num_ranks_) {
    throw std::out_of_range("TcpTransport::attach: bad rank " + std::to_string(rank));
  }
  return std::make_unique<TcpChannel>(this, rank);
}

void TcpTransport::isolate(int rank) {
  for (int owner = 0; owner < num_ranks_; ++owner) {
    if (owner == rank) continue;
    for (int peer = 0; peer < num_ranks_; ++peer) {
      int& fd = fds_[static_cast<std::size_t>(owner) * static_cast<std::size_t>(num_ranks_) +
                     static_cast<std::size_t>(peer)];
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// TcpChannel

TcpChannel::TcpChannel(TcpTransport* t, int rank) : t_(t), rank_(rank) {
  streams_.resize(static_cast<std::size_t>(t_->num_ranks_));
}

void TcpChannel::send(int dst, FrameKind kind, std::uint64_t tag, const std::byte* data,
                      std::size_t len) {
  if (dst < 0 || dst >= t_->num_ranks_ || dst == rank_) {
    throw std::out_of_range("TcpChannel::send: bad destination " + std::to_string(dst));
  }
  const int fd = t_->fd(rank_, dst);
  if (fd < 0) throw std::logic_error("TcpChannel::send: fd closed (isolated rank?)");

  detail::WireHdr w;
  w.len = static_cast<std::uint32_t>(len);
  w.kind = static_cast<std::uint32_t>(kind);
  w.src = rank_;
  w.pad = 0;
  w.tag = tag;

  // Write header then payload; the socket is non-blocking so a full buffer
  // shows up as a short/EAGAIN write — poll for space while watching the
  // stop flag. The receiver reassembles partial arrivals from the stream.
  const auto put = [&](const std::byte* p, std::size_t n) {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t k = ::send(fd, p + off, n - off, MSG_NOSIGNAL);
      if (k > 0) {
        off += static_cast<std::size_t>(k);
        continue;
      }
      if (k < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        fail_errno("TcpChannel::send");
      }
      if (stopped()) throw ChannelStopped();
      pollfd pf{fd, POLLOUT, 0};
      ::poll(&pf, 1, 10);
    }
  };
  put(reinterpret_cast<const std::byte*>(&w), sizeof(w));
  if (len > 0) put(data, len);
}

bool TcpChannel::drain(std::vector<Frame>& out) {
  bool any = false;
  for (int peer = 0; peer < t_->num_ranks_; ++peer) {
    if (peer == rank_) continue;
    const int fd = t_->fd(rank_, peer);
    if (fd < 0) continue;
    auto& buf = streams_[static_cast<std::size_t>(peer)];
    // Pull whatever the kernel has.
    std::byte chunk[16384];
    for (;;) {
      const ssize_t k = ::recv(fd, chunk, sizeof(chunk), 0);
      if (k > 0) {
        buf.insert(buf.end(), chunk, chunk + k);
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) break;
      break;  // peer closed (child exited) or error: frame what we have
    }
    // Frame complete messages out of the stream buffer.
    std::size_t off = 0;
    while (buf.size() - off >= sizeof(detail::WireHdr)) {
      detail::WireHdr w;
      std::memcpy(&w, buf.data() + off, sizeof(w));
      if (buf.size() - off < sizeof(w) + w.len) break;
      Frame f;
      f.kind = static_cast<FrameKind>(w.kind & ~detail::kPartialFlag);
      f.src = w.src;
      f.tag = w.tag;
      f.payload.assign(buf.data() + off + sizeof(w), buf.data() + off + sizeof(w) + w.len);
      out.push_back(std::move(f));
      any = true;
      off += sizeof(w) + w.len;
    }
    if (off > 0) buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(off));
  }
  return any;
}

bool TcpChannel::wait(double timeout_s) {
  std::vector<pollfd> pfs;
  pfs.reserve(static_cast<std::size_t>(t_->num_ranks_));
  for (int peer = 0; peer < t_->num_ranks_; ++peer) {
    if (peer == rank_) continue;
    const int fd = t_->fd(rank_, peer);
    if (fd >= 0) pfs.push_back(pollfd{fd, POLLIN, 0});
  }
  if (stopped()) return true;  // caller re-checks its abort flag
  if (pfs.empty()) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<long long>(timeout_s * 1e6)));
    return false;
  }
  const int ms = std::max(1, static_cast<int>(timeout_s * 1e3));
  return ::poll(pfs.data(), static_cast<nfds_t>(pfs.size()), ms) > 0;
}

}  // namespace fxpar::net
