// fxnet: shared-memory transport — one MPSC byte ring per rank.
//
// The parent creates the region before fork (shm_open + mmap, unlinked
// immediately so no /dev/shm/fx* name can outlive any crash); every rank
// inherits the mapping at the same address. Rank r consumes ring r;
// producers serialize on a per-ring lock held across one whole frame, so
// per-source FIFO order is a property of the ring itself. Frames larger
// than the ring are streamed as partial pieces (the producer keeps the
// lock, the consumer reassembles), so a bounded ring carries unbounded
// payloads as long as the consumer drains. Consumers park on a futex
// doorbell the producer rings after every committed piece.
#pragma once

#include <cstddef>
#include <map>
#include <memory>

#include "net/channel.hpp"

namespace fxpar::net {

namespace detail {
struct ShmRegion;  // mapped layout (rings + headers); see shm_channel.cpp
}

class ShmTransport final : public Transport {
 public:
  /// `ring_bytes` is the per-rank ring capacity (rounded up to a page);
  /// one frame piece is at most a quarter of it.
  explicit ShmTransport(int num_ranks, std::size_t ring_bytes = 1u << 20);
  ~ShmTransport() override;

  ShmTransport(const ShmTransport&) = delete;
  ShmTransport& operator=(const ShmTransport&) = delete;

  const char* name() const noexcept override { return "shm"; }
  int num_ranks() const noexcept override { return num_ranks_; }
  std::unique_ptr<Channel> attach(int rank) override;

 private:
  friend class ShmChannel;
  int num_ranks_;
  std::size_t ring_bytes_;
  std::size_t map_bytes_ = 0;
  detail::ShmRegion* region_ = nullptr;
};

class ShmChannel final : public Channel {
 public:
  ShmChannel(ShmTransport* t, int rank) : t_(t), rank_(rank) {}

  const char* transport() const noexcept override { return "shm"; }
  int rank() const noexcept override { return rank_; }

  void send(int dst, FrameKind kind, std::uint64_t tag, const std::byte* data,
            std::size_t len) override;
  bool drain(std::vector<Frame>& out) override;
  bool wait(double timeout_s) override;

 private:
  ShmTransport* t_;
  int rank_;
  /// Reassembly buffers for streamed (partial) frames, keyed by source.
  std::map<int, Frame> pending_;
};

}  // namespace fxpar::net
