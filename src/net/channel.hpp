// fxnet: byte-frame transport seam for the process-per-rank backend.
//
// A Transport is created by the parent process *before* forking: it owns
// whatever shared resources the ranks will communicate through (a shared
// memory region of per-rank rings, or a mesh of pre-connected loopback TCP
// sockets). Each rank — parent or forked child — then attach()es exactly
// one Channel endpoint for itself and moves frames through it:
//
//   [Frame] kind | src | tag | payload-bytes
//
// The contract mirrors the mailbox semantics of the exec seam
// (docs/execution.md, "Determinism contract"): frames from one source
// arrive in the order they were sent, so per-(src, tag) FIFO matching in
// the consumer reproduces the simulator's deterministic message order.
// Everything above framing — matching, barriers, abort — lives in
// exec::ProcBackend; the transports stay dumb byte movers so a future
// multi-node transport can slot in behind the same interface.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace fxpar::net {

/// What a frame carries. Data frames are direct-deposit messages; the
/// control kinds are shipped by a finishing child to rank 0 (its stats
/// already sit in shared memory; these carry the variable-size residue:
/// metric deltas, trace shards, flight-recorder events, then Done last —
/// per-source ordering guarantees rank 0 has everything once it sees Done).
enum class FrameKind : std::uint32_t {
  Data = 0,     ///< direct-deposit message payload
  Metrics = 1,  ///< serialized metrics delta (child -> rank 0)
  Trace = 2,    ///< serialized trace shard (child -> rank 0)
  Flight = 3,   ///< serialized flight-recorder events (child -> rank 0)
  Done = 4,     ///< child finished; no further frames follow
};

/// One reassembled frame, as handed to the consumer by Channel::drain().
struct Frame {
  FrameKind kind = FrameKind::Data;
  int src = -1;
  std::uint64_t tag = 0;
  std::vector<std::byte> payload;
};

/// Thrown out of a blocking channel operation after request-stop (the
/// backend's abort flag): the caller is unwinding, not failing.
struct ChannelStopped : std::runtime_error {
  ChannelStopped() : std::runtime_error("fxnet: channel stopped") {}
};

/// One rank's endpoint. Single-threaded use per endpoint (each logical
/// processor is one process/thread); distinct endpoints of one Transport
/// are used concurrently by design.
class Channel {
 public:
  virtual ~Channel() = default;

  /// "shm" / "tcp" (stable spelling used by bench records and CLIs).
  virtual const char* transport() const noexcept = 0;

  /// Rank this endpoint was attached as.
  virtual int rank() const noexcept = 0;

  /// Sends one frame to `dst`. May block (ring full / socket buffer full)
  /// until the consumer drains; honors the stop flag (throws
  /// ChannelStopped). `dst == rank()` is a caller error — self-sends are
  /// matched locally by the backend and never reach a transport.
  virtual void send(int dst, FrameKind kind, std::uint64_t tag, const std::byte* data,
                    std::size_t len) = 0;

  /// Appends every fully received frame to `out` without blocking; returns
  /// true when at least one frame was appended. Partially transmitted
  /// frames stay buffered until complete.
  virtual bool drain(std::vector<Frame>& out) = 0;

  /// Blocks until a frame may be available (or `timeout_s` elapsed);
  /// returns false on timeout. Spurious wakeups are allowed — callers
  /// always re-drain.
  virtual bool wait(double timeout_s) = 0;

  /// Installs a stop flag observed by blocking operations: when it becomes
  /// nonzero, send() throws ChannelStopped and wait() returns promptly.
  /// The pointed-to word must outlive the channel (the proc backend points
  /// it at the abort word in its shared control block, so every process
  /// observes the same stop).
  void set_stop(const std::atomic<std::uint32_t>* stop) noexcept { stop_ = stop; }

 protected:
  bool stopped() const noexcept {
    return stop_ != nullptr && stop_->load(std::memory_order_acquire) != 0;
  }

 private:
  const std::atomic<std::uint32_t>* stop_ = nullptr;
};

/// Factory for one run's channels, created in the parent before fork.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual const char* name() const noexcept = 0;
  virtual int num_ranks() const noexcept = 0;

  /// Endpoint for `rank`. After fork each process attaches as its own rank;
  /// in-process tests may attach several ranks from one address space.
  virtual std::unique_ptr<Channel> attach(int rank) = 0;

  /// Drops resources belonging to ranks other than `rank` (a forked child
  /// closes the socket ends it inherited but does not own). No-op where
  /// resources are naturally shared (shm).
  virtual void isolate(int /*rank*/) {}
};

}  // namespace fxpar::net
