#include "net/shm_channel.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <system_error>
#include <thread>

#ifdef __linux__
#include <linux/futex.h>
#include <sys/syscall.h>
#include <sys/time.h>
#endif

#include "net/wire.hpp"

namespace fxpar::net {
namespace detail {

struct alignas(64) RingHdr {
  std::atomic<std::uint64_t> head{0};  ///< bytes consumed (consumer-owned)
  std::atomic<std::uint64_t> tail{0};  ///< bytes committed (producer-owned)
  std::atomic<std::uint32_t> lock{0};  ///< producer mutex (0 free)
  std::atomic<std::uint32_t> doorbell{0};  ///< futex word, bumped per commit
};

/// The mapped region: num_ranks ring headers followed by num_ranks data
/// areas of ring_bytes each. Offsets are computed, not declared, so the
/// struct is just the access helper.
struct ShmRegion {
  static std::size_t bytes(int ranks, std::size_t ring_bytes) {
    return static_cast<std::size_t>(ranks) * (sizeof(RingHdr) + ring_bytes);
  }
  static RingHdr* hdr(void* base, int ranks, std::size_t ring_bytes, int r) {
    (void)ranks;
    (void)ring_bytes;
    return reinterpret_cast<RingHdr*>(base) + r;
  }
  static std::byte* data(void* base, int ranks, std::size_t ring_bytes, int r) {
    auto* p = reinterpret_cast<std::byte*>(base);
    return p + static_cast<std::size_t>(ranks) * sizeof(RingHdr) +
           static_cast<std::size_t>(r) * ring_bytes;
  }
};

namespace {

void futex_wake_word(std::atomic<std::uint32_t>* w) {
#ifdef __linux__
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(w), FUTEX_WAKE, INT32_MAX,
            nullptr, nullptr, 0);
#else
  (void)w;
#endif
}

/// Waits for *w to change from `seen` (or timeout). Spurious returns fine.
void futex_wait_word(std::atomic<std::uint32_t>* w, std::uint32_t seen,
                     double timeout_s) {
#ifdef __linux__
  timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_s);
  ts.tv_nsec = static_cast<long>((timeout_s - static_cast<double>(ts.tv_sec)) * 1e9);
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(w), FUTEX_WAIT, seen, &ts,
            nullptr, 0);
#else
  (void)w;
  (void)seen;
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(static_cast<long long>(timeout_s * 1e9)));
#endif
}

}  // namespace
}  // namespace detail

using detail::RingHdr;
using detail::ShmRegion;
using detail::WireHdr;

// ---------------------------------------------------------------------------
// ShmTransport

ShmTransport::ShmTransport(int num_ranks, std::size_t ring_bytes)
    : num_ranks_(num_ranks), ring_bytes_(ring_bytes < 4096 ? 4096 : ring_bytes) {
  if (num_ranks_ <= 0) {
    throw std::invalid_argument("ShmTransport: num_ranks must be positive");
  }
  map_bytes_ = ShmRegion::bytes(num_ranks_, ring_bytes_);
  // Name the segment, map it, and unlink immediately: forked children
  // inherit the mapping itself, and no /dev/shm/fx* entry can survive even
  // a crash between here and the first run.
  void* base = MAP_FAILED;
  static std::atomic<std::uint64_t> seq{0};
  for (int attempt = 0; attempt < 16 && base == MAP_FAILED; ++attempt) {
    const std::string name = "/fx." + std::to_string(::getpid()) + "." +
                             std::to_string(seq.fetch_add(1));
    const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) {
      if (errno == EEXIST) continue;
      break;  // shm_open unsupported: fall through to the anonymous mapping
    }
    if (::ftruncate(fd, static_cast<off_t>(map_bytes_)) == 0) {
      base = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    }
    ::shm_unlink(name.c_str());
    ::close(fd);
  }
  if (base == MAP_FAILED) {
    base = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  }
  if (base == MAP_FAILED) {
    throw std::system_error(errno, std::generic_category(), "ShmTransport: mmap");
  }
  std::memset(base, 0, map_bytes_);
  for (int r = 0; r < num_ranks_; ++r) {
    new (ShmRegion::hdr(base, num_ranks_, ring_bytes_, r)) RingHdr();
  }
  region_ = reinterpret_cast<detail::ShmRegion*>(base);
}

ShmTransport::~ShmTransport() {
  if (region_ != nullptr) ::munmap(region_, map_bytes_);
}

std::unique_ptr<Channel> ShmTransport::attach(int rank) {
  if (rank < 0 || rank >= num_ranks_) {
    throw std::out_of_range("ShmTransport::attach: bad rank " + std::to_string(rank));
  }
  return std::make_unique<ShmChannel>(this, rank);
}

// ---------------------------------------------------------------------------
// ShmChannel

void ShmChannel::send(int dst, FrameKind kind, std::uint64_t tag, const std::byte* data,
                      std::size_t len) {
  if (dst < 0 || dst >= t_->num_ranks_ || dst == rank_) {
    throw std::out_of_range("ShmChannel::send: bad destination " + std::to_string(dst));
  }
  void* base = t_->region_;
  const std::size_t cap = t_->ring_bytes_;
  RingHdr* h = ShmRegion::hdr(base, t_->num_ranks_, cap, dst);
  std::byte* ring = ShmRegion::data(base, t_->num_ranks_, cap, dst);
  const std::size_t max_piece = cap / 4;

  // Producer lock: held across every piece of the frame so pieces land
  // contiguously and per-source order is the ring order.
  for (int spin = 0;; ++spin) {
    std::uint32_t expect = 0;
    if (h->lock.compare_exchange_weak(expect, 1, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      break;
    }
    if (stopped()) throw ChannelStopped();
    if (spin > 64) std::this_thread::sleep_for(std::chrono::microseconds(20));
  }
  struct Unlock {
    RingHdr* h;
    ~Unlock() { h->lock.store(0, std::memory_order_release); }
  } unlock{h};

  std::size_t off = 0;
  do {
    const std::size_t piece = std::min(len - off, max_piece);
    const std::size_t need = sizeof(WireHdr) + piece;
    // Wait for ring space; the consumer frees it by draining. Progress is
    // guaranteed because the destination drains its ring in every park
    // loop (receive, barrier), not only when it wants this frame.
    std::uint64_t tail = h->tail.load(std::memory_order_relaxed);
    while (cap - (tail - h->head.load(std::memory_order_acquire)) < need) {
      if (stopped()) throw ChannelStopped();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    WireHdr w;
    w.len = static_cast<std::uint32_t>(piece);
    w.kind = static_cast<std::uint32_t>(kind) |
             (off + piece < len ? detail::kPartialFlag : 0u);
    w.src = rank_;
    w.pad = 0;
    w.tag = tag;
    const auto put = [&](const void* p, std::size_t n) {
      const std::size_t at = static_cast<std::size_t>(tail % cap);
      const std::size_t first = std::min(n, cap - at);
      std::memcpy(ring + at, p, first);
      if (first < n) {
        std::memcpy(ring, static_cast<const std::byte*>(p) + first, n - first);
      }
      tail += n;
    };
    put(&w, sizeof(w));
    if (piece > 0) put(data + off, piece);
    h->tail.store(tail, std::memory_order_release);
    h->doorbell.fetch_add(1, std::memory_order_release);
    detail::futex_wake_word(&h->doorbell);
    off += piece;
  } while (off < len);
}

bool ShmChannel::drain(std::vector<Frame>& out) {
  void* base = t_->region_;
  const std::size_t cap = t_->ring_bytes_;
  RingHdr* h = ShmRegion::hdr(base, t_->num_ranks_, cap, rank_);
  const std::byte* ring = ShmRegion::data(base, t_->num_ranks_, cap, rank_);
  bool any = false;

  std::uint64_t head = h->head.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t tail = h->tail.load(std::memory_order_acquire);
    const std::uint64_t avail = tail - head;
    if (avail < sizeof(WireHdr)) break;
    const auto get = [&](void* p, std::size_t n, std::uint64_t from) {
      const std::size_t at = static_cast<std::size_t>(from % cap);
      const std::size_t first = std::min(n, cap - at);
      std::memcpy(p, ring + at, first);
      if (first < n) std::memcpy(static_cast<std::byte*>(p) + first, ring, n - first);
    };
    WireHdr w;
    get(&w, sizeof(w), head);
    if (avail < sizeof(WireHdr) + w.len) break;  // piece not fully committed
    const bool partial = (w.kind & detail::kPartialFlag) != 0;
    const auto kind = static_cast<FrameKind>(w.kind & ~detail::kPartialFlag);
    Frame& pend = pending_[w.src];
    if (pend.payload.empty() && pend.src < 0) {
      pend.kind = kind;
      pend.src = w.src;
      pend.tag = w.tag;
    }
    const std::size_t at = pend.payload.size();
    pend.payload.resize(at + w.len);
    if (w.len > 0) get(pend.payload.data() + at, w.len, head + sizeof(WireHdr));
    head += sizeof(WireHdr) + w.len;
    h->head.store(head, std::memory_order_release);
    if (!partial) {
      out.push_back(std::move(pend));
      pending_.erase(w.src);
      any = true;
    }
  }
  return any;
}

bool ShmChannel::wait(double timeout_s) {
  void* base = t_->region_;
  RingHdr* h = ShmRegion::hdr(base, t_->num_ranks_, t_->ring_bytes_, rank_);
  const std::uint32_t seen = h->doorbell.load(std::memory_order_acquire);
  if (h->tail.load(std::memory_order_acquire) != h->head.load(std::memory_order_relaxed)) {
    return true;
  }
  if (stopped()) return true;
  detail::futex_wait_word(&h->doorbell, seen, timeout_s);
  return h->doorbell.load(std::memory_order_acquire) != seen;
}

}  // namespace fxpar::net
