// fxnet internal: the on-wire piece header shared by every transport.
#pragma once

#include <cstdint>

namespace fxpar::net::detail {

/// High bit of the wire kind marks a non-final piece of a streamed frame.
inline constexpr std::uint32_t kPartialFlag = 0x80000000u;

/// On-wire piece header (same layout in the shm rings and on TCP streams).
struct WireHdr {
  std::uint32_t len;   ///< payload bytes in this piece
  std::uint32_t kind;  ///< FrameKind, possibly | kPartialFlag
  std::int32_t src;
  std::uint32_t pad;
  std::uint64_t tag;
};
static_assert(sizeof(WireHdr) == 24);

}  // namespace fxpar::net::detail
