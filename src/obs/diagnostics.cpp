#include "obs/diagnostics.hpp"

#include <cstdio>
#include <sstream>

namespace fxpar::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += ch;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += ch;
    }
  }
  return out;
}

std::string workers_json(const std::vector<WorkerState>& workers, double now) {
  std::ostringstream os;
  os.precision(9);
  os << "[";
  bool first = true;
  for (const auto& w : workers) {
    if (!first) os << ",";
    first = false;
    os << "{\"rank\":" << w.rank << ",\"state\":\"" << json_escape(w.state)
       << "\",\"block_reason\":\"" << json_escape(w.block_reason)
       << "\",\"mailbox_depth\":" << w.mailbox_depth
       << ",\"loop_chunks_pending\":" << w.loop_chunks_pending
       << ",\"cpu\":" << w.cpu << ",\"node\":" << w.node;
    if (w.last_beat >= 0.0) {
      os << ",\"last_beat\":" << w.last_beat
         << ",\"heartbeat_age_s\":" << (now - w.last_beat);
    } else {
      os << ",\"last_beat\":null,\"heartbeat_age_s\":null";
    }
    os << "}";
  }
  os << "]";
  return os.str();
}

std::string barriers_json(const std::vector<BarrierOccupancy>& barriers) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& b : barriers) {
    if (!first) os << ",";
    first = false;
    os << "{\"group_key\":" << b.group_key << ",\"members\":" << b.members
       << ",\"waiting\":" << b.waiting << "}";
  }
  os << "]";
  return os.str();
}

std::string diagnostic_json(const DiagnosticInfo& d) {
  std::ostringstream os;
  os.precision(9);
  os << "{\"reason\":\"" << json_escape(d.reason) << "\",\"error\":\""
     << json_escape(d.error) << "\",\"backend\":\"" << json_escape(d.backend)
     << "\",\"procs\":" << d.procs << ",\"now\":" << d.intro.now
     << ",\"workers\":" << workers_json(d.intro.workers, d.intro.now)
     << ",\"barriers\":" << barriers_json(d.intro.barriers) << ",\"metrics\":"
     << (d.metrics_json.empty() ? std::string("null") : d.metrics_json)
     << ",\"flight\":"
     << FlightRecorder::events_json(d.recent, d.max_flight_events) << "}";
  return os.str();
}

}  // namespace fxpar::obs
