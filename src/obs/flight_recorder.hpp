// fxobs: always-on flight recorder.
//
// A fixed-size per-worker ring buffer of recent runtime events — spans,
// messages, receives, barriers, io transfers, steals — kept at bounded
// memory even when full tracing (trace::TraceRecorder) is off. The rings
// overwrite oldest-first, so at any moment the recorder holds the newest
// `events_per_proc` events of every worker; a dump filters them to the
// last `window_s` seconds of backend time and renders Chrome-trace JSON
// (chrome://tracing / Perfetto "instant" events) or a flat JSON array for
// the diagnostic bundles.
//
// Concurrency: one mutex per worker ring. Writers (the worker itself, or
// the Machine service running on its behalf) contend only with dump
// requests, never with each other, so the hot-path cost is an uncontended
// lock plus a 56-byte copy. When the recorder is disabled, callers pay a
// single null-pointer test (see exec::Backend::flight()).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fxpar::obs {

/// Event categories, mapped to Chrome-trace names on export.
enum class FlightKind : std::uint8_t {
  Span = 0,     ///< task-region span mark (Context::span)
  Message = 1,  ///< message deposited (a = dst, b = tag)
  Recv = 2,     ///< message received (a = src, b = tag)
  Barrier = 3,  ///< barrier completed (a = group key)
  Io = 4,       ///< io_operation completed (a = bytes)
  Steal = 5,    ///< loop chunk stolen (a = victim, b = iterations)
  Mark = 6,     ///< free-form mark
};

const char* flight_kind_name(FlightKind k) noexcept;

/// One recorded event. POD, fixed size; `name` is truncated to fit.
struct FlightEvent {
  double t = 0.0;  ///< backend clock (real s on threads, modeled s on sim)
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::int32_t proc = 0;
  FlightKind kind = FlightKind::Mark;
  char name[27] = {0};
};

class FlightRecorder {
 public:
  /// `procs` rings of `events_per_proc` events each; dumps keep only
  /// events within `window_s` seconds of the newest recorded timestamp.
  FlightRecorder(int procs, std::size_t events_per_proc, double window_s);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Record one event on `proc`'s ring (out-of-range procs are dropped).
  void record(int proc, FlightKind kind, double t, const char* name,
              std::uint64_t a = 0, std::uint64_t b = 0);

  /// Merged snapshot: every ring's surviving events within the window,
  /// sorted by timestamp.
  std::vector<FlightEvent> snapshot() const;

  /// Chrome-trace JSON ({"traceEvents":[...]}) of snapshot(); ts in us.
  std::string chrome_json() const;

  /// Flat JSON array of the newest `max_events` events (0 = all) — the
  /// "last flight-recorder events" section of a diagnostic bundle.
  static std::string events_json(const std::vector<FlightEvent>& events,
                                 std::size_t max_events = 0);

  int procs() const noexcept { return static_cast<int>(rings_.size()); }
  std::size_t capacity() const noexcept { return cap_; }
  double window_s() const noexcept { return window_s_; }

  /// Events recorded / overwritten by ring wrap, across all rings.
  std::uint64_t total_recorded() const;
  std::uint64_t dropped() const;

  /// Surviving events of one ring, oldest first, with no window filter;
  /// out-of-range procs get an empty vector. Together with ring_total()
  /// this lets the proc backend ship a forked child's post-fork events to
  /// the parent: the child replays the last `ring_total() - fork_total`
  /// survivors through the parent's record().
  std::vector<FlightEvent> ring_events(int proc) const;
  /// Events ever recorded on `proc`'s ring (0 for out-of-range procs).
  std::uint64_t ring_total(int proc) const;

 private:
  struct alignas(64) Ring {
    mutable std::mutex mu;
    std::vector<FlightEvent> buf;  ///< size cap_ once first event lands
    std::uint64_t total = 0;       ///< events ever recorded; buf[total % cap]
  };

  std::size_t cap_;
  double window_s_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace fxpar::obs
