// fxobs: structured runtime diagnostics.
//
// Renders one JSON "diagnostic bundle" from a backend introspection plus
// context: why it was captured (deadlock / abort / stall / on-demand),
// the error text, a metrics snapshot, and the tail of the flight
// recorder. The bundle is what a wedged run leaves behind — Machine
// emits it on DeadlockError, on an aborting exception, when the stall
// watchdog fires, and on demand at the /diagnostics endpoint.
#pragma once

#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/introspect.hpp"

namespace fxpar::obs {

struct DiagnosticInfo {
  std::string reason;   ///< "deadlock" | "abort" | "stall" | "on-demand"
  std::string error;    ///< exception text, empty if none
  std::string backend;  ///< backend kind name ("sim" / "threads")
  int procs = 0;
  Introspection intro;
  /// Registry snapshot as JSON object text ("" = metrics disabled,
  /// rendered as null).
  std::string metrics_json;
  /// Tail of the flight recorder (possibly empty).
  std::vector<FlightEvent> recent;
  /// Cap on flight events included in the bundle (newest kept).
  std::size_t max_flight_events = 256;
};

/// JSON-escape `s` for embedding in a string literal.
std::string json_escape(const std::string& s);

/// `[{"rank":..,"state":..,"block_reason":..,...}, ...]`. `now` is the
/// capture-time backend clock used to derive heartbeat ages.
std::string workers_json(const std::vector<WorkerState>& workers, double now);

/// `[{"group_key":..,"members":..,"waiting":..}, ...]`
std::string barriers_json(const std::vector<BarrierOccupancy>& barriers);

/// The full bundle.
std::string diagnostic_json(const DiagnosticInfo& d);

}  // namespace fxpar::obs
