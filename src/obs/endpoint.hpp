// fxobs: embedded HTTP endpoint.
//
// A dependency-free HTTP/1.1 server on plain POSIX sockets: one
// background thread, bound to 127.0.0.1 only, answering GET requests for
// a fixed set of registered paths. It exists so a live Machine can be
// inspected while it runs — `curl localhost:PORT/metrics` mid-stream —
// without linking any web framework. Each response is produced by a
// Handler callback at request time, sent with Content-Length and
// Connection: close (no keep-alive, no chunking, no TLS: this is a
// loopback diagnostics port, not a public service).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace fxpar::obs {

class Endpoint {
 public:
  /// Produces the response body for one GET; called on the server thread.
  using Handler = std::function<std::string()>;

  Endpoint() = default;
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Register `fn` for GET `path` (e.g. "/metrics"). Must be called
  /// before start(); query strings are stripped before matching.
  void handle(const std::string& path, const std::string& content_type,
              Handler fn);

  /// Bind 127.0.0.1:`port` (0 = kernel-chosen ephemeral port, reported by
  /// port()) and start the accept thread. Returns false if the bind or
  /// listen fails — the caller should treat that as "endpoint disabled",
  /// not fatal.
  bool start(int port);

  /// Stop the accept thread and close the socket. Idempotent.
  void stop();

  /// The bound port, or -1 before a successful start().
  int port() const noexcept { return port_; }

  bool running() const noexcept { return listen_fd_ >= 0; }

 private:
  void serve();

  struct Route {
    std::string content_type;
    Handler fn;
  };

  std::map<std::string, Route> routes_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace fxpar::obs
