#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace fxpar::obs {

const char* flight_kind_name(FlightKind k) noexcept {
  switch (k) {
    case FlightKind::Span: return "span";
    case FlightKind::Message: return "send";
    case FlightKind::Recv: return "recv";
    case FlightKind::Barrier: return "barrier";
    case FlightKind::Io: return "io";
    case FlightKind::Steal: return "steal";
    case FlightKind::Mark: return "mark";
  }
  return "?";
}

FlightRecorder::FlightRecorder(int procs, std::size_t events_per_proc,
                               double window_s)
    : cap_(events_per_proc < 1 ? 1 : events_per_proc), window_s_(window_s) {
  rings_.reserve(static_cast<std::size_t>(procs < 0 ? 0 : procs));
  for (int p = 0; p < procs; ++p) rings_.push_back(std::make_unique<Ring>());
}

void FlightRecorder::record(int proc, FlightKind kind, double t,
                            const char* name, std::uint64_t a,
                            std::uint64_t b) {
  if (proc < 0 || static_cast<std::size_t>(proc) >= rings_.size()) return;
  Ring& r = *rings_[static_cast<std::size_t>(proc)];
  std::lock_guard<std::mutex> lk(r.mu);
  if (r.buf.size() < cap_) r.buf.resize(cap_);
  FlightEvent& e = r.buf[static_cast<std::size_t>(r.total % cap_)];
  e.t = t;
  e.a = a;
  e.b = b;
  e.proc = proc;
  e.kind = kind;
  if (name != nullptr) {
    std::strncpy(e.name, name, sizeof(e.name) - 1);
    e.name[sizeof(e.name) - 1] = '\0';
  } else {
    e.name[0] = '\0';
  }
  ++r.total;
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  for (const auto& rp : rings_) {
    const Ring& r = *rp;
    std::lock_guard<std::mutex> lk(r.mu);
    const std::uint64_t live = std::min<std::uint64_t>(r.total, cap_);
    // Oldest surviving event first: the ring wrapped at buf[total % cap].
    for (std::uint64_t i = 0; i < live; ++i) {
      out.push_back(r.buf[static_cast<std::size_t>((r.total - live + i) % cap_)]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& x, const FlightEvent& y) { return x.t < y.t; });
  // Window filter keyed on the newest event — the recorder itself has no
  // clock, so "the last N seconds" means N seconds of backend time before
  // the most recent recorded timestamp.
  if (!out.empty() && window_s_ > 0.0) {
    const double cutoff = out.back().t - window_s_;
    out.erase(out.begin(),
              std::find_if(out.begin(), out.end(),
                           [cutoff](const FlightEvent& e) { return e.t >= cutoff; }));
  }
  return out;
}

namespace {

// Span names come from user code: escape them so the export stays valid
// JSON whatever the caller passed.
void append_escaped(std::ostringstream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      os << '\\' << *s;
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << *s;
    }
  }
}

void append_name(std::ostringstream& os, const FlightEvent& e) {
  append_escaped(os, e.name[0] != '\0' ? e.name : flight_kind_name(e.kind));
}

void append_event_fields(std::ostringstream& os, const FlightEvent& e) {
  os << "\"name\":\"";
  append_name(os, e);
  os << "\",\"kind\":\"" << flight_kind_name(e.kind) << "\",\"t\":" << e.t
     << ",\"proc\":" << e.proc << ",\"a\":" << e.a << ",\"b\":" << e.b;
}

}  // namespace

std::string FlightRecorder::chrome_json() const {
  const auto events = snapshot();
  std::ostringstream os;
  os.setf(std::ios::fmtflags(0), std::ios::floatfield);
  os.precision(9);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    append_name(os, e);
    os << "\",\"cat\":\"" << flight_kind_name(e.kind)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" << e.proc
       << ",\"ts\":" << e.t * 1e6 << ",\"args\":{\"a\":" << e.a
       << ",\"b\":" << e.b << "}}";
  }
  os << "]}";
  return os.str();
}

std::string FlightRecorder::events_json(const std::vector<FlightEvent>& events,
                                        std::size_t max_events) {
  const std::size_t n = events.size();
  const std::size_t begin =
      (max_events > 0 && n > max_events) ? n - max_events : 0;
  std::ostringstream os;
  os.precision(9);
  os << "[";
  for (std::size_t i = begin; i < n; ++i) {
    if (i != begin) os << ",";
    os << "{";
    append_event_fields(os, events[i]);
    os << "}";
  }
  os << "]";
  return os.str();
}

std::vector<FlightEvent> FlightRecorder::ring_events(int proc) const {
  std::vector<FlightEvent> out;
  if (proc < 0 || static_cast<std::size_t>(proc) >= rings_.size()) return out;
  const Ring& r = *rings_[static_cast<std::size_t>(proc)];
  std::lock_guard<std::mutex> lk(r.mu);
  const std::uint64_t live = std::min<std::uint64_t>(r.total, cap_);
  out.reserve(static_cast<std::size_t>(live));
  for (std::uint64_t i = 0; i < live; ++i) {
    out.push_back(r.buf[static_cast<std::size_t>((r.total - live + i) % cap_)]);
  }
  return out;
}

std::uint64_t FlightRecorder::ring_total(int proc) const {
  if (proc < 0 || static_cast<std::size_t>(proc) >= rings_.size()) return 0;
  const Ring& r = *rings_[static_cast<std::size_t>(proc)];
  std::lock_guard<std::mutex> lk(r.mu);
  return r.total;
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::uint64_t n = 0;
  for (const auto& rp : rings_) {
    std::lock_guard<std::mutex> lk(rp->mu);
    n += rp->total;
  }
  return n;
}

std::uint64_t FlightRecorder::dropped() const {
  std::uint64_t n = 0;
  for (const auto& rp : rings_) {
    std::lock_guard<std::mutex> lk(rp->mu);
    n += rp->total > cap_ ? rp->total - cap_ : 0;
  }
  return n;
}

}  // namespace fxpar::obs
