#include "obs/endpoint.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <utility>

namespace fxpar::obs {

namespace {

// Sends the whole buffer, retrying on EINTR; gives up on other errors
// (the peer hung up — nothing useful to do on a diagnostics port).
void send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return;
    }
  }
}

void send_response(int fd, int code, const char* status,
                   const std::string& content_type, const std::string& body) {
  std::string head = "HTTP/1.1 " + std::to_string(code) + " " + status +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  send_all(fd, head.data(), head.size());
  send_all(fd, body.data(), body.size());
}

}  // namespace

Endpoint::~Endpoint() { stop(); }

void Endpoint::handle(const std::string& path, const std::string& content_type,
                      Handler fn) {
  routes_[path] = Route{content_type, std::move(fn)};
}

bool Endpoint::start(int port) {
  if (listen_fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
  return true;
}

void Endpoint::stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Endpoint::serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);  // 100 ms: bounds stop() latency
    if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    std::string req;
    char buf[2048];
    while (req.size() < 16 * 1024 && req.find("\r\n\r\n") == std::string::npos) {
      const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
      if (n <= 0) break;
      req.append(buf, static_cast<std::size_t>(n));
    }

    // "GET /path[?query] HTTP/1.1" — anything else is a 404/405.
    std::string path;
    bool is_get = false;
    const auto sp1 = req.find(' ');
    if (sp1 != std::string::npos) {
      is_get = req.compare(0, sp1, "GET") == 0;
      const auto sp2 = req.find(' ', sp1 + 1);
      if (sp2 != std::string::npos) {
        path = req.substr(sp1 + 1, sp2 - sp1 - 1);
        const auto q = path.find('?');
        if (q != std::string::npos) path.resize(q);
      }
    }

    const auto it = routes_.find(path);
    if (!is_get || path.empty()) {
      send_response(conn, 405, "Method Not Allowed", "text/plain",
                    "GET only\n");
    } else if (it == routes_.end()) {
      std::string body = "not found; routes:\n";
      for (const auto& [p, r] : routes_) body += "  " + p + "\n";
      send_response(conn, 404, "Not Found", "text/plain", body);
    } else {
      try {
        send_response(conn, 200, "OK", it->second.content_type,
                      it->second.fn());
      } catch (const std::exception& e) {
        send_response(conn, 500, "Internal Server Error", "text/plain",
                      std::string("handler error: ") + e.what() + "\n");
      } catch (...) {
        send_response(conn, 500, "Internal Server Error", "text/plain",
                      "handler error\n");
      }
    }
    ::close(conn);
  }
}

}  // namespace fxpar::obs
