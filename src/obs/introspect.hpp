// fxobs: structured runtime introspection types.
//
// A Backend can describe the live state of its logical processors — who is
// running, who is parked and why, how deep the mailboxes are, which
// barriers are partially occupied — through these plain structs. They are
// the payload of the diagnostic bundles (diagnostics.hpp) emitted on
// deadlock, abort, or a stall-watchdog firing, and of the /healthz
// endpoint's per-worker liveness view.
//
// This header is dependency-free (standard library only) so both the exec
// layer (which produces introspections) and the obs layer (which renders
// them) can include it without a link cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fxpar::obs {

/// Live state of one logical processor.
struct WorkerState {
  int rank = -1;
  /// "running", "parked" (blocked in a machine service) or "finished".
  std::string state = "running";
  /// Why the worker is blocked ("recv", "barrier", "io", or the
  /// simulator's fuller "recv from proc N tag T"); empty when running.
  std::string block_reason;
  /// Messages deposited to this worker and not yet received.
  std::int64_t mailbox_depth = 0;
  /// Unclaimed chunks still published in this worker's loop deques.
  std::int64_t loop_chunks_pending = 0;
  /// Pinned CPU / NUMA node under an active placement policy, -1/-1 when
  /// unpinned (see exec/topology.hpp).
  int cpu = -1;
  int node = -1;
  /// Backend-clock stamp of the worker's last runtime-service activity
  /// (message, barrier, loop chunk, io); negative when unknown. The age
  /// `now - last_beat` is the heartbeat staleness shown by /healthz.
  double last_beat = -1.0;
};

/// Occupancy of one subset barrier: how many of the group's members are
/// currently parked inside it.
struct BarrierOccupancy {
  std::uint64_t group_key = 0;  ///< ProcessorGroup content key
  int members = 0;              ///< group size
  int waiting = 0;              ///< members parked in an unreleased episode
};

/// One backend introspection: a point-in-time view of every worker plus
/// the partially-occupied barriers. `now` is the backend clock at capture
/// (real seconds on threads, modeled seconds on the simulator).
struct Introspection {
  double now = 0.0;
  std::vector<WorkerState> workers;
  std::vector<BarrierOccupancy> barriers;
};

}  // namespace fxpar::obs
