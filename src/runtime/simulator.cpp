#include "runtime/simulator.hpp"

#include <cassert>
#include <sstream>
#include <utility>

#include "trace/trace.hpp"

namespace fxpar::runtime {

Simulator::Simulator(int num_procs, std::size_t stack_bytes)
    : stack_bytes_(stack_bytes) {
  if (num_procs <= 0) throw std::invalid_argument("Simulator: num_procs must be positive");
  procs_.resize(static_cast<std::size_t>(num_procs));
}

Simulator::~Simulator() = default;

void Simulator::check_rank(int rank) const {
  if (rank < 0 || rank >= num_procs()) {
    throw std::out_of_range("Simulator: rank " + std::to_string(rank) +
                            " out of range [0," + std::to_string(num_procs()) + ")");
  }
}

void Simulator::spawn(int rank, std::function<void()> body) {
  check_rank(rank);
  if (procs_[rank].fiber) throw std::logic_error("Simulator::spawn: rank already spawned");
  procs_[rank].fiber = std::make_unique<Fiber>(std::move(body), stack_bytes_);
}

bool Simulator::is_finished(int rank) const {
  check_rank(rank);
  const auto& f = procs_[rank].fiber;
  return f && f->finished();
}

int Simulator::pick_next() const {
  int best = -1;
  SimTime best_time = std::numeric_limits<SimTime>::infinity();
  for (int r = 0; r < num_procs(); ++r) {
    const Proc& p = procs_[r];
    if (!p.fiber || p.fiber->finished() || p.blocked) continue;
    if (p.clk.now < best_time) {
      best_time = p.clk.now;
      best = r;  // ties broken by lowest rank because of strict <
    }
  }
  return best;
}

void Simulator::run() {
  for (int r = 0; r < num_procs(); ++r) {
    if (!procs_[r].fiber) {
      throw std::logic_error("Simulator::run: rank " + std::to_string(r) + " never spawned");
    }
  }
  for (;;) {
    const int next = pick_next();
    if (next < 0) {
      bool all_done = true;
      for (int r = 0; r < num_procs(); ++r) all_done &= is_finished(r);
      if (all_done) return;
      std::ostringstream oss;
      oss << "simulated deadlock: all unfinished processors are blocked\n";
      for (int r = 0; r < num_procs(); ++r) {
        if (!is_finished(r)) {
          oss << "  proc " << r << " @t=" << procs_[r].clk.now << ": "
              << (procs_[r].blocked ? procs_[r].block_reason : "<runnable?>") << "\n";
        }
      }
      throw DeadlockError(oss.str());
    }
    running_rank_ = next;
    procs_[next].fiber->resume();  // rethrows fiber exceptions
    running_rank_ = -1;
  }
}

int Simulator::current_rank() const {
  if (running_rank_ < 0) {
    throw std::logic_error("Simulator: no processor fiber is executing");
  }
  return running_rank_;
}

Simulator::Proc& Simulator::current_proc() { return procs_[current_rank()]; }

void Simulator::advance(SimTime dt) {
  if (dt < 0) throw std::invalid_argument("Simulator::advance: negative time");
  Proc& p = current_proc();
  p.clk.now += dt;
  p.clk.busy += dt;
  if (tracer_) tracer_->add_busy(running_rank_, dt);
}

void Simulator::advance_to(SimTime t) {
  Proc& p = current_proc();
  if (t > p.clk.now) {
    p.clk.idle += t - p.clk.now;
    p.clk.now = t;
  }
}

void Simulator::block(std::string why) {
  Proc& p = current_proc();
  p.blocked = true;
  p.block_reason = std::move(why);
  p.clk.blocks += 1;
  p.fiber->yield_to_owner();
  assert(!p.blocked && "resumed while still marked blocked");
}

void Simulator::yield() {
  Proc& p = current_proc();
  p.fiber->yield_to_owner();
}

void Simulator::wake(int rank, SimTime not_before) {
  check_rank(rank);
  Proc& p = procs_[rank];
  if (!p.blocked) {
    throw std::logic_error("Simulator::wake: proc " + std::to_string(rank) +
                           " is not blocked");
  }
  p.blocked = false;
  p.block_reason.clear();
  if (not_before > p.clk.now) {
    p.clk.idle += not_before - p.clk.now;
    p.clk.now = not_before;
  }
}

SimTime Simulator::finish_time() const {
  SimTime t = 0.0;
  for (const Proc& p : procs_) t = std::max(t, p.clk.now);
  return t;
}

}  // namespace fxpar::runtime
