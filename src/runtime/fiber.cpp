#include "runtime/fiber.hpp"

#include <cassert>
#include <utility>

namespace fxpar::runtime {

namespace {
// Single-threaded simulator: a plain static suffices and avoids TLS costs.
Fiber* g_current_fiber = nullptr;
// Handoff slot for the makecontext trampoline (no portable pointer args).
Fiber* g_starting_fiber = nullptr;
}  // namespace

Fiber* Fiber::current() noexcept { return g_current_fiber; }

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(stack_bytes) {
  if (!body_) throw std::invalid_argument("Fiber: empty body");
  if (::getcontext(&context_) != 0) throw std::runtime_error("getcontext failed");
  context_.uc_stack.ss_sp = stack_.base();
  context_.uc_stack.ss_size = stack_.size();
  context_.uc_link = nullptr;  // trampoline never falls off the end
  ::makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
}

Fiber::~Fiber() {
  // Destroying a suspended fiber abandons its stack frame; that is legal for
  // our usage only after the simulation drained, which the Simulator ensures.
}

void Fiber::trampoline() {
  Fiber* self = g_starting_fiber;
  g_starting_fiber = nullptr;
  assert(self != nullptr);
  try {
    self->body_();
  } catch (...) {
    self->exception_ = std::current_exception();
  }
  self->state_ = State::Finished;
  g_current_fiber = nullptr;
  ::swapcontext(&self->context_, &self->owner_context_);
  // Unreachable: a finished fiber is never resumed.
  assert(false && "resumed a finished fiber");
}

void Fiber::resume() {
  assert(g_current_fiber == nullptr && "resume() called from inside a fiber");
  if (state_ == State::Finished) throw std::logic_error("Fiber::resume: already finished");
  if (state_ == State::Running) throw std::logic_error("Fiber::resume: already running");

  const bool first = (state_ == State::Created);
  state_ = State::Running;
  g_current_fiber = this;
  if (first) g_starting_fiber = this;
  if (::swapcontext(&owner_context_, &context_) != 0) {
    g_current_fiber = nullptr;
    throw std::runtime_error("swapcontext failed");
  }
  // Back in the owner. The fiber either yielded or finished.
  g_current_fiber = nullptr;
  if (exception_) {
    std::exception_ptr e = std::exchange(exception_, nullptr);
    std::rethrow_exception(e);
  }
}

void Fiber::yield_to_owner() {
  assert(g_current_fiber == this && "yield_to_owner() from a non-running fiber");
  state_ = State::Suspended;
  g_current_fiber = nullptr;
  if (::swapcontext(&context_, &owner_context_) != 0) {
    throw std::runtime_error("swapcontext failed");
  }
  // Resumed again.
  g_current_fiber = this;
  state_ = State::Running;
}

}  // namespace fxpar::runtime
