#include "runtime/fiber.hpp"

#include <cassert>
#include <utility>

#ifdef FXPAR_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace fxpar::runtime {

namespace {
// thread_local: each simulator runs its fibers on one OS thread, but the
// threaded execution backend may host Machines on several threads at once
// (and tests run sim Machines from worker threads).
thread_local Fiber* g_current_fiber = nullptr;
// Handoff slot for the makecontext trampoline (no portable pointer args).
thread_local Fiber* g_starting_fiber = nullptr;
}  // namespace

Fiber* Fiber::current() noexcept { return g_current_fiber; }

namespace {
// ASan's redzones and fake frames inflate stack usage severalfold; grow the
// requested stack so depth limits tuned for plain builds still fit.
std::size_t padded_stack_bytes(std::size_t stack_bytes) {
#ifdef FXPAR_ASAN_FIBERS
  return stack_bytes * 4;
#else
  return stack_bytes;
#endif
}
}  // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(padded_stack_bytes(stack_bytes)) {
  if (!body_) throw std::invalid_argument("Fiber: empty body");
  if (::getcontext(&context_) != 0) throw std::runtime_error("getcontext failed");
  context_.uc_stack.ss_sp = stack_.base();
  context_.uc_stack.ss_size = stack_.size();
  context_.uc_link = nullptr;  // trampoline never falls off the end
  ::makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
}

Fiber::~Fiber() {
  // Destroying a suspended fiber abandons its stack frame; that is legal for
  // our usage only after the simulation drained, which the Simulator ensures.
}

void Fiber::trampoline() {
  Fiber* self = g_starting_fiber;
  g_starting_fiber = nullptr;
  assert(self != nullptr);
#ifdef FXPAR_ASAN_FIBERS
  // First entry on this stack: complete the switch started in resume() and
  // remember where the owner lives for the switches back.
  __sanitizer_finish_switch_fiber(nullptr, &self->owner_stack_bottom_,
                                  &self->owner_stack_size_);
#endif
  try {
    self->body_();
  } catch (...) {
    self->exception_ = std::current_exception();
  }
  self->state_ = State::Finished;
  g_current_fiber = nullptr;
#ifdef FXPAR_ASAN_FIBERS
  // Null fake-stack slot: the fiber is dying, let ASan release its state.
  __sanitizer_start_switch_fiber(nullptr, self->owner_stack_bottom_,
                                 self->owner_stack_size_);
#endif
  ::swapcontext(&self->context_, &self->owner_context_);
  // Unreachable: a finished fiber is never resumed.
  assert(false && "resumed a finished fiber");
}

void Fiber::resume() {
  assert(g_current_fiber == nullptr && "resume() called from inside a fiber");
  if (state_ == State::Finished) throw std::logic_error("Fiber::resume: already finished");
  if (state_ == State::Running) throw std::logic_error("Fiber::resume: already running");

  const bool first = (state_ == State::Created);
  state_ = State::Running;
  g_current_fiber = this;
  if (first) g_starting_fiber = this;
#ifdef FXPAR_ASAN_FIBERS
  void* fake_stack = nullptr;
  __sanitizer_start_switch_fiber(&fake_stack, stack_.base(), stack_.size());
#endif
  const int rc = ::swapcontext(&owner_context_, &context_);
#ifdef FXPAR_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fake_stack, nullptr, nullptr);
#endif
  if (rc != 0) {
    g_current_fiber = nullptr;
    throw std::runtime_error("swapcontext failed");
  }
  // Back in the owner. The fiber either yielded or finished.
  g_current_fiber = nullptr;
  if (exception_) {
    std::exception_ptr e = std::exchange(exception_, nullptr);
    std::rethrow_exception(e);
  }
}

void Fiber::yield_to_owner() {
  assert(g_current_fiber == this && "yield_to_owner() from a non-running fiber");
  state_ = State::Suspended;
  g_current_fiber = nullptr;
#ifdef FXPAR_ASAN_FIBERS
  void* fake_stack = nullptr;
  __sanitizer_start_switch_fiber(&fake_stack, owner_stack_bottom_, owner_stack_size_);
#endif
  const int rc = ::swapcontext(&context_, &owner_context_);
#ifdef FXPAR_ASAN_FIBERS
  // Back on the fiber stack; the resumer recorded our stack when switching.
  __sanitizer_finish_switch_fiber(fake_stack, &owner_stack_bottom_, &owner_stack_size_);
#endif
  if (rc != 0) {
    throw std::runtime_error("swapcontext failed");
  }
  // Resumed again.
  g_current_fiber = this;
  state_ = State::Running;
}

}  // namespace fxpar::runtime
