// fxpar runtime: cooperative fibers built on POSIX ucontext.
//
// A Fiber is a resumable single-shot coroutine with its own guarded stack.
// Fibers never run concurrently: the owner (the Simulator) resumes exactly
// one fiber at a time on the host thread, and a running fiber returns
// control only via yield_to_owner() or by finishing its body.
#pragma once

#include <ucontext.h>

#include <functional>
#include <stdexcept>

#include "runtime/stack.hpp"

// Under AddressSanitizer every stack switch must be announced so ASan can
// track the active stack bounds (and exception unwinding across fibers does
// not trip its fake-stack machinery). Detection covers GCC
// (__SANITIZE_ADDRESS__) and Clang (__has_feature).
#if defined(__SANITIZE_ADDRESS__)
#define FXPAR_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FXPAR_ASAN_FIBERS 1
#endif
#endif

namespace fxpar::runtime {

class Fiber {
 public:
  /// State machine: Created -> Running <-> Suspended -> ... -> Finished.
  enum class State { Created, Running, Suspended, Finished };

  /// Creates a fiber executing `body` on a fresh stack of `stack_bytes`.
  Fiber(std::function<void()> body, std::size_t stack_bytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Transfers control from the owner to the fiber. Returns when the fiber
  /// yields or finishes. Must not be called from inside any fiber.
  void resume();

  /// Transfers control from the currently running fiber back to its owner.
  /// Must be called from inside the fiber.
  void yield_to_owner();

  State state() const noexcept { return state_; }
  bool finished() const noexcept { return state_ == State::Finished; }

  /// If the fiber body exited with an exception it is rethrown in the owner
  /// context by resume(); this tells whether one is pending.
  bool has_exception() const noexcept { return static_cast<bool>(exception_); }

  /// The fiber currently executing on this thread, or nullptr when the owner
  /// context is running.
  static Fiber* current() noexcept;

 private:
  static void trampoline();

  std::function<void()> body_;
  FiberStack stack_;
  ucontext_t context_{};
  ucontext_t owner_context_{};
  State state_ = State::Created;
  std::exception_ptr exception_;
#ifdef FXPAR_ASAN_FIBERS
  const void* owner_stack_bottom_ = nullptr;  ///< owner stack, learned on entry
  std::size_t owner_stack_size_ = 0;
#endif
};

}  // namespace fxpar::runtime
