// fxpar runtime: deterministic discrete-event simulation of an SPMD machine.
//
// Each simulated processor is a Fiber with a private virtual clock. The
// Simulator resumes, among all runnable processors, the one with the
// smallest (clock, rank) pair, so a given program produces bit-identical
// schedules and timings on every run. Processors charge modeled time with
// advance(); they suspend with block() and are made runnable again by
// another processor calling wake() (the communication layer builds message
// and barrier semantics on these two primitives).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/fiber.hpp"

namespace fxpar::trace {
class TraceRecorder;
}

namespace fxpar::runtime {

/// Virtual time in seconds of modeled machine time.
using SimTime = double;

/// Thrown when every unfinished processor is blocked: the simulated program
/// can make no progress. The message lists each blocked processor and the
/// reason it recorded when suspending.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// Per-processor accounting maintained by the Simulator.
struct ProcClock {
  SimTime now = 0.0;        ///< current virtual time
  SimTime busy = 0.0;       ///< total time charged via advance()
  SimTime idle = 0.0;       ///< time skipped forward while waiting
  std::uint64_t blocks = 0; ///< number of times the processor suspended
};

class Simulator {
 public:
  /// Creates a machine of `num_procs` simulated processors, each with a
  /// fiber stack of `stack_bytes`.
  Simulator(int num_procs, std::size_t stack_bytes);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  int num_procs() const noexcept { return static_cast<int>(procs_.size()); }

  /// Installs the SPMD body for processor `rank`. Must be called for every
  /// rank before run(). The body runs inside a fiber; it may use the
  /// current-processor operations below.
  void spawn(int rank, std::function<void()> body);

  /// Runs the event loop until every processor finishes.
  /// Throws DeadlockError if all unfinished processors are blocked, and
  /// rethrows the first exception escaping any processor body.
  void run();

  // ---- operations usable only from inside a processor fiber ----

  /// Rank of the processor whose fiber is currently executing.
  int current_rank() const;

  /// Virtual time of the current processor.
  SimTime now() const { return clock(current_rank()).now; }

  /// Charges `dt` seconds of computation to the current processor.
  void advance(SimTime dt);

  /// Moves the current processor's clock forward to `t` if `t` is later;
  /// the skipped interval is accounted as idle time.
  void advance_to(SimTime t);

  /// Suspends the current processor. `why` is kept for deadlock diagnosis.
  /// Returns after some other processor calls wake() on this rank. Callers
  /// must re-check their wait predicate (wakeups may be conservative).
  void block(std::string why);

  /// Suspends the current processor but leaves it runnable, allowing any
  /// processor with an earlier clock to run first.
  void yield();

  /// Makes `rank` runnable with clock at least `not_before`. Legal only for
  /// a processor that is currently blocked.
  void wake(int rank, SimTime not_before);

  // ---- inspection (valid inside or outside fibers) ----

  const ProcClock& clock(int rank) const { return check_rank(rank), procs_[rank].clk; }
  bool is_blocked(int rank) const { return check_rank(rank), procs_[rank].blocked; }
  /// The reason `rank` recorded when it last suspended (e.g. "recv from
  /// proc 1 tag 7"); meaningful while is_blocked(rank) is true.
  const std::string& block_reason(int rank) const {
    return check_rank(rank), procs_[rank].block_reason;
  }
  bool is_finished(int rank) const;

  /// Completion time of the whole run: max over processors of final clocks.
  SimTime finish_time() const;

  /// Installs (or clears, with nullptr) a trace recorder that observes
  /// every advance(); the recorder never alters modeled time.
  void set_tracer(trace::TraceRecorder* tracer) noexcept { tracer_ = tracer; }
  trace::TraceRecorder* tracer() const noexcept { return tracer_; }

 private:
  struct Proc {
    std::unique_ptr<Fiber> fiber;
    ProcClock clk;
    bool blocked = false;
    std::string block_reason;
  };

  void check_rank(int rank) const;
  Proc& current_proc();
  int pick_next() const;  ///< runnable rank with min (clock, rank), or -1

  std::vector<Proc> procs_;
  std::size_t stack_bytes_;
  int running_rank_ = -1;  ///< rank whose fiber is executing, -1 in owner
  trace::TraceRecorder* tracer_ = nullptr;
};

}  // namespace fxpar::runtime
