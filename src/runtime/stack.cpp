#include "runtime/stack.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <new>
#include <utility>

namespace fxpar::runtime {

std::size_t FiberStack::page_size() noexcept {
  static const std::size_t kPage = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return kPage;
}

FiberStack::FiberStack(std::size_t usable_bytes) {
  const std::size_t page = page_size();
  const std::size_t usable = ((usable_bytes + page - 1) / page) * page;
  const std::size_t total = usable + page;  // +1 guard page at the low end

  void* mem = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) throw std::bad_alloc{};
  // Low addresses fault: stacks grow downwards on all supported targets.
  if (::mprotect(mem, page, PROT_NONE) != 0) {
    ::munmap(mem, total);
    throw std::bad_alloc{};
  }
  map_base_ = mem;
  map_size_ = total;
  usable_base_ = static_cast<char*>(mem) + page;
  usable_size_ = usable;
}

FiberStack::~FiberStack() { release(); }

FiberStack::FiberStack(FiberStack&& other) noexcept
    : map_base_(std::exchange(other.map_base_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      usable_base_(std::exchange(other.usable_base_, nullptr)),
      usable_size_(std::exchange(other.usable_size_, 0)) {}

FiberStack& FiberStack::operator=(FiberStack&& other) noexcept {
  if (this != &other) {
    release();
    map_base_ = std::exchange(other.map_base_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    usable_base_ = std::exchange(other.usable_base_, nullptr);
    usable_size_ = std::exchange(other.usable_size_, 0);
  }
  return *this;
}

void FiberStack::release() noexcept {
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_size_);
    map_base_ = nullptr;
    map_size_ = 0;
    usable_base_ = nullptr;
    usable_size_ = 0;
  }
}

}  // namespace fxpar::runtime
