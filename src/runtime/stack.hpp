// fxpar runtime: mmap-backed fiber stacks with a guard page.
#pragma once

#include <cstddef>

namespace fxpar::runtime {

/// An execution stack for a fiber, allocated with mmap and protected by a
/// guard page at the low end so that stack overflow faults loudly instead of
/// corrupting a neighbouring fiber's stack.
class FiberStack {
 public:
  /// Allocates a stack of at least `usable_bytes` (rounded up to whole pages)
  /// plus one guard page. Throws std::bad_alloc on failure.
  explicit FiberStack(std::size_t usable_bytes);
  ~FiberStack();

  FiberStack(const FiberStack&) = delete;
  FiberStack& operator=(const FiberStack&) = delete;
  FiberStack(FiberStack&& other) noexcept;
  FiberStack& operator=(FiberStack&& other) noexcept;

  /// Base of the usable region (just above the guard page).
  void* base() const noexcept { return usable_base_; }
  /// Size of the usable region in bytes.
  std::size_t size() const noexcept { return usable_size_; }

  static std::size_t page_size() noexcept;

 private:
  void release() noexcept;

  void* map_base_ = nullptr;    // start of the whole mapping (guard page)
  std::size_t map_size_ = 0;    // total mapped bytes including guard
  void* usable_base_ = nullptr; // first usable byte
  std::size_t usable_size_ = 0;
};

}  // namespace fxpar::runtime
