// fxpar metrics: measured performance-model profiler.
//
// The scheduler's static cost model (sched::min_latency_mapping) predicts
// module latency from counted flops and a machine description. This
// profiler closes the loop the Extra-P way: it accumulates per-(module,
// procs, problem-size) timing observations across bench sweeps, fits
// simple scaling models by least squares —
//
//     t(n, p) = a + b * n            (latency + linear work)
//     t(n, p) = a + b * n log2 n     (sort/FFT-shaped work)
//     t(n, p) = a + b * n / p        (perfectly partitioned work)
//
// — picks the best-fitting basis per module, and renders a
// modeled-vs-measured report so the static model can be calibrated (or
// replaced) with measured curves. A Fit converts to a plain
// std::function cost curve, so sched can consume it without this library
// depending on sched.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fxpar::metrics {

/// One timing measurement of one module/pattern instance.
struct Observation {
  std::string module;   ///< pattern or module name, e.g. "redistribute"
  int procs = 1;        ///< processors the instance ran on
  std::int64_t n = 0;   ///< problem size (elements)
  double seconds = 0.0; ///< measured (or modeled) time
};

/// The scaling bases the profiler can fit.
enum class ScalingModel { Linear, NLogN, NOverP };

const char* scaling_model_name(ScalingModel m);

/// A fitted cost curve t(n, p) = a + b * basis(n, p).
struct Fit {
  std::string module;
  ScalingModel model = ScalingModel::Linear;
  double a = 0.0;       ///< latency term (seconds)
  double b = 0.0;       ///< slope against the chosen basis
  double sse = 0.0;     ///< sum of squared residuals of the winning model
  double r2 = 0.0;      ///< coefficient of determination (1 = perfect)
  int points = 0;       ///< observations the fit consumed

  double basis(std::int64_t n, int procs) const;
  double predict(std::int64_t n, int procs) const { return a + b * basis(n, procs); }

  /// Cost curve for the scheduler: seconds as a function of procs at a
  /// fixed problem size. Plain std::function so sched needs no metrics
  /// dependency beyond this header.
  std::function<double(int)> time_on(std::int64_t n) const {
    return [f = *this, n](int p) { return f.predict(n, p); };
  }
};

/// Accumulates observations and fits per-module scaling curves.
class ProfileStore {
 public:
  void record(std::string module, int procs, std::int64_t n, double seconds) {
    obs_.push_back({std::move(module), procs, n, seconds});
  }
  void record(Observation o) { obs_.push_back(std::move(o)); }

  const std::vector<Observation>& observations() const noexcept { return obs_; }
  std::size_t size() const noexcept { return obs_.size(); }

  /// Least-squares fit per distinct module name, best of the three bases
  /// by SSE. Modules with fewer than 2 observations are skipped.
  std::vector<Fit> fit_all() const;

  /// Fit for one module; points == 0 when it cannot be fitted.
  Fit fit(const std::string& module) const;

  /// Human-readable modeled-vs-measured report: per module the chosen
  /// model, coefficients, R^2, and each observation against its
  /// prediction. `reference` (optional) supplies an independent modeled
  /// time per observation — e.g. the static cost model or a sim run — and
  /// appears as its own column for side-by-side comparison.
  std::string report(
      const std::function<double(const Observation&)>& reference = nullptr) const;

  /// One JSON object: {"observations":[...],"fits":[...]}; all numbers
  /// finite or null. Stable field order for the CI structural check.
  std::string to_json() const;

 private:
  std::vector<Observation> obs_;
};

}  // namespace fxpar::metrics
