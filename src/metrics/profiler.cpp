#include "metrics/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

namespace fxpar::metrics {

const char* scaling_model_name(ScalingModel m) {
  switch (m) {
    case ScalingModel::Linear: return "a + b*n";
    case ScalingModel::NLogN: return "a + b*n*log2(n)";
    case ScalingModel::NOverP: return "a + b*n/p";
  }
  return "?";
}

double Fit::basis(std::int64_t n, int procs) const {
  const double nd = static_cast<double>(n);
  switch (model) {
    case ScalingModel::Linear: return nd;
    case ScalingModel::NLogN: return nd * (n > 1 ? std::log2(nd) : 0.0);
    case ScalingModel::NOverP: return nd / static_cast<double>(procs < 1 ? 1 : procs);
  }
  return nd;
}

namespace {

/// Closed-form simple linear regression of y over x. Returns false when
/// the x values are degenerate (all equal).
bool regress(const std::vector<double>& x, const std::vector<double>& y, double* a,
             double* b, double* sse) {
  const std::size_t n = x.size();
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  if (!(sxx > 0.0)) return false;
  *b = sxy / sxx;
  *a = my - *b * mx;
  double e = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = y[i] - (*a + *b * x[i]);
    e += r * r;
  }
  *sse = e;
  return true;
}

}  // namespace

Fit ProfileStore::fit(const std::string& module) const {
  std::vector<const Observation*> pts;
  for (const Observation& o : obs_) {
    if (o.module == module) pts.push_back(&o);
  }
  Fit best;
  best.module = module;
  if (pts.size() < 2) return best;

  std::vector<double> y;
  y.reserve(pts.size());
  double sy = 0;
  for (const Observation* o : pts) {
    y.push_back(o->seconds);
    sy += o->seconds;
  }
  const double my = sy / static_cast<double>(y.size());
  double syy = 0;
  for (double v : y) syy += (v - my) * (v - my);

  bool have = false;
  for (ScalingModel m :
       {ScalingModel::Linear, ScalingModel::NLogN, ScalingModel::NOverP}) {
    Fit f;
    f.module = module;
    f.model = m;
    std::vector<double> x;
    x.reserve(pts.size());
    for (const Observation* o : pts) x.push_back(f.basis(o->n, o->procs));
    if (!regress(x, y, &f.a, &f.b, &f.sse)) continue;
    if (!have || f.sse < best.sse) {
      f.points = static_cast<int>(pts.size());
      f.r2 = syy > 0.0 ? 1.0 - f.sse / syy : 1.0;
      best = f;
      have = true;
    }
  }
  return best;
}

std::vector<Fit> ProfileStore::fit_all() const {
  std::map<std::string, bool> modules;
  for (const Observation& o : obs_) modules[o.module] = true;
  std::vector<Fit> fits;
  for (const auto& [name, _] : modules) {
    Fit f = fit(name);
    if (f.points > 0) fits.push_back(std::move(f));
  }
  return fits;
}

namespace {

std::string num_json(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string json_escaped(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string ProfileStore::report(
    const std::function<double(const Observation&)>& reference) const {
  std::ostringstream oss;
  const std::vector<Fit> fits = fit_all();
  oss << "performance-model fit report: " << obs_.size() << " observations, "
      << fits.size() << " modules\n";
  for (const Fit& f : fits) {
    char head[200];
    std::snprintf(head, sizeof(head),
                  "  %-24s model %-16s a=%.3e b=%.3e R^2=%.4f (%d pts)\n",
                  f.module.substr(0, 24).c_str(), scaling_model_name(f.model), f.a,
                  f.b, f.r2, f.points);
    oss << head;
    oss << "      procs           n   measured(s)     fitted(s)";
    if (reference) oss << "    modeled(s)";
    oss << "     err%\n";
    for (const Observation& o : obs_) {
      if (o.module != f.module) continue;
      const double pred = f.predict(o.n, o.procs);
      const double err =
          o.seconds != 0.0 ? 100.0 * (pred - o.seconds) / o.seconds : 0.0;
      char line[200];
      if (reference) {
        std::snprintf(line, sizeof(line),
                      "      %5d %11lld  %12.3e  %12.3e  %12.3e  %+7.1f\n", o.procs,
                      static_cast<long long>(o.n), o.seconds, pred, reference(o), err);
      } else {
        std::snprintf(line, sizeof(line),
                      "      %5d %11lld  %12.3e  %12.3e  %+7.1f\n", o.procs,
                      static_cast<long long>(o.n), o.seconds, pred, err);
      }
      oss << line;
    }
  }
  return oss.str();
}

std::string ProfileStore::to_json() const {
  std::ostringstream oss;
  oss << "{\"observations\":[";
  for (std::size_t i = 0; i < obs_.size(); ++i) {
    const Observation& o = obs_[i];
    if (i) oss << ",";
    oss << "{\"module\":\"" << json_escaped(o.module) << "\",\"procs\":" << o.procs
        << ",\"n\":" << o.n << ",\"seconds\":" << num_json(o.seconds) << "}";
  }
  oss << "],\"fits\":[";
  const std::vector<Fit> fits = fit_all();
  for (std::size_t i = 0; i < fits.size(); ++i) {
    const Fit& f = fits[i];
    if (i) oss << ",";
    oss << "{\"module\":\"" << json_escaped(f.module) << "\",\"model\":\""
        << scaling_model_name(f.model) << "\",\"a\":" << num_json(f.a)
        << ",\"b\":" << num_json(f.b) << ",\"r2\":" << num_json(f.r2)
        << ",\"points\":" << f.points << "}";
  }
  oss << "]}";
  return oss.str();
}

}  // namespace fxpar::metrics
