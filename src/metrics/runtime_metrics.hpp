// fxpar metrics: the runtime's own metric set.
//
// One RuntimeMetrics lives on each Machine (when MachineConfig::metrics is
// on, the default). It owns the Registry and pre-resolves every metric the
// runtime layers update, so an instrumentation site is `if (m) m->x->add(r)`
// — a null test plus one relaxed atomic op; no name lookups on hot paths.
//
// Shard index convention: the updating processor's physical rank. Code
// running outside any worker (the driver thread) uses shard 0 — counter
// totals are shard-sums, so aliasing is harmless.
//
// This header depends only on metrics.hpp. Runtime layers (exec, machine,
// dist, comm, core, apps) include it; metrics never includes them back.
#pragma once

#include <memory>

#include "metrics/metrics.hpp"

namespace fxpar::metrics {

struct RuntimeMetrics {
  Registry registry;

  // comm / machine messaging
  Counter* messages;            ///< deposits issued
  Counter* message_bytes;       ///< payload bytes deposited
  Histogram* recv_wait_s;       ///< blocked-in-receive latency (per receive)
  Counter* barriers;            ///< subset-barrier participations
  Histogram* barrier_wait_s;    ///< blocked-in-barrier latency
  Counter* io_ops;              ///< io_operation() calls
  Counter* collectives;         ///< collective invocations (all kinds)

  // dist
  Counter* redists;             ///< assign/transpose redistributions entered
  Histogram* redist_s;          ///< per-participant redistribution latency
  Counter* halos;               ///< halo exchanges entered
  Histogram* halo_s;            ///< per-participant halo latency
  Counter* plan_hits;           ///< plan-cache hits
  Counter* plan_misses;         ///< plan-cache misses

  // comm collective-plan cache (trees and rooted schedules)
  Counter* collective_plan_hits;    ///< collective-plan-cache hits
  Counter* collective_plan_misses;  ///< collective-plan-cache misses

  // core / exec
  Counter* loops;               ///< parallel_for/parallel_reduce invocations
  Histogram* loop_s;            ///< per-participant loop latency
  Counter* steals;              ///< stolen loop chunks (threads backend)
  Counter* stolen_iters;        ///< iterations covered by stolen chunks
  Counter* task_regions;        ///< TaskRegion activations
  Gauge* pinned_workers;        ///< workers pinned in the last threaded run

  // machine / apps
  Counter* runs;                ///< Machine::run invocations
  Counter* pool_spills;         ///< payload releases spilled to the shared pool
  Gauge* last_run_host_s;       ///< host wall-clock of the last run
  Gauge* modeled_busy_s;        ///< accumulated modeled compute (sim backend)
  Counter* pipeline_sets;       ///< stream-pipeline data sets completed

  explicit RuntimeMetrics(int shards)
      : registry(shards),
        messages(registry.counter("fxpar_comm_messages_total")),
        message_bytes(registry.counter("fxpar_comm_message_bytes_total")),
        recv_wait_s(registry.histogram("fxpar_comm_recv_wait_seconds")),
        barriers(registry.counter("fxpar_sync_barriers_total")),
        barrier_wait_s(registry.histogram("fxpar_sync_barrier_wait_seconds")),
        io_ops(registry.counter("fxpar_io_operations_total")),
        collectives(registry.counter("fxpar_comm_collectives_total")),
        redists(registry.counter("fxpar_dist_redistributions_total")),
        redist_s(registry.histogram("fxpar_dist_redistribute_seconds")),
        halos(registry.counter("fxpar_dist_halo_exchanges_total")),
        halo_s(registry.histogram("fxpar_dist_halo_seconds")),
        plan_hits(registry.counter("fxpar_dist_plan_cache_hits_total")),
        plan_misses(registry.counter("fxpar_dist_plan_cache_misses_total")),
        collective_plan_hits(registry.counter("fxpar_comm_collective_plan_hits_total")),
        collective_plan_misses(registry.counter("fxpar_comm_collective_plan_misses_total")),
        loops(registry.counter("fxpar_core_parallel_loops_total")),
        loop_s(registry.histogram("fxpar_core_parallel_loop_seconds")),
        steals(registry.counter("fxpar_exec_steals_total")),
        stolen_iters(registry.counter("fxpar_exec_stolen_iters_total")),
        task_regions(registry.counter("fxpar_core_task_regions_total")),
        pinned_workers(registry.gauge("fxpar_exec_pinned_workers")),
        runs(registry.counter("fxpar_machine_runs_total")),
        pool_spills(registry.counter("fxpar_machine_pool_spills_total")),
        last_run_host_s(registry.gauge("fxpar_machine_last_run_host_seconds")),
        modeled_busy_s(registry.gauge("fxpar_sim_modeled_busy_seconds")),
        pipeline_sets(registry.counter("fxpar_apps_pipeline_sets_total")) {}
};

}  // namespace fxpar::metrics
