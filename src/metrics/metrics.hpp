// fxpar metrics: always-on, low-overhead runtime metrics.
//
// The trace subsystem (src/trace/) is a post-mortem microscope: opt-in,
// per-event, heavyweight. This registry is the opposite — a handful of
// counters, gauges and log-bucketed latency histograms that are cheap
// enough to leave enabled in a long-running serving process and expose
// live (Prometheus text exposition or JSON).
//
// Concurrency model: every metric is *sharded* by worker index, the same
// way ThreadedBackend::Worker keeps its per-thread accounting. A shard is
// a cache-line-aligned block of relaxed atomics; the hot-path update is a
// single relaxed fetch_add on the caller's own shard, so concurrent
// workers never contend on a line. snapshot() merges the shards. Gauges
// are single-writer (rank 0 / the driver); histograms bucket values by
// log2 so 64 buckets cover the full double range and quantiles come out
// of the cumulative bucket counts.
//
// Metric objects live in a Registry (deque storage: stable addresses,
// metrics are registered once and never removed). Instrumentation sites
// hold plain pointers and test for null — a disabled runtime simply never
// builds the registry, so the disabled-mode cost is one pointer compare.
#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace fxpar::metrics {

/// Number of log2 buckets in a histogram. Bucket i counts values with
/// ilogb(v) == i + kMinExp (clamped), i.e. [2^(i+kMinExp), 2^(i+kMinExp+1)).
inline constexpr int kHistBuckets = 64;
/// Smallest represented exponent: 2^-40 ~ 1e-12 s. Anything smaller (or
/// zero/negative) lands in bucket 0.
inline constexpr int kMinExp = -40;

namespace detail {

/// One cache line of relaxed counter state, so shards never false-share.
struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> v{0};
};

struct alignas(64) HistShard {
  std::atomic<std::uint64_t> buckets[kHistBuckets];
  std::atomic<std::uint64_t> count{0};
  HistShard() {
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  }
};

/// Log2 bucket index for a sample value (clamped into [0, kHistBuckets)).
inline int bucket_of(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;  // also catches NaN
  const int e = std::ilogb(v) - kMinExp;
  if (e < 0) return 0;
  if (e >= kHistBuckets) return kHistBuckets - 1;
  return e;
}

/// Upper bound of bucket i, for exposition and quantile interpolation.
inline double bucket_upper(int i) { return std::ldexp(1.0, i + kMinExp + 1); }

}  // namespace detail

/// Monotonic counter, sharded per worker. add() is a relaxed fetch_add on
/// the caller's shard — lock-free and contention-free as long as each
/// worker uses its own shard index.
class Counter {
 public:
  explicit Counter(int shards) : shards_(static_cast<std::size_t>(shards)) {}

  void add(int shard, std::uint64_t n = 1) noexcept {
    shards_[idx(shard)].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::size_t idx(int shard) const noexcept {
    const std::size_t i = static_cast<std::size_t>(shard);
    return i < shards_.size() ? i : 0;
  }
  // Sized construction only: atomics are immovable, the vector never grows.
  std::vector<detail::CounterShard> shards_;
};

/// Point-in-time value, single writer (the driver / rank 0). Readers use
/// relaxed loads; torn reads are impossible for a lock-free double.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    v_.store(v_.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log2-bucketed histogram of latencies (seconds), sharded per worker.
/// observe() is two relaxed fetch_adds plus one relaxed double
/// accumulation on the caller's shard.
class Histogram {
 public:
  explicit Histogram(int shards)
      : shards_(static_cast<std::size_t>(shards)),
        sums_(static_cast<std::size_t>(shards)) {}

  void observe(int shard, double v) noexcept {
    const std::size_t i = idx(shard);
    detail::HistShard& s = shards_[i];
    s.buckets[detail::bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    // Per-shard sum is written only by its owning worker; relaxed
    // load/add/store is race-free under that single-writer discipline.
    std::atomic<double>& sum = sums_[i].v;
    sum.store(sum.load(std::memory_order_relaxed) + v, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    std::uint64_t c = 0;
    for (const auto& s : shards_) c += s.count.load(std::memory_order_relaxed);
    return c;
  }

  double sum() const noexcept {
    double t = 0.0;
    for (const auto& s : sums_) t += s.v.load(std::memory_order_relaxed);
    return t;
  }

  /// Folds externally-accumulated samples into shard 0: per-bucket count
  /// deltas, a total-count delta and a sum delta. The proc backend uses
  /// this to absorb a forked child's histogram activity (its end-of-run
  /// snapshot minus its fork-time snapshot) into the parent's registry.
  /// Call from a single thread (the driver) once the workers are done.
  void absorb(const std::vector<std::uint64_t>& bucket_deltas, std::uint64_t count_delta,
              double sum_delta) noexcept {
    detail::HistShard& s = shards_[0];
    const std::size_t n = bucket_deltas.size() < static_cast<std::size_t>(kHistBuckets)
                              ? bucket_deltas.size()
                              : static_cast<std::size_t>(kHistBuckets);
    for (std::size_t i = 0; i < n; ++i) {
      if (bucket_deltas[i] != 0) {
        s.buckets[i].fetch_add(bucket_deltas[i], std::memory_order_relaxed);
      }
    }
    if (count_delta != 0) s.count.fetch_add(count_delta, std::memory_order_relaxed);
    if (sum_delta != 0.0) {
      std::atomic<double>& sum = sums_[0].v;
      sum.store(sum.load(std::memory_order_relaxed) + sum_delta, std::memory_order_relaxed);
    }
  }

  /// Merged bucket counts (index = log2 bucket).
  std::vector<std::uint64_t> merged_buckets() const;

  /// Quantile estimate from the merged buckets (q in [0,1]); the value is
  /// the upper bound of the bucket holding the q-th sample. 0 when empty.
  double quantile(double q) const;

 private:
  struct alignas(64) SumShard {
    std::atomic<double> v{0.0};
  };
  std::size_t idx(int shard) const noexcept {
    const std::size_t i = static_cast<std::size_t>(shard);
    return i < shards_.size() ? i : 0;
  }
  std::vector<detail::HistShard> shards_;
  std::vector<SumShard> sums_;
};

/// A merged, immutable view of every metric at one instant.
struct Snapshot {
  struct Hist {
    std::vector<std::uint64_t> buckets;  ///< merged log2 buckets
    std::uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  };
  double t = 0.0;  ///< seconds since registry creation
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Hist> histograms;

  std::uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  double gauge(const std::string& name) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? 0.0 : it->second;
  }

  /// Prometheus text exposition format (one family per metric; histogram
  /// families get cumulative _bucket/_sum/_count plus quantile lines).
  std::string to_prometheus() const;
  /// One JSON object ({"t":..,"counters":{..},"gauges":{..},
  /// "histograms":{..}}); all numbers finite or null.
  std::string to_json() const;
};

/// Owns every metric of one runtime instance. Registration takes a mutex
/// (cold path, once per metric name); updates through the returned
/// pointers are lock-free. Metric names use the conventional
/// `fxpar_<layer>_<what>[_unit]` form.
class Registry {
 public:
  /// `shards` is the maximum number of concurrent writers (logical
  /// processors); shard indices outside [0, shards) alias shard 0.
  explicit Registry(int shards);

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  int shards() const noexcept { return shards_; }

  /// Merges every shard of every metric. Safe concurrently with updates
  /// (relaxed reads: the snapshot is a consistent-enough live view, not a
  /// linearization point).
  Snapshot snapshot() const;

 private:
  const int shards_;
  const std::chrono::steady_clock::time_point t0_ = std::chrono::steady_clock::now();
  mutable std::mutex mu_;  // guards the maps; deque storage keeps pointers stable
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<Histogram> hist_storage_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> hists_;
};

/// Periodic snapshot collector for long-running drivers. Single-threaded
/// use: the driver calls poll() at convenient points (e.g. once per data
/// set); a snapshot is taken when at least `period_s` elapsed since the
/// previous one. force() always samples.
class Sampler {
 public:
  Sampler(const Registry& reg, double period_s)
      : reg_(reg), period_s_(period_s) {}

  /// Samples if due; returns true when a snapshot was appended.
  bool poll();
  /// Unconditionally appends a snapshot and re-anchors the cadence at now.
  void force();
  /// Shutdown flush: appends a terminal snapshot covering the final partial
  /// interval — activity since the last grid point that poll() alone would
  /// drop (a stream shorter than the period would otherwise end its series
  /// at the initial sample, missing everything it did). Unlike force() it
  /// does NOT move the grid anchor, so a sampler shared across several
  /// stream epochs keeps its cadence when one epoch drains.
  void finish();

  const std::vector<Snapshot>& series() const noexcept { return series_; }
  std::vector<Snapshot> take_series() { return std::move(series_); }

  /// The whole time series as one JSON array.
  static std::string series_json(const std::vector<Snapshot>& series);

 private:
  const Registry& reg_;
  double period_s_;
  bool have_last_ = false;
  std::chrono::steady_clock::time_point last_{};
  std::vector<Snapshot> series_;
};

}  // namespace fxpar::metrics
