#include "metrics/metrics.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace fxpar::metrics {

namespace {

/// JSON/exposition-safe number: finite values print shortest-roundtrip-ish
/// via %.17g trimmed by %g semantics; non-finite becomes null (JSON) or
/// NaN/Inf (Prometheus accepts them, JSON does not).
std::string num_json(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string num_prom(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Prometheus label values / JSON strings share the same escape set.
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<std::uint64_t> Histogram::merged_buckets() const {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(kHistBuckets), 0);
  for (const auto& s : shards_) {
    for (int i = 0; i < kHistBuckets; ++i) {
      out[static_cast<std::size_t>(i)] +=
          s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double Histogram::quantile(double q) const {
  const auto buckets = merged_buckets();
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample, 1-based; ceil so quantile(1.0) is the max bucket.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kHistBuckets; ++i) {
    seen += buckets[static_cast<std::size_t>(i)];
    if (seen >= rank) return detail::bucket_upper(i);
  }
  return detail::bucket_upper(kHistBuckets - 1);
}

Registry::Registry(int shards) : shards_(shards < 1 ? 1 : shards) {}

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  counter_storage_.emplace_back(shards_);
  Counter* c = &counter_storage_.back();
  counters_.emplace(name, c);
  return c;
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  gauge_storage_.emplace_back();
  Gauge* g = &gauge_storage_.back();
  gauges_.emplace(name, g);
  return g;
}

Histogram* Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = hists_.find(name);
  if (it != hists_.end()) return it->second;
  hist_storage_.emplace_back(shards_);
  Histogram* h = &hist_storage_.back();
  hists_.emplace(name, h);
  return h;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.t = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : hists_) {
    Snapshot::Hist sh;
    sh.buckets = h->merged_buckets();
    sh.count = h->count();
    sh.sum = h->sum();
    sh.p50 = h->quantile(0.50);
    sh.p95 = h->quantile(0.95);
    sh.p99 = h->quantile(0.99);
    snap.histograms[name] = std::move(sh);
  }
  return snap;
}

std::string Snapshot::to_prometheus() const {
  std::ostringstream oss;
  for (const auto& [name, v] : counters) {
    oss << "# TYPE " << name << " counter\n" << name << " " << v << "\n";
  }
  for (const auto& [name, v] : gauges) {
    oss << "# TYPE " << name << " gauge\n" << name << " " << num_prom(v) << "\n";
  }
  for (const auto& [name, h] : histograms) {
    oss << "# TYPE " << name << " histogram\n";
    std::uint64_t cum = 0;
    for (int i = 0; i < kHistBuckets; ++i) {
      const std::uint64_t b = h.buckets[static_cast<std::size_t>(i)];
      if (b == 0) continue;  // sparse exposition: skip empty buckets
      cum += b;
      oss << name << "_bucket{le=\"" << num_prom(detail::bucket_upper(i)) << "\"} "
          << cum << "\n";
    }
    oss << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    oss << name << "_sum " << num_prom(h.sum) << "\n";
    oss << name << "_count " << h.count << "\n";
    oss << name << "_p50 " << num_prom(h.p50) << "\n";
    oss << name << "_p95 " << num_prom(h.p95) << "\n";
    oss << name << "_p99 " << num_prom(h.p99) << "\n";
  }
  return oss.str();
}

std::string Snapshot::to_json() const {
  std::ostringstream oss;
  oss << "{\"t\":" << num_json(t) << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) oss << ",";
    first = false;
    oss << "\"" << escaped(name) << "\":" << v;
  }
  oss << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) oss << ",";
    first = false;
    oss << "\"" << escaped(name) << "\":" << num_json(v);
  }
  oss << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) oss << ",";
    first = false;
    oss << "\"" << escaped(name) << "\":{\"count\":" << h.count
        << ",\"sum\":" << num_json(h.sum) << ",\"p50\":" << num_json(h.p50)
        << ",\"p95\":" << num_json(h.p95) << ",\"p99\":" << num_json(h.p99) << "}";
  }
  oss << "}}";
  return oss.str();
}

bool Sampler::poll() {
  const auto now = std::chrono::steady_clock::now();
  if (!have_last_) {
    last_ = now;
    have_last_ = true;
    series_.push_back(reg_.snapshot());
    return true;
  }
  const double since = std::chrono::duration<double>(now - last_).count();
  if (since < period_s_) return false;
  // Advance the anchor by whole periods instead of re-anchoring at `now`:
  // re-anchoring adds the snapshot's processing time to every interval, so
  // the cadence drifts and a series polled from a busy worker loses samples
  // against the nominal grid.
  const auto whole = static_cast<std::int64_t>(since / period_s_);
  last_ += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(static_cast<double>(whole) * period_s_));
  series_.push_back(reg_.snapshot());
  return true;
}

void Sampler::force() {
  last_ = std::chrono::steady_clock::now();
  have_last_ = true;
  series_.push_back(reg_.snapshot());
}

void Sampler::finish() {
  // Terminal sample only — the anchor stays where the grid put it, so a
  // long-lived sampler polled across many stream epochs is not re-phased by
  // each epoch's shutdown flush.
  series_.push_back(reg_.snapshot());
}

std::string Sampler::series_json(const std::vector<Snapshot>& series) {
  std::ostringstream oss;
  oss << "[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i) oss << ",";
    oss << series[i].to_json();
  }
  oss << "]";
  return oss.str();
}

}  // namespace fxpar::metrics
