// fxlang: tokenizer for the Fx-like directive language.
//
// The surface syntax is a line-oriented, case-insensitive, Fortran-
// flavoured mini-language carrying exactly the paper's directives:
//
//   TASK_PARTITION part :: g1(2), g2(NPROCS() - 2)
//   SUBGROUP(g1) :: a
//   DISTRIBUTE a(BLOCK)
//   BEGIN TASK_REGION part
//   ON SUBGROUP g1 ... END ON
//   END TASK_REGION
//
// plus scalar/array declarations, DO loops, IF blocks, assignments, PRINT
// and BARRIER. Comments start with '!'. Statements end at a newline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fxpar::lang {

enum class Tok {
  End,        // end of input
  Newline,    // statement separator
  Ident,      // identifier / keyword (normalized to upper case)
  Number,     // numeric literal
  LParen,
  RParen,
  Comma,
  ColonColon,  // ::
  Assign,      // =
  Plus,
  Minus,
  Star,
  Slash,
  Eq,   // ==
  Ne,   // !=  (also .NE.-free spelling <>)
  Lt,
  Le,
  Gt,
  Ge,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;   // identifier text (upper-cased) for Ident
  double number = 0;  // value for Number
  int line = 0;       // 1-based source line
};

/// Lexes the whole source. Throws std::invalid_argument with a line number
/// on an unexpected character. Consecutive newlines are collapsed.
std::vector<Token> lex(const std::string& source);

}  // namespace fxpar::lang
