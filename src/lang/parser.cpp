#include "lang/parser.hpp"

#include <stdexcept>

#include "lang/lexer.hpp"

namespace fxpar::lang {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Program parse() {
    Program prog;
    skip_newlines();
    if (is_kw("PROGRAM")) {
      next();
      prog.name = expect_ident("program name");
      expect(Tok::Newline);
    }
    prog.body = statements({"END", "SUBROUTINE"});
    if (is_kw("END")) {
      next();
      skip_newlines();
    }
    while (is_kw("SUBROUTINE")) {
      prog.subroutines.push_back(subroutine());
      skip_newlines();
    }
    if (cur().kind != Tok::End) fail("trailing input after END");
    return prog;
  }

  Subroutine subroutine() {
    Subroutine sub;
    sub.line = cur().line;
    expect_kw("SUBROUTINE");
    sub.name = expect_ident("subroutine name");
    if (cur().kind == Tok::LParen) {
      next();
      if (cur().kind != Tok::RParen) {
        sub.params.push_back(expect_ident("parameter name"));
        while (cur().kind == Tok::Comma) {
          next();
          sub.params.push_back(expect_ident("parameter name"));
        }
      }
      expect(Tok::RParen);
    }
    end_of_statement();
    sub.body = statements({"END"});
    expect_kw("END");
    expect_kw("SUBROUTINE");
    end_of_statement();
    return sub;
  }

 private:
  // ---- token plumbing ----
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(int k = 1) const {
    return toks_[std::min(pos_ + static_cast<std::size_t>(k), toks_.size() - 1)];
  }
  void next() {
    if (cur().kind != Tok::End) ++pos_;
  }
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("fxlang:" + std::to_string(cur().line) + ": " + what);
  }
  bool is_kw(const char* kw) const { return cur().kind == Tok::Ident && cur().text == kw; }
  bool peek_kw(const char* kw, int k = 1) const {
    return peek(k).kind == Tok::Ident && peek(k).text == kw;
  }
  void expect_kw(const char* kw) {
    if (!is_kw(kw)) fail(std::string("expected '") + kw + "'");
    next();
  }
  void expect(Tok k) {
    if (cur().kind != k) fail("unexpected token");
    next();
  }
  std::string expect_ident(const char* what) {
    if (cur().kind != Tok::Ident) fail(std::string("expected ") + what);
    std::string s = cur().text;
    next();
    return s;
  }
  void skip_newlines() {
    while (cur().kind == Tok::Newline) next();
  }
  void end_of_statement() {
    if (cur().kind == Tok::End) return;
    expect(Tok::Newline);
    skip_newlines();
  }

  // ---- statements ----

  /// Parses statements until one of `terminators` (keyword of the *current*
  /// token) is reached; the terminator is not consumed.
  std::vector<StmtPtr> statements(const std::vector<std::string>& terminators) {
    std::vector<StmtPtr> out;
    skip_newlines();
    for (;;) {
      if (cur().kind == Tok::End) return out;
      if (cur().kind == Tok::Ident) {
        for (const auto& t : terminators) {
          if (cur().text == t) return out;
        }
      }
      out.push_back(statement());
      skip_newlines();
    }
  }

  StmtPtr statement() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = cur().line;
    if (is_kw("INTEGER") || is_kw("REAL") || is_kw("SCALAR")) {
      next();
      stmt->kind = StmtKind::DeclScalar;
      stmt->names.push_back(expect_ident("variable name"));
      while (cur().kind == Tok::Comma) {
        next();
        stmt->names.push_back(expect_ident("variable name"));
      }
      end_of_statement();
      return stmt;
    }
    if (is_kw("ARRAY")) {
      next();
      stmt->kind = StmtKind::DeclArray;
      for (;;) {
        ArrayDecl d;
        d.name = expect_ident("array name");
        expect(Tok::LParen);
        d.extents.push_back(expression());
        while (cur().kind == Tok::Comma) {
          next();
          d.extents.push_back(expression());
        }
        expect(Tok::RParen);
        stmt->arrays.push_back(std::move(d));
        if (cur().kind != Tok::Comma) break;
        next();
      }
      end_of_statement();
      return stmt;
    }
    if (is_kw("TASK_PARTITION")) {
      next();
      stmt->kind = StmtKind::DeclPartition;
      stmt->partition_name = expect_ident("partition name");
      expect(Tok::ColonColon);
      for (;;) {
        SubgroupSpecAst s;
        s.name = expect_ident("subgroup name");
        expect(Tok::LParen);
        s.size = expression();
        expect(Tok::RParen);
        stmt->subgroups.push_back(std::move(s));
        if (cur().kind != Tok::Comma) break;
        next();
      }
      end_of_statement();
      return stmt;
    }
    if (is_kw("SUBGROUP")) {
      next();
      stmt->kind = StmtKind::MapSubgroup;
      expect(Tok::LParen);
      stmt->subgroup_name = expect_ident("subgroup name");
      expect(Tok::RParen);
      expect(Tok::ColonColon);
      stmt->names.push_back(expect_ident("array name"));
      while (cur().kind == Tok::Comma) {
        next();
        stmt->names.push_back(expect_ident("array name"));
      }
      end_of_statement();
      return stmt;
    }
    if (is_kw("DISTRIBUTE")) {
      next();
      stmt->kind = StmtKind::Distribute;
      for (;;) {
        DistSpec d;
        d.array = expect_ident("array name");
        expect(Tok::LParen);
        for (;;) {
          if (cur().kind == Tok::Star) {
            d.dims.push_back("*");
            d.cyclic_blocks.push_back(0);
            next();
          } else {
            std::string kind = expect_ident("distribution kind");
            std::int64_t block = 0;
            if (kind == "CYCLIC" && cur().kind == Tok::LParen) {
              next();
              if (cur().kind != Tok::Number) fail("expected block size");
              block = static_cast<std::int64_t>(cur().number);
              next();
              expect(Tok::RParen);
            }
            d.dims.push_back(kind);
            d.cyclic_blocks.push_back(block);
          }
          if (cur().kind != Tok::Comma) break;
          next();
        }
        expect(Tok::RParen);
        stmt->dists.push_back(std::move(d));
        if (cur().kind != Tok::Comma) break;
        next();
      }
      end_of_statement();
      return stmt;
    }
    if (is_kw("BEGIN")) {
      next();
      expect_kw("TASK_REGION");
      stmt->kind = StmtKind::TaskRegion;
      if (cur().kind == Tok::Ident) stmt->partition_name = expect_ident("partition name");
      end_of_statement();
      stmt->body = statements({"END"});
      expect_kw("END");
      expect_kw("TASK_REGION");
      end_of_statement();
      return stmt;
    }
    if (is_kw("ON")) {
      next();
      expect_kw("SUBGROUP");
      stmt->kind = StmtKind::OnSubgroup;
      stmt->subgroup_name = expect_ident("subgroup name");
      end_of_statement();
      stmt->body = statements({"END"});
      expect_kw("END");
      expect_kw("ON");
      end_of_statement();
      return stmt;
    }
    if (is_kw("DO")) {
      next();
      stmt->kind = StmtKind::Do;
      stmt->loop_var = expect_ident("loop variable");
      expect(Tok::Assign);
      stmt->from = expression();
      expect(Tok::Comma);
      stmt->to = expression();
      end_of_statement();
      stmt->body = statements({"END"});
      expect_kw("END");
      expect_kw("DO");
      end_of_statement();
      return stmt;
    }
    if (is_kw("IF")) {
      next();
      stmt->kind = StmtKind::If;
      stmt->expr = expression();
      expect_kw("THEN");
      end_of_statement();
      stmt->body = statements({"ELSE", "END"});
      if (is_kw("ELSE")) {
        next();
        end_of_statement();
        stmt->else_body = statements({"END"});
      }
      expect_kw("END");
      expect_kw("IF");
      end_of_statement();
      return stmt;
    }
    if (is_kw("CALL")) {
      next();
      stmt->kind = StmtKind::Call;
      stmt->lhs = expect_ident("subroutine name");
      if (cur().kind == Tok::LParen) {
        next();
        if (cur().kind != Tok::RParen) {
          stmt->call_args.push_back(expression());
          while (cur().kind == Tok::Comma) {
            next();
            stmt->call_args.push_back(expression());
          }
        }
        expect(Tok::RParen);
      }
      end_of_statement();
      return stmt;
    }
    if (is_kw("PRINT")) {
      next();
      stmt->kind = StmtKind::Print;
      stmt->expr = expression();
      end_of_statement();
      return stmt;
    }
    if (is_kw("BARRIER")) {
      next();
      stmt->kind = StmtKind::Barrier;
      end_of_statement();
      return stmt;
    }
    // Assignment: IDENT [(indices)] = expr
    if (cur().kind == Tok::Ident &&
        (peek().kind == Tok::Assign || peek().kind == Tok::LParen)) {
      stmt->kind = StmtKind::Assign;
      stmt->lhs = expect_ident("assignment target");
      if (cur().kind == Tok::LParen) {
        next();
        stmt->lhs_indices.push_back(expression());
        while (cur().kind == Tok::Comma) {
          next();
          stmt->lhs_indices.push_back(expression());
        }
        expect(Tok::RParen);
      }
      expect(Tok::Assign);
      stmt->rhs = expression();
      end_of_statement();
      return stmt;
    }
    fail("unrecognized statement");
  }

  // ---- expressions: comparison > additive > multiplicative > unary ----

  ExprPtr expression() { return comparison(); }

  ExprPtr make_binary(BinOp op, ExprPtr a, ExprPtr b, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Binary;
    e->op = op;
    e->line = line;
    e->args.push_back(std::move(a));
    e->args.push_back(std::move(b));
    return e;
  }

  ExprPtr comparison() {
    ExprPtr e = additive();
    for (;;) {
      BinOp op;
      switch (cur().kind) {
        case Tok::Eq: op = BinOp::Eq; break;
        case Tok::Ne: op = BinOp::Ne; break;
        case Tok::Lt: op = BinOp::Lt; break;
        case Tok::Le: op = BinOp::Le; break;
        case Tok::Gt: op = BinOp::Gt; break;
        case Tok::Ge: op = BinOp::Ge; break;
        default: return e;
      }
      const int line = cur().line;
      next();
      e = make_binary(op, std::move(e), additive(), line);
    }
  }

  ExprPtr additive() {
    ExprPtr e = multiplicative();
    for (;;) {
      if (cur().kind == Tok::Plus) {
        const int line = cur().line;
        next();
        e = make_binary(BinOp::Add, std::move(e), multiplicative(), line);
      } else if (cur().kind == Tok::Minus) {
        const int line = cur().line;
        next();
        e = make_binary(BinOp::Sub, std::move(e), multiplicative(), line);
      } else {
        return e;
      }
    }
  }

  ExprPtr multiplicative() {
    ExprPtr e = unary();
    for (;;) {
      if (cur().kind == Tok::Star) {
        const int line = cur().line;
        next();
        e = make_binary(BinOp::Mul, std::move(e), unary(), line);
      } else if (cur().kind == Tok::Slash) {
        const int line = cur().line;
        next();
        e = make_binary(BinOp::Div, std::move(e), unary(), line);
      } else {
        return e;
      }
    }
  }

  ExprPtr unary() {
    if (cur().kind == Tok::Minus) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Unary;
      e->line = cur().line;
      next();
      e->args.push_back(unary());
      return e;
    }
    return primary();
  }

  ExprPtr primary() {
    auto e = std::make_unique<Expr>();
    e->line = cur().line;
    if (cur().kind == Tok::Number) {
      e->kind = ExprKind::Number;
      e->number = cur().number;
      next();
      return e;
    }
    if (cur().kind == Tok::LParen) {
      next();
      ExprPtr inner = expression();
      expect(Tok::RParen);
      return inner;
    }
    if (cur().kind == Tok::Ident) {
      e->name = cur().text;
      next();
      if (cur().kind == Tok::LParen) {
        e->kind = ExprKind::Call;
        next();
        if (cur().kind != Tok::RParen) {
          e->args.push_back(expression());
          while (cur().kind == Tok::Comma) {
            next();
            e->args.push_back(expression());
          }
        }
        expect(Tok::RParen);
        return e;
      }
      // Scalar vs array is resolved by the interpreter's environment.
      e->kind = ExprKind::ScalarRef;
      return e;
    }
    fail("expected expression");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse_program(const std::string& source) { return Parser(lex(source)).parse(); }

}  // namespace fxpar::lang
