// fxlang: recursive-descent parser.
#pragma once

#include <string>

#include "lang/ast.hpp"

namespace fxpar::lang {

/// Parses a whole program. Throws std::invalid_argument with a line number
/// on syntax errors.
Program parse_program(const std::string& source);

}  // namespace fxpar::lang
