// fxlang: abstract syntax of the Fx-like directive language.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace fxpar::lang {

// ---- expressions ----

enum class ExprKind {
  Number,
  ScalarRef,  // scalar variable
  ArrayRef,   // whole-array reference in elementwise context
  Unary,      // -x
  Binary,
  Call,       // intrinsic: NPROCS, MYRANK, INDEX, SUM, MINVAL, MAXVAL, MOD
};

enum class BinOp { Add, Sub, Mul, Div, Eq, Ne, Lt, Le, Gt, Ge };

struct Expr {
  ExprKind kind = ExprKind::Number;
  double number = 0.0;
  std::string name;  // variable or intrinsic name
  BinOp op = BinOp::Add;
  std::vector<std::unique_ptr<Expr>> args;  // operands / call arguments
  int line = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

// ---- statements ----

enum class StmtKind {
  DeclScalar,     // INTEGER/REAL names...
  DeclArray,      // ARRAY a(e1[, e2, ...]) ...
  DeclPartition,  // TASK_PARTITION name :: g1(e), g2(e)...
  MapSubgroup,    // SUBGROUP(g) :: names...
  Distribute,     // DISTRIBUTE a(BLOCK, *), ...
  TaskRegion,     // BEGIN TASK_REGION name ... END TASK_REGION
  OnSubgroup,     // ON SUBGROUP g ... END ON
  Do,             // DO i = e1, e2 ... END DO
  If,             // IF e THEN ... [ELSE ...] END IF
  Assign,         // lhs[(indices)] = expr   (scalar, array, or element)
  Print,          // PRINT expr
  Barrier,        // BARRIER
  Call,           // CALL name(args)
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct ArrayDecl {
  std::string name;
  std::vector<ExprPtr> extents;
};

struct SubgroupSpecAst {
  std::string name;
  ExprPtr size;
};

struct DistSpec {
  std::string array;
  std::vector<std::string> dims;  // "BLOCK", "CYCLIC", "CYCLIC(k)" -> "CYCLIC:k", "*"
  std::vector<std::int64_t> cyclic_blocks;  // parallel to dims; 0 if n/a
};

struct Stmt {
  StmtKind kind = StmtKind::Barrier;
  int line = 0;

  // DeclScalar
  std::vector<std::string> names;
  // DeclArray
  std::vector<ArrayDecl> arrays;
  // DeclPartition
  std::string partition_name;
  std::vector<SubgroupSpecAst> subgroups;
  // MapSubgroup / OnSubgroup
  std::string subgroup_name;
  // Distribute
  std::vector<DistSpec> dists;
  // TaskRegion / OnSubgroup / Do / If bodies
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;  // If only
  // Do
  std::string loop_var;
  ExprPtr from, to;
  // Assign
  std::string lhs;
  std::vector<ExprPtr> lhs_indices;  // non-empty for element assignment a(i) = ...
  ExprPtr rhs;
  // Print / If condition
  ExprPtr expr;
  // Call
  std::vector<ExprPtr> call_args;
};

struct Subroutine {
  std::string name;
  std::vector<std::string> params;  // scalars by value; array names bind by reference
  std::vector<StmtPtr> body;
  int line = 0;
};

struct Program {
  std::string name;  // PROGRAM name, or empty
  std::vector<StmtPtr> body;
  std::vector<Subroutine> subroutines;
};

}  // namespace fxpar::lang
