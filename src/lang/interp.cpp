#include "lang/interp.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/fx.hpp"
#include "lang/parser.hpp"

namespace fxpar::lang {

namespace {

using machine::Context;

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("fxlang:" + std::to_string(line) + ": " + what);
}

/// Host-shared PRINT sink; the simulation is single-threaded, ordering is
/// by (virtual time, arrival sequence).
struct OutputSink {
  struct Line {
    double time;
    std::uint64_t seq;
    std::string text;
  };
  std::vector<Line> lines;
  std::uint64_t next_seq = 0;

  void add(double time, std::string text) {
    lines.push_back(Line{time, next_seq++, std::move(text)});
  }
  std::vector<std::string> sorted() const {
    auto copy = lines;
    std::sort(copy.begin(), copy.end(), [](const Line& a, const Line& b) {
      return a.time < b.time || (a.time == b.time && a.seq < b.seq);
    });
    std::vector<std::string> out;
    out.reserve(copy.size());
    for (auto& l : copy) out.push_back(std::move(l.text));
    return out;
  }
};

/// Approximate flop weight of an expression (for time charging).
int expr_ops(const Expr& e) {
  int ops = 1;
  for (const auto& a : e.args) ops += expr_ops(*a);
  return ops;
}

class Interp {
 public:
  Interp(Context& ctx, const Program& prog, OutputSink& sink)
      : ctx_(ctx), prog_(prog), sink_(sink) {
    for (const auto& sub : prog.subroutines) {
      if (!subs_.emplace(sub.name, &sub).second) {
        fail(sub.line, "subroutine redeclared: " + sub.name);
      }
    }
  }

  void run() { exec_block(prog_.body); }

 private:
  struct ArrayVar {
    std::vector<std::int64_t> shape;
    std::string subgroup;                 // empty: current group at materialization
    std::vector<dist::DimDist> dists;     // empty until DISTRIBUTE (default BLOCK dim 0)
    std::unique_ptr<dist::DistArray<double>> data;
    int decl_line = 0;
  };

  struct ElemCtx {
    std::span<const std::int64_t> gidx;
  };

  // ---- execution ----

  void exec_block(const std::vector<StmtPtr>& body) {
    for (const auto& s : body) exec(*s);
  }

  void exec(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::DeclScalar:
        for (const auto& n : s.names) {
          if (scalars_.count(n) || arrays_.count(n)) fail(s.line, "redeclared: " + n);
          scalars_[n] = 0.0;
        }
        return;
      case StmtKind::DeclArray:
        for (const auto& d : s.arrays) {
          if (scalars_.count(d.name) || arrays_.count(d.name)) {
            fail(s.line, "redeclared: " + d.name);
          }
          auto v = std::make_shared<ArrayVar>();
          v->decl_line = s.line;
          for (const auto& e : d.extents) {
            v->shape.push_back(static_cast<std::int64_t>(eval(*e, nullptr)));
          }
          arrays_.emplace(d.name, std::move(v));
        }
        return;
      case StmtKind::DeclPartition: {
        if (partitions_.count(s.partition_name)) {
          fail(s.line, "partition redeclared: " + s.partition_name);
        }
        std::vector<SubgroupSpec> specs;
        for (const auto& sg : s.subgroups) {
          specs.push_back({sg.name, static_cast<int>(eval(*sg.size, nullptr))});
          subgroup_partition_[sg.name] = s.partition_name;
        }
        partitions_.emplace(s.partition_name,
                            std::make_unique<core::TaskPartition>(ctx_, std::move(specs),
                                                                  s.partition_name));
        return;
      }
      case StmtKind::MapSubgroup:
        for (const auto& n : s.names) {
          auto it = arrays_.find(n);
          if (it == arrays_.end()) fail(s.line, "SUBGROUP of undeclared array: " + n);
          if (it->second->data) fail(s.line, "SUBGROUP after first use of: " + n);
          it->second->subgroup = s.subgroup_name;
        }
        return;
      case StmtKind::Distribute:
        for (const auto& d : s.dists) {
          auto it = arrays_.find(d.array);
          if (it == arrays_.end()) fail(s.line, "DISTRIBUTE of undeclared array: " + d.array);
          if (it->second->data) fail(s.line, "DISTRIBUTE after first use of: " + d.array);
          if (d.dims.size() != it->second->shape.size()) {
            fail(s.line, "DISTRIBUTE arity mismatch for: " + d.array);
          }
          std::vector<dist::DimDist> dists;
          for (std::size_t k = 0; k < d.dims.size(); ++k) {
            const std::string& kind = d.dims[k];
            if (kind == "*") {
              dists.push_back(dist::DimDist::collapsed());
            } else if (kind == "BLOCK") {
              dists.push_back(dist::DimDist::block());
            } else if (kind == "CYCLIC" && d.cyclic_blocks[k] > 0) {
              dists.push_back(dist::DimDist::block_cyclic(d.cyclic_blocks[k]));
            } else if (kind == "CYCLIC") {
              dists.push_back(dist::DimDist::cyclic());
            } else {
              fail(s.line, "unknown distribution: " + kind);
            }
          }
          it->second->dists = std::move(dists);
        }
        return;
      case StmtKind::TaskRegion: {
        const core::TaskPartition& part = find_partition(s.partition_name, s.line);
        core::TaskRegion region(ctx_, part);
        region_stack_.push_back(&region);
        try {
          exec_block(s.body);
        } catch (...) {
          region_stack_.pop_back();
          throw;
        }
        region_stack_.pop_back();
        return;
      }
      case StmtKind::OnSubgroup: {
        if (region_stack_.empty()) fail(s.line, "ON SUBGROUP outside a task region");
        core::TaskRegion& region = *region_stack_.back();
        bool threw = false;
        std::exception_ptr eptr;
        region.on(s.subgroup_name, [&] {
          try {
            exec_block(s.body);
          } catch (...) {
            threw = true;
            eptr = std::current_exception();
          }
        });
        if (threw) std::rethrow_exception(eptr);
        return;
      }
      case StmtKind::Do: {
        const double from = eval(*s.from, nullptr);
        const double to = eval(*s.to, nullptr);
        double& var = scalar_ref(s.loop_var, s.line);
        for (double i = from; i <= to + 1e-12; i += 1.0) {
          var = i;
          ctx_.charge_int_ops(2);  // replicated loop control
          exec_block(s.body);
        }
        return;
      }
      case StmtKind::If: {
        const double c = eval(*s.expr, nullptr);
        ctx_.charge_int_ops(1);
        if (c != 0.0) {
          exec_block(s.body);
        } else {
          exec_block(s.else_body);
        }
        return;
      }
      case StmtKind::Assign:
        exec_assign(s);
        return;
      case StmtKind::Print: {
        const double v = eval(*s.expr, nullptr);
        if (ctx_.vrank() == 0) {
          std::ostringstream oss;
          oss.precision(12);
          oss << v;
          sink_.add(ctx_.now(), oss.str());
        }
        return;
      }
      case StmtKind::Barrier:
        ctx_.barrier();
        return;
      case StmtKind::Call:
        exec_call_stmt(s);
        return;
    }
    fail(s.line, "unhandled statement");
  }

  void exec_call_stmt(const Stmt& s) {
    auto it = subs_.find(s.lhs);
    if (it == subs_.end()) fail(s.line, "undeclared subroutine: " + s.lhs);
    const Subroutine& sub = *it->second;
    if (s.call_args.size() != sub.params.size()) {
      fail(s.line, "CALL " + s.lhs + ": expected " + std::to_string(sub.params.size()) +
                       " arguments");
    }
    if (++call_depth_ > 64) {
      --call_depth_;
      fail(s.line, "subroutine recursion too deep");
    }
    // Bind arguments: a bare identifier naming an array binds the array by
    // reference (the Fortran convention the paper's Figure 4 relies on);
    // anything else is evaluated and bound as a value scalar.
    Frame callee;
    for (std::size_t k = 0; k < sub.params.size(); ++k) {
      const Expr& arg = *s.call_args[k];
      if (arg.kind == ExprKind::ScalarRef && arrays_.count(arg.name)) {
        callee.arrays[sub.params[k]] = arrays_.at(arg.name);
      } else {
        callee.scalars[sub.params[k]] = eval(arg, nullptr);
      }
    }
    // Swap in the callee frame (flat Fortran scoping: no caller locals).
    Frame saved{std::move(scalars_), std::move(arrays_), std::move(partitions_),
                std::move(subgroup_partition_), std::move(region_stack_)};
    scalars_ = std::move(callee.scalars);
    arrays_ = std::move(callee.arrays);
    partitions_.clear();
    subgroup_partition_.clear();
    region_stack_.clear();
    try {
      exec_block(sub.body);
    } catch (...) {
      scalars_ = std::move(saved.scalars);
      arrays_ = std::move(saved.arrays);
      partitions_ = std::move(saved.partitions);
      subgroup_partition_ = std::move(saved.subgroup_partition);
      region_stack_ = std::move(saved.region_stack);
      --call_depth_;
      throw;
    }
    scalars_ = std::move(saved.scalars);
    arrays_ = std::move(saved.arrays);
    partitions_ = std::move(saved.partitions);
    subgroup_partition_ = std::move(saved.subgroup_partition);
    region_stack_ = std::move(saved.region_stack);
    --call_depth_;
  }

  std::vector<std::int64_t> eval_indices(const std::vector<ExprPtr>& idx, const ElemCtx* ec,
                                         const ArrayVar& v, int line) {
    if (idx.size() != v.shape.size()) fail(line, "index arity mismatch");
    std::vector<std::int64_t> out;
    for (const auto& e : idx) {
      out.push_back(static_cast<std::int64_t>(eval(*e, ec)));
    }
    for (std::size_t d = 0; d < out.size(); ++d) {
      if (out[d] < 0 || out[d] >= v.shape[d]) {
        fail(line, "index out of range");
      }
    }
    return out;
  }

  void exec_assign(const Stmt& s) {
    // Element assignment a(i[, j]) = expr: all current processors evaluate
    // the (replicated) indices and value; the owners store.
    if (!s.lhs_indices.empty()) {
      auto ait = arrays_.find(s.lhs);
      if (ait == arrays_.end()) fail(s.line, "element assignment to non-array: " + s.lhs);
      ArrayVar& dst = *ait->second;
      materialize(dst, s.line);
      const auto idx = eval_indices(s.lhs_indices, nullptr, dst, s.line);
      const double v = eval(*s.rhs, nullptr);
      ctx_.charge_int_ops(expr_ops(*s.rhs));
      if (dst.data->is_member() && dst.data->owns(idx)) {
        dst.data->at_global(idx) = v;
      }
      return;
    }
    if (scalars_.count(s.lhs)) {
      scalar_ref(s.lhs, s.line) = eval(*s.rhs, nullptr);
      ctx_.charge_int_ops(expr_ops(*s.rhs));
      return;
    }
    auto it = arrays_.find(s.lhs);
    if (it == arrays_.end()) fail(s.line, "assignment to undeclared variable: " + s.lhs);
    ArrayVar& dst = *it->second;

    // Whole-array copy `a = b` with a differently mapped b: redistribution
    // with minimal participating sets (the paper's parent-scope statement).
    if (s.rhs->kind == ExprKind::ScalarRef && arrays_.count(s.rhs->name)) {
      ArrayVar& src = *arrays_.at(s.rhs->name);
      materialize(src, s.line);
      materialize(dst, s.line);
      if (!(src.data->layout() == dst.data->layout())) {
        check_scope_contains(dst, s.line);
        check_scope_contains(src, s.line);
        dist::assign(ctx_, *dst.data, *src.data);
        return;
      }
      // Identically mapped: plain local copy.
      if (dst.data->is_member()) {
        auto from = src.data->local();
        auto to = dst.data->local();
        std::copy(from.begin(), from.end(), to.begin());
        ctx_.charge_mem_bytes(static_cast<double>(from.size_bytes()));
      }
      return;
    }

    // Elementwise assignment over the owned elements.
    materialize(dst, s.line);
    if (!dst.data->is_member()) {
      fail(s.line, "elementwise assignment to '" + s.lhs +
                       "' outside its subgroup (the ON-block locality rule)");
    }
    const int ops = expr_ops(*s.rhs);
    validate_elementwise_operands(*s.rhs, dst, s.line);
    std::int64_t count = 0;
    dst.data->for_each_owned([&](std::span<const std::int64_t> gidx, double& v) {
      ElemCtx ec{gidx};
      v = eval(*s.rhs, &ec);
      count += 1;
    });
    ctx_.charge_flops(static_cast<double>(ops) * static_cast<double>(count));
  }

  // ---- environment helpers ----

  double& scalar_ref(const std::string& name, int line) {
    auto it = scalars_.find(name);
    if (it == scalars_.end()) fail(line, "undeclared scalar: " + name);
    return it->second;
  }

  const core::TaskPartition& find_partition(const std::string& name, int line) {
    if (!name.empty()) {
      auto it = partitions_.find(name);
      if (it == partitions_.end()) fail(line, "undeclared partition: " + name);
      return *it->second;
    }
    if (partitions_.size() != 1) {
      fail(line, "partition name required (not exactly one declared)");
    }
    return *partitions_.begin()->second;
  }

  void materialize(ArrayVar& v, int line) {
    if (v.data) return;
    pgroup::ProcessorGroup group = ctx_.group();
    if (!v.subgroup.empty()) {
      auto it = subgroup_partition_.find(v.subgroup);
      if (it == subgroup_partition_.end()) fail(line, "unknown subgroup: " + v.subgroup);
      group = partitions_.at(it->second)->subgroup(v.subgroup);
    }
    std::vector<dist::DimDist> dists = v.dists;
    if (dists.empty()) {
      dists.assign(v.shape.size(), dist::DimDist::collapsed());
      dists[0] = dist::DimDist::block();
    }
    v.data = std::make_unique<dist::DistArray<double>>(
        ctx_, dist::Layout(group, v.shape, std::move(dists)), "fx.array");
  }

  /// Subgroup-scope locality: the owner groups of statement operands must
  /// be contained in the current group... unless we are in parent scope
  /// (the current group contains them anyway only when they are subsets).
  void check_scope_contains(ArrayVar& v, int line) {
    for (int member : v.data->group().members()) {
      if (!ctx_.group().contains(member)) {
        // Legal only in parent scope, i.e. when the *whole* union will be
        // reached by this statement; approximate the paper's static rule:
        // the array's owners must all be current processors.
        fail(line, "array mapped outside the current processor scope");
      }
    }
  }

  void validate_elementwise_operands(const Expr& e, const ArrayVar& dst, int line) {
    if (e.kind == ExprKind::ScalarRef && arrays_.count(e.name)) {
      ArrayVar& src = *arrays_.at(e.name);
      materialize(src, line);
      if (!(src.data->layout() == dst.data->layout())) {
        fail(line, "elementwise operand '" + e.name +
                       "' is not aligned with the assignment target");
      }
    }
    for (const auto& a : e.args) validate_elementwise_operands(*a, dst, line);
  }

  // ---- evaluation ----

  double eval(const Expr& e, const ElemCtx* ec) {
    switch (e.kind) {
      case ExprKind::Number:
        return e.number;
      case ExprKind::ScalarRef: {
        auto it = scalars_.find(e.name);
        if (it != scalars_.end()) return it->second;
        auto ai = arrays_.find(e.name);
        if (ai != arrays_.end()) {
          if (ec == nullptr) {
            fail(e.line, "whole-array '" + e.name + "' used in scalar context");
          }
          materialize(*ai->second, e.line);
          return ai->second->data->at_global(ec->gidx);
        }
        fail(e.line, "undeclared identifier: " + e.name);
      }
      case ExprKind::Unary:
        return -eval(*e.args[0], ec);
      case ExprKind::Binary: {
        const double a = eval(*e.args[0], ec);
        const double b = eval(*e.args[1], ec);
        switch (e.op) {
          case BinOp::Add: return a + b;
          case BinOp::Sub: return a - b;
          case BinOp::Mul: return a * b;
          case BinOp::Div: return a / b;
          case BinOp::Eq: return a == b ? 1.0 : 0.0;
          case BinOp::Ne: return a != b ? 1.0 : 0.0;
          case BinOp::Lt: return a < b ? 1.0 : 0.0;
          case BinOp::Le: return a <= b ? 1.0 : 0.0;
          case BinOp::Gt: return a > b ? 1.0 : 0.0;
          case BinOp::Ge: return a >= b ? 1.0 : 0.0;
        }
        fail(e.line, "bad operator");
      }
      case ExprKind::Call:
        return eval_call(e, ec);
      case ExprKind::ArrayRef:
        break;
    }
    fail(e.line, "bad expression");
  }

  double eval_call(const Expr& e, const ElemCtx* ec) {
    // Indexed array access a(i[, j]).
    if (auto ait = arrays_.find(e.name); ait != arrays_.end()) {
      ArrayVar& v = *ait->second;
      materialize(v, e.line);
      const auto idx = eval_indices(e.args, ec, v, e.line);
      if (ec != nullptr) {
        // Elementwise context: the referenced element must be local.
        if (!v.data->is_member() || !v.data->owns(idx)) {
          fail(e.line, "remote element access in elementwise expression");
        }
        return v.data->at_global(idx);
      }
      // Scalar context: the owner broadcasts within the current group (the
      // owner-computes pattern; every current processor must be executing
      // this statement).
      std::vector<std::int64_t> ownspan(idx.begin(), idx.end());
      const int owner_v = v.data->layout().owner_of(ownspan);
      const int owner_phys = v.data->group().physical(owner_v);
      const int root = ctx_.group().virtual_of(owner_phys);
      if (root < 0) {
        fail(e.line, "element owner is outside the current processor scope");
      }
      double value = 0.0;
      if (ctx_.phys_rank() == owner_phys) value = v.data->at_global(idx);
      if (ctx_.nprocs() == 1) return value;
      return comm::broadcast(ctx_, ctx_.group(), root, value);
    }
    auto need_args = [&](std::size_t n) {
      if (e.args.size() != n) fail(e.line, e.name + ": wrong number of arguments");
    };
    if (e.name == "NPROCS") {
      need_args(0);
      return static_cast<double>(ctx_.nprocs());
    }
    if (e.name == "MYRANK") {
      need_args(0);
      return static_cast<double>(ctx_.vrank());
    }
    if (e.name == "MOD") {
      need_args(2);
      return std::fmod(eval(*e.args[0], ec), eval(*e.args[1], ec));
    }
    if (e.name == "INDEX") {
      need_args(1);
      if (ec == nullptr) fail(e.line, "INDEX() outside an elementwise expression");
      const int d = static_cast<int>(eval(*e.args[0], nullptr)) - 1;  // 1-based
      if (d < 0 || d >= static_cast<int>(ec->gidx.size())) fail(e.line, "INDEX: bad dimension");
      return static_cast<double>(ec->gidx[static_cast<std::size_t>(d)]);
    }
    if (e.name == "SUM" || e.name == "MINVAL" || e.name == "MAXVAL") {
      need_args(1);
      if (e.args[0]->kind != ExprKind::ScalarRef || !arrays_.count(e.args[0]->name)) {
        fail(e.line, e.name + ": argument must be an array");
      }
      ArrayVar& v = *arrays_.at(e.args[0]->name);
      materialize(v, e.line);
      if (!(v.data->group() == ctx_.group())) {
        fail(e.line, e.name + ": array must be mapped to the current processors");
      }
      double local;
      std::function<double(double, double)> op;
      if (e.name == "SUM") {
        local = 0.0;
        op = [](double a, double b) { return a + b; };
      } else if (e.name == "MINVAL") {
        local = std::numeric_limits<double>::infinity();
        op = [](double a, double b) { return std::min(a, b); };
      } else {
        local = -std::numeric_limits<double>::infinity();
        op = [](double a, double b) { return std::max(a, b); };
      }
      // Fully replicated arrays: every member holds everything; reduce
      // locally on each member without communication.
      if (v.data->layout().fully_replicated()) {
        for (double x : v.data->local()) local = op(local, x);
        ctx_.charge_flops(static_cast<double>(v.data->local().size()));
        return local;
      }
      for (double x : v.data->local()) local = op(local, x);
      ctx_.charge_flops(static_cast<double>(v.data->local().size()));
      return comm::allreduce(ctx_, ctx_.group(), local, op);
    }
    fail(e.line, "unknown intrinsic: " + e.name);
  }

  /// One procedure activation's environment. Subroutines see only their
  /// parameters and local declarations (Fortran-style flat scoping), so a
  /// CALL swaps in a fresh frame and restores the caller's afterwards.
  struct Frame {
    std::map<std::string, double> scalars;
    std::map<std::string, std::shared_ptr<ArrayVar>> arrays;
    std::map<std::string, std::unique_ptr<core::TaskPartition>> partitions;
    std::map<std::string, std::string> subgroup_partition;
    std::vector<core::TaskRegion*> region_stack;
  };

  Context& ctx_;
  const Program& prog_;
  OutputSink& sink_;
  std::map<std::string, const Subroutine*> subs_;
  std::map<std::string, double> scalars_;
  std::map<std::string, std::shared_ptr<ArrayVar>> arrays_;
  std::map<std::string, std::unique_ptr<core::TaskPartition>> partitions_;
  std::map<std::string, std::string> subgroup_partition_;
  std::vector<core::TaskRegion*> region_stack_;
  int call_depth_ = 0;
};

}  // namespace

FxRunResult run_program(const machine::MachineConfig& config, const Program& program) {
  FxRunResult res;
  OutputSink sink;
  machine::Machine machine(config);
  res.machine_result = machine.run([&](Context& ctx) {
    Interp interp(ctx, program, sink);
    interp.run();
  });
  res.output = sink.sorted();
  return res;
}

FxRunResult run_source(const machine::MachineConfig& config, const std::string& source) {
  return run_program(config, parse_program(source));
}

}  // namespace fxpar::lang
