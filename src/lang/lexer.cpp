#include "lang/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace fxpar::lang {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::invalid_argument("fxlang:" + std::to_string(line) + ": " + what);
}

}  // namespace

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();
  auto push = [&](Tok k) { out.push_back(Token{k, "", 0, line}); };

  while (i < n) {
    const char c = source[i];
    if (c == '!') {  // comment to end of line
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '\n') {
      if (!out.empty() && out.back().kind != Tok::Newline) push(Tok::Newline);
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      char* end = nullptr;
      const double v = std::strtod(source.c_str() + i, &end);
      Token t{Tok::Number, "", v, line};
      i = static_cast<std::size_t>(end - source.c_str());
      out.push_back(t);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) || source[j] == '_')) {
        ++j;
      }
      std::string word = source.substr(i, j - i);
      for (char& ch : word) ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      out.push_back(Token{Tok::Ident, std::move(word), 0, line});
      i = j;
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && source[i + 1] == b;
    };
    if (two(':', ':')) {
      push(Tok::ColonColon);
      i += 2;
      continue;
    }
    if (two('=', '=')) {
      push(Tok::Eq);
      i += 2;
      continue;
    }
    if (two('<', '>')) {
      push(Tok::Ne);
      i += 2;
      continue;
    }
    if (two('<', '=')) {
      push(Tok::Le);
      i += 2;
      continue;
    }
    if (two('>', '=')) {
      push(Tok::Ge);
      i += 2;
      continue;
    }
    switch (c) {
      case '(': push(Tok::LParen); break;
      case ')': push(Tok::RParen); break;
      case ',': push(Tok::Comma); break;
      case '=': push(Tok::Assign); break;
      case '+': push(Tok::Plus); break;
      case '-': push(Tok::Minus); break;
      case '*': push(Tok::Star); break;
      case '/': push(Tok::Slash); break;
      case '<': push(Tok::Lt); break;
      case '>': push(Tok::Gt); break;
      default:
        fail(line, std::string("unexpected character '") + c + "'");
    }
    ++i;
  }
  if (!out.empty() && out.back().kind != Tok::Newline) push(Tok::Newline);
  out.push_back(Token{Tok::End, "", 0, line});
  return out;
}

}  // namespace fxpar::lang
