// fxlang: SPMD interpreter for the Fx-like directive language.
//
// A parsed Program executes once per simulated processor (SPMD), against
// the same runtime the C++ DSL uses: TASK_PARTITION creates a
// core::TaskPartition of the current group, BEGIN TASK_REGION opens a
// core::TaskRegion, ON SUBGROUP bodies run on their subgroup only, array
// assignment between differently mapped arrays is a dist::assign with the
// minimal participating set, and scalars are replicated per the paper's
// execution model. Time is charged per evaluated expression node.
//
// Model legality is enforced dynamically: code in subgroup scope may only
// touch arrays whose owner group is contained in the current group (the
// paper's ON-block locality assertion), elementwise operands must be
// identically mapped (alignment), and ON is only legal inside a task
// region.
#pragma once

#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "machine/machine.hpp"

namespace fxpar::lang {

struct FxRunResult {
  machine::RunResult machine_result;
  std::vector<std::string> output;  ///< PRINT lines, ordered by virtual time
};

/// Executes a parsed program on a simulated machine.
FxRunResult run_program(const machine::MachineConfig& config, const Program& program);

/// Parses and executes source text.
FxRunResult run_source(const machine::MachineConfig& config, const std::string& source);

}  // namespace fxpar::lang
