#include "core/task_partition.hpp"

#include <stdexcept>

namespace fxpar::core {

TaskPartition::TaskPartition(Context& ctx, std::vector<SubgroupSpec> specs, std::string name)
    : name_(std::move(name)), tmpl_(std::move(specs)), parent_(ctx.group()) {
  if (tmpl_.total_size() != parent_.size()) {
    throw std::invalid_argument(
        "TASK_PARTITION " + name_ + " :: " + tmpl_.to_string() + " covers " +
        std::to_string(tmpl_.total_size()) + " processors but the current group has " +
        std::to_string(parent_.size()));
  }
  subgroups_.reserve(static_cast<std::size_t>(tmpl_.num_subgroups()));
  for (int i = 0; i < tmpl_.num_subgroups(); ++i) {
    subgroups_.push_back(tmpl_.materialize(parent_, i));
  }
}

const ProcessorGroup& TaskPartition::subgroup(int i) const {
  if (i < 0 || i >= num_subgroups()) {
    throw std::out_of_range("TaskPartition::subgroup: index " + std::to_string(i));
  }
  return subgroups_[static_cast<std::size_t>(i)];
}

const ProcessorGroup& TaskPartition::subgroup(const std::string& subgroup_name) const {
  return subgroups_[static_cast<std::size_t>(tmpl_.index_of(subgroup_name))];
}

int TaskPartition::my_subgroup(const Context& ctx) const {
  const int v = parent_.virtual_of(ctx.phys_rank());
  if (v < 0) {
    throw std::logic_error("TaskPartition::my_subgroup: processor is not in the parent group");
  }
  return tmpl_.subgroup_of_virtual(v);
}

std::string TaskPartition::to_string() const {
  return "TASK_PARTITION " + (name_.empty() ? std::string("<anon>") : name_) +
         " :: " + tmpl_.to_string();
}

}  // namespace fxpar::core
