// fxpar: umbrella public header for the integrated task and data parallel
// programming model of Subhlok & Yang (PPoPP'97), reimplemented as a C++20
// embedded DSL over a deterministic simulated multicomputer.
//
// Quickstart:
//
//   #include "core/fx.hpp"
//   using namespace fxpar;
//
//   Machine machine(MachineConfig::paragon(8));
//   machine.run([](Context& ctx) {
//     core::TaskPartition part(ctx, {{"some", 5}, {"many", ctx.nprocs() - 5}});
//     core::TaskRegion region(ctx, part);
//     region.on("some", [&] { /* runs on 5 processors */ });
//     region.on("many", [&] { /* runs on the rest    */ });
//   });
//
// Traced run (see docs/observability.md):
//
//   MachineConfig cfg = MachineConfig::paragon(8);
//   cfg.trace = true;                       // off by default, ~zero cost when off
//   Machine machine(cfg);
//   RunResult res = machine.run(program);
//   std::cout << trace::phase_report(*res.trace).to_string();     // per-phase time
//   std::cout << trace::critical_path(*res.trace).to_string();    // longest chain
//   trace::write_chrome_trace(*res.trace, "run.trace.json");      // Perfetto/chrome
#pragma once

#include "comm/collectives.hpp"
#include "comm/serialize.hpp"
#include "core/hpf_on.hpp"
#include "core/parallel_loop.hpp"
#include "core/replicated.hpp"
#include "core/subgroup_var.hpp"
#include "core/task_partition.hpp"
#include "core/task_region.hpp"
#include "dist/dist_array.hpp"
#include "dist/redistribute.hpp"
#include "dist/reductions.hpp"
#include "machine/config.hpp"
#include "machine/context.hpp"
#include "machine/machine.hpp"
#include "pgroup/grid.hpp"
#include "pgroup/group.hpp"
#include "pgroup/partition.hpp"
#include "trace/chrome_export.hpp"
#include "trace/critical_path.hpp"
#include "trace/phase_report.hpp"
#include "trace/trace.hpp"

namespace fxpar {

using machine::Context;
using machine::Machine;
using machine::MachineConfig;
using machine::RunResult;
using pgroup::ProcessorGroup;
using pgroup::SubgroupSpec;

}  // namespace fxpar
