// fxpar core: TASK_REGION / ON SUBGROUP execution directives.
//
// A TaskRegion is the RAII analogue of BEGIN TASK_REGION ... END TASK_REGION.
// Inside it, `on(subgroup, fn)` executes `fn` only on the processors of the
// named subgroup, with that subgroup pushed as the current processor group
// (the paper's processor-mapping stack); every other processor *skips past
// the block without synchronizing*, which is what enables pipelined task
// parallelism. Parent-scope code between on() blocks runs on all current
// processors in ordinary data parallel mode.
//
// There is deliberately no implicit barrier at region entry or exit: as in
// the paper, synchronization comes from the data movement itself (array
// assignments, subset barriers inside data parallel operations).
//
// Lexical nesting of regions is rejected at runtime (the paper forbids it);
// *dynamic* nesting — declaring a new partition of the current subgroup
// inside an on() block — is the mechanism for recursive task parallelism.
#pragma once

#include <functional>
#include <string>
#include <type_traits>
#include <utility>

#include "core/task_partition.hpp"
#include "trace/trace.hpp"

namespace fxpar::core {

class TaskRegion {
 public:
  /// BEGIN TASK_REGION: activates `part`, which must have been declared
  /// against the current processor group of `ctx`.
  TaskRegion(Context& ctx, const TaskPartition& part);

  /// END TASK_REGION.
  ~TaskRegion();

  TaskRegion(const TaskRegion&) = delete;
  TaskRegion& operator=(const TaskRegion&) = delete;

  /// ON SUBGROUP <name> ... END ON. Members of the subgroup execute `fn`
  /// with the subgroup as their current group; non-members return
  /// immediately. The callable may take either no argument or the
  /// subgroup's ProcessorGroup.
  template <typename Fn>
  void on(const std::string& subgroup_name, Fn&& fn) {
    on(part_.tmpl().index_of(subgroup_name), std::forward<Fn>(fn));
  }

  template <typename Fn>
  void on(int subgroup_index, Fn&& fn) {
    const ProcessorGroup& g = part_.subgroup(subgroup_index);
    if (!g.contains(ctx_.phys_rank())) return;  // skip past, no sync
    enter_on(subgroup_index);
    try {
      if constexpr (std::is_invocable_v<Fn&, const ProcessorGroup&>) {
        fn(g);
      } else {
        static_assert(std::is_invocable_v<Fn&>,
                      "on(): callable must take () or (const ProcessorGroup&)");
        fn();
      }
    } catch (...) {
      leave_on();
      throw;
    }
    leave_on();
  }

  const TaskPartition& partition() const noexcept { return part_; }
  Context& context() noexcept { return ctx_; }

 private:
  void enter_on(int subgroup_index);
  void leave_on();

  Context& ctx_;
  const TaskPartition& part_;
  int base_depth_;        ///< group-stack depth at region entry
  bool in_on_ = false;
  trace::ScopedSpan region_span_;  ///< open for the region's lifetime
  trace::ScopedSpan on_span_;      ///< open while inside an ON block
};

}  // namespace fxpar::core
