// fxpar core: the SUBGROUP variable-mapping directive.
//
//   SUBGROUP(some) :: some_low, some_high
//   DISTRIBUTE some_low(BLOCK)
//
// becomes: a DistArray whose owning group is the named subgroup of a
// TaskPartition, with distribution directives interpreted relative to that
// subgroup. Only subgroup members allocate storage, and the DistArray's
// ownership checks enforce the locality assertion of ON SUBGROUP blocks at
// runtime (accessing a non-local element throws).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/task_partition.hpp"
#include "dist/dist_array.hpp"

namespace fxpar::core {

/// Creates a variable mapped onto `part`'s subgroup `subgroup_name`, with
/// per-dimension distributions relative to that subgroup's processors.
template <typename T>
dist::DistArray<T> subgroup_array(Context& ctx, const TaskPartition& part,
                                  const std::string& subgroup_name,
                                  std::vector<std::int64_t> shape,
                                  std::vector<dist::DimDist> dists,
                                  std::string name = "") {
  if (name.empty()) name = subgroup_name + ".var";
  dist::Layout layout(part.subgroup(subgroup_name), std::move(shape), std::move(dists));
  return dist::DistArray<T>(ctx, std::move(layout), std::move(name));
}

/// A variable mapped to the *current* group (an unmapped array in the
/// paper's terms: visible to all current processors).
template <typename T>
dist::DistArray<T> current_group_array(Context& ctx, std::vector<std::int64_t> shape,
                                       std::vector<dist::DimDist> dists,
                                       std::string name = "") {
  dist::Layout layout(ctx.group(), std::move(shape), std::move(dists));
  return dist::DistArray<T>(ctx, std::move(layout), std::move(name));
}

}  // namespace fxpar::core
