// fxpar core: the TASK_PARTITION declaration directive.
//
// A TaskPartition materializes a PartitionTemplate against the *current*
// processor group of the declaring context, exactly like the paper's
//
//   TASK_PARTITION myPart :: some(5), many(NUMBER_OF_PROCESSORS()-5)
//
// Subgroup sizes are ordinary runtime values, so — as in the paper — the
// partitioning can differ per procedure invocation (quicksort, Barnes-Hut).
#pragma once

#include <string>
#include <vector>

#include "machine/context.hpp"
#include "pgroup/group.hpp"
#include "pgroup/partition.hpp"

namespace fxpar::core {

using machine::Context;
using pgroup::PartitionTemplate;
using pgroup::ProcessorGroup;
using pgroup::SubgroupSpec;

class TaskPartition {
 public:
  /// Declares a partition of the current processors of `ctx`. The subgroup
  /// sizes must sum exactly to ctx.nprocs() (NUMBER_OF_PROCESSORS()).
  TaskPartition(Context& ctx, std::vector<SubgroupSpec> specs, std::string name = "");

  const std::string& name() const noexcept { return name_; }
  const PartitionTemplate& tmpl() const noexcept { return tmpl_; }
  const ProcessorGroup& parent() const noexcept { return parent_; }
  int num_subgroups() const noexcept { return tmpl_.num_subgroups(); }

  const ProcessorGroup& subgroup(int i) const;
  const ProcessorGroup& subgroup(const std::string& subgroup_name) const;
  const std::string& subgroup_name(int i) const { return tmpl_.spec(i).name; }

  /// Index of the subgroup containing the calling processor.
  int my_subgroup(const Context& ctx) const;

  std::string to_string() const;

 private:
  std::string name_;
  PartitionTemplate tmpl_;
  ProcessorGroup parent_;
  std::vector<ProcessorGroup> subgroups_;
};

}  // namespace fxpar::core
