// fxpar core: the Fx parallel loop construct ("do&merge", ref [24] of the
// paper: Yang et al., "Do&merge: Integrating parallel loops and
// reductions").
//
// Fx expresses loop parallelism with a construct that combines independent
// iterations (the "do" part) with a merge of per-iteration contributions
// (the "merge" part — a reduction). Here:
//
//   auto sum = core::parallel_reduce<double>(
//       ctx, 0, n,
//       [&](std::int64_t i) { return f(i); },     // do: one iteration
//       std::plus<double>{}, 0.0);                // merge
//
// Iterations are block-partitioned over the *current* processor group, each
// processor merges its local contributions in iteration order, and the
// partial results are combined with a group reduction whose deterministic
// tree order makes results reproducible. parallel_for is the no-merge
// special case.
//
// Both constructs execute through the backend's bulk loop hook
// (exec::Backend::run_chunks): the simulator runs the static block
// schedule inline, while the threaded backend may let idle members of the
// current group steal iteration chunks from siblings (see
// docs/execution.md, "Work stealing"). Results are bit-identical either
// way: iteration ownership follows exec::loop_block on every backend, a
// stolen chunk runs through the owner's closure, and the reduction always
// merges per-iteration values in iteration order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "comm/collectives.hpp"
#include "machine/context.hpp"

namespace fxpar::core {

namespace detail {

/// Block partition of [lo, hi) over `parts`: piece `which` as [first, last).
inline std::pair<std::int64_t, std::int64_t> iteration_block(std::int64_t lo, std::int64_t hi,
                                                             int parts, int which) {
  return exec::loop_block(lo, hi, parts, which);
}

}  // namespace detail

/// Runs `body(i)` for every i in [lo, hi), block-partitioned over the
/// current group. Purely local from the program's point of view: callers
/// that need the results of other processors' iterations synchronize via
/// the data they touch, as in the paper's execution model. Iterations must
/// be independent — under work stealing, chunks of one processor's block
/// may execute concurrently on sibling workers.
template <typename Body>
void parallel_for(machine::Context& ctx, std::int64_t lo, std::int64_t hi, Body&& body) {
  trace::ScopedSpan sp = ctx.span("parallel_for", "loop");
  metrics::RuntimeMetrics* const mm = ctx.machine().metrics();
  const int rank = ctx.phys_rank();
  double t0 = 0.0;
  if (mm) {
    mm->loops->add(rank);
    t0 = ctx.machine().backend().now(rank);
  }
  ctx.machine().backend().run_chunks(ctx.group(), lo, hi,
                                     [&body](std::int64_t first, std::int64_t last) {
                                       for (std::int64_t i = first; i < last; ++i) body(i);
                                     });
  // Modeled seconds on the simulator, real seconds on the threaded backend.
  if (mm) mm->loop_s->observe(rank, ctx.machine().backend().now(rank) - t0);
}

/// do&merge: evaluates `body(i)` for every iteration, merges locally in
/// iteration order, then reduces across the current group. Every member of
/// the current group must call. Returns the merged value on every member.
template <typename T, typename Body, typename Merge>
T parallel_reduce(machine::Context& ctx, std::int64_t lo, std::int64_t hi, Body&& body,
                  Merge&& merge, T init) {
  trace::ScopedSpan sp = ctx.span("parallel_reduce", "loop");
  exec::Backend& backend = ctx.machine().backend();
  metrics::RuntimeMetrics* const mm = ctx.machine().metrics();
  const int rank = ctx.phys_rank();
  double t0 = 0.0;
  if (mm) {
    mm->loops->add(rank);
    t0 = backend.now(rank);
  }
  auto observe = [&] {
    if (mm) mm->loop_s->observe(rank, backend.now(rank) - t0);
  };
  T local = init;
  if (backend.stealing_loops()) {
    // Chunks of this block may run concurrently (on this worker and on
    // thieves), so the fold cannot accumulate inside the chunk body.
    // Buffer each iteration's value in a block-sized slot owned by this
    // member — thieves write it through this closure — then fold in
    // iteration order after the join: the exact merge sequence of the
    // static path, so results stay bitwise identical with stealing on or
    // off and across backends. Slots are std::optional so T needs only be
    // move-constructible, like the static path: chunks partition the
    // block, so each slot is emplaced exactly once by whichever worker
    // runs its chunk. The buffer is one O(block-length) allocation per
    // call — the price of decoupling evaluation order from the fold.
    const auto [first, last] =
        detail::iteration_block(lo, hi, ctx.nprocs(), ctx.vrank());
    std::vector<std::optional<T>> vals(static_cast<std::size_t>(last - first));
    std::optional<T>* out = vals.data();
    backend.run_chunks(ctx.group(), lo, hi,
                       [&body, out, base = first](std::int64_t clo, std::int64_t chi) {
                         for (std::int64_t i = clo; i < chi; ++i) {
                           out[i - base].emplace(body(i));
                         }
                       });
    for (std::optional<T>& v : vals) local = merge(local, std::move(*v));
  } else {
    backend.run_chunks(ctx.group(), lo, hi,
                       [&body, &merge, &local](std::int64_t clo, std::int64_t chi) {
                         for (std::int64_t i = clo; i < chi; ++i) {
                           local = merge(local, body(i));
                         }
                       });
  }
  if (ctx.nprocs() == 1) {
    observe();
    return local;
  }
  T result = comm::allreduce(ctx, ctx.group(), local, merge);
  observe();
  return result;
}

}  // namespace fxpar::core
