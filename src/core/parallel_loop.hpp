// fxpar core: the Fx parallel loop construct ("do&merge", ref [24] of the
// paper: Yang et al., "Do&merge: Integrating parallel loops and
// reductions").
//
// Fx expresses loop parallelism with a construct that combines independent
// iterations (the "do" part) with a merge of per-iteration contributions
// (the "merge" part — a reduction). Here:
//
//   auto sum = core::parallel_reduce<double>(
//       ctx, 0, n,
//       [&](std::int64_t i) { return f(i); },     // do: one iteration
//       std::plus<double>{}, 0.0);                // merge
//
// Iterations are block-partitioned over the *current* processor group, each
// processor merges its local contributions in iteration order, and the
// partial results are combined with a group reduction whose deterministic
// tree order makes results reproducible. parallel_for is the no-merge
// special case.
#pragma once

#include <cstdint>
#include <functional>

#include "comm/collectives.hpp"
#include "machine/context.hpp"

namespace fxpar::core {

namespace detail {

/// Block partition of [lo, hi) over `parts`: piece `which` as [first, last).
inline std::pair<std::int64_t, std::int64_t> iteration_block(std::int64_t lo, std::int64_t hi,
                                                             int parts, int which) {
  const std::int64_t n = hi - lo;
  const std::int64_t b = (n + parts - 1) / parts;
  const std::int64_t first = lo + static_cast<std::int64_t>(which) * b;
  const std::int64_t last = std::min(hi, first + b);
  return {first, std::max(first, last)};
}

}  // namespace detail

/// Runs `body(i)` for every i in [lo, hi), block-partitioned over the
/// current group. Purely local: no synchronization (callers that need the
/// results of other processors' iterations synchronize via the data they
/// touch, as in the paper's execution model).
template <typename Body>
void parallel_for(machine::Context& ctx, std::int64_t lo, std::int64_t hi, Body&& body) {
  trace::ScopedSpan sp = ctx.span("parallel_for", "loop");
  const auto [first, last] =
      detail::iteration_block(lo, hi, ctx.nprocs(), ctx.vrank());
  for (std::int64_t i = first; i < last; ++i) body(i);
}

/// do&merge: evaluates `body(i)` for every iteration, merges locally in
/// iteration order, then reduces across the current group. Every member of
/// the current group must call. Returns the merged value on every member.
template <typename T, typename Body, typename Merge>
T parallel_reduce(machine::Context& ctx, std::int64_t lo, std::int64_t hi, Body&& body,
                  Merge&& merge, T init) {
  trace::ScopedSpan sp = ctx.span("parallel_reduce", "loop");
  T local = init;
  const auto [first, last] =
      detail::iteration_block(lo, hi, ctx.nprocs(), ctx.vrank());
  for (std::int64_t i = first; i < last; ++i) {
    local = merge(local, body(i));
  }
  if (ctx.nprocs() == 1) return local;
  return comm::allreduce(ctx, ctx.group(), local, merge);
}

}  // namespace fxpar::core
