// fxpar core: the HPF 2.0 style ON construct (paper Section 6).
//
// The paper contrasts Fx task parallelism — where an ON block may appear
// only inside a task region and its subgroup must come from a declared
// TASK_PARTITION — with the approved HPF extension, where a general ON
// clause names *any* subset of the current processor arrangement, possibly
// computed at runtime, with no declarative information. This header
// implements the HPF flavour so the two styles can be compared in code and
// in benchmarks:
//
//   hpf::on(ctx, some_group, [&]{ ... });                  // explicit group
//   hpf::on_range(ctx, first, count, [&]{ ... });          // rectilinear
//
// Differences from TaskRegion::on, mirroring the paper's discussion:
//   * no TASK_PARTITION declaration, no task region — any single-entry
//     single-exit block can be mapped onto a computed processor subset;
//   * only *rectilinear* subsets of the current arrangement are expressible
//     with on_range (the HPF restriction); on() accepts any group but then
//     provides the implementation none of HPF's declarative knowledge;
//   * overlap between concurrent ON blocks is the programmer's problem:
//     with no partition declaration the library cannot check disjointness,
//     which is exactly the implementation-difficulty argument of Section 6.
#pragma once

#include <type_traits>
#include <utility>

#include "machine/context.hpp"
#include "pgroup/group.hpp"
#include "trace/trace.hpp"

namespace fxpar::core::hpf {

/// Executes `fn` on the processors of `g` (a subset of the current group),
/// with `g` pushed as the current group; everyone else skips past without
/// synchronizing. `g` may be computed at runtime.
template <typename Fn>
void on(machine::Context& ctx, const pgroup::ProcessorGroup& g, Fn&& fn) {
  // Every member of g must be a member of the current group: an ON clause
  // names a subset of the current processor arrangement.
  for (int v = 0; v < g.size(); ++v) {
    if (!ctx.group().contains(g.physical(v))) {
      throw std::logic_error(
          "hpf::on: named processors are not a subset of the current group");
    }
  }
  if (!g.contains(ctx.phys_rank())) return;
  ctx.push_group(g);
  try {
    trace::ScopedSpan sp = ctx.span("hpf_on", "subgroup");
    if constexpr (std::is_invocable_v<Fn&, const pgroup::ProcessorGroup&>) {
      fn(g);
    } else {
      fn();
    }
  } catch (...) {
    ctx.pop_group();
    throw;
  }
  ctx.pop_group();
}

/// HPF's rectilinear form: ON PROCS(first : first+count-1). The range is in
/// virtual ranks of the *current* group.
template <typename Fn>
void on_range(machine::Context& ctx, int first, int count, Fn&& fn) {
  on(ctx, ctx.group().slice(first, count), std::forward<Fn>(fn));
}

/// ON HOME-style element loop: runs `body(i)` for every i in [lo, hi),
/// block-partitioned over the processors of `g`, with `g` pushed as the
/// current group. Non-members skip past without synchronizing. The loop
/// executes through the backend's bulk hook (exec::Backend::run_chunks), so
/// on the threaded backend idle members of `g` — and only members of `g`;
/// stealing never crosses into sibling subgroups — may steal iteration
/// chunks from each other (docs/execution.md, "Work stealing").
template <typename Body>
void on_elements(machine::Context& ctx, const pgroup::ProcessorGroup& g, std::int64_t lo,
                 std::int64_t hi, Body&& body) {
  on(ctx, g, [&ctx, lo, hi, &body] {
    ctx.machine().backend().run_chunks(ctx.group(), lo, hi,
                                       [&body](std::int64_t first, std::int64_t last) {
                                         for (std::int64_t i = first; i < last; ++i) body(i);
                                       });
  });
}

}  // namespace fxpar::core::hpf
