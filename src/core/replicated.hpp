// fxpar core: replicated scalar variables.
//
// The paper (Section 4, "Replicated Computations"): unmapped scalars are
// replicated on all current processors and computations involving only
// replicated values execute redundantly — asynchronously, with no
// communication or synchronization. This is what lets the loop induction
// variable of a pipelined task region advance independently in every
// subgroup. The alternative — one owner computes and broadcasts — is
// implemented too (OwnerBroadcast) purely so the ablation benchmark can
// demonstrate why the paper rejects it.
#pragma once

#include <algorithm>
#include <functional>
#include <type_traits>
#include <utility>

#include "comm/collectives.hpp"
#include "machine/context.hpp"
#include "pgroup/group.hpp"

namespace fxpar::core {

enum class ReplicationMode {
  Replicate,       ///< every processor computes its own copy (paper's choice)
  OwnerBroadcast,  ///< virtual rank 0 of the scope computes and broadcasts
};

template <typename T>
class Replicated {
 public:
  /// Declares a replicated scalar scoped to the current processor group of
  /// `ctx`. Every member must construct it (SPMD).
  Replicated(machine::Context& ctx, T init = T{},
             ReplicationMode mode = ReplicationMode::Replicate)
      : ctx_(&ctx), scope_(ctx.group()), mode_(mode), value_(std::move(init)) {}

  const T& value() const noexcept { return value_; }
  operator const T&() const noexcept { return value_; }

  /// SPMD update: every member of the scope must call with an equivalent
  /// `fn`. In Replicate mode each processor applies `fn` locally (a couple
  /// of scalar ops of modeled time, no communication). In OwnerBroadcast
  /// mode only virtual rank 0 computes; everyone then synchronizes on the
  /// broadcast — the serialization the paper warns about.
  template <typename Fn>
  void update(Fn&& fn) {
    switch (mode_) {
      case ReplicationMode::Replicate:
        value_ = fn(value_);
        ctx_->charge_int_ops(2);  // redundant local compute: check + apply
        break;
      case ReplicationMode::OwnerBroadcast: {
        T next = value_;
        if (scope_.virtual_of(ctx_->phys_rank()) == 0) {
          next = fn(value_);
          ctx_->charge_int_ops(2);
        }
        value_ = comm::broadcast(*ctx_, scope_, 0, next);
        break;
      }
    }
  }

  void set(const T& v) {
    update([&](const T&) { return v; });
  }

  /// Loop-induction convenience: i.increment() is the paper's `i = i + 1`.
  void increment(T step = T{1}) {
    update([&](const T& v) { return static_cast<T>(v + step); });
  }

  const pgroup::ProcessorGroup& scope() const noexcept { return scope_; }
  ReplicationMode mode() const noexcept { return mode_; }

  /// Debug check of the model's assertion that replicated computations are
  /// performed identically everywhere: verifies the value is bit-identical
  /// on every member of the scope (costs one reduction; SPMD — every
  /// member must call). Throws std::logic_error on divergence.
  void assert_coherent() const {
    static_assert(std::is_trivially_copyable_v<T>,
                  "assert_coherent requires a trivially copyable T");
    const T lo = comm::allreduce(*ctx_, scope_, value_,
                                 [](const T& a, const T& b) { return std::min(a, b); });
    const T hi = comm::allreduce(*ctx_, scope_, value_,
                                 [](const T& a, const T& b) { return std::max(a, b); });
    if (lo != hi) {
      throw std::logic_error(
          "Replicated: value diverged across the scope (the asynchronous "
          "replication assertion is violated)");
    }
  }

 private:
  machine::Context* ctx_;
  pgroup::ProcessorGroup scope_;
  ReplicationMode mode_;
  T value_;
};

}  // namespace fxpar::core
