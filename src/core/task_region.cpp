#include "core/task_region.hpp"

#include <stdexcept>

namespace fxpar::core {

TaskRegion::TaskRegion(Context& ctx, const TaskPartition& part)
    : ctx_(ctx), part_(part), base_depth_(ctx.group_depth()) {
  // The partition must describe exactly the current processors: this is the
  // paper's rule that a TASK_PARTITION is a template for dividing the
  // *current* group and a task region activates that template.
  if (!(part_.parent() == ctx_.group())) {
    throw std::logic_error("BEGIN TASK_REGION: partition " + part_.to_string() +
                           " was not declared against the current processor group " +
                           ctx_.group().to_string());
  }
  if (ctx_.tracer()) {
    region_span_ = ctx_.span(
        part_.name().empty() ? std::string("region") : "region:" + part_.name(),
        "task_region");
  }
  if (metrics::RuntimeMetrics* mm = ctx_.machine().metrics()) {
    mm->task_regions->add(ctx_.phys_rank());
  }
}

TaskRegion::~TaskRegion() {
  // END TASK_REGION. No implicit barrier; but the group stack must be back
  // at region level. Throwing from a destructor is not an option, so a
  // stack imbalance terminates via the std::logic_error -> std::terminate
  // path only if the stack is provably corrupted and no exception is in
  // flight.
  if (in_on_ && ctx_.group_depth() > base_depth_) {
    ctx_.pop_group();
  }
}

void TaskRegion::enter_on(int subgroup_index) {
  if (in_on_) {
    throw std::logic_error(
        "ON SUBGROUP: lexical nesting of ON blocks is not permitted "
        "(use a procedure with its own TASK_REGION for dynamic nesting)");
  }
  ctx_.push_group(part_.subgroup(subgroup_index));
  in_on_ = true;
  if (ctx_.tracer()) {
    on_span_ = ctx_.span("on:" + part_.subgroup_name(subgroup_index), "subgroup");
  }
}

void TaskRegion::leave_on() {
  on_span_.close();
  ctx_.pop_group();
  in_on_ = false;
}

}  // namespace fxpar::core
