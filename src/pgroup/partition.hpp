// fxpar pgroup: TASK_PARTITION templates.
//
// A PartitionTemplate mirrors the paper's TASK_PARTITION directive: it
// names subgroups and assigns each a processor count; activating it against
// a parent group yields one ProcessorGroup per subgroup. As in the Fx
// implementation, subgroups are assigned *contiguous* virtual-rank ranges of
// the parent, which minimizes remapping cost and keeps collective
// communication inside a subgroup contiguous on the physical machine when
// the parent itself is contiguous.
#pragma once

#include <string>
#include <vector>

#include "pgroup/group.hpp"

namespace fxpar::pgroup {

/// One named subgroup of a TASK_PARTITION declaration.
struct SubgroupSpec {
  std::string name;
  int size = 0;  ///< number of processors assigned
};

class PartitionTemplate {
 public:
  PartitionTemplate() = default;

  /// Declares a partition. Every size must be positive; the template is
  /// checked against a concrete parent group at activation time.
  explicit PartitionTemplate(std::vector<SubgroupSpec> subgroups);

  int num_subgroups() const noexcept { return static_cast<int>(specs_.size()); }
  int total_size() const noexcept { return total_; }

  const SubgroupSpec& spec(int i) const;

  /// Index of the named subgroup; throws std::invalid_argument if unknown.
  int index_of(const std::string& name) const;

  /// First virtual rank (in the parent group) of subgroup `i`.
  int offset_of(int i) const;

  /// Which subgroup the parent-virtual rank `v` belongs to.
  int subgroup_of_virtual(int v) const;

  /// Materializes subgroup `i` against a parent group. Throws
  /// std::invalid_argument if the template's total size differs from the
  /// parent's size (the paper requires the partition to cover the current
  /// processors exactly).
  ProcessorGroup materialize(const ProcessorGroup& parent, int i) const;

  std::string to_string() const;

 private:
  std::vector<SubgroupSpec> specs_;
  std::vector<int> offsets_;  ///< prefix sums of sizes
  int total_ = 0;
};

/// Splits `total` processors proportionally to `weights` with every share at
/// least 1 (requires total >= weights.size()). Used by the recursive
/// examples (quicksort, Barnes-Hut) to size subgroups from data sizes, e.g.
/// compute_subgroup_sizes in Figure 4 of the paper.
std::vector<int> proportional_split(int total, const std::vector<double>& weights);

}  // namespace fxpar::pgroup
