#include "pgroup/group.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace fxpar::pgroup {

ProcessorGroup::ProcessorGroup(std::vector<int> physical_ranks)
    : phys_(std::move(physical_ranks)) {
  if (phys_.empty()) throw std::invalid_argument("ProcessorGroup: empty member list");
  std::unordered_set<int> seen;
  for (int p : phys_) {
    if (p < 0) throw std::invalid_argument("ProcessorGroup: negative physical rank");
    if (!seen.insert(p).second) {
      throw std::invalid_argument("ProcessorGroup: duplicate physical rank " + std::to_string(p));
    }
  }
  compute_key();
}

ProcessorGroup ProcessorGroup::identity(int n) {
  if (n <= 0) throw std::invalid_argument("ProcessorGroup::identity: n must be positive");
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return ProcessorGroup(std::move(v));
}

int ProcessorGroup::physical(int v) const {
  if (v < 0 || v >= size()) {
    throw std::out_of_range("ProcessorGroup::physical: virtual rank " + std::to_string(v) +
                            " out of range [0," + std::to_string(size()) + ")");
  }
  return phys_[static_cast<std::size_t>(v)];
}

int ProcessorGroup::virtual_of(int p) const noexcept {
  for (std::size_t i = 0; i < phys_.size(); ++i) {
    if (phys_[i] == p) return static_cast<int>(i);
  }
  return -1;
}

ProcessorGroup ProcessorGroup::slice(int first, int count) const {
  if (first < 0 || count <= 0 || first + count > size()) {
    throw std::out_of_range("ProcessorGroup::slice: bad range [" + std::to_string(first) +
                            "," + std::to_string(first + count) + ") of " +
                            std::to_string(size()));
  }
  return ProcessorGroup(std::vector<int>(phys_.begin() + first, phys_.begin() + first + count));
}

void ProcessorGroup::compute_key() {
  // FNV-1a over the member list.
  std::uint64_t h = 1469598103934665603ull;
  for (int p : phys_) {
    h ^= static_cast<std::uint64_t>(p) + 0x9e3779b97f4a7c15ull;
    h *= 1099511628211ull;
  }
  key_ = h;
}

std::string ProcessorGroup::to_string() const {
  std::ostringstream oss;
  oss << "{";
  for (std::size_t i = 0; i < phys_.size(); ++i) {
    if (i) oss << ",";
    oss << phys_[i];
  }
  oss << "}";
  return oss.str();
}

}  // namespace fxpar::pgroup
