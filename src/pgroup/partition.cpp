#include "pgroup/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace fxpar::pgroup {

PartitionTemplate::PartitionTemplate(std::vector<SubgroupSpec> subgroups)
    : specs_(std::move(subgroups)) {
  if (specs_.empty()) throw std::invalid_argument("PartitionTemplate: no subgroups");
  std::unordered_set<std::string> names;
  offsets_.reserve(specs_.size());
  for (const SubgroupSpec& s : specs_) {
    if (s.size <= 0) {
      throw std::invalid_argument("PartitionTemplate: subgroup '" + s.name +
                                  "' has non-positive size " + std::to_string(s.size));
    }
    if (!names.insert(s.name).second) {
      throw std::invalid_argument("PartitionTemplate: duplicate subgroup name '" + s.name + "'");
    }
    offsets_.push_back(total_);
    total_ += s.size;
  }
}

const SubgroupSpec& PartitionTemplate::spec(int i) const {
  if (i < 0 || i >= num_subgroups()) {
    throw std::out_of_range("PartitionTemplate::spec: index " + std::to_string(i));
  }
  return specs_[static_cast<std::size_t>(i)];
}

int PartitionTemplate::index_of(const std::string& name) const {
  for (int i = 0; i < num_subgroups(); ++i) {
    if (specs_[static_cast<std::size_t>(i)].name == name) return i;
  }
  throw std::invalid_argument("PartitionTemplate: unknown subgroup '" + name + "'");
}

int PartitionTemplate::offset_of(int i) const {
  if (i < 0 || i >= num_subgroups()) {
    throw std::out_of_range("PartitionTemplate::offset_of: index " + std::to_string(i));
  }
  return offsets_[static_cast<std::size_t>(i)];
}

int PartitionTemplate::subgroup_of_virtual(int v) const {
  if (v < 0 || v >= total_) {
    throw std::out_of_range("PartitionTemplate::subgroup_of_virtual: rank " + std::to_string(v));
  }
  // offsets_ is sorted; find the last offset <= v.
  auto it = std::upper_bound(offsets_.begin(), offsets_.end(), v);
  return static_cast<int>(it - offsets_.begin()) - 1;
}

ProcessorGroup PartitionTemplate::materialize(const ProcessorGroup& parent, int i) const {
  if (parent.size() != total_) {
    throw std::invalid_argument(
        "PartitionTemplate: template covers " + std::to_string(total_) +
        " processors but the current group has " + std::to_string(parent.size()));
  }
  return parent.slice(offset_of(i), spec(i).size);
}

std::string PartitionTemplate::to_string() const {
  std::ostringstream oss;
  for (int i = 0; i < num_subgroups(); ++i) {
    if (i) oss << ", ";
    oss << specs_[static_cast<std::size_t>(i)].name << "("
        << specs_[static_cast<std::size_t>(i)].size << ")";
  }
  return oss.str();
}

std::vector<int> proportional_split(int total, const std::vector<double>& weights) {
  const int n = static_cast<int>(weights.size());
  if (n == 0) throw std::invalid_argument("proportional_split: no weights");
  if (total < n) {
    throw std::invalid_argument("proportional_split: " + std::to_string(total) +
                                " processors cannot cover " + std::to_string(n) + " shares");
  }
  double wsum = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("proportional_split: weights must be finite and non-negative");
    }
    wsum += w;
  }
  std::vector<int> out(static_cast<std::size_t>(n), 1);
  int remaining = total - n;
  if (remaining == 0 || wsum == 0.0) {
    // Equal split of any remainder by round-robin for the zero-weight case.
    for (int i = 0; remaining > 0; i = (i + 1) % n, --remaining) {
      out[static_cast<std::size_t>(i)] += 1;
    }
    return out;
  }
  // Largest-remainder apportionment of the processors beyond the 1 floor.
  std::vector<double> exact(static_cast<std::size_t>(n));
  std::vector<int> base(static_cast<std::size_t>(n));
  int assigned = 0;
  for (int i = 0; i < n; ++i) {
    exact[static_cast<std::size_t>(i)] =
        remaining * weights[static_cast<std::size_t>(i)] / wsum;
    base[static_cast<std::size_t>(i)] =
        static_cast<int>(std::floor(exact[static_cast<std::size_t>(i)]));
    assigned += base[static_cast<std::size_t>(i)];
  }
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const double ra = exact[static_cast<std::size_t>(a)] - base[static_cast<std::size_t>(a)];
    const double rb = exact[static_cast<std::size_t>(b)] - base[static_cast<std::size_t>(b)];
    return ra > rb;
  });
  for (int k = 0; k < remaining - assigned; ++k) {
    base[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] += 1;
  }
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] += base[static_cast<std::size_t>(i)];
  return out;
}

}  // namespace fxpar::pgroup
