#include "pgroup/grid.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace fxpar::pgroup {

Grid::Grid(std::vector<int> extents) : extents_(std::move(extents)) {
  if (extents_.empty()) throw std::invalid_argument("Grid: no dimensions");
  size_ = 1;
  for (int e : extents_) {
    if (e <= 0) throw std::invalid_argument("Grid: non-positive extent");
    size_ *= e;
  }
  strides_.assign(extents_.size(), 1);
  for (int d = rank() - 2; d >= 0; --d) {
    strides_[static_cast<std::size_t>(d)] =
        strides_[static_cast<std::size_t>(d + 1)] * extents_[static_cast<std::size_t>(d + 1)];
  }
}

int Grid::extent(int dim) const {
  if (dim < 0 || dim >= rank()) throw std::out_of_range("Grid::extent: bad dim");
  return extents_[static_cast<std::size_t>(dim)];
}

std::vector<int> Grid::coords_of(int v) const {
  if (v < 0 || v >= size_) throw std::out_of_range("Grid::coords_of: bad rank");
  std::vector<int> c(extents_.size());
  for (std::size_t d = 0; d < extents_.size(); ++d) {
    c[d] = (v / strides_[d]) % extents_[d];
  }
  return c;
}

int Grid::rank_at(const std::vector<int>& coords) const {
  if (coords.size() != extents_.size()) throw std::invalid_argument("Grid::rank_at: bad arity");
  int v = 0;
  for (std::size_t d = 0; d < extents_.size(); ++d) {
    if (coords[d] < 0 || coords[d] >= extents_[d]) {
      throw std::out_of_range("Grid::rank_at: coordinate out of range");
    }
    v += coords[d] * strides_[d];
  }
  return v;
}

std::string Grid::to_string() const {
  std::ostringstream oss;
  for (std::size_t d = 0; d < extents_.size(); ++d) {
    if (d) oss << "x";
    oss << extents_[d];
  }
  return oss.str();
}

Grid Grid::balanced(int p, int dims) {
  if (p <= 0) throw std::invalid_argument("Grid::balanced: p must be positive");
  if (dims <= 0) throw std::invalid_argument("Grid::balanced: dims must be positive");
  if (dims == 1) return Grid({p});
  if (dims != 2) {
    // Recursive peel: pick the factor for dim 0, balance the rest.
    int best = 1;
    const int target = static_cast<int>(std::round(std::pow(double(p), 1.0 / dims)));
    for (int f = 1; f <= p; ++f) {
      if (p % f == 0 && std::abs(f - target) < std::abs(best - target)) best = f;
    }
    Grid rest = balanced(p / best, dims - 1);
    std::vector<int> e;
    e.push_back(best);
    e.insert(e.end(), rest.extents().begin(), rest.extents().end());
    return Grid(std::move(e));
  }
  // dims == 2: factor pair closest to square, larger extent first.
  int r = 1;
  for (int f = 1; f * f <= p; ++f) {
    if (p % f == 0) r = f;
  }
  return Grid({p / r, r});
}

}  // namespace fxpar::pgroup
