// fxpar pgroup: logical process grids for multi-dimensional distributions.
#pragma once

#include <array>
#include <string>
#include <vector>

namespace fxpar::pgroup {

/// A logical d-dimensional arrangement of the virtual processors of a group
/// (HPF PROCESSORS arrangement). Virtual rank <-> grid coordinates use
/// row-major order (last dimension fastest).
class Grid {
 public:
  Grid() = default;
  explicit Grid(std::vector<int> extents);

  int rank() const noexcept { return static_cast<int>(extents_.size()); }
  int extent(int dim) const;
  int size() const noexcept { return size_; }
  const std::vector<int>& extents() const noexcept { return extents_; }

  /// Grid coordinates of virtual rank `v`.
  std::vector<int> coords_of(int v) const;

  /// Virtual rank at the given grid coordinates.
  int rank_at(const std::vector<int>& coords) const;

  std::string to_string() const;

  /// Near-square factorization of `p` into `dims` extents, largest extent
  /// first, matching the usual default HPF processor arrangement. For
  /// dims == 1 this is just {p}.
  static Grid balanced(int p, int dims);

 private:
  std::vector<int> extents_;
  std::vector<int> strides_;
  int size_ = 0;
};

}  // namespace fxpar::pgroup
