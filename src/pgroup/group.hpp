// fxpar pgroup: processor groups and virtual->physical processor mappings.
//
// Section 4 of the paper ("Processor mappings"): all data parallel
// compilation is done in terms of virtual processors of the current group;
// a mapping translates virtual ranks to physical ranks at runtime, and
// nested task regions push/pop mappings on a per-processor stack.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fxpar::pgroup {

/// An ordered set of physical processors. The virtual rank of a member is
/// its index in the order; the mapping virtual->physical is exactly the
/// member list. Groups are value types; equality is member-wise, so the
/// same group constructed independently on every SPMD processor compares
/// (and hashes) identically — which is what keys subset barriers and
/// collectives.
class ProcessorGroup {
 public:
  ProcessorGroup() = default;

  /// Group over explicit physical ranks (must be non-empty, all distinct,
  /// all non-negative).
  explicit ProcessorGroup(std::vector<int> physical_ranks);

  /// The identity group {0, 1, ..., n-1}: the whole machine.
  static ProcessorGroup identity(int n);

  int size() const noexcept { return static_cast<int>(phys_.size()); }
  bool empty() const noexcept { return phys_.empty(); }

  /// Physical rank of virtual rank `v`. Throws std::out_of_range.
  int physical(int v) const;

  /// Virtual rank of physical rank `p`, or -1 if `p` is not a member.
  int virtual_of(int p) const noexcept;

  bool contains(int physical_rank) const noexcept { return virtual_of(physical_rank) >= 0; }

  const std::vector<int>& members() const noexcept { return phys_; }

  /// Sub-group made of the members at virtual ranks [first, first+count).
  ProcessorGroup slice(int first, int count) const;

  /// Content hash, equal for equal groups; used to key barrier/collective
  /// matching across SPMD processors.
  std::uint64_t key() const noexcept { return key_; }

  friend bool operator==(const ProcessorGroup& a, const ProcessorGroup& b) {
    return a.phys_ == b.phys_;
  }

  std::string to_string() const;

 private:
  void compute_key();

  std::vector<int> phys_;
  std::uint64_t key_ = 0;
};

}  // namespace fxpar::pgroup
