#include "dist/dim_dist.hpp"

#include <algorithm>
#include <stdexcept>

namespace fxpar::dist {

DimDist DimDist::block_cyclic(std::int64_t b) {
  if (b <= 0) throw std::invalid_argument("DimDist::block_cyclic: block size must be positive");
  return DimDist(DistKind::BlockCyclic, b);
}

std::int64_t DimDist::block_size(std::int64_t n, int p) const {
  switch (kind_) {
    case DistKind::Collapsed:
      return n;
    case DistKind::Block:
      return (n + p - 1) / p;
    case DistKind::Cyclic:
      return 1;
    case DistKind::BlockCyclic:
      return block_;
  }
  return n;
}

int DimDist::owner(std::int64_t i, std::int64_t n, int p) const {
  if (i < 0 || i >= n) throw std::out_of_range("DimDist::owner: index out of range");
  if (kind_ == DistKind::Collapsed) return 0;
  const std::int64_t b = block_size(n, p);
  return static_cast<int>((i / b) % p);
}

std::int64_t DimDist::local_count(int c, std::int64_t n, int p) const {
  if (kind_ == DistKind::Collapsed) return n;
  if (c < 0 || c >= p) throw std::out_of_range("DimDist::local_count: bad coordinate");
  const std::int64_t b = block_size(n, p);
  const std::int64_t courses = (n + b - 1) / b;  // number of (possibly partial) blocks
  if (c >= courses) return 0;
  // Courses owned by c: c, c+p, c+2p, ... < courses.
  const std::int64_t owned = (courses - 1 - c) / p + 1;
  std::int64_t count = owned * b;
  // The globally last course may be partial; subtract the shortfall if ours.
  const std::int64_t last = courses - 1;
  if (last % p == c) {
    const std::int64_t last_len = n - last * b;
    count -= (b - last_len);
  }
  return count;
}

std::int64_t DimDist::global_to_local(std::int64_t i, std::int64_t n, int p) const {
  if (i < 0 || i >= n) throw std::out_of_range("DimDist::global_to_local: index out of range");
  if (kind_ == DistKind::Collapsed) return i;
  const std::int64_t b = block_size(n, p);
  const std::int64_t course = i / b;
  return (course / p) * b + (i % b);
}

std::int64_t DimDist::local_to_global(int c, std::int64_t l, std::int64_t n, int p) const {
  if (kind_ == DistKind::Collapsed) {
    if (l < 0 || l >= n) throw std::out_of_range("DimDist::local_to_global: index out of range");
    return l;
  }
  if (l < 0 || l >= local_count(c, n, p)) {
    throw std::out_of_range("DimDist::local_to_global: local index out of range");
  }
  const std::int64_t b = block_size(n, p);
  const std::int64_t local_course = l / b;
  const std::int64_t course = local_course * p + c;
  return course * b + (l % b);
}

std::vector<IndexRun> DimDist::owned_runs(int c, std::int64_t n, int p) const {
  if (n <= 0) return {};
  if (kind_ == DistKind::Collapsed) return {IndexRun{0, n}};
  if (c < 0 || c >= p) throw std::out_of_range("DimDist::owned_runs: bad coordinate");
  const std::int64_t b = block_size(n, p);
  const std::int64_t courses = (n + b - 1) / b;
  std::vector<IndexRun> runs;
  for (std::int64_t course = c; course < courses; course += p) {
    const std::int64_t start = course * b;
    runs.push_back(IndexRun{start, std::min(b, n - start)});
  }
  return runs;
}

std::string DimDist::to_string() const {
  switch (kind_) {
    case DistKind::Collapsed:
      return "*";
    case DistKind::Block:
      return "BLOCK";
    case DistKind::Cyclic:
      return "CYCLIC";
    case DistKind::BlockCyclic:
      return "CYCLIC(" + std::to_string(block_) + ")";
  }
  return "?";
}

std::vector<IndexRun> intersect_runs(const std::vector<IndexRun>& a,
                                     const std::vector<IndexRun>& b) {
  std::vector<IndexRun> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const std::int64_t lo = std::max(a[i].start, b[j].start);
    const std::int64_t hi = std::min(a[i].start + a[i].len, b[j].start + b[j].len);
    if (lo < hi) out.push_back(IndexRun{lo, hi - lo});
    if (a[i].start + a[i].len < b[j].start + b[j].len) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

std::int64_t total_length(const std::vector<IndexRun>& runs) {
  std::int64_t t = 0;
  for (const IndexRun& r : runs) t += r.len;
  return t;
}

}  // namespace fxpar::dist
