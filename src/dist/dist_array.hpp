// fxpar dist: the distributed array container.
//
// A DistArray is an SPMD value: every processor constructs its own instance
// with an identical Layout; only group members allocate local storage (the
// paper's SPMD-with-dynamic-allocation code generation choice, Section 4).
// Element access is by global index and is legal only on the owning
// processor — the runtime analogue of Fx's locality rules.
//
// Per-dimension distribution parameters are cached at construction so that
// the per-element paths (at(), fill(), for_each_owned()) are pure integer
// arithmetic with no allocation.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/layout.hpp"
#include "exec/topology.hpp"
#include "machine/context.hpp"

namespace fxpar::dist {

template <typename T>
class DistArray {
 public:
  /// Constructs the SPMD-local view of the array. Only members of
  /// layout.group() allocate storage; non-members hold metadata only.
  DistArray(machine::Context& ctx, Layout layout, std::string name = "")
      : ctx_(&ctx), layout_(std::move(layout)), name_(std::move(name)) {
    my_vrank_ = layout_.group().virtual_of(ctx.phys_rank());
    if (my_vrank_ >= 0) {
      local_extents_ = layout_.local_extents(my_vrank_);
      std::int64_t size = 1;
      dims_.resize(static_cast<std::size_t>(layout_.ndims()));
      for (int d = 0; d < layout_.ndims(); ++d) {
        DimParam& dp = dims_[static_cast<std::size_t>(d)];
        dp.n = layout_.extent(d);
        dp.p = layout_.procs_along(d);
        dp.coord = layout_.grid_coord(my_vrank_, d);
        dp.collapsed = !layout_.dim_dist(d).distributed() || layout_.fully_replicated();
        dp.b = layout_.dim_dist(d).block_size(dp.n, dp.p);
        dp.ext = local_extents_[static_cast<std::size_t>(d)];
        size *= dp.ext;
      }
      local_.assign(static_cast<std::size_t>(size), T{});
    }
  }

  const Layout& layout() const noexcept { return layout_; }
  const std::string& name() const noexcept { return name_; }
  const pgroup::ProcessorGroup& group() const noexcept { return layout_.group(); }
  machine::Context& context() const noexcept { return *ctx_; }

  /// Whether the calling processor stores a part of this array.
  bool is_member() const noexcept { return my_vrank_ >= 0; }
  int my_vrank() const {
    if (my_vrank_ < 0) throw std::logic_error(bad_access("not a member of the owning group"));
    return my_vrank_;
  }

  /// Local storage, row-major over local_extents(). Members only.
  std::span<T> local() {
    require_member();
    return std::span<T>(local_);
  }
  std::span<const T> local() const {
    require_member();
    return std::span<const T>(local_);
  }

  const std::vector<std::int64_t>& local_extents() const {
    require_member();
    return local_extents_;
  }

  // ---- global-index element access (owner only) ----

  T& at_global(std::span<const std::int64_t> gidx) {
    return local_[static_cast<std::size_t>(owned_offset(gidx))];
  }
  const T& at_global(std::span<const std::int64_t> gidx) const {
    return local_[static_cast<std::size_t>(owned_offset(gidx))];
  }

  T& at(std::int64_t i) { return at_global(std::array<std::int64_t, 1>{i}); }
  T& at(std::int64_t i, std::int64_t j) { return at_global(std::array<std::int64_t, 2>{i, j}); }
  T& at(std::int64_t i, std::int64_t j, std::int64_t k) {
    return at_global(std::array<std::int64_t, 3>{i, j, k});
  }
  const T& at(std::int64_t i) const { return at_global(std::array<std::int64_t, 1>{i}); }
  const T& at(std::int64_t i, std::int64_t j) const {
    return at_global(std::array<std::int64_t, 2>{i, j});
  }
  const T& at(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return at_global(std::array<std::int64_t, 3>{i, j, k});
  }

  bool owns(std::span<const std::int64_t> gidx) const {
    return my_vrank_ >= 0 && fast_offset(gidx) >= 0;
  }

  /// Applies `fn(global_index, element)` to every locally stored element in
  /// local row-major order. Members only; non-members do nothing.
  template <typename Fn>
  void for_each_owned(Fn&& fn) {
    if (my_vrank_ < 0) return;
    const int nd = layout_.ndims();
    std::vector<std::int64_t> lidx(static_cast<std::size_t>(nd), 0);
    std::vector<std::int64_t> gidx(static_cast<std::size_t>(nd), 0);
    for (int d = 0; d < nd; ++d) {
      gidx[static_cast<std::size_t>(d)] = local_to_global_dim(d, 0);
    }
    const std::int64_t n = static_cast<std::int64_t>(local_.size());
    for (std::int64_t off = 0; off < n; ++off) {
      fn(std::span<const std::int64_t>(gidx), local_[static_cast<std::size_t>(off)]);
      // Row-major local increment with incremental global update.
      for (int d = nd - 1; d >= 0; --d) {
        std::int64_t& l = lidx[static_cast<std::size_t>(d)];
        if (++l < dims_[static_cast<std::size_t>(d)].ext) {
          gidx[static_cast<std::size_t>(d)] = local_to_global_dim(d, l);
          break;
        }
        l = 0;
        gidx[static_cast<std::size_t>(d)] = local_to_global_dim(d, 0);
      }
    }
  }

  /// Fills every locally stored element from `fn(global_index)`.
  template <typename Fn>
  void fill(Fn&& fn) {
    for_each_owned([&](std::span<const std::int64_t> g, T& v) { v = fn(g); });
  }

  /// Fills with a constant.
  void fill_value(const T& v) {
    if (my_vrank_ < 0) return;
    for (T& x : local_) x = v;
  }

 private:
  struct DimParam {
    std::int64_t n = 0;   ///< global extent
    int p = 1;            ///< processors along this dimension
    int coord = 0;        ///< my grid coordinate along this dimension
    std::int64_t b = 1;   ///< effective block size
    std::int64_t ext = 0; ///< my local extent
    bool collapsed = true;
  };

  void require_member() const {
    if (my_vrank_ < 0) throw std::logic_error(bad_access("not a member of the owning group"));
  }

  /// Local row-major offset of `gidx`, or -1 if out of range / not local.
  std::int64_t fast_offset(std::span<const std::int64_t> gidx) const {
    if (static_cast<int>(gidx.size()) != layout_.ndims()) return -1;
    std::int64_t off = 0;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
      const DimParam& dp = dims_[d];
      const std::int64_t gi = gidx[d];
      if (gi < 0 || gi >= dp.n) return -1;
      std::int64_t l;
      if (dp.collapsed) {
        l = gi;
      } else {
        const std::int64_t course = gi / dp.b;
        if (static_cast<int>(course % dp.p) != dp.coord) return -1;
        l = (course / dp.p) * dp.b + (gi % dp.b);
      }
      off = off * dp.ext + l;
    }
    return off;
  }

  std::int64_t local_to_global_dim(int d, std::int64_t l) const {
    const DimParam& dp = dims_[static_cast<std::size_t>(d)];
    if (dp.collapsed) return l;
    const std::int64_t lc = l / dp.b;
    return (lc * dp.p + dp.coord) * dp.b + (l % dp.b);
  }

  std::int64_t owned_offset(std::span<const std::int64_t> gidx) const {
    require_member();
    const std::int64_t off = fast_offset(gidx);
    if (off < 0) {
      throw std::logic_error(bad_access("element is not local to this processor"));
    }
    return off;
  }

  std::string bad_access(const std::string& why) const {
    return "DistArray '" + (name_.empty() ? std::string("<anon>") : name_) + "' on proc " +
           std::to_string(ctx_->phys_rank()) + ": " + why;
  }

  machine::Context* ctx_;
  Layout layout_;
  std::string name_;
  int my_vrank_ = -1;
  std::vector<std::int64_t> local_extents_;
  std::vector<DimParam> dims_;
  /// First-touch backed local block: large blocks come from fresh mmap
  /// pages, so the constructing processor's assign() below faults them on
  /// its own NUMA node (under a pinning policy, the node its worker is
  /// pinned to). Callers only ever see this through std::span.
  std::vector<T, exec::FirstTouchAllocator<T>> local_;
};

}  // namespace fxpar::dist
