// fxpar dist: inspector–executor plan caching for redistribution.
//
// The paper's pipelines (FFT-Hist, radar, stereo) redistribute the *same*
// arrays between the *same* layouts once per data set, for hundreds of data
// sets per run. The inspector–executor split precomputes a communication
// schedule once per (source layout, destination layout, perm, offsets)
// tuple and replays it on every later call:
//
//  - inspector (this file, host-side only): runs the O(senders x receivers)
//    run-intersection analysis of redistribute.hpp once, resolves every
//    local offset, and flattens the result into per-(sender, receiver)
//    vectors of (src_local_offset, dst_local_offset, len, dst_stride)
//    segments plus the cached union participant group;
//  - executor (redistribute.hpp / halo.hpp): packs and unpacks with plain
//    memcpy/strided loops over the cached segments — no recursive plan
//    visits, no per-element offset resolution, no per-element copies on
//    the permuted (corner-turn) path.
//
// Schedules live on the Machine and are shared by every processor: the
// first caller builds the whole pair matrix, everyone else replays it.
// Lookup and build happen under one cache mutex so the scheme works
// unchanged on the threaded backend (on the simulator the single host
// thread never contends). Entries are handed out as shared_ptr so an
// eviction during a blocked call can never dangle.
//
// Caching is purely a host-time optimization: the executor issues exactly
// the same messages, charges and barriers as the uncached path, so modeled
// results are bit-identical with the cache on or off (the tier-1 suite
// asserts this). Switch: MachineConfig::plan_cache.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "dist/layout.hpp"
#include "machine/machine.hpp"

namespace fxpar::dist {

/// Union of two groups' members, ascending by physical rank.
inline pgroup::ProcessorGroup union_group(const pgroup::ProcessorGroup& a,
                                          const pgroup::ProcessorGroup& b) {
  std::vector<int> m = a.members();
  m.insert(m.end(), b.members().begin(), b.members().end());
  std::sort(m.begin(), m.end());
  m.erase(std::unique(m.begin(), m.end()), m.end());
  return pgroup::ProcessorGroup(std::move(m));
}

namespace detail {

/// Per-source-dimension runs a (sender, receiver) pair exchanges, expressed
/// in *source* global indices.
struct TransferPlan {
  std::vector<std::vector<IndexRun>> runs;  ///< indexed by source dimension
  std::int64_t elements = 0;

  bool empty() const noexcept { return elements == 0; }
};

/// perm maps destination dimension -> source dimension:
/// dst_index[dd] == src_index[perm[dd]] + offsets[dd].
inline std::vector<int> inverse_perm(const std::vector<int>& perm) {
  std::vector<int> inv(perm.size(), -1);
  for (std::size_t dd = 0; dd < perm.size(); ++dd) {
    const int sd = perm[dd];
    if (sd < 0 || sd >= static_cast<int>(perm.size()) || inv[static_cast<std::size_t>(sd)] != -1) {
      throw std::invalid_argument("assign: perm is not a permutation");
    }
    inv[static_cast<std::size_t>(sd)] = static_cast<int>(dd);
  }
  return inv;
}

inline std::vector<IndexRun> shift_runs(std::vector<IndexRun> runs, std::int64_t delta) {
  for (IndexRun& r : runs) r.start += delta;
  return runs;
}

inline TransferPlan build_plan(const Layout& src, int s_vrank, const Layout& dst, int r_vrank,
                               const std::vector<int>& inv_perm,
                               const std::vector<std::int64_t>& offsets) {
  TransferPlan plan;
  const int nd = src.ndims();
  plan.runs.resize(static_cast<std::size_t>(nd));
  plan.elements = 1;
  for (int sd = 0; sd < nd; ++sd) {
    const int dd = inv_perm[static_cast<std::size_t>(sd)];
    // Express the receiver's owned set in source coordinates, then clip it
    // against the source's image inside the destination.
    std::vector<IndexRun> dst_in_src = shift_runs(
        dst.owned_runs(r_vrank, dd), -offsets[static_cast<std::size_t>(dd)]);
    dst_in_src = intersect_runs(dst_in_src, {IndexRun{0, src.extent(sd)}});
    plan.runs[static_cast<std::size_t>(sd)] =
        intersect_runs(src.owned_runs(s_vrank, sd), dst_in_src);
    plan.elements *= total_length(plan.runs[static_cast<std::size_t>(sd)]);
    if (plan.elements == 0) {
      plan.elements = 0;
      return plan;
    }
  }
  return plan;
}

/// Visits the plan's global indices in source-row-major order. `fn` is
/// called once per innermost run with gidx[last] set to the run start.
template <typename Fn>
void visit_plan(const TransferPlan& plan, std::vector<std::int64_t>& gidx, int d, Fn&& fn) {
  const int nd = static_cast<int>(plan.runs.size());
  if (d == nd - 1) {
    for (const IndexRun& r : plan.runs[static_cast<std::size_t>(d)]) {
      gidx[static_cast<std::size_t>(d)] = r.start;
      fn(gidx, r.len);
    }
    return;
  }
  for (const IndexRun& r : plan.runs[static_cast<std::size_t>(d)]) {
    for (std::int64_t i = r.start; i < r.start + r.len; ++i) {
      gidx[static_cast<std::size_t>(d)] = i;
      visit_plan(plan, gidx, d + 1, fn);
    }
  }
}

}  // namespace detail

namespace plan {

/// One flattened copy: `len` elements from the sender's local storage at
/// `src_off` land in the receiver's local storage at `dst_off`, spaced
/// `dst_stride` elements apart (1 = contiguous, a straight memcpy).
/// Offsets and lengths are in elements, so schedules are element-type
/// independent.
struct TransferSeg {
  std::int64_t src_off = 0;
  std::int64_t dst_off = 0;
  std::int64_t len = 0;
  std::int64_t dst_stride = 1;
};

/// The flattened transfer between one (sender, receiver) pair, in the exact
/// byte order of the uncached pack (source-row-major), so cached and
/// uncached payloads are byte-identical.
struct FlatPlan {
  std::int64_t elements = 0;
  std::vector<TransferSeg> segs;

  bool empty() const noexcept { return elements == 0; }
};

/// A whole redistribution's cached state: the union participant group plus
/// the flattened pair matrix. With a fully replicated source only the
/// canonical sender slot is stored (every replica's local offsets are
/// identical, so the one slot serves self-serving receivers too).
struct RedistSchedule {
  pgroup::ProcessorGroup ugroup;
  bool src_replicated = false;
  int nsenders = 0;  ///< 1 when src_replicated, else source group size
  int nreceivers = 0;

  std::vector<FlatPlan> pairs;  ///< [sender_slot * nreceivers + receiver]

  const FlatPlan& pair(int s_vrank, int r_vrank) const {
    const int slot = src_replicated ? 0 : s_vrank;
    return pairs[static_cast<std::size_t>(slot) * static_cast<std::size_t>(nreceivers) +
                 static_cast<std::size_t>(r_vrank)];
  }
};

/// Cached ghost-row exchange schedule for halo.hpp (one entry per group
/// member; (planes, H, W) layouts distributed (*, BLOCK-like, *)).
struct HaloSchedule {
  struct Send {
    int dst_vrank = -1;
    std::vector<std::int64_t> local_rows;  ///< row offsets into my block
  };
  struct Recv {
    int src_vrank = -1;
    std::vector<std::int64_t> rows;  ///< global row indices, wire order
  };
  struct Member {
    std::int64_t my_lo = 0, my_hi = 0;
    std::int64_t first_above = 0, n_above = 0;
    std::int64_t first_below = 0, n_below = 0;
    std::vector<Send> sends;  ///< ascending consumer vrank, non-empty only
    std::vector<Recv> recvs;  ///< ascending owner vrank
  };
  std::int64_t planes = 0, H = 0, W = 0;
  std::vector<Member> members;  ///< indexed by vrank
};

/// The per-Machine schedule cache. All lookups happen on the single host
/// thread that runs the fibers; entries are returned as shared_ptr so a
/// caller blocked mid-redistribution survives eviction by another fiber.
class PlanCache final : public machine::MachineCacheBase {
 public:
  /// Soft capacity: inserting past this drops the whole table (outstanding
  /// shared_ptr holders keep their schedules alive).
  static constexpr std::size_t kMaxEntries = 128;

  /// The cache attached to `m`, created on first use.
  static PlanCache& of(machine::Machine& m);

  /// The schedule for assign_general(src -> dst, perm, offsets), building
  /// and inserting it on a miss. Counts a hit or miss on `m`.
  std::shared_ptr<const RedistSchedule> redist(machine::Machine& m, const Layout& src,
                                               const Layout& dst, const std::vector<int>& perm,
                                               const std::vector<int>& inv_perm,
                                               const std::vector<std::int64_t>& offsets);

  /// The schedule for exchange_row_halo(layout, halo). Counts a hit or miss.
  std::shared_ptr<const HaloSchedule> halo(machine::Machine& m, const Layout& layout, int halo);

  std::size_t redist_entries() const noexcept { return redist_.size(); }
  std::size_t halo_entries() const noexcept { return halo_.size(); }

 private:
  struct Key {
    std::vector<std::int64_t> blob;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };

  static void append_layout(std::vector<std::int64_t>& blob, const Layout& l);
  static Key redist_key(const Layout& src, const Layout& dst, const std::vector<int>& perm,
                        const std::vector<std::int64_t>& offsets);

  /// Held across lookup *and* build: on the threaded backend the first
  /// worker to miss builds the schedule while the rest wait and then hit,
  /// so hit/miss totals match the simulator's exactly (the simulator's
  /// fibers never contend on it).
  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const RedistSchedule>, KeyHash> redist_;
  std::unordered_map<Key, std::shared_ptr<const HaloSchedule>, KeyHash> halo_;
};

/// Inspector: flattens the full pair matrix for one redistribution. Exposed
/// for tests; assign_general reaches it through PlanCache::redist.
std::shared_ptr<const RedistSchedule> build_redist_schedule(
    const Layout& src, const Layout& dst, const std::vector<int>& perm,
    const std::vector<int>& inv_perm, const std::vector<std::int64_t>& offsets);

/// Inspector for the ghost-row exchange of halo.hpp.
std::shared_ptr<const HaloSchedule> build_halo_schedule(const Layout& layout, int halo);

}  // namespace plan

}  // namespace fxpar::dist
