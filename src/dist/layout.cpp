#include "dist/layout.hpp"

#include <sstream>
#include <stdexcept>

namespace fxpar::dist {

Layout::Layout(pgroup::ProcessorGroup group, std::vector<std::int64_t> shape,
               std::vector<DimDist> dists)
    : group_(std::move(group)), shape_(std::move(shape)), dists_(std::move(dists)) {
  init({});
}

Layout::Layout(pgroup::ProcessorGroup group, std::vector<std::int64_t> shape,
               std::vector<DimDist> dists, std::vector<int> grid_extents)
    : group_(std::move(group)), shape_(std::move(shape)), dists_(std::move(dists)) {
  init(std::move(grid_extents));
}

void Layout::init(std::vector<int> grid_extents) {
  if (shape_.empty()) throw std::invalid_argument("Layout: zero-dimensional shape");
  if (dists_.size() != shape_.size()) {
    throw std::invalid_argument("Layout: one DimDist required per dimension");
  }
  total_ = 1;
  for (std::int64_t e : shape_) {
    if (e <= 0) throw std::invalid_argument("Layout: non-positive extent");
    total_ *= e;
  }
  int distributed = 0;
  grid_dim_of_.assign(shape_.size(), -1);
  for (std::size_t d = 0; d < dists_.size(); ++d) {
    if (dists_[d].distributed()) grid_dim_of_[d] = distributed++;
  }
  replicated_ = (distributed == 0);
  if (replicated_) {
    grid_ = pgroup::Grid({1});
    return;
  }
  if (grid_extents.empty()) {
    grid_ = pgroup::Grid::balanced(group_.size(), distributed);
  } else {
    if (static_cast<int>(grid_extents.size()) != distributed) {
      throw std::invalid_argument("Layout: grid extents must match distributed dims");
    }
    grid_ = pgroup::Grid(std::move(grid_extents));
    if (grid_.size() != group_.size()) {
      throw std::invalid_argument("Layout: grid size " + std::to_string(grid_.size()) +
                                  " != group size " + std::to_string(group_.size()));
    }
  }
}

void Layout::check_dim(int d) const {
  if (d < 0 || d >= ndims()) throw std::out_of_range("Layout: bad dimension");
}

int Layout::grid_coord(int vrank, int d) const {
  check_dim(d);
  if (vrank < 0 || vrank >= group_.size()) throw std::out_of_range("Layout: bad vrank");
  const int gd = grid_dim_of_[static_cast<std::size_t>(d)];
  if (gd < 0) return 0;
  if (replicated_) return 0;
  return grid_.coords_of(vrank)[static_cast<std::size_t>(gd)];
}

int Layout::procs_along(int d) const {
  check_dim(d);
  const int gd = grid_dim_of_[static_cast<std::size_t>(d)];
  return gd < 0 ? 1 : grid_.extent(gd);
}

int Layout::owner_of(std::span<const std::int64_t> gidx) const {
  if (static_cast<int>(gidx.size()) != ndims()) {
    throw std::invalid_argument("Layout::owner_of: index arity mismatch");
  }
  if (replicated_) return 0;
  std::vector<int> coords(static_cast<std::size_t>(grid_.rank()), 0);
  for (int d = 0; d < ndims(); ++d) {
    const int gd = grid_dim_of_[static_cast<std::size_t>(d)];
    if (gd < 0) continue;
    coords[static_cast<std::size_t>(gd)] = dists_[static_cast<std::size_t>(d)].owner(
        gidx[static_cast<std::size_t>(d)], shape_[static_cast<std::size_t>(d)],
        grid_.extent(gd));
  }
  return grid_.rank_at(coords);
}

bool Layout::owns(int vrank, std::span<const std::int64_t> gidx) const {
  if (static_cast<int>(gidx.size()) != ndims()) {
    throw std::invalid_argument("Layout::owns: index arity mismatch");
  }
  if (replicated_) return true;
  for (int d = 0; d < ndims(); ++d) {
    const int gd = grid_dim_of_[static_cast<std::size_t>(d)];
    if (gd < 0) continue;
    const int want = dists_[static_cast<std::size_t>(d)].owner(
        gidx[static_cast<std::size_t>(d)], shape_[static_cast<std::size_t>(d)],
        grid_.extent(gd));
    if (want != grid_coord(vrank, d)) return false;
  }
  return true;
}

std::vector<std::int64_t> Layout::local_extents(int vrank) const {
  std::vector<std::int64_t> e(static_cast<std::size_t>(ndims()));
  for (int d = 0; d < ndims(); ++d) {
    e[static_cast<std::size_t>(d)] = dists_[static_cast<std::size_t>(d)].local_count(
        grid_coord(vrank, d), shape_[static_cast<std::size_t>(d)], procs_along(d));
  }
  return e;
}

std::int64_t Layout::local_size(int vrank) const {
  std::int64_t s = 1;
  for (std::int64_t e : local_extents(vrank)) s *= e;
  return s;
}

std::int64_t Layout::local_offset(int vrank, std::span<const std::int64_t> gidx) const {
  const std::vector<std::int64_t> ext = local_extents(vrank);
  std::int64_t off = 0;
  for (int d = 0; d < ndims(); ++d) {
    const std::int64_t l = dists_[static_cast<std::size_t>(d)].global_to_local(
        gidx[static_cast<std::size_t>(d)], shape_[static_cast<std::size_t>(d)],
        procs_along(d));
    off = off * ext[static_cast<std::size_t>(d)] + l;
  }
  return off;
}

std::vector<IndexRun> Layout::owned_runs(int vrank, int d) const {
  check_dim(d);
  return dists_[static_cast<std::size_t>(d)].owned_runs(
      grid_coord(vrank, d), shape_[static_cast<std::size_t>(d)], procs_along(d));
}

std::vector<std::int64_t> Layout::local_to_global(
    int vrank, std::span<const std::int64_t> lidx) const {
  if (static_cast<int>(lidx.size()) != ndims()) {
    throw std::invalid_argument("Layout::local_to_global: index arity mismatch");
  }
  std::vector<std::int64_t> g(static_cast<std::size_t>(ndims()));
  for (int d = 0; d < ndims(); ++d) {
    g[static_cast<std::size_t>(d)] = dists_[static_cast<std::size_t>(d)].local_to_global(
        grid_coord(vrank, d), lidx[static_cast<std::size_t>(d)],
        shape_[static_cast<std::size_t>(d)], procs_along(d));
  }
  return g;
}

std::string Layout::to_string() const {
  std::ostringstream oss;
  oss << "(";
  for (int d = 0; d < ndims(); ++d) {
    if (d) oss << ",";
    oss << shape_[static_cast<std::size_t>(d)] << ":"
        << dists_[static_cast<std::size_t>(d)].to_string();
  }
  oss << ") over " << group_.to_string() << " grid " << grid_.to_string();
  return oss.str();
}

}  // namespace fxpar::dist
