// fxpar dist: whole-array reductions over distributed arrays.
//
// Convenience wrappers combining a local pass over the owned elements with
// a deterministic group reduction — the "merge" side of Fx's do&merge in
// array form. Every member of the array's owner group must call; the
// caller's current group must contain the owner group (parent scope) or be
// exactly it (subgroup scope).
#pragma once

#include <algorithm>
#include <limits>

#include "comm/collectives.hpp"
#include "dist/dist_array.hpp"

namespace fxpar::dist {

namespace detail {

template <typename T, typename Op>
T reduce_local(const DistArray<T>& a, T init, Op op) {
  T acc = init;
  if (a.is_member()) {
    for (const T& v : a.local()) acc = op(acc, v);
    a.context().charge_flops(static_cast<double>(a.local().size()));
  }
  return acc;
}

template <typename T, typename Op>
T reduce_array(machine::Context& ctx, const DistArray<T>& a, T init, Op op) {
  if (!a.is_member()) {
    throw std::logic_error("array reduction: caller is not a member of the owner group");
  }
  T local = detail::reduce_local(a, init, op);
  if (a.layout().fully_replicated() || a.group().size() == 1) return local;
  return comm::allreduce(ctx, a.group(), local, op);
}

}  // namespace detail

/// Sum of all elements; every owner-group member returns the result.
template <typename T>
T array_sum(machine::Context& ctx, const DistArray<T>& a) {
  return detail::reduce_array<T>(ctx, a, T{}, [](const T& x, const T& y) { return x + y; });
}

/// Minimum element.
template <typename T>
T array_min(machine::Context& ctx, const DistArray<T>& a) {
  return detail::reduce_array<T>(ctx, a, std::numeric_limits<T>::max(),
                                 [](const T& x, const T& y) { return std::min(x, y); });
}

/// Maximum element.
template <typename T>
T array_max(machine::Context& ctx, const DistArray<T>& a) {
  return detail::reduce_array<T>(ctx, a, std::numeric_limits<T>::lowest(),
                                 [](const T& x, const T& y) { return std::max(x, y); });
}

/// Number of elements for which `pred` holds.
template <typename T, typename Pred>
std::int64_t array_count(machine::Context& ctx, const DistArray<T>& a, Pred pred) {
  if (!a.is_member()) {
    throw std::logic_error("array_count: caller is not a member of the owner group");
  }
  std::int64_t local = 0;
  for (const T& v : a.local()) local += pred(v) ? 1 : 0;
  ctx.charge_int_ops(static_cast<double>(a.local().size()));
  if (a.layout().fully_replicated() || a.group().size() == 1) return local;
  return comm::allreduce(ctx, a.group(), local, std::plus<std::int64_t>{});
}

}  // namespace fxpar::dist
