// fxpar dist: per-dimension HPF-style distributions and their index algebra.
//
// BLOCK, CYCLIC and BLOCK_CYCLIC(b) are all expressed as block-cyclic with
// an effective block size (BLOCK -> ceil(N/P), CYCLIC -> 1), which gives a
// single closed-form owner/local-index calculus. COLLAPSED ("*" in HPF)
// leaves a dimension undistributed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fxpar::dist {

enum class DistKind { Collapsed, Block, Cyclic, BlockCyclic };

/// A contiguous run [start, start+len) of global indices.
struct IndexRun {
  std::int64_t start = 0;
  std::int64_t len = 0;
  friend bool operator==(const IndexRun&, const IndexRun&) = default;
};

class DimDist {
 public:
  static DimDist collapsed() { return DimDist(DistKind::Collapsed, 0); }
  static DimDist block() { return DimDist(DistKind::Block, 0); }
  static DimDist cyclic() { return DimDist(DistKind::Cyclic, 0); }
  static DimDist block_cyclic(std::int64_t b);

  DimDist() : DimDist(DistKind::Collapsed, 0) {}

  DistKind kind() const noexcept { return kind_; }
  bool distributed() const noexcept { return kind_ != DistKind::Collapsed; }

  /// Effective block size for extent `n` over `p` processors.
  std::int64_t block_size(std::int64_t n, int p) const;

  /// Owning processor coordinate of global index `i` (0 for Collapsed).
  int owner(std::int64_t i, std::int64_t n, int p) const;

  /// Number of indices of [0,n) owned by coordinate `c`.
  std::int64_t local_count(int c, std::int64_t n, int p) const;

  /// Local index of global `i` on its owner.
  std::int64_t global_to_local(std::int64_t i, std::int64_t n, int p) const;

  /// Global index of local `l` on coordinate `c`.
  std::int64_t local_to_global(int c, std::int64_t l, std::int64_t n, int p) const;

  /// Maximal runs of consecutive global indices owned by coordinate `c`,
  /// in increasing order. Runs never span block (course) boundaries.
  std::vector<IndexRun> owned_runs(int c, std::int64_t n, int p) const;

  std::string to_string() const;

  friend bool operator==(const DimDist&, const DimDist&) = default;

 private:
  DimDist(DistKind k, std::int64_t b) : kind_(k), block_(b) {}

  DistKind kind_;
  std::int64_t block_;  // explicit block size for BlockCyclic
};

/// Intersection of two increasing run lists, as an increasing run list.
std::vector<IndexRun> intersect_runs(const std::vector<IndexRun>& a,
                                     const std::vector<IndexRun>& b);

/// Total number of indices covered by a run list.
std::int64_t total_length(const std::vector<IndexRun>& runs);

}  // namespace fxpar::dist
