#include "dist/plan_cache.hpp"

#include <array>
#include <utility>

namespace fxpar::dist::plan {

namespace {

// FNV-1a over the key words.
std::size_t hash_words(const std::vector<std::int64_t>& words) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::int64_t w : words) {
    std::uint64_t u = static_cast<std::uint64_t>(w);
    for (int i = 0; i < 8; ++i) {
      h ^= (u >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

std::size_t PlanCache::KeyHash::operator()(const Key& k) const noexcept {
  return hash_words(k.blob);
}

void PlanCache::append_layout(std::vector<std::int64_t>& blob, const Layout& l) {
  blob.push_back(l.group().size());
  for (int p : l.group().members()) blob.push_back(p);
  blob.push_back(l.ndims());
  for (int d = 0; d < l.ndims(); ++d) {
    const DimDist& dd = l.dim_dist(d);
    blob.push_back(l.extent(d));
    blob.push_back(static_cast<std::int64_t>(dd.kind()));
    blob.push_back(dd.distributed() ? dd.block_size(l.extent(d), l.procs_along(d)) : 0);
    blob.push_back(l.procs_along(d));  // captures explicit grid extents
  }
}

PlanCache::Key PlanCache::redist_key(const Layout& src, const Layout& dst,
                                     const std::vector<int>& perm,
                                     const std::vector<std::int64_t>& offsets) {
  Key k;
  k.blob.reserve(2 * (4 + 4 * static_cast<std::size_t>(src.ndims())) + perm.size() +
                 offsets.size() + 2);
  append_layout(k.blob, src);
  append_layout(k.blob, dst);
  for (int p : perm) k.blob.push_back(p);
  for (std::int64_t o : offsets) k.blob.push_back(o);
  return k;
}

PlanCache& PlanCache::of(machine::Machine& m) {
  std::lock_guard<std::mutex> lk(m.cache_mutex());
  if (!m.plan_cache_slot()) {
    m.set_plan_cache_slot(std::make_unique<PlanCache>());
  }
  return *static_cast<PlanCache*>(m.plan_cache_slot());
}

std::shared_ptr<const RedistSchedule> PlanCache::redist(machine::Machine& m, const Layout& src,
                                                        const Layout& dst,
                                                        const std::vector<int>& perm,
                                                        const std::vector<int>& inv_perm,
                                                        const std::vector<std::int64_t>& offsets) {
  Key key = redist_key(src, dst, perm, offsets);
  std::lock_guard<std::mutex> lk(mu_);
  if (auto it = redist_.find(key); it != redist_.end()) {
    m.count_plan_cache(true);
    return it->second;
  }
  m.count_plan_cache(false);
  auto sched = build_redist_schedule(src, dst, perm, inv_perm, offsets);
  if (redist_.size() >= kMaxEntries) redist_.clear();
  redist_.emplace(std::move(key), sched);
  return sched;
}

std::shared_ptr<const HaloSchedule> PlanCache::halo(machine::Machine& m, const Layout& layout,
                                                    int halo) {
  Key key;
  append_layout(key.blob, layout);
  key.blob.push_back(halo);
  std::lock_guard<std::mutex> lk(mu_);
  if (auto it = halo_.find(key); it != halo_.end()) {
    m.count_plan_cache(true);
    return it->second;
  }
  m.count_plan_cache(false);
  auto sched = build_halo_schedule(layout, halo);
  if (halo_.size() >= kMaxEntries) halo_.clear();
  halo_.emplace(std::move(key), sched);
  return sched;
}

std::shared_ptr<const RedistSchedule> build_redist_schedule(
    const Layout& src, const Layout& dst, const std::vector<int>& perm,
    const std::vector<int>& inv_perm, const std::vector<std::int64_t>& offsets) {
  auto sched = std::make_shared<RedistSchedule>();
  sched->ugroup = union_group(src.group(), dst.group());
  sched->src_replicated = src.fully_replicated();
  sched->nsenders = sched->src_replicated ? 1 : src.group().size();
  sched->nreceivers = dst.group().size();
  sched->pairs.resize(static_cast<std::size_t>(sched->nsenders) *
                      static_cast<std::size_t>(sched->nreceivers));

  const int nd = src.ndims();
  bool identity = true;
  for (int dd = 0; dd < nd; ++dd) identity &= (perm[static_cast<std::size_t>(dd)] == dd);
  // The destination dimension whose index varies along an innermost source
  // run; its receiver-local stride spaces the unpacked elements.
  const int var_dd = inv_perm[static_cast<std::size_t>(nd - 1)];

  std::vector<std::int64_t> gidx(static_cast<std::size_t>(nd), 0);
  std::vector<std::int64_t> didx(static_cast<std::size_t>(nd), 0);
  for (int s = 0; s < sched->nsenders; ++s) {
    for (int r = 0; r < sched->nreceivers; ++r) {
      const detail::TransferPlan tp = detail::build_plan(src, s, dst, r, inv_perm, offsets);
      FlatPlan& fp = sched->pairs[static_cast<std::size_t>(s) *
                                      static_cast<std::size_t>(sched->nreceivers) +
                                  static_cast<std::size_t>(r)];
      fp.elements = tp.elements;
      if (tp.empty()) continue;

      // Receiver-local stride of var_dd (1 for identity: the innermost,
      // contiguous dimension). A run never spans a distribution block on
      // either side, so successive elements advance by exactly this stride.
      std::int64_t stride = 1;
      if (!identity) {
        const std::vector<std::int64_t> dext = dst.local_extents(r);
        for (int d = var_dd + 1; d < nd; ++d) stride *= dext[static_cast<std::size_t>(d)];
      }

      detail::visit_plan(tp, gidx, 0, [&](const std::vector<std::int64_t>& g, std::int64_t len) {
        const std::int64_t soff = src.local_offset(s, g);
        for (int dd = 0; dd < nd; ++dd) {
          didx[static_cast<std::size_t>(dd)] =
              g[static_cast<std::size_t>(perm[static_cast<std::size_t>(dd)])] +
              offsets[static_cast<std::size_t>(dd)];
        }
        const std::int64_t doff = dst.local_offset(r, didx);
        // Coalesce with the previous segment when both sides stay
        // contiguous; the wire byte order is unchanged.
        if (stride == 1 && !fp.segs.empty()) {
          TransferSeg& last = fp.segs.back();
          if (last.dst_stride == 1 && last.src_off + last.len == soff &&
              last.dst_off + last.len == doff) {
            last.len += len;
            return;
          }
        }
        fp.segs.push_back(TransferSeg{soff, doff, len, stride});
      });
    }
  }
  return sched;
}

std::shared_ptr<const HaloSchedule> build_halo_schedule(const Layout& lay, int halo) {
  auto sched = std::make_shared<HaloSchedule>();
  sched->planes = lay.extent(0);
  sched->H = lay.extent(1);
  sched->W = lay.extent(2);
  const std::int64_t H = sched->H;
  const int n = lay.group().size();
  sched->members.resize(static_cast<std::size_t>(n));

  auto rows_of = [&](int v) -> std::pair<std::int64_t, std::int64_t> {
    const auto runs = lay.owned_runs(v, 1);
    if (runs.empty()) return {0, 0};
    return {runs.front().start, runs.front().start + runs.front().len};
  };
  auto ghost_need = [&](int v) {
    const auto [lo, hi] = rows_of(v);
    std::vector<std::int64_t> need;
    if (lo == hi) return need;
    for (std::int64_t r = std::max<std::int64_t>(0, lo - halo); r < lo; ++r) need.push_back(r);
    for (std::int64_t r = hi; r < std::min(H, hi + halo); ++r) need.push_back(r);
    return need;
  };

  for (int me = 0; me < n; ++me) {
    HaloSchedule::Member& mp = sched->members[static_cast<std::size_t>(me)];
    const auto [my_lo, my_hi] = rows_of(me);
    mp.my_lo = my_lo;
    mp.my_hi = my_hi;

    // Sends, in the uncached path's order: ascending consumer, rows in the
    // consumer's need order, only rows I own, non-empty messages only.
    for (int v = 0; v < n; ++v) {
      if (v == me) continue;
      HaloSchedule::Send snd;
      snd.dst_vrank = v;
      for (std::int64_t r : ghost_need(v)) {
        if (r < my_lo || r >= my_hi) continue;
        snd.local_rows.push_back(r - my_lo);
      }
      if (!snd.local_rows.empty()) mp.sends.push_back(std::move(snd));
    }

    if (my_lo == my_hi) continue;
    mp.first_above = std::max<std::int64_t>(0, my_lo - halo);
    mp.n_above = my_lo - mp.first_above;
    mp.first_below = my_hi;
    mp.n_below = std::min(H, my_hi + halo) - my_hi;

    // Receives: my ghost rows grouped by owner, ascending owner order, need
    // order preserved within an owner (the uncached stable sort).
    std::vector<std::pair<int, std::int64_t>> by_owner;
    for (std::int64_t r : ghost_need(me)) {
      const std::array<std::int64_t, 3> gi{0, r, 0};
      by_owner.push_back({lay.owner_of(gi), r});
    }
    std::stable_sort(by_owner.begin(), by_owner.end(),
                     [](const auto& x, const auto& y) { return x.first < y.first; });
    std::size_t i = 0;
    while (i < by_owner.size()) {
      HaloSchedule::Recv rcv;
      rcv.src_vrank = by_owner[i].first;
      while (i < by_owner.size() && by_owner[i].first == rcv.src_vrank) {
        rcv.rows.push_back(by_owner[i].second);
        ++i;
      }
      mp.recvs.push_back(std::move(rcv));
    }
  }
  return sched;
}

}  // namespace fxpar::dist::plan
