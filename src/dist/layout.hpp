// fxpar dist: the mapping of a whole array onto a processor group.
//
// A Layout combines a global shape, one DimDist per dimension, and the
// processor group the array is mapped to (the paper's SUBGROUP directive:
// distribution directives are relative to the subgroup the variable is
// mapped to). Distributed dimensions are laid over a balanced logical grid
// of the group's virtual processors; collapsed dimensions do not consume
// grid dimensions. If every dimension is collapsed the array is fully
// replicated over the group.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dist/dim_dist.hpp"
#include "pgroup/grid.hpp"
#include "pgroup/group.hpp"

namespace fxpar::dist {

class Layout {
 public:
  Layout() = default;

  /// Distributes `shape` over `group` with per-dimension `dists`.
  Layout(pgroup::ProcessorGroup group, std::vector<std::int64_t> shape,
         std::vector<DimDist> dists);

  /// Convenience: explicit processor grid extents for the distributed
  /// dimensions (product must equal group size).
  Layout(pgroup::ProcessorGroup group, std::vector<std::int64_t> shape,
         std::vector<DimDist> dists, std::vector<int> grid_extents);

  int ndims() const noexcept { return static_cast<int>(shape_.size()); }
  const std::vector<std::int64_t>& shape() const noexcept { return shape_; }
  std::int64_t extent(int d) const { return shape_.at(static_cast<std::size_t>(d)); }
  std::int64_t total_elements() const noexcept { return total_; }
  const DimDist& dim_dist(int d) const { return dists_.at(static_cast<std::size_t>(d)); }
  const pgroup::ProcessorGroup& group() const noexcept { return group_; }
  const pgroup::Grid& grid() const noexcept { return grid_; }

  /// True when every dimension is collapsed: each member holds a full copy.
  bool fully_replicated() const noexcept { return replicated_; }

  /// Grid coordinate (in the grid dimension of array dim `d`) of member `v`.
  int grid_coord(int vrank, int d) const;

  /// Processors in the grid dimension of array dim `d` (1 for collapsed).
  int procs_along(int d) const;

  /// Canonical owner (virtual rank) of a global index; for replicated
  /// layouts this is virtual rank 0.
  int owner_of(std::span<const std::int64_t> gidx) const;

  /// Whether member `vrank` holds the element at `gidx` locally.
  bool owns(int vrank, std::span<const std::int64_t> gidx) const;

  /// Extents of member `vrank`'s local block, one per dimension.
  std::vector<std::int64_t> local_extents(int vrank) const;

  /// Number of elements stored by member `vrank`.
  std::int64_t local_size(int vrank) const;

  /// Row-major offset into member `vrank`'s local storage of global `gidx`.
  /// Precondition: owns(vrank, gidx).
  std::int64_t local_offset(int vrank, std::span<const std::int64_t> gidx) const;

  /// Per-dimension global runs owned by `vrank`.
  std::vector<IndexRun> owned_runs(int vrank, int d) const;

  /// Global index corresponding to a per-dimension local index.
  std::vector<std::int64_t> local_to_global(int vrank,
                                            std::span<const std::int64_t> lidx) const;

  std::string to_string() const;

  friend bool operator==(const Layout& a, const Layout& b) {
    return a.group_ == b.group_ && a.shape_ == b.shape_ && a.dists_ == b.dists_ &&
           a.grid_.extents() == b.grid_.extents();
  }

 private:
  void init(std::vector<int> grid_extents);
  void check_dim(int d) const;

  pgroup::ProcessorGroup group_;
  std::vector<std::int64_t> shape_;
  std::vector<DimDist> dists_;
  pgroup::Grid grid_;               ///< over distributed dims only
  std::vector<int> grid_dim_of_;    ///< array dim -> grid dim, -1 if collapsed
  std::int64_t total_ = 0;
  bool replicated_ = false;
};

}  // namespace fxpar::dist
