// fxpar dist: ghost-row (halo) exchange for stencil computations.
//
// For a 3-D array of shape (planes, H, W) distributed (*, BLOCK, *) over a
// 1-D grid, every owning processor obtains `halo` rows above and below its
// block from the neighbouring owners. The paper's execution model calls
// this "normal mechanisms to ensure legal data parallel execution" inside
// the current scope: the exchange is a plain message-passing pattern among
// the members of the owning subgroup, computed symmetrically so that no
// request messages and no empty messages are needed.
//
// Blocks narrower than the halo are handled: a processor may receive rows
// from beyond its immediate neighbours.
//
// With MachineConfig::plan_cache set (the default) the who-needs-what
// analysis runs once per (layout, halo) pair and is replayed from the
// machine-wide plan cache; messages, charges and results are identical
// either way.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "comm/serialize.hpp"
#include "dist/dist_array.hpp"
#include "dist/plan_cache.hpp"
#include "machine/context.hpp"

namespace fxpar::dist {

template <typename T>
struct HaloRows {
  std::int64_t first_above = 0;  ///< global row index of above[plane][0]
  std::int64_t n_above = 0;
  std::vector<T> above;  ///< planes x n_above x W, row-major
  std::int64_t first_below = 0;
  std::int64_t n_below = 0;
  std::vector<T> below;  ///< planes x n_below x W, row-major
};

namespace detail {

template <typename T>
HaloRows<T> exchange_row_halo_impl(machine::Context& ctx, const DistArray<T>& a, int halo) {
  const Layout& lay = a.layout();
  if (lay.ndims() != 3 || lay.dim_dist(0).distributed() || !lay.dim_dist(1).distributed() ||
      lay.dim_dist(2).distributed()) {
    throw std::invalid_argument("exchange_row_halo: layout must be (*, BLOCK-like, *)");
  }
  const pgroup::ProcessorGroup& g = lay.group();
  const std::int64_t planes = lay.extent(0), H = lay.extent(1), W = lay.extent(2);
  const int me = a.my_vrank();
  const std::uint64_t tag = ctx.collective_tag(g);

  if (ctx.config().plan_cache) {
    const auto sched = plan::PlanCache::of(ctx.machine()).halo(ctx.machine(), lay, halo);
    const plan::HaloSchedule::Member& mp = sched->members[static_cast<std::size_t>(me)];
    const std::int64_t rows_mine = mp.my_hi - mp.my_lo;
    const std::size_t row_bytes = static_cast<std::size_t>(W) * sizeof(T);
    const T* local = a.local().data();
    for (const plan::HaloSchedule::Send& snd : mp.sends) {
      machine::Payload buf = ctx.machine().pool_acquire(
          snd.local_rows.size() * static_cast<std::size_t>(planes) * row_bytes);
      std::byte* outp = buf.data();
      for (std::int64_t lr : snd.local_rows) {
        for (std::int64_t d = 0; d < planes; ++d) {
          std::memcpy(outp, local + (d * rows_mine + lr) * W, row_bytes);
          outp += row_bytes;
        }
      }
      ctx.charge_mem_bytes(static_cast<double>(buf.size()));
      ctx.send_phys(g.physical(snd.dst_vrank), tag, std::move(buf));
    }

    HaloRows<T> out;
    if (mp.my_lo == mp.my_hi) return out;
    out.first_above = mp.first_above;
    out.n_above = mp.n_above;
    out.first_below = mp.first_below;
    out.n_below = mp.n_below;
    out.above.assign(static_cast<std::size_t>(planes * out.n_above * W), T{});
    out.below.assign(static_cast<std::size_t>(planes * out.n_below * W), T{});
    for (const plan::HaloSchedule::Recv& rcv : mp.recvs) {
      machine::Payload data = ctx.recv_phys(g.physical(rcv.src_vrank), tag);
      if (data.size() != rcv.rows.size() * static_cast<std::size_t>(planes) * row_bytes) {
        throw std::logic_error("exchange_row_halo: payload size does not match schedule");
      }
      ctx.charge_mem_bytes(static_cast<double>(data.size()));
      const std::byte* inp = data.data();
      for (std::int64_t r : rcv.rows) {
        for (std::int64_t d = 0; d < planes; ++d) {
          T* dstrow = r < mp.my_lo
                          ? out.above.data() + (d * out.n_above + (r - out.first_above)) * W
                          : out.below.data() + (d * out.n_below + (r - out.first_below)) * W;
          std::memcpy(dstrow, inp, row_bytes);
          inp += row_bytes;
        }
      }
      ctx.machine().pool_release(std::move(data));
    }
    return out;
  }

  auto rows_of = [&](int v) -> std::pair<std::int64_t, std::int64_t> {
    const auto runs = lay.owned_runs(v, 1);
    if (runs.empty()) return {0, 0};
    return {runs.front().start, runs.front().start + runs.front().len};
  };
  const auto [my_lo, my_hi] = rows_of(me);

  auto ghost_need = [&](int v) {
    const auto [lo, hi] = rows_of(v);
    std::vector<std::int64_t> need;
    if (lo == hi) return need;
    for (std::int64_t r = std::max<std::int64_t>(0, lo - halo); r < lo; ++r) need.push_back(r);
    for (std::int64_t r = hi; r < std::min(H, hi + halo); ++r) need.push_back(r);
    return need;
  };

  // Send phase: one message per consumer holding all of my rows it needs,
  // plane-major per row, in the consumer's need order.
  for (int v = 0; v < g.size(); ++v) {
    if (v == me) continue;
    std::vector<T> buf;
    for (std::int64_t r : ghost_need(v)) {
      if (r < my_lo || r >= my_hi) continue;
      for (std::int64_t d = 0; d < planes; ++d) {
        const T* row = a.local().data() +
                       ((d * (my_hi - my_lo) + (r - my_lo)) * W);
        buf.insert(buf.end(), row, row + W);
      }
    }
    if (!buf.empty()) {
      ctx.charge_mem_bytes(static_cast<double>(buf.size() * sizeof(T)));
      ctx.send_phys(g.physical(v), tag, comm::pack_span(std::span<const T>(buf)));
    }
  }

  // Receive phase: my ghost rows grouped by owner, ascending owner order.
  HaloRows<T> out;
  if (my_lo == my_hi) return out;
  out.first_above = std::max<std::int64_t>(0, my_lo - halo);
  out.n_above = my_lo - out.first_above;
  out.first_below = my_hi;
  out.n_below = std::min(H, my_hi + halo) - my_hi;
  out.above.assign(static_cast<std::size_t>(planes * out.n_above * W), T{});
  out.below.assign(static_cast<std::size_t>(planes * out.n_below * W), T{});

  std::vector<std::pair<int, std::int64_t>> by_owner;  // (owner vrank, row)
  for (std::int64_t r : ghost_need(me)) {
    const std::array<std::int64_t, 3> gi{0, r, 0};
    by_owner.push_back({lay.owner_of(gi), r});
  }
  std::stable_sort(by_owner.begin(), by_owner.end(),
                   [](const auto& x, const auto& y) { return x.first < y.first; });
  std::size_t i = 0;
  while (i < by_owner.size()) {
    const int owner = by_owner[i].first;
    std::vector<std::int64_t> rows;
    while (i < by_owner.size() && by_owner[i].first == owner) {
      rows.push_back(by_owner[i].second);
      ++i;
    }
    auto data = comm::unpack_vector<T>(ctx.recv_phys(g.physical(owner), tag));
    ctx.charge_mem_bytes(static_cast<double>(data.size() * sizeof(T)));
    std::size_t pos = 0;
    for (std::int64_t r : rows) {
      for (std::int64_t d = 0; d < planes; ++d) {
        for (std::int64_t j = 0; j < W; ++j) {
          const T v = data[pos++];
          if (r < my_lo) {
            out.above[static_cast<std::size_t>((d * out.n_above + (r - out.first_above)) * W +
                                               j)] = v;
          } else {
            out.below[static_cast<std::size_t>((d * out.n_below + (r - out.first_below)) * W +
                                               j)] = v;
          }
        }
      }
    }
  }
  return out;
}

}  // namespace detail

/// Exchanges `halo` boundary rows of `a` (shape (planes, H, W), distributed
/// (*, BLOCK, *)) among the owning group. Every member must call.
template <typename T>
HaloRows<T> exchange_row_halo(machine::Context& ctx, const DistArray<T>& a, int halo) {
  metrics::RuntimeMetrics* const mm = ctx.machine().metrics();
  if (!mm) return detail::exchange_row_halo_impl(ctx, a, halo);
  const int rank = ctx.phys_rank();
  mm->halos->add(rank);
  // Per-participant latency: modeled on the simulator, real on threads.
  const double t0 = ctx.machine().backend().now(rank);
  HaloRows<T> out = detail::exchange_row_halo_impl(ctx, a, halo);
  mm->halo_s->observe(rank, ctx.machine().backend().now(rank) - t0);
  return out;
}

}  // namespace fxpar::dist
