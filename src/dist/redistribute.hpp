// fxpar dist: general array assignment between distributed arrays.
//
// assign(dst, src) implements the paper's parent-scope array assignment
// (e.g. `A2 = A1` between pipeline stages, Figure 2): every processor of
// the *current* scope may call it, but only the minimal participating set —
// the union of the source and destination owner groups — takes part; all
// other processors return immediately and race ahead (Section 4,
// "Identification of minimal processor subsets"). Communication is pure
// direct deposit: no empty messages between processors whose owned sets do
// not intersect ("Localization").
//
// Synchronization: by default participants synchronize on a subset barrier
// before the transfer, modelling Fx's deposit model in which the receiver's
// buffer must be ready ("The actual synchronization mechanism is
// implementation dependent ... typically the same as that used for normal
// data parallel execution"). This bounds pipeline run-ahead to one data set
// per stage, like the real system. AssignSync::None gives unbounded
// buffering for ablation studies.
//
// assign_permuted additionally permutes dimensions — the corner turn
// (transpose) of the radar benchmark is one redistribution — and
// assign_shifted writes into a rectangular offset of the destination (the
// merge step of the quicksort example).
#pragma once

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "comm/serialize.hpp"
#include "dist/dist_array.hpp"
#include "machine/context.hpp"
#include "trace/trace.hpp"

namespace fxpar::dist {

using machine::Context;
using machine::Payload;

enum class AssignSync {
  SubsetBarrier,  ///< participants barrier before the transfer (default)
  None,           ///< pure deposit; sender never waits (unbounded buffering)
};

/// Union of two groups' members, ascending by physical rank.
inline pgroup::ProcessorGroup union_group(const pgroup::ProcessorGroup& a,
                                          const pgroup::ProcessorGroup& b) {
  std::vector<int> m = a.members();
  m.insert(m.end(), b.members().begin(), b.members().end());
  std::sort(m.begin(), m.end());
  m.erase(std::unique(m.begin(), m.end()), m.end());
  return pgroup::ProcessorGroup(std::move(m));
}

namespace detail {

/// Per-source-dimension runs a (sender, receiver) pair exchanges, expressed
/// in *source* global indices.
struct TransferPlan {
  std::vector<std::vector<IndexRun>> runs;  ///< indexed by source dimension
  std::int64_t elements = 0;

  bool empty() const noexcept { return elements == 0; }
};

/// perm maps destination dimension -> source dimension:
/// dst_index[dd] == src_index[perm[dd]] + offsets[dd].
inline std::vector<int> inverse_perm(const std::vector<int>& perm) {
  std::vector<int> inv(perm.size(), -1);
  for (std::size_t dd = 0; dd < perm.size(); ++dd) {
    const int sd = perm[dd];
    if (sd < 0 || sd >= static_cast<int>(perm.size()) || inv[static_cast<std::size_t>(sd)] != -1) {
      throw std::invalid_argument("assign: perm is not a permutation");
    }
    inv[static_cast<std::size_t>(sd)] = static_cast<int>(dd);
  }
  return inv;
}

inline std::vector<IndexRun> shift_runs(std::vector<IndexRun> runs, std::int64_t delta) {
  for (IndexRun& r : runs) r.start += delta;
  return runs;
}

inline TransferPlan build_plan(const Layout& src, int s_vrank, const Layout& dst, int r_vrank,
                               const std::vector<int>& inv_perm,
                               const std::vector<std::int64_t>& offsets) {
  TransferPlan plan;
  const int nd = src.ndims();
  plan.runs.resize(static_cast<std::size_t>(nd));
  plan.elements = 1;
  for (int sd = 0; sd < nd; ++sd) {
    const int dd = inv_perm[static_cast<std::size_t>(sd)];
    // Express the receiver's owned set in source coordinates, then clip it
    // against the source's image inside the destination.
    std::vector<IndexRun> dst_in_src = shift_runs(
        dst.owned_runs(r_vrank, dd), -offsets[static_cast<std::size_t>(dd)]);
    dst_in_src = intersect_runs(dst_in_src, {IndexRun{0, src.extent(sd)}});
    plan.runs[static_cast<std::size_t>(sd)] =
        intersect_runs(src.owned_runs(s_vrank, sd), dst_in_src);
    plan.elements *= total_length(plan.runs[static_cast<std::size_t>(sd)]);
    if (plan.elements == 0) {
      plan.elements = 0;
      return plan;
    }
  }
  return plan;
}

/// Visits the plan's global indices in source-row-major order. `fn` is
/// called once per innermost run with gidx[last] set to the run start.
template <typename Fn>
void visit_plan(const TransferPlan& plan, std::vector<std::int64_t>& gidx, int d, Fn&& fn) {
  const int nd = static_cast<int>(plan.runs.size());
  if (d == nd - 1) {
    for (const IndexRun& r : plan.runs[static_cast<std::size_t>(d)]) {
      gidx[static_cast<std::size_t>(d)] = r.start;
      fn(gidx, r.len);
    }
    return;
  }
  for (const IndexRun& r : plan.runs[static_cast<std::size_t>(d)]) {
    for (std::int64_t i = r.start; i < r.start + r.len; ++i) {
      gidx[static_cast<std::size_t>(d)] = i;
      visit_plan(plan, gidx, d + 1, fn);
    }
  }
}

template <typename T>
Payload pack_plan(const DistArray<T>& src, int s_vrank, const TransferPlan& plan) {
  Payload buf;
  buf.reserve(static_cast<std::size_t>(plan.elements) * sizeof(T));
  std::vector<std::int64_t> gidx(plan.runs.size(), 0);
  const std::span<const T> local = src.local();
  visit_plan(plan, gidx, 0, [&](const std::vector<std::int64_t>& g, std::int64_t len) {
    const std::int64_t off = src.layout().local_offset(s_vrank, g);
    const std::size_t pos = buf.size();
    buf.resize(pos + static_cast<std::size_t>(len) * sizeof(T));
    std::memcpy(buf.data() + pos, local.data() + off, static_cast<std::size_t>(len) * sizeof(T));
  });
  return buf;
}

template <typename T>
void unpack_plan(DistArray<T>& dst, int r_vrank, const TransferPlan& plan,
                 const std::vector<int>& perm, const std::vector<std::int64_t>& offsets,
                 bool identity_perm, const Payload& data) {
  const int nd = static_cast<int>(plan.runs.size());
  std::vector<std::int64_t> gidx(static_cast<std::size_t>(nd), 0);
  std::vector<std::int64_t> didx(static_cast<std::size_t>(nd), 0);
  const std::span<T> local = dst.local();
  std::size_t pos = 0;
  visit_plan(plan, gidx, 0, [&](const std::vector<std::int64_t>& g, std::int64_t len) {
    if (identity_perm) {
      // Runs never span a distribution block on either side (the plan was
      // clipped against both owners' runs), so destination local addresses
      // of a run are contiguous too.
      for (int dd = 0; dd < nd; ++dd) {
        didx[static_cast<std::size_t>(dd)] =
            g[static_cast<std::size_t>(dd)] + offsets[static_cast<std::size_t>(dd)];
      }
      const std::int64_t off = dst.layout().local_offset(r_vrank, didx);
      std::memcpy(local.data() + off, data.data() + pos,
                  static_cast<std::size_t>(len) * sizeof(T));
      pos += static_cast<std::size_t>(len) * sizeof(T);
      return;
    }
    for (std::int64_t k = 0; k < len; ++k) {
      for (int dd = 0; dd < nd; ++dd) {
        const int sd = perm[static_cast<std::size_t>(dd)];
        didx[static_cast<std::size_t>(dd)] = g[static_cast<std::size_t>(sd)] +
                                             ((sd == nd - 1) ? k : 0) +
                                             offsets[static_cast<std::size_t>(dd)];
      }
      T v;
      std::memcpy(&v, data.data() + pos, sizeof(T));
      pos += sizeof(T);
      local[static_cast<std::size_t>(dst.layout().local_offset(r_vrank, didx))] = v;
    }
  });
}

}  // namespace detail

/// Generalized assignment: for every source index G inside the copied
/// region, dst[ G[perm[0]]+offsets[0], ... ] = src[G]. `perm` maps
/// destination dimensions to source dimensions (identity when empty);
/// `offsets` shifts the destination placement (zero when empty). Must be
/// called by every processor of the current scope; only the union of owner
/// groups participates.
template <typename T>
void assign_general(Context& ctx, DistArray<T>& dst, const DistArray<T>& src,
                    std::vector<int> perm, std::vector<std::int64_t> offsets,
                    AssignSync sync = AssignSync::SubsetBarrier) {
  const Layout& sl = src.layout();
  const Layout& dl = dst.layout();
  if (sl.ndims() != dl.ndims()) {
    throw std::invalid_argument("assign: dimensionality mismatch");
  }
  const int nd = sl.ndims();
  if (perm.empty()) {
    perm.resize(static_cast<std::size_t>(nd));
    std::iota(perm.begin(), perm.end(), 0);
  }
  if (offsets.empty()) offsets.assign(static_cast<std::size_t>(nd), 0);
  if (static_cast<int>(perm.size()) != nd || static_cast<int>(offsets.size()) != nd) {
    throw std::invalid_argument("assign: perm/offsets arity mismatch");
  }
  const std::vector<int> inv = detail::inverse_perm(perm);
  for (int dd = 0; dd < nd; ++dd) {
    const std::int64_t need =
        sl.extent(perm[static_cast<std::size_t>(dd)]) + offsets[static_cast<std::size_t>(dd)];
    if (offsets[static_cast<std::size_t>(dd)] < 0 || need > dl.extent(dd)) {
      throw std::invalid_argument("assign: source does not fit destination in dimension " +
                                  std::to_string(dd));
    }
  }
  bool identity = true;
  for (int dd = 0; dd < nd; ++dd) identity &= (perm[static_cast<std::size_t>(dd)] == dd);

  // Minimal participating set: owners of either side. Everyone else skips.
  const pgroup::ProcessorGroup ug = union_group(sl.group(), dl.group());
  const int me = ctx.phys_rank();
  if (!ug.contains(me)) return;
  trace::ScopedSpan sp_;
  if (ctx.tracer()) sp_ = ctx.span("assign:" + dst.name(), "redistribute");
  const std::uint64_t tag = ctx.collective_tag(ug);
  if (sync == AssignSync::SubsetBarrier) ctx.barrier(ug);

  const int s_me = sl.group().virtual_of(me);
  const int r_me = dl.group().virtual_of(me);
  // With a fully replicated source every member holds the data; virtual
  // rank 0 is the canonical sender so values are sent exactly once.
  const bool i_send = s_me >= 0 && (!sl.fully_replicated() || s_me == 0);

  Payload self_payload;
  bool have_self = false;
  if (i_send) {
    for (int r = 0; r < dl.group().size(); ++r) {
      const int r_phys = dl.group().physical(r);
      // With a replicated source, destination members that are themselves
      // source members serve their own copy: never message them.
      if (sl.fully_replicated() && r_phys != me && sl.group().contains(r_phys)) continue;
      const detail::TransferPlan plan = detail::build_plan(sl, s_me, dl, r, inv, offsets);
      if (plan.empty()) continue;
      Payload buf = detail::pack_plan(src, s_me, plan);
      ctx.charge_mem_bytes(static_cast<double>(buf.size()));
      if (r_phys == me) {
        self_payload = std::move(buf);
        have_self = true;
      } else {
        ctx.send_phys(r_phys, tag, std::move(buf));
      }
    }
  }
  if (r_me >= 0) {
    for (int s = 0; s < sl.group().size(); ++s) {
      if (sl.fully_replicated() && s != (s_me >= 0 ? s_me : 0)) continue;
      const detail::TransferPlan plan = detail::build_plan(sl, s, dl, r_me, inv, offsets);
      if (plan.empty()) continue;
      Payload buf;
      if (sl.fully_replicated() && s_me >= 0 && s_me != 0) {
        // Self-serve from the local replica (canonical sender skipped us).
        buf = detail::pack_plan(src, s_me, plan);
      } else if (sl.group().physical(s) == me) {
        if (!have_self) throw std::logic_error("assign: missing self payload");
        buf = std::move(self_payload);
        have_self = false;
      } else {
        buf = ctx.recv_phys(sl.group().physical(s), tag);
      }
      if (buf.size() != static_cast<std::size_t>(plan.elements) * sizeof(T)) {
        throw std::logic_error("assign: payload size does not match plan");
      }
      ctx.charge_mem_bytes(static_cast<double>(buf.size()));
      detail::unpack_plan(dst, r_me, plan, perm, offsets, identity, buf);
    }
  }
}

/// dst = src with matching shapes (possibly different distributions and
/// owner groups). The workhorse behind pipeline stage handoffs.
template <typename T>
void assign(Context& ctx, DistArray<T>& dst, const DistArray<T>& src,
            AssignSync sync = AssignSync::SubsetBarrier) {
  if (dst.layout().shape() != src.layout().shape()) {
    throw std::invalid_argument("assign: whole-array assignment requires equal shapes");
  }
  assign_general(ctx, dst, src, {}, {}, sync);
}

/// dst[i...] = src[i[perm]...]: dimension-permuting assignment.
template <typename T>
void assign_permuted(Context& ctx, DistArray<T>& dst, const DistArray<T>& src,
                     std::vector<int> perm, AssignSync sync = AssignSync::SubsetBarrier) {
  assign_general(ctx, dst, src, std::move(perm), {}, sync);
}

/// Writes src into dst starting at `offsets` (dst section assignment).
template <typename T>
void assign_shifted(Context& ctx, DistArray<T>& dst, std::vector<std::int64_t> offsets,
                    const DistArray<T>& src, AssignSync sync = AssignSync::SubsetBarrier) {
  assign_general(ctx, dst, src, {}, std::move(offsets), sync);
}

/// 2-D transpose: dst[j,i] = src[i,j] (the radar corner turn).
template <typename T>
void transpose(Context& ctx, DistArray<T>& dst, const DistArray<T>& src,
               AssignSync sync = AssignSync::SubsetBarrier) {
  if (src.layout().ndims() != 2) throw std::invalid_argument("transpose: 2-D arrays only");
  assign_permuted(ctx, dst, src, {1, 0}, sync);
}

/// Scatters a full row-major array held on physical processor `root_phys`
/// into the distributed array `a`. Must be called by all members of the
/// owner group plus the root; non-root callers may pass an empty vector.
template <typename T>
void scatter_full(Context& ctx, DistArray<T>& a, int root_phys, const std::vector<T>& full) {
  const pgroup::ProcessorGroup root_group({root_phys});
  Layout src_layout(root_group, a.layout().shape(),
                    std::vector<DimDist>(static_cast<std::size_t>(a.layout().ndims()),
                                         DimDist::collapsed()));
  DistArray<T> tmp(ctx, std::move(src_layout), a.name() + ".scatter");
  if (ctx.phys_rank() == root_phys) {
    if (static_cast<std::int64_t>(full.size()) != a.layout().total_elements()) {
      throw std::invalid_argument("scatter_full: source size does not match array shape");
    }
    std::copy(full.begin(), full.end(), tmp.local().begin());
  }
  assign(ctx, a, tmp);
}

/// Gathers the full array, row-major, onto physical processor `root_phys`.
/// Must be called by all members of the owner group plus the root; the root
/// returns the data, everyone else an empty vector.
template <typename T>
std::vector<T> gather_full(Context& ctx, const DistArray<T>& a, int root_phys) {
  const pgroup::ProcessorGroup root_group({root_phys});
  Layout dst_layout(root_group, a.layout().shape(),
                    std::vector<DimDist>(static_cast<std::size_t>(a.layout().ndims()),
                                         DimDist::collapsed()));
  DistArray<T> tmp(ctx, std::move(dst_layout), a.name() + ".gather");
  assign(ctx, tmp, a);
  if (ctx.phys_rank() == root_phys) {
    return std::vector<T>(tmp.local().begin(), tmp.local().end());
  }
  return {};
}

}  // namespace fxpar::dist
