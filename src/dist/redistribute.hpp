// fxpar dist: general array assignment between distributed arrays.
//
// assign(dst, src) implements the paper's parent-scope array assignment
// (e.g. `A2 = A1` between pipeline stages, Figure 2): every processor of
// the *current* scope may call it, but only the minimal participating set —
// the union of the source and destination owner groups — takes part; all
// other processors return immediately and race ahead (Section 4,
// "Identification of minimal processor subsets"). Communication is pure
// direct deposit: no empty messages between processors whose owned sets do
// not intersect ("Localization").
//
// Synchronization: by default participants synchronize on a subset barrier
// before the transfer, modelling Fx's deposit model in which the receiver's
// buffer must be ready ("The actual synchronization mechanism is
// implementation dependent ... typically the same as that used for normal
// data parallel execution"). This bounds pipeline run-ahead to one data set
// per stage, like the real system. AssignSync::None gives unbounded
// buffering for ablation studies.
//
// assign_permuted additionally permutes dimensions — the corner turn
// (transpose) of the radar benchmark is one redistribution — and
// assign_shifted writes into a rectangular offset of the destination (the
// merge step of the quicksort example).
//
// Plan caching (MachineConfig::plan_cache, on by default): the
// O(senders x receivers) run-intersection analysis below is the *inspector*
// of an inspector–executor split. With the cache on, its output is
// flattened once per (layouts, perm, offsets) tuple into per-pair
// (src_offset, dst_offset, len, stride) segments shared machine-wide (see
// plan_cache.hpp), and later calls replay it with plain memcpy loops. The
// cached executor issues exactly the same messages and charges, so modeled
// results are bit-identical either way.
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "comm/serialize.hpp"
#include "dist/dist_array.hpp"
#include "dist/plan_cache.hpp"
#include "machine/context.hpp"
#include "trace/trace.hpp"

namespace fxpar::dist {

using machine::Context;
using machine::Payload;

enum class AssignSync {
  SubsetBarrier,  ///< participants barrier before the transfer (default)
  None,           ///< pure deposit; sender never waits (unbounded buffering)
};

namespace detail {

/// Executor pack over a flattened schedule: every segment is one memcpy.
/// Byte order matches pack_plan exactly.
template <typename T>
void pack_flat(const DistArray<T>& src, const plan::FlatPlan& fp, Payload& buf) {
  const T* local = src.local().data();
  std::byte* out = buf.data();
  std::size_t pos = 0;
  for (const plan::TransferSeg& s : fp.segs) {
    std::memcpy(out + pos, local + s.src_off, static_cast<std::size_t>(s.len) * sizeof(T));
    pos += static_cast<std::size_t>(s.len) * sizeof(T);
  }
}

/// Executor unpack: contiguous segments are one memcpy; permuted
/// (corner-turn) segments scatter at a fixed receiver stride — no
/// per-element offset resolution either way.
template <typename T>
void unpack_flat(DistArray<T>& dst, const plan::FlatPlan& fp, const Payload& buf) {
  T* local = dst.local().data();
  const std::byte* in = buf.data();
  std::size_t pos = 0;
  for (const plan::TransferSeg& s : fp.segs) {
    if (s.dst_stride == 1) {
      std::memcpy(local + s.dst_off, in + pos, static_cast<std::size_t>(s.len) * sizeof(T));
      pos += static_cast<std::size_t>(s.len) * sizeof(T);
      continue;
    }
    T* out = local + s.dst_off;
    for (std::int64_t k = 0; k < s.len; ++k) {
      std::memcpy(out + k * s.dst_stride, in + pos, sizeof(T));
      pos += sizeof(T);
    }
  }
}

template <typename T>
Payload pack_plan(const DistArray<T>& src, int s_vrank, const TransferPlan& plan) {
  Payload buf;
  buf.reserve(static_cast<std::size_t>(plan.elements) * sizeof(T));
  std::vector<std::int64_t> gidx(plan.runs.size(), 0);
  const std::span<const T> local = src.local();
  visit_plan(plan, gidx, 0, [&](const std::vector<std::int64_t>& g, std::int64_t len) {
    const std::int64_t off = src.layout().local_offset(s_vrank, g);
    const std::size_t pos = buf.size();
    buf.resize(pos + static_cast<std::size_t>(len) * sizeof(T));
    std::memcpy(buf.data() + pos, local.data() + off, static_cast<std::size_t>(len) * sizeof(T));
  });
  return buf;
}

template <typename T>
void unpack_plan(DistArray<T>& dst, int r_vrank, const TransferPlan& plan,
                 const std::vector<int>& perm, const std::vector<std::int64_t>& offsets,
                 bool identity_perm, const Payload& data) {
  const int nd = static_cast<int>(plan.runs.size());
  std::vector<std::int64_t> gidx(static_cast<std::size_t>(nd), 0);
  std::vector<std::int64_t> didx(static_cast<std::size_t>(nd), 0);
  const std::span<T> local = dst.local();
  std::size_t pos = 0;
  visit_plan(plan, gidx, 0, [&](const std::vector<std::int64_t>& g, std::int64_t len) {
    if (identity_perm) {
      // Runs never span a distribution block on either side (the plan was
      // clipped against both owners' runs), so destination local addresses
      // of a run are contiguous too.
      for (int dd = 0; dd < nd; ++dd) {
        didx[static_cast<std::size_t>(dd)] =
            g[static_cast<std::size_t>(dd)] + offsets[static_cast<std::size_t>(dd)];
      }
      const std::int64_t off = dst.layout().local_offset(r_vrank, didx);
      std::memcpy(local.data() + off, data.data() + pos,
                  static_cast<std::size_t>(len) * sizeof(T));
      pos += static_cast<std::size_t>(len) * sizeof(T);
      return;
    }
    for (std::int64_t k = 0; k < len; ++k) {
      for (int dd = 0; dd < nd; ++dd) {
        const int sd = perm[static_cast<std::size_t>(dd)];
        didx[static_cast<std::size_t>(dd)] = g[static_cast<std::size_t>(sd)] +
                                             ((sd == nd - 1) ? k : 0) +
                                             offsets[static_cast<std::size_t>(dd)];
      }
      T v;
      std::memcpy(&v, data.data() + pos, sizeof(T));
      pos += sizeof(T);
      local[static_cast<std::size_t>(dst.layout().local_offset(r_vrank, didx))] = v;
    }
  });
}

}  // namespace detail

/// Generalized assignment: for every source index G inside the copied
/// region, dst[ G[perm[0]]+offsets[0], ... ] = src[G]. `perm` maps
/// destination dimensions to source dimensions (identity when empty);
/// `offsets` shifts the destination placement (zero when empty). Must be
/// called by every processor of the current scope; only the union of owner
/// groups participates.
template <typename T>
void assign_general(Context& ctx, DistArray<T>& dst, const DistArray<T>& src,
                    std::vector<int> perm, std::vector<std::int64_t> offsets,
                    AssignSync sync = AssignSync::SubsetBarrier) {
  const Layout& sl = src.layout();
  const Layout& dl = dst.layout();
  if (sl.ndims() != dl.ndims()) {
    throw std::invalid_argument("assign: dimensionality mismatch");
  }
  const int nd = sl.ndims();
  if (perm.empty()) {
    perm.resize(static_cast<std::size_t>(nd));
    std::iota(perm.begin(), perm.end(), 0);
  }
  if (offsets.empty()) offsets.assign(static_cast<std::size_t>(nd), 0);
  if (static_cast<int>(perm.size()) != nd || static_cast<int>(offsets.size()) != nd) {
    throw std::invalid_argument("assign: perm/offsets arity mismatch");
  }
  const std::vector<int> inv = detail::inverse_perm(perm);
  for (int dd = 0; dd < nd; ++dd) {
    const std::int64_t need =
        sl.extent(perm[static_cast<std::size_t>(dd)]) + offsets[static_cast<std::size_t>(dd)];
    if (offsets[static_cast<std::size_t>(dd)] < 0 || need > dl.extent(dd)) {
      throw std::invalid_argument("assign: source does not fit destination in dimension " +
                                  std::to_string(dd));
    }
  }
  bool identity = true;
  for (int dd = 0; dd < nd; ++dd) identity &= (perm[static_cast<std::size_t>(dd)] == dd);

  // Inspector: with caching on, fetch (or build once) the machine-wide
  // flattened schedule — union group, participant sets and per-pair
  // segments all come precomputed.
  std::shared_ptr<const plan::RedistSchedule> sched;
  if (ctx.config().plan_cache) {
    sched = plan::PlanCache::of(ctx.machine()).redist(ctx.machine(), sl, dl, perm, inv, offsets);
  }

  // Minimal participating set: owners of either side. Everyone else skips.
  pgroup::ProcessorGroup ug_local;
  if (!sched) ug_local = union_group(sl.group(), dl.group());
  const pgroup::ProcessorGroup& ug = sched ? sched->ugroup : ug_local;
  const int me = ctx.phys_rank();
  if (!ug.contains(me)) return;
  metrics::RuntimeMetrics* const mm = ctx.machine().metrics();
  double mt0 = 0.0;
  if (mm) {
    mm->redists->add(me);
    mt0 = ctx.machine().backend().now(me);
  }
  trace::ScopedSpan sp_;
  if (ctx.tracer()) sp_ = ctx.span("assign:" + dst.name(), "redistribute");
  const std::uint64_t tag = ctx.collective_tag(ug);
  if (sync == AssignSync::SubsetBarrier) ctx.barrier(ug);

  const int s_me = sl.group().virtual_of(me);
  const int r_me = dl.group().virtual_of(me);
  // With a fully replicated source every member holds the data; virtual
  // rank 0 is the canonical sender so values are sent exactly once.
  const bool i_send = s_me >= 0 && (!sl.fully_replicated() || s_me == 0);

  Payload self_payload;
  bool have_self = false;
  detail::TransferPlan self_plan;  // uncached path: reused by the receive loop
  if (i_send) {
    for (int r = 0; r < dl.group().size(); ++r) {
      const int r_phys = dl.group().physical(r);
      // With a replicated source, destination members that are themselves
      // source members serve their own copy: never message them.
      if (sl.fully_replicated() && r_phys != me && sl.group().contains(r_phys)) continue;
      Payload buf;
      if (sched) {
        const plan::FlatPlan& fp = sched->pair(s_me, r);
        if (fp.empty()) continue;
        buf = ctx.machine().pool_acquire(static_cast<std::size_t>(fp.elements) * sizeof(T));
        detail::pack_flat(src, fp, buf);
      } else {
        detail::TransferPlan plan = detail::build_plan(sl, s_me, dl, r, inv, offsets);
        if (plan.empty()) continue;
        buf = detail::pack_plan(src, s_me, plan);
        if (r_phys == me) self_plan = std::move(plan);
      }
      ctx.charge_mem_bytes(static_cast<double>(buf.size()));
      if (r_phys == me) {
        self_payload = std::move(buf);
        have_self = true;
      } else {
        ctx.send_phys(r_phys, tag, std::move(buf));
      }
    }
  }
  if (r_me >= 0) {
    for (int s = 0; s < sl.group().size(); ++s) {
      if (sl.fully_replicated() && s != (s_me >= 0 ? s_me : 0)) continue;
      // Self-serve from the local replica when the canonical sender skipped
      // us (replicated source, we are a non-canonical member).
      const bool serve_replica = sl.fully_replicated() && s_me >= 0 && s_me != 0;
      if (sched) {
        const plan::FlatPlan& fp = sched->pair(s, r_me);
        if (fp.empty()) continue;
        Payload buf;
        if (serve_replica) {
          // Replicated local offsets are identical on every member, so the
          // canonical sender slot's segments pack our own replica too.
          buf = ctx.machine().pool_acquire(static_cast<std::size_t>(fp.elements) * sizeof(T));
          detail::pack_flat(src, fp, buf);
        } else if (sl.group().physical(s) == me) {
          if (!have_self) throw std::logic_error("assign: missing self payload");
          buf = std::move(self_payload);
          have_self = false;
        } else {
          buf = ctx.recv_phys(sl.group().physical(s), tag);
        }
        if (buf.size() != static_cast<std::size_t>(fp.elements) * sizeof(T)) {
          throw std::logic_error("assign: payload size does not match plan");
        }
        ctx.charge_mem_bytes(static_cast<double>(buf.size()));
        detail::unpack_flat(dst, fp, buf);
        ctx.machine().pool_release(std::move(buf));
        continue;
      }
      // Uncached path. The self pair's plan was already built by the send
      // loop above — reuse it instead of rebuilding.
      detail::TransferPlan plan_storage;
      const detail::TransferPlan* plan;
      if (!serve_replica && sl.group().physical(s) == me && have_self) {
        plan = &self_plan;
      } else {
        plan_storage = detail::build_plan(sl, s, dl, r_me, inv, offsets);
        plan = &plan_storage;
      }
      if (plan->empty()) continue;
      Payload buf;
      if (serve_replica) {
        buf = detail::pack_plan(src, s_me, *plan);
      } else if (sl.group().physical(s) == me) {
        if (!have_self) throw std::logic_error("assign: missing self payload");
        buf = std::move(self_payload);
        have_self = false;
      } else {
        buf = ctx.recv_phys(sl.group().physical(s), tag);
      }
      if (buf.size() != static_cast<std::size_t>(plan->elements) * sizeof(T)) {
        throw std::logic_error("assign: payload size does not match plan");
      }
      ctx.charge_mem_bytes(static_cast<double>(buf.size()));
      detail::unpack_plan(dst, r_me, *plan, perm, offsets, identity, buf);
    }
  }
  // Per-participant latency: modeled seconds on the simulator, real
  // seconds on the threaded backend.
  if (mm) mm->redist_s->observe(me, ctx.machine().backend().now(me) - mt0);
}

/// dst = src with matching shapes (possibly different distributions and
/// owner groups). The workhorse behind pipeline stage handoffs.
template <typename T>
void assign(Context& ctx, DistArray<T>& dst, const DistArray<T>& src,
            AssignSync sync = AssignSync::SubsetBarrier) {
  if (dst.layout().shape() != src.layout().shape()) {
    throw std::invalid_argument("assign: whole-array assignment requires equal shapes");
  }
  assign_general(ctx, dst, src, {}, {}, sync);
}

/// dst[i...] = src[i[perm]...]: dimension-permuting assignment.
template <typename T>
void assign_permuted(Context& ctx, DistArray<T>& dst, const DistArray<T>& src,
                     std::vector<int> perm, AssignSync sync = AssignSync::SubsetBarrier) {
  assign_general(ctx, dst, src, std::move(perm), {}, sync);
}

/// Writes src into dst starting at `offsets` (dst section assignment).
template <typename T>
void assign_shifted(Context& ctx, DistArray<T>& dst, std::vector<std::int64_t> offsets,
                    const DistArray<T>& src, AssignSync sync = AssignSync::SubsetBarrier) {
  assign_general(ctx, dst, src, {}, std::move(offsets), sync);
}

/// 2-D transpose: dst[j,i] = src[i,j] (the radar corner turn).
template <typename T>
void transpose(Context& ctx, DistArray<T>& dst, const DistArray<T>& src,
               AssignSync sync = AssignSync::SubsetBarrier) {
  if (src.layout().ndims() != 2) throw std::invalid_argument("transpose: 2-D arrays only");
  assign_permuted(ctx, dst, src, {1, 0}, sync);
}

/// Scatters a full row-major array held on physical processor `root_phys`
/// into the distributed array `a`. Must be called by all members of the
/// owner group plus the root; non-root callers may pass an empty vector.
template <typename T>
void scatter_full(Context& ctx, DistArray<T>& a, int root_phys, const std::vector<T>& full) {
  const pgroup::ProcessorGroup root_group({root_phys});
  Layout src_layout(root_group, a.layout().shape(),
                    std::vector<DimDist>(static_cast<std::size_t>(a.layout().ndims()),
                                         DimDist::collapsed()));
  DistArray<T> tmp(ctx, std::move(src_layout), a.name() + ".scatter");
  if (ctx.phys_rank() == root_phys) {
    if (static_cast<std::int64_t>(full.size()) != a.layout().total_elements()) {
      throw std::invalid_argument("scatter_full: source size does not match array shape");
    }
    std::copy(full.begin(), full.end(), tmp.local().begin());
  }
  assign(ctx, a, tmp);
}

/// Gathers the full array, row-major, onto physical processor `root_phys`.
/// Must be called by all members of the owner group plus the root; the root
/// returns the data, everyone else an empty vector.
template <typename T>
std::vector<T> gather_full(Context& ctx, const DistArray<T>& a, int root_phys) {
  const pgroup::ProcessorGroup root_group({root_phys});
  Layout dst_layout(root_group, a.layout().shape(),
                    std::vector<DimDist>(static_cast<std::size_t>(a.layout().ndims()),
                                         DimDist::collapsed()));
  DistArray<T> tmp(ctx, std::move(dst_layout), a.name() + ".gather");
  assign(ctx, tmp, a);
  if (ctx.phys_rank() == root_phys) {
    return std::vector<T>(tmp.local().begin(), tmp.local().end());
  }
  return {};
}

}  // namespace fxpar::dist
