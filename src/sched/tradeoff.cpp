#include "sched/tradeoff.hpp"

#include <algorithm>
#include <stdexcept>

namespace fxpar::sched {

namespace {

bool same_modules(const PipelineMapping& a, const PipelineMapping& b) {
  if (a.modules.size() != b.modules.size()) return false;
  for (std::size_t i = 0; i < a.modules.size(); ++i) {
    const auto& x = a.modules[i];
    const auto& y = b.modules[i];
    if (x.first_stage != y.first_stage || x.last_stage != y.last_stage ||
        x.procs != y.procs || x.instances != y.instances) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<TradeoffPoint> latency_throughput_curve(const PipelineModel& model, int P,
                                                    int num_points) {
  if (num_points < 2) throw std::invalid_argument("latency_throughput_curve: need >= 2 points");
  const PipelineMapping dp = data_parallel_mapping(model, P);
  const PipelineMapping fastest = max_throughput_mapping(model, P);
  const double lo = dp.throughput;
  const double hi = fastest.throughput;

  std::vector<TradeoffPoint> curve;
  for (int k = 0; k < num_points; ++k) {
    const double demand =
        lo + (hi - lo) * static_cast<double>(k) / static_cast<double>(num_points - 1);
    PipelineMapping m = min_latency_mapping(model, P, demand);
    if (m.modules.empty()) continue;  // demand infeasible (numerical edge)
    if (!curve.empty() && same_modules(curve.back().mapping, m)) {
      continue;  // identical mapping, just a softer demand
    }
    curve.push_back(TradeoffPoint{demand, std::move(m)});
  }
  // Drop dominated points: throughput must strictly rise along the curve
  // and latency must not decrease backwards (keep the Pareto frontier).
  std::vector<TradeoffPoint> pareto;
  for (auto& p : curve) {
    while (!pareto.empty() &&
           pareto.back().mapping.throughput >= p.mapping.throughput &&
           pareto.back().mapping.latency >= p.mapping.latency) {
      pareto.pop_back();
    }
    if (pareto.empty() || p.mapping.throughput > pareto.back().mapping.throughput) {
      pareto.push_back(std::move(p));
    }
  }
  return pareto;
}

}  // namespace fxpar::sched
