#include "sched/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace fxpar::sched {

double PipelineModel::stage_time(int i, int p) const {
  if (i < 0 || i >= num_stages()) throw std::out_of_range("PipelineModel::stage_time");
  if (p < 1) throw std::invalid_argument("PipelineModel::stage_time: p < 1");
  return stages[static_cast<std::size_t>(i)].time_on(p);
}

double PipelineModel::transfer_time(int boundary, int p_up, int p_down) const {
  if (!transfer) return 0.0;
  return transfer(boundary, p_up, p_down);
}

double PipelineModel::module_time(int first, int last, int p) const {
  if (first < 0 || last < first || last >= num_stages()) {
    throw std::out_of_range("PipelineModel::module_time: bad stage range");
  }
  double t = 0.0;
  for (int i = first; i <= last; ++i) {
    t += stage_time(i, p);
    if (i < last) t += transfer_time(i, p, p);
  }
  return t;
}

bool PipelineModel::module_fits(int first, int last, int p) const {
  if (!stage_memory || node_memory <= 0.0) return true;
  double bytes = 0.0;
  for (int i = first; i <= last; ++i) bytes += stage_memory(i, p);
  return bytes <= node_memory;
}

double PipelineModel::service_time(int first, int last, int p) const {
  double t = module_time(first, last, p);
  if (first > 0) t += transfer_time(first - 1, p, p);
  if (last < num_stages() - 1) t += transfer_time(last, p, p);
  return t;
}

int PipelineMapping::total_procs() const {
  int t = 0;
  for (const ModuleAssignment& m : modules) t += m.total_procs();
  return t;
}

bool PipelineMapping::same_modules(const PipelineMapping& other) const {
  if (modules.size() != other.modules.size()) return false;
  for (std::size_t k = 0; k < modules.size(); ++k) {
    const ModuleAssignment& a = modules[k];
    const ModuleAssignment& b = other.modules[k];
    if (a.first_stage != b.first_stage || a.last_stage != b.last_stage ||
        a.procs != b.procs || a.instances != b.instances) {
      return false;
    }
  }
  return true;
}

std::string PipelineMapping::to_string(const PipelineModel& model) const {
  if (modules.empty()) return feasible ? "<empty>" : "<infeasible>";
  std::ostringstream oss;
  for (std::size_t k = 0; k < modules.size(); ++k) {
    const ModuleAssignment& m = modules[k];
    if (k) oss << " | ";
    oss << "[";
    for (int i = m.first_stage; i <= m.last_stage; ++i) {
      if (i > m.first_stage) oss << "+";
      oss << model.stages[static_cast<std::size_t>(i)].name;
    }
    oss << "] p=" << m.procs;
    if (m.instances > 1) oss << " x" << m.instances;
  }
  return oss.str();
}

void evaluate(const PipelineModel& model, PipelineMapping& mapping) {
  if (mapping.modules.empty()) {
    mapping.throughput = 0.0;
    mapping.latency = 0.0;
    return;
  }
  double latency = 0.0;
  double min_rate = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < mapping.modules.size(); ++k) {
    const ModuleAssignment& m = mapping.modules[k];
    const double T = model.module_time(m.first_stage, m.last_stage, m.procs);
    latency += T;
    if (k + 1 < mapping.modules.size()) {
      latency += model.transfer_time(m.last_stage, m.procs,
                                     mapping.modules[k + 1].procs);
    }
    const double service = model.service_time(m.first_stage, m.last_stage, m.procs);
    min_rate = std::min(min_rate, static_cast<double>(m.instances) / service);
  }
  mapping.latency = latency;
  mapping.throughput = min_rate;
}

PipelineMapping data_parallel_mapping(const PipelineModel& model, int P) {
  PipelineMapping m;
  m.modules.push_back(ModuleAssignment{0, model.num_stages() - 1, P, 1});
  evaluate(model, m);
  return m;
}

PipelineMapping max_throughput_mapping(const PipelineModel& model, int P) {
  const int S = model.num_stages();
  if (S == 0 || P <= 0) throw std::invalid_argument("max_throughput_mapping: empty problem");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // best[i][q]: minimal bottleneck module time covering stages [0..i) with
  // exactly at most q processors. choice records (j, p): last module is
  // stages [j..i) on p processors.
  std::vector<std::vector<double>> best(static_cast<std::size_t>(S + 1),
                                        std::vector<double>(static_cast<std::size_t>(P + 1), kInf));
  struct Choice {
    int j = -1, p = 0;
  };
  std::vector<std::vector<Choice>> choice(static_cast<std::size_t>(S + 1),
                                          std::vector<Choice>(static_cast<std::size_t>(P + 1)));
  for (int q = 0; q <= P; ++q) best[0][static_cast<std::size_t>(q)] = 0.0;
  for (int i = 1; i <= S; ++i) {
    for (int q = 1; q <= P; ++q) {
      for (int j = 0; j < i; ++j) {
        for (int p = 1; p <= q; ++p) {
          if (best[static_cast<std::size_t>(j)][static_cast<std::size_t>(q - p)] == kInf) continue;
          if (!model.module_fits(j, i - 1, p)) continue;
          const double t = model.service_time(j, i - 1, p);
          const double bottleneck =
              std::max(best[static_cast<std::size_t>(j)][static_cast<std::size_t>(q - p)], t);
          if (bottleneck < best[static_cast<std::size_t>(i)][static_cast<std::size_t>(q)]) {
            best[static_cast<std::size_t>(i)][static_cast<std::size_t>(q)] = bottleneck;
            choice[static_cast<std::size_t>(i)][static_cast<std::size_t>(q)] = Choice{j, p};
          }
        }
      }
    }
  }
  // Recover the best assignment over any processor budget <= P.
  int bq = P;
  PipelineMapping mapping;
  int i = S, q = bq;
  std::vector<ModuleAssignment> rev;
  while (i > 0) {
    const Choice c = choice[static_cast<std::size_t>(i)][static_cast<std::size_t>(q)];
    if (c.j < 0) throw std::logic_error("max_throughput_mapping: no feasible mapping");
    rev.push_back(ModuleAssignment{c.j, i - 1, c.p, 1});
    i = c.j;
    q -= c.p;
  }
  mapping.modules.assign(rev.rbegin(), rev.rend());
  evaluate(model, mapping);
  return mapping;
}

namespace {

/// Shared dynamic program behind both min_latency_mapping overloads. With
/// `topo` null (or a flat topology) this is exactly ref [22]'s DP; with a
/// real topology, candidates whose latency ties the incumbent within
/// relative `tol` are ranked by how many of their module instances fit
/// within a single NUMA node — those subgroups can be placed without
/// crossing a memory boundary on the threaded/process backends.
PipelineMapping min_latency_impl(const PipelineModel& model, int P, double min_throughput,
                                 const exec::HostTopology* topo, double tol) {
  const int S = model.num_stages();
  if (S == 0 || P <= 0) throw std::invalid_argument("min_latency_mapping: empty problem");
  if (!std::isfinite(min_throughput) || min_throughput < 0.0) {
    throw std::invalid_argument("min_latency_mapping: min_throughput must be finite and >= 0");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // node_local[p]: some NUMA node has >= p CPUs, so a p-processor module
  // instance can live entirely on one node. A flat (or absent) topology
  // makes every size "local", disabling the preference without a branch.
  std::vector<char> node_local(static_cast<std::size_t>(P + 1), 1);
  const bool topo_aware = topo != nullptr && !topo->flat() && tol > 0.0;
  if (topo_aware) {
    std::size_t max_node_cpus = 0;
    for (const auto& nd : topo->nodes) max_node_cpus = std::max(max_node_cpus, nd.cpus.size());
    for (int p = 1; p <= P; ++p) {
      node_local[static_cast<std::size_t>(p)] =
          static_cast<std::size_t>(p) <= max_node_cpus ? 1 : 0;
    }
  }
  // lat[i][q]: minimal latency covering stages [0..i) with at most q
  // processors such that every module sustains rate >= min_throughput.
  // fit[i][q]: node-local instance count of the decomposition behind it.
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(S + 1),
                                       std::vector<double>(static_cast<std::size_t>(P + 1), kInf));
  std::vector<std::vector<int>> fit(static_cast<std::size_t>(S + 1),
                                    std::vector<int>(static_cast<std::size_t>(P + 1), 0));
  struct Choice {
    int j = -1, p = 0, r = 0;
  };
  std::vector<std::vector<Choice>> choice(static_cast<std::size_t>(S + 1),
                                          std::vector<Choice>(static_cast<std::size_t>(P + 1)));
  for (int q = 0; q <= P; ++q) lat[0][static_cast<std::size_t>(q)] = 0.0;
  for (int i = 1; i <= S; ++i) {
    for (int q = 1; q <= P; ++q) {
      double& cell = lat[static_cast<std::size_t>(i)][static_cast<std::size_t>(q)];
      int& cell_fit = fit[static_cast<std::size_t>(i)][static_cast<std::size_t>(q)];
      for (int j = 0; j < i; ++j) {
        for (int p = 1; p <= q; ++p) {
          if (!model.module_fits(j, i - 1, p)) continue;
          // Rate is limited by full processor occupancy (incl. handoffs);
          // latency accumulates compute time plus one transfer per boundary.
          const double service = model.service_time(j, i - 1, p);
          const double T = model.module_time(j, i - 1, p) +
                           (j > 0 ? model.transfer_time(j - 1, p, p) : 0.0);
          // Smallest replication meeting the rate; more instances never
          // reduce latency, so only the minimal feasible r is considered.
          int r = 1;
          if (min_throughput > 0.0 && service * min_throughput > 1.0) {
            const double rd = std::ceil(service * min_throughput - 1e-12);
            if (rd > static_cast<double>(q)) continue;  // cannot fit (guards int overflow)
            r = static_cast<int>(rd);
          }
          if (static_cast<long long>(p) * r > q) continue;
          const double prev =
              lat[static_cast<std::size_t>(j)][static_cast<std::size_t>(q - p * r)];
          if (prev == kInf) continue;
          const double cand = prev + T;
          const int cand_fit =
              fit[static_cast<std::size_t>(j)][static_cast<std::size_t>(q - p * r)] +
              (node_local[static_cast<std::size_t>(p)] != 0 ? r : 0);
          bool take;
          if (!topo_aware) {
            take = cand < cell;
          } else if (cand * (1.0 + tol) < cell) {
            take = true;  // better beyond any tie tolerance
          } else if (cand <= cell * (1.0 + tol)) {
            // A latency tie: prefer the decomposition with more node-local
            // instances, then the lower latency. (Each fit-driven
            // replacement can raise the cell by at most a factor 1 + tol,
            // and needs strictly more local instances than the incumbent,
            // so the drift is bounded by tol * instances.)
            take = cand_fit > cell_fit || (cand_fit == cell_fit && cand < cell);
          } else {
            take = false;
          }
          if (take) {
            cell = cand;
            cell_fit = cand_fit;
            choice[static_cast<std::size_t>(i)][static_cast<std::size_t>(q)] = Choice{j, p, r};
          }
        }
      }
    }
  }
  PipelineMapping mapping;
  mapping.required_throughput = min_throughput;
  if (lat[static_cast<std::size_t>(S)][static_cast<std::size_t>(P)] == kInf) {
    mapping.feasible = false;  // explicit: no decomposition sustains the rate
    return mapping;
  }
  int i = S, q = P;
  std::vector<ModuleAssignment> rev;
  while (i > 0) {
    const Choice c = choice[static_cast<std::size_t>(i)][static_cast<std::size_t>(q)];
    if (c.j < 0) throw std::logic_error("min_latency_mapping: broken backtrack");
    rev.push_back(ModuleAssignment{c.j, i - 1, c.p, c.r});
    i = c.j;
    q -= c.p * c.r;
  }
  mapping.modules.assign(rev.rbegin(), rev.rend());
  evaluate(model, mapping);
  // Defensive re-check: the DP enforces the constraint module by module, but
  // a best-effort pick must never leave here labeled as satisfying an SLO it
  // misses. If the evaluated throughput falls short, report infeasibility
  // instead of silently degrading.
  if (min_throughput > 0.0 &&
      mapping.throughput < min_throughput * (1.0 - 1e-9)) {
    PipelineMapping infeasible;
    infeasible.feasible = false;
    infeasible.required_throughput = min_throughput;
    return infeasible;
  }
  return mapping;
}

}  // namespace

PipelineMapping min_latency_mapping(const PipelineModel& model, int P, double min_throughput) {
  return min_latency_impl(model, P, min_throughput, nullptr, 0.0);
}

PipelineMapping min_latency_mapping(const PipelineModel& model, int P, double min_throughput,
                                    const exec::HostTopology& topo, double tie_tolerance) {
  return min_latency_impl(model, P, min_throughput, &topo, tie_tolerance);
}

}  // namespace fxpar::sched
