// fxpar sched: latency-throughput tradeoff curves (ref [22] of the paper:
// Subhlok & Vondran, "Optimal latency-throughput tradeoffs for data
// parallel pipelines", SPAA'96).
//
// For a stage chain and machine size, the Pareto frontier of (throughput,
// latency): each point is the latency-optimal mapping meeting some
// throughput demand. This is the machinery behind the paper's claim that
// the model "allows us to target the development of such applications to
// specific performance goals" (Section 5.1, Figure 5).
#pragma once

#include <vector>

#include "sched/pipeline.hpp"

namespace fxpar::sched {

struct TradeoffPoint {
  double demand = 0.0;      ///< throughput demand that produced this mapping
  PipelineMapping mapping;  ///< latency-optimal mapping meeting the demand
};

/// Sweeps throughput demands from the data parallel rate up to the
/// machine's maximum achievable rate and returns the distinct mappings on
/// the latency-throughput frontier, in increasing-demand order. Mappings
/// that repeat across adjacent demands are deduplicated; dominated points
/// (higher latency without higher throughput) are dropped.
std::vector<TradeoffPoint> latency_throughput_curve(const PipelineModel& model, int P,
                                                    int num_points = 16);

}  // namespace fxpar::sched
