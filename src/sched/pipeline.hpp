// fxpar sched: automatic mapping of data parallel task chains.
//
// The paper obtains its Table 1 / Figure 5 mappings "along with the use of
// mapping algorithms presented in [21, 22]" (Subhlok & Vondran): given a
// chain of data parallel stages with known cost functions t_i(p), choose a
// grouping of contiguous stages into modules, a processor allocation per
// module, and a replication factor per module, optimizing either pure
// throughput or latency under a minimum-throughput constraint.
//
// Model. A module covering stages [f..l] on p processors has service time
// T(f,l,p) = sum of stage times + internal boundary transfer times. A
// module replicated over r instances (each of p processors, processing
// every r-th data set round-robin, the paper's Section 3.3 replication)
// accepts data sets at rate r / T. The pipeline's throughput is the
// minimum module rate; its latency is the sum of module service times plus
// inter-module transfers (charged at equal processor counts — see
// DESIGN.md).
#pragma once

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "exec/topology.hpp"

namespace fxpar::sched {

/// One data parallel stage of the chain.
struct StageModel {
  std::string name;
  /// Time to process one data set on p processors (p >= 1). Implementations
  /// should saturate beyond the stage's available parallelism.
  std::function<double(int)> time_on;
};

/// Cost model of the whole chain.
struct PipelineModel {
  std::vector<StageModel> stages;
  /// Transfer time across the boundary after stage `b` (between stage b and
  /// b+1) when the producer runs on p_up and the consumer on p_down
  /// processors. May be empty (free transfers).
  std::function<double(int b, int p_up, int p_down)> transfer;

  /// Optional memory model (the paper's companion work [20] maps task/data
  /// parallel programs from communication *and memory* requirements): bytes
  /// needed per processor when stage `i` runs on p processors. Together
  /// with node_memory it makes small-p modules infeasible — small data
  /// parallel groups may simply not fit a stage's working set.
  std::function<double(int i, int p)> stage_memory;
  double node_memory = 0.0;  ///< per-node capacity in bytes; 0 = unconstrained

  int num_stages() const noexcept { return static_cast<int>(stages.size()); }

  double stage_time(int i, int p) const;

  /// Compute time of a module covering stages [first..last] inclusive on p
  /// processors, including transfers internal to the module.
  double module_time(int first, int last, int p) const;

  /// Full per-data-set occupancy of the module's processors: module_time
  /// plus the boundary transfers into and out of the module (estimated at
  /// equal processor counts). This is what bounds the module's service rate
  /// — on the real machine the processors are busy sending/receiving during
  /// handoffs, so a pipeline stage cannot accept data sets faster than
  /// 1 / service_time.
  double service_time(int first, int last, int p) const;

  double transfer_time(int boundary, int p_up, int p_down) const;

  /// Whether a module covering [first..last] on p processors fits the
  /// per-node memory capacity (true when no memory model is configured).
  bool module_fits(int first, int last, int p) const;
};

/// One module of a mapping.
struct ModuleAssignment {
  int first_stage = 0;
  int last_stage = 0;
  int procs = 1;      ///< processors per instance
  int instances = 1;  ///< replication factor (paper Section 3.3)

  int total_procs() const noexcept { return procs * instances; }
};

struct PipelineMapping {
  std::vector<ModuleAssignment> modules;
  double throughput = 0.0;  ///< data sets per second (steady state)
  double latency = 0.0;     ///< seconds per data set

  /// Whether the mapping satisfies the constraint it was computed under.
  /// min_latency_mapping sets this to false (and leaves `modules` empty)
  /// when no decomposition of P processors sustains `min_throughput` —
  /// callers that promise an SLO must check it instead of treating whatever
  /// comes back as "constraint met". The unconstrained constructors
  /// (data_parallel_mapping, max_throughput_mapping) always produce
  /// feasible mappings.
  bool feasible = true;

  /// The throughput constraint the mapping was computed under (0 when
  /// unconstrained). Echoed back so an infeasibility report can say what
  /// was asked for.
  double required_throughput = 0.0;

  int total_procs() const;
  std::string to_string(const PipelineModel& model) const;

  /// True when `other` describes the same decomposition (same stage
  /// grouping, processor counts and replication). Used by remap policies
  /// to detect that a re-planned mapping is a no-op.
  bool same_modules(const PipelineMapping& other) const;
};

/// Evaluates throughput and latency of a mapping under the model.
void evaluate(const PipelineModel& model, PipelineMapping& mapping);

/// The pure data parallel mapping: all stages in one module on all P
/// processors, no pipelining, no replication (the paper's baseline).
PipelineMapping data_parallel_mapping(const PipelineModel& model, int P);

/// Ref [21]: contiguous grouping + allocation maximizing throughput
/// (no replication). Dynamic program over (stage prefix, processors).
PipelineMapping max_throughput_mapping(const PipelineModel& model, int P);

/// Ref [22]: latency-minimal mapping subject to throughput >= min_throughput,
/// with per-module replication.
///
/// Infeasibility is explicit: when no decomposition of P processors
/// sustains the constraint — including the defensive case where the
/// evaluated throughput of the optimizer's own pick falls short of it —
/// the result has `feasible == false`, empty `modules` and throughput 0,
/// with `required_throughput` echoing the constraint. A feasible result
/// always satisfies `throughput >= min_throughput` (up to 1e-9 relative
/// slack). Serving drivers must check `feasible` to distinguish "cannot
/// meet the SLO" from "met it"; a non-finite or negative constraint throws
/// std::invalid_argument rather than optimizing against garbage.
PipelineMapping min_latency_mapping(const PipelineModel& model, int P, double min_throughput);

/// Topology-aware variant: identical optimization, but when two candidate
/// decompositions tie on latency (within relative `tie_tolerance`), prefer
/// the one with more *node-local* modules — module instances whose
/// processor count fits within a single NUMA node of `topo`, so the
/// threaded/process backends can place each data parallel subgroup without
/// crossing a memory boundary. With a flat topology (or tolerance 0 and no
/// exact ties) the result is exactly the plain mapping; the latency of the
/// returned mapping is never more than (1 + tie_tolerance)^modules of
/// optimal. Infeasible constraints are reported exactly like the plain
/// overload: `feasible == false`, empty modules, throughput 0.
PipelineMapping min_latency_mapping(const PipelineModel& model, int P, double min_throughput,
                                    const exec::HostTopology& topo,
                                    double tie_tolerance = 1e-6);

}  // namespace fxpar::sched
