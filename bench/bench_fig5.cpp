// Reproduces Figure 5 of the paper: "Mappings of a 512x512 FFT-Hist
// program on an Intel Paragon" — the pure data parallel mapping, the
// latency-optimal mapping with minimum throughput 2, and with minimum
// throughput 4 (constraints re-expressed relative to DP throughput: the
// paper's 2/s and 4/s are 1.005x and 2.01x its measured DP rate of 1.99/s).
//
// For each mapping the bench draws the module structure (processors per
// instance, number of instances), and reports model-predicted vs simulated
// throughput and latency.
#include <cstdio>

#include "apps/ffthist.hpp"
#include "bench/bench_common.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;
namespace sc = fxpar::sched;

namespace {

void draw_mapping(const sc::PipelineModel& model, const sc::PipelineMapping& mapping) {
  for (std::size_t m = 0; m < mapping.modules.size(); ++m) {
    const auto& mod = mapping.modules[m];
    std::printf("    module %zu: [", m);
    for (int s = mod.first_stage; s <= mod.last_stage; ++s) {
      if (s > mod.first_stage) std::printf(" + ");
      std::printf("%s", model.stages[static_cast<std::size_t>(s)].name.c_str());
    }
    std::printf("]  pi=%-3d n=%d", mod.procs, mod.instances);
    for (int j = 0; j < mod.instances; ++j) std::printf("  [%d procs]", mod.procs);
    std::printf("\n");
  }
}

void run_case(const char* title, const ap::FftHistConfig& cfg, const MachineConfig& mcfg,
              const sc::PipelineModel& model,
              const std::vector<ap::PipelineStage<ap::Complex>>& stages,
              sc::PipelineMapping mapping) {
  sc::evaluate(model, mapping);
  // Always trace: Figure 5 is the observability show-case (phase report and
  // critical path per mapping; chrome trace of the last case via --trace-out).
  MachineConfig traced = mcfg;
  traced.trace = true;
  const auto stats =
      ap::run_stream_pipeline<ap::Complex>(traced, stages, mapping.modules, cfg.num_sets);
  std::printf("  %s (uses %d of %d processors)\n", title, mapping.total_procs(),
              mcfg.num_procs);
  draw_mapping(model, mapping);
  std::printf("    predicted: throughput %6.2f /s, latency %6.4f s\n", mapping.throughput,
              mapping.latency);
  std::printf("    simulated: throughput %6.2f /s, latency %6.4f s\n\n",
              stats.steady_throughput(), stats.avg_latency());
  const auto& res = stats.machine_result;
  if (res.trace) {
    const auto phases = fxpar::trace::phase_report(*res.trace);
    const auto path = fxpar::trace::critical_path(*res.trace);
    std::fputs(phases.to_string(8).c_str(), stdout);
    std::fputs(path.to_string(8).c_str(), stdout);
    std::printf("\n");
    if (!fxbench::options().trace_out.empty()) {
      try {
        fxpar::trace::write_chrome_trace(*res.trace, fxbench::options().trace_out);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--trace-out: %s\n", e.what());
      }
    }
  }
  fxbench::report_metrics(res);
  fxbench::json_record(std::string("fig5/") + title,
                       {{"n", std::to_string(cfg.n)},
                        {"num_sets", std::to_string(cfg.num_sets)},
                        {"procs", std::to_string(mcfg.num_procs)}},
                       res);
}

}  // namespace

int main(int argc, char** argv) {
  fxbench::init(argc, argv);
  const int P = 64;
  const auto mcfg = MachineConfig::paragon(P);
  ap::FftHistConfig cfg;
  cfg.n = 512;
  cfg.num_sets = 10;
  const auto stages = ap::ffthist_stages(cfg);
  const auto model = ap::ffthist_model(mcfg, cfg);

  std::printf("Figure 5 — mappings of a 512x512 FFT-Hist on %d simulated Paragon nodes\n\n",
              P);

  const auto dp = sc::data_parallel_mapping(model, P);
  run_case("Data parallel mapping", cfg, mcfg, model, stages, dp);

  const double dp_rate = dp.throughput;
  auto opt2 = sc::min_latency_mapping(model, P, (2.0 / 1.99) * dp_rate);
  run_case("Latency optimization with minimum throughput \"2\" (1.005x DP)", cfg, mcfg, model,
           stages, opt2);

  auto opt4 = sc::min_latency_mapping(model, P, (4.0 / 1.99) * dp_rate);
  if (opt4.modules.empty()) {
    std::printf("  Minimum throughput \"4\" (2.01x DP): infeasible on %d processors in the\n"
                "  model; using the maximum-throughput mapping instead.\n",
                P);
    opt4 = sc::max_throughput_mapping(model, P);
  }
  run_case("Latency optimization with minimum throughput \"4\" (2.01x DP)", cfg, mcfg, model,
           stages, opt4);

  std::printf("Shape target (paper): as the throughput demand rises, the optimal mapping\n"
              "moves from one large data parallel module to pipelined modules and then to\n"
              "replicated instances, trading latency for throughput.\n");
  return 0;
}
