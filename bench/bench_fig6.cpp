// Reproduces Figure 6 of the paper: "Speedup of Airshed application on an
// Intel Paragon" — data parallel vs task+data parallel speedup over the
// sequential run for 4..64 processors. The data parallel curve flattens
// because the hourly input/output phases are sequential (under 2% of the
// sequential time); the task parallel version overlaps them on dedicated
// subgroups and keeps scaling (the paper reports ~25% at 64 processors).
#include <cstdio>

#include "apps/airshed.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;

int main() {
  ap::AirshedConfig cfg;  // 5 layers x 500 grid points x 35 species
  cfg.hours = 4;

  std::printf("Figure 6 — Airshed speedup, %lldx%lldx%lld concentrations, %d hours\n\n",
              static_cast<long long>(cfg.layers), static_cast<long long>(cfg.grid_points),
              static_cast<long long>(cfg.species), cfg.hours);

  const auto seq = ap::run_airshed_dp(MachineConfig::paragon(1), cfg);
  std::printf("  sequential time: %.3f s", seq.makespan);
  {
    // Report the sequential share of the I/O phases (the paper: "well
    // under 2%").
    ap::AirshedConfig compute_only = cfg;
    auto mc = MachineConfig::paragon(1);
    mc.io_latency = 0.0;
    mc.io_byte_time = 0.0;
    const auto no_io = ap::run_airshed_dp(mc, compute_only);
    std::printf("   (I/O device share: %.1f%%)\n\n",
                100.0 * (seq.makespan - no_io.makespan) / seq.makespan);
  }

  std::printf("  %6s | %12s %8s | %12s %8s | %s\n", "procs", "DP time", "speedup",
              "task time", "speedup", "improvement");
  std::printf("  ------------------------------------------------------------------\n");
  for (int p : {4, 8, 16, 32, 64}) {
    const auto dp = ap::run_airshed_dp(MachineConfig::paragon(p), cfg);
    const auto tp = ap::run_airshed_taskpar(MachineConfig::paragon(p), cfg);
    if (dp.checksum != seq.checksum || tp.checksum != seq.checksum) {
      std::fprintf(stderr, "VERIFICATION FAILED at p=%d\n", p);
      return 1;
    }
    std::printf("  %6d | %10.3f s %7.2fx | %10.3f s %7.2fx | %+5.0f%%\n", p, dp.makespan,
                seq.makespan / dp.makespan, tp.makespan, seq.makespan / tp.makespan,
                100.0 * (dp.makespan - tp.makespan) / dp.makespan);
  }
  std::printf("\nShape target (paper): the DP curve flattens with processor count while the\n"
              "task+data curve keeps rising; at 64 processors the task parallel version\n"
              "cuts execution time by roughly a quarter. All runs bit-match the\n"
              "sequential reference.\n");
  return 0;
}
