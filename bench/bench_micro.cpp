// Host-side microbenchmarks (google-benchmark) of the library substrate:
// fiber switching, simulated messaging, subset barriers, redistribution,
// and the numerical kernels. These measure the *host* cost of simulation,
// not modeled machine time.
//
// Besides the google-benchmark suite, `--redist-compare` runs the
// plan-cache A/B experiment (repeated same-layout transpose, cache on vs
// off), prints a summary and emits --json-out records; see
// docs/performance.md.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "apps/fft.hpp"
#include "bench_common.hpp"
#include "comm/collectives.hpp"
#include "core/fx.hpp"
#include "dist/redistribute.hpp"
#include "runtime/fiber.hpp"

using namespace fxpar;
namespace ds = fxpar::dist;
namespace ap = fxpar::apps;

namespace {

void BM_FiberSwitch(benchmark::State& state) {
  runtime::Fiber* self = nullptr;
  runtime::Fiber fiber(
      [&] {
        for (;;) self->yield_to_owner();
      },
      64 * 1024);
  self = &fiber;
  for (auto _ : state) {
    fiber.resume();  // one round trip = two context switches
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_FiberSwitch);

void BM_SimulatedBarrier(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const int rounds = 64;
  for (auto _ : state) {
    Machine machine(MachineConfig::ideal(procs));
    machine.run([&](Context& ctx) {
      for (int i = 0; i < rounds; ++i) ctx.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds * procs);
}
BENCHMARK(BM_SimulatedBarrier)->Arg(4)->Arg(16)->Arg(64);

void BM_SimulatedPingPong(benchmark::State& state) {
  const int rounds = 128;
  for (auto _ : state) {
    Machine machine(MachineConfig::ideal(2));
    machine.run([&](Context& ctx) {
      for (int i = 0; i < rounds; ++i) {
        if (ctx.phys_rank() == 0) {
          ctx.send_phys(1, 1, machine::Payload(64));
          ctx.recv_phys(1, 2);
        } else {
          ctx.recv_phys(0, 1);
          ctx.send_phys(0, 2, machine::Payload(64));
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_SimulatedPingPong);

void BM_Redistribute1D(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const int procs = 8;
  for (auto _ : state) {
    Machine machine(MachineConfig::ideal(procs));
    machine.run([&](Context& ctx) {
      const auto g = pgroup::ProcessorGroup::identity(procs);
      ds::DistArray<double> a(ctx, ds::Layout(g, {n}, {ds::DimDist::block()}), "a");
      ds::DistArray<double> b(ctx, ds::Layout(g, {n}, {ds::DimDist::cyclic()}), "b");
      a.fill_value(1.0);
      ds::assign(ctx, b, a);
    });
  }
  state.SetBytesProcessed(state.iterations() * n * static_cast<std::int64_t>(sizeof(double)));
}
BENCHMARK(BM_Redistribute1D)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_Transpose2D(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const int procs = 8;
  for (auto _ : state) {
    Machine machine(MachineConfig::ideal(procs));
    machine.run([&](Context& ctx) {
      const auto g = pgroup::ProcessorGroup::identity(procs);
      ds::DistArray<double> a(
          ctx, ds::Layout(g, {n, n}, {ds::DimDist::block(), ds::DimDist::collapsed()}), "a");
      ds::DistArray<double> b(
          ctx, ds::Layout(g, {n, n}, {ds::DimDist::block(), ds::DimDist::collapsed()}), "b");
      a.fill_value(1.0);
      ds::transpose(ctx, b, a);
    });
  }
  state.SetBytesProcessed(state.iterations() * n * n *
                          static_cast<std::int64_t>(sizeof(double)));
}
BENCHMARK(BM_Transpose2D)->Arg(64)->Arg(256);

void BM_FftKernel(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<ap::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = ap::Complex(static_cast<double>(i % 17), static_cast<double>(i % 5));
  }
  for (auto _ : state) {
    auto copy = data;
    ap::fft_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftKernel)->Arg(256)->Arg(1024)->Arg(4096);

// Repeated same-layout redistribution inside one machine run: the case the
// plan cache targets. range(1) toggles MachineConfig::plan_cache.
void BM_AssignStream(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const bool cached = state.range(1) != 0;
  const int procs = 8;
  const int iters = 16;
  auto c = MachineConfig::ideal(procs);
  c.plan_cache = cached;
  for (auto _ : state) {
    Machine machine(c);
    machine.run([&](Context& ctx) {
      const auto g = pgroup::ProcessorGroup::identity(procs);
      ds::DistArray<double> a(ctx, ds::Layout(g, {n}, {ds::DimDist::block()}), "a");
      ds::DistArray<double> b(ctx, ds::Layout(g, {n}, {ds::DimDist::cyclic()}), "b");
      a.fill_value(1.0);
      for (int i = 0; i < iters; ++i) ds::assign(ctx, b, a);
    });
  }
  state.SetBytesProcessed(state.iterations() * iters * n *
                          static_cast<std::int64_t>(sizeof(double)));
}
BENCHMARK(BM_AssignStream)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 1});

// The permuted (corner-turn) path, where the uncached executor copies
// element by element.
void BM_TransposeStream(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const bool cached = state.range(1) != 0;
  const int procs = 8;
  const int iters = 8;
  auto c = MachineConfig::ideal(procs);
  c.plan_cache = cached;
  for (auto _ : state) {
    Machine machine(c);
    machine.run([&](Context& ctx) {
      const auto g = pgroup::ProcessorGroup::identity(procs);
      ds::DistArray<double> a(
          ctx, ds::Layout(g, {n, n}, {ds::DimDist::block(), ds::DimDist::collapsed()}), "a");
      ds::DistArray<double> b(
          ctx, ds::Layout(g, {n, n}, {ds::DimDist::block(), ds::DimDist::collapsed()}), "b");
      a.fill_value(1.0);
      for (int i = 0; i < iters; ++i) ds::transpose(ctx, b, a);
    });
  }
  state.SetBytesProcessed(state.iterations() * iters * n * n *
                          static_cast<std::int64_t>(sizeof(double)));
}
BENCHMARK(BM_TransposeStream)->Args({256, 0})->Args({256, 1});

void BM_TaskRegionOnOff(benchmark::State& state) {
  const int procs = 8;
  const int rounds = 64;
  for (auto _ : state) {
    Machine machine(MachineConfig::ideal(procs));
    machine.run([&](Context& ctx) {
      core::TaskPartition part(ctx, {{"a", 4}, {"b", 4}});
      core::TaskRegion region(ctx, part);
      for (int i = 0; i < rounds; ++i) {
        region.on("a", [&] { ctx.charge(1e-9); });
        region.on("b", [&] { ctx.charge(1e-9); });
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds * procs);
}
BENCHMARK(BM_TaskRegionOnOff);

// --redist-compare: the inspector–executor A/B experiment. A 100-iteration
// 512x512 transpose stream on 16 simulated procs, run with the plan cache
// off and on. Modeled results must be identical; host wall-clock should
// drop by >= 2x with the cache (asserted by the CI perf-smoke job from the
// emitted JSON records).
struct CompareRun {
  machine::RunResult res;
  double host_ms = 0.0;
};

CompareRun run_transpose_stream(bool cache_on, int procs, std::int64_t n, int iters) {
  auto c = MachineConfig::ideal(procs);
  c.stack_bytes = 256 * 1024;
  c.plan_cache = cache_on;
  Machine machine(c);
  CompareRun out;
  const fxbench::HostTimer timer;
  out.res = machine.run([&](Context& ctx) {
    const auto g = pgroup::ProcessorGroup::identity(procs);
    ds::DistArray<double> a(
        ctx, ds::Layout(g, {n, n}, {ds::DimDist::block(), ds::DimDist::collapsed()}), "a");
    ds::DistArray<double> b(
        ctx, ds::Layout(g, {n, n}, {ds::DimDist::block(), ds::DimDist::collapsed()}), "b");
    a.fill_value(1.0);
    for (int i = 0; i < iters; ++i) ds::transpose(ctx, b, a);
  });
  out.host_ms = timer.ms();
  return out;
}

/// Best-of-3 host time: host wall-clock is noisy on shared CI runners, so
/// every A/B leg keeps the fastest of three runs (modeled results are
/// deterministic — any run's RunResult serves as the witness).
template <typename RunFn>
auto best_of_3(RunFn run) {
  auto best = run();
  for (int rep = 1; rep < 3; ++rep) {
    auto next = run();
    if (next.host_ms < best.host_ms) best = next;
  }
  return best;
}

int run_redist_compare() {
  const int procs = 16;
  const std::int64_t n = 512;
  const int iters = 100;
  const std::vector<std::pair<std::string, std::string>> base_params{
      {"procs", std::to_string(procs)},
      {"n", std::to_string(n)},
      {"iters", std::to_string(iters)}};

  const CompareRun uncached =
      best_of_3([&] { return run_transpose_stream(false, procs, n, iters); });
  const CompareRun cached =
      best_of_3([&] { return run_transpose_stream(true, procs, n, iters); });

  const bool sim_identical = uncached.res.finish_time == cached.res.finish_time &&
                             uncached.res.messages == cached.res.messages &&
                             uncached.res.bytes == cached.res.bytes;
  const double speedup = cached.host_ms > 0.0 ? uncached.host_ms / cached.host_ms : 0.0;

  auto with = [&](const char* k, const std::string& v) {
    auto p = base_params;
    p.push_back({k, v});
    return p;
  };
  fxbench::json_record("micro/redist/uncached", with("plan_cache", "off"), uncached.res,
                       uncached.host_ms);
  fxbench::json_record("micro/redist/cached", with("plan_cache", "on"), cached.res,
                       cached.host_ms);
  {
    auto p = base_params;
    p.push_back({"speedup", std::to_string(speedup)});
    p.push_back({"sim_identical", sim_identical ? "true" : "false"});
    fxbench::json_record("micro/redist/speedup", p, cached.res, cached.host_ms);
  }

  std::printf(
      "redistribution plan cache A/B (%d iters of %lldx%lld transpose, %d procs, best of 3)\n",
      iters, static_cast<long long>(n), static_cast<long long>(n), procs);
  std::printf("  uncached: host %8.1f ms   sim %.6f s\n", uncached.host_ms,
              uncached.res.finish_time);
  std::printf("  cached:   host %8.1f ms   sim %.6f s   (%llu hits, %llu misses)\n",
              cached.host_ms, cached.res.finish_time,
              static_cast<unsigned long long>(cached.res.plan_cache_hits),
              static_cast<unsigned long long>(cached.res.plan_cache_misses));
  std::printf("  host speedup: %.2fx, modeled results %s\n", speedup,
              sim_identical ? "identical" : "DIFFER");
  return sim_identical ? 0 : 1;
}

// --collective-compare: the collective-plan-cache A/B experiment. Repeated
// 8-way vector allreduce + gather over 32 KiB payloads — the regime where
// the cached executor's pooled buffers and from-bytes combine pay off —
// with MachineConfig::plan_cache off vs on. Modeled results and final
// values must be bit-identical; the CI perf-smoke job asserts a >= 1.5x
// host speedup from the emitted records.
struct CollectiveRun {
  machine::RunResult res;
  double host_ms = 0.0;
  double checksum = 0.0;  ///< deterministic digest of every rank's final vector
  /// Minor page faults taken by the steady-state half of the stream (the
  /// second `iters/2` iterations). With the typed double pool warm this
  /// should be near zero on the cached leg: every result vector is a
  /// recycled allocation, so no new pages get touched.
  std::int64_t steady_minflt = -1;
};

CollectiveRun run_collective_stream(bool cache_on, int procs, std::size_t n, int iters) {
  auto c = MachineConfig::ideal(procs);
  c.stack_bytes = 256 * 1024;
  c.plan_cache = cache_on;
  Machine machine(c);
  std::vector<double> sums(static_cast<std::size_t>(procs), 0.0);
  std::int64_t warm_minflt = -1;
  CollectiveRun out;
  const fxbench::HostTimer timer;
  out.res = machine.run([&](Context& ctx) {
    const auto g = pgroup::ProcessorGroup::identity(procs);
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<double>(ctx.phys_rank() + 1) + static_cast<double>(i % 7);
    }
    for (int it = 0; it < iters; ++it) {
      if (it == iters / 2 && ctx.phys_rank() == 0) {
        // Pools and caches are warm; what faults from here on is churn.
        warm_minflt = fxbench::detail::rusage_now().minflt;
      }
      v = comm::allreduce_vector(ctx, g, std::move(v),
                                 [](double a, double b) { return a + b; });
      // Damp so repeated summing stays bounded (procs = 8 => factor 1).
      for (double& x : v) x *= 0.125;
      std::vector<double> all = comm::gather_vectors(ctx, g, 0, v);
      // Feed the gathered data back in so the gather is load-bearing.
      if (ctx.phys_rank() == 0 && !all.empty()) v[0] += all.back() * 1e-12;
      // Hand the gather result back to the typed scratch pool: the next
      // iteration's collectives reuse the allocation instead of growing a
      // fresh vector (this is what keeps the steady state fault-quiet).
      ctx.machine().double_release(std::move(all));
    }
    double s = 0.0;
    for (double x : v) s += x;
    sums[static_cast<std::size_t>(ctx.phys_rank())] = s;
  });
  out.host_ms = timer.ms();
  if (warm_minflt >= 0) {
    const std::int64_t end_minflt = fxbench::detail::rusage_now().minflt;
    out.steady_minflt = end_minflt - warm_minflt;
  }
  for (double s : sums) out.checksum += s;
  return out;
}

int run_collective_compare() {
  const int procs = 8;
  const std::size_t n = 4096;  // doubles per rank: 32 KiB payloads
  const int iters = 200;
  const std::vector<std::pair<std::string, std::string>> base_params{
      {"procs", std::to_string(procs)},
      {"n", std::to_string(n)},
      {"iters", std::to_string(iters)}};

  const CollectiveRun uncached =
      best_of_3([&] { return run_collective_stream(false, procs, n, iters); });
  const CollectiveRun cached =
      best_of_3([&] { return run_collective_stream(true, procs, n, iters); });

  const bool sim_identical = uncached.res.finish_time == cached.res.finish_time &&
                             uncached.res.messages == cached.res.messages &&
                             uncached.res.bytes == cached.res.bytes &&
                             uncached.checksum == cached.checksum;
  const double speedup = cached.host_ms > 0.0 ? uncached.host_ms / cached.host_ms : 0.0;

  auto with = [&](const char* k, const std::string& v) {
    auto p = base_params;
    p.push_back({k, v});
    return p;
  };
  {
    // Emit the counters on both legs: CI asserts the uncached leg really
    // ran cold (zero hits), not just that the cached leg ran warm.
    auto p = with("plan_cache", "off");
    p.push_back(
        {"collective_plan_hits", std::to_string(uncached.res.collective_plan_hits)});
    p.push_back(
        {"collective_plan_misses", std::to_string(uncached.res.collective_plan_misses)});
    p.push_back({"steady_minor_faults", std::to_string(uncached.steady_minflt)});
    fxbench::json_record("micro/collective/uncached", p, uncached.res, uncached.host_ms);
  }
  {
    auto p = with("plan_cache", "on");
    p.push_back({"collective_plan_hits", std::to_string(cached.res.collective_plan_hits)});
    p.push_back(
        {"collective_plan_misses", std::to_string(cached.res.collective_plan_misses)});
    p.push_back({"steady_minor_faults", std::to_string(cached.steady_minflt)});
    fxbench::json_record("micro/collective/cached", p, cached.res, cached.host_ms);
  }
  {
    auto p = base_params;
    p.push_back({"speedup", std::to_string(speedup)});
    p.push_back({"sim_identical", sim_identical ? "true" : "false"});
    fxbench::json_record("micro/collective/speedup", p, cached.res, cached.host_ms);
  }

  std::printf(
      "collective plan cache A/B (%d iters of %d-way allreduce+gather, %zu doubles, "
      "best of 3)\n",
      iters, procs, n);
  std::printf("  uncached: host %8.1f ms   sim %.6f s\n", uncached.host_ms,
              uncached.res.finish_time);
  std::printf("  cached:   host %8.1f ms   sim %.6f s   (%llu hits, %llu misses)\n",
              cached.host_ms, cached.res.finish_time,
              static_cast<unsigned long long>(cached.res.collective_plan_hits),
              static_cast<unsigned long long>(cached.res.collective_plan_misses));
  std::printf("  steady-state minor faults: uncached %lld, cached %lld\n",
              static_cast<long long>(uncached.steady_minflt),
              static_cast<long long>(cached.steady_minflt));
  std::printf("  host speedup: %.2fx, results %s\n", speedup,
              sim_identical ? "identical" : "DIFFER");
  return sim_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fxbench::init(argc, argv);
  bool compare = false;
  bool collective_compare = false;
  // Strip the fxbench flags before handing the rest to google-benchmark.
  std::vector<char*> gb_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--redist-compare") {
      compare = true;
    } else if (a == "--collective-compare") {
      collective_compare = true;
    } else if (a == "--json-out" || a == "--trace-out" || a == "--backend" ||
               a == "--transport" || a == "--threads" || a == "--work-stealing" ||
               a == "--pinning" || a == "--metrics" || a == "--metrics-out") {
      ++i;
    } else if (a == "--trace-report") {
      // consumed by fxbench::init
    } else {
      gb_args.push_back(argv[i]);
    }
  }
  if (compare || collective_compare) {
    int rc = 0;
    if (compare) rc |= run_redist_compare();
    if (collective_compare) rc |= run_collective_compare();
    return rc;
  }
  int gb_argc = static_cast<int>(gb_args.size());
  benchmark::Initialize(&gb_argc, gb_args.data());
  if (benchmark::ReportUnrecognizedArguments(gb_argc, gb_args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
