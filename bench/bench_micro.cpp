// Host-side microbenchmarks (google-benchmark) of the library substrate:
// fiber switching, simulated messaging, subset barriers, redistribution,
// and the numerical kernels. These measure the *host* cost of simulation,
// not modeled machine time.
#include <benchmark/benchmark.h>

#include "apps/fft.hpp"
#include "core/fx.hpp"
#include "dist/redistribute.hpp"
#include "runtime/fiber.hpp"

using namespace fxpar;
namespace ds = fxpar::dist;
namespace ap = fxpar::apps;

namespace {

void BM_FiberSwitch(benchmark::State& state) {
  runtime::Fiber* self = nullptr;
  runtime::Fiber fiber(
      [&] {
        for (;;) self->yield_to_owner();
      },
      64 * 1024);
  self = &fiber;
  for (auto _ : state) {
    fiber.resume();  // one round trip = two context switches
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_FiberSwitch);

void BM_SimulatedBarrier(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const int rounds = 64;
  for (auto _ : state) {
    Machine machine(MachineConfig::ideal(procs));
    machine.run([&](Context& ctx) {
      for (int i = 0; i < rounds; ++i) ctx.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds * procs);
}
BENCHMARK(BM_SimulatedBarrier)->Arg(4)->Arg(16)->Arg(64);

void BM_SimulatedPingPong(benchmark::State& state) {
  const int rounds = 128;
  for (auto _ : state) {
    Machine machine(MachineConfig::ideal(2));
    machine.run([&](Context& ctx) {
      for (int i = 0; i < rounds; ++i) {
        if (ctx.phys_rank() == 0) {
          ctx.send_phys(1, 1, machine::Payload(64));
          ctx.recv_phys(1, 2);
        } else {
          ctx.recv_phys(0, 1);
          ctx.send_phys(0, 2, machine::Payload(64));
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds * 2);
}
BENCHMARK(BM_SimulatedPingPong);

void BM_Redistribute1D(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const int procs = 8;
  for (auto _ : state) {
    Machine machine(MachineConfig::ideal(procs));
    machine.run([&](Context& ctx) {
      const auto g = pgroup::ProcessorGroup::identity(procs);
      ds::DistArray<double> a(ctx, ds::Layout(g, {n}, {ds::DimDist::block()}), "a");
      ds::DistArray<double> b(ctx, ds::Layout(g, {n}, {ds::DimDist::cyclic()}), "b");
      a.fill_value(1.0);
      ds::assign(ctx, b, a);
    });
  }
  state.SetBytesProcessed(state.iterations() * n * static_cast<std::int64_t>(sizeof(double)));
}
BENCHMARK(BM_Redistribute1D)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_Transpose2D(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const int procs = 8;
  for (auto _ : state) {
    Machine machine(MachineConfig::ideal(procs));
    machine.run([&](Context& ctx) {
      const auto g = pgroup::ProcessorGroup::identity(procs);
      ds::DistArray<double> a(
          ctx, ds::Layout(g, {n, n}, {ds::DimDist::block(), ds::DimDist::collapsed()}), "a");
      ds::DistArray<double> b(
          ctx, ds::Layout(g, {n, n}, {ds::DimDist::block(), ds::DimDist::collapsed()}), "b");
      a.fill_value(1.0);
      ds::transpose(ctx, b, a);
    });
  }
  state.SetBytesProcessed(state.iterations() * n * n *
                          static_cast<std::int64_t>(sizeof(double)));
}
BENCHMARK(BM_Transpose2D)->Arg(64)->Arg(256);

void BM_FftKernel(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<ap::Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = ap::Complex(static_cast<double>(i % 17), static_cast<double>(i % 5));
  }
  for (auto _ : state) {
    auto copy = data;
    ap::fft_inplace(copy);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftKernel)->Arg(256)->Arg(1024)->Arg(4096);

void BM_TaskRegionOnOff(benchmark::State& state) {
  const int procs = 8;
  const int rounds = 64;
  for (auto _ : state) {
    Machine machine(MachineConfig::ideal(procs));
    machine.run([&](Context& ctx) {
      core::TaskPartition part(ctx, {{"a", 4}, {"b", 4}});
      core::TaskRegion region(ctx, part);
      for (int i = 0; i < rounds; ++i) {
        region.on("a", [&] { ctx.charge(1e-9); });
        region.on("b", [&] { ctx.charge(1e-9); });
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds * procs);
}
BENCHMARK(BM_TaskRegionOnOff);

}  // namespace

BENCHMARK_MAIN();
