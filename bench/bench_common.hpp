// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <string>

#include "apps/stream_pipeline.hpp"
#include "sched/pipeline.hpp"

namespace fxbench {

/// Runs the mapping algorithm's choice and the DP baseline for one stream
/// application, reproducing one row of Table 1. The throughput constraint
/// is expressed relative to the measured DP throughput (the paper's
/// absolute rates are Paragon-specific; the *relative* demand — e.g. Table 1
/// asks for 8/3.90 = 2.05x the DP rate for 256x256 FFT-Hist — is what the
/// experiment is about).
template <typename T>
void table1_row(const char* name, const char* size_desc,
                const fxpar::machine::MachineConfig& mcfg,
                const std::vector<fxpar::apps::PipelineStage<T>>& stages,
                const fxpar::sched::PipelineModel& model, int num_sets,
                double rel_constraint) {
  using fxpar::apps::run_stream_pipeline;
  namespace sched = fxpar::sched;

  const int S = static_cast<int>(stages.size());
  const auto dp_stats = run_stream_pipeline<T>(
      mcfg, stages, {{0, S - 1, mcfg.num_procs, 1}}, num_sets);
  const double dp_thr = dp_stats.steady_throughput();
  const double dp_lat = dp_stats.avg_latency();

  // Ask the mapping algorithms (refs [21][22]) for the latency-optimal
  // mapping meeting the throughput constraint. The model's absolute scale
  // differs from the machine's, so the constraint is translated through the
  // model's own DP throughput.
  const auto model_dp = sched::data_parallel_mapping(model, mcfg.num_procs);
  const double model_constraint = rel_constraint * model_dp.throughput;
  auto mapping = sched::min_latency_mapping(model, mcfg.num_procs, model_constraint);
  if (mapping.modules.empty()) {
    mapping = sched::max_throughput_mapping(model, mcfg.num_procs);
  }
  const auto best_stats =
      run_stream_pipeline<T>(mcfg, stages, mapping.modules, num_sets);

  std::printf("%-10s %-12s | %8.3f %8.4f | %6.2fx | %8.3f %8.4f | %5.2fx %+6.0f%% | %s\n",
              name, size_desc, dp_thr, dp_lat, rel_constraint,
              best_stats.steady_throughput(), best_stats.avg_latency(),
              best_stats.steady_throughput() / dp_thr,
              100.0 * (best_stats.avg_latency() - dp_lat) / dp_lat,
              mapping.to_string(model).c_str());
}

}  // namespace fxbench
