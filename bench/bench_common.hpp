// Shared helpers for the table/figure reproduction benches: the Table 1
// driver, a tiny CLI (--json-out / --trace-out / --trace-report), one-line
// JSON result records, and trace reporting for traced runs (see
// docs/observability.md).
#pragma once

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "apps/stream_pipeline.hpp"
#include "sched/pipeline.hpp"
#include "trace/chrome_export.hpp"
#include "trace/critical_path.hpp"
#include "trace/phase_report.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fxbench {

/// Options shared by all benches; populated by init().
struct Options {
  std::string json_out;      ///< --json-out FILE|-  : one-line JSON records
  std::string trace_out;     ///< --trace-out FILE   : chrome trace of the last traced run
  bool trace_report = false; ///< --trace-report     : print phase + critical-path reports
  std::string backend = "sim";  ///< --backend sim|threads|proc : execution engine
  std::string transport = "shm";  ///< --transport shm|tcp : proc-backend message fabric
  int threads = 0;           ///< --threads N        : logical processors (0 = bench default)
  int work_stealing = -1;    ///< --work-stealing on|off (-1 = config default)
  std::string pinning;       ///< --pinning none|compact|scatter|numa ("" = config default)
  int metrics = -1;          ///< --metrics on|off (-1 = config default, which is on)
  std::string metrics_out;   ///< --metrics-out FILE : final metrics snapshot
                             ///<   (.json -> JSON, else Prometheus text)
  int obs_port = -1;         ///< --obs-port N : live HTTP endpoint (-1 = off)
  int flight_recorder = -1;  ///< --flight-recorder on|off (-1 = config default)
};

inline Options& options() {
  static Options opts;
  return opts;
}

/// Strict numeric flag parser: the whole string must be a base-10 integer
/// inside [lo, hi]. Anything else — empty, trailing junk, out of range,
/// or overflowing a long — prints an enumerated message and exits 2, the
/// shared loud-failure contract of the bench CLI (a `--threads 0x8`, `-4`
/// or `99999999999999999999` must never silently become a config value).
/// `what` names the expected kind in the message ("an integer", "a port").
inline long parse_int_flag(const char* flag, const std::string& v, long lo, long hi,
                           const char* what = "an integer") {
  errno = 0;
  char* end = nullptr;
  const long n = std::strtol(v.c_str(), &end, 10);
  const bool malformed = v.empty() || end != v.c_str() + v.size();
  if (malformed || errno == ERANGE || n < lo || n > hi) {
    std::fprintf(stderr, "%s must be %s in [%ld, %ld], got '%s'\n", flag, what, lo, hi,
                 v.c_str());
    std::exit(2);
  }
  return n;
}

/// Strict floating-point flag parser: the whole string must be a finite
/// number inside [lo, hi]; violations exit 2 with an enumerated message
/// (an `--arrival-rate inf` or `nan` would otherwise poison every derived
/// record downstream).
inline double parse_double_flag(const char* flag, const std::string& v, double lo,
                                double hi) {
  errno = 0;
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  const bool malformed = v.empty() || end != v.c_str() + v.size();
  if (malformed || errno == ERANGE || !std::isfinite(x) || x < lo || x > hi) {
    std::fprintf(stderr, "%s must be a number in [%g, %g], got '%s'\n", flag, lo, hi,
                 v.c_str());
    std::exit(2);
  }
  return x;
}

/// Parses the shared bench flags; unknown arguments are ignored so benches
/// can add their own. Call at the top of main().
inline void init(int argc, char** argv) {
  Options& o = options();
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        // Fail loudly, like the invalid --backend path: continuing with an
        // empty value would let automation record mislabeled runs.
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--json-out") {
      o.json_out = value("--json-out");
    } else if (a == "--trace-out") {
      o.trace_out = value("--trace-out");
    } else if (a == "--trace-report") {
      o.trace_report = true;
    } else if (a == "--backend") {
      o.backend = value("--backend");
      if (o.backend != "sim" && o.backend != "threads" && o.backend != "proc") {
        // Fail loudly: silently degrading to sim would let a typo in
        // automation produce sim-labeled records.
        std::fprintf(stderr, "--backend must be 'sim', 'threads' or 'proc', got '%s'\n",
                     o.backend.c_str());
        std::exit(2);
      }
    } else if (a == "--transport") {
      o.transport = value("--transport");
      if (o.transport != "shm" && o.transport != "tcp") {
        // Fail loudly, like --backend: a typo must not record tcp-labeled
        // runs that actually went over shared memory.
        std::fprintf(stderr, "--transport must be 'shm' or 'tcp', got '%s'\n",
                     o.transport.c_str());
        std::exit(2);
      }
    } else if (a == "--threads") {
      // 0 is not accepted even though it is the Options default: an explicit
      // `--threads 0` (or a negative/garbled count) is always a mistake that
      // must not silently fall back to the bench's own default.
      o.threads = static_cast<int>(parse_int_flag("--threads", value("--threads"), 1, 4096));
    } else if (a == "--work-stealing") {
      const std::string v = value("--work-stealing");
      if (v == "on") {
        o.work_stealing = 1;
      } else if (v == "off") {
        o.work_stealing = 0;
      } else {
        std::fprintf(stderr, "--work-stealing must be 'on' or 'off', got '%s'\n", v.c_str());
        std::exit(2);
      }
    } else if (a == "--pinning") {
      o.pinning = value("--pinning");
      fxpar::exec::PinPolicy parsed;
      if (!fxpar::exec::parse_pin_policy(o.pinning, parsed)) {
        // Fail loudly, like --backend: a typo must not record unpinned
        // runs labeled as pinned.
        std::fprintf(stderr,
                     "--pinning must be 'none', 'compact', 'scatter' or 'numa', got '%s'\n",
                     o.pinning.c_str());
        std::exit(2);
      }
    } else if (a == "--metrics") {
      const std::string v = value("--metrics");
      if (v == "on") {
        o.metrics = 1;
      } else if (v == "off") {
        o.metrics = 0;
      } else {
        std::fprintf(stderr, "--metrics must be 'on' or 'off', got '%s'\n", v.c_str());
        std::exit(2);
      }
    } else if (a == "--metrics-out") {
      o.metrics_out = value("--metrics-out");
    } else if (a == "--obs-port") {
      // Fail loudly, like --backend: a typo must not silently run the
      // bench without the endpoint automation is about to curl.
      o.obs_port = static_cast<int>(
          parse_int_flag("--obs-port", value("--obs-port"), 0, 65535, "a port"));
    } else if (a == "--flight-recorder") {
      const std::string v = value("--flight-recorder");
      if (v == "on") {
        o.flight_recorder = 1;
      } else if (v == "off") {
        o.flight_recorder = 0;
      } else {
        std::fprintf(stderr, "--flight-recorder must be 'on' or 'off', got '%s'\n", v.c_str());
        std::exit(2);
      }
    } else if (a == "--help" || a == "-h") {
      std::printf("common bench flags:\n"
                  "  --json-out FILE|-   append one-line JSON result records\n"
                  "  --trace-out FILE    write chrome://tracing / Perfetto JSON of the\n"
                  "                      last traced machine run\n"
                  "  --trace-report      print per-phase and critical-path reports\n"
                  "  --backend sim|threads|proc\n"
                  "                      execution engine (default sim; see docs/execution.md)\n"
                  "  --transport shm|tcp\n"
                  "                      proc-backend message fabric: shared-memory mailbox\n"
                  "                      rings or loopback TCP (default shm)\n"
                  "  --threads N         logical processor count override (threads and proc\n"
                  "                      backends run one OS thread/process per logical\n"
                  "                      processor)\n"
                  "  --work-stealing on|off\n"
                  "                      intra-subgroup loop work stealing (threads backend;\n"
                  "                      default: MachineConfig::work_stealing)\n"
                  "  --pinning none|compact|scatter|numa\n"
                  "                      worker-thread placement policy (threads backend;\n"
                  "                      default none; see docs/performance.md)\n"
                  "  --metrics on|off    runtime metrics registry (default: on; 'off' removes\n"
                  "                      the counters entirely for overhead measurements)\n"
                  "  --metrics-out FILE  write the final metrics snapshot of the last\n"
                  "                      reported run (.json -> JSON, else Prometheus text)\n"
                  "  --obs-port N        serve /metrics, /healthz, /trace and /diagnostics\n"
                  "                      on 127.0.0.1:N during every run (0 = ephemeral;\n"
                  "                      see docs/observability.md)\n"
                  "  --flight-recorder on|off\n"
                  "                      bounded ring of recent runtime events, dumped at\n"
                  "                      /trace and in diagnostic bundles (default: off)\n");
    }
  }
}

/// Copy of `cfg` with the CLI's tuning flags applied (--work-stealing,
/// --pinning, --metrics) but the backend/processor count untouched, for
/// benches that drive several backends from one binary (bench_exec).
inline fxpar::machine::MachineConfig apply_tuning(fxpar::machine::MachineConfig cfg) {
  const Options& o = options();
  if (o.work_stealing >= 0) cfg.work_stealing = o.work_stealing != 0;
  if (!o.pinning.empty()) {
    fxpar::exec::PinPolicy parsed;
    if (fxpar::exec::parse_pin_policy(o.pinning, parsed)) cfg.pinning = parsed;
  }
  if (o.metrics >= 0) cfg.metrics = o.metrics != 0;
  if (o.obs_port >= 0) cfg.obs_port = o.obs_port;
  if (o.flight_recorder >= 0) cfg.flight_recorder = o.flight_recorder != 0;
  return cfg;
}

/// Copy of `cfg` with the CLI's --backend / --threads selection applied.
/// Benches that support backend selection route their MachineConfig through
/// this before running.
inline fxpar::machine::MachineConfig apply_backend(fxpar::machine::MachineConfig cfg) {
  const Options& o = options();
  cfg.backend = (o.backend == "threads") ? fxpar::exec::BackendKind::Threads
               : (o.backend == "proc")   ? fxpar::exec::BackendKind::Proc
                                         : fxpar::exec::BackendKind::Sim;
  cfg.transport = (o.transport == "tcp") ? fxpar::exec::TransportKind::Tcp
                                         : fxpar::exec::TransportKind::Shm;
  if (o.threads > 0) cfg.num_procs = o.threads;
  return apply_tuning(std::move(cfg));
}

/// True when any tracing output was requested on the command line.
inline bool tracing_requested() {
  return options().trace_report || !options().trace_out.empty();
}

/// Copy of `cfg` with tracing enabled iff requested via the CLI.
inline fxpar::machine::MachineConfig maybe_traced(fxpar::machine::MachineConfig cfg) {
  if (tracing_requested()) cfg.trace = true;
  return cfg;
}

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::ostream* json_stream() {
  const std::string& path = options().json_out;
  if (path.empty()) return nullptr;
  if (path == "-") return &std::cout;
  static std::ofstream file;
  static bool warned = false;
  if (!file.is_open()) file.open(path, std::ios::app);
  if (!file) {
    if (!warned) {
      warned = true;
      std::cerr << "--json-out: cannot write '" << path << "', records dropped\n";
    }
    return nullptr;
  }
  return &file;
}

/// Writes `v` with `fmt`, or `null` when it is inf/nan: "%.9g" would emit a
/// bare `inf`/`nan` token, making the whole record unparseable JSON (the
/// perf-smoke CI reads these lines with a strict parser).
inline void write_json_number(std::ostream& out, double v, const char* fmt) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  char num[64];
  std::snprintf(num, sizeof(num), fmt, v);
  out << num;
}

/// Process-wide memory-pressure counters: cumulative minor page faults and
/// peak resident set (KB on Linux, converted from bytes on macOS). Both -1
/// when the platform has no getrusage.
struct RusageNow {
  std::int64_t minflt = -1;
  std::int64_t maxrss_kb = -1;
};

inline RusageNow rusage_now() {
  RusageNow r;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    r.minflt = static_cast<std::int64_t>(ru.ru_minflt);
#if defined(__APPLE__)
    r.maxrss_kb = static_cast<std::int64_t>(ru.ru_maxrss) / 1024;
#else
    r.maxrss_kb = static_cast<std::int64_t>(ru.ru_maxrss);
#endif
  }
#endif
  return r;
}

}  // namespace detail

/// Wall-clock stopwatch for the *host* cost of a simulated run, as opposed
/// to the modeled machine time. Construct before Machine::run, read .ms()
/// after; the value lands in json_record's "host_ms" field.
class HostTimer {
 public:
  HostTimer() : start_(std::chrono::steady_clock::now()) {}

  double ms() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Appends one JSON line {"name":..., "params":{...}, "time_s":...,
/// "efficiency":..., "comm_bytes":...} to the --json-out sink. No-op when
/// --json-out was not given. `host_ms` >= 0 adds a "host_ms" field (host
/// wall-clock of the run, from HostTimer); nonzero plan-cache counters add
/// "plan_cache_hits"/"plan_cache_misses"; `steals` >= 0 adds the
/// work-stealing counters (threads backend). Non-finite time_s/efficiency/
/// host_ms/wait_ms values are emitted as `null` so the line stays valid
/// JSON.
inline void json_record(const std::string& name,
                        const std::vector<std::pair<std::string, std::string>>& params,
                        double time_s, double efficiency, std::uint64_t comm_bytes,
                        double host_ms = -1.0, std::uint64_t plan_hits = 0,
                        std::uint64_t plan_misses = 0, const std::string& backend = "sim",
                        int threads = 0, double wait_ms = -1.0,
                        std::int64_t steals = -1, std::int64_t stolen_iters = -1,
                        const std::string& pinning = std::string(),
                        const std::vector<int>& numa_nodes = std::vector<int>(),
                        const std::string& transport = std::string()) {
  std::ostream* out = detail::json_stream();
  if (!out) return;
  *out << "{\"name\":\"" << detail::json_escape(name) << "\",\"params\":{";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i) *out << ',';
    *out << '"' << detail::json_escape(params[i].first) << "\":\""
         << detail::json_escape(params[i].second) << '"';
  }
  *out << "},\"time_s\":";
  detail::write_json_number(*out, time_s, "%.9g");
  *out << ",\"efficiency\":";
  detail::write_json_number(*out, efficiency, "%.6g");
  *out << ",\"comm_bytes\":" << comm_bytes;
  *out << ",\"backend\":\"" << detail::json_escape(backend) << '"';
  // Which message fabric a proc-backend run crossed: shm vs tcp records are
  // different experiments even at identical parameters.
  if (!transport.empty()) {
    *out << ",\"transport\":\"" << detail::json_escape(transport) << '"';
  }
  if (threads > 0) *out << ",\"threads\":" << threads;
  // A negative value means "not provided"; NaN means provided-but-broken
  // (it would fail the >= test), which must surface as null, not vanish.
  if (host_ms >= 0.0 || std::isnan(host_ms)) {
    *out << ",\"host_ms\":";
    detail::write_json_number(*out, host_ms, "%.6g");
  }
  if (wait_ms >= 0.0 || std::isnan(wait_ms)) {
    *out << ",\"wait_ms\":";
    detail::write_json_number(*out, wait_ms, "%.6g");
  }
  if (steals >= 0) {
    *out << ",\"steals\":" << steals << ",\"stolen_iters\":" << stolen_iters;
  }
  if (plan_hits + plan_misses > 0) {
    *out << ",\"plan_cache_hits\":" << plan_hits << ",\"plan_cache_misses\":" << plan_misses;
  }
  if (!pinning.empty()) *out << ",\"pinning\":\"" << detail::json_escape(pinning) << '"';
  if (!numa_nodes.empty()) {
    *out << ",\"numa_nodes\":[";
    for (std::size_t i = 0; i < numa_nodes.size(); ++i) {
      if (i) *out << ',';
      *out << numa_nodes[i];
    }
    *out << ']';
  }
  // Memory pressure of the whole bench process at record time. Cumulative
  // across runs in one binary — automation diffs consecutive records.
  // ("minor_faults", not the traditional "minflt": these lines must never
  // contain a bare "inf" substring, which the JSON-hygiene test greps for.)
  const detail::RusageNow ru = detail::rusage_now();
  *out << ",\"minor_faults\":" << ru.minflt << ",\"max_rss_kb\":" << ru.maxrss_kb;
  *out << "}\n";
  out->flush();
}

/// Convenience overload taking the machine counters directly. Records which
/// backend executed the run; on the real (threads / proc) backends it also
/// records the worker count and total real blocked time, on threads the
/// work-stealing counters, and on proc the transport the run crossed.
inline void json_record(const std::string& name,
                        const std::vector<std::pair<std::string, std::string>>& params,
                        const fxpar::machine::RunResult& res, double host_ms = -1.0) {
  const bool threaded = res.backend == "threads";
  const bool proc = res.backend == "proc";
  json_record(name, params, res.finish_time, res.efficiency(), res.bytes, host_ms,
              res.plan_cache_hits, res.plan_cache_misses, res.backend,
              threaded || proc ? static_cast<int>(res.clocks.size()) : 0,
              threaded || proc ? res.wait_ms : -1.0,
              threaded ? static_cast<std::int64_t>(res.steals) : -1,
              threaded ? static_cast<std::int64_t>(res.stolen_iters) : -1,
              threaded ? res.pinning : std::string(), res.numa_nodes,
              proc ? options().transport : std::string());
}

/// Reports on a traced run according to the CLI options: prints the phase
/// and critical-path summaries under `label` (--trace-report) and writes the
/// chrome trace JSON (--trace-out; the last reported run wins). No-op for
/// untraced runs.
inline void report_trace(const fxpar::machine::RunResult& res, const std::string& label) {
  if (!res.trace) return;
  if (options().trace_report) {
    std::printf("--- trace report: %s ---\n", label.c_str());
    std::fputs(fxpar::trace::phase_report(*res.trace).to_string().c_str(), stdout);
    std::fputs(fxpar::trace::critical_path(*res.trace).to_string().c_str(), stdout);
  }
  if (!options().trace_out.empty()) {
    try {
      fxpar::trace::write_chrome_trace(*res.trace, options().trace_out);
    } catch (const std::exception& e) {
      std::cerr << "--trace-out: " << e.what() << '\n';
    }
  }
}

/// Writes the run's metrics snapshot to the --metrics-out sink (the last
/// reported run wins, mirroring --trace-out). The format follows the file
/// extension: `.json` gets the JSON object, anything else the Prometheus
/// text exposition; `-` prints the exposition to stdout. No-op when the
/// flag was not given or the run carried no snapshot (--metrics off).
inline void report_metrics(const fxpar::machine::RunResult& res) {
  const std::string& path = options().metrics_out;
  if (path.empty() || !res.metrics) return;
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string body = json ? res.metrics->to_json() : res.metrics->to_prometheus();
  if (path == "-") {
    std::fputs(body.c_str(), stdout);
    return;
  }
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    std::cerr << "--metrics-out: cannot write '" << path << "'\n";
    return;
  }
  file << body;
}

/// Runs the mapping algorithm's choice and the DP baseline for one stream
/// application, reproducing one row of Table 1. The throughput constraint
/// is expressed relative to the measured DP throughput (the paper's
/// absolute rates are Paragon-specific; the *relative* demand — e.g. Table 1
/// asks for 8/3.90 = 2.05x the DP rate for 256x256 FFT-Hist — is what the
/// experiment is about).
template <typename T>
void table1_row(const char* name, const char* size_desc,
                const fxpar::machine::MachineConfig& mcfg,
                const std::vector<fxpar::apps::PipelineStage<T>>& stages,
                const fxpar::sched::PipelineModel& model, int num_sets,
                double rel_constraint) {
  using fxpar::apps::run_stream_pipeline;
  namespace sched = fxpar::sched;

  const int S = static_cast<int>(stages.size());
  const auto run_cfg = maybe_traced(apply_backend(mcfg));
  const int procs = run_cfg.num_procs;
  const HostTimer dp_timer;
  const auto dp_stats = run_stream_pipeline<T>(
      run_cfg, stages, {{0, S - 1, procs, 1}}, num_sets);
  const double dp_host_ms = dp_timer.ms();
  const double dp_thr = dp_stats.steady_throughput();
  const double dp_lat = dp_stats.avg_latency();

  // Ask the mapping algorithms (refs [21][22]) for the latency-optimal
  // mapping meeting the throughput constraint. The model's absolute scale
  // differs from the machine's, so the constraint is translated through the
  // model's own DP throughput.
  const auto model_dp = sched::data_parallel_mapping(model, procs);
  const double model_constraint = rel_constraint * model_dp.throughput;
  auto mapping = sched::min_latency_mapping(model, procs, model_constraint);
  if (!mapping.feasible) {
    mapping = sched::max_throughput_mapping(model, procs);
  }
  const HostTimer best_timer;
  const auto best_stats =
      run_stream_pipeline<T>(run_cfg, stages, mapping.modules, num_sets);
  const double best_host_ms = best_timer.ms();

  std::printf("%-10s %-12s | %8.3f %8.4f | %6.2fx | %8.3f %8.4f | %5.2fx %+6.0f%% | %s\n",
              name, size_desc, dp_thr, dp_lat, rel_constraint,
              best_stats.steady_throughput(), best_stats.avg_latency(),
              best_stats.steady_throughput() / dp_thr,
              100.0 * (best_stats.avg_latency() - dp_lat) / dp_lat,
              mapping.to_string(model).c_str());

  const std::string base = std::string(name) + "/" + size_desc;
  json_record(base + "/dp",
              {{"app", name}, {"size", size_desc},
               {"procs", std::to_string(procs)},
               {"num_sets", std::to_string(num_sets)},
               {"mapping", "data-parallel"}},
              dp_stats.machine_result, dp_host_ms);
  json_record(base + "/mapped",
              {{"app", name}, {"size", size_desc},
               {"procs", std::to_string(procs)},
               {"num_sets", std::to_string(num_sets)},
               {"constraint", std::to_string(rel_constraint)},
               {"mapping", mapping.to_string(model)}},
              best_stats.machine_result, best_host_ms);
  report_trace(best_stats.machine_result, base);
  report_metrics(best_stats.machine_result);
}

}  // namespace fxbench
