// Frontend-fidelity bench: the same two-stage pipelined program written in
// the fxlang directive language and in the C++ DSL must produce the same
// *modeled* execution (same machine time, same communication volume) —
// evidence that the language layer adds semantics, not hidden costs, just
// as the paper's directives "do not introduce any new semantics".
#include <cstdio>

#include "core/fx.hpp"
#include "lang/interp.hpp"

using namespace fxpar;
namespace ds = fxpar::dist;

namespace {

constexpr int kProcs = 8;
constexpr int kSets = 6;
constexpr std::int64_t kN = 256;

const char* kFxSource = R"(
INTEGER i
TASK_PARTITION part :: producer(NPROCS()/2), consumer(NPROCS() - NPROCS()/2)
ARRAY a(256), b(256)
SUBGROUP(producer) :: a
SUBGROUP(consumer) :: b
DISTRIBUTE a(BLOCK), b(CYCLIC)
BEGIN TASK_REGION part
DO i = 1, 6
  ON SUBGROUP producer
    a = INDEX(1) * i
  END ON
  b = a
  ON SUBGROUP consumer
    b = b * 2 + 1
  END ON
END DO
END TASK_REGION
)";

machine::RunResult run_dsl(const MachineConfig& mcfg) {
  Machine machine(mcfg);
  return machine.run([&](Context& ctx) {
    core::TaskPartition part(
        ctx, {{"producer", ctx.nprocs() / 2}, {"consumer", ctx.nprocs() - ctx.nprocs() / 2}},
        "part");
    auto a = core::subgroup_array<double>(ctx, part, "producer", {kN},
                                          {ds::DimDist::block()}, "a");
    auto b = core::subgroup_array<double>(ctx, part, "consumer", {kN},
                                          {ds::DimDist::cyclic()}, "b");
    core::TaskRegion region(ctx, part);
    core::Replicated<int> i(ctx, 1);
    for (int k = 1; k <= kSets; ++k) {
      region.on("producer", [&] {
        const double iv = i.value();
        a.fill([&](std::span<const std::int64_t> g) {
          return static_cast<double>(g[0]) * iv;
        });
        // Match the interpreter's charge: ops-per-element x elements.
        ctx.charge_flops(3.0 * static_cast<double>(a.local().size()));
      });
      ds::assign(ctx, b, a);
      region.on("consumer", [&] {
        for (double& v : b.local()) v = v * 2 + 1;
        ctx.charge_flops(5.0 * static_cast<double>(b.local().size()));
      });
      i.increment();
    }
  });
}

}  // namespace

int main() {
  const auto mcfg = MachineConfig::paragon(kProcs);

  const auto lang_res = lang::run_source(mcfg, kFxSource);
  const auto dsl_res = run_dsl(mcfg);

  std::printf("Frontend fidelity: two-stage pipeline, %d procs, %d data sets, n=%lld\n\n",
              kProcs, kSets, static_cast<long long>(kN));
  std::printf("  %-22s %14s %10s %12s %9s\n", "", "makespan", "messages", "bytes",
              "barriers");
  std::printf("  %-22s %12.6f s %10llu %12llu %9llu\n", "fxlang (interpreted)",
              lang_res.machine_result.finish_time,
              static_cast<unsigned long long>(lang_res.machine_result.messages),
              static_cast<unsigned long long>(lang_res.machine_result.bytes),
              static_cast<unsigned long long>(lang_res.machine_result.barriers));
  std::printf("  %-22s %12.6f s %10llu %12llu %9llu\n", "C++ DSL",
              dsl_res.finish_time, static_cast<unsigned long long>(dsl_res.messages),
              static_cast<unsigned long long>(dsl_res.bytes),
              static_cast<unsigned long long>(dsl_res.barriers));
  const double dt = lang_res.machine_result.finish_time / dsl_res.finish_time;
  std::printf("\n  makespan ratio (lang / DSL): %.3f\n", dt);
  std::printf("  identical communication: %s\n",
              (lang_res.machine_result.messages == dsl_res.messages &&
               lang_res.machine_result.bytes == dsl_res.bytes)
                  ? "yes"
                  : "NO (investigate)");
  return 0;
}
