// Ablations of the Section 4 implementation choices the paper argues for:
//
//   (a) replicating unmapped scalars (loop induction variables) vs the
//       owner-computes-and-broadcasts alternative the paper rejects;
//   (b) the subset-barrier handshake on array assignment (bounded pipeline
//       run-ahead) vs pure unbounded deposits;
//   (c) minimal-processor-subset identification for parent-scope statements
//       vs conservatively synchronizing all current processors.
//
// Each ablation runs the same program both ways on the same simulated
// machine and reports the timing difference.
#include <cstdio>

#include "apps/ffthist.hpp"
#include "core/fx.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;
namespace ds = fxpar::dist;

namespace {

// (a) A two-stage pipelined loop whose induction variable is maintained in
// the given replication mode. With OwnerBroadcast every iteration contains
// a group-wide broadcast from the owner, which re-couples the subgroups and
// destroys pipelining (the paper: "leads to unnecessary synchronization
// that prevents pipelined task parallelism between loop iterations").
double induction_variable_run(core::ReplicationMode mode, int procs, int iters) {
  Machine machine(MachineConfig::paragon(procs));
  const double stage_work = 5e-3;
  auto res = machine.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"A", ctx.nprocs() / 2}, {"B", ctx.nprocs() / 2}});
    auto buf_a = core::subgroup_array<double>(ctx, part, "A", {64}, {ds::DimDist::block()});
    auto buf_b = core::subgroup_array<double>(ctx, part, "B", {64}, {ds::DimDist::block()});
    core::TaskRegion region(ctx, part);
    core::Replicated<int> i(ctx, 0, mode);
    while (i.value() < iters) {
      region.on("A", [&] {
        buf_a.fill_value(static_cast<double>(i.value()));
        ctx.charge(stage_work);
      });
      ds::assign(ctx, buf_b, buf_a);
      region.on("B", [&] { ctx.charge(stage_work); });
      i.increment();
    }
  });
  return res.finish_time;
}

// (b) A producer/consumer pipeline with a slow consumer, run with the
// default synchronized assignment and with unbounded deposits.
struct SyncAblation {
  double makespan;
  double max_queue_latency;  ///< worst production-to-consumption delay
};

SyncAblation assign_sync_run(ds::AssignSync sync, int iters) {
  Machine machine(MachineConfig::paragon(4));
  const double produce = 2e-3, consume = 6e-3;
  std::vector<double> produced(static_cast<std::size_t>(iters)),
      consumed(static_cast<std::size_t>(iters));
  auto res = machine.run([&](Context& ctx) {
    core::TaskPartition part(ctx, {{"prod", 2}, {"cons", 2}});
    auto a = core::subgroup_array<double>(ctx, part, "prod", {64}, {ds::DimDist::block()});
    auto b = core::subgroup_array<double>(ctx, part, "cons", {64}, {ds::DimDist::block()});
    core::TaskRegion region(ctx, part);
    for (int k = 0; k < iters; ++k) {
      region.on("prod", [&] {
        ctx.charge(produce);
        produced[static_cast<std::size_t>(k)] = ctx.now();
      });
      ds::assign(ctx, b, a, sync);
      region.on("cons", [&] {
        ctx.charge(consume);
        consumed[static_cast<std::size_t>(k)] = ctx.now();
      });
    }
  });
  double worst = 0.0;
  for (int k = 0; k < iters; ++k) {
    worst = std::max(worst, consumed[static_cast<std::size_t>(k)] -
                                produced[static_cast<std::size_t>(k)]);
  }
  return {res.finish_time, worst};
}

// (c) The FFT-Hist pipeline, optionally with a whole-machine barrier after
// every parent-scope handoff — what execution looks like when the
// implementation cannot identify minimal processor subsets and must
// conservatively involve everyone in every statement.
double minimal_subsets_run(bool conservative, int procs, const ap::FftHistConfig& cfg) {
  Machine machine(MachineConfig::paragon(procs));
  const auto stages = ap::ffthist_stages(cfg);
  const int third = procs / 3;
  auto res = machine.run([&](Context& ctx) {
    core::TaskPartition part(
        ctx, {{"G1", third}, {"G2", third}, {"G3", ctx.nprocs() - 2 * third}});
    const auto& g1 = part.subgroup("G1");
    const auto& g2 = part.subgroup("G2");
    const auto& g3 = part.subgroup("G3");
    ds::DistArray<ap::Complex> a1(ctx, stages[0].in_layout(g1), "A1");
    ds::DistArray<ap::Complex> a1o(ctx, stages[0].out_layout(g1), "A1o");
    ds::DistArray<ap::Complex> a2(ctx, stages[1].in_layout(g2), "A2");
    ds::DistArray<ap::Complex> a2o(ctx, stages[1].out_layout(g2), "A2o");
    ds::DistArray<ap::Complex> a3(ctx, stages[2].in_layout(g3), "A3");
    ds::DistArray<ap::Complex> a3o(ctx, stages[2].out_layout(g3), "A3o");
    core::TaskRegion region(ctx, part);
    for (int k = 0; k < cfg.num_sets; ++k) {
      region.on("G1", [&] { stages[0].run(ctx, a1, a1o, k); });
      ds::assign(ctx, a2, a1o);
      if (conservative) ctx.barrier();  // everyone synchronizes at the statement
      region.on("G2", [&] { stages[1].run(ctx, a2, a2o, k); });
      ds::assign(ctx, a3, a2o);
      if (conservative) ctx.barrier();
      region.on("G3", [&] { stages[2].run(ctx, a3, a3o, k); });
    }
  });
  return res.finish_time;
}

}  // namespace

int main() {
  std::printf("Ablations of the paper's Section 4 implementation choices\n\n");

  {
    const int iters = 24;
    const double repl = induction_variable_run(core::ReplicationMode::Replicate, 8, iters);
    const double bcast =
        induction_variable_run(core::ReplicationMode::OwnerBroadcast, 8, iters);
    std::printf("(a) loop induction variable, %d pipelined iterations on 8 procs\n", iters);
    std::printf("    replicated scalar (paper)    : %8.4f s\n", repl);
    std::printf("    owner computes + broadcast   : %8.4f s   (%.2fx slower)\n\n", bcast,
                bcast / repl);
  }

  {
    const int iters = 24;
    const auto barrier = assign_sync_run(ds::AssignSync::SubsetBarrier, iters);
    const auto none = assign_sync_run(ds::AssignSync::None, iters);
    std::printf("(b) assignment handshake, slow consumer, %d data sets\n", iters);
    std::printf("    subset-barrier deposit (default): makespan %8.4f s, worst queueing %8.4f s\n",
                barrier.makespan, barrier.max_queue_latency);
    std::printf("    unbounded deposit               : makespan %8.4f s, worst queueing %8.4f s\n",
                none.makespan, none.max_queue_latency);
    std::printf("    (deposits without the handshake let the producer run arbitrarily far\n"
                "     ahead: same makespan, unbounded buffering and per-set latency)\n\n");
  }

  {
    ap::FftHistConfig cfg;
    cfg.n = 128;
    cfg.num_sets = 12;
    const double minimal = minimal_subsets_run(false, 12, cfg);
    const double conservative = minimal_subsets_run(true, 12, cfg);
    std::printf("(c) minimal processor subsets, 3-stage FFT-Hist pipeline (n=%lld, 12 procs)\n",
                static_cast<long long>(cfg.n));
    std::printf("    minimal subsets (paper)      : %8.4f s\n", minimal);
    std::printf("    all procs at every statement : %8.4f s   (%.2fx slower)\n", conservative,
                conservative / minimal);
    std::printf("    (without subset identification the non-participating subgroups wait at\n"
                "     every assignment and pipelining across iterations disappears)\n");
  }
  return 0;
}
