// Reproduces the Barnes-Hut claims of Section 5.3 / Figure 7:
//   (1) the nested task parallel force computation scales: expected running
//       time O((n/p) log n);
//   (2) the total worklist grows like O(n^(2/3)) for uniform particles;
//   (3) the worklist shrinks as the number of replicated tree levels k
//       rises (k should be at least log2(p), within a small multiple of it).
// Forces are verified bit-exact against the sequential traversal.
#include <cmath>
#include <cstdio>

#include "apps/barneshut.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;

namespace {

std::int64_t total_wl(const ap::BhResult& r) {
  std::int64_t t = 0;
  for (auto v : r.worklist_per_level) t += v;
  return t;
}

MachineConfig mcfg(int p) {
  auto c = MachineConfig::paragon(p);
  c.stack_bytes = 1 << 20;
  return c;
}

}  // namespace

int main() {
  std::printf("Figure 7 / Section 5.3 — Barnes-Hut with nested task parallelism\n\n");

  // (1) Scaling with processors.
  {
    ap::BhConfig cfg;
    cfg.n = 16384;
    cfg.theta = 1.0;
    cfg.k_repl = 12;
    const auto ref = ap::barneshut_reference(cfg);
    std::printf("(1) scaling, n=%lld, theta=%.1f, k=%d\n",
                static_cast<long long>(cfg.n), cfg.theta, cfg.k_repl);
    std::printf("    %5s | %10s | %8s | %10s\n", "procs", "time", "speedup", "worklist");
    double t1 = 0.0;
    for (int p : {1, 2, 4, 8, 16, 32, 64}) {
      const auto res = ap::run_barneshut(mcfg(p), cfg);
      if (res.forces != ref) {
        std::fprintf(stderr, "VERIFICATION FAILED at p=%d\n", p);
        return 1;
      }
      if (p == 1) t1 = res.makespan;
      std::printf("    %5d | %8.4f s | %7.2fx | %10lld\n", p, res.makespan, t1 / res.makespan,
                  static_cast<long long>(total_wl(res)));
    }
  }

  // (2) Worklist growth with n.
  {
    ap::BhConfig cfg;
    cfg.theta = 1.0;
    cfg.k_repl = 14;
    std::printf("\n(2) total worklist vs n (p=8; paper expects O(n^(2/3)))\n");
    std::printf("    %8s | %10s | %10s | %s\n", "n", "worklist", "wl/n", "growth exp.");
    std::int64_t prev_wl = 0;
    std::int64_t prev_n = 0;
    for (std::int64_t n : {4096, 8192, 16384, 32768, 65536}) {
      cfg.n = n;
      const auto res = ap::run_barneshut(mcfg(8), cfg);
      const auto wl = total_wl(res);
      if (prev_wl > 0) {
        const double exp_fit = std::log(static_cast<double>(wl) / prev_wl) /
                               std::log(static_cast<double>(n) / prev_n);
        std::printf("    %8lld | %10lld | %10.3f | %.2f\n", static_cast<long long>(n),
                    static_cast<long long>(wl), static_cast<double>(wl) / n, exp_fit);
      } else {
        std::printf("    %8lld | %10lld | %10.3f |  -\n", static_cast<long long>(n),
                    static_cast<long long>(wl), static_cast<double>(wl) / n);
      }
      prev_wl = wl;
      prev_n = n;
    }
  }

  // (3) Worklist vs replicated levels k.
  {
    ap::BhConfig cfg;
    cfg.n = 16384;
    cfg.theta = 1.0;
    std::printf("\n(3) total worklist vs replicated levels k (n=%lld, p=8, log2 p = 3)\n",
                static_cast<long long>(cfg.n));
    std::printf("    %4s | %10s | %10s\n", "k", "worklist", "time");
    for (int k : {0, 2, 4, 6, 8, 10, 12, 14}) {
      cfg.k_repl = k;
      const auto res = ap::run_barneshut(mcfg(8), cfg);
      std::printf("    %4d | %10lld | %8.4f s\n", k, static_cast<long long>(total_wl(res)),
                  res.makespan);
    }
  }

  std::printf("\nShape targets (paper): near-linear speedup in p; sub-linear (~n^(2/3))\n"
              "worklist growth; monotone worklist reduction as k grows beyond log2(p).\n");
  return 0;
}
