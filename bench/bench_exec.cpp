// Backend comparison bench: runs the same compute-heavy stream pipeline on
// the discrete-event simulator and on the threaded shared-memory backend
// (src/exec/), verifies the outputs match (the determinism contract of
// docs/execution.md), and reports real host time for both. The simulator
// executes every processor's work serially on one host core; the threaded
// backend runs one OS thread per logical processor, so on a multi-core
// host its host_ms shows real parallel speedup.
//
//   bench_exec [--threads N] [--sets K] [--json-out FILE|-]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/stream_pipeline.hpp"
#include "bench/bench_common.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;
namespace ds = fxpar::dist;

namespace {

constexpr std::int64_t kN = 1 << 14;  // elements per data set
constexpr int kIters = 40;            // transcendental iterations per element

double heavy(double x) {
  double acc = x;
  for (int it = 0; it < kIters; ++it) {
    acc = std::fma(acc, 1.0000001, std::sin(acc) * 1e-3);
  }
  return acc;
}

struct ExecRun {
  ap::StreamStats stats;
  double host_ms = 0.0;
  std::vector<std::vector<double>> checks;  ///< vrank-0 block checksum per set
};

ExecRun run_pipeline(exec::BackendKind kind, int procs, int sets) {
  auto cfg = MachineConfig::paragon(procs);
  cfg.backend = kind;

  ExecRun out;
  out.checks.assign(static_cast<std::size_t>(sets), {});

  std::vector<ap::PipelineStage<double>> stages(2);
  auto block = [](const ProcessorGroup& g) {
    return ds::Layout(g, {kN}, {ds::DimDist::block()});
  };
  stages[0].name = "gen";
  stages[0].in_layout = stages[0].out_layout = block;
  stages[0].run = [](machine::Context& ctx, ds::DistArray<double>&,
                     ds::DistArray<double>& o, int k) {
    o.fill([k](std::span<const std::int64_t> gi) {
      return heavy(static_cast<double>(gi[0]) * 1e-3 + static_cast<double>(k));
    });
    ctx.charge(1e-7 * static_cast<double>(kN) * kIters);
  };
  stages[1].name = "xform";
  stages[1].in_layout = stages[1].out_layout = block;
  stages[1].run = [&out](machine::Context& ctx, ds::DistArray<double>& in,
                         ds::DistArray<double>& o, int k) {
    const auto src = in.local();
    const auto dst = o.local();
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = heavy(src[i]);
    ctx.charge(1e-7 * static_cast<double>(kN) * kIters);
    // The vrank-0 block is the same data on either backend: record it as
    // the parity witness.
    if (in.layout().group().virtual_of(ctx.phys_rank()) == 0) {
      out.checks[static_cast<std::size_t>(k)].assign(dst.begin(), dst.end());
    }
  };

  const fxbench::HostTimer timer;
  out.stats = ap::run_stream_pipeline<double>(cfg, stages, {{0, 1, procs, 1}}, sets);
  out.host_ms = (kind == exec::BackendKind::Threads) ? out.stats.machine_result.host_ms
                                                     : timer.ms();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fxbench::init(argc, argv);
  int procs = fxbench::options().threads > 0 ? fxbench::options().threads : 4;
  int sets = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--sets" && i + 1 < argc) sets = std::atoi(argv[i + 1]);
  }

  std::printf("exec backend comparison: stream pipeline, %d procs, %d sets, n=%lld, "
              "%d iters/element\n",
              procs, sets, static_cast<long long>(kN), kIters);

  const auto sim = run_pipeline(exec::BackendKind::Sim, procs, sets);
  const auto thr = run_pipeline(exec::BackendKind::Threads, procs, sets);

  bool parity = true;
  for (int k = 0; k < sets; ++k) {
    if (sim.checks[static_cast<std::size_t>(k)] != thr.checks[static_cast<std::size_t>(k)]) {
      parity = false;
      std::printf("PARITY MISMATCH at data set %d\n", k);
    }
  }
  if (parity) std::printf("parity: outputs bit-identical on both backends\n");

  std::printf("  sim     host %8.1f ms  (modeled makespan %.4f s)\n", sim.host_ms,
              sim.stats.makespan);
  std::printf("  threads host %8.1f ms  (blocked %.1f ms across %d workers)\n",
              thr.host_ms, thr.stats.machine_result.wait_ms, procs);
  const double speedup = thr.host_ms > 0.0 ? sim.host_ms / thr.host_ms : 0.0;
  std::printf("  threads vs sim host speedup: %.2fx\n", speedup);

  const std::vector<std::pair<std::string, std::string>> params = {
      {"app", "synthetic-stream"},
      {"procs", std::to_string(procs)},
      {"num_sets", std::to_string(sets)},
      {"parity", parity ? "ok" : "MISMATCH"}};
  fxbench::json_record("exec/stream/sim", params, sim.stats.machine_result, sim.host_ms);
  fxbench::json_record("exec/stream/threads", params, thr.stats.machine_result,
                       thr.host_ms);

  return parity ? 0 : 1;
}
