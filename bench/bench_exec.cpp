// Backend comparison bench: runs the same compute-heavy stream pipeline on
// the discrete-event simulator and on the threaded shared-memory backend
// (src/exec/), verifies the outputs match (the determinism contract of
// docs/execution.md), and reports real host time for both. The simulator
// executes every processor's work serially on one host core; the threaded
// backend runs one OS thread per logical processor, so on a multi-core
// host its host_ms shows real parallel speedup.
//
//   bench_exec [--threads N] [--sets K] [--pinning POLICY]
//              [--work-stealing on|off] [--metrics on|off] [--json-out FILE|-]
//              [--flight-compare] [--obs-port N] [--flight-recorder on|off]
//              [--backend proc --transport shm|tcp]
//
// --backend proc adds a third leg: the same stream pipeline on the
// process-per-rank backend over the chosen transport, parity-checked
// against the simulator and recorded as exec/stream/proc (no gate).
//
// --flight-compare additionally A/Bs the threaded stream run with the
// flight recorder off vs on and records the host-time ratio; the obs-smoke
// CI gates it at <= 5% overhead.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/stream_pipeline.hpp"
#include "bench/bench_common.hpp"
#include "core/parallel_loop.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;
namespace ds = fxpar::dist;

namespace {

constexpr std::int64_t kN = 1 << 14;  // elements per data set
constexpr int kIters = 40;            // transcendental iterations per element

double heavy(double x) {
  double acc = x;
  for (int it = 0; it < kIters; ++it) {
    acc = std::fma(acc, 1.0000001, std::sin(acc) * 1e-3);
  }
  return acc;
}

struct ExecRun {
  ap::StreamStats stats;
  double host_ms = 0.0;
  std::vector<std::vector<double>> checks;  ///< vrank-0 block checksum per set
};

ExecRun run_pipeline(exec::BackendKind kind, int procs, int sets) {
  auto cfg = fxbench::apply_tuning(MachineConfig::paragon(procs));
  cfg.backend = kind;
  cfg.transport = fxbench::options().transport == "tcp" ? exec::TransportKind::Tcp
                                                        : exec::TransportKind::Shm;

  ExecRun out;
  out.checks.assign(static_cast<std::size_t>(sets), {});

  std::vector<ap::PipelineStage<double>> stages(2);
  auto block = [](const ProcessorGroup& g) {
    return ds::Layout(g, {kN}, {ds::DimDist::block()});
  };
  stages[0].name = "gen";
  stages[0].in_layout = stages[0].out_layout = block;
  stages[0].run = [](machine::Context& ctx, ds::DistArray<double>&,
                     ds::DistArray<double>& o, int k) {
    o.fill([k](std::span<const std::int64_t> gi) {
      return heavy(static_cast<double>(gi[0]) * 1e-3 + static_cast<double>(k));
    });
    ctx.charge(1e-7 * static_cast<double>(kN) * kIters);
  };
  stages[1].name = "xform";
  stages[1].in_layout = stages[1].out_layout = block;
  stages[1].run = [&out](machine::Context& ctx, ds::DistArray<double>& in,
                         ds::DistArray<double>& o, int k) {
    const auto src = in.local();
    const auto dst = o.local();
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = heavy(src[i]);
    ctx.charge(1e-7 * static_cast<double>(kN) * kIters);
    // The vrank-0 block is the same data on either backend: record it as
    // the parity witness.
    if (in.layout().group().virtual_of(ctx.phys_rank()) == 0) {
      out.checks[static_cast<std::size_t>(k)].assign(dst.begin(), dst.end());
    }
  };

  const fxbench::HostTimer timer;
  out.stats = ap::run_stream_pipeline<double>(cfg, stages, {{0, 1, procs, 1}}, sets);
  out.host_ms = (kind == exec::BackendKind::Sim) ? timer.ms()
                                                 : out.stats.machine_result.host_ms;
  return out;
}

// ---------------------------------------------------------------------------
// Imbalanced-loop A/B: work stealing on vs off.
//
// Every heavy iteration lands in the first quarter of the index space —
// i.e. entirely inside proc 0's static block — so without stealing the
// other workers idle while proc 0 grinds, and with stealing they drain
// chunks of proc 0's deque. The perf-smoke CI gate asserts the stealing
// run beats the static run by >= 1.3x host time on 4 threads; here we also
// verify the outputs are bit-identical (the determinism contract).

constexpr std::int64_t kImbN = 1 << 15;  // loop iterations
constexpr int kHeavyReps = 24;           // heavy() calls per hot iteration

struct ImbalanceRun {
  machine::RunResult res;
  std::vector<double> out;
};

ImbalanceRun run_imbalanced(exec::BackendKind kind, int procs, bool stealing) {
  auto cfg = fxbench::apply_tuning(MachineConfig::paragon(procs));
  cfg.backend = kind;
  cfg.work_stealing = stealing;  // the A/B legs own this toggle, not the CLI
  machine::Machine m(cfg);
  ImbalanceRun r;
  r.out.assign(static_cast<std::size_t>(kImbN), 0.0);
  double* out = r.out.data();
  r.res = m.run([out](machine::Context& ctx) {
    core::parallel_for(ctx, 0, kImbN, [out](std::int64_t i) {
      const int reps = i < kImbN / 4 ? kHeavyReps : 1;
      double acc = static_cast<double>(i) * 1e-3;
      for (int rp = 0; rp < reps; ++rp) acc = heavy(acc);
      out[i] = acc;
    });
  });
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  fxbench::init(argc, argv);
  int procs = fxbench::options().threads > 0 ? fxbench::options().threads : 4;
  int sets = 8;
  bool flight_compare = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--sets" && i + 1 < argc) sets = std::atoi(argv[i + 1]);
    if (std::string(argv[i]) == "--flight-compare") flight_compare = true;
  }

  std::printf("exec backend comparison: stream pipeline, %d procs, %d sets, n=%lld, "
              "%d iters/element\n",
              procs, sets, static_cast<long long>(kN), kIters);

  const auto sim = run_pipeline(exec::BackendKind::Sim, procs, sets);
  const auto thr = run_pipeline(exec::BackendKind::Threads, procs, sets);

  bool parity = true;
  for (int k = 0; k < sets; ++k) {
    if (sim.checks[static_cast<std::size_t>(k)] != thr.checks[static_cast<std::size_t>(k)]) {
      parity = false;
      std::printf("PARITY MISMATCH at data set %d\n", k);
    }
  }
  if (parity) std::printf("parity: outputs bit-identical on both backends\n");

  std::printf("  sim     host %8.1f ms  (modeled makespan %.4f s)\n", sim.host_ms,
              sim.stats.makespan);
  std::printf("  threads host %8.1f ms  (blocked %.1f ms across %d workers)\n",
              thr.host_ms, thr.stats.machine_result.wait_ms, procs);
  const double speedup = thr.host_ms > 0.0 ? sim.host_ms / thr.host_ms : 0.0;
  std::printf("  threads vs sim host speedup: %.2fx\n", speedup);

  const std::vector<std::pair<std::string, std::string>> params = {
      {"app", "synthetic-stream"},
      {"procs", std::to_string(procs)},
      {"num_sets", std::to_string(sets)},
      {"parity", parity ? "ok" : "MISMATCH"}};
  fxbench::json_record("exec/stream/sim", params, sim.stats.machine_result, sim.host_ms);
  fxbench::json_record("exec/stream/threads", params, thr.stats.machine_result,
                       thr.host_ms);

  // ---- process backend leg (--backend proc): parity + host-time record ----
  // No speedup gate: a fork per rank plus real message transport is not
  // expected to beat threads; the record tracks its cost over time and the
  // parity bit proves the determinism contract across address spaces.
  if (fxbench::options().backend == "proc") {
    const auto prc = run_pipeline(exec::BackendKind::Proc, procs, sets);
    bool proc_parity = true;
    for (int k = 0; k < sets; ++k) {
      if (sim.checks[static_cast<std::size_t>(k)] !=
          prc.checks[static_cast<std::size_t>(k)]) {
        proc_parity = false;
        std::printf("PROC PARITY MISMATCH at data set %d\n", k);
      }
    }
    std::printf("  proc/%s host %8.1f ms  (blocked %.1f ms across %d ranks)%s\n",
                fxbench::options().transport.c_str(), prc.host_ms,
                prc.stats.machine_result.wait_ms, procs,
                proc_parity ? "" : "  PARITY MISMATCH");
    auto proc_params = params;
    proc_params[3] = {"parity", proc_parity ? "ok" : "MISMATCH"};
    fxbench::json_record("exec/stream/proc", proc_params, prc.stats.machine_result,
                         prc.host_ms);
    parity = parity && proc_parity;
  }

  // ---- imbalanced parallel loop: stealing on vs off (threads) vs sim ----
  // Best-of-3 host times for the threaded runs: the A/B ratio feeds a CI
  // gate on shared runners, so take the fastest of three runs of each
  // configuration to damp scheduler noise. Outputs are deterministic, so
  // any run is a valid parity witness.
  const auto best_threads = [procs](bool stealing) {
    auto best = run_imbalanced(exec::BackendKind::Threads, procs, stealing);
    for (int rep = 1; rep < 3; ++rep) {
      auto r = run_imbalanced(exec::BackendKind::Threads, procs, stealing);
      if (r.res.host_ms < best.res.host_ms) best = std::move(r);
    }
    return best;
  };
  const auto steal = best_threads(true);
  const auto nosteal = best_threads(false);
  const auto imb_sim = run_imbalanced(exec::BackendKind::Sim, procs, true);
  const bool imb_parity = steal.out == nosteal.out && steal.out == imb_sim.out;
  std::printf("imbalanced loop (%lld iters, heavy first quarter, %d threads):\n",
              static_cast<long long>(kImbN), procs);
  std::printf("  stealing on   host %8.1f ms  (%llu chunks / %llu iters stolen)\n",
              steal.res.host_ms, static_cast<unsigned long long>(steal.res.steals),
              static_cast<unsigned long long>(steal.res.stolen_iters));
  std::printf("  stealing off  host %8.1f ms\n", nosteal.res.host_ms);
  const double imb_speedup =
      steal.res.host_ms > 0.0 ? nosteal.res.host_ms / steal.res.host_ms : 0.0;
  std::printf("  stealing speedup: %.2fx; outputs %s\n", imb_speedup,
              imb_parity ? "bit-identical across backends and A/B" : "MISMATCH");

  const std::vector<std::pair<std::string, std::string>> imb_base = {
      {"app", "imbalanced-loop"},
      {"procs", std::to_string(procs)},
      {"n", std::to_string(kImbN)},
      {"parity", imb_parity ? "ok" : "MISMATCH"}};
  auto with_ws = [&imb_base](const char* v) {
    auto p = imb_base;
    p.emplace_back("work_stealing", v);
    return p;
  };
  fxbench::json_record("exec/imbalance/steal", with_ws("on"), steal.res, steal.res.host_ms);
  fxbench::json_record("exec/imbalance/nosteal", with_ws("off"), nosteal.res,
                       nosteal.res.host_ms);

  // ---- flight recorder A/B: off vs on on the threaded stream run ----
  // Same best-of-3 discipline as the stealing gate: the ratio feeds the
  // obs-smoke CI gate (<= 5% overhead), so damp scheduler noise. The legs
  // own the toggle via the shared options (run_pipeline routes its config
  // through apply_tuning).
  if (flight_compare) {
    const int saved = fxbench::options().flight_recorder;
    auto best_stream = [procs, sets](int flight) {
      fxbench::options().flight_recorder = flight;
      auto best = run_pipeline(exec::BackendKind::Threads, procs, sets);
      for (int rep = 1; rep < 3; ++rep) {
        auto r = run_pipeline(exec::BackendKind::Threads, procs, sets);
        if (r.host_ms < best.host_ms) best = std::move(r);
      }
      return best;
    };
    const auto off = best_stream(0);
    const auto on = best_stream(1);
    fxbench::options().flight_recorder = saved;
    const double overhead = off.host_ms > 0.0 ? on.host_ms / off.host_ms : 0.0;
    std::printf("flight recorder A/B (threads, %d procs, %d sets):\n", procs, sets);
    std::printf("  recorder off  host %8.1f ms\n", off.host_ms);
    std::printf("  recorder on   host %8.1f ms\n", on.host_ms);
    std::printf("  overhead: %.3fx\n", overhead);
    const std::vector<std::pair<std::string, std::string>> fl_base = {
        {"app", "synthetic-stream"},
        {"procs", std::to_string(procs)},
        {"num_sets", std::to_string(sets)}};
    auto with_fl = [&fl_base](const char* v) {
      auto p = fl_base;
      p.emplace_back("flight_recorder", v);
      return p;
    };
    fxbench::json_record("exec/flight/off", with_fl("off"), off.stats.machine_result,
                         off.host_ms);
    fxbench::json_record("exec/flight/on", with_fl("on"), on.stats.machine_result,
                         on.host_ms);
  }

  // The threaded stream run is the interesting snapshot: it has steals,
  // loop latencies and real message counts.
  fxbench::report_metrics(thr.stats.machine_result);

  return parity && imb_parity ? 0 : 1;
}
