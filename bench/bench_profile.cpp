// Measured performance-model profiler sweep (src/metrics/profiler.hpp).
//
// Sweeps three runtime patterns — block->cyclic redistribution, ghost-row
// halo exchange, and a data parallel loop — across problem sizes and
// processor counts, records the measured time of each configuration into a
// metrics::ProfileStore, fits the scaling bases (a + b*n, a + b*n*log2 n,
// a + b*n/p) by least squares and prints the modeled-vs-measured report.
// The "modeled" column is the discrete-event simulator's prediction for
// the identical program, i.e. the static cost model the fits calibrate.
//
//   bench_profile [--backend sim|threads] [--threads N] [--json-out FILE|-]
//                 [--profile-json FILE]
//
// The measured side defaults to the threaded backend (real time); pass
// --backend sim to profile modeled time against itself (useful for
// checking that the fitter recovers the model's own scaling).
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/fx.hpp"
#include "core/parallel_loop.hpp"
#include "dist/halo.hpp"
#include "dist/redistribute.hpp"
#include "metrics/profiler.hpp"

using namespace fxpar;
namespace ds = fxpar::dist;

namespace {

// Repetitions per timed run: one redistribution of 2^12 doubles is far too
// fast to time on threads, so every configuration runs kIters times inside
// one machine run and reports seconds-per-iteration.
constexpr int kIters = 12;

machine::MachineConfig cfg_for(exec::BackendKind kind, int procs) {
  auto cfg = MachineConfig::paragon(procs);
  cfg.backend = kind;
  if (fxbench::options().metrics >= 0) {
    cfg.metrics = fxbench::options().metrics != 0;
  }
  return cfg;
}

/// Runs `body` (which must execute the pattern kIters times) on `kind` and
/// returns seconds per iteration: modeled finish time on the simulator,
/// real elapsed time on the threaded backend (RunResult::finish_time is the
/// max worker clock in both cases, in the backend's own time base).
double timed_run(exec::BackendKind kind, int procs,
                 const std::function<void(machine::Context&)>& body) {
  machine::Machine m(cfg_for(kind, procs));
  const machine::RunResult res = m.run(body);
  return res.finish_time / static_cast<double>(kIters);
}

std::function<void(machine::Context&)> redistribute_body(int procs, std::int64_t n) {
  return [procs, n](machine::Context& ctx) {
    const auto g = pgroup::ProcessorGroup::identity(procs);
    ds::DistArray<double> a(ctx, ds::Layout(g, {n}, {ds::DimDist::block()}), "a");
    ds::DistArray<double> b(ctx, ds::Layout(g, {n}, {ds::DimDist::cyclic()}), "b");
    a.fill([](std::span<const std::int64_t> gi) {
      return static_cast<double>(gi[0]) * 0.5;
    });
    for (int i = 0; i < kIters; ++i) ds::assign(ctx, b, a);
  };
}

std::function<void(machine::Context&)> halo_body(int procs, std::int64_t n) {
  // Shape (2, n, 16), block rows: halo volume is constant per neighbour but
  // the pack/unpack walks the local block, so time still scales with n.
  return [procs, n](machine::Context& ctx) {
    const auto g = pgroup::ProcessorGroup::identity(procs);
    ds::DistArray<double> a(
        ctx,
        ds::Layout(g, {2, n, 16},
                   {ds::DimDist::collapsed(), ds::DimDist::block(), ds::DimDist::collapsed()}),
        "halo_a");
    a.fill([](std::span<const std::int64_t> gi) {
      return static_cast<double>(gi[0] + gi[1] + gi[2]);
    });
    for (int i = 0; i < kIters; ++i) {
      auto h = ds::exchange_row_halo(ctx, a, 1);
      // Touch the result so the exchange cannot be elided.
      if (!h.above.empty() && h.above[0] > 1e300) std::abort();
    }
  };
}

std::function<void(machine::Context&)> loop_body(int procs, std::int64_t n) {
  return [procs, n](machine::Context& ctx) {
    (void)procs;
    std::vector<double> sink(static_cast<std::size_t>(n), 0.0);
    double* out = sink.data();
    for (int i = 0; i < kIters; ++i) {
      core::parallel_for(ctx, 0, n, [out](std::int64_t j) {
        double acc = static_cast<double>(j) * 1e-3;
        for (int r = 0; r < 8; ++r) acc = acc * 1.0000001 + 1e-6;
        out[j] = acc;
      });
      // Loops charge no modeled time by themselves on the simulator; charge
      // the linear work explicitly so the modeled column is meaningful.
      ctx.charge(1e-9 * static_cast<double>(n) * 8.0 /
                 static_cast<double>(ctx.nprocs()));
    }
  };
}

}  // namespace

int main(int argc, char** argv) {
  fxbench::init(argc, argv);
  std::string profile_json;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--profile-json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--profile-json requires an argument\n");
        return 2;
      }
      profile_json = argv[++i];
    }
  }

  const exec::BackendKind measured_kind = fxbench::options().backend == "threads"
                                              ? exec::BackendKind::Threads
                                              : exec::BackendKind::Sim;

  struct Pattern {
    const char* name;
    std::function<std::function<void(machine::Context&)>(int, std::int64_t)> make;
  };
  const std::vector<Pattern> patterns = {
      {"redistribute", redistribute_body},
      {"halo", halo_body},
      {"parallel_for", loop_body},
  };
  const std::vector<int> proc_counts = {2, 4};
  const std::vector<std::int64_t> sizes = {1 << 12, 1 << 13, 1 << 14, 1 << 15};

  std::printf("profiler sweep: measured on '%s', modeled reference on 'sim'\n",
              fxbench::options().backend.c_str());

  metrics::ProfileStore store;
  // (module, procs, n) -> modeled seconds from the simulator run.
  std::map<std::tuple<std::string, int, std::int64_t>, double> modeled;
  for (const Pattern& pat : patterns) {
    for (int procs : proc_counts) {
      for (std::int64_t n : sizes) {
        const auto body = pat.make(procs, n);
        const double measured = timed_run(measured_kind, procs, body);
        store.record(pat.name, procs, n, measured);
        const double model = measured_kind == exec::BackendKind::Sim
                                 ? measured
                                 : timed_run(exec::BackendKind::Sim, procs, body);
        modeled[{pat.name, procs, n}] = model;
        fxbench::json_record(std::string("profile/") + pat.name,
                             {{"module", pat.name},
                              {"procs", std::to_string(procs)},
                              {"n", std::to_string(n)}},
                             measured, 0.0, 0, -1.0, 0, 0,
                             fxbench::options().backend, procs);
      }
    }
  }

  const std::string report = store.report([&](const metrics::Observation& o) {
    const auto it = modeled.find({o.module, o.procs, o.n});
    return it == modeled.end() ? 0.0 : it->second;
  });
  std::fputs(report.c_str(), stdout);

  if (!profile_json.empty()) {
    std::ofstream f(profile_json, std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "--profile-json: cannot write '%s'\n", profile_json.c_str());
      return 1;
    }
    f << store.to_json() << '\n';
  }

  // Sanity for CI: every pattern must have produced a usable fit.
  for (const Pattern& pat : patterns) {
    const metrics::Fit f = store.fit(pat.name);
    if (f.points < static_cast<int>(proc_counts.size() * sizes.size())) {
      std::fprintf(stderr, "fit for '%s' covered %d points, expected %zu\n", pat.name,
                   f.points, proc_counts.size() * sizes.size());
      return 1;
    }
  }
  return 0;
}
