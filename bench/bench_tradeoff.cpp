// Extension study: the full latency-throughput tradeoff curve of ref [22]
// for the FFT-Hist kernel, on the calibrated Paragon-class machine and on a
// modern cluster balance.
//
// The paper's Figure 5 shows three points of this curve; here the Pareto
// frontier is swept automatically and each distinct mapping is validated in
// the simulator. Running the same sweep on a modern machine shows how the
// crossovers move when per-message overheads shrink by three orders of
// magnitude relative to compute: task parallelism stops paying for mid-size
// data sets — which is exactly why this 1997 technique reads differently
// today, and why the *model* (not the specific mappings) is the durable
// contribution.
#include <cstdio>

#include "apps/ffthist.hpp"
#include "sched/tradeoff.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;
namespace sc = fxpar::sched;

namespace {

void sweep(const char* title, const MachineConfig& mcfg, const ap::FftHistConfig& cfg) {
  const auto stages = ap::ffthist_stages(cfg);
  const auto model = ap::ffthist_model(mcfg, cfg);
  const auto curve = sc::latency_throughput_curve(model, mcfg.num_procs, 24);

  std::printf("%s\n", title);
  std::printf("  %10s %10s | %10s %10s | mapping\n", "model thr", "model lat", "sim thr",
              "sim lat");
  for (const auto& pt : curve) {
    const auto stats = ap::run_stream_pipeline<ap::Complex>(mcfg, stages, pt.mapping.modules,
                                                            cfg.num_sets);
    std::printf("  %10.2f %10.4f | %10.2f %10.4f | %s\n", pt.mapping.throughput,
                pt.mapping.latency, stats.steady_throughput(), stats.avg_latency(),
                pt.mapping.to_string(model).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const int P = 64;
  ap::FftHistConfig cfg;
  cfg.n = 256;
  cfg.num_sets = 10;

  std::printf("Latency-throughput tradeoff frontier, FFT-Hist %lldx%lld, %d processors\n\n",
              static_cast<long long>(cfg.n), static_cast<long long>(cfg.n), P);

  sweep("Paragon-class machine (paper's regime):", MachineConfig::paragon(P), cfg);
  sweep("Modern cluster balance (extension study):", MachineConfig::cluster(P), cfg);

  std::printf("Reading: on the Paragon the frontier spans several distinct mappings —\n"
              "pipelining first, replication at the throughput end, with a 2x spread in\n"
              "achievable rate. On the modern balance the frontier is nearly flat (the\n"
              "distinct mappings differ by well under 1%% in rate): at these data set\n"
              "sizes the mapping choice has stopped mattering, because per-message\n"
              "overheads shrank a thousandfold relative to compute.\n");
  return 0;
}
