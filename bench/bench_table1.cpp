// Reproduces Table 1 of the paper: "Performance results on 64 nodes of an
// Intel Paragon" — data parallel vs best task+data parallel mappings of
// FFT-Hist (256x256 and 512x512), narrowband tracking radar, and
// multibaseline stereo, under the paper's throughput constraints.
//
// Paper's rows (for shape comparison; constraints re-expressed relative to
// the measured DP throughput, see EXPERIMENTS.md):
//   FFT-Hist 256x256 : DP 3.90/s @ .256s -> constraint 8    (2.05x): 13.3/s @ .293s (3.4x thr, +14% lat)
//   FFT-Hist 512x512 : DP 1.99/s @ .502s -> constraint 2    (1.01x): 2.48/s @ .807s (1.25x thr, +61% lat)
//   Radar 512x10x4   : DP 23.4/s @ .043s -> constraint 50   (2.14x): 70.2/s @ .043s (3.0x thr, +0% lat)
//   Stereo 256x240   : DP 3.64/s @ .275s -> constraint 10   (2.75x): 11.67/s @ .514s (3.2x thr, +87% lat)
#include <cstdio>

#include "apps/ffthist.hpp"
#include "apps/radar.hpp"
#include "apps/stereo.hpp"
#include "bench/bench_common.hpp"

using namespace fxpar;
namespace ap = fxpar::apps;

int main(int argc, char** argv) {
  fxbench::init(argc, argv);
  const int P = 64;
  const auto mcfg = MachineConfig::paragon(P);
  const int sets = 12;

  std::printf("Table 1 — 64 simulated Paragon nodes (rates in data sets/s, latency in s)\n");
  std::printf("%-10s %-12s | %8s %8s | %6s | %8s %8s | %12s | mapping\n", "program",
              "data set", "DP thr", "DP lat", "constr", "thr", "lat", "gain  dLat");
  std::printf("--------------------------------------------------------------------------"
              "-----------------------------\n");

  {
    ap::FftHistConfig cfg;
    cfg.n = 256;
    cfg.num_sets = sets;
    const auto stages = ap::ffthist_stages(cfg);
    fxbench::table1_row<ap::Complex>("FFT-Hist", "256x256", mcfg, stages,
                                     ap::ffthist_model(mcfg, cfg), sets, 8.0 / 3.90);
  }
  {
    ap::FftHistConfig cfg;
    cfg.n = 512;
    cfg.num_sets = sets;
    const auto stages = ap::ffthist_stages(cfg);
    fxbench::table1_row<ap::Complex>("FFT-Hist", "512x512", mcfg, stages,
                                     ap::ffthist_model(mcfg, cfg), sets, 2.0 / 1.99);
  }
  {
    ap::RadarConfig cfg;  // 512 samples x (10 range gates x 4 beams)
    cfg.samples = 512;
    cfg.channels = 40;
    cfg.num_sets = sets;
    const auto stages = ap::radar_stages(cfg);
    fxbench::table1_row<ap::Complex>("Radar", "512x10x4", mcfg, stages,
                                     ap::radar_model(mcfg, cfg), sets, 50.0 / 23.4);
  }
  {
    ap::StereoConfig cfg;
    cfg.height = 240;
    cfg.width = 256;
    cfg.disparities = 16;
    cfg.num_sets = sets;
    const auto stages = ap::stereo_stages(cfg);
    fxbench::table1_row<float>("Stereo", "256x240", mcfg, stages,
                               ap::stereo_model(mcfg, cfg), sets, 10.0 / 3.64);
  }

  std::printf("\nShape targets from the paper: large throughput gains for the small/\n"
              "parallelism-capped data sets (256^2 FFT-Hist ~3.4x, radar ~3x at equal\n"
              "latency, stereo ~3.2x) and only a marginal gain for 512^2 FFT-Hist.\n");
  return 0;
}
