// Dynamic Figure 5: pipeline-as-a-service under shifting load.
//
// The paper's Figure 5 sweeps a *static* throughput requirement and plots
// the latency of the mapping chosen for each point. This bench runs the
// dynamic version: several tenant FFT-Hist request streams offer load that
// shifts low -> high -> low across a mapping-change boundary, and the
// serving driver (src/serve/) re-plans the mapping online at batch drain
// points. Two trajectories over the *same* arrival trace are reported:
//
//   serve/dynamic  - RemapPolicy active (dwell hysteresis, online remap)
//   serve/static   - the initial mapping pinned for the whole trace
//                    (dwell windows set beyond the epoch count)
//
// The dynamic run must (a) remap at least once and (b) finish the trace
// with throughput no worse than the static baseline — the CI serving-smoke
// job gates on both, reading the JSON written by --serve-report.
//
// Flags (beyond bench_common): --streams N, --arrival-rate R (low-phase
// aggregate data sets per virtual second; 0 = derive from the model),
// --duration S (virtual seconds per load phase; 0 = size each phase to a
// fixed request count), --serve-report FILE.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "apps/ffthist.hpp"
#include "bench/bench_common.hpp"
#include "serve/server.hpp"

namespace ap = fxpar::apps;
namespace sv = fxpar::serve;
using fxpar::MachineConfig;

namespace {

struct ServeFlags {
  int streams = 3;
  double arrival_rate = 0.0;  // 0 = auto from the model
  double duration = 0.0;      // 0 = auto (fixed requests per phase)
  std::string report_path;
};

ServeFlags parse_serve_flags(int argc, char** argv) {
  ServeFlags f;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--streams") {
      f.streams = static_cast<int>(
          fxbench::parse_int_flag("--streams", value("--streams"), 1, 1024));
    } else if (a == "--arrival-rate") {
      f.arrival_rate =
          fxbench::parse_double_flag("--arrival-rate", value("--arrival-rate"), 1e-9, 1e15);
    } else if (a == "--duration") {
      f.duration =
          fxbench::parse_double_flag("--duration", value("--duration"), 1e-9, 1e9);
    } else if (a == "--serve-report") {
      f.report_path = value("--serve-report");
    } else if (a == "--help" || a == "-h") {
      std::printf("bench_serve flags:\n"
                  "  --streams N         tenant request streams (default 3)\n"
                  "  --arrival-rate R    low-phase aggregate arrival rate in data\n"
                  "                      sets per virtual second (default: derived\n"
                  "                      from the pipeline cost model)\n"
                  "  --duration S        virtual seconds per load phase (default:\n"
                  "                      each phase sized to a fixed request count)\n"
                  "  --serve-report FILE write {\"dynamic\":...,\"static\":...} JSON\n");
    }
  }
  return f;
}

/// Deterministic open-loop arrival trace: three phases (low, high, low),
/// each offering `rates[p]` aggregate data sets per virtual second spread
/// round-robin over the streams. Request results depend only on data_id,
/// which is assigned in global arrival order.
std::vector<sv::ServeRequest> make_arrivals(int streams, const std::vector<double>& rates,
                                            const std::vector<int>& reqs_per_phase) {
  std::vector<sv::ServeRequest> all;
  std::vector<long> seq(static_cast<std::size_t>(streams), 0);
  double t0 = 0.0;
  for (std::size_t p = 0; p < rates.size(); ++p) {
    const double spacing = 1.0 / rates[p];
    for (int i = 0; i < reqs_per_phase[p]; ++i) {
      sv::ServeRequest r;
      r.stream = i % streams;
      r.seq = seq[static_cast<std::size_t>(r.stream)]++;
      r.arrival_t = t0 + static_cast<double>(i) * spacing;
      all.push_back(r);
    }
    t0 += static_cast<double>(reqs_per_phase[p]) * spacing;
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const sv::ServeRequest& a, const sv::ServeRequest& b) {
                     return a.arrival_t < b.arrival_t;
                   });
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i].data_id = static_cast<int>(i);
  }
  return all;
}

struct ModeResult {
  sv::ServeReport report;
  bool verified = false;
};

ModeResult run_mode(const MachineConfig& mcfg, const ap::FftHistConfig& cfg,
                    const fxpar::sched::PipelineModel& model,
                    const std::vector<sv::ServeRequest>& arrivals, bool dynamic) {
  std::vector<std::vector<std::int64_t>> sink;
  const auto stages = ap::ffthist_stages(cfg, &sink);

  fxpar::machine::Machine machine(mcfg);
  sv::ServeConfig scfg;
  scfg.max_batch = 8;
  // The schedule below is expressed in raw arrival rates, so plan for the
  // measured rate itself; a lower latency-improvement bar lets the driver
  // shed the high-rate mapping once the load drops (the FFT-Hist frontier
  // at this size trades ~8% latency across the boundary).
  scfg.policy.safety = 1.0;
  scfg.policy.latency_improvement = 0.05;
  scfg.epilogue_factory = sv::make_batch_funnel_factory(sink);
  if (!dynamic) {
    // Pin the initial mapping: dwell windows no trace can outlast.
    scfg.policy.dwell_up = 1 << 30;
    scfg.policy.dwell_down = 1 << 30;
  }

  ModeResult r;
  r.report = sv::serve_streams<ap::Complex>(machine, stages, model, arrivals, scfg);

  // Spot-check the data products against the sequential reference: the
  // serving path (batching, global ids, remaps, funnels) must not change
  // a single histogram.
  r.verified = true;
  const int total = static_cast<int>(arrivals.size());
  for (int k = 0; k < total; k += std::max(1, total / 8)) {
    if (sink[static_cast<std::size_t>(k)] != ap::ffthist_reference(cfg, k)) {
      r.verified = false;
      std::fprintf(stderr, "bench_serve: result mismatch at data set %d\n", k);
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  fxbench::init(argc, argv);
  const ServeFlags flags = parse_serve_flags(argc, argv);

  const auto mcfg = fxbench::apply_backend(MachineConfig::paragon(8));
  ap::FftHistConfig cfg;
  cfg.n = 32;  // large enough that the mapping frontier has distinct points
  cfg.bins = 8;

  const auto model = ap::ffthist_model(mcfg, cfg);
  const double max_thr =
      fxpar::sched::max_throughput_mapping(model, mcfg.num_procs).throughput;
  // Capacity of the unconstrained latency-optimal mapping: the boundary the
  // high phase must cross for a remap to be required at all.
  const double latmin_thr =
      fxpar::sched::min_latency_mapping(model, mcfg.num_procs, 0.0).throughput;

  // Load schedule: low -> high -> low. The high phase lands between the
  // latency-optimal mapping's capacity and the machine's maximum, so the
  // dynamic driver must remap up to keep pace while the static baseline
  // falls behind; the return to low lets the driver remap back down.
  const double low =
      flags.arrival_rate > 0.0 ? flags.arrival_rate : 0.3 * latmin_thr;
  const double high = flags.arrival_rate > 0.0 ? 3.0 * flags.arrival_rate
                                               : 0.5 * (latmin_thr + max_thr);
  const std::vector<double> rates = {low, high, low};
  std::vector<int> reqs(3);
  for (std::size_t p = 0; p < rates.size(); ++p) {
    reqs[p] = flags.duration > 0.0
                  ? std::max(1, static_cast<int>(rates[p] * flags.duration))
                  : 32;
  }

  auto arrivals = make_arrivals(flags.streams, rates, reqs);
  cfg.num_sets = static_cast<int>(arrivals.size());  // sink capacity = total requests

  const fxbench::HostTimer dyn_timer;
  const ModeResult dyn = run_mode(mcfg, cfg, model, arrivals, /*dynamic=*/true);
  const double dyn_ms = dyn_timer.ms();
  const fxbench::HostTimer sta_timer;
  const ModeResult sta = run_mode(mcfg, cfg, model, arrivals, /*dynamic=*/false);
  const double sta_ms = sta_timer.ms();

  std::printf("bench_serve: %d streams, %zu requests, rates low=%.3f high=%.3f "
              "(latmin capacity %.3f, max sustainable %.3f)\n",
              flags.streams, arrivals.size(), low, high, latmin_thr, max_thr);
  std::printf("  dynamic: thr %8.3f  p50 %.4f  p95 %.4f  p99 %.4f  remaps %d  "
              "infeasible-epochs %d  %s\n",
              dyn.report.throughput(), dyn.report.latency_quantile(0.50),
              dyn.report.latency_quantile(0.95), dyn.report.latency_quantile(0.99),
              dyn.report.remaps, dyn.report.infeasible_epochs,
              dyn.verified ? "verified" : "MISMATCH");
  std::printf("  static:  thr %8.3f  p50 %.4f  p95 %.4f  p99 %.4f  remaps %d  %s\n",
              sta.report.throughput(), sta.report.latency_quantile(0.50),
              sta.report.latency_quantile(0.95), sta.report.latency_quantile(0.99),
              sta.report.remaps, sta.verified ? "verified" : "MISMATCH");

  const auto params = [&](const char* mode) {
    return std::vector<std::pair<std::string, std::string>>{
        {"mode", mode},
        {"streams", std::to_string(flags.streams)},
        {"requests", std::to_string(arrivals.size())},
        {"procs", std::to_string(mcfg.num_procs)}};
  };
  fxbench::json_record("serve/dynamic", params("dynamic"), dyn.report.makespan,
                       dyn.report.throughput() / max_thr, 0, dyn_ms, 0, 0,
                       fxbench::options().backend, mcfg.num_procs);
  fxbench::json_record("serve/static", params("static"), sta.report.makespan,
                       sta.report.throughput() / max_thr, 0, sta_ms, 0, 0,
                       fxbench::options().backend, mcfg.num_procs);

  if (!flags.report_path.empty()) {
    std::ofstream out(flags.report_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "--serve-report: cannot write '%s'\n",
                   flags.report_path.c_str());
      return 1;
    }
    out << "{\"dynamic\":" << dyn.report.to_json()
        << ",\"static\":" << sta.report.to_json() << "}\n";
  }

  return dyn.verified && sta.verified ? 0 : 1;
}
