// Tests for the fxexec backend seam: threaded messaging and park/wake,
// subset barriers under nested TASK_PARTITIONs (sibling subgroups must not
// synchronize), counter parity with the simulator, abort propagation,
// deadlock detection, and concurrent trace recording.
//
// The simulator's ucontext fibers are incompatible with ThreadSanitizer,
// so sim-side tests self-skip under TSan; the threaded-backend tests are
// exactly the ones a TSan build is for.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/fx.hpp"
#include "dist/redistribute.hpp"
#include "machine/context.hpp"
#include "machine/machine.hpp"
#include "machine/report.hpp"
#include "runtime/simulator.hpp"
#include "trace/critical_path.hpp"
#include "trace/phase_report.hpp"

#if defined(__SANITIZE_THREAD__)
#define FXPAR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FXPAR_TSAN 1
#endif
#endif

#ifdef FXPAR_TSAN
#define FXPAR_SKIP_SIM_UNDER_TSAN() \
  GTEST_SKIP() << "simulator fibers (ucontext) are incompatible with ThreadSanitizer"
#else
#define FXPAR_SKIP_SIM_UNDER_TSAN() (void)0
#endif

namespace mx = fxpar::machine;
namespace ex = fxpar::exec;
namespace core = fxpar::core;
using fxpar::MachineConfig;
using fxpar::SubgroupSpec;

namespace {

MachineConfig threaded(int p) {
  auto c = MachineConfig::paragon(p);
  c.backend = ex::BackendKind::Threads;
  return c;
}

MachineConfig simulated(int p) {
  auto c = MachineConfig::paragon(p);
  c.stack_bytes = 256 * 1024;
  return c;
}

mx::Payload stamp(int rank, int round, std::size_t bytes) {
  mx::Payload p(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    p[i] = static_cast<std::byte>((rank * 31 + round * 7 + static_cast<int>(i)) & 0xff);
  }
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Threaded messaging
// ---------------------------------------------------------------------------

TEST(ExecThreads, RingMessagingDeliversStampedPayloads) {
  const int P = 4, rounds = 50;
  mx::Machine m(threaded(P));
  std::atomic<int> checked{0};
  m.run([&](mx::Context& ctx) {
    const int r = ctx.phys_rank();
    for (int k = 0; k < rounds; ++k) {
      ctx.send_phys((r + 1) % P, 7, stamp(r, k, 16 + static_cast<std::size_t>(k)));
      const mx::Payload got = ctx.recv_phys((r + P - 1) % P, 7);
      const mx::Payload want = stamp((r + P - 1) % P, k, 16 + static_cast<std::size_t>(k));
      ASSERT_EQ(got.size(), want.size());
      ASSERT_EQ(std::memcmp(got.data(), want.data(), got.size()), 0)
          << "rank " << r << " round " << k;
      checked.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(checked.load(), P * rounds);
}

TEST(ExecThreads, ManyToOnePreservesPerSenderFifo) {
  const int P = 4, per_sender = 100;
  mx::Machine m(threaded(P));
  m.run([&](mx::Context& ctx) {
    const int r = ctx.phys_rank();
    if (r == 0) {
      // Drain senders in an order chosen by the receiver; each (src, tag)
      // stream must arrive in the sender's send order.
      for (int k = 0; k < per_sender; ++k) {
        for (int s = 1; s < P; ++s) {
          const mx::Payload got = ctx.recv_phys(s, static_cast<std::uint64_t>(s));
          const mx::Payload want = stamp(s, k, 8);
          ASSERT_EQ(got.size(), want.size());
          ASSERT_EQ(std::memcmp(got.data(), want.data(), got.size()), 0)
              << "sender " << s << " message " << k;
        }
      }
    } else {
      for (int k = 0; k < per_sender; ++k) {
        ctx.send_phys(0, static_cast<std::uint64_t>(r), stamp(r, k, 8));
      }
    }
  });
}

TEST(ExecThreads, RunResultReportsRealTime) {
  mx::Machine m(threaded(2));
  const auto res = m.run([&](mx::Context& ctx) {
    if (ctx.phys_rank() == 0) {
      ctx.send_phys(1, 1, mx::Payload(64));
    } else {
      ctx.recv_phys(0, 1);
    }
    ctx.barrier();
  });
  EXPECT_EQ(res.backend, "threads");
  EXPECT_GT(res.host_ms, 0.0);
  EXPECT_GT(res.finish_time, 0.0);  // real seconds, not modeled
  EXPECT_EQ(res.messages, 1u);
  EXPECT_EQ(res.bytes, 64u);
  EXPECT_EQ(res.barriers, 2u);  // per-member arrivals, as in the simulator
  // The report surfaces the real-time line only for non-sim backends.
  const std::string report = mx::utilization_report(res);
  EXPECT_NE(report.find("backend threads"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Subset barriers under nested TASK_PARTITIONs (both backends)
// ---------------------------------------------------------------------------

namespace {

// Sibling subgroups of a TASK_PARTITION must synchronize independently:
// "left" runs many barriers while "right" only exchanges messages. With a
// global (non-subset) barrier this would deadlock, because right's members
// never arrive at left's barriers. Nested partitions inside "left" check
// that grand-child groups are again independent.
void run_sibling_barrier_program(const MachineConfig& cfg, std::uint64_t* barriers_out) {
  mx::Machine m(cfg);
  std::atomic<int> left_done{0}, right_done{0};
  const auto res = m.run([&](mx::Context& ctx) {
    core::TaskPartition part(ctx, {{"left", 2}, {"right", 2}}, "split");
    core::TaskRegion region(ctx, part);
    region.on("left", [&] {
      for (int i = 0; i < 10; ++i) ctx.barrier();
      // Nested partition: each singleton synchronizes only with itself.
      core::TaskPartition inner(ctx, {{"a", 1}, {"b", 1}}, "inner");
      core::TaskRegion inner_region(ctx, inner);
      inner_region.on("a", [&] { ctx.barrier(); });
      inner_region.on("b", [&] { ctx.barrier(); });
      left_done.fetch_add(1, std::memory_order_relaxed);
    });
    region.on("right", [&] {
      const int v = ctx.group().virtual_of(ctx.phys_rank());
      if (v == 0) {
        ctx.send_phys(ctx.group().physical(1), 5, mx::Payload(4));
      } else {
        ctx.recv_phys(ctx.group().physical(0), 5);
      }
      right_done.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(left_done.load(), 2);
  EXPECT_EQ(right_done.load(), 2);
  if (barriers_out) *barriers_out = res.barriers;
}

}  // namespace

TEST(ExecBarriers, SiblingSubgroupsIndependentOnThreads) {
  std::uint64_t barriers = 0;
  run_sibling_barrier_program(threaded(4), &barriers);
  // 2 members x 10 barriers + 2 singleton barriers, plus whatever the
  // partition machinery itself adds — identical on both backends (below).
  EXPECT_GE(barriers, 22u);
}

TEST(ExecBarriers, SiblingSubgroupsIndependentOnSimulator) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  std::uint64_t barriers = 0;
  run_sibling_barrier_program(simulated(4), &barriers);
  EXPECT_GE(barriers, 22u);
}

TEST(ExecBarriers, BarrierCountMatchesAcrossBackends) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  std::uint64_t sim_barriers = 0, thr_barriers = 0;
  run_sibling_barrier_program(simulated(4), &sim_barriers);
  run_sibling_barrier_program(threaded(4), &thr_barriers);
  EXPECT_EQ(sim_barriers, thr_barriers);
}

// ---------------------------------------------------------------------------
// Counter parity with the simulator (satellite: concurrent counters)
// ---------------------------------------------------------------------------

namespace {

// A communication-heavy deterministic program: repeated redistributions
// between a row-block and a column-block layout drive messages, bytes,
// barriers and the redistribution plan cache on every processor.
mx::RunResult run_redistribution_program(const MachineConfig& cfg) {
  namespace ds = fxpar::dist;
  mx::Machine m(cfg);
  return m.run([&](mx::Context& ctx) {
    const auto& g = ctx.group();
    ds::DistArray<double> rows(
        ctx, ds::Layout(g, {16, 16}, {ds::DimDist::block(), ds::DimDist::collapsed()}),
        "rows");
    ds::DistArray<double> cols(
        ctx, ds::Layout(g, {16, 16}, {ds::DimDist::collapsed(), ds::DimDist::block()}),
        "cols");
    rows.fill([](std::span<const std::int64_t> gi) {
      return static_cast<double>(gi[0] * 100 + gi[1]);
    });
    for (int round = 0; round < 4; ++round) {
      ds::assign(ctx, cols, rows);
      ds::assign(ctx, rows, cols);
    }
    ctx.barrier();
  });
}

}  // namespace

TEST(ExecCounters, ThreadedTotalsMatchSimulator) {
  FXPAR_SKIP_SIM_UNDER_TSAN();
  const auto sim_res = run_redistribution_program(simulated(4));
  const auto thr_res = run_redistribution_program(threaded(4));
  EXPECT_EQ(sim_res.messages, thr_res.messages);
  EXPECT_EQ(sim_res.bytes, thr_res.bytes);
  EXPECT_EQ(sim_res.barriers, thr_res.barriers);
  EXPECT_EQ(sim_res.plan_cache_hits, thr_res.plan_cache_hits);
  EXPECT_EQ(sim_res.plan_cache_misses, thr_res.plan_cache_misses);
  // The repeated rounds must actually hit the plan cache for this test to
  // exercise its concurrent lookup path.
  EXPECT_GT(thr_res.plan_cache_hits, 0u);
  EXPECT_GT(thr_res.plan_cache_misses, 0u);
}

// ---------------------------------------------------------------------------
// Failure handling
// ---------------------------------------------------------------------------

TEST(ExecThreads, AbortPropagatesFirstError) {
  mx::Machine m(threaded(4));
  EXPECT_THROW(
      {
        m.run([&](mx::Context& ctx) {
          if (ctx.phys_rank() == 2) {
            throw std::runtime_error("boom on rank 2");
          }
          // Everyone else blocks on a message that never comes; the abort
          // must wake them instead of hanging the join.
          ctx.recv_phys(2, 99);
        });
      },
      std::runtime_error);
}

// Messages still queued when a run aborts must be reclaimed when the
// Machine is destroyed, not only by the next run's reset (the ASan CI job
// enforces the no-leak part).
TEST(ExecThreads, AbortWithQueuedMessagesDoesNotLeak) {
  mx::Machine m(threaded(2));
  EXPECT_THROW(
      {
        m.run([&](mx::Context& ctx) {
          if (ctx.phys_rank() == 0) {
            ctx.send_phys(1, 1, stamp(0, 0, 8));
            for (int i = 0; i < 8; ++i) {
              ctx.send_phys(1, 2, stamp(0, i + 1, 4096));  // never received
            }
            ctx.recv_phys(1, 3);  // parks until the abort wakes it
          } else {
            ctx.recv_phys(0, 1);
            throw std::runtime_error("boom after first message");
          }
        });
      },
      std::runtime_error);
}

TEST(ExecThreads, DeadlockDetected) {
  mx::Machine m(threaded(2));
  EXPECT_THROW(
      {
        m.run([&](mx::Context& ctx) {
          if (ctx.phys_rank() == 0) {
            ctx.recv_phys(1, 3);  // rank 1 finishes without sending
          }
        });
      },
      fxpar::runtime::DeadlockError);
}

// Regression for a false DeadlockError: a deposit (or barrier release)
// delivered just before the sender's own park left the counters quiet
// while the woken worker was still scheduled out, so the quiescence check
// misread a valid program as a global wait cycle. quiescent() now also
// scans undrained inboxes and unconsumed barrier releases. This hammers
// exactly that pattern — deposit, then immediately block — plus full-group
// barriers, and must complete without throwing.
TEST(ExecThreads, NoFalseDeadlockUnderParkRaces) {
  const int P = 8, rounds = 400;
  mx::Machine m(threaded(P));
  m.run([&](mx::Context& ctx) {
    const int r = ctx.phys_rank();
    for (int i = 0; i < rounds; ++i) {
      ctx.send_phys((r + 1) % P, 7, stamp(r, i, 16));
      ctx.recv_phys((r + P - 1) % P, 7);
      if (i % 16 == 0) ctx.barrier();
    }
    ctx.barrier();
  });
}

// ---------------------------------------------------------------------------
// Concurrent trace recording
// ---------------------------------------------------------------------------

TEST(ExecThreads, TraceRecordsMergeAfterConcurrentRun) {
  auto cfg = threaded(4);
  cfg.trace = true;
  mx::Machine m(cfg);
  const auto res = m.run([&](mx::Context& ctx) {
    auto span = ctx.span("work", "test");
    const int r = ctx.phys_rank();
    if (r == 0) {
      ctx.send_phys(1, 11, mx::Payload(32));
    } else if (r == 1) {
      ctx.recv_phys(0, 11);
    }
    ctx.barrier();
  });
  ASSERT_NE(res.trace, nullptr);
  // Every worker recorded its shard; the merge produced one coherent
  // timeline: the program root span + one "work" span per processor.
  int work_spans = 0;
  for (const auto& s : res.trace->spans()) {
    if (s.name == "work") ++work_spans;
  }
  EXPECT_EQ(work_spans, 4);
  ASSERT_EQ(res.trace->messages().size(), 1u);
  EXPECT_EQ(res.trace->messages()[0].src, 0);
  EXPECT_EQ(res.trace->messages()[0].dst, 1);
  ASSERT_EQ(res.trace->barriers().size(), 1u);
  EXPECT_EQ(res.trace->barriers()[0].procs.size(), 4u);
  // Concurrent spans carry real busy time (elapsed minus recorded waits),
  // not the zero a missing charge() would leave behind.
  double root_busy = 0.0;
  for (const auto& s : res.trace->spans()) {
    EXPECT_GE(s.busy, 0.0);
    EXPECT_LE(s.busy, s.duration() + 1e-9);
    if (s.depth == 0) root_busy += s.busy;
  }
  EXPECT_GT(root_busy, 0.0);
  double totals_busy = 0.0;
  for (const auto& t : res.trace->proc_totals()) totals_busy += t.busy;
  EXPECT_NEAR(totals_busy, root_busy, 1e-9);
  // The analyzers must accept the merged trace.
  EXPECT_FALSE(fxpar::trace::phase_report(*res.trace).to_string().empty());
  EXPECT_FALSE(fxpar::trace::critical_path(*res.trace).to_string().empty());
}

// ---------------------------------------------------------------------------
// Config plumbing
// ---------------------------------------------------------------------------

TEST(ExecSeam, SimAccessorThrowsOnThreadedBackend) {
  mx::Machine m(threaded(2));
  EXPECT_THROW(m.sim(), std::logic_error);
}

TEST(ExecSeam, BackendKindNames) {
  EXPECT_STREQ(ex::backend_kind_name(ex::BackendKind::Sim), "sim");
  EXPECT_STREQ(ex::backend_kind_name(ex::BackendKind::Threads), "threads");
}
